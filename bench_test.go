// Benchmark harness: one benchmark per paper table/figure, each
// regenerating the corresponding rows on a representative benchmark
// subset (use cmd/darco-figs for the full 48-benchmark catalog), plus
// micro-benchmarks of the core engines.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/darco"
	"repro/internal/experiments"
	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
	"repro/internal/x86emu"
)

// figSubset is a representative slice of the catalog: one benchmark
// per characterization regime the paper analyzes.
var figSubset = []string{
	"462.libquantum",    // extreme dynamic/static ratio
	"470.lbm",           // high-ratio FP outlier
	"400.perlbench",     // indirect-branch dominated
	"107.novis_ragdoll", // low ratio, high IM activity
	"007.jpg2000enc",    // ratio close to the promotion threshold
	"000.cjpeg",         // low repetition, sizeable static code
}

func figRunner(b *testing.B, scale float64) *experiments.Runner {
	b.Helper()
	opts := experiments.DefaultOptions()
	opts.Scale = scale
	opts.Benchmarks = figSubset
	opts.Config.TOL.Cosim = false
	r, err := experiments.NewRunner(opts)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTableIConfig exercises construction of the Table I host
// model (all structures allocated and validated).
func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := timing.NewSimulator(timing.DefaultConfig(), timing.ModeShared)
		if sim == nil {
			b.Fatal("nil simulator")
		}
	}
}

// BenchmarkFig5Distribution regenerates Figure 5a/5b rows.
func BenchmarkFig5Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, _, err := r.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Breakdown regenerates Figure 6 rows.
func BenchmarkFig6Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, err := r.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7TOLComponents regenerates Figure 7 rows.
func BenchmarkFig7TOLComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, err := r.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8TOLPerformance regenerates Figure 8 rows (TOL isolated).
func BenchmarkFig8TOLPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, err := r.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Bubbles regenerates Figure 9 rows.
func BenchmarkFig9Bubbles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, err := r.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Interaction regenerates Figure 10 rows (two timing
// runs per benchmark).
func BenchmarkFig10Interaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, err := r.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Potential regenerates Figure 11a/11b rows.
func BenchmarkFig11Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figRunner(b, 0.25)
		if _, _, err := r.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Core micro-benchmarks ----

func buildHotLoop(iters int32) *guest.Program {
	bld := guest.NewBuilder()
	bld.Label("start")
	bld.MovRI(guest.EAX, 0)
	bld.MovRI(guest.ECX, iters)
	bld.Label("loop")
	bld.AddRR(guest.EAX, guest.ECX)
	bld.XorRI(guest.EAX, 0x55)
	bld.Dec(guest.ECX)
	bld.CmpRI(guest.ECX, 0)
	bld.Jcc(guest.CondNE, "loop")
	bld.Halt()
	return bld.MustBuild()
}

// BenchmarkReferenceEmulator measures raw guest interpretation speed.
func BenchmarkReferenceEmulator(b *testing.B) {
	p := buildHotLoop(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := x86emu.New(p)
		if err := e.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFunctional measures the co-design component without
// timing simulation (stream discarded).
func BenchmarkEngineFunctional(b *testing.B) {
	p := buildHotLoop(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := tol.DefaultConfig()
		cfg.Cosim = false
		eng := tol.NewEngine(cfg, p)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures engine + timing simulator end to end.
func BenchmarkFullPipeline(b *testing.B) {
	p := buildHotLoop(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := darco.Run(context.Background(), p, darco.WithCosim(false))
		if err != nil {
			b.Fatal(err)
		}
		if res.Timing.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
	b.ReportMetric(float64(10_000*6), "guest-insts/op")
}

// BenchmarkTimingSimulator measures the cycle model alone on a
// synthetic stream.
func BenchmarkTimingSimulator(b *testing.B) {
	var insts []timing.DynInst
	pc := uint32(0x100000)
	for i := 0; i < 10_000; i++ {
		d := timing.DynInst{
			PC: pc + uint32(i%256)*4, Owner: timing.OwnerApp,
			Dst: uint8(1 + i%8), Src1: timing.RegNone, Src2: timing.RegNone,
		}
		if i%5 == 0 {
			d.IsLoad = true
			d.MemAddr = 0x40000000 + uint32(i%4096)*64
		}
		insts = append(insts, d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := timing.NewSimulator(timing.DefaultConfig(), timing.ModeShared)
		if _, err := sim.Run(&timing.SliceSource{Insts: insts}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10_000, "insts/op")
}

// BenchmarkWorkloadBuild measures benchmark synthesis.
func BenchmarkWorkloadBuild(b *testing.B) {
	spec, err := workload.ByName("403.gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizePipeline compares the engine's end-to-end cost
// under the O0 (no SBM optimizer) and O3 (two propagation rounds +
// RLE + scheduling) presets, so the optimizer's own cost is tracked
// over time alongside its benefit.
func BenchmarkOptimizePipeline(b *testing.B) {
	for _, level := range []int{0, 3} {
		b.Run(fmt.Sprintf("O%d", level), func(b *testing.B) {
			p := buildHotLoop(2_000)
			cfg := tol.DefaultConfig()
			cfg.Cosim = false
			cfg.SBThreshold = 50
			if err := tol.ApplyOptLevel(&cfg, level); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := tol.NewEngine(cfg, p)
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				if level > 0 && eng.Stats.SBCreated == 0 {
					b.Fatal("no superblock created")
				}
			}
		})
	}
}

// BenchmarkSteadyStateTranslated measures the translated-execution
// hot path alone: a warmed engine (translations built, chains patched,
// arenas grown) streaming batches. The b.ReportMetric allocs/step
// figure must stay at zero — the alloc-regression tests enforce it,
// this benchmark tracks the cycle cost.
func BenchmarkSteadyStateTranslated(b *testing.B) {
	cfg := tol.DefaultConfig()
	cfg.Cosim = false
	eng := tol.NewEngine(cfg, buildHotLoop(2_000_000_000))
	buf := make([]timing.DynInst, 1024)
	for warmed := 0; warmed < 200_000; {
		n := eng.NextBatch(buf)
		if n == 0 {
			b.Fatal(eng.Err())
		}
		warmed += n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for got := 0; got < 10_000; {
			n := eng.NextBatch(buf)
			if n == 0 {
				b.Fatal(eng.Err())
			}
			got += n
		}
	}
	b.ReportMetric(10_000, "insts/op")
}

// BenchmarkSteadyStateInterp measures the interpreter hot path alone
// (translation disabled via an unreachable threshold): decode-cache
// hits, cost-stream emission, profile bumps.
func BenchmarkSteadyStateInterp(b *testing.B) {
	cfg := tol.DefaultConfig()
	cfg.Cosim = false
	cfg.BBThreshold = 1 << 30
	eng := tol.NewEngine(cfg, buildHotLoop(2_000_000_000))
	buf := make([]timing.DynInst, 1024)
	for warmed := 0; warmed < 100_000; {
		n := eng.NextBatch(buf)
		if n == 0 {
			b.Fatal(eng.Err())
		}
		warmed += n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for got := 0; got < 10_000; {
			n := eng.NextBatch(buf)
			if n == 0 {
				b.Fatal(eng.Err())
			}
			got += n
		}
	}
	b.ReportMetric(10_000, "insts/op")
}

// BenchmarkSBMOptimizer measures superblock formation + optimization +
// scheduling via repeated promotion of a fresh engine's hot loop.
func BenchmarkSBMOptimizer(b *testing.B) {
	p := buildHotLoop(2_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := tol.DefaultConfig()
		cfg.Cosim = false
		cfg.SBThreshold = 50
		eng := tol.NewEngine(cfg, p)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if eng.Stats.SBCreated == 0 {
			b.Fatal("no superblock created")
		}
	}
}
