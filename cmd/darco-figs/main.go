// Command darco-figs regenerates the paper's evaluation figures
// (Figures 5–11) as tables. Each figure's series are printed in the
// same units the paper plots.
//
// Usage:
//
//	darco-figs                  # all figures, full catalog
//	darco-figs -fig 6           # one figure
//	darco-figs -fig cc          # cache-pressure sweep (not part of "all")
//	darco-figs -fig phase       # phase-behaviour sweep (not part of "all")
//	darco-figs -fig phase -phases 6 -phase-cap 1024
//	darco-figs -fig sample      # sampled-vs-full error + speedup (not part of "all")
//	darco-figs -fig sample -sample 8 -interval 100000 -warmup 5000
//	darco-figs -scale 2 -csv
//	darco-figs -jobs 8          # parallel figure regeneration
//	darco-figs -from a.json,b.json  # reuse darco-suite -json results
//	darco-figs -fig 6 -workload trace:run.trace.json  # replayed workloads
//	darco-figs -server http://host:8080 -timeout 1h   # run on darco-serve
//	darco-figs -grid examples/grids/promotion-streambatch.json -csv
//	darco-figs -grid spec.json -store results/        # resumable sweep
//	darco-figs -grid spec.json -shard 0/4             # one shard of the cells
//
// -benchmarks and -workload both take workload Source-registry
// references ("<source>:<name>"; bare names mean the synthetic
// catalog); -workload appends to the -benchmarks selection.
//
// Simulation goes through a darco.Session worker pool (-jobs); the
// engine is deterministic, so the regenerated tables are identical for
// any worker count. -from preloads full results from JSON records
// emitted by cmd/darco or cmd/darco-suite -json, so figures can be
// reassembled without re-simulating the preloaded (benchmark, mode)
// pairs. -json emits the tables themselves as JSON.
//
// -grid replaces the built-in figures with a declarative
// characterization grid (internal/sweep): a JSON spec naming workloads
// and knob axes; every cell simulates through the same session and the
// report lands on stdout as a table, CSV (-csv) or JSON (-json).
// -store attaches a content-addressed result store — completed cells
// persist, so an interrupted sweep resumes where it stopped — and
// -shard i/n runs one deterministic 1/n slice of the cells, so a grid
// can be split across machines sharing a store.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/darco"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 6, 7, 7b, 8, 9, 10, 11, cc, phase, sample, all ('all' excludes the cc, phase and sample sweeps)")
	scale := flag.Float64("scale", 1.0, "workload dynamic-size multiplier")
	csv := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit the tables as JSON")
	cosim := flag.Bool("cosim", true, "verify against the authoritative emulator")
	quiet := flag.Bool("q", false, "suppress progress output")
	benches := flag.String("benchmarks", "", "comma-separated subset of benchmarks (workload references)")
	isaFlag := flag.String("isa", "", "guest ISA frontend: x86 or rv32 (default: per-program; benchmark names resolve through the selected frontend's catalog)")
	workloadFlag := flag.String("workload", "", "comma-separated workload references (<source>:<name>) appended to -benchmarks")
	phases := flag.Int("phases", 0, "largest composite of the -fig phase sweep (0 = default)")
	phaseCap := flag.Int("phase-cap", 0, "bounded code-cache capacity of the -fig phase sweep in instruction slots (0 = default)")
	passes := flag.String("passes", "", "SBM optimization pipeline (comma-separated pass names; 'none' = empty)")
	optLevel := flag.Int("O", -1, "optimization preset 0..3 (-1 = default O2; 0 disables SBM)")
	promote := flag.String("promote", "", "tier-promotion policy: fixed, adaptive")
	ccSize := flag.Int("cc-size", 0, "bound the code cache to this many instruction slots (0 = unbounded)")
	ccPolicy := flag.String("cc-policy", "", "code cache eviction policy: flush-all, fifo-region, lru-translation")
	sampleEvery := flag.Int("sample", 0, "sampled simulation: measure every Nth interval in detail (0 = full detailed runs; with -fig sample, overrides the sweep's default plan)")
	sampleInterval := flag.Uint64("interval", 0, "sampled simulation: interval length in guest instructions (0 = default)")
	sampleWarmup := flag.Uint64("warmup", 0, "sampled simulation: detailed warm-up instructions before each measured interval (0 = default)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	from := flag.String("from", "", "comma-separated JSON record files (darco/darco-suite -json output) to reuse instead of simulating")
	timeout := flag.Duration("timeout", 0, "overall deadline for the whole regeneration (0 = none)")
	server := flag.String("server", "", "run on a darco-serve instance at this base URL instead of simulating locally")
	gridSpec := flag.String("grid", "", "run a declarative characterization grid from this JSON spec (see examples/grids) instead of the built-in figures")
	storeDir := flag.String("store", "", "content-addressed result store directory; completed work persists there and re-runs resume from it")
	shard := flag.String("shard", "", "with -grid, run only this deterministic slice of the cells, as i/n (e.g. 0/4)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Config = darco.DefaultConfig()
	opts.Config.TOL.Cosim = *cosim
	opts.Config.ISA = *isaFlag
	if *fig == "cc" && (*ccSize != 0 || *ccPolicy != "") {
		// The sweep sets its own capacity × policy matrix per point; a
		// base-config bound would be silently overwritten. Use cmd/darco
		// or cmd/darco-suite for a single bounded configuration.
		fmt.Fprintln(os.Stderr, "darco-figs: -fig cc sweeps its own capacities and policies; -cc-size/-cc-policy apply to the other figures only")
		os.Exit(2)
	}
	darco.ApplyCacheFlags(&opts.Config.TOL, *ccSize, *ccPolicy)
	if err := darco.ApplyPipelineFlags(&opts.Config.TOL, *optLevel, *passes, *promote); err != nil {
		fmt.Fprintln(os.Stderr, "darco-figs:", err)
		os.Exit(2)
	}
	if err := darco.ApplySampleFlags(&opts.Config, *sampleEvery, *sampleInterval, *sampleWarmup); err != nil {
		fmt.Fprintln(os.Stderr, "darco-figs:", err)
		os.Exit(2)
	}
	samplePlan := opts.Config.Sampling
	if *fig == "sample" {
		// The sweep compares sampled against full runs itself; the base
		// config must stay full-detail so the reference leg is one.
		opts.Config.Sampling = nil
	}
	opts.Jobs = *jobs
	opts.Context = ctx
	if *server != "" {
		opts.SessionOptions = append(opts.SessionOptions, darco.WithRemote(serve.NewClient(*server)))
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-figs:", err)
			os.Exit(2)
		}
		opts.SessionOptions = append(opts.SessionOptions, darco.WithStore(st))
	}
	if *gridSpec != "" {
		if err := runGrid(ctx, *gridSpec, *shard, &opts, *csv, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "darco-figs:", err)
			os.Exit(1)
		}
		return
	}
	if *shard != "" {
		fmt.Fprintln(os.Stderr, "darco-figs: -shard only applies to -grid sweeps")
		os.Exit(2)
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if *workloadFlag != "" {
		opts.Benchmarks = append(opts.Benchmarks, strings.Split(*workloadFlag, ",")...)
	}
	for i, ref := range opts.Benchmarks {
		opts.Benchmarks[i] = workload.RefForISA(strings.TrimSpace(ref), *isaFlag)
	}
	if *from != "" {
		for _, path := range strings.Split(*from, ",") {
			recs, err := loadRecords(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintln(os.Stderr, "darco-figs:", err)
				os.Exit(2)
			}
			opts.Preload = append(opts.Preload, recs...)
		}
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var jsonTables []*stats.Table
	emit := func(t *stats.Table) {
		switch {
		case *jsonOut:
			jsonTables = append(jsonTables, t)
		case *csv:
			fmt.Print(t.CSV())
			fmt.Println()
		default:
			fmt.Print(t.String())
			fmt.Println()
		}
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("5a") || want("5b") || want("5") {
		ta, tb, err := r.Fig5()
		if err != nil {
			die(err)
		}
		if want("5a") || want("5") {
			emit(ta)
		}
		if want("5b") || want("5") {
			emit(tb)
		}
	}
	if want("6") {
		t, err := r.Fig6()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("7") {
		t, err := r.Fig7()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("7b") {
		t, err := r.Fig7b()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("8") {
		t, err := r.Fig8()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("9") {
		t, err := r.Fig9()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("10") {
		t, err := r.Fig10()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("11") {
		ta, tb, err := r.Fig11()
		if err != nil {
			die(err)
		}
		emit(ta)
		emit(tb)
	}
	// The cache-pressure sweep runs 1 + 3×len(capacities) simulations
	// per benchmark, so it is opt-in and not part of "all"; restrict it
	// with -benchmarks for quick sweeps.
	if *fig == "cc" {
		t, err := r.FigCC(nil)
		if err != nil {
			die(err)
		}
		emit(t)
	}
	// The phase sweep simulates composites of growing length, so it is
	// opt-in too; -benchmarks restricts the member pool.
	if *fig == "phase" {
		t, err := r.FigPhase(*phases, *phaseCap)
		if err != nil {
			die(err)
		}
		emit(t)
	}
	// The sampling sweep runs every benchmark twice (full + sampled) and
	// times both legs, so it is opt-in as well; -sample/-interval/-warmup
	// override its default plan.
	if *fig == "sample" {
		t, err := r.FigSample(samplePlan)
		if err != nil {
			die(err)
		}
		emit(t)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonTables); err != nil {
			die(err)
		}
	}
}

// runGrid executes one declarative sweep spec on the flag-built base
// configuration and session (store, remote, worker count) and emits
// its report in the format the figure path would use. Per-cell
// failures are recorded in the report and returned after it prints, so
// a partially failed sweep still shows everything that ran.
func runGrid(ctx context.Context, path, shard string, opts *experiments.Options, csv, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	g, err := sweep.DecodeGrid(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if g.Scale == 0 {
		g.Scale = opts.Scale
	}
	sopts := sweep.Options{
		Config:  &opts.Config,
		Jobs:    opts.Jobs,
		Session: opts.SessionOptions,
		Log:     opts.Log,
	}
	if shard != "" {
		if _, err := fmt.Sscanf(shard, "%d/%d", &sopts.Shard, &sopts.Shards); err != nil {
			return fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4): %v", shard, err)
		}
	}
	rs, runErr := sweep.Run(ctx, g, sopts)
	if rs != nil {
		switch {
		case jsonOut:
			if err := rs.WriteJSON(os.Stdout); err != nil {
				return err
			}
		case csv:
			fmt.Print(rs.CSV())
		default:
			fmt.Print(rs.Table().String())
		}
	}
	return runErr
}

// loadRecords reads one []darco.Record file produced by cmd/darco or
// cmd/darco-suite -json. Records without a full result (summaries only
// or failures) are dropped by the experiments preloader.
func loadRecords(path string) ([]darco.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := darco.DecodeRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
