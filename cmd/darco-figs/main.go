// Command darco-figs regenerates the paper's evaluation figures
// (Figures 5–11) as tables. Each figure's series are printed in the
// same units the paper plots.
//
// Usage:
//
//	darco-figs                  # all figures, full catalog
//	darco-figs -fig 6           # one figure
//	darco-figs -scale 2 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/darco"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 6, 7, 8, 9, 10, 11, all")
	scale := flag.Float64("scale", 1.0, "workload dynamic-size multiplier")
	csv := flag.Bool("csv", false, "emit CSV")
	cosim := flag.Bool("cosim", true, "verify against the authoritative emulator")
	quiet := flag.Bool("q", false, "suppress progress output")
	benches := flag.String("benchmarks", "", "comma-separated subset of benchmarks")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Config = darco.DefaultConfig()
	opts.Config.TOL.Cosim = *cosim
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		fmt.Println()
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("5a") || want("5b") || want("5") {
		ta, tb, err := r.Fig5()
		if err != nil {
			die(err)
		}
		if want("5a") || want("5") {
			emit(ta)
		}
		if want("5b") || want("5") {
			emit(tb)
		}
	}
	if want("6") {
		t, err := r.Fig6()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("7") {
		t, err := r.Fig7()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("8") {
		t, err := r.Fig8()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("9") {
		t, err := r.Fig9()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("10") {
		t, err := r.Fig10()
		if err != nil {
			die(err)
		}
		emit(t)
	}
	if want("11") {
		ta, tb, err := r.Fig11()
		if err != nil {
			die(err)
		}
		emit(ta)
		emit(tb)
	}
}
