// Command darco-serve runs the multi-tenant simulation service — a
// long-running HTTP server that accepts jobs by workload reference,
// schedules them with per-tenant fair queuing over a bounded worker
// pool, streams per-job progress as Server-Sent Events, and persists
// every result in a content-addressed store so cache hits survive
// restarts.
//
// Server mode:
//
//	darco-serve -listen :8080 -store /var/lib/darco
//	darco-serve -listen :8080 -store ./results -workers 4 -queue 64
//	darco-serve -listen :8080 -store ./results -store-max-bytes 104857600
//	darco-serve -listen :8080 -job-ttl 1h          # registry TTL for completed jobs
//	darco-serve -listen :8080 -no-cosim            # fast base config
//
// SIGINT/SIGTERM drains gracefully: admission stops (new submissions
// get 503), queued jobs fail fast, and in-flight simulations get
// -drain to finish before their contexts are cancelled.
//
// Client mode (-server selects it; also available as the -server flag
// of darco, darco-suite and darco-figs):
//
//	darco-serve -server http://host:8080 -submit synthetic:470.lbm
//	darco-serve -server http://host:8080 -submit trace:run.trace.json -scale 0.5 -tenant ci
//	darco-serve -server http://host:8080 -health
//	darco-serve -server http://host:8080 -jobs-list
//	darco-serve -server http://host:8080 -cancel j-000001
//
// -submit enqueues one job, relays its event stream to stderr, and
// prints the terminal darco.Record JSON — the same interchange format
// cmd/darco -json emits and cmd/darco-figs -from consumes — to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/darco"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	listen := flag.String("listen", ":8080", "server mode: listen address")
	storeDir := flag.String("store", "", "server mode: content-addressed result store directory (empty = in-memory only, cache dies with the process)")
	storeMax := flag.Int64("store-max-bytes", 0, "server mode: persistent-store size quota; least recently used entries are evicted past it (0 = unbounded)")
	jobTTL := flag.Duration("job-ttl", 0, "server mode: drop completed jobs from the registry after this long (0 = keep forever; stored results survive)")
	workers := flag.Int("workers", 0, "server mode: simulation worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "server mode: admission queue bound, submissions beyond it get 429 (0 = default, <0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "server mode: grace period for in-flight jobs on SIGINT/SIGTERM")
	noCosim := flag.Bool("no-cosim", false, "server mode: disable emulator co-simulation in the base config")

	server := flag.String("server", "", "client mode: darco-serve base URL (selects client mode)")
	submit := flag.String("submit", "", "client mode: workload reference to submit (<source>:<name>)")
	scale := flag.Float64("scale", 1.0, "client mode: workload dynamic-size multiplier")
	tenant := flag.String("tenant", "", "client mode: fair-queuing tenant of the submission")
	modeFlag := flag.String("mode", "", "client mode: timing mode override (shared, app-only, tol-only, split)")
	health := flag.Bool("health", false, "client mode: print server health and exit")
	cancelID := flag.String("cancel", "", "client mode: cancel this queued or running job and exit")
	jobsList := flag.Bool("jobs-list", false, "client mode: list server jobs and exit")
	storeList := flag.Bool("store-list", false, "client mode: list the server's persistent store and exit")
	timeout := flag.Duration("timeout", 0, "client mode: overall deadline (0 = none)")
	flag.Parse()

	if *server != "" {
		os.Exit(clientMain(*server, *submit, *cancelID, *scale, *tenant, *modeFlag, *health, *jobsList, *storeList, *timeout))
	}
	if *submit != "" || *cancelID != "" || *health || *jobsList || *storeList {
		fmt.Fprintln(os.Stderr, "darco-serve: client flags need -server <url>")
		os.Exit(2)
	}
	os.Exit(serverMain(*listen, *storeDir, *storeMax, *workers, *queue, *drain, *jobTTL, *noCosim))
}

func serverMain(listen, storeDir string, storeMax int64, workers, queue int, drain, jobTTL time.Duration, noCosim bool) int {
	cfg := serve.Config{Workers: workers, QueueLimit: queue, Log: os.Stderr, JobTTL: jobTTL, StoreMaxBytes: storeMax}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		cfg.Store = st
		fmt.Fprintf(os.Stderr, "darco-serve: store %s\n", storeDir)
		// Apply the quota to whatever the directory already holds, so a
		// restart with a tighter bound converges immediately.
		if storeMax > 0 {
			if removed, freed, err := st.EvictToSize(storeMax); err != nil {
				fmt.Fprintln(os.Stderr, "darco-serve: store quota:", err)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "darco-serve: store quota: evicted %d entries (%d bytes)\n", removed, freed)
			}
		}
	}
	if noCosim {
		base := darco.DefaultConfig()
		base.TOL.Cosim = false
		cfg.Base = &base
	}
	srv := serve.NewServer(cfg)
	hs := &http.Server{Addr: listen, Handler: srv}

	// Graceful shutdown: stop accepting connections, then drain the
	// simulation pipeline with the -drain grace period.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "darco-serve: listening on %s\n", listen)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "darco-serve:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintf(os.Stderr, "darco-serve: draining (up to %s)...\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "darco-serve: drain:", err)
		code = 1
	}
	_ = hs.Shutdown(dctx)
	return code
}

func clientMain(base, submit, cancelID string, scale float64, tenant, mode string, health, jobsList, storeList bool, timeout time.Duration) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c := serve.NewClient(base)
	c.Tenant = tenant

	dump := func(v any) int {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		return 0
	}
	switch {
	case health:
		h, err := c.Health(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		return dump(h)
	case jobsList:
		js, err := c.Jobs(ctx, tenant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		return dump(js)
	case storeList:
		entries, err := c.StoreList(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		return dump(entries)
	case cancelID != "":
		st, err := c.Cancel(ctx, cancelID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
			return 1
		}
		return dump(st)
	case submit == "":
		fmt.Fprintln(os.Stderr, "darco-serve: client mode needs -submit <ref> (or -cancel / -health / -jobs-list / -store-list)")
		return 2
	}

	resp, err := c.Submit(ctx, serve.SubmitRequest{Workload: submit, Scale: scale, Mode: mode})
	if err != nil {
		if serve.IsOverloaded(err) {
			fmt.Fprintln(os.Stderr, "darco-serve: server overloaded, retry later:", err)
		} else {
			fmt.Fprintln(os.Stderr, "darco-serve:", err)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "submitted %s as %s (key %s)\n", submit, resp.ID, resp.Key)
	if err := c.Events(ctx, resp.ID, func(ev serve.WireEvent) {
		if ev.Error != "" {
			fmt.Fprintf(os.Stderr, "event %-8s %s: %s\n", ev.Kind, ev.Job, ev.Error)
		} else if ev.Cycles != 0 {
			fmt.Fprintf(os.Stderr, "event %-8s %s (%d cycles)\n", ev.Kind, ev.Job, ev.Cycles)
		} else {
			fmt.Fprintf(os.Stderr, "event %-8s %s\n", ev.Kind, ev.Job)
		}
	}); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "darco-serve: event stream:", err)
	}
	raw, err := c.ResultRaw(ctx, resp.ID, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darco-serve:", err)
		return 1
	}
	os.Stdout.Write(raw)
	fmt.Println()
	var rec darco.Record
	if json.Unmarshal(raw, &rec) == nil && rec.Error != "" {
		fmt.Fprintln(os.Stderr, "darco-serve: job failed:", rec.Error)
		return 1
	}
	return 0
}
