// Command darco-suite runs benchmark suites through the simulation
// infrastructure and prints a per-benchmark summary (the quantities
// behind Figures 5–8 in one table), plus suite averages.
//
// Usage:
//
//	darco-suite [-scale f] [-suite name] [-bench name] [-mode m] [-jobs n] [-csv|-json]
//	darco-suite -O 1 -promote adaptive     # sweep under an ablated TOL config
//	darco-suite -passes constprop,dce,sched
//	darco-suite -cc-size 1024 -cc-policy flush-all  # bounded code cache
//	darco-suite -sample 4 -interval 200000          # sampled simulation
//	darco-suite -workload trace:run.trace.json,phased:401.bzip2+470.lbm
//	darco-suite -server http://host:8080 -timeout 30m  # run on darco-serve
//
// -workload adds programs by Source-registry reference
// ("<source>:<name>") to the selected set; given alone it replaces the
// catalog, so a suite run over only traces or composites needs no
// other flag.
//
// Benchmarks execute concurrently on a darco.Session worker pool
// (-jobs); the engine is deterministic, so the table is identical for
// any worker count. A failing benchmark no longer kills the sweep:
// the remaining benchmarks still run, the failures are reported in a
// per-benchmark error summary at the end, and the exit status is
// non-zero. -json emits an array of darco.Record (full results
// included), the interchange format cmd/darco-figs -from consumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/darco"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload dynamic-size multiplier")
	suite := flag.String("suite", "", "restrict to one suite (int, fp, physics, media)")
	bench := flag.String("bench", "", "restrict to one benchmark (exact name)")
	modeFlag := flag.String("mode", timing.ModeShared.String(), "timing mode: shared, app-only, tol-only, split")
	isaFlag := flag.String("isa", "", "guest ISA frontend: x86 or rv32 (default: per-program; benchmark names resolve through the selected frontend's catalog)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit JSON records (full results) instead of a table")
	cosim := flag.Bool("cosim", true, "verify execution against the authoritative emulator")
	passes := flag.String("passes", "", "SBM optimization pipeline (comma-separated pass names; 'none' = empty)")
	optLevel := flag.Int("O", -1, "optimization preset 0..3 (-1 = default O2; 0 disables SBM)")
	promote := flag.String("promote", "", "tier-promotion policy: fixed, adaptive")
	ccSize := flag.Int("cc-size", 0, "bound the code cache to this many instruction slots (0 = unbounded)")
	ccPolicy := flag.String("cc-policy", "", "code cache eviction policy: flush-all, fifo-region, lru-translation")
	sampleEvery := flag.Int("sample", 0, "sampled simulation: measure every Nth interval in detail (0 = full detailed run)")
	sampleInterval := flag.Uint64("interval", 0, "sampled simulation: interval length in guest instructions (0 = default)")
	sampleWarmup := flag.Uint64("warmup", 0, "sampled simulation: detailed warm-up instructions before each measured interval (0 = default)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	workloadFlag := flag.String("workload", "", "comma-separated workload references (<source>:<name>) added to the selection")
	verbose := flag.Bool("v", false, "progress to stderr")
	timeout := flag.Duration("timeout", 0, "overall deadline for the whole sweep (0 = none)")
	server := flag.String("server", "", "run on a darco-serve instance at this base URL instead of simulating locally")
	flag.Parse()

	mode, err := timing.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darco-suite:", err)
		os.Exit(2)
	}

	var specs []workload.Spec
	switch {
	case *bench != "":
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []workload.Spec{s}
	case *suite != "":
		su, err := workload.ParseSuite(*suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-suite:", err)
			os.Exit(2)
		}
		specs = workload.BySuite(su)
	case *workloadFlag == "":
		if *isaFlag == "rv32" {
			// The RV32I frontend ships a starter subset of the catalog;
			// sweeping the full x86 catalog under -isa rv32 would fail on
			// every unported entry.
			specs = workload.RV32Catalog()
		} else {
			specs = workload.Catalog()
		}
	}
	refs := make([]string, 0, len(specs))
	for _, s := range specs {
		refs = append(refs, workload.RefForISA(s.Name, *isaFlag))
	}
	if *workloadFlag != "" {
		for _, ref := range strings.Split(*workloadFlag, ",") {
			refs = append(refs, workload.RefForISA(strings.TrimSpace(ref), *isaFlag))
		}
	}

	cfg := darco.DefaultConfig()
	cfg.TOL.Cosim = *cosim
	cfg.Mode = mode
	cfg.ISA = *isaFlag
	darco.ApplyCacheFlags(&cfg.TOL, *ccSize, *ccPolicy)
	if err := darco.ApplyPipelineFlags(&cfg.TOL, *optLevel, *passes, *promote); err != nil {
		fmt.Fprintln(os.Stderr, "darco-suite:", err)
		os.Exit(2)
	}
	if err := darco.ApplySampleFlags(&cfg, *sampleEvery, *sampleInterval, *sampleWarmup); err != nil {
		fmt.Fprintln(os.Stderr, "darco-suite:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sessOpts := []darco.SessionOption{darco.WithWorkers(*jobs)}
	if *server != "" {
		sessOpts = append(sessOpts, darco.WithRemote(serve.NewClient(*server)))
	}
	if *verbose {
		sessOpts = append(sessOpts, darco.WithEvents(func(ev darco.Event) {
			if ev.Kind == darco.EventStarted {
				fmt.Fprintf(os.Stderr, "running %s...\n", ev.Job)
			}
		}))
	}
	sess := darco.NewSession(sessOpts...)
	var sessJobs []darco.Job
	for _, ref := range refs {
		job, err := darco.WithWorkload(ref, *scale, darco.WithConfig(cfg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "darco-suite:", err)
			os.Exit(2)
		}
		sessJobs = append(sessJobs, job)
	}
	batch := sess.RunBatch(ctx, sessJobs)

	t := stats.NewTable("DARCO suite summary",
		"benchmark", "suite", "guest-dyn", "static", "ratio", "cycles", "IPC",
		"tol%", "im%", "bbm%", "sbm%", "dyn-sbm%", "sbs", "ind/K", "chains", "transitions")

	var records []darco.Record
	var failures []error
	for i, br := range batch {
		prog := sessJobs[i].Program
		meta := prog.Meta()
		suiteLabel := meta.Suite
		if suiteLabel == "" {
			suiteLabel = meta.Source
		}
		records = append(records, darco.NewRecord(prog.Name(), meta.Suite, *scale, mode, br.Result, br.Err))
		if br.Err != nil {
			failures = append(failures, br.Err)
			continue
		}
		if *jsonOut {
			continue // the table is never printed on the JSON path
		}
		res := br.Result
		dyn := float64(res.GuestDyn())
		cyc := float64(res.Timing.Cycles)
		comp := func(c timing.Component) string {
			return fmt.Sprintf("%.1f", 100*res.Timing.ComponentCycles(c)/cyc)
		}
		t.AddRow(prog.Name(), suiteLabel,
			fmt.Sprint(res.GuestDyn()),
			fmt.Sprint(res.TOL.StaticTotal()),
			fmt.Sprintf("%.0f", res.DynamicStaticRatio()),
			fmt.Sprint(res.Timing.Cycles),
			fmt.Sprintf("%.2f", res.Timing.IPC()),
			fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()),
			comp(timing.CompIM), comp(timing.CompBBM), comp(timing.CompSBM),
			fmt.Sprintf("%.1f", 100*float64(res.TOL.DynSBM)/dyn),
			fmt.Sprint(res.TOL.SBCreated),
			fmt.Sprintf("%.1f", 1000*float64(res.TOL.IndirectDyn)/dyn),
			fmt.Sprint(res.TOL.Chains),
			fmt.Sprint(res.TOL.Transitions))
	}

	switch {
	case *jsonOut:
		if err := darco.EncodeRecords(os.Stdout, records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *csv:
		fmt.Print(t.CSV())
	default:
		fmt.Print(t.String())
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d of %d benchmarks failed:\n", len(failures), len(sessJobs))
		for _, err := range failures {
			// Session errors already carry the benchmark name.
			fmt.Fprintf(os.Stderr, "  %v\n", err)
		}
		os.Exit(1)
	}
}
