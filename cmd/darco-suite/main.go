// Command darco-suite runs benchmark suites through the simulation
// infrastructure and prints a per-benchmark summary (the quantities
// behind Figures 5–8 in one table), plus suite averages.
//
// Usage:
//
//	darco-suite [-scale f] [-suite name] [-bench name] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload dynamic-size multiplier")
	suite := flag.String("suite", "", "restrict to one suite (int, fp, physics, media)")
	bench := flag.String("bench", "", "restrict to one benchmark (exact name)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	cosim := flag.Bool("cosim", true, "verify execution against the authoritative emulator")
	verbose := flag.Bool("v", false, "progress to stderr")
	flag.Parse()

	specs := workload.Catalog()
	if *suite != "" {
		m := map[string]workload.Suite{
			"int": workload.SPECInt, "fp": workload.SPECFP,
			"physics": workload.Physics, "media": workload.Media,
		}
		su, ok := m[strings.ToLower(*suite)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
			os.Exit(2)
		}
		specs = workload.BySuite(su)
	}
	if *bench != "" {
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []workload.Spec{s}
	}

	t := stats.NewTable("DARCO suite summary",
		"benchmark", "suite", "guest-dyn", "static", "ratio", "cycles", "IPC",
		"tol%", "im%", "bbm%", "sbm%", "dyn-sbm%", "sbs", "ind/K", "chains", "transitions")

	for _, s := range specs {
		s = s.Scale(*scale)
		if *verbose {
			fmt.Fprintf(os.Stderr, "running %s...\n", s.Name)
		}
		p, err := s.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := darco.DefaultConfig()
		cfg.TOL.Cosim = *cosim
		res, err := darco.Run(p, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Name, err)
			os.Exit(1)
		}
		dyn := float64(res.GuestDyn())
		cyc := float64(res.Timing.Cycles)
		comp := func(c timing.Component) string {
			return fmt.Sprintf("%.1f", 100*res.Timing.ComponentCycles(c)/cyc)
		}
		t.AddRow(s.Name, s.Suite.String(),
			fmt.Sprint(res.GuestDyn()),
			fmt.Sprint(res.TOL.StaticTotal()),
			fmt.Sprintf("%.0f", res.DynamicStaticRatio()),
			fmt.Sprint(res.Timing.Cycles),
			fmt.Sprintf("%.2f", res.Timing.IPC()),
			fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()),
			comp(timing.CompIM), comp(timing.CompBBM), comp(timing.CompSBM),
			fmt.Sprintf("%.1f", 100*float64(res.TOL.DynSBM)/dyn),
			fmt.Sprint(res.TOL.SBCreated),
			fmt.Sprintf("%.1f", 1000*float64(res.TOL.IndirectDyn)/dyn),
			fmt.Sprint(res.TOL.Chains),
			fmt.Sprint(res.TOL.Transitions))
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}
