// Command darco runs one or more workloads (or a catalog listing)
// through the full simulation infrastructure and prints the detailed
// result: the execution-time breakdown, TOL component split,
// cache/branch statistics and co-design activity counters.
//
// Usage:
//
//	darco -bench 400.perlbench [-scale f] [-mode shared|app-only|tol-only|split]
//	darco -bench 400.perlbench,470.lbm -jobs 4 -json
//	darco -workload phased:401.bzip2+462.libquantum -cc-size 2048
//	darco -workload file:mybench.json                     # JSON-defined spec
//	darco -bench 470.lbm -record lbm.trace.json           # record a trace...
//	darco -workload trace:lbm.trace.json -O 1             # ...replay it anywhere
//	darco -bench 470.lbm -passes constprop,dce,sched      # ablate one pass
//	darco -bench 470.lbm -O 1 -promote adaptive           # preset + policy
//	darco -bench 470.lbm -cc-size 512 -cc-policy lru-translation
//	darco -bench 470.lbm -sample 4 -interval 200000 -warmup 20000  # sampled simulation
//	darco -bench 470.lbm -server http://host:8080        # run on darco-serve
//	darco -bench 470.lbm -timeout 5m                     # overall deadline
//	darco -list
//	darco -print-config
//
// Workloads are selected by reference through the workload Source
// registry: -workload takes "<source>:<name>" references (synthetic:,
// file:, trace:, phased:), and -bench remains the shorthand for
// synthetic catalog names. With several workloads the runs execute
// concurrently on a darco.Session worker pool (-jobs); the engine is
// deterministic, so the results are identical to sequential runs.
// -json emits an array of darco.Record (full results included), the
// interchange format cmd/darco-figs -from consumes. Interrupting the
// process (Ctrl-C) or exceeding -timeout cancels in-flight simulations
// promptly. With -server the session executes on a remote darco-serve
// instance (cmd/darco-serve) instead of simulating locally; results
// and failure reporting are identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/darco"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "comma-separated benchmark names (see -list)")
	workloadFlag := flag.String("workload", "", "comma-separated workload references (<source>:<name>; sources: "+strings.Join(workload.Sources(), ", ")+")")
	record := flag.String("record", "", "record the selected workload's guest image to this trace file (replay with -workload trace:<file>); requires exactly one workload")
	scale := flag.Float64("scale", 1.0, "workload dynamic-size multiplier")
	modeFlag := flag.String("mode", timing.ModeShared.String(), "timing mode: shared, app-only, tol-only, split")
	isaFlag := flag.String("isa", "", "guest ISA frontend: x86 or rv32 (default: per-program; -bench names resolve through the selected frontend's catalog)")
	list := flag.Bool("list", false, "list catalog benchmarks and exit")
	printConfig := flag.Bool("print-config", false, "print the Table I host configuration and exit")
	cosim := flag.Bool("cosim", true, "verify against the authoritative emulator")
	sbth := flag.Int("sbth", 0, "override BB/SBth promotion threshold")
	bbth := flag.Int("bbth", 0, "override IM/BBth promotion threshold")
	passes := flag.String("passes", "", "SBM optimization pipeline (comma-separated pass names; 'none' = empty)")
	optLevel := flag.Int("O", -1, "optimization preset 0..3 (-1 = default O2; 0 disables SBM)")
	promote := flag.String("promote", "", "tier-promotion policy: fixed, adaptive")
	ccSize := flag.Int("cc-size", 0, "bound the code cache to this many instruction slots (0 = unbounded)")
	ccPolicy := flag.String("cc-policy", "", "code cache eviction policy: flush-all, fifo-region, lru-translation")
	sampleEvery := flag.Int("sample", 0, "sampled simulation: measure every Nth interval in detail (0 = full detailed run)")
	sampleInterval := flag.Uint64("interval", 0, "sampled simulation: interval length in guest instructions (0 = default)")
	sampleWarmup := flag.Uint64("warmup", 0, "sampled simulation: detailed warm-up instructions before each measured interval (0 = default)")
	jsonOut := flag.Bool("json", false, "emit results as JSON records instead of tables")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "overall deadline for the whole run (0 = none)")
	server := flag.String("server", "", "run on a darco-serve instance at this base URL instead of simulating locally")
	flag.Parse()

	if *printConfig {
		dumpConfig()
		return
	}
	if *list {
		for _, s := range workload.Catalog() {
			fmt.Printf("%-22s %s\n", s.Name, s.Suite)
		}
		fmt.Printf("\nworkload sources: %s\n", strings.Join(workload.Sources(), ", "))
		return
	}
	if *bench == "" && *workloadFlag == "" {
		fmt.Fprintln(os.Stderr, "darco: -bench or -workload required (or -list / -print-config)")
		os.Exit(2)
	}

	mode, err := timing.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darco:", err)
		os.Exit(2)
	}

	cfg := darco.DefaultConfig()
	cfg.TOL.Cosim = *cosim
	cfg.Mode = mode
	cfg.ISA = *isaFlag
	if *sbth > 0 {
		cfg.TOL.SBThreshold = *sbth
	}
	if *bbth > 0 {
		cfg.TOL.BBThreshold = *bbth
	}
	darco.ApplyCacheFlags(&cfg.TOL, *ccSize, *ccPolicy)
	if err := darco.ApplyPipelineFlags(&cfg.TOL, *optLevel, *passes, *promote); err != nil {
		fmt.Fprintln(os.Stderr, "darco:", err)
		os.Exit(2)
	}
	if err := darco.ApplySampleFlags(&cfg, *sampleEvery, *sampleInterval, *sampleWarmup); err != nil {
		fmt.Fprintln(os.Stderr, "darco:", err)
		os.Exit(2)
	}

	var refs []string
	if *bench != "" {
		for _, name := range strings.Split(*bench, ",") {
			refs = append(refs, workload.RefForISA(strings.TrimSpace(name), *isaFlag))
		}
	}
	if *workloadFlag != "" {
		for _, ref := range strings.Split(*workloadFlag, ",") {
			refs = append(refs, workload.RefForISA(strings.TrimSpace(ref), *isaFlag))
		}
	}
	var sessJobs []darco.Job
	for _, ref := range refs {
		job, err := darco.WithWorkload(ref, *scale, darco.WithConfig(cfg))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sessJobs = append(sessJobs, job)
	}

	if *record != "" {
		if len(sessJobs) != 1 {
			fmt.Fprintf(os.Stderr, "darco: -record captures exactly one workload, got %d\n", len(sessJobs))
			os.Exit(2)
		}
		if err := workload.RecordTrace(*record, sessJobs[0].Program); err != nil {
			fmt.Fprintln(os.Stderr, "darco:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recorded %s -> %s (replay with -workload trace:%s)\n",
			sessJobs[0].Program.Name(), *record, *record)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sessOpts := []darco.SessionOption{darco.WithWorkers(*jobs)}
	if *server != "" {
		sessOpts = append(sessOpts, darco.WithRemote(serve.NewClient(*server)))
	}
	sess := darco.NewSession(sessOpts...)
	batch := sess.RunBatch(ctx, sessJobs)

	var records []darco.Record
	failed := 0
	for i, br := range batch {
		prog := sessJobs[i].Program
		records = append(records, darco.NewRecord(prog.Name(), prog.Meta().Suite, *scale, mode, br.Result, br.Err))
		if br.Err != nil {
			failed++
			if !*jsonOut {
				// Session errors already carry the benchmark name.
				fmt.Fprintln(os.Stderr, br.Err)
			}
		} else if !*jsonOut {
			report(prog, br.Result)
		}
	}
	if *jsonOut {
		if err := darco.EncodeRecords(os.Stdout, records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func report(prog workload.Program, res *darco.Result) {
	tr := res.Timing
	cyc := float64(tr.Cycles)
	meta := prog.Meta()
	origin := meta.Suite
	if origin == "" {
		origin = meta.Source
	}
	if meta.Phases > 1 {
		origin = fmt.Sprintf("%s, %d phases", origin, meta.Phases)
	}
	fmt.Printf("benchmark        %s (%s)\n", prog.Name(), origin)
	fmt.Printf("guest insts      %d (static %d, dyn/static %.0f)\n",
		res.GuestDyn(), res.TOL.StaticTotal(), res.DynamicStaticRatio())
	fmt.Printf("host insts       %d (app %d, tol %d)\n",
		tr.TotalInsts(), tr.Insts[timing.OwnerApp], tr.Insts[timing.OwnerTOL])
	fmt.Printf("cycles           %d   IPC %.3f\n", tr.Cycles, tr.IPC())
	fmt.Printf("TOL overhead     %.2f%% of execution time\n\n", 100*tr.TOLShare())

	if rep := res.Sampled; rep != nil {
		note := ""
		if rep.FFCached {
			note = "; fast-forward served from store"
		}
		st := stats.NewTable(
			fmt.Sprintf("Sampled estimates (%d of %d intervals measured%s — timing quantities below are estimates)",
				len(rep.Measured), rep.Intervals, note),
			"metric", "estimate", "95% CI", "rel err")
		for _, m := range rep.Metrics {
			st.AddRow(m.Name, fmt.Sprintf("%.6g", m.Estimate),
				fmt.Sprintf("%.3g", m.CI95), stats.Pct(m.RelErr))
		}
		fmt.Println(st.String())
	}

	bt := stats.NewTable("Execution-time breakdown (Fig. 6/7 quantities)", "component", "% of cycles")
	for _, c := range []timing.Component{
		timing.CompApp, timing.CompTOLOther, timing.CompIM, timing.CompBBM,
		timing.CompSBM, timing.CompChaining, timing.CompCodeCacheLookup,
	} {
		bt.AddRowf(2, c.String(), 100*tr.ComponentCycles(c)/cyc)
	}
	fmt.Println(bt.String())

	bb := stats.NewTable("Cycle accounting (Fig. 9 quantities)", "category", "app %", "tol %")
	bb.AddRowf(2, "instructions",
		100*tr.InstCycles[timing.OwnerApp]/cyc, 100*tr.InstCycles[timing.OwnerTOL]/cyc)
	for k := timing.BubbleKind(0); k < timing.NumBubbleKinds; k++ {
		bb.AddRowf(2, k.String()+" bubbles",
			100*tr.Bubbles[timing.OwnerApp][k]/cyc, 100*tr.Bubbles[timing.OwnerTOL][k]/cyc)
	}
	fmt.Println(bb.String())

	ct := stats.NewTable("Microarchitecture", "structure", "accesses", "miss rate")
	ct.AddRow("L1I", fmt.Sprint(tr.L1I.Accesses[0]+tr.L1I.Accesses[1]), stats.Pct(tr.L1I.MissRate()))
	ct.AddRow("L1D", fmt.Sprint(tr.L1D.Accesses[0]+tr.L1D.Accesses[1]), stats.Pct(tr.L1D.MissRate()))
	ct.AddRow("L2", fmt.Sprint(tr.L2.Accesses[0]+tr.L2.Accesses[1]), stats.Pct(tr.L2.MissRate()))
	ct.AddRow("L1 TLB", fmt.Sprint(tr.L1TLB.Accesses[0]+tr.L1TLB.Accesses[1]), stats.Pct(tr.L1TLB.MissRate()))
	ct.AddRow("L2 TLB", fmt.Sprint(tr.L2TLB.Accesses[0]+tr.L2TLB.Accesses[1]), stats.Pct(tr.L2TLB.MissRate()))
	ct.AddRow("branch pred", fmt.Sprint(tr.Branch.Branches[0]+tr.Branch.Branches[1]), stats.Pct(tr.Branch.MispredictRate()))
	fmt.Println(ct.String())

	tt := stats.NewTable("TOL activity", "metric", "value")
	tt.AddRow("mode dyn IM/BBM/SBM", fmt.Sprintf("%d / %d / %d", res.TOL.DynIM, res.TOL.DynBBM, res.TOL.DynSBM))
	im, bbm, sbm := res.TOL.StaticCounts()
	tt.AddRow("mode static IM/BBM/SBM", fmt.Sprintf("%d / %d / %d", im, bbm, sbm))
	tt.AddRow("BBs translated", fmt.Sprint(res.TOL.BBTranslated))
	tt.AddRow("SBM invocations", fmt.Sprint(res.TOL.SBCreated))
	tt.AddRow("chains", fmt.Sprint(res.TOL.Chains))
	tt.AddRow("IBTC fills", fmt.Sprint(res.TOL.IBTCFills))
	tt.AddRow("indirect branches (dyn)", fmt.Sprint(res.TOL.IndirectDyn))
	tt.AddRow("code cache lookups", fmt.Sprint(res.TOL.Lookups))
	tt.AddRow("transitions to TOL", fmt.Sprint(res.TOL.Transitions))
	tt.AddRow("code cache insts", fmt.Sprint(res.CodeCacheInsts))
	tt.AddRow("code cache peak", fmt.Sprint(res.TOL.CacheOccupancyPeak))
	tt.AddRow("evictions / flushes", fmt.Sprintf("%d / %d", res.TOL.Evictions, res.TOL.FlushCount))
	tt.AddRow("retranslations", fmt.Sprint(res.TOL.Retranslations))
	tt.AddRow("cosim checks", fmt.Sprint(res.TOL.CosimChecks))
	fmt.Println(tt.String())

	if len(res.TOL.SBPasses) > 0 {
		sbmCyc := tr.ComponentCycles(timing.CompSBM)
		total := float64(res.TOL.SBMInstTotal())
		pt := stats.NewTable("SBM optimizer by pass (Fig. 7b quantities)",
			"pass", "runs", "visits", "eliminated", "% of SBM time")
		share := func(insts uint64) string {
			if total == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(insts)/total)
		}
		for _, ps := range res.TOL.SBPasses {
			pt.AddRow(ps.Pass, fmt.Sprint(ps.Runs), fmt.Sprint(ps.Visits),
				fmt.Sprint(ps.Eliminated), share(ps.CostInsts))
		}
		pt.AddRow("(trace+emit)", "", "", "", share(res.TOL.SBOtherInsts))
		pt.AddRow("SBM total", "", "", "", fmt.Sprintf("%.2f%% of cycles", 100*sbmCyc/cyc))
		fmt.Println(pt.String())
	}
}

func dumpConfig() {
	cfg := timing.DefaultConfig()
	t := stats.NewTable("Host processor microarchitectural parameters (paper Table I)",
		"component", "parameter", "value")
	t.AddRow("General", "Issue width", fmt.Sprint(cfg.IssueWidth))
	t.AddRow("Instruction queue", "Size", fmt.Sprint(cfg.IQSize))
	t.AddRow("Branch predictor", "History register bits", fmt.Sprint(cfg.BPHistoryBits))
	t.AddRow("", "Misprediction penalty", fmt.Sprint(cfg.MispredictPenalty))
	t.AddRow("L1 I-Cache", "Size", fmt.Sprint(cfg.L1I.Size))
	t.AddRow("", "Block/Assoc", fmt.Sprintf("%dB/%d", cfg.L1I.BlockSize, cfg.L1I.Assoc))
	t.AddRow("", "Hit latency", fmt.Sprint(cfg.L1I.HitLatency))
	t.AddRow("L1 D-Cache", "Size", fmt.Sprint(cfg.L1D.Size))
	t.AddRow("", "Block/Assoc", fmt.Sprintf("%dB/%d", cfg.L1D.BlockSize, cfg.L1D.Assoc))
	t.AddRow("", "Hit latency", fmt.Sprint(cfg.L1D.HitLatency))
	t.AddRow("Stride prefetcher", "Entries", fmt.Sprint(cfg.PrefetcherEntries))
	t.AddRow("L2 U-Cache", "Size", fmt.Sprint(cfg.L2.Size))
	t.AddRow("", "Block/Assoc", fmt.Sprintf("%dB/%d", cfg.L2.BlockSize, cfg.L2.Assoc))
	t.AddRow("", "Hit latency", fmt.Sprint(cfg.L2.HitLatency))
	t.AddRow("Main memory", "Hit latency", fmt.Sprint(cfg.MemLatency))
	t.AddRow("L1 TLB", "Entries/Assoc", fmt.Sprintf("%d/%d", cfg.L1TLB.Entries, cfg.L1TLB.Assoc))
	t.AddRow("", "Hit latency", fmt.Sprint(cfg.L1TLB.HitLatency))
	t.AddRow("L2 TLB", "Entries/Assoc", fmt.Sprintf("%d/%d", cfg.L2TLB.Entries, cfg.L2TLB.Assoc))
	t.AddRow("", "Hit latency", fmt.Sprint(cfg.L2TLB.HitLatency))
	fmt.Print(t.String())
}
