package repro

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/darco"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestSessionConcurrentMatchesSequential runs the figSubset through a
// darco.Session both sequentially (one worker) and concurrently (many
// workers) and requires byte-identical results — the determinism
// guarantee that lets the figure harness parallelize the paper's
// sweeps.
func TestSessionConcurrentMatchesSequential(t *testing.T) {
	jobsFor := func() []darco.Job {
		var jobs []darco.Job
		for _, name := range figSubset {
			spec, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = spec.Scale(0.25)
			jobs = append(jobs, darco.Job{
				Name:    spec.Name,
				Variant: "scale=0.25",
				Program: workload.SpecProgram{Spec: spec},
				Opts:    []darco.Option{darco.WithCosim(false)},
			})
		}
		return jobs
	}

	marshal := func(res *darco.Result) string {
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	seq := darco.NewSession(darco.WithWorkers(1)).RunBatch(context.Background(), jobsFor())
	par := darco.NewSession(darco.WithWorkers(4)).RunBatch(context.Background(), jobsFor())
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: seq err=%v par err=%v", seq[i].Job.Name, seq[i].Err, par[i].Err)
		}
		if marshal(seq[i].Result) != marshal(par[i].Result) {
			t.Errorf("%s: concurrent result differs from sequential", seq[i].Job.Name)
		}
	}
}

// TestFiguresDeterministicAcrossJobs regenerates the figure tables at
// -jobs 1 and -jobs 4 and requires identical rendered output — the
// acceptance property of the parallel experiments runner (including
// the two-leg interaction figures 10/11).
func TestFiguresDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the figure subset twice")
	}
	render := func(jobs int) []string {
		opts := experiments.DefaultOptions()
		opts.Scale = 0.25
		opts.Benchmarks = figSubset
		opts.Config.TOL.Cosim = false
		opts.Jobs = jobs
		r, err := experiments.NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		add := func(tables ...*stats.Table) {
			for _, tb := range tables {
				out = append(out, tb.String())
			}
		}
		t5a, t5b, err := r.Fig5()
		if err != nil {
			t.Fatal(err)
		}
		add(t5a, t5b)
		t6, err := r.Fig6()
		if err != nil {
			t.Fatal(err)
		}
		add(t6)
		t8, err := r.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		add(t8)
		t10, err := r.Fig10()
		if err != nil {
			t.Fatal(err)
		}
		add(t10)
		t11a, t11b, err := r.Fig11()
		if err != nil {
			t.Fatal(err)
		}
		add(t11a, t11b)
		return out
	}

	one := render(1)
	four := render(4)
	if len(one) != len(four) {
		t.Fatalf("table counts differ: %d vs %d", len(one), len(four))
	}
	for i := range one {
		if one[i] != four[i] {
			t.Errorf("table %d differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s",
				i, one[i], four[i])
		}
	}
}
