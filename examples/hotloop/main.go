// Hotloop: the libquantum scenario — a tiny kernel with an extreme
// dynamic/static instruction ratio. The example shows how the staged
// translation amortizes: the same program is run with interpretation
// only, with basic-block translation, and with the full superblock
// optimizer, and the cycle counts are compared.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("462.libquantum")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(0.5)

	t := stats.NewTable("Staged translation on a hot loop (462.libquantum-like)",
		"configuration", "cycles", "IPC", "tol-share", "dyn IM", "dyn BBM", "dyn SBM")

	type cfgCase struct {
		name string
		mut  func(*darco.Config)
	}
	cases := []cfgCase{
		{"IM only (no translation)", func(c *darco.Config) {
			c.TOL.BBThreshold = 1 << 30
		}},
		{"IM + BBM (no optimizer)", func(c *darco.Config) {
			c.TOL.EnableSBM = false
		}},
		{"IM + BBM + SBM (full TOL)", func(c *darco.Config) {}},
	}

	var cycles []uint64
	for _, cc := range cases {
		p, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		cfg := darco.DefaultConfig()
		cc.mut(&cfg)
		res, err := darco.Run(context.Background(), p, darco.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		cycles = append(cycles, res.Timing.Cycles)
		t.AddRow(cc.name,
			fmt.Sprint(res.Timing.Cycles),
			fmt.Sprintf("%.2f", res.Timing.IPC()),
			stats.Pct(res.Timing.TOLShare()),
			fmt.Sprint(res.TOL.DynIM), fmt.Sprint(res.TOL.DynBBM), fmt.Sprint(res.TOL.DynSBM))
	}
	fmt.Println(t.String())
	fmt.Printf("speedup BBM over IM-only: %.1fx\n", float64(cycles[0])/float64(cycles[1]))
	fmt.Printf("speedup SBM over BBM:     %.2fx\n", float64(cycles[1])/float64(cycles[2]))
	fmt.Printf("total staged speedup:     %.1fx\n", float64(cycles[0])/float64(cycles[2]))
}
