// Indirect: the perlbench scenario — indirect-branch heavy code and
// its cost on a co-designed processor. The example contrasts the same
// workload with the IBTC enabled and disabled, showing how much the
// inline translation cache saves over transitioning to TOL for a code
// cache lookup on every indirect branch (the paper's Section III-B
// discussion).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("400.perlbench")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(0.5)

	t := stats.NewTable("Indirect-branch handling (400.perlbench-like)",
		"configuration", "cycles", "tol-share", "code$-lookup%", "tol-other%", "transitions", "ibtc-fills")

	for _, ibtc := range []bool{true, false} {
		p, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		tc := darco.DefaultConfig().TOL
		tc.EnableIBTC = ibtc
		res, err := darco.Run(context.Background(), p, darco.WithTOLConfig(tc))
		if err != nil {
			log.Fatal(err)
		}
		name := "IBTC enabled"
		if !ibtc {
			name = "IBTC disabled (TOL on every indirect)"
		}
		cyc := float64(res.Timing.Cycles)
		t.AddRow(name,
			fmt.Sprint(res.Timing.Cycles),
			stats.Pct(res.Timing.TOLShare()),
			fmt.Sprintf("%.2f", 100*res.Timing.ComponentCycles(timing.CompCodeCacheLookup)/cyc),
			fmt.Sprintf("%.2f", 100*res.Timing.ComponentCycles(timing.CompTOLOther)/cyc),
			fmt.Sprint(res.TOL.Transitions),
			fmt.Sprint(res.TOL.IBTCFills))
	}
	fmt.Println(t.String())
	fmt.Println("Without the IBTC every guest indirect branch transitions to TOL for a")
	fmt.Println("code cache lookup — the dominant overhead the paper reports for")
	fmt.Println("indirect-branch heavy applications like 400.perlbench.")
}
