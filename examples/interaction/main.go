// Interaction: the Figure 10/11 experiment on one benchmark — how much
// do TOL and the emulated application interfere on the shared
// microarchitectural resources? The same deterministic execution is
// timed twice: once with shared caches/predictor and once with
// per-entity private copies ("interaction not modeled"), and the
// per-entity attributed cycles are compared.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "400.perlbench", "benchmark to analyze")
	scale := flag.Float64("scale", 2.0, "workload dynamic-size multiplier")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scale(*scale)
	p, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Identical streams; timing-only experiment, so skip co-simulation.
	ir, err := darco.RunInteraction(context.Background(), p, darco.WithCosim(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s, %d guest instructions\n\n", spec.Name, ir.Shared.GuestDyn())

	t := stats.NewTable("Interaction on shared resources (paper Fig. 10)",
		"entity", "cycles w/ interaction", "cycles w/o interaction", "slowdown")
	appW := ir.Shared.Timing.OwnerCycles(timing.OwnerApp)
	appWo := ir.Split.Timing.OwnerCycles(timing.OwnerApp)
	tolW := ir.Shared.Timing.OwnerCycles(timing.OwnerTOL)
	tolWo := ir.Split.Timing.OwnerCycles(timing.OwnerTOL)
	t.AddRow("application", fmt.Sprintf("%.0f", appW), fmt.Sprintf("%.0f", appWo),
		fmt.Sprintf("%.3f", ir.AppSlowdown()))
	t.AddRow("TOL", fmt.Sprintf("%.0f", tolW), fmt.Sprintf("%.0f", tolWo),
		fmt.Sprintf("%.3f", ir.TOLSlowdown()))
	fmt.Println(t.String())

	pt := stats.NewTable("Potential improvement if interaction eliminated (paper Fig. 11)",
		"entity", "d$-miss", "i$-miss", "sched", "branch")
	for _, o := range []timing.Owner{timing.OwnerTOL, timing.OwnerApp} {
		pt.AddRow(o.String(),
			stats.Pct(ir.Potential(o, timing.BubbleDMiss)),
			stats.Pct(ir.Potential(o, timing.BubbleIMiss)),
			stats.Pct(ir.Potential(o, timing.BubbleSched)),
			stats.Pct(ir.Potential(o, timing.BubbleBranch)))
	}
	fmt.Println(pt.String())
}
