// Phases: the workload-source API in one sitting. A phased composite
// moves through distinct hot working sets, so a bounded code cache
// must evict the previous phase's translations and retranslate on any
// return — activity a single benchmark never triggers at steady
// state. The example opens composites of growing length through the
// Source registry, runs them unbounded and bounded, and then records
// one to a trace and replays it, showing the replay is exact.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const capacity = 640
	refs := []string{
		"phased:401.bzip2",
		"phased:401.bzip2+462.libquantum",
		"phased:401.bzip2+462.libquantum+429.mcf",
	}

	t := stats.NewTable(
		fmt.Sprintf("Phase behaviour under a %d-slot code cache", capacity),
		"workload", "phases", "cc", "cycles", "evictions", "retrans", "cc-peak")

	sess := darco.NewSession()
	for _, ref := range refs {
		p, err := workload.Open(ref)
		if err != nil {
			log.Fatal(err)
		}
		p, err = workload.ScaleProgram(p, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		for _, bounded := range []bool{false, true} {
			var opts []darco.Option
			cc := "unbounded"
			if bounded {
				opts = append(opts, darco.WithCodeCache(capacity, "lru-translation"))
				cc = fmt.Sprint(capacity)
			}
			res, err := sess.Run(context.Background(), darco.JobForProgram(p, 0.3, opts...))
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(p.Name(), fmt.Sprint(p.Meta().Phases), cc,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprint(res.TOL.CacheOccupancyPeak))
		}
	}
	fmt.Println(t.String())

	// Record the longest composite and replay it: the trace rebuilds
	// the exact guest image, so the replay's stats match the direct
	// run's under the same configuration.
	last, err := workload.Open(refs[len(refs)-1])
	if err != nil {
		log.Fatal(err)
	}
	last, err = workload.ScaleProgram(last, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "phases.trace.json")
	if err := workload.RecordTrace(path, last); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	replay, err := workload.Open("trace:" + path)
	if err != nil {
		log.Fatal(err)
	}
	opts := []darco.Option{darco.WithCodeCache(capacity, "lru-translation")}
	direct, err := sess.Run(context.Background(), darco.JobForProgram(last, 0.3, opts...))
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := sess.Run(context.Background(), darco.JobForProgram(replay, 0.3, opts...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s -> %s\n", last.Name(), path)
	fmt.Printf("replay cycles %d vs direct %d, evictions %d vs %d (exact: %v)\n",
		replayed.Timing.Cycles, direct.Timing.Cycles,
		replayed.TOL.Evictions, direct.TOL.Evictions,
		replayed.Timing.Cycles == direct.Timing.Cycles &&
			reflect.DeepEqual(replayed.TOL, direct.TOL))
}
