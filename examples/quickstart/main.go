// Quickstart: build a tiny guest program with the guest.Builder API,
// run it through the full co-designed processor (TOL + timing
// simulator, with co-simulation against the authoritative emulator),
// and print where the time went.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/darco"
	"repro/internal/guest"
	"repro/internal/timing"
)

func main() {
	// A guest program: sum the first 100_000 integers.
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0) // sum
	b.MovRI(guest.ECX, 1) // i
	b.Label("loop")
	b.AddRR(guest.EAX, guest.ECX)
	b.Inc(guest.ECX)
	b.CmpRI(guest.ECX, 100_001)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Run it on the co-designed processor. The context can cancel a
	// long simulation mid-flight; options tweak the default config.
	res, err := darco.Run(context.Background(), prog, darco.WithCosim(true))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result (eax)        = %d\n", res.Final.Regs[guest.EAX])
	fmt.Printf("guest instructions  = %d\n", res.GuestDyn())
	fmt.Printf("host instructions   = %d\n", res.Timing.TotalInsts())
	fmt.Printf("cycles              = %d (IPC %.2f)\n", res.Timing.Cycles, res.Timing.IPC())
	fmt.Printf("TOL overhead        = %.2f%%\n", 100*res.Timing.TOLShare())
	fmt.Printf("dyn IM/BBM/SBM      = %d / %d / %d\n",
		res.TOL.DynIM, res.TOL.DynBBM, res.TOL.DynSBM)
	fmt.Printf("translations        = %d BBs, %d superblocks\n",
		res.TOL.BBTranslated, res.TOL.SBCreated)
	fmt.Printf("cosim state checks  = %d (all passed)\n", res.TOL.CosimChecks)

	// The hot loop must have been promoted to an optimized superblock
	// that executes from the code cache without TOL involvement.
	if res.TOL.DynSBM < res.GuestDyn()*9/10 {
		log.Fatalf("expected SBM to dominate, got %d of %d", res.TOL.DynSBM, res.GuestDyn())
	}
	appShare := 100 * res.Timing.ComponentCycles(timing.CompApp) / float64(res.Timing.Cycles)
	fmt.Printf("application share   = %.2f%% of cycles\n", appShare)
}
