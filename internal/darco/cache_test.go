package darco

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/guest"
	"repro/internal/workload"
)

// pressureLoop builds a guest program with `loops` distinct hot inner
// loops run `outer` times, whose translated footprint overflows a
// small bounded code cache on every outer iteration.
func pressureLoop(loops, iters, outer int32) func() (*guest.Program, error) {
	return func() (*guest.Program, error) {
		b := guest.NewBuilder()
		b.MovRI(guest.ESI, outer)
		b.MovRI(guest.EDI, 0)
		b.Label("outer")
		for k := int32(0); k < loops; k++ {
			lbl := fmt.Sprintf("loop%d", k)
			b.MovRI(guest.ECX, iters)
			b.MovRI(guest.EAX, k+1)
			b.Label(lbl)
			b.AddRI(guest.EAX, 3)
			b.XorRI(guest.EAX, int32(0x55+k))
			b.Shl(guest.EAX, 1)
			b.AddRR(guest.EDI, guest.EAX)
			b.Call("sub")
			b.Dec(guest.ECX)
			b.Jcc(guest.CondNE, lbl)
		}
		b.Dec(guest.ESI)
		b.Jcc(guest.CondNE, "outer")
		b.Halt()
		b.Label("sub")
		b.AddRI(guest.EDI, 7)
		b.Ret()
		return b.Build()
	}
}

// ccSweepJobs builds the cache-pressure sweep job list: the unbounded
// baseline plus every policy at every capacity.
func ccSweepJobs(build func() (*guest.Program, error)) []Job {
	jobs := []Job{{Name: "pressure", Variant: "cc=inf", Program: workload.Func("pressure", build)}}
	for _, policy := range []string{"flush-all", "fifo-region", "lru-translation"} {
		for _, capacity := range []int{2048, 1024, 512} {
			jobs = append(jobs, Job{
				Name:    "pressure",
				Variant: fmt.Sprintf("cc=%d/%s", capacity, policy),
				Program: workload.Func("pressure", build),
				Opts:    []Option{WithCosim(true), WithCodeCache(capacity, policy)},
			})
		}
	}
	return jobs
}

// TestCacheSweepDeterministicAcrossWorkers is the -cc-size sweep
// determinism guarantee: running the whole capacity × policy matrix
// through a Session with one worker and with several must produce
// byte-identical results, eviction statistics included.
func TestCacheSweepDeterministicAcrossWorkers(t *testing.T) {
	build := pressureLoop(12, 30, 3)
	run := func(workers int) []string {
		sess := NewSession(WithWorkers(workers))
		batch := sess.RunBatch(context.Background(), ccSweepJobs(build))
		out := make([]string, len(batch))
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("%s %s: %v", br.Job.Name, br.Job.Variant, br.Err)
			}
			blob, err := json.Marshal(br.Result)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(blob)
		}
		return out
	}
	sequential := run(1)
	concurrent := run(4)
	evicting := 0
	for i := range sequential {
		if sequential[i] != concurrent[i] {
			t.Fatalf("job %d differs between 1 and 4 workers", i)
		}
		var res Result
		if err := json.Unmarshal([]byte(sequential[i]), &res); err != nil {
			t.Fatal(err)
		}
		if res.TOL.Evictions > 0 {
			evicting++
		}
	}
	if evicting == 0 {
		t.Fatal("sweep exercised no evictions — shrink the capacities")
	}
}

// TestBoundedWithoutPressureIsCycleIdentical is the acceptance
// criterion at the controller level: a bound far above the working set
// (so no eviction fires) must reproduce the unbounded run exactly,
// cycles included.
func TestBoundedWithoutPressureIsCycleIdentical(t *testing.T) {
	prog, err := pressureLoop(6, 30, 2)()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(context.Background(), prog, WithCodeCache(1<<20, "fifo-region"))
	if err != nil {
		t.Fatal(err)
	}
	if bounded.TOL.Evictions != 0 {
		t.Fatalf("unexpected evictions under a 1M-inst bound: %d", bounded.TOL.Evictions)
	}
	// The occupancy peak is the one intended difference: bounded runs
	// report it, unbounded runs (whose records must stay byte-identical
	// to pre-bounded ones) do not.
	if bounded.TOL.CacheOccupancyPeak == 0 {
		t.Fatal("bounded run should report its occupancy peak")
	}
	bounded.TOL.CacheOccupancyPeak = 0
	a, _ := json.Marshal(base)
	b, _ := json.Marshal(bounded)
	if string(a) != string(b) {
		t.Fatalf("bounded-but-unpressured run differs from unbounded:\n%s\nvs\n%s", a, b)
	}
}

// TestSessionNoPreloadBypassesPreload checks that sweep jobs which opt
// out of preloading really simulate instead of being served a
// preloaded result from a different configuration.
func TestSessionNoPreloadBypassesPreload(t *testing.T) {
	prog, err := pressureLoop(4, 20, 1)()
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(WithWorkers(1))
	// Poison the preload slot for this (name, mode): a job that honours
	// preloads would get the poisoned result back.
	poisoned := *genuine
	poisoned.Translations = -1
	sess.Preload("p", DefaultConfig().Mode, &poisoned)

	build := func() (*guest.Program, error) { return prog, nil }
	served, err := sess.Run(context.Background(), Job{Name: "p", Program: workload.Func("p", build)})
	if err != nil {
		t.Fatal(err)
	}
	if served.Translations != -1 {
		t.Fatal("job without NoPreload should have been served the preloaded result")
	}
	fresh, err := sess.Run(context.Background(), Job{Name: "p", Variant: "v2", Program: workload.Func("p", build), NoPreload: true})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Translations == -1 {
		t.Fatal("NoPreload job was served the preloaded result")
	}
}
