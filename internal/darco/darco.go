// Package darco is the controller of the simulation infrastructure:
// it wires the co-design component (TOL + host CPU) to the timing
// simulator, runs guest programs end to end, and collects the combined
// results. It corresponds to the "Controller" box of the
// infrastructure's architecture: the main interface for running
// experiments.
//
// Co-simulation against the authoritative guest emulator (the x86
// component) is performed inside the engine when enabled; the
// controller additionally exposes isolation runs (ignoring the TOL or
// application stream) used by the interaction experiments.
package darco

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
)

// Config selects the TOL policies, the host microarchitecture, and the
// stream mode of a run.
type Config struct {
	TOL    tol.Config
	Timing timing.Config
	Mode   timing.Mode

	// MaxCycles aborts runaway timing simulations (0 = default guard).
	MaxCycles uint64
}

// DefaultConfig returns the paper's host configuration with the scaled
// TOL thresholds of tol.DefaultConfig.
func DefaultConfig() Config {
	return Config{
		TOL:    tol.DefaultConfig(),
		Timing: timing.DefaultConfig(),
		Mode:   timing.ModeShared,
	}
}

// Result combines the timing and TOL views of one run.
type Result struct {
	Timing *timing.Result
	TOL    tol.Stats

	// Code cache occupancy at the end of the run.
	CodeCacheInsts int
	Translations   int

	// Final guest architectural state.
	Final guest.State
}

// GuestDyn returns the number of guest instructions executed.
func (r *Result) GuestDyn() uint64 { return r.TOL.DynTotal() }

// DynamicStaticRatio returns dynamic guest instructions per executed
// static guest instruction (the amortization factor of Figure 6).
func (r *Result) DynamicStaticRatio() float64 {
	st := r.TOL.StaticTotal()
	if st == 0 {
		return 0
	}
	return float64(r.TOL.DynTotal()) / float64(st)
}

// Run executes the program to completion under the given configuration.
func Run(p *guest.Program, cfg Config) (*Result, error) {
	eng := tol.NewEngine(cfg.TOL, p)
	sim := timing.NewSimulator(cfg.Timing, cfg.Mode)
	if cfg.MaxCycles != 0 {
		sim.MaxCycles = cfg.MaxCycles
	} else {
		sim.MaxCycles = 200_000_000_000
	}
	tres, err := sim.Run(eng)
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	if !eng.Halted() {
		return nil, fmt.Errorf("darco: guest program did not halt")
	}
	return &Result{
		Timing:         tres,
		TOL:            eng.Stats,
		CodeCacheInsts: eng.CC.UsedInsts(),
		Translations:   len(eng.CC.Translations()),
		Final:          *eng.GuestState(),
	}, nil
}

// InteractionResult holds the two runs of the interaction methodology
// of Figures 10 and 11: with interaction modeled (shared structures)
// and without (per-entity private structures, identical streams). The
// engine is fully deterministic, so the co-design behaviour is
// identical across the runs; only resource sharing differs.
type InteractionResult struct {
	Shared *Result
	Split  *Result
}

// RunInteraction performs the interaction experiment's two runs.
func RunInteraction(p *guest.Program, cfg Config) (*InteractionResult, error) {
	var out InteractionResult
	for _, m := range []struct {
		mode timing.Mode
		dst  **Result
	}{
		{timing.ModeShared, &out.Shared},
		{timing.ModeSplit, &out.Split},
	} {
		c := cfg
		c.Mode = m.mode
		r, err := Run(p, c)
		if err != nil {
			return nil, fmt.Errorf("darco: %v run: %w", m.mode, err)
		}
		*m.dst = r
	}
	return &out, nil
}

// AppSlowdown returns the relative execution-time increase of the
// application due to sharing resources with TOL (Figure 10,
// "Application" bars): attributed application cycles with interaction
// divided by the same without interaction.
func (ir *InteractionResult) AppSlowdown() float64 {
	iso := ir.Split.Timing.OwnerCycles(timing.OwnerApp)
	if iso == 0 {
		return 1
	}
	return ir.Shared.Timing.OwnerCycles(timing.OwnerApp) / iso
}

// TOLSlowdown returns the relative execution-time increase of TOL due
// to sharing resources with the application (Figure 10, "TOL" bars).
func (ir *InteractionResult) TOLSlowdown() float64 {
	iso := ir.Split.Timing.OwnerCycles(timing.OwnerTOL)
	if iso == 0 {
		return 1
	}
	return ir.Shared.Timing.OwnerCycles(timing.OwnerTOL) / iso
}

// Potential returns the potential improvement of one entity per bubble
// source if the interaction were eliminated (Figure 11): the bubble-
// cycle difference between the shared and split runs, as a fraction of
// the shared run's total cycles.
func (ir *InteractionResult) Potential(o timing.Owner, k timing.BubbleKind) float64 {
	total := float64(ir.Shared.Timing.Cycles)
	if total == 0 {
		return 0
	}
	return (ir.Shared.Timing.Bubbles[o][k] - ir.Split.Timing.Bubbles[o][k]) / total
}
