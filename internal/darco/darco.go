// Package darco is the controller of the simulation infrastructure:
// it wires the co-design component (TOL + host CPU) to the timing
// simulator, runs guest programs end to end, and collects the combined
// results. It corresponds to the "Controller" box of the
// infrastructure's architecture: the main interface for running
// experiments.
//
// The host-facing API has three pillars:
//
//   - Run(ctx, p, opts...): a context-aware single run configured with
//     functional options (WithMode, WithTOLConfig, WithTiming,
//     WithMaxCycles, WithCosim, WithPasses, WithOptLevel,
//     WithPromotion, WithCodeCache, WithProgress). Cancelling ctx
//     aborts the run promptly from inside the timing simulator's cycle
//     loop; invalid configurations (unknown pass, promotion-policy or
//     eviction-policy names, bad thresholds or cache bounds) are
//     rejected by Config.Validate before simulating.
//   - Session: a concurrent batch executor with a worker pool and a
//     config-hash memo cache, for the paper's many-benchmark sweeps
//     (see session.go). The engine is fully deterministic, so
//     concurrent Session results are identical to sequential ones.
//   - JSON-serializable results: Result, Summary and Record marshal to
//     JSON, making suite output machine-readable (cmd/darco-suite
//     -json emits Records that cmd/darco-figs -from consumes).
//
// Programs come from the pluggable workload layer: a Job carries any
// workload.Program, WithWorkload builds a Job from a
// "<source>:<name>" reference (synthetic:, file:, trace:, phased:),
// and JobForProgram/JobForSpec wrap already-resolved programs.
//
// Co-simulation against the authoritative guest emulator (the x86
// component) is performed inside the engine when enabled; the
// controller additionally exposes isolation runs (ignoring the TOL or
// application stream) used by the interaction experiments.
package darco

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/guest"
	"repro/internal/sample"
	"repro/internal/timing"
	"repro/internal/tol"
)

// Config selects the TOL policies, the host microarchitecture, and the
// stream mode of a run. It is plain data (JSON-serializable): the
// Session memo cache keys runs by the hash of this struct, so two runs
// with equal Configs on the same program are interchangeable.
type Config struct {
	TOL    tol.Config    `json:"tol"`
	Timing timing.Config `json:"timing"`
	Mode   timing.Mode   `json:"mode"`

	// ISA, when non-empty, pins the run to one guest frontend: programs
	// decoding under any other frontend are rejected before simulating.
	// Empty accepts whatever frontend the program declares (the engine
	// resolves it per program), and keeps the JSON form — and therefore
	// every pre-frontend memo-cache and store key — unchanged.
	ISA string `json:"isa,omitempty"`

	// MaxCycles aborts runaway timing simulations (0 = default guard).
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	// Sampling, when non-nil, switches the run to SimPoint-style
	// sampled simulation (internal/sample): functional fast-forward
	// with interval checkpoints, detailed simulation of the selected
	// intervals only, whole-run timing reconstructed as estimates with
	// error bars (Result.Sampled). Functional outputs — TOL statistics
	// and the final guest state — remain exact. The field is part of
	// the JSON form, so sampled and full runs never share a memo-cache
	// entry.
	Sampling *sample.Config `json:"sampling,omitempty"`

	// Progress, when non-nil, receives periodic in-run progress
	// reports. It is observability only — it cannot affect results —
	// and is excluded from JSON (and therefore from Session cache
	// keys).
	Progress ProgressFunc `json:"-"`

	// ProgressEvery is the Progress period in simulated cycles
	// (0 = the timing simulator's default).
	ProgressEvery uint64 `json:"-"`
}

// Progress is one in-run progress report.
type Progress struct {
	// Cycles and HostInsts are the simulated cycle count and retired
	// host instructions at the time of the report.
	Cycles    uint64
	HostInsts uint64
}

// ProgressFunc receives periodic Progress reports from inside the
// timing simulator's cycle loop.
type ProgressFunc func(Progress)

// DefaultConfig returns the paper's host configuration with the scaled
// TOL thresholds of tol.DefaultConfig.
func DefaultConfig() Config {
	return Config{
		TOL:    tol.DefaultConfig(),
		Timing: timing.DefaultConfig(),
		Mode:   timing.ModeShared,
	}
}

// Validate rejects configurations that would fail mid-run or silently
// simulate garbage (tol.Config.Validate: negative thresholds,
// degenerate superblock bounds, unknown pass or promotion-policy
// names, an empty pipeline with SBM enabled). Run, RunInteraction and
// Session.Run call it before simulating, so bad configs fail fast with
// a clear error.
func (c *Config) Validate() error {
	if err := c.TOL.Validate(); err != nil {
		return fmt.Errorf("darco: invalid config: %w", err)
	}
	if c.Sampling != nil {
		if err := c.Sampling.Validate(); err != nil {
			return fmt.Errorf("darco: invalid config: %w", err)
		}
	}
	if c.ISA != "" {
		if _, err := guest.LookupISA(c.ISA); err != nil {
			return fmt.Errorf("darco: invalid config: %w", err)
		}
	}
	return nil
}

// defaultMaxCycles guards runaway simulations when Config.MaxCycles is
// left zero.
const defaultMaxCycles = 200_000_000_000

// Result combines the timing and TOL views of one run. It marshals to
// JSON and round-trips exactly.
type Result struct {
	Timing *timing.Result `json:"timing"`
	TOL    tol.Stats      `json:"tol"`

	// Code cache occupancy at the end of the run.
	CodeCacheInsts int `json:"code_cache_insts"`
	Translations   int `json:"translations"`

	// Final guest architectural state.
	Final guest.State `json:"final"`

	// Sampled carries the sampling digest when the run used sampled
	// simulation (Config.Sampling): the plan, the measured intervals,
	// and per-metric estimates with 95% error bars. When set, Timing is
	// the whole-run estimate extrapolated from the measured intervals;
	// TOL and Final are exact either way.
	Sampled *sample.Report `json:"sampled,omitempty"`
}

// GuestDyn returns the number of guest instructions executed.
func (r *Result) GuestDyn() uint64 { return r.TOL.DynTotal() }

// DynamicStaticRatio returns dynamic guest instructions per executed
// static guest instruction (the amortization factor of Figure 6).
func (r *Result) DynamicStaticRatio() float64 {
	st := r.TOL.StaticTotal()
	if st == 0 {
		return 0
	}
	return float64(r.TOL.DynTotal()) / float64(st)
}

// Summary is the flattened, machine-readable digest of a run: the
// top-level quantities every figure reads, plus the timing and TOL
// digests. Unlike Result it contains no enum-indexed arrays or per-PC
// maps, so it is the natural record for suite-level JSON output.
type Summary struct {
	GuestDyn       uint64         `json:"guest_dyn"`
	GuestStatic    int            `json:"guest_static"`
	DynStaticRatio float64        `json:"dyn_static_ratio"`
	Cycles         uint64         `json:"cycles"`
	IPC            float64        `json:"ipc"`
	TOLShare       float64        `json:"tol_share"`
	CodeCacheInsts int            `json:"code_cache_insts"`
	Translations   int            `json:"translations"`
	Timing         timing.Summary `json:"timing"`
	TOL            tol.Summary    `json:"tol"`
}

// Summary flattens the result into its machine-readable digest.
func (r *Result) Summary() Summary {
	return Summary{
		GuestDyn:       r.GuestDyn(),
		GuestStatic:    r.TOL.StaticTotal(),
		DynStaticRatio: r.DynamicStaticRatio(),
		Cycles:         r.Timing.Cycles,
		IPC:            r.Timing.IPC(),
		TOLShare:       r.Timing.TOLShare(),
		CodeCacheInsts: r.CodeCacheInsts,
		Translations:   r.Translations,
		Timing:         r.Timing.Summary(),
		TOL:            r.TOL.Summary(),
	}
}

// Record is the JSON interchange unit of the command-line tools: one
// benchmark × mode run with its digest and (optionally) the full
// result. cmd/darco and cmd/darco-suite emit []Record with -json;
// cmd/darco-figs -from consumes them to regenerate figures without
// re-simulating.
type Record struct {
	Benchmark string  `json:"benchmark"`
	Suite     string  `json:"suite,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Mode      string  `json:"mode"`
	Summary   Summary `json:"summary"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// NewRecord assembles the interchange record for one run outcome: a
// failure records the error, a success records the digest plus the
// full result.
func NewRecord(benchmark, suite string, scale float64, mode timing.Mode, res *Result, err error) Record {
	rec := Record{
		Benchmark: benchmark,
		Suite:     suite,
		Scale:     scale,
		Mode:      mode.String(),
	}
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	rec.Summary = res.Summary()
	rec.Result = res
	return rec
}

// EncodeRecords writes records as indented JSON — the wire format
// cmd/darco and cmd/darco-suite emit and cmd/darco-figs -from reads.
func EncodeRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// DecodeRecords reads a []Record produced by EncodeRecords. Records
// are returned as stored — failures and summary-only records included;
// consumers that need full results (e.g. Session preloading) skip
// records whose Result is nil.
func DecodeRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// Run executes the program to completion under DefaultConfig modified
// by the given options. Cancelling ctx aborts the simulation promptly
// (the context is polled inside the timing simulator's cycle loop) and
// returns ctx.Err().
func Run(ctx context.Context, p *guest.Program, opts ...Option) (*Result, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.run(ctx, p)
}

// RunConfig executes the program to completion under an explicit
// configuration.
//
// Deprecated: RunConfig is the pre-context signature kept as a thin
// shim during the API transition. Use Run with WithConfig (or the
// individual With* options) instead.
func RunConfig(p *guest.Program, cfg Config) (*Result, error) {
	return Run(context.Background(), p, WithConfig(cfg))
}

// sampleEnv carries the execution-environment knobs of a sampled run
// that live outside Config (and therefore outside the memo-cache key):
// measurement parallelism, the fast-forward bundle cache, and the
// workload fingerprint the bundles are keyed by. The zero value means
// GOMAXPROCS parallelism with no warm-start cache — what a plain Run
// gets; Session fills it from its worker pool and persistent store.
type sampleEnv struct {
	parallel int
	cache    sample.BlobCache
	program  string
}

// run is the single execution path behind Run, Session and the
// experiment runners.
func (cfg Config) run(ctx context.Context, p *guest.Program) (*Result, error) {
	return cfg.runWith(ctx, p, sampleEnv{})
}

// runWith is run plus the sampled-execution environment.
func (cfg Config) runWith(ctx context.Context, p *guest.Program, env sampleEnv) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ISA != "" {
		isa, err := guest.ISAOf(p)
		if err != nil {
			return nil, fmt.Errorf("darco: %w", err)
		}
		if isa.Name != cfg.ISA {
			return nil, fmt.Errorf("darco: run pinned to ISA %q but the program decodes under %q", cfg.ISA, isa.Name)
		}
	}
	if cfg.Sampling != nil {
		return cfg.runSampled(ctx, p, env)
	}
	eng := tol.NewEngine(cfg.TOL, p)
	// The engine polls ctx while generating the stream, so cancellation
	// is honored even when the run is dominated by interpretation and
	// the timing simulator's own per-batch polls are far apart.
	eng.SetContext(ctx)
	sim := timing.NewSimulator(cfg.Timing, cfg.Mode)
	if cfg.MaxCycles != 0 {
		sim.MaxCycles = cfg.MaxCycles
	} else {
		sim.MaxCycles = defaultMaxCycles
	}
	if cfg.Progress != nil {
		fn := cfg.Progress
		sim.Progress = func(cycles, insts uint64) {
			fn(Progress{Cycles: cycles, HostInsts: insts})
		}
		sim.ProgressEvery = cfg.ProgressEvery
	}
	tres, err := sim.RunContext(ctx, eng)
	if err != nil {
		return nil, err
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	if !eng.Halted() {
		return nil, fmt.Errorf("darco: guest program did not halt")
	}
	return &Result{
		Timing:         tres,
		TOL:            eng.Stats,
		CodeCacheInsts: eng.CC.UsedInsts(),
		Translations:   len(eng.CC.Translations()),
		Final:          *eng.GuestState(),
	}, nil
}

// runSampled executes the sampled-simulation path: the internal/sample
// runner does the fast-forward, the parallel interval measurements and
// the extrapolation; this shim adapts its output to the controller's
// Result shape. The estimator combines intervals in index order, so the
// result is bit-identical for any parallelism — the property that lets
// sampled runs share the Session memo cache.
func (cfg Config) runSampled(ctx context.Context, p *guest.Program, env sampleEnv) (*Result, error) {
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = defaultMaxCycles
	}
	r := &sample.Runner{
		TOL:       cfg.TOL,
		Timing:    cfg.Timing,
		Mode:      cfg.Mode,
		MaxCycles: maxCycles,
		Sample:    *cfg.Sampling,
		Parallel:  env.parallel,
		Program:   env.program,
		Cache:     env.cache,
	}
	sres, err := r.Run(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Timing:         sres.Timing,
		TOL:            sres.TOL,
		CodeCacheInsts: sres.CodeCacheInsts,
		Translations:   sres.Translations,
		Final:          sres.Final,
		Sampled:        sres.Report,
	}, nil
}

// InteractionResult holds the two runs of the interaction methodology
// of Figures 10 and 11: with interaction modeled (shared structures)
// and without (per-entity private structures, identical streams). The
// engine is fully deterministic, so the co-design behaviour is
// identical across the runs; only resource sharing differs.
type InteractionResult struct {
	Shared *Result `json:"shared"`
	Split  *Result `json:"split"`
}

// RunInteraction performs the interaction experiment's two runs.
// Options apply to both runs; the mode is overridden per leg.
func RunInteraction(ctx context.Context, p *guest.Program, opts ...Option) (*InteractionResult, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var out InteractionResult
	for _, m := range []struct {
		mode timing.Mode
		dst  **Result
	}{
		{timing.ModeShared, &out.Shared},
		{timing.ModeSplit, &out.Split},
	} {
		c := cfg
		c.Mode = m.mode
		r, err := c.run(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("darco: %v run: %w", m.mode, err)
		}
		*m.dst = r
	}
	return &out, nil
}

// AppSlowdown returns the relative execution-time increase of the
// application due to sharing resources with TOL (Figure 10,
// "Application" bars): attributed application cycles with interaction
// divided by the same without interaction.
func (ir *InteractionResult) AppSlowdown() float64 {
	iso := ir.Split.Timing.OwnerCycles(timing.OwnerApp)
	if iso == 0 {
		return 1
	}
	return ir.Shared.Timing.OwnerCycles(timing.OwnerApp) / iso
}

// TOLSlowdown returns the relative execution-time increase of TOL due
// to sharing resources with the application (Figure 10, "TOL" bars).
func (ir *InteractionResult) TOLSlowdown() float64 {
	iso := ir.Split.Timing.OwnerCycles(timing.OwnerTOL)
	if iso == 0 {
		return 1
	}
	return ir.Shared.Timing.OwnerCycles(timing.OwnerTOL) / iso
}

// Potential returns the potential improvement of one entity per bubble
// source if the interaction were eliminated (Figure 11): the bubble-
// cycle difference between the shared and split runs, as a fraction of
// the shared run's total cycles.
func (ir *InteractionResult) Potential(o timing.Owner, k timing.BubbleKind) float64 {
	total := float64(ir.Shared.Timing.Cycles)
	if total == 0 {
		return 0
	}
	return (ir.Shared.Timing.Bubbles[o][k] - ir.Split.Timing.Bubbles[o][k]) / total
}
