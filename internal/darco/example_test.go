package darco_test

import (
	"context"
	"fmt"

	"repro/internal/darco"
	"repro/internal/guest"
	"repro/internal/workload"
)

// ExampleRun builds a tiny guest program with the guest.Builder API
// and runs it end to end through the co-designed processor: TOL
// translates and optimizes the hot loop, the timing simulator charges
// every host instruction, and co-simulation verifies each step against
// the authoritative emulator. Only architectural results are printed —
// they are stable across timing-model changes.
func ExampleRun() {
	b := guest.NewBuilder()
	b.MovRI(guest.EAX, 0) // sum
	b.MovRI(guest.ECX, 1) // i
	b.Label("loop")
	b.AddRR(guest.EAX, guest.ECX)
	b.Inc(guest.ECX)
	b.CmpRI(guest.ECX, 101)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	res, err := darco.Run(context.Background(), prog, darco.WithCosim(true))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("sum:", res.Final.Regs[guest.EAX])
	fmt.Println("halted with cycles:", res.Timing.Cycles > 0)
	// Output:
	// sum: 5050
	// halted with cycles: true
}

// ExampleSession runs a small batch concurrently through the
// controller's worker pool. The engine is fully deterministic, so the
// results are identical for any worker count, and identical jobs are
// memoized under a config-hash cache key.
func ExampleSession() {
	countdown := func(n int32) func() (*guest.Program, error) {
		return func() (*guest.Program, error) {
			b := guest.NewBuilder()
			b.MovRI(guest.EAX, n)
			b.Label("loop")
			b.Dec(guest.EAX)
			b.Jcc(guest.CondNE, "loop")
			b.Halt()
			return b.Build()
		}
	}
	sess := darco.NewSession(darco.WithWorkers(2))
	jobs := []darco.Job{
		{Name: "count-40", Program: workload.Func("count-40", countdown(40))},
		{Name: "count-60", Program: workload.Func("count-60", countdown(60))},
	}
	for _, br := range sess.RunBatch(context.Background(), jobs) {
		if br.Err != nil {
			fmt.Println(br.Err)
			return
		}
		fmt.Printf("%s: %d guest insts, eax=%d\n",
			br.Job.Name, br.Result.GuestDyn(), br.Result.Final.Regs[guest.EAX])
	}
	// Output:
	// count-40: 81 guest insts, eax=0
	// count-60: 121 guest insts, eax=0
}

// ExampleWithCodeCache bounds the translation code cache so the
// working set no longer fits: TOL evicts translations under the
// configured policy and transparently retranslates them on re-entry,
// and the run reports the pressure in its statistics.
func ExampleWithCodeCache() {
	b := guest.NewBuilder()
	b.MovRI(guest.ESI, 3) // outer repetitions: evicted loops re-enter
	b.Label("outer")
	for k := int32(0); k < 12; k++ {
		lbl := fmt.Sprintf("loop%d", k)
		b.MovRI(guest.ECX, 30)
		b.MovRI(guest.EAX, k)
		b.Label(lbl)
		b.AddRI(guest.EAX, 3)
		b.XorRI(guest.EAX, 0x55)
		b.Dec(guest.ECX)
		b.Jcc(guest.CondNE, lbl)
	}
	b.Dec(guest.ESI)
	b.Jcc(guest.CondNE, "outer")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}

	res, err := darco.Run(context.Background(), prog,
		darco.WithCodeCache(256, "lru-translation"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("evictions observed:", res.TOL.Evictions > 0)
	fmt.Println("retranslations observed:", res.TOL.Retranslations > 0)
	fmt.Println("peak within bound:", res.TOL.CacheOccupancyPeak <= 256)
	// Output:
	// evictions observed: true
	// retranslations observed: true
	// peak within bound: true
}
