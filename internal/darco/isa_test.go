package darco

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sample"
	"repro/internal/workload"
)

// rv32Spec is a small RV32I workload exercising every frontend-relevant
// mechanism: hot loops crossing both promotion thresholds (superblocks
// form), a jump-table dispatcher (IBTC, indirect exits) and masked
// memory traffic.
func rv32Spec() workload.Spec {
	return workload.Spec{
		Name: "rv32-e2e", ISA: "rv32", Seed: 7,
		HotKernels: 2, KernelLen: 10, KernelIter: 400, OuterIters: 3,
		Fanout: 4, DispatchIters: 40,
		Footprint: 1 << 12, Stride: 4,
		MemFrac: 0.3, BranchFrac: 0.1,
	}
}

func buildRV32(t *testing.T) *workload.Spec {
	t.Helper()
	s := rv32Spec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return &s
}

// TestRV32EndToEndCosimO3 runs an RV32I workload through the full
// controller path — decode, all three tiers at -O3, timing — with
// per-instruction co-simulation against the reference emulator on.
func TestRV32EndToEndCosimO3(t *testing.T) {
	s := buildRV32(t)
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, WithOptLevel(3), WithCosim(true), WithISA("rv32"))
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestDyn() < 1000 {
		t.Fatalf("dynamic size too small to mean anything: %d", res.GuestDyn())
	}
	if res.TOL.SBCreated == 0 {
		t.Fatal("no superblocks formed: the -O3 pipeline never ran on RV32I code")
	}
	if res.TOL.CosimChecks == 0 {
		t.Fatal("cosim never checked an instruction")
	}
	if res.TOL.IBTCFills == 0 {
		t.Fatal("dispatcher never filled the IBTC: indirect exits untested")
	}
}

// TestRV32BoundedCacheEviction runs the same workload under a code
// cache small enough to force evictions and requires architectural
// results identical to the unbounded run.
func TestRV32BoundedCacheEviction(t *testing.T) {
	s := buildRV32(t)
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	free, err := Run(ctx, p, WithCosim(true))
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(ctx, p, WithCosim(true), WithCodeCache(256, "lru-translation"))
	if err != nil {
		t.Fatal(err)
	}
	if bounded.TOL.Evictions == 0 {
		t.Fatal("no evictions under a 256-slot cache: the pressure path never ran")
	}
	if got, want := bounded.GuestDyn(), free.GuestDyn(); got != want {
		t.Fatalf("bounded run retired %d guest insts, unbounded %d", got, want)
	}
	if d := bounded.Final.Diff(&free.Final); d != "" {
		t.Fatalf("bounded final state differs: %s", d)
	}
}

// TestRV32SampledMatchesFull checks the sampled-simulation path on an
// RV32I workload: functional outputs must be exact.
func TestRV32SampledMatchesFull(t *testing.T) {
	s := buildRV32(t)
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	full, err := Run(ctx, p, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(ctx, p, WithCosim(false),
		WithSampling(sample.Config{Interval: 5_000, Every: 2, Warmup: 500}))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Sampled == nil {
		t.Fatal("sampled run carries no sampling report")
	}
	if got, want := sampled.GuestDyn(), full.GuestDyn(); got != want {
		t.Fatalf("sampled run retired %d guest insts, full %d", got, want)
	}
	if d := sampled.Final.Diff(&full.Final); d != "" {
		t.Fatalf("sampled final state differs: %s", d)
	}
}

// TestISAPinRejectsMismatch covers the -isa guard: a config pinned to
// one frontend refuses programs decoding under another.
func TestISAPinRejectsMismatch(t *testing.T) {
	x86, err := workload.ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	px, err := x86.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), px, WithISA("rv32")); err == nil ||
		!strings.Contains(err.Error(), `pinned to ISA "rv32"`) {
		t.Fatalf("x86 program under -isa rv32: err = %v, want pin rejection", err)
	}
	rv := buildRV32(t)
	prv, err := rv.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), prv, WithISA("x86")); err == nil ||
		!strings.Contains(err.Error(), `pinned to ISA "x86"`) {
		t.Fatalf("rv32 program under -isa x86: err = %v, want pin rejection", err)
	}
	if _, err := Run(context.Background(), prv, WithISA("z80")); err == nil ||
		!strings.Contains(err.Error(), "z80") {
		t.Fatalf("unknown ISA accepted: %v", err)
	}
}

// TestSameNameAcrossISAsNeverAliases is the memo-key regression test of
// the frontend refactor: the same benchmark name opened through the x86
// and RV32I catalogs must produce distinct session cache keys (and
// therefore distinct persistent-store addresses) under the identical
// configuration.
func TestSameNameAcrossISAsNeverAliases(t *testing.T) {
	const name = "429.mcf"
	x86Job, err := WithWorkload("synthetic:"+name, 0.05, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	rvJob, err := WithWorkload("rv32:"+name, 0.05, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	if x86Job.Name != rvJob.Name {
		t.Fatalf("the two frontends renamed the benchmark: %q vs %q", x86Job.Name, rvJob.Name)
	}
	kx, err := x86Job.Key()
	if err != nil {
		t.Fatal(err)
	}
	kr, err := rvJob.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kx == kr {
		t.Fatalf("x86 and rv32 runs of %s share memo key %s", name, kx)
	}
	if !strings.Contains(rvJob.Variant, "isa=rv32") {
		t.Fatalf("rv32 job variant %q does not carry the ISA", rvJob.Variant)
	}
	if strings.Contains(x86Job.Variant, "isa=") {
		t.Fatalf("x86 job variant %q grew an ISA component (pre-frontend store keys would change)", x86Job.Variant)
	}

	// And end to end: both run through one session, yielding two cache
	// entries with different results (different ISAs really simulated).
	sess := NewSession(WithWorkers(2))
	ctx := context.Background()
	rx, err := sess.Run(ctx, x86Job)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sess.Run(ctx, rvJob)
	if err != nil {
		t.Fatal(err)
	}
	if rx.GuestDyn() == rr.GuestDyn() && rx.Timing.Cycles == rr.Timing.Cycles {
		t.Fatal("x86 and rv32 runs returned identical results: one memoized result served both")
	}
}
