package darco

import (
	"repro/internal/timing"
	"repro/internal/tol"
)

// Option mutates the configuration of a run. Options are applied in
// order on top of DefaultConfig, so later options win; WithConfig
// replaces the whole configuration and is therefore usually first.
type Option func(*Config)

// WithConfig replaces the entire base configuration.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithMode selects the timing-simulator stream mode (shared, app-only,
// tol-only, split).
func WithMode(m timing.Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithTOLConfig replaces the TOL policy configuration (thresholds,
// feature switches, co-simulation).
func WithTOLConfig(tc tol.Config) Option {
	return func(c *Config) { c.TOL = tc }
}

// WithTiming replaces the host microarchitecture configuration
// (paper Table I).
func WithTiming(tc timing.Config) Option {
	return func(c *Config) { c.Timing = tc }
}

// WithMaxCycles bounds the timing simulation (0 restores the default
// runaway guard).
func WithMaxCycles(n uint64) Option {
	return func(c *Config) { c.MaxCycles = n }
}

// WithCosim toggles continuous co-simulation against the authoritative
// guest emulator.
func WithCosim(on bool) Option {
	return func(c *Config) { c.TOL.Cosim = on }
}

// WithProgress installs a periodic in-run progress callback. The
// callback is invoked from inside the timing simulator's cycle loop
// and must not block for long; it cannot affect results.
func WithProgress(fn ProgressFunc) Option {
	return func(c *Config) { c.Progress = fn }
}

// WithProgressInterval sets the WithProgress callback period in
// simulated cycles (0 = the simulator's default).
func WithProgressInterval(cycles uint64) Option {
	return func(c *Config) { c.ProgressEvery = cycles }
}
