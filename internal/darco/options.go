package darco

import (
	"fmt"

	"repro/internal/sample"
	"repro/internal/timing"
	"repro/internal/tol"
)

// Option mutates the configuration of a run. Options are applied in
// order on top of DefaultConfig, so later options win; WithConfig
// replaces the whole configuration and is therefore usually first.
type Option func(*Config)

// WithConfig replaces the entire base configuration.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithMode selects the timing-simulator stream mode (shared, app-only,
// tol-only, split).
func WithMode(m timing.Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithISA pins the run to one guest frontend ("x86" or "rv32"):
// programs decoding under any other frontend are rejected before
// simulating, which is the guard the -isa flag of the darco tools rests
// on. The empty string restores the default — accept whatever frontend
// the program declares. Unknown ISA names are rejected by
// Config.Validate before the run starts.
func WithISA(name string) Option {
	return func(c *Config) { c.ISA = name }
}

// WithTOLConfig replaces the TOL policy configuration (thresholds,
// feature switches, co-simulation).
func WithTOLConfig(tc tol.Config) Option {
	return func(c *Config) { c.TOL = tc }
}

// WithTiming replaces the host microarchitecture configuration
// (paper Table I).
func WithTiming(tc timing.Config) Option {
	return func(c *Config) { c.Timing = tc }
}

// WithMaxCycles bounds the timing simulation (0 restores the default
// runaway guard).
func WithMaxCycles(n uint64) Option {
	return func(c *Config) { c.MaxCycles = n }
}

// WithCosim toggles continuous co-simulation against the authoritative
// guest emulator.
func WithCosim(on bool) Option {
	return func(c *Config) { c.TOL.Cosim = on }
}

// WithPasses selects the SBM optimization pass pipeline as a
// comma-separated list of registered pass names (tol.ParsePipeline
// spec, e.g. "constprop,dce,rle,sched"; "none" is the empty pipeline
// and requires SBM to be disabled). Unknown pass names are rejected by
// Config.Validate before the run starts.
func WithPasses(spec string) Option {
	return func(c *Config) {
		c.TOL.Passes = spec
		c.TOL.OptLevel = ""
	}
}

// WithOptLevel selects a preset optimization level 0..3 (tol.ApplyOptLevel):
// O0 disables SBM entirely, O1 = constprop+dce, O2 = the paper's full
// pipeline (the default), O3 = O2 with a second propagation round.
// Out-of-range levels are rejected by Config.Validate before the run
// starts.
func WithOptLevel(level int) Option {
	return func(c *Config) {
		if err := tol.ApplyOptLevel(&c.TOL, level); err != nil {
			// Record the bad level so validation fails fast with a clear
			// message instead of silently running a default.
			c.TOL.Passes = ""
			c.TOL.OptLevel = fmt.Sprintf("O%d", level)
		}
	}
}

// WithPromotion selects the tier-promotion policy ("fixed" — the
// paper's thresholds — or "adaptive" back-off). Unknown names are
// rejected by Config.Validate before the run starts.
func WithPromotion(name string) Option {
	return func(c *Config) { c.TOL.Promotion = name }
}

// WithCodeCache bounds the translation code cache to capacityInsts
// instruction slots under the named eviction policy ("flush-all",
// "fifo-region" or "lru-translation"; "" selects flush-all). A zero
// capacity restores the unbounded cache, which is cycle-identical to
// the pre-bounded infrastructure. Degenerate bounds and unknown policy
// names are rejected by Config.Validate before the run starts.
func WithCodeCache(capacityInsts int, policy string) Option {
	return func(c *Config) {
		c.TOL.Cache = tol.CacheConfig{CapacityInsts: capacityInsts, Policy: policy}
	}
}

// ApplyPipelineFlags applies the -O/-passes/-promote command-line
// flags shared by the darco tools to a TOL config and validates the
// result, so every cmd rejects bad pipelines identically before
// simulating. optLevel < 0 means "flag not given"; empty strings leave
// the config untouched. An explicit -passes overrides the pipeline of
// -O 1..3; combining -passes with -O 0 is contradictory (O0 disables
// SBM, so the requested passes could never run) and is rejected.
func ApplyPipelineFlags(tc *tol.Config, optLevel int, passes, promote string) error {
	if optLevel >= 0 {
		if optLevel == 0 && passes != "" {
			return fmt.Errorf("darco: -O 0 disables SBM, so -passes %q would never run; drop one of the flags", passes)
		}
		if err := tol.ApplyOptLevel(tc, optLevel); err != nil {
			return err
		}
	}
	if passes != "" {
		tc.Passes = passes
		tc.OptLevel = ""
	}
	if promote != "" {
		tc.Promotion = promote
	}
	return tc.Validate()
}

// ApplyCacheFlags applies the -cc-size/-cc-policy command-line flags
// shared by the darco tools to a TOL config. capacity <= 0 and empty
// policy mean "flag not given" and leave the config untouched. The
// resulting configuration is validated by the subsequent
// ApplyPipelineFlags call (every cmd applies cache flags first), so
// bad bounds and unknown policies are rejected identically everywhere
// before simulating.
func ApplyCacheFlags(tc *tol.Config, capacity int, policy string) {
	if capacity > 0 {
		tc.Cache.CapacityInsts = capacity
	}
	if policy != "" {
		tc.Cache.Policy = policy
	}
}

// WithSampling switches the run to SimPoint-style sampled simulation
// under the given plan: functional fast-forward with checkpoints at
// interval boundaries, detailed simulation of every Every-th interval
// (in parallel, after Warmup instructions of detailed warm-up), and
// whole-run timing reconstructed as estimates with 95% error bars
// (Result.Sampled). TOL statistics and the final guest state stay
// exact. Degenerate plans are rejected by Config.Validate before the
// run starts.
func WithSampling(sc sample.Config) Option {
	return func(c *Config) { c.Sampling = &sc }
}

// WithoutSampling restores full detailed simulation (the default),
// overriding an earlier WithSampling or a sampled base config.
func WithoutSampling() Option {
	return func(c *Config) { c.Sampling = nil }
}

// ApplySampleFlags applies the -sample/-interval/-warmup command-line
// flags shared by the darco tools to a run configuration. every <= 0
// means "-sample not given" and leaves the config untouched; interval
// and warmup fall back to the sample.DefaultConfig values when zero, so
// `-sample 4` alone selects a sensible plan. The resulting plan is
// validated so every cmd rejects bad sampling flags identically before
// simulating.
func ApplySampleFlags(c *Config, every int, interval, warmup uint64) error {
	if every <= 0 {
		return nil
	}
	sc := sample.DefaultConfig()
	sc.Every = every
	if interval > 0 {
		sc.Interval = interval
	}
	if warmup > 0 {
		sc.Warmup = warmup
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	c.Sampling = &sc
	return nil
}

// WithProgress installs a periodic in-run progress callback. The
// callback is invoked from inside the timing simulator's cycle loop
// and must not block for long; it cannot affect results.
func WithProgress(fn ProgressFunc) Option {
	return func(c *Config) { c.Progress = fn }
}

// WithProgressInterval sets the WithProgress callback period in
// simulated cycles (0 = the simulator's default).
func WithProgressInterval(cycles uint64) Option {
	return func(c *Config) { c.ProgressEvery = cycles }
}
