package darco

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// hotProgram is a small loop that promotes to SBM quickly under a low
// threshold.
func hotProgram() *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.ECX, 2000)
	b.Label("loop")
	b.AddRR(guest.EAX, guest.ECX)
	b.XorRI(guest.EAX, 0x55)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	return b.MustBuild()
}

func lowThreshold() Option {
	return func(c *Config) { c.TOL.SBThreshold = 50 }
}

// TestRecordPassStatsRoundTrip: the per-pass SBM breakdown must
// survive the Record JSON interchange (darco-suite -json →
// darco-figs -from) exactly.
func TestRecordPassStatsRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), hotProgram(), WithCosim(false), lowThreshold())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TOL.SBPasses) == 0 {
		t.Fatal("run produced no per-pass stats")
	}

	rec := NewRecord("hotloop", "test", 1.0, timing.ModeShared, res, nil)
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, []Record{rec}); err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Result == nil {
		t.Fatalf("decoded %d records", len(recs))
	}
	if !reflect.DeepEqual(recs[0].Result.TOL.SBPasses, res.TOL.SBPasses) {
		t.Fatalf("SBPasses did not round-trip:\n got %+v\nwant %+v",
			recs[0].Result.TOL.SBPasses, res.TOL.SBPasses)
	}
	if recs[0].Result.TOL.SBOtherInsts != res.TOL.SBOtherInsts {
		t.Fatal("SBOtherInsts did not round-trip")
	}
	if !reflect.DeepEqual(recs[0].Summary.TOL.SBPasses, res.TOL.Summary().SBPasses) {
		t.Fatal("Summary.SBPasses did not round-trip")
	}
}

// TestPipelineResultDeterminism: one pipeline spec ⇒ byte-identical
// Result JSON across repeated runs (the property the Session cache and
// the figure harness rely on).
func TestPipelineResultDeterminism(t *testing.T) {
	run := func() string {
		res, err := Run(context.Background(), hotProgram(), WithCosim(false),
			lowThreshold(), WithPasses("dce,constprop,rle,sched"), WithPromotion("adaptive"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if run() != run() {
		t.Fatal("same pipeline spec produced different Result JSON")
	}
}

// TestRunValidatesConfig: bad pipeline and policy specs must fail fast
// with a clear error from Run, RunInteraction and Session.Run alike.
func TestRunValidatesConfig(t *testing.T) {
	ctx := context.Background()
	p := hotProgram()

	if _, err := Run(ctx, p, WithPasses("bogus")); err == nil ||
		!strings.Contains(err.Error(), "unknown pass") {
		t.Fatalf("Run with bad pipeline: %v", err)
	}
	if _, err := Run(ctx, p, WithPromotion("bogus")); err == nil ||
		!strings.Contains(err.Error(), "unknown promotion policy") {
		t.Fatalf("Run with bad policy: %v", err)
	}
	if _, err := Run(ctx, p, WithOptLevel(9)); err == nil ||
		!strings.Contains(err.Error(), "optimization level") {
		t.Fatalf("Run with bad opt level: %v", err)
	}
	if _, err := RunInteraction(ctx, p, WithPasses("bogus")); err == nil {
		t.Fatal("RunInteraction with bad pipeline succeeded")
	}

	// WithPasses("none") alone leaves SBM enabled: rejected.
	if _, err := Run(ctx, p, WithPasses(tol.PassesNone)); err == nil ||
		!strings.Contains(err.Error(), "empty optimization pipeline") {
		t.Fatalf("Run with empty pipeline + SBM: %v", err)
	}

	sess := NewSession(WithWorkers(1))
	var failed int
	sessEv := NewSession(WithWorkers(1), WithEvents(func(ev Event) {
		if ev.Kind == EventFailed {
			failed++
		}
	}))
	job := Job{Name: "bad", Program: workload.Func("bad", func() (*guest.Program, error) { return p, nil }),
		Opts: []Option{WithPasses("bogus")}}
	if _, err := sess.Run(ctx, job); err == nil {
		t.Fatal("Session.Run with bad pipeline succeeded")
	}
	if _, err := sessEv.Run(ctx, job); err == nil {
		t.Fatal("Session.Run with bad pipeline succeeded")
	}
	if failed != 1 {
		t.Fatalf("expected one EventFailed, got %d", failed)
	}
}

// TestWithOptLevelZero: O0 stops at BBM (no superblocks, no per-pass
// stats) and still computes correctly.
func TestWithOptLevelZero(t *testing.T) {
	res, err := Run(context.Background(), hotProgram(), WithCosim(true), lowThreshold(), WithOptLevel(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.TOL.SBCreated != 0 || res.TOL.DynSBM != 0 || len(res.TOL.SBPasses) != 0 {
		t.Fatalf("O0 ran SBM: %+v", res.TOL.Summary())
	}
	if res.TOL.DynBBM == 0 {
		t.Fatal("O0 never reached BBM")
	}
}

// TestOptLevelsOrdered: a catalog benchmark under O0..O3 — higher
// levels may only shrink the emitted superblock code, and every level
// stays deterministic and correct (cosim on).
func TestOptLevelsOrdered(t *testing.T) {
	spec, err := workload.ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(0.25)
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var prevCC int
	for level := 1; level <= 3; level++ {
		res, err := Run(context.Background(), p, WithCosim(true), WithOptLevel(level))
		if err != nil {
			t.Fatalf("O%d: %v", level, err)
		}
		if res.TOL.SBCreated == 0 {
			t.Fatalf("O%d created no superblocks", level)
		}
		if level > 1 && res.CodeCacheInsts > prevCC {
			t.Errorf("O%d emitted more code (%d) than O%d (%d)",
				level, res.CodeCacheInsts, level-1, prevCC)
		}
		prevCC = res.CodeCacheInsts
	}
}
