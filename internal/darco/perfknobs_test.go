package darco

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/timing"
)

// TestStreamBatchKnobDistinctCacheEntries audits the memo-key rule for
// perf-affecting knobs: two jobs identical except for
// timing.Config.StreamBatch must occupy distinct Session cache entries
// (the knob is part of the JSON-hashed Config), yet — because batching
// is pure transport — produce byte-identical results.
func TestStreamBatchKnobDistinctCacheEntries(t *testing.T) {
	var mu sync.Mutex
	started := 0
	s := NewSession(WithWorkers(2), WithEvents(func(ev Event) {
		if ev.Kind == EventStarted {
			mu.Lock()
			started++
			mu.Unlock()
		}
	}))

	withBatch := func(n int) Option {
		cfg := timing.DefaultConfig()
		cfg.StreamBatch = n
		return WithTiming(cfg)
	}
	a, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.1, withBatch(64)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.1, withBatch(2048)))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Errorf("executions = %d, want 2 (StreamBatch values aliased one cache entry)", started)
	}
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Error("results differ across StreamBatch sizes; batching must be observably transparent")
	}

	// And the same batch size twice is still a single execution.
	if _, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.1, withBatch(64))); err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Errorf("executions = %d after repeat, want 2 (identical knob re-ran)", started)
	}
}
