package darco

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/workload"
)

// longLoop builds a guest program whose simulation takes far longer
// than the cancellation tests are willing to wait.
func longLoop(iters int32) *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.ECX, iters)
	b.Label("loop")
	b.AddRR(guest.EAX, guest.ECX)
	b.XorRI(guest.EAX, 0x55)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, longLoop(1000), WithCosim(false))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCancelledMidSimulation cancels from inside the progress
// callback — i.e. while the timing simulator's cycle loop is running —
// and requires Run to return ctx.Err() promptly instead of simulating
// to MaxCycles.
func TestRunCancelledMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const progressEvery = 50_000
	var reports int
	var cancelledAt uint64
	_, err := Run(ctx, longLoop(100_000_000),
		WithCosim(false),
		WithMaxCycles(100_000_000_000),
		WithProgressInterval(progressEvery),
		WithProgress(func(p Progress) {
			reports++
			if reports == 2 {
				cancelledAt = p.Cycles
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is polled every few thousand cycles, well under one
	// progress interval: "promptly" means the run never reached a third
	// report after the cancel at the second.
	if reports != 2 {
		t.Errorf("run continued past cancellation: %d progress reports (cancelled at cycle %d), want exactly 2",
			reports, cancelledAt)
	}
}

func TestRunOptionsApply(t *testing.T) {
	p := longLoop(2_000)
	tc := timing.DefaultConfig()
	tc.IssueWidth = 1
	res1, err := Run(context.Background(), p, WithCosim(false), WithTiming(tc))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), p, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Timing.Cycles <= res2.Timing.Cycles {
		t.Errorf("1-wide run (%d cycles) not slower than 2-wide (%d cycles)",
			res1.Timing.Cycles, res2.Timing.Cycles)
	}
	if res1.GuestDyn() != res2.GuestDyn() {
		t.Errorf("functional behaviour diverged across timing configs: %d vs %d",
			res1.GuestDyn(), res2.GuestDyn())
	}
}

// TestRunConfigShim checks the deprecated pre-context entry point
// still matches the new API exactly.
func TestRunConfigShim(t *testing.T) {
	p := longLoop(2_000)
	cfg := DefaultConfig()
	cfg.TOL.Cosim = false
	old, err := RunConfig(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nu, err := Run(context.Background(), p, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, nu) {
		t.Error("RunConfig shim result differs from Run")
	}
}

// TestResultJSONRoundTrip marshals a full benchmark Result and
// requires the decoded struct to be deeply identical — the property
// that makes -json suite output lossless for cmd/darco-figs -from.
func TestResultJSONRoundTrip(t *testing.T) {
	spec, err := workload.ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Scale(0.2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, &back) {
		t.Error("Result did not round-trip through JSON")
	}
	// The digest must agree before and after the trip.
	if !reflect.DeepEqual(res.Summary(), back.Summary()) {
		t.Error("Summary differs after JSON round-trip")
	}

	// Record round-trips too (the actual interchange unit).
	rec := Record{
		Benchmark: spec.Name,
		Suite:     spec.Suite.String(),
		Scale:     0.2,
		Mode:      timing.ModeShared.String(),
		Summary:   res.Summary(),
		Result:    res,
	}
	rb, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var recBack Record
	if err := json.Unmarshal(rb, &recBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, recBack) {
		t.Error("Record did not round-trip through JSON")
	}
}
