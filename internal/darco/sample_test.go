package darco

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sample"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// sampleTestOpts keeps the sampled-run tests fast: scaled-down TOL
// thresholds so all tiers engage on small programs.
func sampleTestTOL() tol.Config {
	tc := tol.DefaultConfig()
	tc.SBThreshold = 20
	return tc
}

func openWorkload(t *testing.T, ref string, scale float64) Job {
	t.Helper()
	job, err := WithWorkload(ref, scale, WithTOLConfig(sampleTestTOL()))
	if err != nil {
		t.Fatalf("open %s: %v", ref, err)
	}
	return job
}

// TestSampledRunExactFunctionalOutputs pins the sampled path end to
// end through the controller: exact TOL statistics and final state,
// estimate report attached, estimated timing populated.
func TestSampledRunExactFunctionalOutputs(t *testing.T) {
	job := openWorkload(t, "phased:401.bzip2+462.libquantum", 0.05)
	p, err := job.Program.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	full, err := Run(context.Background(), p, WithTOLConfig(sampleTestTOL()))
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	sc := sample.Config{Interval: 5_000, Every: 3, Warmup: 1_000}
	sampled, err := Run(context.Background(), p, WithTOLConfig(sampleTestTOL()), WithSampling(sc))
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if sampled.Sampled == nil {
		t.Fatal("sampled run carries no report")
	}
	if full.Sampled != nil {
		t.Fatal("full run carries a sampling report")
	}
	gotStats, _ := json.Marshal(&sampled.TOL)
	wantStats, _ := json.Marshal(&full.TOL)
	if !bytes.Equal(gotStats, wantStats) {
		t.Errorf("TOL stats differ between sampled and full run:\nsampled: %s\nfull:    %s", gotStats, wantStats)
	}
	if d := sampled.Final.Diff(&full.Final); d != "" {
		t.Errorf("final guest state differs: %s", d)
	}
	if sampled.Sampled.HostInsts != full.Timing.TotalInsts() {
		t.Errorf("stream length: sampled (exact) %d, full %d", sampled.Sampled.HostInsts, full.Timing.TotalInsts())
	}
	est, fullCycles := float64(sampled.Sampled.EstCycles), float64(full.Timing.Cycles)
	if est < 0.5*fullCycles || est > 1.5*fullCycles {
		t.Errorf("cycle estimate %v too far from full run's %v", est, fullCycles)
	}
	if sampled.Timing.Cycles != sampled.Sampled.EstCycles {
		t.Errorf("Result.Timing.Cycles %d != report estimate %d", sampled.Timing.Cycles, sampled.Sampled.EstCycles)
	}
}

// TestSampledSessionDeterminism is the -jobs determinism satellite: a
// sampled run through a multi-worker session must be byte-identical to
// a direct single-threaded run.
func TestSampledSessionDeterminism(t *testing.T) {
	sc := sample.Config{Interval: 4_000, Every: 2, Warmup: 500}
	ref := "synthetic:429.mcf"

	job, err := WithWorkload(ref, 0.05, WithTOLConfig(sampleTestTOL()), WithSampling(sc))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p, err := job.Program.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	direct, err := Run(context.Background(), p, WithTOLConfig(sampleTestTOL()), WithSampling(sc))
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	sess := NewSession(WithWorkers(4))
	viaSession, err := sess.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("session run: %v", err)
	}
	got, _ := json.Marshal(viaSession)
	want, _ := json.Marshal(direct)
	if !bytes.Equal(got, want) {
		t.Errorf("sampled result differs between 4-worker session and direct run:\nsession: %.200s\ndirect:  %.200s", got, want)
	}
}

// TestSampledAndFullRunsDoNotShareCacheKey pins that Sampling
// participates in the memo key: a session must never serve a sampled
// job a full run's cached result or vice versa.
func TestSampledAndFullRunsDoNotShareCacheKey(t *testing.T) {
	sc := sample.Config{Interval: 4_000, Every: 2}
	fullJob := openWorkload(t, "synthetic:429.mcf", 0.05)
	fullJob.NoPreload = true
	sampledJob := fullJob
	sampledJob.Opts = append(append([]Option{}, fullJob.Opts...), WithSampling(sc))

	k1, err := fullJob.Key()
	if err != nil {
		t.Fatalf("full key: %v", err)
	}
	k2, err := sampledJob.Key()
	if err != nil {
		t.Fatalf("sampled key: %v", err)
	}
	if k1 == k2 {
		t.Fatalf("sampled and full jobs share memo key %s", k1)
	}
}

// TestSnapshotRoundTripPhasedWorkload is the checkpoint byte-identity
// satellite for a phased: composite workload: pause mid-run across the
// phase structure, snapshot, restore, resume, and compare the stream
// and final statistics with an uninterrupted run.
func TestSnapshotRoundTripPhasedWorkload(t *testing.T) {
	job := openWorkload(t, "phased:401.bzip2+462.libquantum", 0.05)
	p, err := job.Program.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := sampleTestTOL()

	drain := func(e *tol.Engine) []timing.DynInst {
		var out []timing.DynInst
		var buf [256]timing.DynInst
		for {
			n := e.NextBatch(buf[:])
			if n == 0 {
				return out
			}
			out = append(out, buf[:n]...)
		}
	}

	ref := tol.NewEngine(cfg, p)
	full := drain(ref)
	if err := ref.Err(); err != nil || !ref.Halted() {
		t.Fatalf("reference run: err=%v halted=%v", err, ref.Halted())
	}

	a := tol.NewEngine(cfg, p)
	a.SetStopAfter(ref.Stats.DynTotal() / 2)
	prefix := drain(a)
	if !a.Paused() {
		t.Fatal("engine did not pause")
	}
	sn, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	blob, err := json.Marshal(sn)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded tol.EngineSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b, err := tol.RestoreEngine(p, &decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	suffix := drain(b)
	if err := b.Err(); err != nil || !b.Halted() {
		t.Fatalf("resumed run: err=%v halted=%v", err, b.Halted())
	}
	if got, want := len(prefix)+len(suffix), len(full); got != want {
		t.Fatalf("stream length: %d+%d=%d, uninterrupted %d", len(prefix), len(suffix), got, want)
	}
	for i := range full {
		d := prefix
		j := i
		if i >= len(prefix) {
			d, j = suffix, i-len(prefix)
		}
		if d[j] != full[i] {
			t.Fatalf("stream diverges at instruction %d", i)
		}
	}
	gotStats, _ := json.Marshal(&b.Stats)
	wantStats, _ := json.Marshal(&ref.Stats)
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatalf("final stats differ:\nresumed:       %s\nuninterrupted: %s", gotStats, wantStats)
	}
	if d := b.GuestState().Diff(ref.GuestState()); d != "" {
		t.Fatalf("final guest state differs: %s", d)
	}
	_ = workload.Fingerprint(job.Program) // phased programs are fingerprintable (bundle cache key)
}
