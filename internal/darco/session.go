package darco

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/sample"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Job is one unit of batch work: a workload program plus the
// configuration options of the run. Name identifies the benchmark (it
// is the display label and the key Preload records match on); Variant
// distinguishes different programs sharing a Name — typically the
// workload source and scale — and participates in the memo-cache key
// alongside the hash of the resolved Config.
type Job struct {
	Name    string
	Variant string
	// Program is the deterministic guest-program factory of the job —
	// any workload.Program: a synthetic catalog spec, a file-defined
	// spec, a recorded trace replay, a phased composite, or a
	// hand-assembled program wrapped with workload.Func.
	Program workload.Program
	Opts    []Option

	// NoPreload excludes the job from the preload shortcut. Preloaded
	// Records are matched by (name, mode) only and carry no Config, so
	// jobs that deliberately vary the configuration for one benchmark —
	// e.g. the cache-pressure sweep's bounded-cache legs — must opt out
	// or they would be served a result from a different configuration.
	NoPreload bool

	// Ref is the workload Source-registry reference the program was
	// resolved from ("<source>:<name>"), when it was resolved from one
	// (WithWorkload fills it; hand-assembled jobs leave it empty). A
	// remote session (WithRemote) ships Ref plus the resolved Config to
	// a darco-serve instance instead of simulating locally, so only
	// reference-built jobs are remotely runnable.
	Ref string

	// Scale is the dynamic-size multiplier the program was scaled by
	// (0 means 1.0). It is informational — the scaled Program is
	// already baked into the job and Variant — but it travels into
	// Records built for the persistent store and into remote
	// submissions, which re-resolve Ref at this scale.
	Scale float64

	// Events, when non-nil, receives this job's progress events in
	// addition to the session-wide WithEvents stream — the hook
	// darco-serve uses to fan events out per submitted job. Like the
	// session stream it is observability only and never affects
	// results or cache keys.
	Events func(Event)
}

// EventKind classifies Session progress events.
type EventKind uint8

// Event kinds, in the order a job moves through them. EventCached
// replaces the Started/Done pair when the memo cache already holds the
// result.
const (
	EventQueued   EventKind = iota // job accepted, waiting for a worker
	EventStarted                   // job running on a worker
	EventProgress                  // periodic in-run report (Cycles set)
	EventDone                      // job finished successfully
	EventFailed                    // job finished with an error
	EventCached                    // job served from the memo cache
)

var eventKindNames = [...]string{"queued", "started", "progress", "done", "failed", "cached"}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event?"
}

// ParseEventKind maps an EventKind.String() name back to the kind —
// the inverse used when decoding events from a darco-serve wire
// stream.
func ParseEventKind(s string) (EventKind, error) {
	for i, name := range eventKindNames {
		if s == name {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("darco: unknown event kind %q", s)
}

// Event is one per-job progress event streamed by a Session.
type Event struct {
	Job    string      `json:"job"`
	Mode   timing.Mode `json:"mode"`
	Kind   EventKind   `json:"kind"`
	Cycles uint64      `json:"cycles,omitempty"` // EventProgress and EventDone
	Err    error       `json:"-"`                // EventFailed
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithWorkers sets the worker-pool size (n < 1 selects GOMAXPROCS).
func WithWorkers(n int) SessionOption {
	return func(s *Session) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithEvents installs the per-job event stream. Events from concurrent
// jobs are delivered serially (the callback needs no locking), in an
// order that depends on scheduling; results never do.
func WithEvents(fn func(Event)) SessionOption {
	return func(s *Session) { s.events = fn }
}

// ResultStore is the persistence hook of a Session: a durable,
// shareable result cache keyed by the Session memo key (Job.Key — the
// program fingerprint × resolved-config hash). A session with a store
// consults it after a memory-cache miss and saves every successful run
// into it, so results survive process restarts and are shared across
// replicas pointed at the same store. internal/store implements it on
// disk; both methods must be safe for concurrent use.
type ResultStore interface {
	// Get returns the stored record for a memo key, reporting a miss
	// with ok=false. A record whose Result is nil counts as a miss.
	Get(key string) (rec *Record, ok bool, err error)
	// Put persists the record under the memo key, atomically replacing
	// any previous entry.
	Put(key string, rec *Record) error
}

// WithStore attaches a persistent result store to the session. Store
// hits are reported as EventCached exactly like memory-cache hits;
// store I/O errors degrade to simulation (a broken store never fails a
// run, it only loses the shortcut).
func WithStore(st ResultStore) SessionOption {
	return func(s *Session) { s.store = st }
}

// RemoteExecutor runs one resolved job on a remote darco-serve
// instance instead of the local machine. serve.Client implements it;
// install it with WithRemote.
type RemoteExecutor interface {
	// RunRemote submits the workload reference at the given scale with
	// the fully resolved configuration, streams remote progress into
	// events (nil-safe) until the job completes, and returns the
	// result. The configuration's Progress hook is stripped before the
	// call (it cannot cross the wire).
	RunRemote(ctx context.Context, ref string, scale float64, cfg Config, events func(Event)) (*Result, error)
}

// WithRemote makes the session execute jobs on a remote darco-serve
// instance: instead of simulating locally, each cache-missing job is
// submitted by workload reference + resolved Config. Only jobs built
// from a Source-registry reference (Job.Ref non-empty — anything from
// WithWorkload) are remotely runnable; hand-assembled programs fail
// with a clear error. Memoization, dedup of identical in-flight jobs
// and the worker-pool bound (here: concurrent outstanding requests)
// work exactly as for local execution.
func WithRemote(r RemoteExecutor) SessionOption {
	return func(s *Session) { s.remote = r }
}

// Session is the concurrent batch executor of the controller: a worker
// pool that runs many (program, mode, config) jobs, memoizes results
// under a config-hash cache key, and streams per-job progress events.
//
// Both the co-design engine and the timing simulator are fully
// deterministic and every run is independent, so results obtained
// through a Session are identical to sequential execution regardless
// of the worker count — the property the figure-regeneration harness
// relies on to parallelize the paper's 48-benchmark sweeps.
type Session struct {
	workers int
	events  func(Event)
	store   ResultStore
	remote  RemoteExecutor

	sem chan struct{}

	mu      sync.Mutex
	cache   map[string]*sessionEntry
	preload map[string]*Result

	evMu sync.Mutex
}

type sessionEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewSession builds a batch executor. With no options it uses
// GOMAXPROCS workers and streams no events.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		workers: runtime.GOMAXPROCS(0),
		cache:   make(map[string]*sessionEntry),
		preload: make(map[string]*Result),
	}
	for _, o := range opts {
		o(s)
	}
	s.sem = make(chan struct{}, s.workers)
	return s
}

// Workers returns the worker-pool size.
func (s *Session) Workers() int { return s.workers }

// notify delivers one event to the session-wide WithEvents stream and
// to the job's own Events hook; delivery is serial (the callbacks need
// no locking).
func (s *Session) notify(job *Job, ev Event) {
	if s.events == nil && job.Events == nil {
		return
	}
	s.evMu.Lock()
	if s.events != nil {
		s.events(ev)
	}
	if job.Events != nil {
		job.Events(ev)
	}
	s.evMu.Unlock()
}

// JobForSpec builds the session job for one already-scaled synthetic
// workload spec — the Spec-typed shorthand for JobForProgram.
func JobForSpec(spec workload.Spec, scale float64, opts ...Option) Job {
	return JobForProgram(workload.SpecProgram{Spec: spec}, scale, opts...)
}

// JobForProgram builds the session job for one already-scaled workload
// program. It is the single place the Variant cache-key component is
// derived from the program source, scale factor and content
// fingerprint, so every tool keys identically and two programs sharing
// a benchmark name (two traces recorded at different scales, a file:
// spec named after a catalog entry) never alias one memoized result.
// Non-synthetic programs opt out of the preload shortcut: preloaded
// Records are matched by benchmark name only, and a trace or phased
// program sharing a catalog name is not the run those records came
// from.
func JobForProgram(p workload.Program, scale float64, opts ...Option) Job {
	meta := p.Meta()
	variant := fmt.Sprintf("src=%s|scale=%g", meta.Source, scale)
	if meta.ISA != "" {
		// Folded in only when set so x86 programs (ISA empty) keep the
		// keys persistent stores already file results under. Same-named
		// benchmarks under different frontends are different programs
		// and must never share a memoized result.
		variant += "|isa=" + meta.ISA
	}
	if fp := workload.Fingerprint(p); fp != "" {
		variant += "|id=" + fp
	}
	return Job{
		Name:      p.Name(),
		Variant:   variant,
		Program:   p,
		Opts:      opts,
		NoPreload: meta.Source != workload.DefaultSource,
		Scale:     scale,
	}
}

// WithWorkload resolves a "<source>:<name>" workload reference (e.g.
// "synthetic:470.lbm", "file:mybench.json", "trace:run.trace.json",
// "phased:401.bzip2+462.libquantum"; a bare name means synthetic)
// through the workload Source registry, applies the scale factor, and
// returns the session job running it — the reference-string
// counterpart of JobForSpec shared by the command-line tools.
func WithWorkload(ref string, scale float64, opts ...Option) (Job, error) {
	p, err := workload.Open(ref)
	if err != nil {
		return Job{}, err
	}
	p, err = workload.ScaleProgram(p, scale)
	if err != nil {
		return Job{}, err
	}
	job := JobForProgram(p, scale, opts...)
	job.Ref = ref
	return job, nil
}

// resolve applies the job's options on top of DefaultConfig.
func (j *Job) resolve() Config {
	cfg := DefaultConfig()
	for _, o := range j.Opts {
		o(&cfg)
	}
	return cfg
}

// cacheKey derives the memo key: the job name and variant plus the
// hash of the JSON form of the resolved config (Progress is excluded
// via json:"-", so observability hooks never fragment the cache). A
// config that fails to marshal is an error: a nondeterministic
// fallback key would not only defeat sharing, it would poison any
// persistent ResultStore keyed by it across runs.
func cacheKey(name, variant string, cfg *Config) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("darco: config of job %q is not hashable: %w", name, err)
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(variant))
	h.Write([]byte{0})
	h.Write(b)
	return fmt.Sprintf("%s|%016x", name, h.Sum64()), nil
}

// Key returns the job's memo-cache key: "<name>|<16-hex-digit hash>"
// over the name, the variant (workload source, scale and content
// fingerprint) and the resolved configuration. It is the content
// address of the run — equal keys mean interchangeable results — and
// the key a persistent ResultStore files the record under. Invalid or
// unhashable configurations are errors, mirroring Session.Run.
func (j Job) Key() (string, error) {
	cfg := j.resolve()
	if err := cfg.Validate(); err != nil {
		return "", fmt.Errorf("%s: %w", j.Name, err)
	}
	return cacheKey(j.Name, j.Variant, &cfg)
}

// isCancellation reports whether err came from a cancelled or expired
// context rather than from the simulation itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// preloadKey indexes externally supplied results by (name, mode) only:
// preloaded Records carry no Config, so the caller vouches that they
// were produced under the configuration the session would use.
func preloadKey(name string, mode timing.Mode) string {
	return name + "\x00" + mode.String()
}

// Preload seeds the session with an externally obtained result for
// (name, mode), e.g. one loaded from a cmd/darco-suite -json Record.
// Subsequent jobs with that name and mode are served from it without
// simulating.
func (s *Session) Preload(name string, mode timing.Mode, res *Result) {
	s.mu.Lock()
	s.preload[preloadKey(name, mode)] = res
	s.mu.Unlock()
}

// Run executes one job through the session, deduplicating it against
// identical in-flight or completed jobs. The first caller for a cache
// key runs the job on a worker slot; concurrent callers with the same
// key block until it completes (or their own ctx is cancelled) and
// share the result. Context-cancellation errors are not memoized, so
// a cancelled job can be retried.
func (s *Session) Run(ctx context.Context, job Job) (*Result, error) {
	cfg := job.resolve()
	// Fail fast on invalid configs: no worker slot, no cache entry —
	// every submission of a bad job reports the same clear error.
	if err := cfg.Validate(); err != nil {
		err = fmt.Errorf("%s: %w", job.Name, err)
		s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventFailed, Err: err})
		return nil, err
	}
	key, err := cacheKey(job.Name, job.Variant, &cfg)
	if err != nil {
		s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventFailed, Err: err})
		return nil, err
	}

	var e *sessionEntry
	for {
		s.mu.Lock()
		if res, ok := s.preload[preloadKey(job.Name, cfg.Mode)]; ok && !job.NoPreload {
			s.mu.Unlock()
			s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventCached})
			return res, nil
		}
		prev, inFlight := s.cache[key]
		if !inFlight {
			e = &sessionEntry{done: make(chan struct{})}
			s.cache[key] = e
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		select {
		case <-prev.done:
			// A runner whose own context was cancelled publishes its
			// cancellation and forgets the key; a waiter with a live
			// context retries instead of inheriting that error.
			if isCancellation(prev.err) && ctx.Err() == nil {
				continue
			}
			s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventCached})
			return prev.res, prev.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Memory-cache miss: consult the persistent store before taking a
	// worker slot. Store errors (including corrupt entries the store
	// itself tolerates) degrade to simulation.
	if s.store != nil {
		if rec, ok, serr := s.store.Get(key); serr == nil && ok && rec.Result != nil {
			s.finish(key, e, rec.Result, nil)
			s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventCached})
			return rec.Result, nil
		}
	}

	s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventQueued})
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finish(key, e, nil, ctx.Err())
		return nil, ctx.Err()
	}
	s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventStarted})

	var res *Result
	if s.remote != nil {
		res, err = s.runRemote(ctx, &job, cfg)
	} else {
		res, err = s.execute(ctx, job, cfg)
	}
	<-s.sem

	if err == nil && s.store != nil {
		// Best-effort persistence: a full Record (digest + result), so
		// the store serves the established interchange format directly.
		rec := NewRecord(job.Name, jobSuite(&job), job.Scale, cfg.Mode, res, nil)
		_ = s.store.Put(key, &rec)
	}

	s.finish(key, e, res, err)
	if err != nil {
		s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventFailed, Err: err})
		return nil, err
	}
	s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventDone, Cycles: res.Timing.Cycles})
	return res, nil
}

// jobSuite reports the suite label recorded for a job's persisted
// results.
func jobSuite(job *Job) string {
	if job.Program == nil {
		return ""
	}
	return job.Program.Meta().Suite
}

// runRemote ships one cache-missing job to the configured remote
// executor. Remote progress events re-enter the local event streams;
// the remote side emits its own queued/started/done lifecycle, so only
// in-run progress is forwarded to avoid duplicating lifecycle events
// the local session already emitted.
func (s *Session) runRemote(ctx context.Context, job *Job, cfg Config) (*Result, error) {
	if job.Ref == "" {
		return nil, fmt.Errorf("darco: job %q was not built from a workload reference; remote sessions can only run WithWorkload jobs", job.Name)
	}
	cfg.Progress = nil // not serializable; progress arrives as remote events
	cfg.ProgressEvery = 0
	return s.remote.RunRemote(ctx, job.Ref, job.Scale, cfg, func(ev Event) {
		if ev.Kind == EventProgress {
			s.notify(job, ev)
		}
	})
}

func (s *Session) execute(ctx context.Context, job Job, cfg Config) (*Result, error) {
	if job.Program == nil {
		return nil, fmt.Errorf("darco: job %q has no program", job.Name)
	}
	p, err := job.Program.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", job.Name, err)
	}
	// Chain session progress events onto any caller-installed hook.
	prev := cfg.Progress
	cfg.Progress = func(pr Progress) {
		s.notify(&job, Event{Job: job.Name, Mode: cfg.Mode, Kind: EventProgress, Cycles: pr.Cycles})
		if prev != nil {
			prev(pr)
		}
	}
	// Sampled runs inherit the session's worker-pool width for their
	// interval measurements and warm-start their fast-forward pass from
	// the persistent store when it can hold raw blobs (internal/store
	// can). The job holds one session slot; the fan-out happens inside.
	env := sampleEnv{parallel: s.workers, program: workload.Fingerprint(job.Program)}
	if bc, ok := s.store.(sample.BlobCache); ok {
		env.cache = bc
	}
	res, err := cfg.runWith(ctx, p, env)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", job.Name, err)
	}
	return res, nil
}

// finish publishes the outcome to waiters and forgets cancellations so
// they can be retried.
func (s *Session) finish(key string, e *sessionEntry, res *Result, err error) {
	e.res, e.err = res, err
	if isCancellation(err) {
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
	}
	close(e.done)
}

// BatchResult pairs one batch job with its outcome.
type BatchResult struct {
	Job    Job
	Result *Result
	Err    error
}

// RunBatch executes the jobs concurrently (bounded by the worker pool)
// and returns their outcomes in input order. It never stops early: a
// failing job does not prevent the others from completing, which is
// what lets one bad spec report an error without killing a
// 48-benchmark sweep.
func (s *Session) RunBatch(ctx context.Context, jobs []Job) []BatchResult {
	out := make([]BatchResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			res, err := s.Run(ctx, job)
			out[i] = BatchResult{Job: job, Result: res, Err: err}
		}(i, job)
	}
	wg.Wait()
	return out
}

// RunInteraction executes the Figure 10/11 shared+split pair for one
// job through the session cache, so the shared leg is reused by any
// other figure needing the same run.
func (s *Session) RunInteraction(ctx context.Context, job Job) (*InteractionResult, error) {
	var out InteractionResult
	for _, leg := range []struct {
		mode timing.Mode
		dst  **Result
	}{
		{timing.ModeShared, &out.Shared},
		{timing.ModeSplit, &out.Split},
	} {
		j := job
		j.Opts = append(append([]Option{}, job.Opts...), WithMode(leg.mode))
		res, err := s.Run(ctx, j)
		if err != nil {
			return nil, err
		}
		*leg.dst = res
	}
	return &out, nil
}
