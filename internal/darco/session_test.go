package darco

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/workload"
)

func benchJob(t *testing.T, name string, scale float64, opts ...Option) Job {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(scale)
	return Job{
		Name:    spec.Name,
		Variant: fmt.Sprintf("scale=%g", scale),
		Program: workload.SpecProgram{Spec: spec},
		Opts:    append([]Option{WithCosim(false)}, opts...),
	}
}

// TestSessionVariantsDoNotCollide runs the same benchmark at two
// scales in one session and requires two distinct executions: the
// Variant field keeps differently scaled programs out of each other's
// cache slots.
func TestSessionVariantsDoNotCollide(t *testing.T) {
	var mu sync.Mutex
	started := 0
	s := NewSession(WithWorkers(2), WithEvents(func(ev Event) {
		if ev.Kind == EventStarted {
			mu.Lock()
			started++
			mu.Unlock()
		}
	}))
	small, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Errorf("executions = %d, want 2 (scale variants collided)", started)
	}
	if small.GuestDyn() >= large.GuestDyn() {
		t.Errorf("scale 0.1 ran %d guest insts, scale 0.2 ran %d; want smaller < larger",
			small.GuestDyn(), large.GuestDyn())
	}
}

// TestSessionMemoizes submits the same job twice and requires a single
// simulation: the second call must be a cache hit.
func TestSessionMemoizes(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventKind]int{}
	s := NewSession(WithWorkers(2), WithEvents(func(ev Event) {
		mu.Lock()
		counts[ev.Kind]++
		mu.Unlock()
	}))
	job := benchJob(t, "462.libquantum", 0.1)
	r1, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memoized run returned a different Result pointer")
	}
	if counts[EventStarted] != 1 || counts[EventCached] != 1 {
		t.Errorf("events: started=%d cached=%d, want 1/1", counts[EventStarted], counts[EventCached])
	}

	// A different config must NOT hit the cache.
	alt := job
	alt.Opts = append(alt.Opts, WithMode(timing.ModeSplit))
	if _, err := s.Run(context.Background(), alt); err != nil {
		t.Fatal(err)
	}
	if counts[EventStarted] != 2 {
		t.Errorf("split-mode run was served from the shared-mode cache (started=%d)", counts[EventStarted])
	}
}

// TestSessionConcurrentIdentical runs the same job from many
// goroutines at once and requires exactly one execution with all
// callers sharing its result.
func TestSessionConcurrentIdentical(t *testing.T) {
	var mu sync.Mutex
	started := 0
	s := NewSession(WithWorkers(4), WithEvents(func(ev Event) {
		if ev.Kind == EventStarted {
			mu.Lock()
			started++
			mu.Unlock()
		}
	}))
	job := benchJob(t, "470.lbm", 0.1)
	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Run(context.Background(), job)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if started != 1 {
		t.Errorf("concurrent identical jobs executed %d times, want 1", started)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different Result pointer", i)
		}
	}
}

// TestSessionBatchMatchesSequential is the core determinism guarantee:
// a concurrent batch over distinct benchmarks must produce results
// byte-identical to one-at-a-time execution.
func TestSessionBatchMatchesSequential(t *testing.T) {
	names := []string{"462.libquantum", "400.perlbench", "107.novis_ragdoll"}

	sequential := make(map[string][]byte)
	for _, n := range names {
		job := benchJob(t, n, 0.1)
		res, err := NewSession(WithWorkers(1)).Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		sequential[n] = b
	}

	s := NewSession(WithWorkers(4))
	var jobs []Job
	for _, n := range names {
		jobs = append(jobs, benchJob(t, n, 0.1))
	}
	for _, br := range s.RunBatch(context.Background(), jobs) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		b, err := json.Marshal(br.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(sequential[br.Job.Name]) {
			t.Errorf("%s: concurrent result differs from sequential", br.Job.Name)
		}
	}
}

// TestSessionBatchReportsPerJobErrors checks a bad job surfaces its
// own error without stopping the rest of the batch.
func TestSessionBatchReportsPerJobErrors(t *testing.T) {
	s := NewSession(WithWorkers(2))
	boom := errors.New("boom")
	jobs := []Job{
		benchJob(t, "462.libquantum", 0.1),
		{Name: "broken", Program: workload.Func("broken", func() (*guest.Program, error) { return nil, boom })},
	}
	out := s.RunBatch(context.Background(), jobs)
	if out[0].Err != nil {
		t.Errorf("good job failed: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, boom) {
		t.Errorf("bad job error = %v, want wrapped boom", out[1].Err)
	}
}

// TestSessionPreload checks externally supplied results short-circuit
// simulation.
func TestSessionPreload(t *testing.T) {
	started := false
	s := NewSession(WithEvents(func(ev Event) {
		if ev.Kind == EventStarted {
			started = true
		}
	}))
	canned := &Result{Timing: &timing.Result{Cycles: 42}}
	s.Preload("462.libquantum", timing.ModeShared, canned)
	res, err := s.Run(context.Background(), benchJob(t, "462.libquantum", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res != canned {
		t.Error("preloaded result not returned")
	}
	if started {
		t.Error("preloaded job was simulated anyway")
	}
}

// TestSessionInteraction checks the shared leg of an interaction pair
// lands in (and is served from) the same cache as a plain shared run.
func TestSessionInteraction(t *testing.T) {
	var mu sync.Mutex
	started := 0
	s := NewSession(WithWorkers(2), WithEvents(func(ev Event) {
		if ev.Kind == EventStarted {
			mu.Lock()
			started++
			mu.Unlock()
		}
	}))
	job := benchJob(t, "470.lbm", 0.1)
	shared, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := s.RunInteraction(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Shared != shared {
		t.Error("interaction shared leg did not reuse the cached shared run")
	}
	if started != 2 { // shared once + split once
		t.Errorf("executions = %d, want 2", started)
	}
}
