package darco

import (
	"context"
	"testing"

	"repro/internal/workload"
)

func runBench(t *testing.T, name string) *Result {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmokeLibquantum(t *testing.T) {
	res := runBench(t, "462.libquantum")
	t.Logf("libquantum: guest=%d cycles=%d ipc=%.2f tol%%=%.1f ratio=%.0f sbm-dyn%%=%.1f sbs=%d",
		res.GuestDyn(), res.Timing.Cycles, res.Timing.IPC(),
		res.Timing.TOLShare()*100, res.DynamicStaticRatio(),
		100*float64(res.TOL.DynSBM)/float64(res.GuestDyn()), res.TOL.SBCreated)
	if res.GuestDyn() < 100_000 {
		t.Fatalf("dynamic size too small: %d", res.GuestDyn())
	}
	// High-ratio benchmark: SBM must dominate and TOL share must be low.
	if share := float64(res.TOL.DynSBM) / float64(res.GuestDyn()); share < 0.9 {
		t.Errorf("SBM dynamic share = %.2f, want > 0.9", share)
	}
	if res.Timing.TOLShare() > 0.15 {
		t.Errorf("TOL share = %.2f, want < 0.15 for libquantum-like", res.Timing.TOLShare())
	}
}

func TestSmokeRagdoll(t *testing.T) {
	res := runBench(t, "107.novis_ragdoll")
	t.Logf("ragdoll: guest=%d cycles=%d ipc=%.2f tol%%=%.1f ratio=%.0f im-dyn%%=%.1f",
		res.GuestDyn(), res.Timing.Cycles, res.Timing.IPC(),
		res.Timing.TOLShare()*100, res.DynamicStaticRatio(),
		100*float64(res.TOL.DynIM)/float64(res.GuestDyn()))
	// Low-ratio benchmark: substantial TOL share.
	if res.Timing.TOLShare() < 0.10 {
		t.Errorf("TOL share = %.2f, want >= 0.10 for ragdoll-like", res.Timing.TOLShare())
	}
}

func TestSmokePerlbench(t *testing.T) {
	res := runBench(t, "400.perlbench")
	indirPerK := 1000 * float64(res.TOL.IndirectDyn) / float64(res.GuestDyn())
	t.Logf("perlbench: guest=%d cycles=%d ipc=%.2f tol%%=%.1f indirect/K=%.1f lookups=%d",
		res.GuestDyn(), res.Timing.Cycles, res.Timing.IPC(),
		res.Timing.TOLShare()*100, indirPerK, res.TOL.Lookups)
	if indirPerK < 3 {
		t.Errorf("indirect density = %.1f per K, want >= 3", indirPerK)
	}
}

func TestSmokeInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("interaction experiment needs a steady-state-sized run")
	}
	spec, err := workload.ByName("400.perlbench")
	if err != nil {
		t.Fatal(err)
	}
	// Interaction penalties are a steady-state effect: at small scales
	// the one-time warming the interpreter performs for the application
	// outweighs the recurring pollution (see EXPERIMENTS.md).
	spec = spec.Scale(4)
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Timing-only experiment; the functional path is tested elsewhere.
	ir, err := RunInteraction(context.Background(), p, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("interaction perlbench: app slowdown=%.3f tol slowdown=%.3f",
		ir.AppSlowdown(), ir.TOLSlowdown())
	// The indirect-branch heavy outlier must show a clear TOL-side
	// penalty (the paper reports the largest interaction effects for
	// perlbench), and the app side must be near-neutral or worse.
	if ir.TOLSlowdown() < 1.02 {
		t.Errorf("perlbench-like TOL interaction penalty too small: %.3f", ir.TOLSlowdown())
	}
	if ir.AppSlowdown() < 0.98 {
		t.Errorf("app slowdown implausibly low: %.3f", ir.AppSlowdown())
	}
	// The two runs see the same guest execution and dynamic streams.
	if ir.Shared.GuestDyn() != ir.Split.GuestDyn() {
		t.Error("interaction runs diverged in guest instruction counts")
	}
	if ir.Shared.Timing.TotalInsts() != ir.Split.Timing.TotalInsts() {
		t.Error("interaction runs diverged in host instruction counts")
	}
}
