package darco

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/guest"
	"repro/internal/workload"
)

// TestSyntheticSourceCycleIdentical is the acceptance check of the
// Source redesign: the synthetic: source must be indistinguishable
// from the pre-interface Spec path for every catalog benchmark. Image
// identity is checked exhaustively (the engine is deterministic, so
// identical images imply identical streams and cycles); full
// stream/Stats equality is then verified on a representative subset by
// running both paths end to end.
func TestSyntheticSourceCycleIdentical(t *testing.T) {
	hash := func(p workload.Program) string {
		img, err := p.Build()
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		h := sha256.New()
		h.Write(img.Code)
		for _, seg := range img.Data {
			fmt.Fprintf(h, "|%d:", seg.Addr)
			h.Write(seg.Bytes)
		}
		return fmt.Sprintf("%x|%x|%d", h.Sum(nil), img.Entry, img.StaticInst)
	}
	for _, spec := range workload.Catalog() {
		viaSource, err := workload.Open("synthetic:" + spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if hash(viaSource) != hash(workload.SpecProgram{Spec: spec}) {
			t.Errorf("%s: synthetic: source image differs from Spec.Build", spec.Name)
		}
	}

	for _, name := range []string{"462.libquantum", "107.novis_ragdoll", "400.perlbench"} {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec = spec.Scale(0.25)
		sess := NewSession(WithWorkers(2))
		old, err := sess.Run(context.Background(), JobForSpec(spec, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		job, err := WithWorkload("synthetic:"+name, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		nu, err := sess.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		ob, _ := json.Marshal(old)
		nb, _ := json.Marshal(nu)
		if !bytes.Equal(ob, nb) {
			t.Errorf("%s: synthetic: source result differs from Spec path", name)
		}
	}
}

// TestTraceReplayCrossConfig is the record/replay acceptance check: a
// trace recorded under the default configuration, replayed under a
// different -cc-size/-O configuration, must reproduce the exact
// tol.Stats (and full Result) of running the original benchmark
// directly under that different configuration — the property that
// makes recorded traces valid inputs for cross-config sweeps.
func TestTraceReplayCrossConfig(t *testing.T) {
	const name = "462.libquantum"
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scale(0.25)
	orig := workload.SpecProgram{Spec: spec}

	// Record under the default configuration (the recording run's
	// config is irrelevant to the trace: only the image is captured).
	if _, err := Run(context.Background(), mustBuild(t, orig)); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.NewTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Replay under a deliberately different configuration: bounded
	// code cache and a different optimization preset.
	cross := []Option{WithOptLevel(1), WithCodeCache(512, "lru-translation")}
	direct, err := Run(context.Background(), mustBuild(t, orig), cross...)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Run(context.Background(), mustBuild(t, back.Program()), cross...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.TOL, replay.TOL) {
		t.Error("replayed tol.Stats differ from the direct run under the cross config")
	}
	db, _ := json.Marshal(direct)
	rb, _ := json.Marshal(replay)
	if !bytes.Equal(db, rb) {
		t.Error("replayed full Result differs from the direct run under the cross config")
	}
}

// TestWithWorkloadJob covers the reference-string job constructor.
func TestWithWorkloadJob(t *testing.T) {
	job, err := WithWorkload("synthetic:401.bzip2", 0.5, WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "401.bzip2" || job.NoPreload {
		t.Fatalf("job %+v", job)
	}
	if job.Program.(workload.SpecProgram).Spec.OuterIters == 0 {
		t.Fatal("scale not applied")
	}
	phased, err := WithWorkload("phased:401.bzip2+998.specrand", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !phased.NoPreload {
		t.Error("non-synthetic job did not opt out of preloading")
	}
	if _, err := WithWorkload("nope:x", 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := WithWorkload("trace:/nonexistent.trace.json", 1); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func mustBuild(t *testing.T, p workload.Program) *guest.Program {
	t.Helper()
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSameNameDifferentProgramsDoNotAlias is the memo-key regression
// test: two traces recorded from the same benchmark at different
// scales share a Name, and the session must still run both instead of
// serving the second from the first's cache slot.
func TestSameNameDifferentProgramsDoNotAlias(t *testing.T) {
	spec, err := workload.ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	traceOf := func(scale float64) workload.Program {
		tr, err := workload.NewTrace(workload.SpecProgram{Spec: spec.Scale(scale)})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Program()
	}
	small, big := traceOf(0.25), traceOf(0.5)
	if workload.Fingerprint(small) == workload.Fingerprint(big) {
		t.Fatal("different images share a fingerprint")
	}
	sess := NewSession(WithWorkers(2))
	rs, err := sess.Run(context.Background(), JobForProgram(small, 1, WithCosim(false)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sess.Run(context.Background(), JobForProgram(big, 1, WithCosim(false)))
	if err != nil {
		t.Fatal(err)
	}
	if rs.GuestDyn() == rb.GuestDyn() {
		t.Fatalf("same-name traces aliased: both report %d dynamic instructions", rs.GuestDyn())
	}
	// The same program twice still memoizes.
	again, err := sess.Run(context.Background(), JobForProgram(small, 1, WithCosim(false)))
	if err != nil {
		t.Fatal(err)
	}
	if again != rs {
		t.Error("identical program did not hit the memo cache")
	}
}
