// Package emu implements the reference component of the simulation
// infrastructure: a functional emulator of the guest ISA that
// maintains the authoritative architectural state and memory image.
// The co-design component is verified against it by co-simulation —
// the state checking at translation boundaries the paper describes.
//
// The emulator is ISA-agnostic: it executes whatever frontend the
// loaded program names (guest.ISAOf), through the frontend's decode
// hook and the shared step semantics. Package x86emu remains as the
// x86-pinned instance for the paper's original guest.
package emu

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/mem"
)

// Emulator is the authoritative guest-ISA functional emulator.
type Emulator struct {
	State guest.State
	Mem   *mem.Sparse

	// ISA is the guest frontend being emulated.
	ISA *guest.ISA

	// dec memoizes fetch+decode per EIP; guest code is immutable once
	// loaded, so the authoritative semantics are unchanged.
	dec *guest.DecodeCache

	// Statistics over the authoritative execution.
	DynInsts     uint64
	DynBranches  uint64
	DynIndirect  uint64
	DynMemOps    uint64
	DynFP        uint64
	Halted       bool
	TakenTargets map[uint32]uint64 // indirect-branch target histogram (optional)
}

// New creates an emulator with the program loaded and registers
// initialized per the program's frontend. An unregistered Program.ISA
// panics, matching guest.Program.LoadInto.
func New(p *guest.Program) *Emulator {
	isa, err := guest.ISAOf(p)
	if err != nil {
		panic(err)
	}
	e := &Emulator{Mem: mem.NewSparse(), ISA: isa, dec: guest.NewDecodeCache(isa)}
	e.State = p.LoadInto(e.Mem)
	return e
}

// Step executes a single guest instruction, updating statistics.
func (e *Emulator) Step() (guest.StepResult, error) {
	if e.Halted {
		return guest.StepResult{Halted: true}, nil
	}
	// Lazy init keeps hand-rolled (non-New) Emulator values working as
	// x86 machines, as they did before the decode cache and the second
	// frontend existed; New pre-populates both fields so neither
	// branch fires on the cosim path.
	if e.ISA == nil {
		e.ISA = guest.X86
	}
	if e.dec == nil {
		e.dec = guest.NewDecodeCache(e.ISA)
	}
	var res guest.StepResult
	if err := e.dec.Step(&e.State, e.Mem, &res); err != nil {
		return res, err
	}
	if res.Halted {
		e.Halted = true
		return res, nil
	}
	e.DynInsts++
	if res.Inst.IsBranch() {
		e.DynBranches++
		if res.Inst.IsIndirectBranch() {
			e.DynIndirect++
			if e.TakenTargets != nil {
				e.TakenTargets[res.Target]++
			}
		}
	}
	if res.Inst.IsMemAccess() {
		e.DynMemOps++
	}
	if res.Inst.IsFP() {
		e.DynFP++
	}
	return res, nil
}

// StepN executes up to n instructions or until halt, returning the
// number actually executed.
func (e *Emulator) StepN(n uint64) (uint64, error) {
	var done uint64
	for done < n && !e.Halted {
		if _, err := e.Step(); err != nil {
			return done, err
		}
		if e.Halted {
			break
		}
		done++
	}
	return done, nil
}

// Run executes until halt or the instruction budget is exhausted.
func (e *Emulator) Run(budget uint64) error {
	for !e.Halted {
		if e.DynInsts >= budget {
			return fmt.Errorf("emu: budget of %d instructions exhausted at eip=%#x", budget, e.State.EIP)
		}
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}
