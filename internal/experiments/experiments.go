// Package experiments regenerates every figure of the paper's
// evaluation (Figures 5–11) from the simulation infrastructure: each
// FigN function produces the table of series the corresponding figure
// plots. Table I is the timing configuration itself
// (timing.DefaultConfig) and is printed by cmd/darco -print-config.
//
// All simulation goes through a darco.Session: each figure first warms
// the session by submitting every (benchmark, mode) pair it needs as
// one concurrent batch (parallel across Options.Jobs workers), then
// assembles its table sequentially in catalog order from the memoized
// results. The engine is deterministic and runs are independent, so
// the regenerated tables are identical for any worker count.
//
// The sweeping figures (Fig5, FigCC, FigPhase, FigSample) are thin
// specs over the internal/sweep characterization-grid engine: each
// declares its workloads × axes as a sweep.Grid, executes it through
// the shared session, and assembles its bespoke table from the grid's
// long-form result set. Every job — accessor or grid cell — is built
// by the one cell→Job mapper (sweep.JobFor), so identical runs share
// one memo key across figures, preloads, and persistent stores.
package experiments

import (
	"context"
	"fmt"
	"io"
	"slices"
	"sort"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// Options configures a figure-regeneration session.
type Options struct {
	// Scale multiplies the dynamic size of every workload (1.0 =
	// DESIGN.md default budgets). Every selected program must be
	// scalable when Scale != 1 (trace replays are fixed images).
	Scale float64
	// Benchmarks restricts the set (nil = full 48-benchmark catalog).
	// Entries are workload references resolved through the Source
	// registry ("<source>:<name>"); bare names select the synthetic
	// catalog, so plain benchmark names keep working.
	Benchmarks []string
	// Config is the base DARCO configuration.
	Config darco.Config
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// Jobs is the session worker-pool size (0 = GOMAXPROCS). The
	// regenerated tables are identical for any value.
	Jobs int
	// Context cancels in-flight simulations (nil = Background).
	Context context.Context
	// Preload seeds the session with previously computed full results
	// (e.g. loaded from cmd/darco-suite -json output); matching
	// (benchmark, mode) jobs are served without simulating.
	Preload []darco.Record
	// SessionOptions are appended to the runner's session construction
	// — the hook commands use to install a persistent result store
	// (darco.WithStore) or a remote executor (darco.WithRemote with a
	// serve.Client), so figure regeneration can reuse stored results or
	// run on a darco-serve instance.
	SessionOptions []darco.SessionOption
}

// DefaultOptions returns the standard full-catalog session.
func DefaultOptions() Options {
	return Options{Scale: 1.0, Config: darco.DefaultConfig()}
}

// Runner regenerates figures through a shared darco.Session, so runs
// needed by several figures (or both legs of the interaction pair)
// simulate exactly once.
type Runner struct {
	opts  Options
	progs []workload.Program
	refs  map[string]string // program name -> Source-registry reference
	sess  *darco.Session
}

// NewRunner builds a runner over the selected workload programs.
func NewRunner(opts Options) (*Runner, error) {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	var progs []workload.Program
	refs := map[string]string{}
	if opts.Benchmarks == nil {
		for _, s := range workload.Catalog() {
			progs = append(progs, workload.SpecProgram{Spec: s})
			refs[s.Name] = workload.DefaultSource + ":" + s.Name
		}
	} else {
		for _, ref := range opts.Benchmarks {
			p, err := workload.Open(ref)
			if err != nil {
				return nil, err
			}
			progs = append(progs, p)
			refs[p.Name()] = ref
		}
	}
	for i := range progs {
		p, err := workload.ScaleProgram(progs[i], opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		progs[i] = p
	}
	// Every per-benchmark accessor (and every figure row set) is keyed
	// by program name, so a selection where two programs share a name —
	// a catalog benchmark plus a trace recorded from it, say — would
	// silently show one program's results on both rows. Reject it.
	byName := map[string]bool{}
	for _, p := range progs {
		if byName[p.Name()] {
			return nil, fmt.Errorf("experiments: two selected workloads are named %q; figures key rows by name, so one of them must be renamed or dropped", p.Name())
		}
		byName[p.Name()] = true
	}
	sessOpts := []darco.SessionOption{darco.WithWorkers(opts.Jobs)}
	sessOpts = append(sessOpts, opts.SessionOptions...)
	if opts.Log != nil {
		log := opts.Log
		sessOpts = append(sessOpts, darco.WithEvents(func(ev darco.Event) {
			if ev.Kind == darco.EventStarted {
				fmt.Fprintf(log, "run %-22s %s\n", ev.Job, ev.Mode)
			}
		}))
	}
	sess := darco.NewSession(sessOpts...)
	for _, rec := range opts.Preload {
		if rec.Result == nil {
			continue
		}
		if rec.Scale != 0 && rec.Scale != opts.Scale {
			return nil, fmt.Errorf("experiments: preload record %q was produced at -scale %g, session runs at -scale %g",
				rec.Benchmark, rec.Scale, opts.Scale)
		}
		m, err := timing.ParseMode(rec.Mode)
		if err != nil {
			return nil, fmt.Errorf("experiments: preload record %q: %w", rec.Benchmark, err)
		}
		sess.Preload(rec.Benchmark, m, rec.Result)
	}
	return &Runner{opts: opts, progs: progs, refs: refs, sess: sess}, nil
}

// Programs returns the workload set of this runner.
func (r *Runner) Programs() []workload.Program {
	return append([]workload.Program(nil), r.progs...)
}

func (r *Runner) ctx() context.Context {
	if r.opts.Context != nil {
		return r.opts.Context
	}
	return context.Background()
}

func (r *Runner) program(name string) (workload.Program, error) {
	for _, p := range r.progs {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("experiments: benchmark %q not in session", name)
}

// job builds the session job for one program × mode through the grid
// engine's cell→Job mapper, so the per-benchmark accessors and the
// grid figures resolve identical configurations (and therefore share
// one memo key per run). The originating workload reference is kept on
// the job, so a remote session (Options.SessionOptions with
// darco.WithRemote) can re-open the same program server-side.
func (r *Runner) job(p workload.Program, mode timing.Mode) (darco.Job, error) {
	return sweep.JobFor(p, r.refs[p.Name()], r.opts.Scale, r.opts.Config,
		&sweep.Knobs{Mode: mode.String()})
}

// run executes (or recalls) one benchmark under a mode.
func (r *Runner) run(name string, mode timing.Mode) (*darco.Result, error) {
	p, err := r.program(name)
	if err != nil {
		return nil, err
	}
	j, err := r.job(p, mode)
	if err != nil {
		return nil, err
	}
	return r.sess.Run(r.ctx(), j)
}

// warm submits every session benchmark under each mode as one
// concurrent batch and returns the first error in catalog order.
// Subsequent per-benchmark accessors are cache hits.
func (r *Runner) warm(modes ...timing.Mode) error {
	var jobs []darco.Job
	for _, p := range r.progs {
		for _, m := range modes {
			j, err := r.job(p, m)
			if err != nil {
				return err
			}
			jobs = append(jobs, j)
		}
	}
	for _, br := range r.sess.RunBatch(r.ctx(), jobs) {
		if br.Err != nil {
			return br.Err
		}
	}
	return nil
}

// workloadRefs returns the Source-registry references of the session
// programs, in catalog order — the workload list of a figure grid.
func (r *Runner) workloadRefs() []string {
	refs := make([]string, len(r.progs))
	for i, p := range r.progs {
		refs[i] = r.refs[p.Name()]
	}
	return refs
}

// runGrid executes a figure's grid spec on the runner's shared session
// under the runner's base configuration, so grid cells and the
// per-benchmark accessors memoize into one another.
func (r *Runner) runGrid(g *sweep.Grid) (*sweep.ResultSet, error) {
	base := r.opts.Config
	return sweep.RunOn(r.ctx(), r.sess, g, sweep.Options{Config: &base})
}

// Shared returns (running if needed) the shared-mode result.
func (r *Runner) Shared(name string) (*darco.Result, error) {
	return r.run(name, timing.ModeShared)
}

// TOLOnly returns (running if needed) the TOL-in-isolation result used
// by Figure 8.
func (r *Runner) TOLOnly(name string) (*darco.Result, error) {
	return r.run(name, timing.ModeTOLOnly)
}

// Interaction returns (running if needed) the shared-vs-split pair used
// by Figures 10 and 11. Both legs go through the session cache, so the
// shared leg is reused by the Figure 5–7/9 accessors and vice versa.
func (r *Runner) Interaction(name string) (*darco.InteractionResult, error) {
	p, err := r.program(name)
	if err != nil {
		return nil, err
	}
	j, err := r.job(p, timing.ModeShared)
	if err != nil {
		return nil, err
	}
	return r.sess.RunInteraction(r.ctx(), j)
}

// suiteOrder lists the paper's suites in order; programs whose Meta
// carries another (or no) suite — traces, phased composites, file
// specs outside the four suites — appear as rows but join no suite
// average.
func suiteOrder() []string {
	var out []string
	for _, s := range workload.Suites() {
		out = append(out, s.String())
	}
	return out
}

// forEach runs fn over the session programs in catalog order.
func (r *Runner) forEach(fn func(p workload.Program) error) error {
	for _, p := range r.progs {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// Fig5 regenerates Figure 5: the static (a) and dynamic (b)
// distribution of guest code across IM, BBM and SBM. The underlying
// sweep is the degenerate grid — every workload once, shared mode, no
// axes; the bespoke IM/BBM/SBM percentage table is assembled from the
// grid's result set.
func (r *Runner) Fig5() (*stats.Table, *stats.Table, error) {
	rs, err := r.runGrid(&sweep.Grid{
		Name:      "fig5",
		Workloads: r.workloadRefs(),
		Scale:     r.opts.Scale,
		Base:      &sweep.Knobs{Mode: timing.ModeShared.String()},
	})
	if err != nil {
		return nil, nil, err
	}
	ta := stats.NewTable("Figure 5a: static guest code distribution (%)",
		"benchmark", "suite", "IM", "BBM", "SBM")
	tb := stats.NewTable("Figure 5b: dynamic guest code distribution (%)",
		"benchmark", "suite", "IM", "BBM", "SBM")
	type acc struct {
		aIM, aBBM, aSBM, bIM, bBBM, bSBM float64
		n                                int
	}
	suiteAcc := map[string]*acc{}
	err = r.forEach(func(p workload.Program) error {
		row := rs.Lookup(p.Name())
		if row == nil || row.Result == nil {
			return fmt.Errorf("experiments: no grid result for %s", p.Name())
		}
		res := row.Result
		suite := p.Meta().Suite
		im, bbm, sbm := res.TOL.StaticCounts()
		st := float64(im + bbm + sbm)
		dyn := float64(res.TOL.DynTotal())
		aIM, aBBM, aSBM := pct(im, st), pct(bbm, st), pct(sbm, st)
		bIM := 100 * float64(res.TOL.DynIM) / dyn
		bBBM := 100 * float64(res.TOL.DynBBM) / dyn
		bSBM := 100 * float64(res.TOL.DynSBM) / dyn
		ta.AddRowf(1, p.Name(), suite, aIM, aBBM, aSBM)
		tb.AddRowf(1, p.Name(), suite, bIM, bBBM, bSBM)
		a := suiteAcc[suite]
		if a == nil {
			a = &acc{}
			suiteAcc[suite] = a
		}
		a.aIM += aIM
		a.aBBM += aBBM
		a.aSBM += aSBM
		a.bIM += bIM
		a.bBBM += bBBM
		a.bSBM += bSBM
		a.n++
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, su := range suiteOrder() {
		if a := suiteAcc[su]; a != nil && a.n > 0 {
			n := float64(a.n)
			ta.AddRowf(1, "AVG "+su, su, a.aIM/n, a.aBBM/n, a.aSBM/n)
			tb.AddRowf(1, "AVG "+su, su, a.bIM/n, a.bBBM/n, a.bSBM/n)
		}
	}
	return ta, tb, nil
}

func pct(x int, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(x) / total
}

// Fig6 regenerates Figure 6: execution-time breakdown into TOL
// overhead and application, with the dynamic/static instruction ratio
// and the number of SBM invocations (the log-scale series).
func (r *Runner) Fig6() (*stats.Table, error) {
	if err := r.warm(timing.ModeShared); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 6: execution time breakdown (% of cycles) + log-scale series",
		"benchmark", "suite", "overhead", "application", "dyn/static", "SBM-invocations")
	type acc struct {
		ov float64
		n  int
	}
	suiteAcc := map[string]*acc{}
	err := r.forEach(func(p workload.Program) error {
		res, err := r.Shared(p.Name())
		if err != nil {
			return err
		}
		suite := p.Meta().Suite
		ov := res.Timing.TOLShare() * 100
		t.AddRowf(1, p.Name(), suite, ov, 100-ov,
			fmt.Sprintf("%.0f", res.DynamicStaticRatio()),
			fmt.Sprint(res.TOL.SBCreated))
		a := suiteAcc[suite]
		if a == nil {
			a = &acc{}
			suiteAcc[suite] = a
		}
		a.ov += ov
		a.n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, su := range suiteOrder() {
		if a := suiteAcc[su]; a != nil && a.n > 0 {
			t.AddRowf(1, "AVG "+su, su, a.ov/float64(a.n),
				100-a.ov/float64(a.n), "", "")
		}
	}
	return t, nil
}

// Fig7 regenerates Figure 7: the TOL execution time split into its
// components (as % of total execution time), plus the dynamic guest
// indirect-branch count (the log-scale series).
func (r *Runner) Fig7() (*stats.Table, error) {
	if err := r.warm(timing.ModeShared); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 7: TOL time by component (% of cycles) + indirect branches",
		"benchmark", "suite", "tol-other", "IM", "BBM", "SBM", "chaining", "code$-lookup", "indirect-branches")
	err := r.forEach(func(p workload.Program) error {
		res, err := r.Shared(p.Name())
		if err != nil {
			return err
		}
		cyc := float64(res.Timing.Cycles)
		comp := func(c timing.Component) float64 {
			return 100 * res.Timing.ComponentCycles(c) / cyc
		}
		t.AddRowf(2, p.Name(), p.Meta().Suite,
			comp(timing.CompTOLOther), comp(timing.CompIM), comp(timing.CompBBM),
			comp(timing.CompSBM), comp(timing.CompChaining), comp(timing.CompCodeCacheLookup),
			fmt.Sprint(res.TOL.IndirectDyn))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig7b regenerates the pass-level refinement of Figure 7 enabled by
// the pluggable pipeline: the SBM component time split per
// optimization pass, plus the non-pass remainder (trace construction,
// emission, bookkeeping) as "sbm-other", all as % of total cycles.
// Each pass's share is its fraction of the modeled SBM instruction
// stream applied to the SBM component cycles, so the columns sum to
// the aggregate SBM time of Figure 7. The final column is the total
// number of guest instructions the passes eliminated.
func (r *Runner) Fig7b() (*stats.Table, error) {
	if err := r.warm(timing.ModeShared); err != nil {
		return nil, err
	}
	// Derive the pass columns from the results themselves (union across
	// benchmarks, first-appearance order), so preloaded records from a
	// differently configured run (-from with other -O/-passes flags)
	// keep every pass share they actually carry. Fall back to the
	// session pipeline when no run created superblocks.
	var names []string
	seen := map[string]bool{}
	err := r.forEach(func(p workload.Program) error {
		res, err := r.Shared(p.Name())
		if err != nil {
			return err
		}
		for _, ps := range res.TOL.SBPasses {
			if !seen[ps.Pass] {
				seen[ps.Pass] = true
				names = append(names, ps.Pass)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if names == nil {
		if names, err = r.opts.Config.TOL.PipelineNames(); err != nil {
			return nil, err
		}
	}
	cols := []string{"benchmark", "suite"}
	for _, n := range names {
		cols = append(cols, n)
	}
	cols = append(cols, "sbm-other", "eliminated")
	t := stats.NewTable("Figure 7b: SBM time by optimization pass (% of cycles)", cols...)
	err = r.forEach(func(p workload.Program) error {
		res, err := r.Shared(p.Name())
		if err != nil {
			return err
		}
		cyc := float64(res.Timing.Cycles)
		sbmCyc := res.Timing.ComponentCycles(timing.CompSBM)
		total := float64(res.TOL.SBMInstTotal())
		share := func(insts uint64) float64 {
			if total == 0 || cyc == 0 {
				return 0
			}
			return 100 * sbmCyc * (float64(insts) / total) / cyc
		}
		row := []any{p.Name(), p.Meta().Suite}
		var eliminated uint64
		for _, n := range names {
			var insts uint64
			for _, ps := range res.TOL.SBPasses {
				if ps.Pass == n {
					insts, eliminated = ps.CostInsts, eliminated+ps.Eliminated
					break
				}
			}
			row = append(row, share(insts))
		}
		row = append(row, share(res.TOL.SBOtherInsts), fmt.Sprint(eliminated))
		t.AddRowf(3, row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// DefaultCCCapacities is the capacity sweep of FigCC, in instruction
// slots. 0 is the unbounded baseline; the bounded points shrink
// geometrically into the range where the catalog benchmarks' code
// footprints (roughly 600–6500 instruction slots at scale 1) no
// longer fit, so every policy is exercised under real pressure.
var DefaultCCCapacities = []int{0, 4096, 2048, 1024, 512, 256}

// ccGrid builds the cache-pressure sweep as a grid spec: a policy
// axis (the unbounded baseline plus every registered eviction policy)
// crossed with a cc-size axis ("inf" plus the bounded capacities in
// descending order), with the meaningless combinations — unbounded ×
// bounded size, real policy × inf — skipped, and the baseline cell
// declared for derived metrics. Bounded cells opt out of preloading
// automatically: their configuration deviates from the runner base.
func (r *Runner) ccGrid(caps []int, policies []string) *sweep.Grid {
	zero := 0
	polVals := []sweep.Value{{Name: "unbounded"}}
	for _, pol := range policies {
		polVals = append(polVals, sweep.Value{Name: pol, Knobs: sweep.Knobs{CCPolicy: pol}})
	}
	sizeVals := []sweep.Value{{Name: "inf", Knobs: sweep.Knobs{CCSize: &zero}}}
	var capNames []string
	for i := range caps {
		c := caps[i]
		sizeVals = append(sizeVals, sweep.Value{Name: fmt.Sprint(c), Knobs: sweep.Knobs{CCSize: &c}})
		capNames = append(capNames, fmt.Sprint(c))
	}
	g := &sweep.Grid{
		Name:      "fig-cc",
		Workloads: r.workloadRefs(),
		Scale:     r.opts.Scale,
		Base:      &sweep.Knobs{Mode: timing.ModeShared.String()},
		Axes: []sweep.Axis{
			{Name: "policy", Values: polVals},
			{Name: "cc-size", Values: sizeVals},
		},
		Baseline: map[string]string{"policy": "unbounded", "cc-size": "inf"},
	}
	if len(capNames) > 0 {
		g.Skip = append(g.Skip, sweep.Constraint{"policy": {"unbounded"}, "cc-size": capNames})
	}
	if len(policies) > 0 {
		g.Skip = append(g.Skip, sweep.Constraint{"policy": policies, "cc-size": {"inf"}})
	}
	return g
}

// FigCC runs the cache-pressure characterization enabled by the
// bounded code cache: every benchmark is swept over the given
// capacities (nil = DefaultCCCapacities) under every registered
// eviction policy, and the table reports cycles, the slowdown against
// the unbounded baseline, and the eviction/retranslation activity at
// each point. Rows are grouped per benchmark — the baseline first,
// then each policy with capacities in descending (monotone) order —
// so the capacity axis of the figure reads directly down the table.
func (r *Runner) FigCC(capacities []int) (*stats.Table, error) {
	if capacities == nil {
		capacities = DefaultCCCapacities
	}
	// The unbounded baseline (capacity 0) always runs — the slowdown
	// column needs its reference point; bounded capacities are swept in
	// descending order, deduplicated (they name axis values).
	var caps []int
	for _, c := range capacities {
		if c > 0 {
			caps = append(caps, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(caps)))
	caps = slices.Compact(caps)
	policies := tol.RegisteredEvictionPolicies()

	rs, err := r.runGrid(r.ccGrid(caps, policies))
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure CC: code cache pressure sweep (cycles and retranslation rate vs. capacity)",
		"benchmark", "policy", "cc-size", "cycles", "slowdown",
		"evictions", "flushes", "retrans", "retrans/Kdyn", "cc-peak", "tol%")
	for _, p := range r.progs {
		base := rs.Lookup(p.Name(), "unbounded", "inf").Result
		addRow := func(policy, size string, res *darco.Result) {
			slow := 1.0
			if base.Timing.Cycles > 0 {
				slow = float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
			}
			dyn := float64(res.TOL.DynTotal())
			rate := 0.0
			if dyn > 0 {
				rate = 1000 * float64(res.TOL.Retranslations) / dyn
			}
			// Unbounded runs report no occupancy peak (the stat is a
			// pressure counter); their final occupancy is the peak.
			peak := res.TOL.CacheOccupancyPeak
			if peak == 0 {
				peak = res.CodeCacheInsts
			}
			t.AddRow(p.Name(), policy, size,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprintf("%.3f", slow),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.FlushCount),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprint(peak),
				fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()))
		}
		addRow("unbounded", "inf", base)
		for _, pol := range policies {
			for _, c := range caps {
				addRow(pol, fmt.Sprint(c), rs.Lookup(p.Name(), pol, fmt.Sprint(c)).Result)
			}
		}
	}
	return t, nil
}

// Fig8 regenerates Figure 8: TOL performance characteristics in
// isolation — IPC, data/instruction cache miss rates, and branch
// misprediction rate.
func (r *Runner) Fig8() (*stats.Table, error) {
	if err := r.warm(timing.ModeTOLOnly); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 8: TOL performance characteristics (TOL executed in isolation)",
		"benchmark", "suite", "IPC", "D$-miss%", "I$-miss%", "BP-miss%")
	err := r.forEach(func(p workload.Program) error {
		res, err := r.TOLOnly(p.Name())
		if err != nil {
			return err
		}
		tr := res.Timing
		t.AddRowf(2, p.Name(), p.Meta().Suite, tr.IPC(),
			100*tr.L1D.OwnerMissRate(timing.OwnerTOL),
			100*tr.L1I.OwnerMissRate(timing.OwnerTOL),
			100*tr.Branch.OwnerMispredictRate(timing.OwnerTOL))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// fig9Rows returns the row set of Figures 9–11: the four outliers plus
// per-suite averages, restricted to benchmarks in the session.
func (r *Runner) fig9Rows() []string {
	var rows []string
	have := map[string]bool{}
	for _, p := range r.progs {
		have[p.Name()] = true
	}
	for _, o := range workload.Outliers() {
		if have[o] {
			rows = append(rows, o)
		}
	}
	return rows
}

// Fig9 regenerates Figure 9: cycles split into instruction cycles and
// the four bubble sources, each divided between TOL and the
// application, for the outliers and suite averages.
func (r *Runner) Fig9() (*stats.Table, error) {
	if err := r.warm(timing.ModeShared); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 9: cycle breakdown (% of cycles), TOL vs application",
		"case", "app-insts", "tol-insts", "app-sched", "tol-sched",
		"app-branch", "tol-branch", "app-i$", "tol-i$", "app-d$", "tol-d$")
	addRow := func(label string, rs []*darco.Result) {
		var v [10]float64
		for _, res := range rs {
			cyc := float64(res.Timing.Cycles)
			tr := res.Timing
			v[0] += 100 * tr.InstCycles[timing.OwnerApp] / cyc
			v[1] += 100 * tr.InstCycles[timing.OwnerTOL] / cyc
			v[2] += 100 * tr.Bubbles[timing.OwnerApp][timing.BubbleSched] / cyc
			v[3] += 100 * tr.Bubbles[timing.OwnerTOL][timing.BubbleSched] / cyc
			v[4] += 100 * tr.Bubbles[timing.OwnerApp][timing.BubbleBranch] / cyc
			v[5] += 100 * tr.Bubbles[timing.OwnerTOL][timing.BubbleBranch] / cyc
			v[6] += 100 * tr.Bubbles[timing.OwnerApp][timing.BubbleIMiss] / cyc
			v[7] += 100 * tr.Bubbles[timing.OwnerTOL][timing.BubbleIMiss] / cyc
			v[8] += 100 * tr.Bubbles[timing.OwnerApp][timing.BubbleDMiss] / cyc
			v[9] += 100 * tr.Bubbles[timing.OwnerTOL][timing.BubbleDMiss] / cyc
		}
		n := float64(len(rs))
		t.AddRowf(1, label, v[0]/n, v[1]/n, v[2]/n, v[3]/n, v[4]/n,
			v[5]/n, v[6]/n, v[7]/n, v[8]/n, v[9]/n)
	}
	for _, name := range r.fig9Rows() {
		res, err := r.Shared(name)
		if err != nil {
			return nil, err
		}
		addRow(name, []*darco.Result{res})
	}
	for _, su := range suiteOrder() {
		var rs []*darco.Result
		for _, p := range r.progs {
			if p.Meta().Suite != su {
				continue
			}
			res, err := r.Shared(p.Name())
			if err != nil {
				return nil, err
			}
			rs = append(rs, res)
		}
		if len(rs) > 0 {
			addRow("AVG "+su, rs)
		}
	}
	return t, nil
}

// Fig10 regenerates Figure 10: relative per-entity execution time with
// resource interaction versus without.
func (r *Runner) Fig10() (*stats.Table, error) {
	if err := r.warm(timing.ModeShared, timing.ModeSplit); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 10: slowdown from TOL/application interaction (w/ vs w/o shared resources)",
		"case", "application", "TOL")
	addRow := func(label string, irs []*darco.InteractionResult) {
		var app, tol float64
		for _, ir := range irs {
			app += ir.AppSlowdown()
			tol += ir.TOLSlowdown()
		}
		n := float64(len(irs))
		t.AddRowf(3, label, app/n, tol/n)
	}
	for _, name := range r.fig9Rows() {
		ir, err := r.Interaction(name)
		if err != nil {
			return nil, err
		}
		addRow(name, []*darco.InteractionResult{ir})
	}
	for _, su := range suiteOrder() {
		var irs []*darco.InteractionResult
		for _, p := range r.progs {
			if p.Meta().Suite != su {
				continue
			}
			ir, err := r.Interaction(p.Name())
			if err != nil {
				return nil, err
			}
			irs = append(irs, ir)
		}
		if len(irs) > 0 {
			addRow("AVG "+su, irs)
		}
	}
	return t, nil
}

// Fig11 regenerates Figure 11: the potential per-resource improvement
// for TOL (a) and the application (b) if the interaction were
// eliminated.
func (r *Runner) Fig11() (*stats.Table, *stats.Table, error) {
	if err := r.warm(timing.ModeShared, timing.ModeSplit); err != nil {
		return nil, nil, err
	}
	mk := func(title string) *stats.Table {
		return stats.NewTable(title, "case", "d$-miss", "i$-miss", "sched", "branch")
	}
	ta := mk("Figure 11a: potential improvement of TOL (% of cycles)")
	tb := mk("Figure 11b: potential improvement of the application (% of cycles)")
	addRow := func(t *stats.Table, label string, o timing.Owner, irs []*darco.InteractionResult) {
		var d, i, s, b float64
		for _, ir := range irs {
			d += 100 * ir.Potential(o, timing.BubbleDMiss)
			i += 100 * ir.Potential(o, timing.BubbleIMiss)
			s += 100 * ir.Potential(o, timing.BubbleSched)
			b += 100 * ir.Potential(o, timing.BubbleBranch)
		}
		n := float64(len(irs))
		t.AddRowf(2, label, d/n, i/n, s/n, b/n)
	}
	rowSets := make(map[string][]*darco.InteractionResult)
	var order []string
	for _, name := range r.fig9Rows() {
		ir, err := r.Interaction(name)
		if err != nil {
			return nil, nil, err
		}
		rowSets[name] = []*darco.InteractionResult{ir}
		order = append(order, name)
	}
	for _, su := range suiteOrder() {
		var irs []*darco.InteractionResult
		for _, p := range r.progs {
			if p.Meta().Suite != su {
				continue
			}
			ir, err := r.Interaction(p.Name())
			if err != nil {
				return nil, nil, err
			}
			irs = append(irs, ir)
		}
		if len(irs) > 0 {
			label := "AVG " + su
			rowSets[label] = irs
			order = append(order, label)
		}
	}
	for _, label := range order {
		addRow(ta, label, timing.OwnerTOL, rowSets[label])
		addRow(tb, label, timing.OwnerApp, rowSets[label])
	}
	return ta, tb, nil
}
