package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/darco"
)

// testRunner builds a small-session runner over three contrasting
// benchmarks at reduced scale, with cosim on (every run verified).
func testRunner(t *testing.T) *Runner {
	t.Helper()
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"462.libquantum", "400.perlbench", "107.novis_ragdoll"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFig5Shapes(t *testing.T) {
	r := testRunner(t)
	ta, tb, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// 3 benchmark rows + suite averages.
	if len(ta.Rows) < 3 || len(tb.Rows) < 3 {
		t.Fatalf("rows: %d/%d", len(ta.Rows), len(tb.Rows))
	}
	// libquantum: dynamic SBM share must dominate (first row, SBM col 4).
	if !strings.HasPrefix(tb.Rows[0][0], "462") {
		t.Fatalf("row order: %v", tb.Rows[0])
	}
	var sbm float64
	if _, err := fscan(tb.Rows[0][4], &sbm); err != nil {
		t.Fatal(err)
	}
	if sbm < 90 {
		t.Fatalf("libquantum dynamic SBM = %.1f%%, want > 90%%", sbm)
	}
}

func TestFig6OverheadOrdering(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	ov := map[string]float64{}
	for _, row := range tab.Rows {
		var v float64
		if _, err := fscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		ov[row[0]] = v
	}
	// The paper's central anti-correlation: the extreme-ratio benchmark
	// has far less overhead than the low-ratio one.
	if ov["462.libquantum"] >= ov["107.novis_ragdoll"] {
		t.Fatalf("overhead ordering broken: libquantum %.1f >= ragdoll %.1f",
			ov["462.libquantum"], ov["107.novis_ragdoll"])
	}
	if ov["462.libquantum"] > 15 {
		t.Fatalf("libquantum overhead = %.1f%%, want small", ov["462.libquantum"])
	}
}

func TestFig7ComponentsPresent(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// perlbench's indirect-branch count (last column) must dwarf
	// libquantum's.
	var perl, libq float64
	for _, row := range tab.Rows {
		var v float64
		if _, err := fscan(row[8], &v); err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasPrefix(row[0], "400"):
			perl = v
		case strings.HasPrefix(row[0], "462"):
			libq = v
		}
	}
	if perl < 100*libq && perl < 1000 {
		t.Fatalf("indirect counts: perlbench %v vs libquantum %v", perl, libq)
	}
}

// TestFig7bSumsToAggregate: the per-pass SBM split of Figure 7b must
// sum (pass columns + sbm-other) to the aggregate SBM component time
// of Figure 7, per benchmark — the defining property of the per-pass
// attribution.
func TestFig7bSumsToAggregate(t *testing.T) {
	r := testRunner(t)
	t7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	t7b, err := r.Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	if len(t7b.Rows) != len(t7.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(t7b.Rows), len(t7.Rows))
	}
	// Fig7b columns: benchmark, suite, <passes...>, sbm-other, eliminated.
	nPass := len(t7b.Headers) - 4
	if nPass < 1 {
		t.Fatalf("headers: %v", t7b.Headers)
	}
	for i, row := range t7b.Rows {
		var sum float64
		for c := 2; c < 2+nPass+1; c++ { // passes + sbm-other
			var v float64
			if _, err := fscan(row[c], &v); err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		var sbm float64
		if _, err := fscan(t7.Rows[i][5], &sbm); err != nil {
			t.Fatal(err)
		}
		if diff := sum - sbm; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: per-pass sum %.3f%% != aggregate SBM %.2f%%", row[0], sum, sbm)
		}
	}
}

func TestFig8IPCVariance(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1e9, 0.0
	for _, row := range tab.Rows {
		var v float64
		if _, err := fscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// The paper's headline: TOL IPC varies across applications.
	if hi-lo < 0.05 {
		t.Fatalf("TOL IPC range [%.2f, %.2f] implausibly flat", lo, hi)
	}
	if lo <= 0 || hi > 2 {
		t.Fatalf("TOL IPC out of range: [%.2f, %.2f]", lo, hi)
	}
}

func TestFig9SumsToTotal(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sum := 0.0
		for _, cell := range row[1:] {
			var v float64
			if _, err := fscan(cell, &v); err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum < 95 || sum > 101 {
			t.Fatalf("row %s sums to %.1f%%", row[0], sum)
		}
	}
}

func TestFig10And11Run(t *testing.T) {
	if testing.Short() {
		t.Skip("interaction runs are slow")
	}
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"400.perlbench", "470.lbm"}
	opts.Config = darco.DefaultConfig()
	opts.Config.TOL.Cosim = false
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) < 2 {
		t.Fatalf("fig10 rows = %d", len(t10.Rows))
	}
	ta, tb, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != len(tb.Rows) {
		t.Fatal("fig11 row mismatch")
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	opts := DefaultOptions()
	opts.Benchmarks = []string{"does-not-exist"}
	if _, err := NewRunner(opts); err == nil {
		t.Fatal("expected error")
	}
}

// fscan parses one float from a table cell.
func fscan(cell string, v *float64) (int, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		*v = 0
		return 0, nil
	}
	return fmt.Sscan(cell, v)
}
