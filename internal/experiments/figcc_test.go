package experiments

import (
	"strconv"
	"testing"

	"repro/internal/darco"
	"repro/internal/tol"
)

// TestFigCCSweepShape runs the cache-pressure sweep on one benchmark
// at two bounded capacities and checks the acceptance shape: one row
// per (policy, capacity) plus the unbounded baseline, capacities
// monotonically descending within each policy group, real eviction
// activity at the tight bound, and a baseline row identical to the
// unbounded run.
func TestFigCCSweepShape(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"006.jpg2000dec"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Derive a capacity that guarantees pressure from the benchmark's
	// own unbounded footprint.
	base, err := r.Shared("006.jpg2000dec")
	if err != nil {
		t.Fatal(err)
	}
	tight := base.CodeCacheInsts / 2
	if tight < tol.MinCacheCapacityInsts {
		tight = tol.MinCacheCapacityInsts
	}
	loose := base.CodeCacheInsts * 2

	tab, err := r.FigCC([]int{0, tight, loose})
	if err != nil {
		t.Fatal(err)
	}
	policies := tol.RegisteredEvictionPolicies()
	wantRows := 1 + len(policies)*2
	if len(tab.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), wantRows)
	}
	if tab.Rows[0][1] != "unbounded" || tab.Rows[0][2] != "inf" {
		t.Fatalf("baseline row = %v", tab.Rows[0])
	}
	row := 1
	for _, pol := range policies {
		prev := int(^uint(0) >> 1)
		for i := 0; i < 2; i++ {
			cells := tab.Rows[row]
			row++
			if cells[1] != pol {
				t.Fatalf("row %v: policy %q, want %q", cells, cells[1], pol)
			}
			size, err := strconv.Atoi(cells[2])
			if err != nil {
				t.Fatal(err)
			}
			if size >= prev {
				t.Fatalf("capacity column not monotonically descending: %d after %d", size, prev)
			}
			prev = size
			evictions, err := strconv.Atoi(cells[5])
			if err != nil {
				t.Fatal(err)
			}
			switch size {
			case loose:
				if evictions != 0 {
					t.Fatalf("%s at %d insts: unexpected evictions %d", pol, size, evictions)
				}
				if cells[4] != "1.000" {
					t.Fatalf("%s unpressured slowdown = %s, want 1.000", pol, cells[4])
				}
			case tight:
				if evictions == 0 {
					t.Fatalf("%s at %d insts: expected evictions (footprint %d)", pol, size, base.CodeCacheInsts)
				}
			}
		}
	}
}
