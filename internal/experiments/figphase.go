package experiments

import (
	"fmt"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// FigPhase characterizes phase behaviour, the workload axis the
// phased: source opens: as a program moves through distinct phases,
// each with its own hot working set, a bounded code cache must evict
// the previous phase's translations and retranslate on any return —
// activity a single-phase benchmark can never trigger at steady state.
// The figure sweeps composites of 1..maxPhases members (cycled from
// the pool) under every registered eviction policy at one bounded
// capacity, against the unbounded baseline.

// DefaultPhasePool lists the catalog members FigPhase cycles through:
// benchmarks with deliberately diverse static footprints and
// repetition characters, so successive phases displace each other's
// hot code.
var DefaultPhasePool = []string{
	"401.bzip2",
	"462.libquantum",
	"429.mcf",
	"006.jpg2000dec",
	"000.cjpeg",
	"470.lbm",
}

// FigPhase defaults.
const (
	// DefaultPhaseCount is the largest composite of the sweep.
	DefaultPhaseCount = 4
	// DefaultPhaseCapacityInsts bounds the code cache during the
	// sweep: below a typical two-phase translated footprint at scale
	// 1, so phase changes evict.
	DefaultPhaseCapacityInsts = 2048
)

// phasePool returns the member-name cycle: the session's synthetic
// benchmarks when the runner was restricted with Options.Benchmarks,
// otherwise DefaultPhasePool.
func (r *Runner) phasePool() []string {
	if r.opts.Benchmarks == nil {
		return DefaultPhasePool
	}
	var pool []string
	for _, p := range r.progs {
		if p.Meta().Source == workload.DefaultSource {
			pool = append(pool, p.Name())
		}
	}
	if len(pool) == 0 {
		return DefaultPhasePool
	}
	return pool
}

// phaseJob builds the session job for one sweep point. Every point
// opts out of preloading: phased composites are not the runs suite
// records describe.
func (r *Runner) phaseJob(p workload.Program, capacity int, policy string) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = timing.ModeShared
	cfg.TOL.Cache = tol.CacheConfig{CapacityInsts: capacity, Policy: policy}
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	// FigPhase composites carry the canonical "a+b" member join as their
	// name, which is exactly the phased: reference that re-opens them, so
	// the sweep stays runnable on a remote session.
	j.Ref = "phased:" + p.Name()
	j.NoPreload = true
	return j
}

// FigPhase runs the phase-behaviour characterization: composites of
// 1..maxPhases members under the unbounded baseline and under every
// registered eviction policy at capacityInsts. Zero arguments select
// DefaultPhaseCount and DefaultPhaseCapacityInsts. Rows are grouped
// per phase count — baseline first, then the policies in registration
// order — so the phase axis reads directly down the table.
func (r *Runner) FigPhase(maxPhases, capacityInsts int) (*stats.Table, error) {
	if maxPhases <= 0 {
		maxPhases = DefaultPhaseCount
	}
	if capacityInsts <= 0 {
		capacityInsts = DefaultPhaseCapacityInsts
	}
	if capacityInsts < tol.MinCacheCapacityInsts {
		return nil, fmt.Errorf("experiments: phase capacity %d below minimum %d",
			capacityInsts, tol.MinCacheCapacityInsts)
	}
	pool := r.phasePool()

	// Build the 1..maxPhases composites, cycling the pool. Members are
	// scaled here; the runner's session programs are not reused because
	// a composite is one program, not a batch of its members.
	progs := make([]workload.Program, 0, maxPhases)
	for n := 1; n <= maxPhases; n++ {
		var members []workload.Spec
		for i := 0; i < n; i++ {
			spec, err := workload.ByName(pool[i%len(pool)])
			if err != nil {
				return nil, fmt.Errorf("experiments: phase member: %w", err)
			}
			members = append(members, spec.Scale(r.opts.Scale))
		}
		p, err := workload.Phased("", members...)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		progs = append(progs, p)
	}
	policies := tol.RegisteredEvictionPolicies()

	// Warm the whole sweep as one concurrent batch.
	type point struct {
		phases int
		policy string
	}
	var jobs []darco.Job
	var points []point
	for n, p := range progs {
		jobs = append(jobs, r.phaseJob(p, 0, ""))
		points = append(points, point{n + 1, ""})
		for _, pol := range policies {
			jobs = append(jobs, r.phaseJob(p, capacityInsts, pol))
			points = append(points, point{n + 1, pol})
		}
	}
	results := make(map[point]*darco.Result, len(jobs))
	for i, br := range r.sess.RunBatch(r.ctx(), jobs) {
		if br.Err != nil {
			return nil, br.Err
		}
		results[points[i]] = br.Result
	}

	t := stats.NewTable(
		fmt.Sprintf("Figure PHASE: eviction and retranslation vs. phase count (cc-size %d)", capacityInsts),
		"phases", "workload", "policy", "cycles", "slowdown",
		"evictions", "flushes", "retrans", "retrans/Kdyn", "cc-peak", "tol%")
	for n, p := range progs {
		base := results[point{n + 1, ""}]
		addRow := func(policy string, res *darco.Result) {
			slow := 1.0
			if base.Timing.Cycles > 0 {
				slow = float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
			}
			dyn := float64(res.TOL.DynTotal())
			rate := 0.0
			if dyn > 0 {
				rate = 1000 * float64(res.TOL.Retranslations) / dyn
			}
			peak := res.TOL.CacheOccupancyPeak
			if peak == 0 {
				peak = res.CodeCacheInsts
			}
			t.AddRow(fmt.Sprint(n+1), p.Name(), policy,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprintf("%.3f", slow),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.FlushCount),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprint(peak),
				fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()))
		}
		addRow("unbounded", base)
		for _, pol := range policies {
			addRow(pol, results[point{n + 1, pol}])
		}
	}
	return t, nil
}
