package experiments

import (
	"fmt"
	"strings"

	"repro/internal/darco"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// FigPhase characterizes phase behaviour, the workload axis the
// phased: source opens: as a program moves through distinct phases,
// each with its own hot working set, a bounded code cache must evict
// the previous phase's translations and retranslate on any return —
// activity a single-phase benchmark can never trigger at steady state.
// The figure sweeps composites of 1..maxPhases members (cycled from
// the pool) under every registered eviction policy at one bounded
// capacity, against the unbounded baseline.

// DefaultPhasePool lists the catalog members FigPhase cycles through:
// benchmarks with deliberately diverse static footprints and
// repetition characters, so successive phases displace each other's
// hot code.
var DefaultPhasePool = []string{
	"401.bzip2",
	"462.libquantum",
	"429.mcf",
	"006.jpg2000dec",
	"000.cjpeg",
	"470.lbm",
}

// FigPhase defaults.
const (
	// DefaultPhaseCount is the largest composite of the sweep.
	DefaultPhaseCount = 4
	// DefaultPhaseCapacityInsts bounds the code cache during the
	// sweep: below a typical two-phase translated footprint at scale
	// 1, so phase changes evict.
	DefaultPhaseCapacityInsts = 2048
)

// phasePool returns the member-name cycle: the session's synthetic
// benchmarks when the runner was restricted with Options.Benchmarks,
// otherwise DefaultPhasePool.
func (r *Runner) phasePool() []string {
	if r.opts.Benchmarks == nil {
		return DefaultPhasePool
	}
	var pool []string
	for _, p := range r.progs {
		if p.Meta().Source == workload.DefaultSource {
			pool = append(pool, p.Name())
		}
	}
	if len(pool) == 0 {
		return DefaultPhasePool
	}
	return pool
}

// phaseGrid builds the phase sweep as a grid spec: the 1..maxPhases
// composites as phased: workload references (the canonical "a+b"
// member join is exactly the reference that re-opens each composite,
// locally or on a remote session) against a single policy axis — the
// unbounded baseline plus every registered eviction policy at the
// bounded capacity. Phased programs opt out of preloading by
// construction (suite records never describe composites).
func phaseGrid(workloads []string, policies []string, capacityInsts int, scale float64) *sweep.Grid {
	zero := 0
	vals := []sweep.Value{{Name: "unbounded", Knobs: sweep.Knobs{CCSize: &zero}}}
	for _, pol := range policies {
		vals = append(vals, sweep.Value{Name: pol,
			Knobs: sweep.Knobs{CCSize: &capacityInsts, CCPolicy: pol}})
	}
	return &sweep.Grid{
		Name:      "fig-phase",
		Workloads: workloads,
		Scale:     scale,
		Base:      &sweep.Knobs{Mode: timing.ModeShared.String()},
		Axes:      []sweep.Axis{{Name: "policy", Values: vals}},
		Baseline:  map[string]string{"policy": "unbounded"},
	}
}

// FigPhase runs the phase-behaviour characterization: composites of
// 1..maxPhases members under the unbounded baseline and under every
// registered eviction policy at capacityInsts. Zero arguments select
// DefaultPhaseCount and DefaultPhaseCapacityInsts. Rows are grouped
// per phase count — baseline first, then the policies in registration
// order — so the phase axis reads directly down the table.
func (r *Runner) FigPhase(maxPhases, capacityInsts int) (*stats.Table, error) {
	if maxPhases <= 0 {
		maxPhases = DefaultPhaseCount
	}
	if capacityInsts <= 0 {
		capacityInsts = DefaultPhaseCapacityInsts
	}
	if capacityInsts < tol.MinCacheCapacityInsts {
		return nil, fmt.Errorf("experiments: phase capacity %d below minimum %d",
			capacityInsts, tol.MinCacheCapacityInsts)
	}
	pool := r.phasePool()

	// The 1..maxPhases composites, cycling the pool. The grid engine
	// re-opens each reference and scales the members; the runner's
	// session programs are not reused because a composite is one
	// program, not a batch of its members.
	workloads := make([]string, 0, maxPhases)
	for n := 1; n <= maxPhases; n++ {
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = pool[i%len(pool)]
		}
		workloads = append(workloads, "phased:"+strings.Join(names, "+"))
	}
	policies := tol.RegisteredEvictionPolicies()

	rs, err := r.runGrid(phaseGrid(workloads, policies, capacityInsts, r.opts.Scale))
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Figure PHASE: eviction and retranslation vs. phase count (cc-size %d)", capacityInsts),
		"phases", "workload", "policy", "cycles", "slowdown",
		"evictions", "flushes", "retrans", "retrans/Kdyn", "cc-peak", "tol%")
	for n, ref := range workloads {
		baseRow := rs.Lookup(ref, "unbounded")
		base := baseRow.Result
		addRow := func(policy string, res *darco.Result) {
			slow := 1.0
			if base.Timing.Cycles > 0 {
				slow = float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
			}
			dyn := float64(res.TOL.DynTotal())
			rate := 0.0
			if dyn > 0 {
				rate = 1000 * float64(res.TOL.Retranslations) / dyn
			}
			peak := res.TOL.CacheOccupancyPeak
			if peak == 0 {
				peak = res.CodeCacheInsts
			}
			t.AddRow(fmt.Sprint(n+1), baseRow.Name, policy,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprintf("%.3f", slow),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.FlushCount),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprint(peak),
				fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()))
		}
		addRow("unbounded", base)
		for _, pol := range policies {
			addRow(pol, rs.Lookup(ref, pol).Result)
		}
	}
	return t, nil
}
