package experiments

import (
	"strconv"
	"testing"

	"repro/internal/darco"
	"repro/internal/tol"
	"repro/internal/workload"
)

// TestFigPhaseSweepShape runs the phase-behaviour sweep over a small
// member pool and checks its acceptance shape: one row group per
// phase count (baseline first, then every registered policy), a
// baseline slowdown of exactly 1.000 per group, and real eviction
// pressure at the longest composite when the capacity sits below its
// multi-phase footprint.
func TestFigPhaseSweepShape(t *testing.T) {
	pool := []string{"401.bzip2", "462.libquantum", "429.mcf"}
	opts := DefaultOptions()
	opts.Scale = 0.25
	opts.Benchmarks = pool
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Derive a capacity below the full composite's unbounded footprint
	// so the last group is guaranteed to run under pressure.
	full, err := workload.Open("phased:" + pool[0] + "+" + pool[1] + "+" + pool[2])
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := workload.ScaleProgram(full, opts.Scale)
	if err != nil {
		t.Fatal(err)
	}
	probe := darco.NewSession()
	base, err := probe.Run(r.ctx(), darco.JobForProgram(scaled, opts.Scale))
	if err != nil {
		t.Fatal(err)
	}
	tight := base.CodeCacheInsts * 2 / 3
	if tight < tol.MinCacheCapacityInsts {
		tight = tol.MinCacheCapacityInsts
	}

	tab, err := r.FigPhase(len(pool), tight)
	if err != nil {
		t.Fatal(err)
	}
	policies := tol.RegisteredEvictionPolicies()
	group := 1 + len(policies)
	if want := len(pool) * group; len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	for n := 0; n < len(pool); n++ {
		baseRow := tab.Rows[n*group]
		if baseRow[0] != strconv.Itoa(n+1) || baseRow[2] != "unbounded" {
			t.Fatalf("group %d baseline row = %v", n+1, baseRow)
		}
		if baseRow[4] != "1.000" {
			t.Fatalf("baseline slowdown = %q", baseRow[4])
		}
		for i, pol := range policies {
			row := tab.Rows[n*group+1+i]
			if row[0] != strconv.Itoa(n+1) || row[2] != pol {
				t.Fatalf("group %d row %d = %v, want policy %s", n+1, i, row, pol)
			}
		}
	}
	// The longest composite must show eviction activity under at least
	// one policy at the tight bound.
	sawEvictions := false
	for i := (len(pool)-1)*group + 1; i < len(pool)*group; i++ {
		ev, err := strconv.Atoi(tab.Rows[i][5])
		if err != nil {
			t.Fatalf("evictions cell %q: %v", tab.Rows[i][5], err)
		}
		if ev > 0 {
			sawEvictions = true
		}
	}
	if !sawEvictions {
		t.Errorf("no evictions at capacity %d despite footprint %d", tight, base.CodeCacheInsts)
	}
}

// TestRunnerOpensReferences checks that Options.Benchmarks accepts
// full workload references, not only catalog names.
func TestRunnerOpensReferences(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.1
	opts.Benchmarks = []string{"synthetic:998.specrand", "phased:998.specrand+999.specrand"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	progs := r.Programs()
	if len(progs) != 2 {
		t.Fatalf("programs = %d", len(progs))
	}
	if progs[1].Meta().Source != "phased" || progs[1].Meta().Phases != 2 {
		t.Fatalf("second program meta = %+v", progs[1].Meta())
	}
	// A figure over the mixed set still renders: the phased program
	// joins no suite average but gets its own row.
	tab, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tab.Rows {
		if row[0] == "998.specrand+999.specrand" {
			found = true
		}
	}
	if !found {
		t.Error("phased program missing from Fig6 rows")
	}
}

// TestRunnerRejectsDuplicateNames: every runner lookup is keyed by
// program name, so a selection with two same-named programs must fail
// fast instead of silently showing one program's results twice.
func TestRunnerRejectsDuplicateNames(t *testing.T) {
	opts := DefaultOptions()
	opts.Benchmarks = []string{"401.bzip2", "synthetic:401.bzip2"}
	if _, err := NewRunner(opts); err == nil {
		t.Fatal("duplicate-named selection accepted")
	}
}
