package experiments

import (
	"fmt"
	"math"

	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/workload"
)

// FigSample characterizes the checkpoint/sampling subsystem: every
// benchmark runs once in full detail and once under SimPoint-style
// sampled simulation, and the table compares the whole-run cycle
// estimate against the full-detail reference (error and 95% confidence
// half-width) next to the wall-clock speedup the sampled run achieved.
// Both runs simulate fresh (no preloads, no cross-figure memoization),
// so the timed columns measure real work.

// DefaultSamplePlan is the sweep's sampling plan: small intervals so
// the scaled-down catalog benchmarks still span many of them, a 1-in-8
// selection for a large detailed-work reduction, and a warm-up window
// of one sixteenth of the interval.
var DefaultSamplePlan = sample.Config{Interval: 50_000, Every: 8, Warmup: 3_000}

// sampleGrid builds the comparison as a grid spec: every benchmark
// against a two-point "sim" axis — full detail versus the sampling
// plan. Preloading is disabled grid-wide — records carry no
// wall-clock, and the figure's point is the timing.
func sampleGrid(workloads []string, sc sample.Config, scale float64) *sweep.Grid {
	return &sweep.Grid{
		Name:      "fig-sample",
		Workloads: workloads,
		Scale:     scale,
		Base:      &sweep.Knobs{Mode: timing.ModeShared.String(), NoSample: true},
		Axes: []sweep.Axis{{Name: "sim", Values: []sweep.Value{
			{Name: "full"},
			{Name: "sampled", Knobs: sweep.Knobs{Sample: &sweep.SamplePlan{
				Every: sc.Every, Interval: sc.Interval, Warmup: &sc.Warmup}}},
		}}},
		Baseline:  map[string]string{"sim": "full"},
		NoPreload: true,
	}
}

// FigSample runs the sampled-vs-full comparison under the given plan
// (nil = DefaultSamplePlan). The grid executes sequentially (one cell
// at a time) so the wall-clock columns are not distorted by
// co-scheduling; the sampled leg still measures its selected intervals
// in parallel across the session's workers, exactly as a production
// sampled run would.
func (r *Runner) FigSample(plan *sample.Config) (*stats.Table, error) {
	sc := DefaultSamplePlan
	if plan != nil {
		sc = *plan
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// A dedicated session (sweep.Run builds one): results memoized by
	// other figures must not serve either leg, or the timings would
	// measure a map lookup.
	base := r.opts.Config
	rs, err := sweep.Run(r.ctx(), sampleGrid(r.workloadRefs(), sc, r.opts.Scale),
		sweep.Options{Config: &base, Jobs: r.opts.Jobs, Sequential: true})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Figure SAMPLE: sampled vs full simulation (interval %d, every %d, warmup %d)",
			sc.Interval, sc.Every, sc.Warmup),
		"benchmark", "suite", "full-cycles", "est-cycles", "err%", "ci95%",
		"measured", "full-s", "sampled-s", "speedup")
	var sumErr, worstErr, sumSpeed float64
	n := 0
	err = r.forEach(func(p workload.Program) error {
		fullRow := rs.Lookup(p.Name(), "full")
		sampledRow := rs.Lookup(p.Name(), "sampled")
		full, sampled := fullRow.Result, sampledRow.Result
		fullDur, sampDur := fullRow.Elapsed, sampledRow.Elapsed
		rep := sampled.Sampled
		if rep == nil {
			return fmt.Errorf("experiments: sampled run of %s carries no report", p.Name())
		}

		fullCyc := float64(full.Timing.Cycles)
		errPct := 0.0
		if fullCyc > 0 {
			errPct = 100 * math.Abs(float64(rep.EstCycles)-fullCyc) / fullCyc
		}
		ciPct := 0.0
		if m, ok := rep.Metric("cycles"); ok {
			ciPct = 100 * m.RelErr
		}
		speed := 0.0
		if sampDur > 0 {
			speed = float64(fullDur) / float64(sampDur)
		}
		t.AddRow(p.Name(), p.Meta().Suite,
			fmt.Sprint(full.Timing.Cycles),
			fmt.Sprint(rep.EstCycles),
			fmt.Sprintf("%.2f", errPct),
			fmt.Sprintf("%.2f", ciPct),
			fmt.Sprintf("%d/%d", len(rep.Measured), rep.Intervals),
			fmt.Sprintf("%.3f", fullDur.Seconds()),
			fmt.Sprintf("%.3f", sampDur.Seconds()),
			fmt.Sprintf("%.1f", speed))
		sumErr += errPct
		if errPct > worstErr {
			worstErr = errPct
		}
		sumSpeed += speed
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		t.AddRow("AVG", "", "", "",
			fmt.Sprintf("%.2f", sumErr/float64(n)), "", "", "", "",
			fmt.Sprintf("%.1f", sumSpeed/float64(n)))
		t.AddRow("MAX-ERR", "", "", "", fmt.Sprintf("%.2f", worstErr), "", "", "", "", "")
	}
	return t, nil
}
