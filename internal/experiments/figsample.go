package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/darco"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

// FigSample characterizes the checkpoint/sampling subsystem: every
// benchmark runs once in full detail and once under SimPoint-style
// sampled simulation, and the table compares the whole-run cycle
// estimate against the full-detail reference (error and 95% confidence
// half-width) next to the wall-clock speedup the sampled run achieved.
// Both runs simulate fresh (no preloads, no cross-figure memoization),
// so the timed columns measure real work.

// DefaultSamplePlan is the sweep's sampling plan: small intervals so
// the scaled-down catalog benchmarks still span many of them, a 1-in-8
// selection for a large detailed-work reduction, and a warm-up window
// of one sixteenth of the interval.
var DefaultSamplePlan = sample.Config{Interval: 50_000, Every: 8, Warmup: 3_000}

// sampleJob builds one FigSample leg: the shared-mode job, sampled
// when plan is non-nil. Preloading is disabled on both legs — records
// carry no wall-clock, and the figure's point is the timing.
func (r *Runner) sampleJob(p workload.Program, plan *sample.Config) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = timing.ModeShared
	cfg.Sampling = nil
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	if plan != nil {
		j.Opts = append(j.Opts, darco.WithSampling(*plan))
	}
	j.Ref = r.refs[p.Name()]
	j.NoPreload = true
	return j
}

// FigSample runs the sampled-vs-full comparison under the given plan
// (nil = DefaultSamplePlan). The runs execute one benchmark at a time
// so the wall-clock columns are not distorted by co-scheduling; the
// sampled leg still measures its selected intervals in parallel across
// the session's workers, exactly as a production sampled run would.
func (r *Runner) FigSample(plan *sample.Config) (*stats.Table, error) {
	sc := DefaultSamplePlan
	if plan != nil {
		sc = *plan
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// A dedicated session: results memoized by other figures must not
	// serve either leg, or the timings would measure a map lookup.
	sess := darco.NewSession(darco.WithWorkers(r.opts.Jobs))

	t := stats.NewTable(
		fmt.Sprintf("Figure SAMPLE: sampled vs full simulation (interval %d, every %d, warmup %d)",
			sc.Interval, sc.Every, sc.Warmup),
		"benchmark", "suite", "full-cycles", "est-cycles", "err%", "ci95%",
		"measured", "full-s", "sampled-s", "speedup")
	var sumErr, worstErr, sumSpeed float64
	n := 0
	err := r.forEach(func(p workload.Program) error {
		t0 := time.Now()
		full, err := sess.Run(r.ctx(), r.sampleJob(p, nil))
		if err != nil {
			return err
		}
		fullDur := time.Since(t0)
		t0 = time.Now()
		sampled, err := sess.Run(r.ctx(), r.sampleJob(p, &sc))
		if err != nil {
			return err
		}
		sampDur := time.Since(t0)
		rep := sampled.Sampled
		if rep == nil {
			return fmt.Errorf("experiments: sampled run of %s carries no report", p.Name())
		}

		fullCyc := float64(full.Timing.Cycles)
		errPct := 0.0
		if fullCyc > 0 {
			errPct = 100 * math.Abs(float64(rep.EstCycles)-fullCyc) / fullCyc
		}
		ciPct := 0.0
		if m, ok := rep.Metric("cycles"); ok {
			ciPct = 100 * m.RelErr
		}
		speed := 0.0
		if sampDur > 0 {
			speed = float64(fullDur) / float64(sampDur)
		}
		t.AddRow(p.Name(), p.Meta().Suite,
			fmt.Sprint(full.Timing.Cycles),
			fmt.Sprint(rep.EstCycles),
			fmt.Sprintf("%.2f", errPct),
			fmt.Sprintf("%.2f", ciPct),
			fmt.Sprintf("%d/%d", len(rep.Measured), rep.Intervals),
			fmt.Sprintf("%.3f", fullDur.Seconds()),
			fmt.Sprintf("%.3f", sampDur.Seconds()),
			fmt.Sprintf("%.1f", speed))
		sumErr += errPct
		if errPct > worstErr {
			worstErr = errPct
		}
		sumSpeed += speed
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		t.AddRow("AVG", "", "", "",
			fmt.Sprintf("%.2f", sumErr/float64(n)), "", "", "", "",
			fmt.Sprintf("%.1f", sumSpeed/float64(n)))
		t.AddRow("MAX-ERR", "", "", "", fmt.Sprintf("%.2f", worstErr), "", "", "", "", "")
	}
	return t, nil
}
