package experiments

import (
	"strings"
	"testing"

	"repro/internal/darco"
	"repro/internal/sample"
)

// TestFigSampleShape pins the sampled-vs-full comparison figure: one
// row per benchmark plus the AVG and MAX-ERR summary rows, a non-empty
// measured-interval count, and a cycle estimate within the coarse
// sanity band the sampled-run tests enforce.
func TestFigSampleShape(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"462.libquantum", "429.mcf"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := sample.Config{Interval: 10_000, Every: 3, Warmup: 1_000}
	tab, err := r.FigSample(&plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 benchmarks + AVG + MAX-ERR", len(tab.Rows))
	}
	for _, row := range tab.Rows[:2] {
		var errPct float64
		if _, err := fscan(row[4], &errPct); err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if errPct > 50 {
			t.Errorf("%s: cycle estimate off by %.1f%%, want within the 50%% sanity band", row[0], errPct)
		}
		if strings.HasPrefix(row[6], "0/") {
			t.Errorf("%s: no intervals measured (%s)", row[0], row[6])
		}
		var speed float64
		if _, err := fscan(row[9], &speed); err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if speed <= 0 {
			t.Errorf("%s: speedup %v not positive", row[0], speed)
		}
	}
	if tab.Rows[2][0] != "AVG" || tab.Rows[3][0] != "MAX-ERR" {
		t.Fatalf("summary rows = %q, %q", tab.Rows[2][0], tab.Rows[3][0])
	}
	// A degenerate plan is rejected before any simulation.
	bad := sample.Config{Interval: 100, Every: 2, Warmup: 100}
	if _, err := r.FigSample(&bad); err == nil {
		t.Fatal("degenerate plan accepted")
	}
}
