package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/darco"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// This file pins the grid refactor: the pre-refactor figure
// implementations (and their hand-rolled job builders) are kept here
// verbatim as oracles, and each grid-spec figure must regenerate a
// byte-identical table. The oracle job builders double as the memo-key
// compatibility reference — grid cells must produce the same
// darco.Job.Key as the hand-rolled jobs did, so persistent stores and
// cross-figure memoization written before the refactor keep working.

// oracleJob is the pre-refactor Runner.job.
func (r *Runner) oracleJob(p workload.Program, mode timing.Mode) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = mode
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	j.Ref = r.refs[p.Name()]
	return j
}

// oracleCCJob is the pre-refactor Runner.ccJob.
func (r *Runner) oracleCCJob(p workload.Program, capacity int, policy string) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = timing.ModeShared
	cfg.TOL.Cache = tol.CacheConfig{CapacityInsts: capacity, Policy: policy}
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	j.Ref = r.refs[p.Name()]
	j.NoPreload = j.NoPreload || capacity > 0
	return j
}

// oraclePhaseJob is the pre-refactor Runner.phaseJob.
func (r *Runner) oraclePhaseJob(p workload.Program, capacity int, policy string) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = timing.ModeShared
	cfg.TOL.Cache = tol.CacheConfig{CapacityInsts: capacity, Policy: policy}
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	j.Ref = "phased:" + p.Name()
	j.NoPreload = true
	return j
}

// oracleSampleJob is the pre-refactor Runner.sampleJob.
func (r *Runner) oracleSampleJob(p workload.Program, plan *sample.Config) darco.Job {
	cfg := r.opts.Config
	cfg.Mode = timing.ModeShared
	cfg.Sampling = nil
	j := darco.JobForProgram(p, r.opts.Scale, darco.WithConfig(cfg))
	if plan != nil {
		j.Opts = append(j.Opts, darco.WithSampling(*plan))
	}
	j.Ref = r.refs[p.Name()]
	j.NoPreload = true
	return j
}

func (r *Runner) oracleShared(p workload.Program) (*darco.Result, error) {
	return r.sess.Run(r.ctx(), r.oracleJob(p, timing.ModeShared))
}

// oracleFig5 is the pre-refactor Fig5.
func (r *Runner) oracleFig5() (*stats.Table, *stats.Table, error) {
	ta := stats.NewTable("Figure 5a: static guest code distribution (%)",
		"benchmark", "suite", "IM", "BBM", "SBM")
	tb := stats.NewTable("Figure 5b: dynamic guest code distribution (%)",
		"benchmark", "suite", "IM", "BBM", "SBM")
	type acc struct {
		aIM, aBBM, aSBM, bIM, bBBM, bSBM float64
		n                                int
	}
	suiteAcc := map[string]*acc{}
	err := r.forEach(func(p workload.Program) error {
		res, err := r.oracleShared(p)
		if err != nil {
			return err
		}
		suite := p.Meta().Suite
		im, bbm, sbm := res.TOL.StaticCounts()
		st := float64(im + bbm + sbm)
		dyn := float64(res.TOL.DynTotal())
		aIM, aBBM, aSBM := pct(im, st), pct(bbm, st), pct(sbm, st)
		bIM := 100 * float64(res.TOL.DynIM) / dyn
		bBBM := 100 * float64(res.TOL.DynBBM) / dyn
		bSBM := 100 * float64(res.TOL.DynSBM) / dyn
		ta.AddRowf(1, p.Name(), suite, aIM, aBBM, aSBM)
		tb.AddRowf(1, p.Name(), suite, bIM, bBBM, bSBM)
		a := suiteAcc[suite]
		if a == nil {
			a = &acc{}
			suiteAcc[suite] = a
		}
		a.aIM += aIM
		a.aBBM += aBBM
		a.aSBM += aSBM
		a.bIM += bIM
		a.bBBM += bBBM
		a.bSBM += bSBM
		a.n++
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, su := range suiteOrder() {
		if a := suiteAcc[su]; a != nil && a.n > 0 {
			n := float64(a.n)
			ta.AddRowf(1, "AVG "+su, su, a.aIM/n, a.aBBM/n, a.aSBM/n)
			tb.AddRowf(1, "AVG "+su, su, a.bIM/n, a.bBBM/n, a.bSBM/n)
		}
	}
	return ta, tb, nil
}

// oracleFigCC is the pre-refactor FigCC.
func (r *Runner) oracleFigCC(capacities []int) (*stats.Table, error) {
	if capacities == nil {
		capacities = DefaultCCCapacities
	}
	var caps []int
	for _, c := range capacities {
		if c > 0 {
			caps = append(caps, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(caps)))
	policies := tol.RegisteredEvictionPolicies()

	type point struct {
		bench    string
		policy   string
		capacity int
	}
	var jobs []darco.Job
	var points []point
	for _, p := range r.progs {
		jobs = append(jobs, r.oracleCCJob(p, 0, ""))
		points = append(points, point{p.Name(), "", 0})
		for _, pol := range policies {
			for _, c := range caps {
				jobs = append(jobs, r.oracleCCJob(p, c, pol))
				points = append(points, point{p.Name(), pol, c})
			}
		}
	}
	results := make(map[point]*darco.Result, len(jobs))
	for i, br := range r.sess.RunBatch(r.ctx(), jobs) {
		if br.Err != nil {
			return nil, br.Err
		}
		results[points[i]] = br.Result
	}

	t := stats.NewTable("Figure CC: code cache pressure sweep (cycles and retranslation rate vs. capacity)",
		"benchmark", "policy", "cc-size", "cycles", "slowdown",
		"evictions", "flushes", "retrans", "retrans/Kdyn", "cc-peak", "tol%")
	for _, p := range r.progs {
		base := results[point{p.Name(), "", 0}]
		addRow := func(policy, size string, res *darco.Result) {
			slow := 1.0
			if base.Timing.Cycles > 0 {
				slow = float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
			}
			dyn := float64(res.TOL.DynTotal())
			rate := 0.0
			if dyn > 0 {
				rate = 1000 * float64(res.TOL.Retranslations) / dyn
			}
			peak := res.TOL.CacheOccupancyPeak
			if peak == 0 {
				peak = res.CodeCacheInsts
			}
			t.AddRow(p.Name(), policy, size,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprintf("%.3f", slow),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.FlushCount),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprint(peak),
				fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()))
		}
		addRow("unbounded", "inf", base)
		for _, pol := range policies {
			for _, c := range caps {
				addRow(pol, fmt.Sprint(c), results[point{p.Name(), pol, c}])
			}
		}
	}
	return t, nil
}

// oracleFigPhase is the pre-refactor FigPhase.
func (r *Runner) oracleFigPhase(maxPhases, capacityInsts int) (*stats.Table, error) {
	if maxPhases <= 0 {
		maxPhases = DefaultPhaseCount
	}
	if capacityInsts <= 0 {
		capacityInsts = DefaultPhaseCapacityInsts
	}
	if capacityInsts < tol.MinCacheCapacityInsts {
		return nil, fmt.Errorf("experiments: phase capacity %d below minimum %d",
			capacityInsts, tol.MinCacheCapacityInsts)
	}
	pool := r.phasePool()

	progs := make([]workload.Program, 0, maxPhases)
	for n := 1; n <= maxPhases; n++ {
		var members []workload.Spec
		for i := 0; i < n; i++ {
			spec, err := workload.ByName(pool[i%len(pool)])
			if err != nil {
				return nil, fmt.Errorf("experiments: phase member: %w", err)
			}
			members = append(members, spec.Scale(r.opts.Scale))
		}
		p, err := workload.Phased("", members...)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		progs = append(progs, p)
	}
	policies := tol.RegisteredEvictionPolicies()

	type point struct {
		phases int
		policy string
	}
	var jobs []darco.Job
	var points []point
	for n, p := range progs {
		jobs = append(jobs, r.oraclePhaseJob(p, 0, ""))
		points = append(points, point{n + 1, ""})
		for _, pol := range policies {
			jobs = append(jobs, r.oraclePhaseJob(p, capacityInsts, pol))
			points = append(points, point{n + 1, pol})
		}
	}
	results := make(map[point]*darco.Result, len(jobs))
	for i, br := range r.sess.RunBatch(r.ctx(), jobs) {
		if br.Err != nil {
			return nil, br.Err
		}
		results[points[i]] = br.Result
	}

	t := stats.NewTable(
		fmt.Sprintf("Figure PHASE: eviction and retranslation vs. phase count (cc-size %d)", capacityInsts),
		"phases", "workload", "policy", "cycles", "slowdown",
		"evictions", "flushes", "retrans", "retrans/Kdyn", "cc-peak", "tol%")
	for n, p := range progs {
		base := results[point{n + 1, ""}]
		addRow := func(policy string, res *darco.Result) {
			slow := 1.0
			if base.Timing.Cycles > 0 {
				slow = float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
			}
			dyn := float64(res.TOL.DynTotal())
			rate := 0.0
			if dyn > 0 {
				rate = 1000 * float64(res.TOL.Retranslations) / dyn
			}
			peak := res.TOL.CacheOccupancyPeak
			if peak == 0 {
				peak = res.CodeCacheInsts
			}
			t.AddRow(fmt.Sprint(n+1), p.Name(), policy,
				fmt.Sprint(res.Timing.Cycles),
				fmt.Sprintf("%.3f", slow),
				fmt.Sprint(res.TOL.Evictions),
				fmt.Sprint(res.TOL.FlushCount),
				fmt.Sprint(res.TOL.Retranslations),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprint(peak),
				fmt.Sprintf("%.1f", 100*res.Timing.TOLShare()))
		}
		addRow("unbounded", base)
		for _, pol := range policies {
			addRow(pol, results[point{n + 1, pol}])
		}
	}
	return t, nil
}

// oracleFigSample is the pre-refactor FigSample.
func (r *Runner) oracleFigSample(plan *sample.Config) (*stats.Table, error) {
	sc := DefaultSamplePlan
	if plan != nil {
		sc = *plan
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sess := darco.NewSession(darco.WithWorkers(r.opts.Jobs))

	t := stats.NewTable(
		fmt.Sprintf("Figure SAMPLE: sampled vs full simulation (interval %d, every %d, warmup %d)",
			sc.Interval, sc.Every, sc.Warmup),
		"benchmark", "suite", "full-cycles", "est-cycles", "err%", "ci95%",
		"measured", "full-s", "sampled-s", "speedup")
	var sumErr, worstErr, sumSpeed float64
	n := 0
	err := r.forEach(func(p workload.Program) error {
		t0 := time.Now()
		full, err := sess.Run(r.ctx(), r.oracleSampleJob(p, nil))
		if err != nil {
			return err
		}
		fullDur := time.Since(t0)
		t0 = time.Now()
		sampled, err := sess.Run(r.ctx(), r.oracleSampleJob(p, &sc))
		if err != nil {
			return err
		}
		sampDur := time.Since(t0)
		rep := sampled.Sampled
		if rep == nil {
			return fmt.Errorf("experiments: sampled run of %s carries no report", p.Name())
		}

		fullCyc := float64(full.Timing.Cycles)
		errPct := 0.0
		if fullCyc > 0 {
			errPct = 100 * abs(float64(rep.EstCycles)-fullCyc) / fullCyc
		}
		ciPct := 0.0
		if m, ok := rep.Metric("cycles"); ok {
			ciPct = 100 * m.RelErr
		}
		speed := 0.0
		if sampDur > 0 {
			speed = float64(fullDur) / float64(sampDur)
		}
		t.AddRow(p.Name(), p.Meta().Suite,
			fmt.Sprint(full.Timing.Cycles),
			fmt.Sprint(rep.EstCycles),
			fmt.Sprintf("%.2f", errPct),
			fmt.Sprintf("%.2f", ciPct),
			fmt.Sprintf("%d/%d", len(rep.Measured), rep.Intervals),
			fmt.Sprintf("%.3f", fullDur.Seconds()),
			fmt.Sprintf("%.3f", sampDur.Seconds()),
			fmt.Sprintf("%.1f", speed))
		sumErr += errPct
		if errPct > worstErr {
			worstErr = errPct
		}
		sumSpeed += speed
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		t.AddRow("AVG", "", "", "",
			fmt.Sprintf("%.2f", sumErr/float64(n)), "", "", "", "",
			fmt.Sprintf("%.1f", sumSpeed/float64(n)))
		t.AddRow("MAX-ERR", "", "", "", fmt.Sprintf("%.2f", worstErr), "", "", "", "", "")
	}
	return t, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestFig5MatchesOracle(t *testing.T) {
	r := testRunner(t)
	ga, gb, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	oa, ob, err := r.oracleFig5()
	if err != nil {
		t.Fatal(err)
	}
	if ga.String() != oa.String() {
		t.Errorf("Fig5a diverged from pre-refactor output:\ngrid:\n%s\noracle:\n%s", ga, oa)
	}
	if gb.String() != ob.String() {
		t.Errorf("Fig5b diverged from pre-refactor output:\ngrid:\n%s\noracle:\n%s", gb, ob)
	}
}

func TestFigCCMatchesOracle(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"006.jpg2000dec"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{0, 1024, 512}
	got, err := r.FigCC(caps)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle resubmits the identical jobs; equal memo keys make its
	// runs session cache hits, which is itself part of the contract.
	want, err := r.oracleFigCC(caps)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("FigCC diverged from pre-refactor output:\ngrid:\n%s\noracle:\n%s", got, want)
	}
}

func TestFigPhaseMatchesOracle(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"401.bzip2", "462.libquantum"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.FigPhase(2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.oracleFigPhase(2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("FigPhase diverged from pre-refactor output:\ngrid:\n%s\noracle:\n%s", got, want)
	}
}

// TestFigSampleMatchesOracle compares every deterministic column; the
// wall-clock columns (full-s, sampled-s, speedup) are measured times
// and necessarily differ between the two executions.
func TestFigSampleMatchesOracle(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.2
	opts.Benchmarks = []string{"462.libquantum"}
	opts.Config = darco.DefaultConfig()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := sample.Config{Interval: 10_000, Every: 3, Warmup: 1_000}
	got, err := r.FigSample(&plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.oracleFigSample(&plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != want.Title || strings.Join(got.Headers, ",") != strings.Join(want.Headers, ",") {
		t.Fatalf("header diverged: %q %v vs %q %v", got.Title, got.Headers, want.Title, want.Headers)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	timed := map[int]bool{7: true, 8: true, 9: true}
	for i := range got.Rows {
		for c := range got.Rows[i] {
			if timed[c] {
				continue
			}
			if got.Rows[i][c] != want.Rows[i][c] {
				t.Errorf("row %d col %d (%s): grid %q, oracle %q",
					i, c, got.Headers[c], got.Rows[i][c], want.Rows[i][c])
			}
		}
	}
}

// TestGridJobKeysMatchOracle pins memo-key compatibility directly:
// every grid-built job must share its content address with the
// hand-rolled job the figures used before the refactor, so persistent
// stores filled earlier keep serving, and accessors and grid cells
// keep memoizing into one another.
func TestGridJobKeysMatchOracle(t *testing.T) {
	r := testRunner(t)
	p := r.progs[0]
	key := func(j darco.Job, err error) string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		k, err := j.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	ok := func(j darco.Job) (darco.Job, error) { return j, nil }

	for _, mode := range []timing.Mode{timing.ModeShared, timing.ModeTOLOnly, timing.ModeSplit} {
		got := key(r.job(p, mode))
		want := key(ok(r.oracleJob(p, mode)))
		if got != want {
			t.Errorf("mode %v: key %q, want %q", mode, got, want)
		}
	}

	zero := 0
	capacity := 512
	for _, pol := range tol.RegisteredEvictionPolicies() {
		got := key(sweep.JobFor(p, r.refs[p.Name()], r.opts.Scale, r.opts.Config,
			&sweep.Knobs{Mode: "shared"}, &sweep.Knobs{CCPolicy: pol}, &sweep.Knobs{CCSize: &capacity}))
		want := key(ok(r.oracleCCJob(p, capacity, pol)))
		if got != want {
			t.Errorf("cc %s: key %q, want %q", pol, got, want)
		}
	}
	got := key(sweep.JobFor(p, r.refs[p.Name()], r.opts.Scale, r.opts.Config,
		&sweep.Knobs{Mode: "shared"}, &sweep.Knobs{}, &sweep.Knobs{CCSize: &zero}))
	if want := key(ok(r.oracleCCJob(p, 0, ""))); got != want {
		t.Errorf("cc baseline: key %q, want %q", got, want)
	}

	// Phase composites: the grid opens "phased:a+b" and scales it; the
	// oracle scales the members and joins them by hand.
	ref := "phased:401.bzip2+462.libquantum"
	pp, err := workload.Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	if pp, err = workload.ScaleProgram(pp, r.opts.Scale); err != nil {
		t.Fatal(err)
	}
	var members []workload.Spec
	for _, name := range []string{"401.bzip2", "462.libquantum"} {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, spec.Scale(r.opts.Scale))
	}
	op, err := workload.Phased("", members...)
	if err != nil {
		t.Fatal(err)
	}
	got = key(sweep.JobFor(pp, ref, r.opts.Scale, r.opts.Config,
		&sweep.Knobs{Mode: "shared"}, &sweep.Knobs{CCSize: &capacity, CCPolicy: "flush-all"}))
	if want := key(ok(r.oraclePhaseJob(op, capacity, "flush-all"))); got != want {
		t.Errorf("phase: key %q, want %q", got, want)
	}

	// Sampled and full legs of FigSample.
	sc := sample.Config{Interval: 10_000, Every: 3, Warmup: 1_000}
	got = key(sweep.JobFor(p, r.refs[p.Name()], r.opts.Scale, r.opts.Config,
		&sweep.Knobs{Mode: "shared", NoSample: true},
		&sweep.Knobs{Sample: &sweep.SamplePlan{Every: sc.Every, Interval: sc.Interval, Warmup: &sc.Warmup}}))
	if want := key(ok(r.oracleSampleJob(p, &sc))); got != want {
		t.Errorf("sampled leg: key %q, want %q", got, want)
	}
	got = key(sweep.JobFor(p, r.refs[p.Name()], r.opts.Scale, r.opts.Config,
		&sweep.Knobs{Mode: "shared", NoSample: true}))
	if want := key(ok(r.oracleSampleJob(p, nil))); got != want {
		t.Errorf("full leg: key %q, want %q", got, want)
	}
}
