// Package fuzz is the differential-fuzzing harness of the simulation
// infrastructure: it generates random-but-valid guest programs (the
// workload fuzz: source), runs them through the co-design component
// under a matrix of configurations with co-simulation enabled, and
// cross-checks every run against the authoritative x86 emulator and
// against the other configurations. Any disagreement — a cosim
// divergence inside one run, or two configurations retiring different
// instruction counts or final states — is a translator bug by
// definition: the optimization pipeline, promotion policy, eviction
// policy and stream batching must never change architectural results.
//
// The pieces:
//
//   - Cell / SmokeMatrix / FullMatrix (this file): one configuration
//     point and the curated/full matrices the oracle sweeps.
//   - Oracle (oracle.go): runs one spec across the matrix through a
//     darco.Session, classifies failures, aggregates a coverage report,
//     and optionally cross-checks snapshot-mid-run/resume and
//     sampled-vs-full execution.
//   - Minimize (minimize.go): greedily shrinks a diverging spec via
//     workload.Spec.Shrink while the divergence reproduces, then files
//     the reproducer as a committed trace: regression artifact under
//     testdata/regressions/ (replayed by regress_test.go).
//
// The oracle is itself verified by mutation testing: tol.Config.Fault
// injects a named translator bug (tol.FaultDropInc,
// tol.FaultRLEStaleBase) and the tests assert the injected bug is
// caught and minimized to a tiny reproducer. tools/fuzzrun is the
// command-line driver; FuzzTranslatorCosim and FuzzSnapshotResume are
// native go-fuzz entry points over the same Spec encoding.
package fuzz

import (
	"errors"
	"fmt"

	"repro/internal/darco"
	"repro/internal/tol"
)

// Cell is one point of the configuration matrix: the knobs that must
// not change architectural behaviour.
type Cell struct {
	// OptLevel selects the O0–O3 pass-pipeline preset.
	OptLevel int `json:"opt_level"`
	// CacheInsts bounds the code cache (0 = unbounded) and CachePolicy
	// names the eviction policy consulted under pressure.
	CacheInsts  int    `json:"cache_insts,omitempty"`
	CachePolicy string `json:"cache_policy,omitempty"`
	// Promotion names the tier-promotion policy ("" = fixed).
	Promotion string `json:"promotion,omitempty"`
	// StreamBatch overrides the timing simulator's stream refill size
	// (0 = default).
	StreamBatch int `json:"stream_batch,omitempty"`
}

// Name renders the cell compactly for labels and reports, e.g.
// "O2/lru-translation@4096/adaptive/batch1".
func (c Cell) Name() string {
	s := fmt.Sprintf("O%d", c.OptLevel)
	if c.CacheInsts > 0 {
		policy := c.CachePolicy
		if policy == "" {
			policy = "flush-all"
		}
		s += fmt.Sprintf("/%s@%d", policy, c.CacheInsts)
	}
	if c.Promotion != "" {
		s += "/" + c.Promotion
	}
	if c.StreamBatch > 0 {
		s += fmt.Sprintf("/batch%d", c.StreamBatch)
	}
	return s
}

// Options renders the cell as run options. Co-simulation is always on
// — it is the per-instruction half of the oracle — and maxGuestInsts
// guards against generated programs that outrun their estimate.
func (c Cell) Options(maxGuestInsts uint64) []darco.Option {
	opts := []darco.Option{
		darco.WithOptLevel(c.OptLevel),
		darco.WithCosim(true),
		func(cfg *darco.Config) {
			cfg.TOL.MaxGuestInsts = maxGuestInsts
			cfg.Timing.StreamBatch = c.StreamBatch
		},
	}
	if c.CacheInsts > 0 {
		opts = append(opts, darco.WithCodeCache(c.CacheInsts, c.CachePolicy))
	}
	if c.Promotion != "" {
		opts = append(opts, darco.WithPromotion(c.Promotion))
	}
	return opts
}

// SmokeMatrix is the curated matrix for CI and the default fuzzrun
// sweep: every optimization level, every eviction policy plus the
// unbounded cache, both promotion policies, and both extreme stream
// batch sizes appear in at least one cell, at a fraction of the full
// cross product's cost.
func SmokeMatrix() []Cell {
	return []Cell{
		{OptLevel: 0},
		{OptLevel: 1, StreamBatch: 1},
		{OptLevel: 2},
		{OptLevel: 3, Promotion: "adaptive"},
		{OptLevel: 2, CacheInsts: 4096, CachePolicy: "flush-all"},
		{OptLevel: 2, CacheInsts: 4096, CachePolicy: "fifo-region"},
		{OptLevel: 3, CacheInsts: 4096, CachePolicy: "lru-translation"},
		{OptLevel: 1, CacheInsts: 8192, CachePolicy: "lru-translation", Promotion: "adaptive"},
	}
}

// FullMatrix is the full cross product — O0–O3 × {unbounded, flush-all,
// fifo-region, lru-translation} × {fixed, adaptive} × {batch 1, batch
// default} — for nightly-depth runs.
func FullMatrix() []Cell {
	var out []Cell
	for opt := 0; opt <= 3; opt++ {
		for _, cache := range []struct {
			insts  int
			policy string
		}{{0, ""}, {4096, "flush-all"}, {4096, "fifo-region"}, {4096, "lru-translation"}} {
			for _, promo := range []string{"", "adaptive"} {
				for _, batch := range []int{0, 1} {
					out = append(out, Cell{
						OptLevel:    opt,
						CacheInsts:  cache.insts,
						CachePolicy: cache.policy,
						Promotion:   promo,
						StreamBatch: batch,
					})
				}
			}
		}
	}
	return out
}

// Matrix resolves a matrix name ("smoke" or "full") — the -configs
// vocabulary of tools/fuzzrun and the CI jobs.
func Matrix(name string) ([]Cell, error) {
	switch name {
	case "", "smoke":
		return SmokeMatrix(), nil
	case "full":
		return FullMatrix(), nil
	}
	return nil, fmt.Errorf("fuzz: unknown config matrix %q (want smoke or full)", name)
}

// AsDivergence extracts the structured cosim divergence from a run
// error, if it carries one.
func AsDivergence(err error) (*tol.DivergenceError, bool) {
	var div *tol.DivergenceError
	if errors.As(err, &div) {
		return div, true
	}
	return nil, false
}
