package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/darco"
	"repro/internal/guest"
	"repro/internal/tol"
	"repro/internal/workload"
)

// demoSpec is a small deterministic spec with every region kind: 3
// cold + 2 warm blocks, 2 hot kernels crossing the BB threshold, and a
// 4-way dispatcher. Blocks() = 11, above the <= 8 minimization bar.
func demoSpec() workload.Spec {
	return workload.Spec{
		Name: "fuzz-demo", Seed: 7,
		HotKernels: 2, KernelLen: 8, KernelIter: 50, OuterIters: 2,
		ColdBlocks: 3, ColdLen: 6, WarmBlocks: 2, WarmLen: 6, WarmIters: 4,
		Fanout: 4, DispatchIters: 10,
		MemFrac: 0.2, Footprint: 1 << 10, Stride: 4,
	}
}

func withFault(name string) darco.Option {
	return func(c *darco.Config) { c.TOL.Fault = name }
}

// TestInjectedFaultCaughtAndMinimized is the oracle's mutation test —
// the acceptance demo: a deliberately injected translator bug (the BBM
// emitter silently drops inc instructions) must be caught by the
// differential oracle across the smoke matrix and minimized by the
// shrinking minimizer to a reproducer of at most 8 blocks.
func TestInjectedFaultCaughtAndMinimized(t *testing.T) {
	ctx := context.Background()
	o := New(SmokeMatrix())
	o.Extra = []darco.Option{withFault(tol.FaultDropInc)}

	spec := demoSpec()
	rep, err := o.Check(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Finding()
	if f == nil {
		t.Fatalf("injected fault %s not caught; report: %+v", tol.FaultDropInc, rep.Cells)
	}
	if f.Div.Fault != tol.FaultDropInc {
		t.Errorf("divergence does not record the fault: %+v", f.Div)
	}
	if f.Div.In == "" || len(f.Div.Delta()) == 0 {
		t.Errorf("divergence not actionable: %+v", f.Div)
	}
	// The lost instruction is the kernel loop's inc of the data index.
	if !strings.Contains(f.Div.Error(), "esi") {
		t.Errorf("expected an ESI delta in %q", f.Div.Error())
	}

	min, err := o.Minimize(ctx, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if min.Blocks > 8 {
		t.Fatalf("minimized to %d blocks (> 8) after %d steps / %d attempts: %+v",
			min.Blocks, min.Steps, min.Attempts, min.Spec)
	}
	if min.Div == nil {
		t.Fatal("minimized result carries no divergence")
	}
	if min.Steps == 0 {
		t.Fatalf("minimizer accepted no shrink from an %d-block spec", spec.Blocks())
	}

	// The minimized reproducer must still diverge under its cell — and
	// run clean once the injected bug is removed, which is exactly what
	// committing it as a regression artifact asserts forever.
	clean := New([]Cell{f.Cell})
	cleanRep, err := clean.Check(ctx, min.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRep.Clean() {
		t.Fatalf("minimized spec misbehaves without the fault: %+v", cleanRep)
	}

	// Filing the reproducer produces a replayable trace artifact.
	dir := t.TempDir()
	path, err := WriteRegression(dir, min.Spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := darco.Run(ctx, mustBuild(t, tr.Program()), darco.WithCosim(true))
	if err != nil {
		t.Fatalf("regression replay: %v", err)
	}
	if res.GuestDyn() == 0 {
		t.Fatal("regression replay executed nothing")
	}
}

func mustBuild(t *testing.T, p workload.Program) *guest.Program {
	t.Helper()
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRLEStaleBaseFaultRegistered pins the second registered mutation:
// the subtle rle alias-discipline bug is a valid fault configuration
// that fuzzing sweeps can select.
func TestRLEStaleBaseFaultRegistered(t *testing.T) {
	cfg := darco.DefaultConfig()
	withFault(tol.FaultRLEStaleBase)(&cfg)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleCleanOnGeneratedSpecs is the zero-outstanding-divergences
// gate: generated specs must survive the full smoke matrix plus the
// snapshot-resume and sampled-vs-full cross-checks with no findings.
func TestOracleCleanOnGeneratedSpecs(t *testing.T) {
	ctx := context.Background()
	o := New(SmokeMatrix())
	o.SnapshotCheck = true
	o.SampledCheck = true
	for _, ref := range []struct {
		seed    int64
		profile string
	}{{1, "hot"}, {2, "indirect"}, {3, "tiny"}} {
		s, err := workload.GenSpec(ref.seed, ref.profile)
		if err != nil {
			t.Fatal(err)
		}
		s = s.Clamp(40_000)
		rep, err := o.Check(ctx, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !rep.Clean() {
			t.Errorf("%s: oracle findings on a clean translator: cross=%q snapshot=%q sampled=%q cells=%+v",
				s.Name, rep.CrossCheck, rep.SnapshotErr, rep.SampledErr, rep.Cells)
		}
		if rep.Coverage.DynTotal == 0 || rep.Coverage.BBTranslated == 0 {
			t.Errorf("%s: sweep exercised no translator activity: %+v", s.Name, rep.Coverage)
		}
	}
}

// TestOracleCoverageCountsEviction ensures a bounded-cache cell under
// real pressure exercises the eviction/retranslation machinery and
// that the coverage report records it — the signal distinguishing a
// thorough sweep from one that never stressed cache management.
func TestOracleCoverageCountsEviction(t *testing.T) {
	s, err := workload.GenSpec(4, "shift")
	if err != nil {
		t.Fatal(err)
	}
	s = s.Clamp(60_000)
	o := New([]Cell{{OptLevel: 2, CacheInsts: 512, CachePolicy: "lru-translation"}})
	rep, err := o.Check(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("findings on a clean translator: %+v", rep)
	}
	if rep.Coverage.Evictions == 0 || rep.Coverage.Retranslations == 0 {
		t.Fatalf("bounded cell exercised no eviction churn: %+v", rep.Coverage)
	}
}

// TestRegressionDirConvention pins the artifact naming so committed
// regressions and the replay test agree.
func TestRegressionDirConvention(t *testing.T) {
	s := demoSpec()
	dir := t.TempDir()
	path, err := WriteRegression(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "fuzz-demo.trace.json" {
		t.Fatalf("artifact name: %s", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
