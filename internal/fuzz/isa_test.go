package fuzz

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// TestOracleCleanOnRV32Specs is the RV32I half of the
// zero-outstanding-divergences gate: rv32-profile generated specs must
// survive the full smoke matrix plus the snapshot-resume and
// sampled-vs-full cross-checks, and the coverage report must attribute
// the activity to the rv32 frontend.
func TestOracleCleanOnRV32Specs(t *testing.T) {
	ctx := context.Background()
	o := New(SmokeMatrix())
	o.SnapshotCheck = true
	o.SampledCheck = true
	for _, seed := range []int64{11, 12} {
		s, err := workload.GenSpec(seed, "rv32")
		if err != nil {
			t.Fatal(err)
		}
		s = s.Clamp(40_000)
		if s.ISA != "rv32" {
			t.Fatalf("rv32-profile spec carries ISA %q", s.ISA)
		}
		rep, err := o.Check(ctx, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !rep.Clean() {
			t.Errorf("%s: oracle findings on a clean translator: cross=%q snapshot=%q sampled=%q cells=%+v",
				s.Name, rep.CrossCheck, rep.SnapshotErr, rep.SampledErr, rep.Cells)
		}
		if rep.Coverage.ByISA["rv32"] == 0 {
			t.Errorf("%s: coverage attributes no dynamic instructions to rv32: %+v",
				s.Name, rep.Coverage)
		}
		if rep.Coverage.ByISA["x86"] != 0 {
			t.Errorf("%s: pure-rv32 sweep counted x86 activity: %+v", s.Name, rep.Coverage)
		}
	}
}

// TestOracleCoverageSplitsByISA runs one spec per frontend through the
// same oracle and checks the per-ISA accounting sums to the total — a
// sweep claiming both-ISA coverage must be able to prove it.
func TestOracleCoverageSplitsByISA(t *testing.T) {
	o := New([]Cell{{OptLevel: 2}})
	var total Coverage
	for _, ref := range []struct {
		seed    int64
		profile string
	}{{5, "mixed"}, {11, "rv32"}} {
		s, err := workload.GenSpec(ref.seed, ref.profile)
		if err != nil {
			t.Fatal(err)
		}
		s = s.Clamp(30_000)
		rep, err := o.Check(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("%s: oracle findings on a clean translator: %+v", s.Name, rep)
		}
		if total.ByISA == nil {
			total.ByISA = make(map[string]uint64)
		}
		for isa, dyn := range rep.Coverage.ByISA {
			total.ByISA[isa] += dyn
		}
		total.DynTotal += rep.Coverage.DynTotal
	}
	if total.ByISA["x86"] == 0 || total.ByISA["rv32"] == 0 {
		t.Fatalf("both-ISA sweep missing a frontend: %+v", total.ByISA)
	}
	if total.ByISA["x86"]+total.ByISA["rv32"] != total.DynTotal {
		t.Fatalf("per-ISA accounting does not sum to the total: %+v vs %d",
			total.ByISA, total.DynTotal)
	}
}
