package fuzz

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tol"
	"repro/internal/workload"
)

// defaultMinimizeAttempts bounds the shrink search. Each attempt is
// one (candidate, cell) run; the greedy loop converges long before
// this on any realistic finding.
const defaultMinimizeAttempts = 400

// MinimizeResult is the outcome of shrinking one finding.
type MinimizeResult struct {
	// Spec is the smallest spec that still reproduces the divergence.
	Spec workload.Spec `json:"spec"`
	// Div is the divergence the minimized spec produces.
	Div *tol.DivergenceError `json:"divergence"`
	// Cell is the configuration the divergence reproduces under.
	Cell Cell `json:"cell"`
	// Steps counts accepted shrinks, Attempts all candidate runs.
	Steps    int `json:"steps"`
	Attempts int `json:"attempts"`
	// Blocks is the minimized spec's workload.Spec.Blocks() — the size
	// metric the acceptance bar (<= 8) is expressed in.
	Blocks int `json:"blocks"`
}

// Minimize greedily shrinks the finding's spec while the divergence
// still reproduces under the finding's cell: at each step the first
// reproducing candidate from workload.Spec.Shrink (ordered most
// aggressive first) is accepted, until no candidate reproduces or the
// attempt budget (defaultMinimizeAttempts if maxAttempts <= 0) runs
// out. Session memoization makes re-visited candidates free.
func (o *Oracle) Minimize(ctx context.Context, f *Finding, maxAttempts int) (*MinimizeResult, error) {
	if f == nil || f.Div == nil {
		return nil, fmt.Errorf("fuzz: nothing to minimize")
	}
	if maxAttempts <= 0 {
		maxAttempts = defaultMinimizeAttempts
	}
	cur, div := f.Spec, f.Div
	res := &MinimizeResult{Cell: f.Cell}
	for {
		progressed := false
		for _, cand := range cur.Shrink() {
			if res.Attempts >= maxAttempts {
				break
			}
			res.Attempts++
			d, err := o.reproduce(ctx, cand, f.Cell)
			if err != nil {
				return nil, err
			}
			if d != nil {
				cur, div = cand, d
				res.Steps++
				progressed = true
				break
			}
		}
		if !progressed || res.Attempts >= maxAttempts {
			break
		}
	}
	res.Spec, res.Div, res.Blocks = cur, div, cur.Blocks()
	return res, nil
}

// reproduce runs spec under cell and returns the divergence if the run
// diverged, nil if it ran clean or failed for an unrelated reason
// (such a candidate is simply not accepted), and an error only for
// context cancellation.
func (o *Oracle) reproduce(ctx context.Context, spec workload.Spec, cell Cell) (*tol.DivergenceError, error) {
	_, err := o.session().Run(ctx, o.job(spec, cell))
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if div, ok := AsDivergence(err); ok {
		return div, nil
	}
	return nil, nil
}

// RegressionName returns the artifact base name a spec is filed under.
func RegressionName(spec *workload.Spec) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, spec.Name)
	return name + ".trace.json"
}

// WriteRegression files the minimized reproducer as a committed
// trace: artifact in dir (conventionally testdata/regressions/ at the
// repository root): the exact guest image the spec builds, recorded in
// the workload trace format so the regression replays byte-identically
// forever, independent of future generator changes. It returns the
// artifact path; regress_test.go replays every artifact in the
// directory through the smoke matrix.
func WriteRegression(dir string, spec workload.Spec) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, RegressionName(&spec))
	if err := workload.RecordTrace(path, workload.SpecProgram{Spec: spec, Source: "fuzz"}); err != nil {
		return "", err
	}
	return path, nil
}
