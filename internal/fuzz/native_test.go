package fuzz

import (
	"context"
	"strings"
	"testing"

	"repro/internal/workload"
)

// The native go-fuzz entry points share the Spec JSON encoding with
// the generator-driven oracle: the seed corpus is EncodeSpec output,
// and the engine mutates that JSON. Run them with
//
//	go test ./internal/fuzz -fuzz FuzzTranslatorCosim
//	go test ./internal/fuzz -fuzz FuzzSnapshotResume
//
// Under plain `go test` only the seed corpus executes, so the budgets
// below keep tier-1 runs fast.

// nativeBudget bounds one fuzz case: estimated dynamic instructions
// after clamping, and the static-size guard applied before Build so a
// mutated entry cannot demand unbounded generated code.
const (
	nativeDynBudget    = 30_000
	nativeStaticBudget = 50_000
)

// decodeCase turns fuzz input into a runnable spec, reporting ok=false
// for inputs that are not valid bounded specs (the fuzzing engine
// explores plenty of those; they are skips, not failures).
func decodeCase(data []byte) (workload.Spec, bool) {
	spec, err := workload.DecodeSpec(data)
	if err != nil {
		return workload.Spec{}, false
	}
	if spec.EstStaticInsts() > nativeStaticBudget {
		return workload.Spec{}, false
	}
	return spec.Clamp(nativeDynBudget), true
}

func seedCorpus(f *testing.F) {
	f.Helper()
	for _, profile := range workload.FuzzProfiles() {
		for seed := int64(0); seed < 2; seed++ {
			s, err := workload.GenSpec(seed, profile)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(workload.EncodeSpec(s.Clamp(nativeDynBudget)))
		}
	}
}

// FuzzTranslatorCosim runs decoded specs through one full-pipeline
// configuration with co-simulation enabled: any divergence from the
// authoritative emulator fails the case. Non-divergence errors
// (budget guards) skip — they are workload-shape noise, not bugs.
func FuzzTranslatorCosim(f *testing.F) {
	seedCorpus(f)
	o := New([]Cell{{OptLevel: 3}})
	o.MaxGuestInsts = 2 * nativeDynBudget
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, ok := decodeCase(data)
		if !ok {
			t.Skip()
		}
		div, err := o.reproduce(context.Background(), spec, o.Cells[0])
		if err != nil {
			t.Skip() // context cancellation only
		}
		if div != nil {
			t.Fatalf("cosim divergence:\n%s\nspec: %s", div.Report(), workload.EncodeSpec(spec))
		}
	})
}

// FuzzSnapshotResume checkpoints each decoded spec mid-run through the
// snapshot envelope, resumes, and fails the case if the completed run
// differs from an uninterrupted one in any architectural or timing
// respect.
func FuzzSnapshotResume(f *testing.F) {
	seedCorpus(f)
	cell := Cell{OptLevel: 2}
	o := New([]Cell{cell})
	o.MaxGuestInsts = 2 * nativeDynBudget
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, ok := decodeCase(data)
		if !ok {
			t.Skip()
		}
		spec = spec.Clamp(nativeDynBudget / 2)
		if err := o.checkSnapshotResume(context.Background(), spec, cell); err != nil {
			// A failing *reference* run means the spec itself is noise
			// (runaway guard, degenerate shape) — nothing snapshot-related
			// was compared yet.
			if strings.HasPrefix(err.Error(), "reference run:") {
				t.Skip()
			}
			t.Fatalf("snapshot/resume mismatch: %v\nspec: %s", err, workload.EncodeSpec(spec))
		}
	})
}
