package fuzz

import (
	"context"
	"fmt"

	"repro/internal/darco"
	"repro/internal/sample"
	"repro/internal/snapshot"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

// defaultMaxGuestInsts guards a single oracle cell against generated
// programs that outrun their dynamic-size estimate. Well above the
// fuzz generator's budget, so it only trips on genuine runaways.
const defaultMaxGuestInsts = 4_000_000

// Oracle runs generated specs across a configuration matrix and
// classifies the outcomes. Every cell runs with co-simulation enabled
// (the per-instruction half of the oracle); the cross-cell half
// compares retired instruction counts and final architectural state
// between cells, which must agree exactly for any correct translator.
type Oracle struct {
	// Session executes and memoizes the matrix runs.
	Session *darco.Session
	// Cells is the configuration matrix (SmokeMatrix if empty).
	Cells []Cell
	// MaxGuestInsts guards each cell (defaultMaxGuestInsts if 0).
	MaxGuestInsts uint64
	// Extra options are appended to every cell — the fault-injection
	// hook of the mutation tests (e.g. setting tol.Config.Fault).
	Extra []darco.Option
	// SnapshotCheck adds the checkpoint/restore leg: the first cell is
	// paused mid-run, snapshotted through the JSON envelope, restored
	// and resumed, and must finish architecturally identical to its
	// uninterrupted run.
	SnapshotCheck bool
	// SampledCheck adds the sampled-vs-full leg: a sampled-simulation
	// run of the first cell must retire the same instructions into the
	// same final state as the full run (functional outputs are exact
	// under sampling).
	SampledCheck bool
}

// New returns an oracle over the given matrix with a private session.
func New(cells []Cell) *Oracle {
	return &Oracle{Session: darco.NewSession(), Cells: cells}
}

// CellOutcome is the result of one (spec, cell) run.
type CellOutcome struct {
	Cell     Cell                 `json:"cell"`
	Name     string               `json:"name"`
	DynTotal uint64               `json:"dyn_total,omitempty"`
	Cycles   uint64               `json:"cycles,omitempty"`
	Err      string               `json:"err,omitempty"`
	Div      *tol.DivergenceError `json:"divergence,omitempty"`
}

// Coverage aggregates the translator activity a fuzzing sweep actually
// exercised — the report fuzzrun emits so a "0 divergences" result can
// be told apart from a sweep that never left the interpreter.
type Coverage struct {
	DynTotal       uint64 `json:"dyn_total"`
	BBTranslated   int    `json:"bb_translated"`
	Promotions     int    `json:"promotions"` // superblocks created
	Evictions      uint64 `json:"evictions"`
	Retranslations uint64 `json:"retranslations"`
	IBTCFills      uint64 `json:"ibtc_fills"`
	// IBTCHits estimates inline indirect-branch hits: dynamic indirect
	// branches not answered by a fill (IM-interpreted indirects make
	// this a lower-bound estimate, not an exact counter).
	IBTCHits    uint64 `json:"ibtc_hits"`
	Chains      uint64 `json:"chains"`
	CosimChecks uint64 `json:"cosim_checks"`
	// ByISA splits DynTotal per guest frontend, so a sweep meant to
	// cover both ISAs can be told apart from one whose rv32 cases all
	// failed to generate (their counts would be missing, not merely
	// small).
	ByISA map[string]uint64 `json:"by_isa,omitempty"`
}

// add folds one run's statistics into the aggregate under the spec's
// frontend ("" means x86, the workload-layer default).
func (c *Coverage) add(isa string, s *tol.Stats) {
	if isa == "" {
		isa = "x86"
	}
	if c.ByISA == nil {
		c.ByISA = make(map[string]uint64)
	}
	c.ByISA[isa] += s.DynTotal()
	c.DynTotal += s.DynTotal()
	c.BBTranslated += s.BBTranslated
	c.Promotions += s.SBCreated
	c.Evictions += s.Evictions
	c.Retranslations += s.Retranslations
	c.IBTCFills += s.IBTCFills
	if s.IndirectDyn > s.IBTCFills {
		c.IBTCHits += s.IndirectDyn - s.IBTCFills
	}
	c.Chains += s.Chains
	c.CosimChecks += s.CosimChecks
}

// Report is the oracle's verdict on one spec.
type Report struct {
	Spec  workload.Spec `json:"spec"`
	Cells []CellOutcome `json:"cells"`
	// CrossCheck records a cross-cell disagreement (different retired
	// counts or final states between configurations) — a translator bug
	// that never tripped a per-instruction cosim check.
	CrossCheck string `json:"cross_check,omitempty"`
	// SnapshotErr and SampledErr record failures of the optional legs.
	SnapshotErr string   `json:"snapshot_err,omitempty"`
	SampledErr  string   `json:"sampled_err,omitempty"`
	Coverage    Coverage `json:"coverage"`
}

// Finding is one actionable divergence: the spec, the cell that
// diverged, and the structured error — the minimizer's input.
type Finding struct {
	Spec workload.Spec
	Cell Cell
	Div  *tol.DivergenceError
}

// Finding returns the first cosim divergence of the report, or nil.
func (r *Report) Finding() *Finding {
	for _, c := range r.Cells {
		if c.Div != nil {
			return &Finding{Spec: r.Spec, Cell: c.Cell, Div: c.Div}
		}
	}
	return nil
}

// Clean reports whether the spec survived every check.
func (r *Report) Clean() bool {
	if r.CrossCheck != "" || r.SnapshotErr != "" || r.SampledErr != "" {
		return false
	}
	for _, c := range r.Cells {
		if c.Div != nil || c.Err != "" {
			return false
		}
	}
	return true
}

func (o *Oracle) cells() []Cell {
	if len(o.Cells) == 0 {
		return SmokeMatrix()
	}
	return o.Cells
}

func (o *Oracle) maxInsts() uint64 {
	if o.MaxGuestInsts == 0 {
		return defaultMaxGuestInsts
	}
	return o.MaxGuestInsts
}

func (o *Oracle) session() *darco.Session {
	if o.Session == nil {
		o.Session = darco.NewSession()
	}
	return o.Session
}

// job builds the session job running spec under cell.
func (o *Oracle) job(spec workload.Spec, cell Cell) darco.Job {
	opts := append(cell.Options(o.maxInsts()), o.Extra...)
	return darco.JobForSpec(spec, 0, opts...)
}

// Check runs one spec across the matrix and cross-checks the results.
// The returned error covers harness problems only (an unbuildable spec,
// a cancelled context); divergences and per-cell failures are data, in
// the Report.
func (o *Oracle) Check(ctx context.Context, spec workload.Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := o.cells()
	jobs := make([]darco.Job, len(cells))
	for i, cell := range cells {
		jobs[i] = o.job(spec, cell)
	}
	batch := o.session().RunBatch(ctx, jobs)

	rep := &Report{Spec: spec}
	var agreeDyn uint64
	var agreeFinal *darco.Result
	for i, br := range batch {
		out := CellOutcome{Cell: cells[i], Name: cells[i].Name()}
		switch {
		case br.Err != nil && ctx.Err() != nil:
			return nil, ctx.Err()
		case br.Err != nil:
			if div, ok := AsDivergence(br.Err); ok {
				out.Div = div
			} else {
				out.Err = br.Err.Error()
			}
		default:
			out.DynTotal = br.Result.GuestDyn()
			out.Cycles = br.Result.Timing.Cycles
			rep.Coverage.add(spec.ISA, &br.Result.TOL)
			// Cross-cell agreement: every configuration must retire the
			// same guest instructions into the same architectural state.
			if agreeFinal == nil {
				agreeDyn, agreeFinal = out.DynTotal, br.Result
			} else if rep.CrossCheck == "" {
				if out.DynTotal != agreeDyn {
					rep.CrossCheck = fmt.Sprintf("cell %s retired %d guest insts, cell %s retired %d",
						cells[i].Name(), out.DynTotal, cells[0].Name(), agreeDyn)
				} else if d := br.Result.Final.Diff(&agreeFinal.Final); d != "" {
					rep.CrossCheck = fmt.Sprintf("final state of cell %s differs from cell %s: %s",
						cells[i].Name(), cells[0].Name(), d)
				}
			}
		}
		rep.Cells = append(rep.Cells, out)
	}

	if o.SnapshotCheck {
		if err := o.checkSnapshotResume(ctx, spec, cells[0]); err != nil {
			rep.SnapshotErr = err.Error()
		}
	}
	if o.SampledCheck {
		if err := o.checkSampledVsFull(ctx, spec, cells[0]); err != nil {
			rep.SampledErr = err.Error()
		}
	}
	return rep, nil
}

// resolveConfig renders a cell (plus the oracle's extra options) into
// the full run configuration, for the legs that drive the engine and
// timing simulator directly.
func (o *Oracle) resolveConfig(cell Cell) darco.Config {
	cfg := darco.DefaultConfig()
	for _, opt := range append(cell.Options(o.maxInsts()), o.Extra...) {
		opt(&cfg)
	}
	return cfg
}

// checkSnapshotResume pauses a run of spec at half its retired
// instructions, checkpoints the whole machine through the snapshot
// envelope, restores, resumes, and compares the completed run against
// an uninterrupted one: timing, TOL statistics and final guest state
// must all match exactly.
func (o *Oracle) checkSnapshotResume(ctx context.Context, spec workload.Spec, cell Cell) error {
	cfg := o.resolveConfig(cell)
	if err := cfg.Validate(); err != nil {
		return err
	}
	p, err := spec.Build()
	if err != nil {
		return err
	}

	// Uninterrupted reference.
	refEng := tol.NewEngine(cfg.TOL, p)
	refEng.SetContext(ctx)
	refSim := timing.NewSimulator(cfg.Timing, cfg.Mode)
	refRes, err := refSim.RunContext(ctx, refEng)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	if err := refEng.Err(); err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	pause := refEng.Stats.DynTotal() / 2
	if pause == 0 {
		return nil // too short to pause mid-run
	}

	eng := tol.NewEngine(cfg.TOL, p)
	eng.SetContext(ctx)
	sim := timing.NewSimulator(cfg.Timing, cfg.Mode)
	sim.StopWhen = func() bool { return eng.Stats.DynTotal() >= pause }
	if _, err := sim.RunContext(ctx, eng); err != timing.ErrPaused {
		return fmt.Errorf("pause at %d insts: %w", pause, err)
	}
	m, err := snapshot.Capture(spec.Name, eng, sim)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	blob, err := snapshot.Encode(m)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	decoded, err := snapshot.Decode(blob)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	eng2, sim2, err := decoded.Restore(p)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	eng2.SetContext(ctx)
	res, err := sim2.RunContext(ctx, eng2)
	if err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}
	if err := eng2.Err(); err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}

	if got, want := eng2.Stats.DynTotal(), refEng.Stats.DynTotal(); got != want {
		return fmt.Errorf("resumed run retired %d guest insts, uninterrupted %d", got, want)
	}
	if d := eng2.GuestState().Diff(refEng.GuestState()); d != "" {
		return fmt.Errorf("resumed final state differs: %s", d)
	}
	if got, want := res.Cycles, refRes.Cycles; got != want {
		return fmt.Errorf("resumed run took %d cycles, uninterrupted %d", got, want)
	}
	return nil
}

// checkSampledVsFull compares a sampled-simulation run against the
// full detailed run of the same cell: sampling reconstructs timing as
// estimates, but retired instructions and the final architectural
// state are exact and must match the full run.
func (o *Oracle) checkSampledVsFull(ctx context.Context, spec workload.Spec, cell Cell) error {
	sc := sample.Config{Interval: 20_000, Every: 2, Warmup: 2_000}
	opts := append(cell.Options(o.maxInsts()), o.Extra...)
	full, err := o.session().Run(ctx, darco.JobForSpec(spec, 0, opts...))
	if err != nil {
		return fmt.Errorf("full run: %w", err)
	}
	sampled, err := o.session().Run(ctx, darco.JobForSpec(spec, 0, append(opts, darco.WithSampling(sc))...))
	if err != nil {
		return fmt.Errorf("sampled run: %w", err)
	}
	if got, want := sampled.GuestDyn(), full.GuestDyn(); got != want {
		return fmt.Errorf("sampled run retired %d guest insts, full run %d", got, want)
	}
	if d := sampled.Final.Diff(&full.Final); d != "" {
		return fmt.Errorf("sampled final state differs from full: %s", d)
	}
	return nil
}
