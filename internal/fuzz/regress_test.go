package fuzz

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/darco"
	"repro/internal/workload"
)

// TestRegressionCorpusReplaysClean replays every committed regression
// artifact under testdata/regressions — each one a minimized reproducer
// of a divergence found by differential fuzzing — through the full
// smoke matrix with co-simulation enabled. A fixed translator must stay
// fixed: any divergence or error here is a reintroduced bug.
//
// The corpus is committed, so an empty glob is a failure (a moved
// directory would otherwise silently skip the whole suite).
func TestRegressionCorpusReplaysClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "regressions", "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed regression artifacts found under testdata/regressions")
	}
	ctx := context.Background()
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			tr, err := workload.LoadTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			prog := mustBuild(t, tr.Program())
			for _, cell := range SmokeMatrix() {
				res, err := darco.Run(ctx, prog, cell.Options(defaultMaxGuestInsts)...)
				if err != nil {
					if div, ok := AsDivergence(err); ok {
						t.Errorf("%s: regressed:\n%s", cell.Name(), div.Report())
						continue
					}
					t.Errorf("%s: %v", cell.Name(), err)
					continue
				}
				if res.GuestDyn() == 0 {
					t.Errorf("%s: replay executed nothing", cell.Name())
				}
			}
		})
	}
}
