package guest

// EvalALU computes the result and resulting flags of an ALU operation
// with known operand values, using exactly the semantics of Step. It
// is the constant-folding oracle of the superblock optimizer: folding
// through this function guarantees the optimizer can never disagree
// with the architectural semantics.
//
// a is the destination operand's prior value, b the source operand
// (register value or immediate), oldFlags the prior flags. ok is false
// for operations EvalALU does not handle (memory, FP, control flow).
func EvalALU(op Op, a, b uint32, oldFlags uint32) (res uint32, flags uint32, ok bool) {
	switch op {
	case OpAddRR, OpAddRI:
		r := a + b
		return r, addFlags(a, b, r), true
	case OpSubRR, OpSubRI:
		r := a - b
		return r, subFlags(a, b, r), true
	case OpCmpRR, OpCmpRI:
		return a, subFlags(a, b, a-b), true
	case OpAndRR, OpAndRI:
		r := a & b
		return r, logicFlags(r), true
	case OpOrRR, OpOrRI:
		r := a | b
		return r, logicFlags(r), true
	case OpXorRR, OpXorRI:
		r := a ^ b
		return r, logicFlags(r), true
	case OpTestRR:
		return a, logicFlags(a & b), true
	case OpImulRR:
		return uint32(int32(a) * int32(b)), mulFlags(int32(a), int32(b)), true
	case OpDivRR:
		if b == 0 {
			return 0xffff_ffff, oldFlags, true
		}
		return a / b, oldFlags, true
	case OpIncR:
		r := a + 1
		return r, incFlags(oldFlags, r), true
	case OpDecR:
		r := a - 1
		return r, decFlags(oldFlags, r), true
	case OpNegR:
		r := -a
		return r, negFlags(a, r), true
	case OpNotR:
		return ^a, oldFlags, true
	case OpShlRI:
		c := b & 31
		if c == 0 {
			return a, oldFlags, true
		}
		r := a << c
		return r, shlFlags(a, c, r), true
	case OpShrRI:
		c := b & 31
		if c == 0 {
			return a, oldFlags, true
		}
		r := a >> c
		return r, shrFlags(a, c, r), true
	case OpSarRI:
		c := b & 31
		if c == 0 {
			return a, oldFlags, true
		}
		r := uint32(int32(a) >> c)
		return r, shrFlags(a, c, r), true
	case OpMovRI:
		return b, oldFlags, true
	case OpMovRR:
		return b, oldFlags, true
	case OpLea:
		return a + b, oldFlags, true
	}
	return 0, 0, false
}
