package guest

import (
	"fmt"

	"repro/internal/mem"
)

// Program is a loadable guest binary image.
type Program struct {
	Entry      uint32
	Code       []byte
	Data       []DataSeg
	StaticInst int // number of static guest instructions in Code

	// ISA names the frontend whose encodings Code holds. Empty means
	// x86, so programs predating the second frontend keep their
	// meaning. Resolve with ISAOf.
	ISA string
}

// DataSeg is an initialized data segment.
type DataSeg struct {
	Addr  uint32
	Bytes []byte
}

// LoadInto places the program image into a guest memory space and
// returns the initial architectural state per the program's frontend
// (EIP at entry, the frontend's stack pointer at the top of the guest
// stack). An unregistered Program.ISA panics — callers validate ISA
// names at the configuration boundary.
func (p *Program) LoadInto(m mem.Memory) State {
	isa, err := ISAOf(p)
	if err != nil {
		panic(err)
	}
	for i, b := range p.Code {
		m.Write8(mem.GuestCodeBase+uint32(i), b)
	}
	for _, seg := range p.Data {
		for i, b := range seg.Bytes {
			m.Write8(seg.Addr+uint32(i), b)
		}
	}
	var s State
	isa.InitState(&s, p.Entry)
	return s
}

// LoadIntoWindow places the program image into the host address space
// through the guest memory window, for the co-design component.
func (p *Program) LoadIntoWindow(m mem.Memory) {
	for i, b := range p.Code {
		m.Write8(mem.GuestToHost(mem.GuestCodeBase+uint32(i)), b)
	}
	for _, seg := range p.Data {
		for i, b := range seg.Bytes {
			m.Write8(mem.GuestToHost(seg.Addr+uint32(i)), b)
		}
	}
}

// Builder assembles guest programs with symbolic labels. Instruction
// methods append one instruction each; Build performs label resolution
// (all encodings have fixed per-opcode sizes, so a single layout pass
// suffices) and returns the final image.
type Builder struct {
	insts  []Inst
	fixups map[int]string // instruction index -> target label
	labels map[string]int // label -> instruction index
	data   []DataSeg
	err    error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		fixups: make(map[int]string),
		labels: make(map[string]int),
	}
}

func (b *Builder) emit(i Inst) *Builder {
	i.Size = uint8(SizeOf(i.Op))
	b.insts = append(b.insts, i)
	return b
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Data adds an initialized data segment at a fixed guest address.
func (b *Builder) Data(addr uint32, bytes []byte) *Builder {
	b.data = append(b.data, DataSeg{Addr: addr, Bytes: bytes})
	return b
}

// DataWords adds a data segment of little-endian 32-bit words.
func (b *Builder) DataWords(addr uint32, words []uint32) *Builder {
	raw := make([]byte, 4*len(words))
	for i, w := range words {
		put32(raw[4*i:], w)
	}
	return b.Data(addr, raw)
}

// Nop and the rest of the instruction constructors mirror the ISA.
func (b *Builder) Nop() *Builder  { return b.emit(Inst{Op: OpNop}) }
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt}) }

func (b *Builder) MovRR(dst, src Reg) *Builder {
	return b.emit(Inst{Op: OpMovRR, R1: dst, R2: src})
}
func (b *Builder) MovRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpMovRI, R1: dst, Imm: imm})
}
func (b *Builder) Load(dst, base Reg, disp int32) *Builder {
	return b.emit(Inst{Op: OpLoad, R1: dst, RB: base, Imm: disp})
}
func (b *Builder) Store(base Reg, disp int32, src Reg) *Builder {
	return b.emit(Inst{Op: OpStore, R1: src, RB: base, Imm: disp})
}
func (b *Builder) LoadIdx(dst, base, idx Reg, scale uint8, disp int32) *Builder {
	return b.emit(Inst{Op: OpLoadIdx, R1: dst, RB: base, RI: idx, Scale: scale, Imm: disp})
}
func (b *Builder) StoreIdx(base, idx Reg, scale uint8, disp int32, src Reg) *Builder {
	return b.emit(Inst{Op: OpStoreIdx, R1: src, RB: base, RI: idx, Scale: scale, Imm: disp})
}
func (b *Builder) Lea(dst, base Reg, disp int32) *Builder {
	return b.emit(Inst{Op: OpLea, R1: dst, RB: base, Imm: disp})
}

func (b *Builder) AddRR(dst, src Reg) *Builder { return b.emit(Inst{Op: OpAddRR, R1: dst, R2: src}) }
func (b *Builder) SubRR(dst, src Reg) *Builder { return b.emit(Inst{Op: OpSubRR, R1: dst, R2: src}) }
func (b *Builder) AndRR(dst, src Reg) *Builder { return b.emit(Inst{Op: OpAndRR, R1: dst, R2: src}) }
func (b *Builder) OrRR(dst, src Reg) *Builder  { return b.emit(Inst{Op: OpOrRR, R1: dst, R2: src}) }
func (b *Builder) XorRR(dst, src Reg) *Builder { return b.emit(Inst{Op: OpXorRR, R1: dst, R2: src}) }
func (b *Builder) CmpRR(a, c Reg) *Builder     { return b.emit(Inst{Op: OpCmpRR, R1: a, R2: c}) }
func (b *Builder) TestRR(a, c Reg) *Builder    { return b.emit(Inst{Op: OpTestRR, R1: a, R2: c}) }
func (b *Builder) ImulRR(dst, src Reg) *Builder {
	return b.emit(Inst{Op: OpImulRR, R1: dst, R2: src})
}
func (b *Builder) DivRR(dst, src Reg) *Builder { return b.emit(Inst{Op: OpDivRR, R1: dst, R2: src}) }

func (b *Builder) AddRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpAddRI, R1: dst, Imm: imm})
}
func (b *Builder) SubRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpSubRI, R1: dst, Imm: imm})
}
func (b *Builder) AndRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpAndRI, R1: dst, Imm: imm})
}
func (b *Builder) OrRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpOrRI, R1: dst, Imm: imm})
}
func (b *Builder) XorRI(dst Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpXorRI, R1: dst, Imm: imm})
}
func (b *Builder) CmpRI(r Reg, imm int32) *Builder {
	return b.emit(Inst{Op: OpCmpRI, R1: r, Imm: imm})
}

func (b *Builder) Inc(r Reg) *Builder { return b.emit(Inst{Op: OpIncR, R1: r}) }
func (b *Builder) Dec(r Reg) *Builder { return b.emit(Inst{Op: OpDecR, R1: r}) }
func (b *Builder) Neg(r Reg) *Builder { return b.emit(Inst{Op: OpNegR, R1: r}) }
func (b *Builder) Not(r Reg) *Builder { return b.emit(Inst{Op: OpNotR, R1: r}) }

func (b *Builder) Shl(r Reg, count int32) *Builder {
	return b.emit(Inst{Op: OpShlRI, R1: r, Imm: count})
}
func (b *Builder) Shr(r Reg, count int32) *Builder {
	return b.emit(Inst{Op: OpShrRI, R1: r, Imm: count})
}
func (b *Builder) Sar(r Reg, count int32) *Builder {
	return b.emit(Inst{Op: OpSarRI, R1: r, Imm: count})
}

func (b *Builder) Push(r Reg) *Builder { return b.emit(Inst{Op: OpPushR, R1: r}) }
func (b *Builder) Pop(r Reg) *Builder  { return b.emit(Inst{Op: OpPopR, R1: r}) }

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(Inst{Op: OpJmp})
}

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(c Cond, label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(Inst{Op: OpJcc, Cond: c})
}

// JmpInd emits a register-indirect jump (target = value of r).
func (b *Builder) JmpInd(r Reg) *Builder { return b.emit(Inst{Op: OpJmpInd, R1: r}) }

// Call emits a direct call to a label.
func (b *Builder) Call(label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(Inst{Op: OpCallRel})
}

// CallInd emits an indirect call through register r.
func (b *Builder) CallInd(r Reg) *Builder { return b.emit(Inst{Op: OpCallInd, R1: r}) }

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(Inst{Op: OpRet}) }

func (b *Builder) FLoad(dst FReg, base Reg, disp int32) *Builder {
	return b.emit(Inst{Op: OpFLoad, F1: dst, RB: base, Imm: disp})
}
func (b *Builder) FStore(base Reg, disp int32, src FReg) *Builder {
	return b.emit(Inst{Op: OpFStore, F1: src, RB: base, Imm: disp})
}
func (b *Builder) FMov(dst, src FReg) *Builder {
	return b.emit(Inst{Op: OpFMovRR, F1: dst, F2: src})
}
func (b *Builder) FAdd(dst, src FReg) *Builder { return b.emit(Inst{Op: OpFAdd, F1: dst, F2: src}) }
func (b *Builder) FSub(dst, src FReg) *Builder { return b.emit(Inst{Op: OpFSub, F1: dst, F2: src}) }
func (b *Builder) FMul(dst, src FReg) *Builder { return b.emit(Inst{Op: OpFMul, F1: dst, F2: src}) }
func (b *Builder) FDiv(dst, src FReg) *Builder { return b.emit(Inst{Op: OpFDiv, F1: dst, F2: src}) }
func (b *Builder) FCmp(a, c FReg) *Builder     { return b.emit(Inst{Op: OpFCmp, F1: a, F2: c}) }
func (b *Builder) CvtIF(dst FReg, src Reg) *Builder {
	return b.emit(Inst{Op: OpCvtIF, F1: dst, R2: src})
}
func (b *Builder) CvtFI(dst Reg, src FReg) *Builder {
	return b.emit(Inst{Op: OpCvtFI, R1: dst, F2: src})
}

// MovLabel loads the absolute guest address of a label into a register,
// the building block of jump tables and indirect calls.
func (b *Builder) MovLabel(dst Reg, label string) *Builder {
	b.fixups[len(b.insts)] = "=" + label // absolute fixup
	return b.emit(Inst{Op: OpMovRI, R1: dst})
}

// InstCount returns the number of instructions emitted so far.
func (b *Builder) InstCount() int { return len(b.insts) }

// AddrOf returns the final guest address of a label. Only valid after
// Build has been called.
func (b *Builder) AddrOf(label string) (uint32, bool) {
	idx, ok := b.labels[label]
	if !ok {
		return 0, false
	}
	off := uint32(0)
	for i := 0; i < idx; i++ {
		off += uint32(b.insts[i].Size)
	}
	return mem.GuestCodeBase + off, true
}

// Build resolves labels and produces the program image. The entry point
// is the label "start" if defined, otherwise the first instruction.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Compute instruction offsets.
	offsets := make([]uint32, len(b.insts)+1)
	off := uint32(0)
	for i := range b.insts {
		offsets[i] = off
		off += uint32(b.insts[i].Size)
	}
	offsets[len(b.insts)] = off

	// Resolve fixups.
	for idx, label := range b.fixups {
		absolute := false
		if label[0] == '=' {
			absolute = true
			label = label[1:]
		}
		ti, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("guest: undefined label %q", label)
		}
		target := mem.GuestCodeBase + offsets[ti]
		if absolute {
			b.insts[idx].Imm = int32(target)
		} else {
			// Relative to the end of the branch instruction.
			end := mem.GuestCodeBase + offsets[idx] + uint32(b.insts[idx].Size)
			b.insts[idx].Imm = int32(target - end)
		}
	}

	code := make([]byte, 0, off)
	for i := range b.insts {
		code = Encode(code, b.insts[i])
	}
	if uint32(len(code)) != off {
		return nil, fmt.Errorf("guest: layout mismatch: %d != %d", len(code), off)
	}

	entry := mem.GuestCodeBase
	if si, ok := b.labels["start"]; ok {
		entry = mem.GuestCodeBase + offsets[si]
	}
	return &Program{
		Entry:      entry,
		Code:       code,
		Data:       b.data,
		StaticInst: len(b.insts),
	}, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
