package guest

import (
	"repro/internal/mem"
)

// decodeCacheEntries is the number of direct-mapped DecodeCache slots.
// x86 encodings are 1-7 bytes, so consecutive instructions land in
// distinct slots; 8192 entries cover hot regions far larger than any
// catalog benchmark's working set of static code.
const decodeCacheEntries = 8192

// DecodeCache memoizes fetch+decode of guest instructions by EIP, the
// per-step cost that dominates a tight interpreter loop. Guest code is
// immutable once loaded (the infrastructure assumes no self-modifying
// code — translations cache decoded guest instructions under the same
// assumption), so a decoded instruction can be replayed for every
// revisit of its address.
//
// The cache is direct-mapped: a colliding address simply overwrites
// the slot. Lookups are exact (tagged by full EIP), so collisions cost
// a re-decode, never a wrong instruction. Indexing drops the
// frontend's alignment bits (ISA.InstShift): a fixed four-byte
// encoding only ever presents PCs with the low two bits clear, and
// indexing by those bits would leave 3/4 of the slots permanently
// cold.
type DecodeCache struct {
	isa   *ISA
	tags  [decodeCacheEntries]uint32 // EIP+1; 0 = empty
	insts [decodeCacheEntries]Inst
}

// NewDecodeCache returns an empty decode cache for one frontend.
func NewDecodeCache(isa *ISA) *DecodeCache {
	return &DecodeCache{isa: isa}
}

// Step is ISA.Step with fetch+decode served from the cache. Semantics
// and failure modes are identical on immutable code.
func (c *DecodeCache) Step(s *State, m mem.Memory, res *StepResult) error {
	eip := s.EIP
	idx := (eip >> c.isa.InstShift) & (decodeCacheEntries - 1)
	if c.tags[idx] == eip+1 {
		return stepDecoded(s, m, &c.insts[idx], res)
	}
	inst, err := c.isa.fetchDecode(eip, m)
	if err != nil {
		return err
	}
	c.tags[idx] = eip + 1
	c.insts[idx] = inst
	return stepDecoded(s, m, &inst, res)
}
