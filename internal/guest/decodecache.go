package guest

import (
	"repro/internal/mem"
)

// decodeCacheEntries is the number of direct-mapped DecodeCache slots.
// Guest encodings are 1-7 bytes, so consecutive instructions land in
// distinct slots; 8192 entries cover hot regions far larger than any
// catalog benchmark's working set of static code.
const decodeCacheEntries = 8192

// DecodeCache memoizes fetch+decode of guest instructions by EIP, the
// per-step cost that dominates a tight interpreter loop. Guest code is
// immutable once loaded (the infrastructure assumes no self-modifying
// code — translations cache decoded guest instructions under the same
// assumption), so a decoded instruction can be replayed for every
// revisit of its address.
//
// The cache is direct-mapped: a colliding address simply overwrites
// the slot. Lookups are exact (tagged by full EIP), so collisions cost
// a re-decode, never a wrong instruction.
type DecodeCache struct {
	tags  [decodeCacheEntries]uint32 // EIP+1; 0 = empty
	insts [decodeCacheEntries]Inst
}

// NewDecodeCache returns an empty decode cache.
func NewDecodeCache() *DecodeCache {
	return &DecodeCache{}
}

// Step is Step with fetch+decode served from the cache. Semantics and
// failure modes are identical to Step on immutable code.
func (c *DecodeCache) Step(s *State, m mem.Memory, res *StepResult) error {
	eip := s.EIP
	idx := eip & (decodeCacheEntries - 1)
	if c.tags[idx] == eip+1 {
		return stepDecoded(s, m, &c.insts[idx], res)
	}
	inst, err := fetchDecode(eip, m)
	if err != nil {
		return err
	}
	c.tags[idx] = eip + 1
	c.insts[idx] = inst
	return stepDecoded(s, m, &inst, res)
}
