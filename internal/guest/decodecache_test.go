package guest

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// decodeCacheX86Program builds a variable-length x86 program with a
// loop body covering several encodings and a data access.
func decodeCacheX86Program(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder()
	r := rand.New(rand.NewSource(7))
	b.Label("start")
	b.MovRI(EBP, int32(mem.GuestDataBase))
	b.MovRI(ECX, 300)
	b.Label("loop")
	b.AddRI(EAX, int32(r.Intn(1000)))
	b.XorRR(EAX, ECX)
	b.Store(EBP, 16, EAX)
	b.Load(EBX, EBP, 16)
	b.Shl(EBX, 3)
	b.TestRR(EBX, EBX)
	b.Jcc(CondS, "skip")
	b.Inc(ESI)
	b.Label("skip")
	b.Dec(ECX)
	b.CmpRI(ECX, 0)
	b.Jcc(CondG, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// decodeCacheRV32Program builds a fixed-length RV32I program with the
// same shape: an ALU-heavy loop, memory traffic, a conditional skip,
// and a call through jal/jalr.
func decodeCacheRV32Program(t *testing.T) *Program {
	t.Helper()
	b := NewRV32Builder()
	b.Li(8, int32(mem.GuestDataBase))
	b.Li(5, 300)
	b.Label("loop")
	b.Addi(10, 10, 37)
	b.Xor(10, 10, 5)
	b.Sw(10, 8, 16)
	b.Lw(11, 8, 16)
	b.Slli(11, 11, 3)
	b.Bge(11, 0, "skip")
	b.Addi(7, 7, 1)
	b.Label("skip")
	b.Jal(1, "leaf")
	b.Addi(5, 5, -1)
	b.Bne(5, 0, "loop")
	b.Ebreak()
	b.Label("leaf")
	b.Sra(12, 10, 5)
	b.Sltu(13, 12, 10)
	b.Jalr(0, 1, 0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func decodeCachePrograms(t *testing.T) map[string]*Program {
	return map[string]*Program{
		"x86":  decodeCacheX86Program(t),
		"rv32": decodeCacheRV32Program(t),
	}
}

// TestDecodeCacheStepMatchesStep locks the cached interpreter to the
// canonical semantics for every registered frontend: running the same
// program through ISA.Step and through DecodeCache.Step must produce
// identical states and StepResults at every instruction, including
// revisits that hit the cache.
func TestDecodeCacheStepMatchesStep(t *testing.T) {
	for name, p := range decodeCachePrograms(t) {
		t.Run(name, func(t *testing.T) {
			isa, err := ISAOf(p)
			if err != nil {
				t.Fatal(err)
			}
			m1, m2 := mem.NewSparse(), mem.NewSparse()
			s1 := p.LoadInto(m1)
			s2 := p.LoadInto(m2)
			dc := NewDecodeCache(isa)
			for step := 0; ; step++ {
				var r1, r2 StepResult
				err1 := isa.Step(&s1, m1, &r1)
				err2 := dc.Step(&s2, m2, &r2)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("step %d: errors diverge: %v vs %v", step, err1, err2)
				}
				if err1 != nil {
					break
				}
				if r1 != r2 {
					t.Fatalf("step %d: StepResult diverges:\n plain:  %+v\n cached: %+v", step, r1, r2)
				}
				if !s1.Equal(&s2) {
					t.Fatalf("step %d: state diverges: %s", step, s1.Diff(&s2))
				}
				if r1.Halted {
					break
				}
				if step > 1_000_000 {
					t.Fatal("program did not halt")
				}
			}
		})
	}
}

// TestDecodeCacheTagAliasing drives addresses that collide in the
// direct-mapped index and checks the full-EIP tag forces a re-decode
// instead of replaying the wrong instruction. For the fixed-length
// frontend the colliding addresses differ by exactly
// decodeCacheEntries<<InstShift, proving the shifted indexing is what
// makes them collide.
func TestDecodeCacheTagAliasing(t *testing.T) {
	t.Run("x86", func(t *testing.T) {
		m := mem.NewSparse()
		lo := mem.GuestCodeBase
		hi := lo + decodeCacheEntries // same index, different tag
		for _, enc := range []struct {
			addr uint32
			inst Inst
		}{
			{lo, Inst{Op: OpAddRI, R1: EAX, Imm: 5}},
			{hi, Inst{Op: OpSubRI, R1: EAX, Imm: 3}},
		} {
			for i, byt := range Encode(nil, enc.inst) {
				m.Write8(enc.addr+uint32(i), byt)
			}
		}
		dc := NewDecodeCache(X86)
		var s State
		var res StepResult
		for round := 0; round < 3; round++ {
			s = State{EIP: lo}
			if err := dc.Step(&s, m, &res); err != nil {
				t.Fatal(err)
			}
			want := s.Regs[EAX]
			s = State{EIP: hi, Regs: s.Regs}
			if err := dc.Step(&s, m, &res); err != nil {
				t.Fatal(err)
			}
			if got := s.Regs[EAX]; got != want-3 {
				t.Fatalf("round %d: colliding slot replayed stale instruction: eax=%d want %d", round, got, want-3)
			}
		}
	})

	t.Run("rv32", func(t *testing.T) {
		m := mem.NewSparse()
		lo := mem.GuestCodeBase
		hi := lo + decodeCacheEntries<<RV32.InstShift
		if (lo>>RV32.InstShift)&(decodeCacheEntries-1) != (hi>>RV32.InstShift)&(decodeCacheEntries-1) {
			t.Fatal("test bug: addresses do not collide under shifted indexing")
		}
		write := func(addr, word uint32) {
			for i := 0; i < 4; i++ {
				m.Write8(addr+uint32(i), byte(word>>(8*i)))
			}
		}
		write(lo, rv32EncI(5, 0, 0, 10, 0x13))         // addi x10, x0, 5
		write(hi, rv32EncI(-3&0xfff, 10, 0, 10, 0x13)) // addi x10, x10, -3
		dc := NewDecodeCache(RV32)
		var s State
		var res StepResult
		for round := 0; round < 3; round++ {
			s = State{EIP: lo}
			if err := dc.Step(&s, m, &res); err != nil {
				t.Fatal(err)
			}
			s.EIP = hi
			if err := dc.Step(&s, m, &res); err != nil {
				t.Fatal(err)
			}
			if got := s.Regs[10]; got != 2 {
				t.Fatalf("round %d: colliding slot replayed stale instruction: x10=%d want 2", round, got)
			}
		}
	})
}

// TestDecodeCacheFixedLengthIndexSpread checks that consecutive
// fixed-length instructions occupy consecutive cache slots rather than
// aliasing into every fourth one: a straight-line rv32 program longer
// than decodeCacheEntries/4 must still hit the cache on a second pass
// if the shifted indexing works (without the shift, instructions 0 and
// 2048 would collide).
func TestDecodeCacheFixedLengthIndexSpread(t *testing.T) {
	b := NewRV32Builder()
	const n = decodeCacheEntries/4 + 64 // > one quarter of the slots
	for i := 0; i < n; i++ {
		b.Addi(10, 10, 1)
	}
	b.Ebreak()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	s := p.LoadInto(m)
	dc := NewDecodeCache(RV32)
	var res StepResult
	for !res.Halted {
		if err := dc.Step(&s, m, &res); err != nil {
			t.Fatal(err)
		}
	}
	if s.Regs[10] != n {
		t.Fatalf("x10=%d want %d", s.Regs[10], n)
	}
	// Every instruction decoded once; a full second pass must be
	// served entirely from cache. Prove it by poisoning memory: a
	// cache hit never touches the encoding bytes.
	for i := range p.Code {
		m.Write8(mem.GuestCodeBase+uint32(i), 0xff)
	}
	s = State{EIP: p.Entry}
	res = StepResult{}
	for !res.Halted {
		if err := dc.Step(&s, m, &res); err != nil {
			t.Fatalf("second pass missed the cache (re-decoded poisoned bytes): %v", err)
		}
	}
	if s.Regs[10] != n {
		t.Fatalf("second pass: x10=%d want %d", s.Regs[10], n)
	}
}
