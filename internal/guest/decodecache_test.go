package guest

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestDecodeCacheStepMatchesStep locks the cached interpreter to the
// canonical semantics: running the same program through Step and
// through DecodeCache.Step must produce identical states and
// StepResults at every instruction, including revisits that hit the
// cache.
func TestDecodeCacheStepMatchesStep(t *testing.T) {
	b := NewBuilder()
	r := rand.New(rand.NewSource(7))
	b.Label("start")
	b.MovRI(EBP, int32(mem.GuestDataBase))
	b.MovRI(ECX, 300)
	b.Label("loop")
	// A body covering several encodings and a data access.
	b.AddRI(EAX, int32(r.Intn(1000)))
	b.XorRR(EAX, ECX)
	b.Store(EBP, 16, EAX)
	b.Load(EBX, EBP, 16)
	b.Shl(EBX, 3)
	b.TestRR(EBX, EBX)
	b.Jcc(CondS, "skip")
	b.Inc(ESI)
	b.Label("skip")
	b.Dec(ECX)
	b.CmpRI(ECX, 0)
	b.Jcc(CondG, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	m1, m2 := mem.NewSparse(), mem.NewSparse()
	s1 := p.LoadInto(m1)
	s2 := p.LoadInto(m2)
	dc := NewDecodeCache()
	for step := 0; ; step++ {
		var r1, r2 StepResult
		err1 := Step(&s1, m1, &r1)
		err2 := dc.Step(&s2, m2, &r2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: errors diverge: %v vs %v", step, err1, err2)
		}
		if err1 != nil {
			break
		}
		if r1 != r2 {
			t.Fatalf("step %d: StepResult diverges:\n plain:  %+v\n cached: %+v", step, r1, r2)
		}
		if !s1.Equal(&s2) {
			t.Fatalf("step %d: state diverges: %s", step, s1.Diff(&s2))
		}
		if r1.Halted {
			break
		}
		if step > 1_000_000 {
			t.Fatal("program did not halt")
		}
	}
}
