package guest

import (
	"errors"
	"fmt"
)

// Encoding formats. The guest ISA uses variable-length encodings from
// 1 to 7 bytes, exercising the variable-length decode path of the
// interpreter and translator the same way an x86 front end would.
//
//	fmt0     [op]                               1 byte
//	fmtRR    [op][r1<<4|r2]                     2 bytes
//	fmtShift [op][r1][imm8]                     3 bytes
//	fmtRel   [op][rel32]                        5 bytes
//	fmtRI    [op][r1][imm32]                    6 bytes
//	fmtMem   [op][r1<<4|rb][disp32]             6 bytes
//	fmtCC    [op][cond][rel32]                  6 bytes
//	fmtMemX  [op][r1<<4|rb][ri<<4|log2scale][disp32]  7 bytes
//
// Relative branch offsets are relative to the address of the following
// instruction, matching x86 semantics.

// ErrTruncated is returned when the byte buffer ends mid-instruction.
var ErrTruncated = errors.New("guest: truncated instruction")

// ErrBadOpcode is returned for undefined opcode bytes.
var ErrBadOpcode = errors.New("guest: undefined opcode")

// numX86Ops bounds the opcodes that exist in the x86 encoding. The
// RISC-family opcodes appended after it share the Inst form but have
// no x86 byte encoding; without this bound they would fall into the
// formatOf table's zero value (fmt0) and silently decode as one-byte
// instructions.
const numX86Ops = OpAdd3

type encFormat uint8

const (
	fmt0 encFormat = iota
	fmtRR
	fmtShift
	fmtRel
	fmtRI
	fmtMem
	fmtCC
	fmtMemX
)

var formatOf = [NumOps]encFormat{
	OpNop: fmt0, OpHalt: fmt0, OpRet: fmt0,

	OpMovRR: fmtRR, OpAddRR: fmtRR, OpSubRR: fmtRR, OpAndRR: fmtRR,
	OpOrRR: fmtRR, OpXorRR: fmtRR, OpCmpRR: fmtRR, OpTestRR: fmtRR,
	OpImulRR: fmtRR, OpDivRR: fmtRR,
	OpIncR: fmtRR, OpDecR: fmtRR, OpNegR: fmtRR, OpNotR: fmtRR,
	OpPushR: fmtRR, OpPopR: fmtRR,
	OpJmpInd: fmtRR, OpCallInd: fmtRR,
	OpFMovRR: fmtRR, OpFAdd: fmtRR, OpFSub: fmtRR, OpFMul: fmtRR,
	OpFDiv: fmtRR, OpFCmp: fmtRR, OpCvtIF: fmtRR, OpCvtFI: fmtRR,

	OpShlRI: fmtShift, OpShrRI: fmtShift, OpSarRI: fmtShift,

	OpJmp: fmtRel, OpCallRel: fmtRel,

	OpMovRI: fmtRI, OpAddRI: fmtRI, OpSubRI: fmtRI, OpAndRI: fmtRI,
	OpOrRI: fmtRI, OpXorRI: fmtRI, OpCmpRI: fmtRI,

	OpLoad: fmtMem, OpStore: fmtMem, OpLea: fmtMem,
	OpFLoad: fmtMem, OpFStore: fmtMem,

	OpJcc: fmtCC,

	OpLoadIdx: fmtMemX, OpStoreIdx: fmtMemX,
}

var formatSize = [...]uint8{
	fmt0: 1, fmtRR: 2, fmtShift: 3, fmtRel: 5, fmtRI: 6, fmtMem: 6,
	fmtCC: 6, fmtMemX: 7,
}

// SizeOf returns the encoded size in bytes of instructions with opcode op.
func SizeOf(op Op) int {
	if op >= numX86Ops {
		return 0
	}
	return int(formatSize[formatOf[op]])
}

// MaxInstSize is the longest guest instruction encoding in bytes.
const MaxInstSize = 7

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func log2scale(s uint8) uint8 {
	switch s {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	panic(fmt.Sprintf("guest: invalid scale %d", s))
}

// Encode appends the encoding of inst to dst and returns the extended
// slice. It panics on malformed instructions (invalid opcode, register
// out of range), which indicates a generator bug rather than bad input
// data.
func Encode(dst []byte, inst Inst) []byte {
	if inst.Op >= numX86Ops {
		panic(fmt.Sprintf("guest: encode opcode %d has no x86 encoding", inst.Op))
	}
	f := formatOf[inst.Op]
	var buf [MaxInstSize]byte
	buf[0] = byte(inst.Op)
	switch f {
	case fmt0:
	case fmtRR:
		// FP ops pack FP register numbers in the same nibbles; CvtIF and
		// CvtFI mix one integer and one FP register.
		hi, lo := uint8(inst.R1), uint8(inst.R2)
		switch inst.Op {
		case OpFMovRR, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp:
			hi, lo = uint8(inst.F1), uint8(inst.F2)
		case OpCvtIF:
			hi, lo = uint8(inst.F1), uint8(inst.R2)
		case OpCvtFI:
			hi, lo = uint8(inst.R1), uint8(inst.F2)
		}
		checkNibble(hi)
		checkNibble(lo)
		buf[1] = hi<<4 | lo
	case fmtShift:
		checkNibble(uint8(inst.R1))
		buf[1] = uint8(inst.R1)
		buf[2] = byte(inst.Imm)
	case fmtRel:
		put32(buf[1:], uint32(inst.Imm))
	case fmtRI:
		checkNibble(uint8(inst.R1))
		buf[1] = uint8(inst.R1)
		put32(buf[2:], uint32(inst.Imm))
	case fmtMem:
		hi := uint8(inst.R1)
		if inst.Op == OpFLoad || inst.Op == OpFStore {
			hi = uint8(inst.F1)
		}
		checkNibble(hi)
		checkNibble(uint8(inst.RB))
		buf[1] = hi<<4 | uint8(inst.RB)
		put32(buf[2:], uint32(inst.Imm))
	case fmtCC:
		if inst.Cond >= NumConds {
			panic(fmt.Sprintf("guest: encode invalid condition %d", inst.Cond))
		}
		buf[1] = byte(inst.Cond)
		put32(buf[2:], uint32(inst.Imm))
	case fmtMemX:
		checkNibble(uint8(inst.R1))
		checkNibble(uint8(inst.RB))
		checkNibble(uint8(inst.RI))
		buf[1] = uint8(inst.R1)<<4 | uint8(inst.RB)
		buf[2] = uint8(inst.RI)<<4 | log2scale(inst.Scale)
		put32(buf[3:], uint32(inst.Imm))
	}
	return append(dst, buf[:formatSize[f]]...)
}

func checkNibble(v uint8) {
	if v > 15 {
		panic(fmt.Sprintf("guest: register %d does not fit encoding", v))
	}
}

// Decode decodes the instruction at the start of b. The returned
// instruction's Size field is set to the number of bytes consumed.
func Decode(b []byte) (Inst, error) {
	if len(b) == 0 {
		return Inst{}, ErrTruncated
	}
	op := Op(b[0])
	if op >= numX86Ops {
		return Inst{}, fmt.Errorf("%w: byte %#02x", ErrBadOpcode, b[0])
	}
	f := formatOf[op]
	size := int(formatSize[f])
	if len(b) < size {
		return Inst{}, ErrTruncated
	}
	inst := Inst{Op: op, Size: uint8(size), Scale: 1}
	switch f {
	case fmt0:
	case fmtRR:
		hi, lo := b[1]>>4, b[1]&0xf
		switch op {
		case OpFMovRR, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp:
			inst.F1, inst.F2 = FReg(hi), FReg(lo)
			if hi >= NumFRegs || lo >= NumFRegs {
				return Inst{}, fmt.Errorf("guest: FP register out of range in %s", op)
			}
		case OpCvtIF:
			inst.F1, inst.R2 = FReg(hi), Reg(lo)
		case OpCvtFI:
			inst.R1, inst.F2 = Reg(hi), FReg(lo)
		default:
			inst.R1, inst.R2 = Reg(hi), Reg(lo)
		}
		if err := checkIntRegs(&inst); err != nil {
			return Inst{}, err
		}
	case fmtShift:
		inst.R1 = Reg(b[1])
		inst.Imm = int32(b[2])
		if err := checkIntRegs(&inst); err != nil {
			return Inst{}, err
		}
	case fmtRel:
		inst.Imm = int32(get32(b[1:]))
	case fmtRI:
		inst.R1 = Reg(b[1])
		inst.Imm = int32(get32(b[2:]))
		if err := checkIntRegs(&inst); err != nil {
			return Inst{}, err
		}
	case fmtMem:
		hi := b[1] >> 4
		if op == OpFLoad || op == OpFStore {
			inst.F1 = FReg(hi)
			if hi >= NumFRegs {
				return Inst{}, fmt.Errorf("guest: FP register out of range in %s", op)
			}
		} else {
			inst.R1 = Reg(hi)
		}
		inst.RB = Reg(b[1] & 0xf)
		inst.Imm = int32(get32(b[2:]))
		if err := checkIntRegs(&inst); err != nil {
			return Inst{}, err
		}
	case fmtCC:
		if Cond(b[1]) >= NumConds {
			return Inst{}, fmt.Errorf("guest: invalid condition byte %#02x", b[1])
		}
		inst.Cond = Cond(b[1])
		inst.Imm = int32(get32(b[2:]))
	case fmtMemX:
		inst.R1 = Reg(b[1] >> 4)
		inst.RB = Reg(b[1] & 0xf)
		inst.RI = Reg(b[2] >> 4)
		inst.Scale = 1 << (b[2] & 0x3)
		inst.Imm = int32(get32(b[3:]))
		if err := checkIntRegs(&inst); err != nil {
			return Inst{}, err
		}
	}
	return inst, nil
}

func checkIntRegs(i *Inst) error {
	if i.R1 >= NumRegs || i.R2 >= NumRegs || i.RB >= NumRegs || i.RI >= NumRegs {
		return fmt.Errorf("guest: register out of range in %s", i.Op)
	}
	return nil
}
