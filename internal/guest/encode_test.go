package guest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst produces a random but well-formed instruction for the given
// opcode, suitable for encode/decode round-trip testing.
func randInst(r *rand.Rand, op Op) Inst {
	inst := Inst{Op: op, Scale: 1}
	inst.R1 = Reg(r.Intn(NumRegs))
	inst.R2 = Reg(r.Intn(NumRegs))
	inst.RB = Reg(r.Intn(NumRegs))
	inst.RI = Reg(r.Intn(NumRegs))
	inst.F1 = FReg(r.Intn(NumFRegs))
	inst.F2 = FReg(r.Intn(NumFRegs))
	inst.Cond = Cond(r.Intn(int(NumConds)))
	inst.Imm = int32(r.Uint32())
	switch formatOf[op] {
	case fmt0:
		inst = Inst{Op: op, Scale: 1}
	case fmtShift:
		inst.Imm = int32(r.Intn(256))
	case fmtMemX:
		inst.Scale = 1 << r.Intn(4)
	}
	// Clear fields the format does not carry so round-trip equality holds.
	switch formatOf[op] {
	case fmtRR:
		inst.RB, inst.RI, inst.Imm = 0, 0, 0
		switch op {
		case OpFMovRR, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp:
			inst.R1, inst.R2 = 0, 0
		case OpCvtIF:
			inst.R1, inst.F2 = 0, 0
		case OpCvtFI:
			inst.R2, inst.F1 = 0, 0
		default:
			inst.F1, inst.F2 = 0, 0
		}
	case fmtShift:
		inst.R2, inst.RB, inst.RI, inst.F1, inst.F2 = 0, 0, 0, 0, 0
	case fmtRel:
		inst.R1, inst.R2, inst.RB, inst.RI, inst.F1, inst.F2 = 0, 0, 0, 0, 0, 0
	case fmtRI:
		inst.R2, inst.RB, inst.RI, inst.F1, inst.F2 = 0, 0, 0, 0, 0
	case fmtMem:
		inst.R2, inst.RI, inst.F2 = 0, 0, 0
		if op == OpFLoad || op == OpFStore {
			inst.R1 = 0
		} else {
			inst.F1 = 0
		}
	case fmtCC:
		inst.R1, inst.R2, inst.RB, inst.RI, inst.F1, inst.F2 = 0, 0, 0, 0, 0, 0
	case fmtMemX:
		inst.R2, inst.F1, inst.F2 = 0, 0, 0
	}
	if formatOf[op] != fmtCC {
		inst.Cond = 0
	}
	return inst
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for op := Op(0); op < numX86Ops; op++ {
		for trial := 0; trial < 64; trial++ {
			in := randInst(r, op)
			enc := Encode(nil, in)
			if len(enc) != SizeOf(op) {
				t.Fatalf("%s: encoded %d bytes, SizeOf says %d", op, len(enc), SizeOf(op))
			}
			out, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode error: %v (inst %+v)", op, err, in)
			}
			in.Size = uint8(len(enc))
			if in.Scale == 0 {
				in.Scale = 1
			}
			if out != in {
				t.Fatalf("%s: round trip mismatch:\n in=%+v\nout=%+v", op, in, out)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should fail")
	}
	if _, err := Decode([]byte{byte(NumOps)}); err == nil {
		t.Fatal("Decode of undefined opcode should fail")
	}
	// Truncated multi-byte instruction.
	if _, err := Decode([]byte{byte(OpMovRI), 0}); err != ErrTruncated {
		t.Fatalf("Decode truncated: err=%v, want ErrTruncated", err)
	}
	// Out-of-range condition byte.
	if _, err := Decode([]byte{byte(OpJcc), 0xff, 0, 0, 0, 0}); err == nil {
		t.Fatal("Decode of bad condition should fail")
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOfAllOpsPositive(t *testing.T) {
	for op := Op(0); op < numX86Ops; op++ {
		s := SizeOf(op)
		if s < 1 || s > MaxInstSize {
			t.Fatalf("SizeOf(%s) = %d", op, s)
		}
	}
	if SizeOf(NumOps) != 0 {
		t.Fatal("SizeOf of invalid op should be 0")
	}
	// The RISC-family opcodes have no x86 encoding: SizeOf reports 0
	// and Decode refuses their byte values.
	for op := numX86Ops; op < NumOps; op++ {
		if SizeOf(op) != 0 {
			t.Fatalf("SizeOf(%s) = %d, want 0 (no x86 encoding)", op, SizeOf(op))
		}
		if _, err := Decode([]byte{byte(op), 0, 0, 0, 0, 0, 0}); err == nil {
			t.Fatalf("Decode accepted RISC-family opcode byte %#02x", byte(op))
		}
	}
}

func TestVariableLengthEncodingSpread(t *testing.T) {
	// The ISA must actually be variable-length for the study to be
	// meaningful: verify at least 4 distinct sizes exist.
	sizes := map[int]bool{}
	for op := Op(0); op < numX86Ops; op++ {
		sizes[SizeOf(op)] = true
	}
	if len(sizes) < 4 {
		t.Fatalf("only %d distinct encoding sizes", len(sizes))
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < NumConds; c++ {
		n := c.Negate()
		if n.Negate() != c {
			t.Fatalf("double negate of %s = %s", c, n.Negate())
		}
		// On any flag value the two must disagree... except LE/G pairs
		// share flag inputs, so verify by exhaustive flag sweep.
		for _, f := range []uint32{0, FlagZF, FlagSF, FlagOF, FlagCF,
			FlagZF | FlagSF, FlagSF | FlagOF, FlagZF | FlagSF | FlagOF | FlagCF} {
			if c.Eval(f) == n.Eval(f) {
				t.Fatalf("cond %s and negation %s agree on flags %#x", c, n, f)
			}
		}
	}
}
