package guest

import (
	"fmt"
	"math"

	"repro/internal/mem"
)

// State is the guest architectural state: the integer register file
// (sized for the widest registered frontend; x86 uses the first eight,
// RV32I all sixteen), eight FP registers, the instruction pointer and
// the condition-flags register (always zero for flagless frontends).
type State struct {
	Regs  [MaxGuestRegs]uint32
	FRegs [NumFRegs]float64
	EIP   uint32
	Flags uint32
}

// Equal reports whether two states are architecturally identical.
func (s *State) Equal(o *State) bool {
	if s.EIP != o.EIP || s.Flags&FlagsMask != o.Flags&FlagsMask {
		return false
	}
	if s.Regs != o.Regs {
		return false
	}
	for i := range s.FRegs {
		a, b := s.FRegs[i], o.FRegs[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference
// between two states, or "" when equal. Used by the co-simulation state
// checker to produce actionable divergence reports.
func (s *State) Diff(o *State) string {
	if s.EIP != o.EIP {
		return fmt.Sprintf("eip: %#x vs %#x", s.EIP, o.EIP)
	}
	for i := range s.Regs {
		if s.Regs[i] != o.Regs[i] {
			return fmt.Sprintf("%s: %#x vs %#x", Reg(i), s.Regs[i], o.Regs[i])
		}
	}
	if s.Flags&FlagsMask != o.Flags&FlagsMask {
		return fmt.Sprintf("flags: %#x vs %#x", s.Flags&FlagsMask, o.Flags&FlagsMask)
	}
	for i := range s.FRegs {
		a, b := s.FRegs[i], o.FRegs[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return fmt.Sprintf("f%d: %v vs %v", i, a, b)
		}
	}
	return ""
}

// StepResult describes the outcome of executing one guest instruction.
type StepResult struct {
	Inst    Inst
	Halted  bool
	MemAddr uint32 // effective address of a data access, if any
	IsLoad  bool
	IsStore bool
	Taken   bool   // for branches: whether control transferred
	Target  uint32 // for taken branches: the new EIP
}

// Step executes one instruction at s.EIP against memory m, updating the
// state in place. This function is the canonical guest semantics; the
// authoritative emulator uses it directly, and translated code is
// verified against it by co-simulation.
//
// Division by zero yields an all-ones quotient rather than a fault: the
// modeled system skips exception handling (as the paper's infrastructure
// does for non user-level events), so semantics are defined totally.
//
// Hot per-instruction loops should prefer DecodeCache.Step, which
// executes the same semantics but skips re-fetching and re-decoding
// instruction bytes already seen.
func Step(s *State, m mem.Memory, res *StepResult) error {
	inst, err := fetchDecode(s.EIP, m)
	if err != nil {
		return err
	}
	return stepDecoded(s, m, &inst, res)
}

// fetchDecode reads and decodes the instruction at eip — the shared
// front half of Step and DecodeCache.Step.
func fetchDecode(eip uint32, m mem.Memory) (Inst, error) {
	var buf [MaxInstSize]byte
	for i := range buf {
		buf[i] = m.Read8(eip + uint32(i))
	}
	inst, err := Decode(buf[:])
	if err != nil {
		return inst, fmt.Errorf("at eip=%#x: %w", eip, err)
	}
	return inst, nil
}

// stepDecoded executes one already-decoded instruction at s.EIP. It is
// the shared back half of Step and DecodeCache.Step: everything after
// fetch+decode, so cached and uncached execution are one code path.
func stepDecoded(s *State, m mem.Memory, instp *Inst, res *StepResult) error {
	inst := *instp
	*res = StepResult{Inst: inst}
	next := s.EIP + uint32(inst.Size)

	switch inst.Op {
	case OpNop:
	case OpHalt:
		res.Halted = true
		return nil // EIP stays at the halt instruction

	case OpMovRR:
		s.Regs[inst.R1] = s.Regs[inst.R2]
	case OpMovRI:
		s.Regs[inst.R1] = uint32(inst.Imm)
	case OpLea:
		s.Regs[inst.R1] = s.Regs[inst.RB] + uint32(inst.Imm)

	case OpLoad:
		addr := s.Regs[inst.RB] + uint32(inst.Imm)
		s.Regs[inst.R1] = m.Read32(addr)
		res.MemAddr, res.IsLoad = addr, true
	case OpStore:
		addr := s.Regs[inst.RB] + uint32(inst.Imm)
		m.Write32(addr, s.Regs[inst.R1])
		res.MemAddr, res.IsStore = addr, true
	case OpLoadIdx:
		addr := s.Regs[inst.RB] + s.Regs[inst.RI]*uint32(inst.Scale) + uint32(inst.Imm)
		s.Regs[inst.R1] = m.Read32(addr)
		res.MemAddr, res.IsLoad = addr, true
	case OpStoreIdx:
		addr := s.Regs[inst.RB] + s.Regs[inst.RI]*uint32(inst.Scale) + uint32(inst.Imm)
		m.Write32(addr, s.Regs[inst.R1])
		res.MemAddr, res.IsStore = addr, true

	case OpAddRR, OpAddRI:
		a := s.Regs[inst.R1]
		b := aluSrc(s, &inst)
		r := a + b
		s.Regs[inst.R1] = r
		s.Flags = addFlags(a, b, r)
	case OpSubRR, OpSubRI:
		a := s.Regs[inst.R1]
		b := aluSrc(s, &inst)
		r := a - b
		s.Regs[inst.R1] = r
		s.Flags = subFlags(a, b, r)
	case OpCmpRR, OpCmpRI:
		a := s.Regs[inst.R1]
		b := aluSrc(s, &inst)
		s.Flags = subFlags(a, b, a-b)
	case OpAndRR, OpAndRI:
		r := s.Regs[inst.R1] & aluSrc(s, &inst)
		s.Regs[inst.R1] = r
		s.Flags = logicFlags(r)
	case OpOrRR, OpOrRI:
		r := s.Regs[inst.R1] | aluSrc(s, &inst)
		s.Regs[inst.R1] = r
		s.Flags = logicFlags(r)
	case OpXorRR, OpXorRI:
		r := s.Regs[inst.R1] ^ aluSrc(s, &inst)
		s.Regs[inst.R1] = r
		s.Flags = logicFlags(r)
	case OpTestRR:
		s.Flags = logicFlags(s.Regs[inst.R1] & s.Regs[inst.R2])
	case OpImulRR:
		a, b := int32(s.Regs[inst.R1]), int32(s.Regs[inst.R2])
		s.Regs[inst.R1] = uint32(a * b)
		s.Flags = mulFlags(a, b)
	case OpDivRR:
		d := s.Regs[inst.R2]
		if d == 0 {
			s.Regs[inst.R1] = 0xffff_ffff
		} else {
			s.Regs[inst.R1] /= d
		}
		// Flags unchanged (defined, unlike x86's "undefined").

	case OpIncR:
		r := s.Regs[inst.R1] + 1
		s.Regs[inst.R1] = r
		s.Flags = incFlags(s.Flags, r)
	case OpDecR:
		r := s.Regs[inst.R1] - 1
		s.Regs[inst.R1] = r
		s.Flags = decFlags(s.Flags, r)
	case OpNegR:
		a := s.Regs[inst.R1]
		r := -a
		s.Regs[inst.R1] = r
		s.Flags = negFlags(a, r)
	case OpNotR:
		s.Regs[inst.R1] = ^s.Regs[inst.R1]

	case OpShlRI:
		c := uint32(inst.Imm) & 31
		if c != 0 {
			a := s.Regs[inst.R1]
			r := a << c
			s.Regs[inst.R1] = r
			s.Flags = shlFlags(a, c, r)
		}
	case OpShrRI:
		c := uint32(inst.Imm) & 31
		if c != 0 {
			a := s.Regs[inst.R1]
			r := a >> c
			s.Regs[inst.R1] = r
			s.Flags = shrFlags(a, c, r)
		}
	case OpSarRI:
		c := uint32(inst.Imm) & 31
		if c != 0 {
			a := s.Regs[inst.R1]
			r := uint32(int32(a) >> c)
			s.Regs[inst.R1] = r
			s.Flags = shrFlags(a, c, r)
		}

	case OpPushR:
		s.Regs[ESP] -= 4
		m.Write32(s.Regs[ESP], s.Regs[inst.R1])
		res.MemAddr, res.IsStore = s.Regs[ESP], true
	case OpPopR:
		res.MemAddr, res.IsLoad = s.Regs[ESP], true
		s.Regs[inst.R1] = m.Read32(s.Regs[ESP])
		s.Regs[ESP] += 4

	case OpJmp:
		next = next + uint32(inst.Imm)
		res.Taken = true
	case OpJcc:
		if inst.Cond.Eval(s.Flags) {
			next = next + uint32(inst.Imm)
			res.Taken = true
		}
	case OpJmpInd:
		next = s.Regs[inst.R1]
		res.Taken = true
	case OpCallRel:
		s.Regs[ESP] -= 4
		m.Write32(s.Regs[ESP], next)
		res.MemAddr, res.IsStore = s.Regs[ESP], true
		next = next + uint32(inst.Imm)
		res.Taken = true
	case OpCallInd:
		target := s.Regs[inst.R1]
		s.Regs[ESP] -= 4
		m.Write32(s.Regs[ESP], next)
		res.MemAddr, res.IsStore = s.Regs[ESP], true
		next = target
		res.Taken = true
	case OpRet:
		res.MemAddr, res.IsLoad = s.Regs[ESP], true
		next = m.Read32(s.Regs[ESP])
		s.Regs[ESP] += 4
		res.Taken = true

	case OpFLoad:
		addr := s.Regs[inst.RB] + uint32(inst.Imm)
		s.FRegs[inst.F1] = math.Float64frombits(m.Read64(addr))
		res.MemAddr, res.IsLoad = addr, true
	case OpFStore:
		addr := s.Regs[inst.RB] + uint32(inst.Imm)
		m.Write64(addr, math.Float64bits(s.FRegs[inst.F1]))
		res.MemAddr, res.IsStore = addr, true
	case OpFMovRR:
		s.FRegs[inst.F1] = s.FRegs[inst.F2]
	case OpFAdd:
		s.FRegs[inst.F1] += s.FRegs[inst.F2]
	case OpFSub:
		s.FRegs[inst.F1] -= s.FRegs[inst.F2]
	case OpFMul:
		s.FRegs[inst.F1] *= s.FRegs[inst.F2]
	case OpFDiv:
		s.FRegs[inst.F1] /= s.FRegs[inst.F2]
	case OpFCmp:
		s.Flags = fcmpFlags(s.FRegs[inst.F1], s.FRegs[inst.F2])
	case OpCvtIF:
		s.FRegs[inst.F1] = float64(int32(s.Regs[inst.R2]))
	case OpCvtFI:
		s.Regs[inst.R1] = uint32(clampToI32(s.FRegs[inst.F2]))

	case OpAdd3:
		setRISC(s, inst.R1, s.Regs[inst.R2]+s.Regs[inst.RB])
	case OpSub3:
		setRISC(s, inst.R1, s.Regs[inst.R2]-s.Regs[inst.RB])
	case OpAnd3:
		setRISC(s, inst.R1, s.Regs[inst.R2]&s.Regs[inst.RB])
	case OpOr3:
		setRISC(s, inst.R1, s.Regs[inst.R2]|s.Regs[inst.RB])
	case OpXor3:
		setRISC(s, inst.R1, s.Regs[inst.R2]^s.Regs[inst.RB])
	case OpSll3:
		setRISC(s, inst.R1, s.Regs[inst.R2]<<(s.Regs[inst.RB]&31))
	case OpSrl3:
		setRISC(s, inst.R1, s.Regs[inst.R2]>>(s.Regs[inst.RB]&31))
	case OpSra3:
		setRISC(s, inst.R1, uint32(int32(s.Regs[inst.R2])>>(s.Regs[inst.RB]&31)))
	case OpSlt3:
		setRISC(s, inst.R1, b2u(int32(s.Regs[inst.R2]) < int32(s.Regs[inst.RB])))
	case OpSltu3:
		setRISC(s, inst.R1, b2u(s.Regs[inst.R2] < s.Regs[inst.RB]))

	case OpAddI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]+uint32(inst.Imm))
	case OpAndI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]&uint32(inst.Imm))
	case OpOrI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]|uint32(inst.Imm))
	case OpXorI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]^uint32(inst.Imm))
	case OpSllI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]<<(uint32(inst.Imm)&31))
	case OpSrlI3:
		setRISC(s, inst.R1, s.Regs[inst.R2]>>(uint32(inst.Imm)&31))
	case OpSraI3:
		setRISC(s, inst.R1, uint32(int32(s.Regs[inst.R2])>>(uint32(inst.Imm)&31)))
	case OpSltI3:
		setRISC(s, inst.R1, b2u(int32(s.Regs[inst.R2]) < inst.Imm))
	case OpSltuI3:
		setRISC(s, inst.R1, b2u(s.Regs[inst.R2] < uint32(inst.Imm)))

	case OpBcc:
		if inst.Cond.EvalCmp(s.Regs[inst.R1], s.Regs[inst.R2]) {
			next = next + uint32(inst.Imm)
			res.Taken = true
		}
	case OpJal:
		setRISC(s, inst.R1, next)
		next = next + uint32(inst.Imm)
		res.Taken = true
	case OpJalr:
		target := (s.Regs[inst.R2] + uint32(inst.Imm)) &^ 1
		setRISC(s, inst.R1, next)
		next = target
		res.Taken = true

	default:
		return fmt.Errorf("guest: unimplemented opcode %s at eip=%#x", inst.Op, s.EIP)
	}

	if res.Taken {
		res.Target = next
	}
	s.EIP = next
	return nil
}

// clampToI32 truncates a float64 toward zero with x86-style saturation
// to the indefinite value on overflow or NaN.
func clampToI32(f float64) int32 {
	if f != f || f >= math.MaxInt32+1 || f < math.MinInt32 {
		return math.MinInt32
	}
	return int32(f)
}

// setRISC writes a RISC-family destination register, discarding writes
// to the hardwired zero x0 — the one register-file rule the shared IR
// carries for the RV32I frontend.
func setRISC(s *State, r Reg, v uint32) {
	if r != 0 {
		s.Regs[r] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func aluSrc(s *State, inst *Inst) uint32 {
	switch inst.Op {
	case OpAddRR, OpSubRR, OpAndRR, OpOrRR, OpXorRR, OpCmpRR:
		return s.Regs[inst.R2]
	default:
		return uint32(inst.Imm)
	}
}
