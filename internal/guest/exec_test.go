package guest

import (
	"testing"

	"repro/internal/mem"
)

// run assembles the program built by fn, executes it to completion on a
// fresh state/memory, and returns the final state and memory.
func run(t *testing.T, fn func(b *Builder)) (*State, *mem.Sparse) {
	t.Helper()
	b := NewBuilder()
	fn(b)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := mem.NewSparse()
	s := p.LoadInto(m)
	var res StepResult
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("program did not halt")
		}
		if err := Step(&s, m, &res); err != nil {
			t.Fatalf("step: %v", err)
		}
		if res.Halted {
			return &s, m
		}
	}
}

func TestMovAndALU(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 10)
		b.MovRI(EBX, 3)
		b.MovRR(ECX, EAX)  // ecx = 10
		b.AddRR(ECX, EBX)  // ecx = 13
		b.SubRI(ECX, 1)    // ecx = 12
		b.ImulRR(ECX, EBX) // ecx = 36
		b.DivRR(ECX, EBX)  // ecx = 12
		b.Halt()
	})
	if s.Regs[ECX] != 12 {
		t.Fatalf("ecx = %d, want 12", s.Regs[ECX])
	}
}

func TestFlagsAddSub(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, -1)
		b.AddRI(EAX, 1) // 0: ZF, CF set
		b.Halt()
	})
	if s.Flags&FlagZF == 0 {
		t.Error("ZF not set after -1+1")
	}
	if s.Flags&FlagCF == 0 {
		t.Error("CF not set after 0xffffffff+1")
	}
	if s.Flags&FlagOF != 0 {
		t.Error("OF wrongly set after -1+1")
	}

	s, _ = run(t, func(b *Builder) {
		b.MovRI(EAX, 0x7fffffff)
		b.AddRI(EAX, 1) // signed overflow
		b.Halt()
	})
	if s.Flags&FlagOF == 0 {
		t.Error("OF not set after INT_MAX+1")
	}
	if s.Flags&FlagSF == 0 {
		t.Error("SF not set after INT_MAX+1")
	}
}

func TestFlagsCmpBranches(t *testing.T) {
	// For each (a, b, cond, expected) check the branch direction.
	cases := []struct {
		a, b int32
		c    Cond
		take bool
	}{
		{5, 5, CondE, true},
		{5, 4, CondE, false},
		{5, 4, CondNE, true},
		{-3, 2, CondL, true},
		{2, -3, CondL, false},
		{2, -3, CondG, true},
		{-3, -3, CondLE, true},
		{-3, -3, CondGE, true},
		{1, 2, CondB, true},   // unsigned below
		{-1, 2, CondB, false}, // 0xffffffff not below 2
		{-1, 2, CondAE, true},
		{-5, 0, CondS, true},
		{5, 0, CondNS, true},
	}
	for _, tc := range cases {
		s, _ := run(t, func(b *Builder) {
			b.MovRI(EAX, tc.a)
			b.MovRI(EBX, tc.b)
			b.MovRI(ECX, 0)
			b.CmpRR(EAX, EBX)
			b.Jcc(tc.c, "taken")
			b.Jmp("done")
			b.Label("taken")
			b.MovRI(ECX, 1)
			b.Label("done")
			b.Halt()
		})
		got := s.Regs[ECX] == 1
		if got != tc.take {
			t.Errorf("cmp(%d,%d) j%s: taken=%v, want %v", tc.a, tc.b, tc.c, got, tc.take)
		}
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, -1)
		b.AddRI(EAX, 1) // sets CF
		b.Inc(EBX)      // must preserve CF
		b.Halt()
	})
	if s.Flags&FlagCF == 0 {
		t.Error("INC clobbered CF")
	}
	if s.Flags&FlagZF != 0 {
		t.Error("INC should have cleared ZF (ebx=1)")
	}
}

func TestShifts(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 1)
		b.Shl(EAX, 4) // 16
		b.MovRI(EBX, -16)
		b.Sar(EBX, 2) // -4
		b.MovRI(ECX, -16)
		b.Shr(ECX, 28) // logical: 0xF
		b.Halt()
	})
	if s.Regs[EAX] != 16 {
		t.Errorf("shl: %d", s.Regs[EAX])
	}
	if int32(s.Regs[EBX]) != -4 {
		t.Errorf("sar: %d", int32(s.Regs[EBX]))
	}
	if s.Regs[ECX] != 0xF {
		t.Errorf("shr: %#x", s.Regs[ECX])
	}
}

func TestMemoryOps(t *testing.T) {
	s, m := run(t, func(b *Builder) {
		b.MovRI(EBP, int32(mem.GuestDataBase))
		b.MovRI(EAX, 0x1234)
		b.Store(EBP, 8, EAX)
		b.Load(EBX, EBP, 8)
		b.MovRI(ESI, 2)
		b.MovRI(EDX, 0x99)
		b.StoreIdx(EBP, ESI, 4, 0, EDX) // [ebp+8] = 0x99
		b.LoadIdx(EDI, EBP, ESI, 4, 0)
		b.Halt()
	})
	if s.Regs[EBX] != 0x1234 {
		t.Errorf("load: %#x", s.Regs[EBX])
	}
	if s.Regs[EDI] != 0x99 {
		t.Errorf("loadidx: %#x", s.Regs[EDI])
	}
	if got := m.Read32(mem.GuestDataBase + 8); got != 0x99 {
		t.Errorf("mem: %#x", got)
	}
}

func TestPushPop(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 111)
		b.MovRI(EBX, 222)
		b.Push(EAX)
		b.Push(EBX)
		b.Pop(ECX) // 222
		b.Pop(EDX) // 111
		b.Halt()
	})
	if s.Regs[ECX] != 222 || s.Regs[EDX] != 111 {
		t.Fatalf("push/pop: ecx=%d edx=%d", s.Regs[ECX], s.Regs[EDX])
	}
	if s.Regs[ESP] != mem.GuestStackTop {
		t.Fatalf("esp not restored: %#x", s.Regs[ESP])
	}
}

func TestCallRet(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.Label("start")
		b.MovRI(EAX, 1)
		b.Call("fn")
		b.AddRI(EAX, 100) // after return: 1*2+100 = 102
		b.Halt()
		b.Label("fn")
		b.AddRR(EAX, EAX)
		b.Ret()
	})
	if s.Regs[EAX] != 102 {
		t.Fatalf("eax = %d, want 102", s.Regs[EAX])
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.Label("start")
		b.MovLabel(EAX, "target")
		b.JmpInd(EAX)
		b.MovRI(EBX, 999) // skipped
		b.Halt()
		b.Label("target")
		b.MovRI(EBX, 7)
		b.MovLabel(ECX, "fn")
		b.CallInd(ECX)
		b.Halt()
		b.Label("fn")
		b.AddRI(EBX, 1)
		b.Ret()
	})
	if s.Regs[EBX] != 8 {
		t.Fatalf("ebx = %d, want 8", s.Regs[EBX])
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 via a loop; exercises CMP/JCC back edges.
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 0) // sum
		b.MovRI(ECX, 1) // i
		b.Label("loop")
		b.AddRR(EAX, ECX)
		b.Inc(ECX)
		b.CmpRI(ECX, 101)
		b.Jcc(CondNE, "loop")
		b.Halt()
	})
	if s.Regs[EAX] != 5050 {
		t.Fatalf("sum = %d, want 5050", s.Regs[EAX])
	}
}

func TestFloatingPoint(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 7)
		b.CvtIF(0, EAX) // f0 = 7.0
		b.MovRI(EBX, 2)
		b.CvtIF(1, EBX) // f1 = 2.0
		b.FMov(2, 0)
		b.FDiv(2, 1)    // f2 = 3.5
		b.FAdd(0, 1)    // f0 = 9.0
		b.FMul(0, 1)    // f0 = 18.0
		b.FSub(0, 1)    // f0 = 16.0
		b.CvtFI(ECX, 2) // ecx = 3 (truncated)
		b.MovRI(EBP, int32(mem.GuestDataBase))
		b.FStore(EBP, 0, 0)
		b.FLoad(3, EBP, 0)
		b.CvtFI(EDX, 3) // edx = 16
		b.Halt()
	})
	if s.Regs[ECX] != 3 {
		t.Errorf("cvtfi trunc = %d, want 3", s.Regs[ECX])
	}
	if s.Regs[EDX] != 16 {
		t.Errorf("fp store/load = %d, want 16", s.Regs[EDX])
	}
}

func TestFCmpFlags(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 1)
		b.CvtIF(0, EAX)
		b.MovRI(EBX, 2)
		b.CvtIF(1, EBX)
		b.MovRI(ECX, 0)
		b.FCmp(0, 1) // 1 < 2: CF
		b.Jcc(CondB, "less")
		b.Jmp("done")
		b.Label("less")
		b.MovRI(ECX, 1)
		b.Label("done")
		b.Halt()
	})
	if s.Regs[ECX] != 1 {
		t.Fatal("fcmp/jb did not take less path")
	}
}

func TestDivByZeroDefined(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 5)
		b.MovRI(EBX, 0)
		b.DivRR(EAX, EBX)
		b.Halt()
	})
	if s.Regs[EAX] != 0xffff_ffff {
		t.Fatalf("div by zero = %#x, want all-ones", s.Regs[EAX])
	}
}

func TestNegNot(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EAX, 5)
		b.Neg(EAX) // -5
		b.MovRI(EBX, 0)
		b.Not(EBX) // 0xffffffff
		b.Halt()
	})
	if int32(s.Regs[EAX]) != -5 {
		t.Errorf("neg: %d", int32(s.Regs[EAX]))
	}
	if s.Regs[EBX] != 0xffff_ffff {
		t.Errorf("not: %#x", s.Regs[EBX])
	}
	if s.Flags&FlagCF == 0 {
		t.Error("neg of nonzero should set CF")
	}
}

func TestLea(t *testing.T) {
	s, _ := run(t, func(b *Builder) {
		b.MovRI(EBX, 100)
		b.MovRI(EAX, -1)
		b.AddRI(EAX, 1) // set CF+ZF
		b.Lea(ECX, EBX, 28)
		b.Halt()
	})
	if s.Regs[ECX] != 128 {
		t.Errorf("lea: %d", s.Regs[ECX])
	}
	if s.Flags&FlagZF == 0 {
		t.Error("lea must not clobber flags")
	}
}

func TestStateEqualAndDiff(t *testing.T) {
	var a, b State
	if !a.Equal(&b) || a.Diff(&b) != "" {
		t.Fatal("zero states should be equal")
	}
	b.Regs[EDX] = 1
	if a.Equal(&b) {
		t.Fatal("states differ in edx")
	}
	if d := a.Diff(&b); d == "" {
		t.Fatal("Diff should report edx")
	}
	b = a
	b.Flags = FlagZF
	if a.Equal(&b) {
		t.Fatal("states differ in flags")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label should fail Build")
	}

	b = NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label should fail Build")
	}
}

func TestBuilderAddrOf(t *testing.T) {
	b := NewBuilder()
	b.Nop() // 1 byte
	b.Label("l")
	b.Halt()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	addr, ok := b.AddrOf("l")
	if !ok || addr != mem.GuestCodeBase+1 {
		t.Fatalf("AddrOf(l) = %#x, %v", addr, ok)
	}
}

func TestHaltKeepsEIP(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	p := b.MustBuild()
	m := mem.NewSparse()
	s := p.LoadInto(m)
	var res StepResult
	if err := Step(&s, m, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("expected halt")
	}
	if s.EIP != p.Entry {
		t.Fatalf("EIP moved past halt: %#x", s.EIP)
	}
}
