package guest

import "math/bits"

// Flag computation mirrors x86 semantics for the subset of flags the
// guest ISA defines (CF, PF, ZF, SF, OF). Translating a flag-writing
// instruction is substantially more expensive than translating a plain
// move — the cost asymmetry the paper calls out when explaining why TOL
// performance depends on the guest instruction mix.

// parity returns FlagPF if the low byte of v has even parity (x86 PF).
func parity(v uint32) uint32 {
	if bits.OnesCount8(uint8(v))%2 == 0 {
		return FlagPF
	}
	return 0
}

// szpFlags computes SF, ZF and PF of a result.
func szpFlags(res uint32) uint32 {
	f := parity(res)
	if res == 0 {
		f |= FlagZF
	}
	if int32(res) < 0 {
		f |= FlagSF
	}
	return f
}

// addFlags computes the full flag set of a+b=res.
func addFlags(a, b, res uint32) uint32 {
	f := szpFlags(res)
	if res < a {
		f |= FlagCF
	}
	// Overflow: operands same sign, result different sign.
	if (a^b)&0x8000_0000 == 0 && (a^res)&0x8000_0000 != 0 {
		f |= FlagOF
	}
	return f
}

// subFlags computes the full flag set of a-b=res.
func subFlags(a, b, res uint32) uint32 {
	f := szpFlags(res)
	if a < b {
		f |= FlagCF
	}
	// Overflow: operands different sign, result sign differs from a.
	if (a^b)&0x8000_0000 != 0 && (a^res)&0x8000_0000 != 0 {
		f |= FlagOF
	}
	return f
}

// logicFlags computes the flag set of a logical operation: CF=OF=0.
func logicFlags(res uint32) uint32 { return szpFlags(res) }

// incFlags computes the flags of INC (CF preserved from old flags).
func incFlags(old uint32, res uint32) uint32 {
	f := szpFlags(res) | old&FlagCF
	if res == 0x8000_0000 {
		f |= FlagOF
	}
	return f
}

// decFlags computes the flags of DEC (CF preserved from old flags).
func decFlags(old uint32, res uint32) uint32 {
	f := szpFlags(res) | old&FlagCF
	if res == 0x7fff_ffff {
		f |= FlagOF
	}
	return f
}

// negFlags computes the flags of NEG: CF set unless operand was zero.
func negFlags(a, res uint32) uint32 {
	f := szpFlags(res)
	if a != 0 {
		f |= FlagCF
	}
	if a == 0x8000_0000 {
		f |= FlagOF
	}
	return f
}

// shlFlags computes flags of a left shift by count (count in 1..31).
func shlFlags(a uint32, count uint32, res uint32) uint32 {
	f := szpFlags(res)
	if a&(1<<(32-count)) != 0 {
		f |= FlagCF
	}
	return f
}

// shrFlags computes flags of a logical/arithmetic right shift.
func shrFlags(a uint32, count uint32, res uint32) uint32 {
	f := szpFlags(res)
	if a&(1<<(count-1)) != 0 {
		f |= FlagCF
	}
	return f
}

// mulFlags computes flags of a signed 32x32 multiply: SF/ZF/PF follow
// the truncated result and CF=OF=0. This deviates from x86 (which sets
// CF/OF on overflow, leaving SZP undefined) because the host ISA has no
// high-multiply to detect overflow cheaply; defining the flags this way
// gives the translation a precise, testable contract.
func mulFlags(a, b int32) uint32 {
	return szpFlags(uint32(a * b))
}

// fcmpFlags computes flags of an FP compare, following x86 FCOMI:
// ZF if equal, CF if less, both if unordered; SF=OF=0; PF on unordered.
func fcmpFlags(a, b float64) uint32 {
	switch {
	case a != a || b != b: // NaN: unordered
		return FlagZF | FlagCF | FlagPF
	case a == b:
		return FlagZF
	case a < b:
		return FlagCF
	}
	return 0
}
