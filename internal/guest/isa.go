// Package guest defines the guest-visible side of the co-designed
// processor: a shared decoded instruction form (Inst) that every guest
// frontend lowers into, the canonical architectural semantics over that
// form (Step), and the pluggable ISA registry (see isaspec.go) through
// which frontends supply decoding, encoding metadata and register-file
// descriptions.
//
// Two frontends are in-tree. The original x86-like CISC ISA (this
// file plus encode.go) has eight general-purpose registers, a
// condition-flags register with x86 bit positions, a small
// floating-point register file, variable-length encodings, and both
// direct and indirect control flow. The RV32I frontend (rv32.go) has
// sixteen integer registers with a hardwired-zero x0, fixed four-byte
// encodings, and no flags register — conditional control flow is
// compare-and-branch, decoded into the RISC-family opcodes below.
//
// The canonical semantics are used both by the authoritative
// functional emulator (the reference component of the simulation
// infrastructure) and as the reference against which translations are
// verified by co-simulation.
package guest

import "fmt"

// Reg is a guest general-purpose register.
type Reg uint8

// Guest general-purpose registers, named after their x86 counterparts.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	NumRegs = 8
)

// MaxGuestRegs is the widest integer register file any registered
// frontend exposes (RV32I's sixteen; x86 uses the first eight). State
// and the optimizer's per-register tables are sized by it.
const MaxGuestRegs = 16

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// FReg is a guest floating-point register (F0..F7).
type FReg uint8

// NumFRegs is the number of guest floating-point registers.
const NumFRegs = 8

func (f FReg) String() string { return fmt.Sprintf("f%d", uint8(f)) }

// Condition-flag bit positions follow the x86 EFLAGS layout.
const (
	FlagCF uint32 = 1 << 0  // carry
	FlagPF uint32 = 1 << 2  // parity (of low result byte)
	FlagZF uint32 = 1 << 6  // zero
	FlagSF uint32 = 1 << 7  // sign
	FlagOF uint32 = 1 << 11 // signed overflow
)

// FlagsMask selects the architecturally observable flag bits. PF is
// computed by the reference semantics for completeness but no condition
// code reads it, so it is excluded from state comparison and the
// translator does not materialize it (the same shortcut production x86
// translators take, since parity consumers are vanishingly rare).
const FlagsMask = FlagCF | FlagZF | FlagSF | FlagOF

// Cond is a branch condition evaluated against the flags register.
type Cond uint8

// Branch conditions, mirroring x86 Jcc semantics.
const (
	CondE  Cond = iota // equal: ZF
	CondNE             // not equal: !ZF
	CondL              // signed less: SF != OF
	CondGE             // signed greater-or-equal: SF == OF
	CondLE             // signed less-or-equal: ZF || SF != OF
	CondG              // signed greater: !ZF && SF == OF
	CondB              // unsigned below: CF
	CondAE             // unsigned above-or-equal: !CF
	CondS              // sign: SF
	CondNS             // not sign: !SF
	NumConds
)

var condNames = [NumConds]string{"e", "ne", "l", "ge", "le", "g", "b", "ae", "s", "ns"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond?%d", uint8(c))
}

// Eval reports whether the condition holds for the given flags value.
func (c Cond) Eval(flags uint32) bool {
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	cf := flags&FlagCF != 0
	switch c {
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondL:
		return sf != of
	case CondGE:
		return sf == of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondS:
		return sf
	case CondNS:
		return !sf
	}
	panic(fmt.Sprintf("guest: invalid condition %d", c))
}

// EvalCmp evaluates the condition directly on two register values, the
// compare-and-branch semantics of OpBcc. Only the six conditions RV32I
// branches map to are defined (beq, bne, blt, bge, bltu, bgeu).
func (c Cond) EvalCmp(a, b uint32) bool {
	switch c {
	case CondE:
		return a == b
	case CondNE:
		return a != b
	case CondL:
		return int32(a) < int32(b)
	case CondGE:
		return int32(a) >= int32(b)
	case CondB:
		return a < b
	case CondAE:
		return a >= b
	}
	panic(fmt.Sprintf("guest: condition %s has no compare-and-branch form", c))
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	// Conditions are laid out in complementary pairs.
	if c&1 == 0 {
		return c + 1
	}
	return c - 1
}

// Op is a guest opcode.
type Op uint8

// Guest opcodes. Encoded sizes vary from 1 to 7 bytes; see encode.go.
const (
	OpNop Op = iota
	OpHalt

	// Data movement.
	OpMovRR // r1 = r2
	OpMovRI // r1 = imm32
	OpLoad  // r1 = mem32[rb+disp]
	OpStore // mem32[rb+disp] = r1
	OpLoadIdx
	OpStoreIdx
	OpLea // r1 = rb+disp (no flags)

	// Integer ALU, register-register. All set flags except noted.
	OpAddRR
	OpSubRR
	OpAndRR
	OpOrRR
	OpXorRR
	OpCmpRR  // flags of r1-r2, result discarded
	OpTestRR // flags of r1&r2, result discarded
	OpImulRR // r1 *= r2 signed; CF=OF=overflow
	OpDivRR  // r1 /= r2 unsigned; flags unchanged

	// Integer ALU, register-immediate.
	OpAddRI
	OpSubRI
	OpAndRI
	OpOrRI
	OpXorRI
	OpCmpRI

	// Single-operand.
	OpIncR // preserves CF
	OpDecR // preserves CF
	OpNegR
	OpNotR // no flags

	// Shifts by immediate (count masked to 5 bits).
	OpShlRI
	OpShrRI
	OpSarRI

	// Stack.
	OpPushR
	OpPopR

	// Control flow.
	OpJmp     // eip += rel32
	OpJcc     // conditional relative
	OpJmpInd  // eip = r1 (register-indirect)
	OpCallRel // push return address; eip += rel32
	OpCallInd // push return address; eip = r1
	OpRet     // eip = pop()

	// Floating point (64-bit IEEE754 in memory).
	OpFLoad  // f1 = mem64[rb+disp]
	OpFStore // mem64[rb+disp] = f1
	OpFMovRR // f1 = f2
	OpFAdd   // f1 += f2
	OpFSub
	OpFMul
	OpFDiv
	OpFCmp  // flags: ZF=(f1==f2), CF=(f1<f2); SF=OF=0 (like x86 FCOMI)
	OpCvtIF // f1 = float64(int32(r2))
	OpCvtFI // r1 = int32(f2), truncated

	// RISC-family opcodes (RV32I frontend). Three-operand, flagless:
	// R1 = destination, R2 = first source, RB = second source (register
	// forms) or Imm (immediate forms). Writes to register 0 are
	// discarded (the hardwired zero). Appended after the x86 opcodes so
	// the x86 encoding's opcode byte values — and every recorded trace —
	// keep their numbering; they have no x86 encoding (see encode.go).
	OpAdd3  // r1 = r2 + rb
	OpSub3  // r1 = r2 - rb
	OpAnd3  // r1 = r2 & rb
	OpOr3   // r1 = r2 | rb
	OpXor3  // r1 = r2 ^ rb
	OpSll3  // r1 = r2 << (rb & 31)
	OpSrl3  // r1 = r2 >> (rb & 31), logical
	OpSra3  // r1 = r2 >> (rb & 31), arithmetic
	OpSlt3  // r1 = int32(r2) < int32(rb)
	OpSltu3 // r1 = r2 < rb, unsigned

	OpAddI3  // r1 = r2 + imm
	OpAndI3  // r1 = r2 & imm
	OpOrI3   // r1 = r2 | imm
	OpXorI3  // r1 = r2 ^ imm
	OpSllI3  // r1 = r2 << (imm & 31)
	OpSrlI3  // r1 = r2 >> (imm & 31), logical
	OpSraI3  // r1 = r2 >> (imm & 31), arithmetic
	OpSltI3  // r1 = int32(r2) < int32(imm)
	OpSltuI3 // r1 = r2 < uint32(imm), unsigned

	OpBcc  // compare-and-branch: if cond(r1, r2) then eip += rel (flagless)
	OpJal  // r1 = return address; eip += rel
	OpJalr // r1 = return address; eip = (r2 + imm) &^ 1

	NumOps
)

var opNames = [NumOps]string{
	"nop", "halt",
	"mov", "movi", "load", "store", "loadx", "storex", "lea",
	"add", "sub", "and", "or", "xor", "cmp", "test", "imul", "div",
	"addi", "subi", "andi", "ori", "xori", "cmpi",
	"inc", "dec", "neg", "not",
	"shl", "shr", "sar",
	"push", "pop",
	"jmp", "jcc", "jmpind", "call", "callind", "ret",
	"fload", "fstore", "fmov", "fadd", "fsub", "fmul", "fdiv", "fcmp", "cvtif", "cvtfi",
	"add3", "sub3", "and3", "or3", "xor3", "sll3", "srl3", "sra3", "slt3", "sltu3",
	"addi3", "andi3", "ori3", "xori3", "slli3", "srli3", "srai3", "slti3", "sltui3",
	"bcc", "jal", "jalr",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Inst is a decoded guest instruction.
type Inst struct {
	Op    Op
	R1    Reg   // destination / first operand register
	R2    Reg   // source register
	RB    Reg   // base register for memory operands
	RI    Reg   // index register for scaled addressing
	F1    FReg  // FP destination / first operand
	F2    FReg  // FP source
	Cond  Cond  // for OpJcc
	Scale uint8 // 1, 2, 4 or 8 for indexed addressing
	Imm   int32 // immediate, displacement, or branch offset
	Size  uint8 // encoded length in bytes
}

// IsBranch reports whether the instruction redirects control flow.
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case OpJmp, OpJcc, OpJmpInd, OpCallRel, OpCallInd, OpRet,
		OpBcc, OpJal, OpJalr:
		return true
	}
	return false
}

// IsIndirectBranch reports whether the branch target is computed at
// execution time (register-indirect jumps, indirect calls, returns).
func (i *Inst) IsIndirectBranch() bool {
	switch i.Op {
	case OpJmpInd, OpCallInd, OpRet, OpJalr:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch
// — flags-based (OpJcc) or compare-and-branch (OpBcc).
func (i *Inst) IsCondBranch() bool { return i.Op == OpJcc || i.Op == OpBcc }

// EndsBlock reports whether the instruction terminates a basic block.
func (i *Inst) EndsBlock() bool { return i.IsBranch() || i.Op == OpHalt }

// WritesFlags reports whether execution updates the flags register.
func (i *Inst) WritesFlags() bool {
	switch i.Op {
	case OpAddRR, OpSubRR, OpAndRR, OpOrRR, OpXorRR, OpCmpRR, OpTestRR,
		OpImulRR, OpAddRI, OpSubRI, OpAndRI, OpOrRI, OpXorRI, OpCmpRI,
		OpIncR, OpDecR, OpNegR, OpShlRI, OpShrRI, OpSarRI, OpFCmp:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction consumes the flags register.
// OpIncR/OpDecR preserve CF, which counts as a read-modify-write.
func (i *Inst) ReadsFlags() bool {
	switch i.Op {
	case OpJcc, OpIncR, OpDecR:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction accesses data memory.
func (i *Inst) IsMemAccess() bool {
	switch i.Op {
	case OpLoad, OpStore, OpLoadIdx, OpStoreIdx, OpPushR, OpPopR,
		OpCallRel, OpCallInd, OpRet, OpFLoad, OpFStore:
		return true
	}
	return false
}

// IsFP reports whether the instruction uses the FP register file.
func (i *Inst) IsFP() bool {
	switch i.Op {
	case OpFLoad, OpFStore, OpFMovRR, OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpFCmp, OpCvtIF, OpCvtFI:
		return true
	}
	return false
}

func (i *Inst) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpRet:
		return i.Op.String()
	case OpMovRR:
		return fmt.Sprintf("mov %s, %s", i.R1, i.R2)
	case OpMovRI:
		return fmt.Sprintf("mov %s, %d", i.R1, i.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s%+d]", i.R1, i.RB, i.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s%+d], %s", i.RB, i.Imm, i.R1)
	case OpLoadIdx:
		return fmt.Sprintf("load %s, [%s+%s*%d%+d]", i.R1, i.RB, i.RI, i.Scale, i.Imm)
	case OpStoreIdx:
		return fmt.Sprintf("store [%s+%s*%d%+d], %s", i.RB, i.RI, i.Scale, i.Imm, i.R1)
	case OpLea:
		return fmt.Sprintf("lea %s, [%s%+d]", i.R1, i.RB, i.Imm)
	case OpAddRR, OpSubRR, OpAndRR, OpOrRR, OpXorRR, OpCmpRR, OpTestRR, OpImulRR, OpDivRR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.R1, i.R2)
	case OpAddRI, OpSubRI, OpAndRI, OpOrRI, OpXorRI, OpCmpRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.R1, i.Imm)
	case OpIncR, OpDecR, OpNegR, OpNotR, OpPushR, OpPopR:
		return fmt.Sprintf("%s %s", i.Op, i.R1)
	case OpShlRI, OpShrRI, OpSarRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.R1, i.Imm)
	case OpJmp, OpCallRel:
		return fmt.Sprintf("%s %+d", i.Op, i.Imm)
	case OpJcc:
		return fmt.Sprintf("j%s %+d", i.Cond, i.Imm)
	case OpJmpInd, OpCallInd:
		return fmt.Sprintf("%s %s", i.Op, i.R1)
	case OpFLoad:
		return fmt.Sprintf("fload %s, [%s%+d]", i.F1, i.RB, i.Imm)
	case OpFStore:
		return fmt.Sprintf("fstore [%s%+d], %s", i.RB, i.Imm, i.F1)
	case OpFMovRR, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.F1, i.F2)
	case OpCvtIF:
		return fmt.Sprintf("cvtif %s, %s", i.F1, i.R2)
	case OpCvtFI:
		return fmt.Sprintf("cvtfi %s, %s", i.R1, i.F2)
	case OpAdd3, OpSub3, OpAnd3, OpOr3, OpXor3, OpSll3, OpSrl3, OpSra3, OpSlt3, OpSltu3:
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.R1, i.R2, i.RB)
	case OpAddI3, OpAndI3, OpOrI3, OpXorI3, OpSllI3, OpSrlI3, OpSraI3, OpSltI3, OpSltuI3:
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.R1, i.R2, i.Imm)
	case OpBcc:
		return fmt.Sprintf("b%s x%d, x%d, %+d", i.Cond, i.R1, i.R2, i.Imm)
	case OpJal:
		return fmt.Sprintf("jal x%d, %+d", i.R1, i.Imm)
	case OpJalr:
		return fmt.Sprintf("jalr x%d, x%d, %d", i.R1, i.R2, i.Imm)
	}
	return i.Op.String()
}
