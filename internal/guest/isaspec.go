package guest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
)

// ISA describes one guest instruction-set frontend: how its encodings
// decode into the shared Inst form, the shape of its register file,
// and how a fresh machine is initialized. Everything above this seam —
// the canonical step semantics, the reference emulator, the decode
// cache, the TOL translator tiers — is ISA-agnostic and consumes the
// frontend through this description. Frontends register themselves in
// an init-time registry (RegisterISA), mirroring the tol.Pass and
// workload.Source registries, and are selected by name through
// Program.ISA (empty means x86).
type ISA struct {
	// Name is the registry key ("x86", "rv32").
	Name string

	// MaxInstSize is the longest encoding in bytes (at most 8).
	MaxInstSize int

	// InstShift is log2 of the instruction alignment: 0 for
	// variable-length byte-aligned encodings, 2 for fixed four-byte
	// ones. The DecodeCache uses it to index with the PC's significant
	// bits, so fixed-length frontends don't waste 3/4 of the cache.
	InstShift uint

	// NumRegs is how many integer registers the frontend exposes
	// (at most MaxGuestRegs).
	NumRegs int

	// HasFlags reports whether the frontend has an architectural
	// condition-flags register. Flagless frontends keep State.Flags
	// zero and branch via compare-and-branch opcodes.
	HasFlags bool

	// HasFP reports whether the frontend uses the FP register file.
	HasFP bool

	// DecodeAt decodes the instruction whose encoding starts at b and
	// whose address is pc. The pc parameter lets PC-relative
	// constructions (RV32I auipc) fold their address at decode time;
	// decoded instructions are only ever cached keyed by their exact
	// address, so the fold is safe.
	DecodeAt func(b []byte, pc uint32) (Inst, error)

	// RegName names integer register r in divergence reports.
	RegName func(r int) string

	// InitState establishes the frontend's initial architectural state
	// for a program entered at entry (stack pointer setup differs per
	// ISA; everything else starts zero).
	InitState func(s *State, entry uint32)
}

// Step executes one instruction at s.EIP under this frontend. It is
// the uncached reference path; hot loops use DecodeCache.Step.
func (isa *ISA) Step(s *State, m mem.Memory, res *StepResult) error {
	inst, err := isa.fetchDecode(s.EIP, m)
	if err != nil {
		return err
	}
	return stepDecoded(s, m, &inst, res)
}

// fetchDecode reads and decodes the instruction at eip — the shared
// front half of ISA.Step and DecodeCache.Step.
func (isa *ISA) fetchDecode(eip uint32, m mem.Memory) (Inst, error) {
	var buf [8]byte
	for i := 0; i < isa.MaxInstSize; i++ {
		buf[i] = m.Read8(eip + uint32(i))
	}
	inst, err := isa.DecodeAt(buf[:isa.MaxInstSize], eip)
	if err != nil {
		return inst, fmt.Errorf("at eip=%#x: %w", eip, err)
	}
	return inst, nil
}

// X86 is the original variable-length CISC frontend, the paper's
// guest. Its decoder lives in encode.go.
var X86 = &ISA{
	Name:        "x86",
	MaxInstSize: MaxInstSize,
	InstShift:   0,
	NumRegs:     NumRegs,
	HasFlags:    true,
	HasFP:       true,
	DecodeAt:    func(b []byte, pc uint32) (Inst, error) { return Decode(b) },
	RegName:     func(r int) string { return Reg(r).String() },
	InitState: func(s *State, entry uint32) {
		*s = State{EIP: entry}
		s.Regs[ESP] = mem.GuestStackTop
	},
}

var (
	isaMu       sync.RWMutex
	isaRegistry = map[string]*ISA{}
)

// RegisterISA adds a frontend to the registry. Like the workload
// source registry, registration happens in init functions and panics
// on conflicts — a duplicate name is a programming error.
func RegisterISA(isa *ISA) {
	isaMu.Lock()
	defer isaMu.Unlock()
	if isa.Name == "" {
		panic("guest: RegisterISA with empty name")
	}
	if _, dup := isaRegistry[isa.Name]; dup {
		panic(fmt.Sprintf("guest: ISA %q registered twice", isa.Name))
	}
	if isa.NumRegs > MaxGuestRegs {
		panic(fmt.Sprintf("guest: ISA %q has %d registers, State holds %d", isa.Name, isa.NumRegs, MaxGuestRegs))
	}
	isaRegistry[isa.Name] = isa
}

// LookupISA resolves a frontend by name. The empty name is the x86
// default, so pre-ISA programs and configs keep their meaning.
func LookupISA(name string) (*ISA, error) {
	if name == "" {
		return X86, nil
	}
	isaMu.RLock()
	isa, ok := isaRegistry[name]
	isaMu.RUnlock()
	if ok {
		return isa, nil
	}
	return nil, fmt.Errorf("guest: unknown ISA %q (registered: %v)", name, ISANames())
}

// ISANames lists the registered frontends in sorted order.
func ISANames() []string {
	isaMu.RLock()
	defer isaMu.RUnlock()
	names := make([]string, 0, len(isaRegistry))
	for n := range isaRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ISAOf resolves a program's frontend (empty Program.ISA means x86).
func ISAOf(p *Program) (*ISA, error) {
	return LookupISA(p.ISA)
}

func init() {
	RegisterISA(X86)
}
