package guest

import (
	"fmt"

	"repro/internal/mem"
)

// RV32I frontend: real RISC-V RV32I encodings (R/I/S/B/U/J formats,
// little-endian four-byte words) decoded into the shared Inst form via
// the RISC-family opcodes. The supported subset is deliberately small
// but real:
//
//   - integer register-register and register-immediate ALU (OP/OP-IMM)
//   - lui / auipc (auipc folds the PC at decode time)
//   - jal / jalr / the six conditional branches (compare-and-branch;
//     there is no flags register)
//   - lw / sw (32-bit only, matching the shared memory semantics)
//   - ebreak / ecall, both of which halt the guest
//
// Registers are restricted to x0..x15 (an RV32E-style register file;
// x16..x31 decode to an error), so guest state fits the shared
// State.Regs file alongside x86. x0 is the hardwired zero: the shared
// step semantics and the translator both discard writes to it.

// RV32InstBytes is the fixed RV32I encoding width.
const RV32InstBytes = 4

// rv32NumRegs is the exposed integer register count (x0..x15).
const rv32NumRegs = 16

// RV32 is the RISC-V RV32I guest frontend.
var RV32 = &ISA{
	Name:        "rv32",
	MaxInstSize: RV32InstBytes,
	InstShift:   2,
	NumRegs:     rv32NumRegs,
	HasFlags:    false,
	HasFP:       false,
	DecodeAt:    DecodeRV32,
	RegName:     func(r int) string { return fmt.Sprintf("x%d", r) },
	InitState: func(s *State, entry uint32) {
		*s = State{EIP: entry}
		s.Regs[2] = mem.GuestStackTop // x2 is sp in the RISC-V ABI
	},
}

func init() {
	RegisterISA(RV32)
}

// ErrRV32Truncated reports fewer than four bytes of encoding.
var ErrRV32Truncated = fmt.Errorf("guest: truncated rv32 instruction")

func rv32Reg(n uint32) (Reg, error) {
	if n >= rv32NumRegs {
		return 0, fmt.Errorf("guest: rv32 register x%d outside the supported x0..x15 file", n)
	}
	return Reg(n), nil
}

// DecodeRV32 decodes one RV32I instruction whose four-byte
// little-endian encoding starts at b and whose address is pc.
func DecodeRV32(b []byte, pc uint32) (Inst, error) {
	if len(b) < RV32InstBytes {
		return Inst{}, ErrRV32Truncated
	}
	w := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	in := Inst{Size: RV32InstBytes}

	opcode := w & 0x7f
	rd := (w >> 7) & 0x1f
	funct3 := (w >> 12) & 0x7
	rs1 := (w >> 15) & 0x1f
	rs2 := (w >> 20) & 0x1f
	funct7 := w >> 25
	iImm := int32(w) >> 20 // sign-extended 12-bit I-immediate

	badEnc := func(what string) (Inst, error) {
		return Inst{}, fmt.Errorf("guest: unsupported rv32 %s (word %#08x)", what, w)
	}

	switch opcode {
	case 0x33: // OP: register-register ALU
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		r2, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		rb, err := rv32Reg(rs2)
		if err != nil {
			return Inst{}, err
		}
		in.R1, in.R2, in.RB = r1, r2, rb
		switch {
		case funct3 == 0 && funct7 == 0:
			in.Op = OpAdd3
		case funct3 == 0 && funct7 == 0x20:
			in.Op = OpSub3
		case funct3 == 1 && funct7 == 0:
			in.Op = OpSll3
		case funct3 == 2 && funct7 == 0:
			in.Op = OpSlt3
		case funct3 == 3 && funct7 == 0:
			in.Op = OpSltu3
		case funct3 == 4 && funct7 == 0:
			in.Op = OpXor3
		case funct3 == 5 && funct7 == 0:
			in.Op = OpSrl3
		case funct3 == 5 && funct7 == 0x20:
			in.Op = OpSra3
		case funct3 == 6 && funct7 == 0:
			in.Op = OpOr3
		case funct3 == 7 && funct7 == 0:
			in.Op = OpAnd3
		default:
			return badEnc("OP funct7/funct3") // M extension lands here
		}

	case 0x13: // OP-IMM
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		r2, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		in.R1, in.R2, in.Imm = r1, r2, iImm
		switch funct3 {
		case 0:
			in.Op = OpAddI3
		case 2:
			in.Op = OpSltI3
		case 3:
			in.Op = OpSltuI3
		case 4:
			in.Op = OpXorI3
		case 6:
			in.Op = OpOrI3
		case 7:
			in.Op = OpAndI3
		case 1:
			if funct7 != 0 {
				return badEnc("slli funct7")
			}
			in.Op, in.Imm = OpSllI3, int32(rs2)
		case 5:
			switch funct7 {
			case 0:
				in.Op, in.Imm = OpSrlI3, int32(rs2)
			case 0x20:
				in.Op, in.Imm = OpSraI3, int32(rs2)
			default:
				return badEnc("srli/srai funct7")
			}
		}

	case 0x37, 0x17: // LUI / AUIPC
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		imm := w & 0xffff_f000
		if opcode == 0x17 {
			imm += pc // auipc: PC folded at decode time (cached per exact PC)
		}
		in.Op, in.R1, in.Imm = OpMovRI, r1, int32(imm)
		if r1 == 0 {
			in.Op = OpNop // lui/auipc x0 would write through OpMovRI's x86 path
		}

	case 0x6f: // JAL
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		// J-immediate: imm[20|10:1|11|19:12], PC-relative. The shared
		// IR stores branch offsets relative to the instruction's end.
		imm := int32(w&0x8000_0000)>>11 | // imm[20]
			int32(w&0x000f_f000) | // imm[19:12]
			int32(w>>9)&0x800 | // imm[11]
			int32(w>>20)&0x7fe // imm[10:1]
		in.Op, in.R1, in.Imm = OpJal, r1, imm-RV32InstBytes

	case 0x67: // JALR
		if funct3 != 0 {
			return badEnc("jalr funct3")
		}
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		r2, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		in.Op, in.R1, in.R2, in.Imm = OpJalr, r1, r2, iImm

	case 0x63: // BRANCH
		r1, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		r2, err := rv32Reg(rs2)
		if err != nil {
			return Inst{}, err
		}
		var cond Cond
		switch funct3 {
		case 0:
			cond = CondE
		case 1:
			cond = CondNE
		case 4:
			cond = CondL
		case 5:
			cond = CondGE
		case 6:
			cond = CondB
		case 7:
			cond = CondAE
		default:
			return badEnc("branch funct3")
		}
		// B-immediate: imm[12|10:5|4:1|11], PC-relative.
		imm := int32(w&0x8000_0000)>>19 | // imm[12]
			int32(w<<4)&0x800 | // imm[11]
			int32(w>>20)&0x7e0 | // imm[10:5]
			int32(w>>7)&0x1e // imm[4:1]
		in.Op, in.R1, in.R2, in.Cond, in.Imm = OpBcc, r1, r2, cond, imm-RV32InstBytes

	case 0x03: // LOAD
		if funct3 != 2 {
			return badEnc("load width (only lw)")
		}
		r1, err := rv32Reg(rd)
		if err != nil {
			return Inst{}, err
		}
		rb, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		if r1 == 0 {
			// lw x0 discards the loaded value. The shared OpLoad writes
			// its destination unconditionally (x86 register 0 is EAX),
			// so the discard form decodes as a nop — loads have no side
			// effects in this machine, making the two equivalent.
			in.Op = OpNop
			break
		}
		in.Op, in.R1, in.RB, in.Imm = OpLoad, r1, rb, iImm

	case 0x23: // STORE
		if funct3 != 2 {
			return badEnc("store width (only sw)")
		}
		rb, err := rv32Reg(rs1)
		if err != nil {
			return Inst{}, err
		}
		r1, err := rv32Reg(rs2)
		if err != nil {
			return Inst{}, err
		}
		// S-immediate: imm[11:5|4:0].
		imm := int32(w)>>20&^0x1f | int32(rd)
		in.Op, in.R1, in.RB, in.Imm = OpStore, r1, rb, imm

	case 0x73: // SYSTEM: ecall/ebreak halt the guest
		if w == 0x0000_0073 || w == 0x0010_0073 {
			in.Op = OpHalt
			break
		}
		return badEnc("SYSTEM function")

	default:
		return Inst{}, fmt.Errorf("guest: bad rv32 opcode %#02x (word %#08x)", opcode, w)
	}
	return in, nil
}
