package guest

import (
	"fmt"

	"repro/internal/mem"
)

// RV32Builder assembles RV32I guest programs with symbolic labels,
// the fixed-width sibling of Builder: every instruction is four bytes,
// so label resolution is a single arithmetic pass. Emitters encode
// real RV32I words (the same bit layouts DecodeRV32 consumes), keeping
// the frontend honest end to end: generated programs exercise the
// actual decoder, not a shortcut.
type RV32Builder struct {
	words  []uint32
	fixups map[int]rv32Fixup // word index -> pending label reference
	labels map[string]int    // label -> word index
	data   []DataSeg
	err    error
}

type rv32FixupKind uint8

const (
	rv32FixB  rv32FixupKind = iota // B-type (branches)
	rv32FixJ                       // J-type (jal)
	rv32FixHi                      // U-type %hi for a Li-style pair
	rv32FixLo                      // I-type %lo for a Li-style pair
)

type rv32Fixup struct {
	label string
	kind  rv32FixupKind
}

// NewRV32Builder returns an empty RV32I program builder.
func NewRV32Builder() *RV32Builder {
	return &RV32Builder{
		fixups: make(map[int]rv32Fixup),
		labels: make(map[string]int),
	}
}

func (b *RV32Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *RV32Builder) word(w uint32) *RV32Builder {
	b.words = append(b.words, w)
	return b
}

func (b *RV32Builder) reg(n int, role string) uint32 {
	if n < 0 || n >= rv32NumRegs {
		b.setErr("guest: rv32 builder: %s register x%d out of range", role, n)
		return 0
	}
	return uint32(n)
}

func rv32EncR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func rv32EncI(imm int32, rs1, funct3, rd, opcode uint32) uint32 {
	return uint32(imm)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func rv32EncS(imm int32, rs2, rs1, funct3, opcode uint32) uint32 {
	u := uint32(imm)
	return (u>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | (u&0x1f)<<7 | opcode
}

func rv32EncB(imm int32, rs2, rs1, funct3 uint32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | (u>>1&0xf)<<8 | (u>>11&1)<<7 | 0x63
}

func rv32EncJ(imm int32, rd uint32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 |
		(u>>12&0xff)<<12 | rd<<7 | 0x6f
}

func (b *RV32Builder) checkImm12(imm int32, what string) int32 {
	if imm < -2048 || imm > 2047 {
		b.setErr("guest: rv32 builder: %s immediate %d exceeds 12 bits", what, imm)
	}
	return imm
}

// Label defines a label at the current position.
func (b *RV32Builder) Label(name string) *RV32Builder {
	if _, dup := b.labels[name]; dup {
		b.setErr("guest: rv32 builder: duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.words)
	return b
}

// Data attaches an initialized data segment.
func (b *RV32Builder) Data(addr uint32, bytes []byte) *RV32Builder {
	b.data = append(b.data, DataSeg{Addr: addr, Bytes: bytes})
	return b
}

// --- register-register ALU ---

func (b *RV32Builder) rType(funct7, funct3 uint32, rd, rs1, rs2 int) *RV32Builder {
	return b.word(rv32EncR(funct7, b.reg(rs2, "rs2"), b.reg(rs1, "rs1"), funct3, b.reg(rd, "rd"), 0x33))
}

func (b *RV32Builder) Add(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 0, rd, rs1, rs2) }
func (b *RV32Builder) Sub(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0x20, 0, rd, rs1, rs2) }
func (b *RV32Builder) Sll(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 1, rd, rs1, rs2) }
func (b *RV32Builder) Slt(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 2, rd, rs1, rs2) }
func (b *RV32Builder) Sltu(rd, rs1, rs2 int) *RV32Builder { return b.rType(0, 3, rd, rs1, rs2) }
func (b *RV32Builder) Xor(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 4, rd, rs1, rs2) }
func (b *RV32Builder) Srl(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 5, rd, rs1, rs2) }
func (b *RV32Builder) Sra(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0x20, 5, rd, rs1, rs2) }
func (b *RV32Builder) Or(rd, rs1, rs2 int) *RV32Builder   { return b.rType(0, 6, rd, rs1, rs2) }
func (b *RV32Builder) And(rd, rs1, rs2 int) *RV32Builder  { return b.rType(0, 7, rd, rs1, rs2) }

// --- register-immediate ALU ---

func (b *RV32Builder) iType(funct3 uint32, rd, rs1 int, imm int32, what string) *RV32Builder {
	return b.word(rv32EncI(b.checkImm12(imm, what)&0xfff, b.reg(rs1, "rs1"), funct3, b.reg(rd, "rd"), 0x13))
}

func (b *RV32Builder) Addi(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(0, rd, rs1, imm, "addi")
}
func (b *RV32Builder) Slti(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(2, rd, rs1, imm, "slti")
}
func (b *RV32Builder) Sltiu(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(3, rd, rs1, imm, "sltiu")
}
func (b *RV32Builder) Xori(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(4, rd, rs1, imm, "xori")
}
func (b *RV32Builder) Ori(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(6, rd, rs1, imm, "ori")
}
func (b *RV32Builder) Andi(rd, rs1 int, imm int32) *RV32Builder {
	return b.iType(7, rd, rs1, imm, "andi")
}

func (b *RV32Builder) shiftImm(funct7, funct3 uint32, rd, rs1 int, shamt int32) *RV32Builder {
	if shamt < 0 || shamt > 31 {
		b.setErr("guest: rv32 builder: shift amount %d out of range", shamt)
		shamt = 0
	}
	return b.word(rv32EncR(funct7, uint32(shamt), b.reg(rs1, "rs1"), funct3, b.reg(rd, "rd"), 0x13))
}

func (b *RV32Builder) Slli(rd, rs1 int, shamt int32) *RV32Builder {
	return b.shiftImm(0, 1, rd, rs1, shamt)
}
func (b *RV32Builder) Srli(rd, rs1 int, shamt int32) *RV32Builder {
	return b.shiftImm(0, 5, rd, rs1, shamt)
}
func (b *RV32Builder) Srai(rd, rs1 int, shamt int32) *RV32Builder {
	return b.shiftImm(0x20, 5, rd, rs1, shamt)
}

// --- upper immediates and constants ---

// Lui loads imm20<<12 into rd.
func (b *RV32Builder) Lui(rd int, imm20 uint32) *RV32Builder {
	if imm20 > 0xfffff {
		b.setErr("guest: rv32 builder: lui immediate %#x exceeds 20 bits", imm20)
	}
	return b.word(imm20<<12 | b.reg(rd, "rd")<<7 | 0x37)
}

// Li materializes an arbitrary 32-bit constant into rd using the
// canonical lui+addi pair (one addi when the constant fits 12 signed
// bits). The addi's sign-extension is compensated by bumping the lui
// half when bit 11 is set.
func (b *RV32Builder) Li(rd int, v int32) *RV32Builder {
	if v >= -2048 && v <= 2047 {
		return b.Addi(rd, 0, v)
	}
	lo := v << 20 >> 20 // sign-extended low 12 bits
	hi := uint32(v-lo) >> 12
	b.Lui(rd, hi&0xfffff)
	if lo != 0 {
		b.Addi(rd, rd, lo)
	}
	return b
}

// --- memory ---

// Lw loads the 32-bit word at rs1+imm into rd.
func (b *RV32Builder) Lw(rd, rs1 int, imm int32) *RV32Builder {
	return b.word(rv32EncI(b.checkImm12(imm, "lw")&0xfff, b.reg(rs1, "rs1"), 2, b.reg(rd, "rd"), 0x03))
}

// Sw stores rs2 to the 32-bit word at rs1+imm.
func (b *RV32Builder) Sw(rs2, rs1 int, imm int32) *RV32Builder {
	return b.word(rv32EncS(b.checkImm12(imm, "sw"), b.reg(rs2, "rs2"), b.reg(rs1, "rs1"), 2, 0x23))
}

// --- control flow ---

func (b *RV32Builder) branch(funct3 uint32, rs1, rs2 int, label string) *RV32Builder {
	b.fixups[len(b.words)] = rv32Fixup{label: label, kind: rv32FixB}
	return b.word(rv32EncB(0, b.reg(rs2, "rs2"), b.reg(rs1, "rs1"), funct3))
}

func (b *RV32Builder) Beq(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(0, rs1, rs2, label)
}
func (b *RV32Builder) Bne(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(1, rs1, rs2, label)
}
func (b *RV32Builder) Blt(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(4, rs1, rs2, label)
}
func (b *RV32Builder) Bge(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(5, rs1, rs2, label)
}
func (b *RV32Builder) Bltu(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(6, rs1, rs2, label)
}
func (b *RV32Builder) Bgeu(rs1, rs2 int, label string) *RV32Builder {
	return b.branch(7, rs1, rs2, label)
}

// Jal writes the return address to rd and jumps to label (rd=0 is a
// plain jump).
func (b *RV32Builder) Jal(rd int, label string) *RV32Builder {
	b.fixups[len(b.words)] = rv32Fixup{label: label, kind: rv32FixJ}
	return b.word(rv32EncJ(0, b.reg(rd, "rd")))
}

// Jalr jumps to rs1+imm with the return address in rd (ret is
// Jalr(0, 1, 0)).
func (b *RV32Builder) Jalr(rd, rs1 int, imm int32) *RV32Builder {
	return b.word(rv32EncI(b.checkImm12(imm, "jalr")&0xfff, b.reg(rs1, "rs1"), 0, b.reg(rd, "rd"), 0x67))
}

// La materializes the absolute guest address of label into rd with a
// lui+addi pair, resolved at Build time. It always occupies two words
// so layout stays a single pass.
func (b *RV32Builder) La(rd int, label string) *RV32Builder {
	b.fixups[len(b.words)] = rv32Fixup{label: label, kind: rv32FixHi}
	b.word(b.reg(rd, "rd")<<7 | 0x37)
	b.fixups[len(b.words)] = rv32Fixup{label: label, kind: rv32FixLo}
	return b.word(rv32EncI(0, uint32(rd), 0, uint32(rd), 0x13))
}

// Ebreak halts the guest.
func (b *RV32Builder) Ebreak() *RV32Builder { return b.word(0x0010_0073) }

// InstCount returns the number of instructions emitted so far (useful
// for generating unique local labels).
func (b *RV32Builder) InstCount() int { return len(b.words) }

// AddrOf returns the guest address of a defined label. Encodings are
// fixed-width, so addresses are exact as soon as the label is placed —
// no layout pass is needed (unlike the x86 Builder's AddrOf, which is
// only valid after Build).
func (b *RV32Builder) AddrOf(label string) (uint32, bool) {
	idx, ok := b.labels[label]
	if !ok {
		return 0, false
	}
	return mem.GuestCodeBase + uint32(idx*RV32InstBytes), true
}

// Build resolves labels and returns the program image.
func (b *RV32Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	addrOf := func(idx int) uint32 { return uint32(idx * RV32InstBytes) }
	for idx, fix := range b.fixups {
		target, ok := b.labels[fix.label]
		if !ok {
			return nil, fmt.Errorf("guest: rv32 builder: undefined label %q", fix.label)
		}
		switch fix.kind {
		case rv32FixB:
			rel := int32(addrOf(target)) - int32(addrOf(idx))
			if rel < -4096 || rel > 4094 {
				return nil, fmt.Errorf("guest: rv32 builder: branch to %q out of range (%d)", fix.label, rel)
			}
			b.words[idx] |= uint32(rv32EncB(rel, 0, 0, 0))
		case rv32FixJ:
			rel := int32(addrOf(target)) - int32(addrOf(idx))
			if rel < -(1<<20) || rel >= 1<<20 {
				return nil, fmt.Errorf("guest: rv32 builder: jal to %q out of range (%d)", fix.label, rel)
			}
			b.words[idx] |= rv32EncJ(rel, 0)
		case rv32FixHi, rv32FixLo:
			abs := int32(mem.GuestCodeBase + addrOf(target))
			lo := abs << 20 >> 20
			if fix.kind == rv32FixHi {
				b.words[idx] |= uint32(abs-lo) & 0xffff_f000
			} else {
				b.words[idx] |= uint32(lo&0xfff) << 20
			}
		}
	}
	code := make([]byte, len(b.words)*RV32InstBytes)
	for i, w := range b.words {
		code[i*4+0] = byte(w)
		code[i*4+1] = byte(w >> 8)
		code[i*4+2] = byte(w >> 16)
		code[i*4+3] = byte(w >> 24)
	}
	return &Program{
		Entry:      mem.GuestCodeBase,
		Code:       code,
		Data:       b.data,
		StaticInst: len(b.words),
		ISA:        "rv32",
	}, nil
}
