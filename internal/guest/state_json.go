package guest

import (
	"encoding/json"
	"math"
)

// stateJSON is the wire form of State. FP registers are encoded as
// IEEE-754 bit patterns: JSON has no representation for NaN or the
// infinities, and several FP benchmarks legitimately finish with NaN
// in a register. The bit-pattern encoding round-trips every value
// exactly, NaN payloads included.
type stateJSON struct {
	Regs      [NumRegs]uint32  `json:"regs"`
	FRegsBits [NumFRegs]uint64 `json:"fregs_bits"`
	EIP       uint32           `json:"eip"`
	Flags     uint32           `json:"flags"`
}

// MarshalJSON implements json.Marshaler.
func (s State) MarshalJSON() ([]byte, error) {
	w := stateJSON{Regs: s.Regs, EIP: s.EIP, Flags: s.Flags}
	for i, f := range s.FRegs {
		w.FRegsBits[i] = math.Float64bits(f)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *State) UnmarshalJSON(b []byte) error {
	var w stateJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	s.Regs, s.EIP, s.Flags = w.Regs, w.EIP, w.Flags
	for i, bits := range w.FRegsBits {
		s.FRegs[i] = math.Float64frombits(bits)
	}
	return nil
}
