package guest

import (
	"encoding/json"
	"math"
)

// stateJSON is the wire form of State. FP registers are encoded as
// IEEE-754 bit patterns: JSON has no representation for NaN or the
// infinities, and several FP benchmarks legitimately finish with NaN
// in a register. The bit-pattern encoding round-trips every value
// exactly, NaN payloads included.
type stateJSON struct {
	// Regs carries at most MaxGuestRegs elements; trailing zero
	// registers are trimmed on encode (down to the x86 file size), so
	// x86 states serialize exactly as they did before the register
	// file was widened for 16-register frontends. Short arrays decode
	// into the low slots and leave the rest zero.
	Regs      []uint32         `json:"regs"`
	FRegsBits [NumFRegs]uint64 `json:"fregs_bits"`
	EIP       uint32           `json:"eip"`
	Flags     uint32           `json:"flags"`
}

// MarshalJSON implements json.Marshaler.
func (s State) MarshalJSON() ([]byte, error) {
	n := MaxGuestRegs
	for n > NumRegs && s.Regs[n-1] == 0 {
		n--
	}
	w := stateJSON{Regs: s.Regs[:n:n], EIP: s.EIP, Flags: s.Flags}
	for i, f := range s.FRegs {
		w.FRegsBits[i] = math.Float64bits(f)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *State) UnmarshalJSON(b []byte) error {
	var w stateJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Regs) > MaxGuestRegs {
		w.Regs = w.Regs[:MaxGuestRegs]
	}
	s.Regs = [MaxGuestRegs]uint32{}
	copy(s.Regs[:], w.Regs)
	s.EIP, s.Flags = w.EIP, w.Flags
	for i, bits := range w.FRegsBits {
		s.FRegs[i] = math.Float64frombits(bits)
	}
	return nil
}
