package host

import (
	"fmt"
	"math"

	"repro/internal/mem"
)

// CodeStore resolves host PCs to decoded instructions. The code cache
// and the TOL runtime implement it.
type CodeStore interface {
	// InstAt returns the instruction at pc, or nil if pc is not mapped
	// to executable host code (e.g. a TOL service entry point handled
	// by the runtime).
	InstAt(pc uint32) *Inst
}

// Outcome describes the architectural side effects of one executed host
// instruction, consumed by the engine to build the dynamic stream fed
// to the timing simulator.
type Outcome struct {
	MemAddr uint32
	IsLoad  bool
	IsStore bool
	Taken   bool
	Target  uint32
	Halted  bool
}

// CPU is the functional model of the host processor. It executes
// decoded host instructions against the host address space.
type CPU struct {
	R   [NumRegs]uint32
	F   [NumFRegs]float64
	PC  uint32
	Mem mem.Memory
}

// NewCPU returns a CPU bound to the given host memory, with the guest
// memory window base preloaded into RMemBase per the translation ABI.
func NewCPU(m mem.Memory) *CPU {
	c := &CPU{Mem: m}
	c.R[RMemBase] = mem.GuestWindowBase
	return c
}

// Exec executes one decoded instruction at the current PC, updating
// architectural state and PC, and filling *out with side effects.
func (c *CPU) Exec(i *Inst, out *Outcome) error {
	*out = Outcome{}
	next := c.PC + InstBytes

	switch i.Op {
	case Nop:
	case Halt:
		out.Halted = true
		return nil

	case Lui:
		c.setR(i.Rd, uint32(i.Imm)<<16)
	case Ori:
		c.setR(i.Rd, c.R[i.Rs1]|uint32(i.Imm)&0xffff)

	case Add:
		c.setR(i.Rd, c.R[i.Rs1]+c.R[i.Rs2])
	case Sub:
		c.setR(i.Rd, c.R[i.Rs1]-c.R[i.Rs2])
	case And:
		c.setR(i.Rd, c.R[i.Rs1]&c.R[i.Rs2])
	case Or:
		c.setR(i.Rd, c.R[i.Rs1]|c.R[i.Rs2])
	case Xor:
		c.setR(i.Rd, c.R[i.Rs1]^c.R[i.Rs2])
	case Sll:
		c.setR(i.Rd, c.R[i.Rs1]<<(c.R[i.Rs2]&31))
	case Srl:
		c.setR(i.Rd, c.R[i.Rs1]>>(c.R[i.Rs2]&31))
	case Sra:
		c.setR(i.Rd, uint32(int32(c.R[i.Rs1])>>(c.R[i.Rs2]&31)))
	case Mul:
		c.setR(i.Rd, c.R[i.Rs1]*c.R[i.Rs2])
	case Div:
		if d := c.R[i.Rs2]; d == 0 {
			c.setR(i.Rd, 0xffff_ffff)
		} else {
			c.setR(i.Rd, c.R[i.Rs1]/d)
		}
	case Slt:
		c.setR(i.Rd, b2u(int32(c.R[i.Rs1]) < int32(c.R[i.Rs2])))
	case Sltu:
		c.setR(i.Rd, b2u(c.R[i.Rs1] < c.R[i.Rs2]))

	case Addi:
		c.setR(i.Rd, c.R[i.Rs1]+uint32(i.Imm))
	case Andi:
		c.setR(i.Rd, c.R[i.Rs1]&uint32(i.Imm))
	case Xori:
		c.setR(i.Rd, c.R[i.Rs1]^uint32(i.Imm))
	case Slli:
		c.setR(i.Rd, c.R[i.Rs1]<<(uint32(i.Imm)&31))
	case Srli:
		c.setR(i.Rd, c.R[i.Rs1]>>(uint32(i.Imm)&31))
	case Srai:
		c.setR(i.Rd, uint32(int32(c.R[i.Rs1])>>(uint32(i.Imm)&31)))
	case Slti:
		c.setR(i.Rd, b2u(int32(c.R[i.Rs1]) < i.Imm))
	case Sltiu:
		c.setR(i.Rd, b2u(c.R[i.Rs1] < uint32(i.Imm)))

	case Ld:
		addr := c.R[i.Rs1] + uint32(i.Imm)
		c.setR(i.Rd, c.Mem.Read32(addr))
		out.MemAddr, out.IsLoad = addr, true
	case St:
		addr := c.R[i.Rs1] + uint32(i.Imm)
		c.Mem.Write32(addr, c.R[i.Rs2])
		out.MemAddr, out.IsStore = addr, true

	case Beq:
		if c.R[i.Rs1] == c.R[i.Rs2] {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Bne:
		if c.R[i.Rs1] != c.R[i.Rs2] {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Blt:
		if int32(c.R[i.Rs1]) < int32(c.R[i.Rs2]) {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Bge:
		if int32(c.R[i.Rs1]) >= int32(c.R[i.Rs2]) {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Bltu:
		if c.R[i.Rs1] < c.R[i.Rs2] {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Bgeu:
		if c.R[i.Rs1] >= c.R[i.Rs2] {
			next += uint32(i.Imm)
			out.Taken = true
		}
	case Jal:
		c.setR(i.Rd, next)
		next += uint32(i.Imm)
		out.Taken = true
	case Jalr:
		target := c.R[i.Rs1] + uint32(i.Imm)
		c.setR(i.Rd, c.PC+InstBytes)
		next = target
		out.Taken = true

	case FAdd:
		c.F[i.Rd] = c.F[i.Rs1] + c.F[i.Rs2]
	case FSub:
		c.F[i.Rd] = c.F[i.Rs1] - c.F[i.Rs2]
	case FMov:
		c.F[i.Rd] = c.F[i.Rs1]
	case FMul:
		c.F[i.Rd] = c.F[i.Rs1] * c.F[i.Rs2]
	case FDiv:
		c.F[i.Rd] = c.F[i.Rs1] / c.F[i.Rs2]
	case FLd:
		addr := c.R[i.Rs1] + uint32(i.Imm)
		c.F[i.Rd] = math.Float64frombits(c.Mem.Read64(addr))
		out.MemAddr, out.IsLoad = addr, true
	case FSt:
		addr := c.R[i.Rs1] + uint32(i.Imm)
		c.Mem.Write64(addr, math.Float64bits(c.F[i.Rs2]))
		out.MemAddr, out.IsStore = addr, true
	case FEq:
		c.setR(i.Rd, b2u(c.F[i.Rs1] == c.F[i.Rs2]))
	case FLt:
		c.setR(i.Rd, b2u(c.F[i.Rs1] < c.F[i.Rs2]))
	case FCvtIF:
		c.F[i.Rd] = float64(int32(c.R[i.Rs1]))
	case FCvtFI:
		c.setR(i.Rd, uint32(clampToI32(c.F[i.Rs1])))

	default:
		return fmt.Errorf("host: unimplemented opcode %s at pc=%#x", i.Op, c.PC)
	}

	if out.Taken {
		out.Target = next
	}
	c.PC = next
	return nil
}

// setR writes a register, keeping R0 hardwired to zero.
func (c *CPU) setR(r Reg, v uint32) {
	if r != RZero {
		c.R[r] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// clampToI32 matches the guest's float-to-int conversion semantics so
// translated OpCvtFI is bit-exact with the reference emulator.
func clampToI32(f float64) int32 {
	if f != f || f >= math.MaxInt32+1 || f < math.MinInt32 {
		return math.MinInt32
	}
	return int32(f)
}
