package host

import (
	"errors"
	"fmt"
)

// Canonical 8-byte serialization of a host instruction:
//
//	byte 0: opcode
//	byte 1: rd
//	byte 2: rs1
//	byte 3: rs2
//	bytes 4-7: imm, little-endian
//
// This is a storage format (code cache persistence, round-trip tests);
// the architectural instruction size remains InstBytes.

// EncodedBytes is the serialized size of one instruction.
const EncodedBytes = 8

// ErrTruncated is returned when fewer than EncodedBytes are available.
var ErrTruncated = errors.New("host: truncated instruction record")

// Encode appends the canonical serialization of inst to dst.
func Encode(dst []byte, inst Inst) []byte {
	if inst.Op >= NumOps {
		panic(fmt.Sprintf("host: encode invalid opcode %d", inst.Op))
	}
	return append(dst,
		byte(inst.Op), byte(inst.Rd), byte(inst.Rs1), byte(inst.Rs2),
		byte(inst.Imm), byte(inst.Imm>>8), byte(inst.Imm>>16), byte(inst.Imm>>24))
}

// Decode decodes one instruction record from the start of b.
func Decode(b []byte) (Inst, error) {
	if len(b) < EncodedBytes {
		return Inst{}, ErrTruncated
	}
	op := Op(b[0])
	if op >= NumOps {
		return Inst{}, fmt.Errorf("host: undefined opcode byte %#02x", b[0])
	}
	if b[1] >= NumRegs || b[2] >= NumRegs || b[3] >= NumRegs {
		return Inst{}, fmt.Errorf("host: register out of range in %s", op)
	}
	return Inst{
		Op:  op,
		Rd:  Reg(b[1]),
		Rs1: Reg(b[2]),
		Rs2: Reg(b[3]),
		Imm: int32(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24),
	}, nil
}

// LoadImm32 appends the canonical two-instruction sequence materializing
// a 32-bit constant into rd (lui + ori). When the constant fits in the
// unsigned 16-bit ori immediate a single instruction is emitted; the
// translator relies on this to keep short constants cheap.
func LoadImm32(dst []Inst, rd Reg, v uint32) []Inst {
	hi := v >> 16
	lo := v & 0xffff
	if hi == 0 {
		return append(dst, Inst{Op: Ori, Rd: rd, Rs1: RZero, Imm: int32(lo)})
	}
	dst = append(dst, Inst{Op: Lui, Rd: rd, Imm: int32(hi)})
	if lo != 0 {
		dst = append(dst, Inst{Op: Ori, Rd: rd, Rs1: rd, Imm: int32(lo)})
	}
	return dst
}

// LoadImmLen reports how many instructions LoadImm32 will emit for v.
func LoadImmLen(v uint32) int {
	hi := v >> 16
	lo := v & 0xffff
	switch {
	case hi == 0:
		return 1
	case lo == 0:
		return 1
	default:
		return 2
	}
}
