package host

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for op := Op(0); op < NumOps; op++ {
		for trial := 0; trial < 32; trial++ {
			in := Inst{
				Op:  op,
				Rd:  Reg(r.Intn(NumRegs)),
				Rs1: Reg(r.Intn(NumRegs)),
				Rs2: Reg(r.Intn(NumRegs)),
				Imm: int32(r.Uint32()),
			}
			enc := Encode(nil, in)
			if len(enc) != EncodedBytes {
				t.Fatalf("%s: %d bytes", op, len(enc))
			}
			out, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s: %v", op, err)
			}
			if out != in {
				t.Fatalf("%s: round trip mismatch\n in=%+v\nout=%+v", op, in, out)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0, 0, 0}); err != ErrTruncated {
		t.Fatalf("short decode err = %v", err)
	}
	bad := Encode(nil, Inst{Op: Nop})
	bad[0] = byte(NumOps)
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad opcode should fail")
	}
	bad2 := Encode(nil, Inst{Op: Add})
	bad2[1] = NumRegs
	if _, err := Decode(bad2); err == nil {
		t.Fatal("register out of range should fail")
	}
}

func TestLoadImm32(t *testing.T) {
	cases := []uint32{0, 1, 0xffff, 0x1_0000, 0xdead_0000, 0xdead_beef, 0xffff_ffff}
	for _, v := range cases {
		seq := LoadImm32(nil, RT0, v)
		if len(seq) != LoadImmLen(v) {
			t.Fatalf("LoadImmLen(%#x) = %d, emitted %d", v, LoadImmLen(v), len(seq))
		}
		c := NewCPU(mem.NewSparse())
		var out Outcome
		for i := range seq {
			if err := c.Exec(&seq[i], &out); err != nil {
				t.Fatal(err)
			}
		}
		if c.R[RT0] != v {
			t.Fatalf("LoadImm32(%#x) produced %#x", v, c.R[RT0])
		}
	}
}

// execSeq runs a sequence of instructions on a fresh CPU and returns it.
func execSeq(t *testing.T, setup func(c *CPU), seq []Inst) *CPU {
	t.Helper()
	c := NewCPU(mem.NewSparse())
	if setup != nil {
		setup(c)
	}
	var out Outcome
	for i := range seq {
		if err := c.Exec(&seq[i], &out); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestALUOps(t *testing.T) {
	c := execSeq(t, func(c *CPU) {
		c.R[1] = 10
		c.R[2] = 3
	}, []Inst{
		{Op: Add, Rd: 3, Rs1: 1, Rs2: 2},    // 13
		{Op: Sub, Rd: 4, Rs1: 1, Rs2: 2},    // 7
		{Op: Mul, Rd: 5, Rs1: 1, Rs2: 2},    // 30
		{Op: Div, Rd: 6, Rs1: 1, Rs2: 2},    // 3
		{Op: And, Rd: 7, Rs1: 1, Rs2: 2},    // 2
		{Op: Or, Rd: 8, Rs1: 1, Rs2: 2},     // 11
		{Op: Xor, Rd: 9, Rs1: 1, Rs2: 2},    // 9
		{Op: Slt, Rd: 10, Rs1: 2, Rs2: 1},   // 1
		{Op: Sltu, Rd: 11, Rs1: 1, Rs2: 2},  // 0
		{Op: Addi, Rd: 12, Rs1: 1, Imm: -4}, // 6
		{Op: Slli, Rd: 13, Rs1: 2, Imm: 4},  // 48
		{Op: Srai, Rd: 14, Rs1: 1, Imm: 1},  // 5
	})
	want := map[Reg]uint32{3: 13, 4: 7, 5: 30, 6: 3, 7: 2, 8: 11, 9: 9, 10: 1, 11: 0, 12: 6, 13: 48, 14: 5}
	for r, v := range want {
		if c.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.R[r], v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	c := execSeq(t, nil, []Inst{
		{Op: Ori, Rd: RZero, Rs1: RZero, Imm: 0x7fff},
		{Op: Addi, Rd: RZero, Rs1: RZero, Imm: 1},
	})
	if c.R[0] != 0 {
		t.Fatalf("r0 = %d", c.R[0])
	}
}

func TestLoadStore(t *testing.T) {
	c := execSeq(t, func(c *CPU) {
		c.R[1] = 0x2000
		c.R[2] = 0xcafe
	}, []Inst{
		{Op: St, Rs1: 1, Rs2: 2, Imm: 16},
		{Op: Ld, Rd: 3, Rs1: 1, Imm: 16},
	})
	if c.R[3] != 0xcafe {
		t.Fatalf("ld = %#x", c.R[3])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	c := NewCPU(mem.NewSparse())
	c.PC = 0x1000
	c.R[1] = 5
	c.R[2] = 5
	var out Outcome
	beq := Inst{Op: Beq, Rs1: 1, Rs2: 2, Imm: 0x20}
	if err := c.Exec(&beq, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Taken || c.PC != 0x1000+InstBytes+0x20 {
		t.Fatalf("beq: taken=%v pc=%#x", out.Taken, c.PC)
	}

	c.PC = 0x1000
	bne := Inst{Op: Bne, Rs1: 1, Rs2: 2, Imm: 0x20}
	if err := c.Exec(&bne, &out); err != nil {
		t.Fatal(err)
	}
	if out.Taken || c.PC != 0x1000+InstBytes {
		t.Fatalf("bne: taken=%v pc=%#x", out.Taken, c.PC)
	}

	c.PC = 0x1000
	jal := Inst{Op: Jal, Rd: RTLR, Imm: 0x100}
	if err := c.Exec(&jal, &out); err != nil {
		t.Fatal(err)
	}
	if c.R[RTLR] != 0x1004 || c.PC != 0x1104 {
		t.Fatalf("jal: lr=%#x pc=%#x", c.R[RTLR], c.PC)
	}

	c.PC = 0x1000
	c.R[4] = 0x9000
	jalr := Inst{Op: Jalr, Rd: 5, Rs1: 4, Imm: 8}
	if err := c.Exec(&jalr, &out); err != nil {
		t.Fatal(err)
	}
	if c.PC != 0x9008 || c.R[5] != 0x1004 {
		t.Fatalf("jalr: pc=%#x rd=%#x", c.PC, c.R[5])
	}
}

func TestNegativeBranchOffset(t *testing.T) {
	c := NewCPU(mem.NewSparse())
	c.PC = 0x1000
	c.R[1] = 1
	var out Outcome
	b := Inst{Op: Bne, Rs1: 1, Rs2: 0, Imm: -16}
	if err := c.Exec(&b, &out); err != nil {
		t.Fatal(err)
	}
	if c.PC != 0x1000+InstBytes-16 {
		t.Fatalf("pc = %#x", c.PC)
	}
}

func TestFPOps(t *testing.T) {
	c := execSeq(t, func(c *CPU) {
		c.R[1] = 7
		c.R[2] = 2
	}, []Inst{
		{Op: FCvtIF, Rd: 0, Rs1: 1},       // f0 = 7
		{Op: FCvtIF, Rd: 1, Rs1: 2},       // f1 = 2
		{Op: FAdd, Rd: 2, Rs1: 0, Rs2: 1}, // 9
		{Op: FMul, Rd: 3, Rs1: 0, Rs2: 1}, // 14
		{Op: FDiv, Rd: 4, Rs1: 0, Rs2: 1}, // 3.5
		{Op: FSub, Rd: 5, Rs1: 0, Rs2: 1}, // 5
		{Op: FMov, Rd: 6, Rs1: 4},
		{Op: FCvtFI, Rd: 3, Rs1: 4},      // r3 = 3
		{Op: FLt, Rd: 4, Rs1: 1, Rs2: 0}, // r4 = 1
		{Op: FEq, Rd: 5, Rs1: 0, Rs2: 0}, // r5 = 1
	})
	if c.F[2] != 9 || c.F[3] != 14 || c.F[4] != 3.5 || c.F[5] != 5 || c.F[6] != 3.5 {
		t.Fatalf("fp: %v %v %v %v %v", c.F[2], c.F[3], c.F[4], c.F[5], c.F[6])
	}
	if c.R[3] != 3 || c.R[4] != 1 || c.R[5] != 1 {
		t.Fatalf("fp->int: r3=%d r4=%d r5=%d", c.R[3], c.R[4], c.R[5])
	}
}

func TestFPLoadStore(t *testing.T) {
	c := execSeq(t, func(c *CPU) {
		c.R[1] = 0x3000
		c.R[2] = 42
	}, []Inst{
		{Op: FCvtIF, Rd: 7, Rs1: 2},
		{Op: FSt, Rs1: 1, Rs2: 7, Imm: 8},
		{Op: FLd, Rd: 8, Rs1: 1, Imm: 8},
	})
	if c.F[8] != 42 {
		t.Fatalf("fld = %v", c.F[8])
	}
}

func TestGuestRegMapping(t *testing.T) {
	if GuestReg(0) != 32 || GuestReg(7) != 39 {
		t.Fatal("guest GPR mapping wrong")
	}
	if GuestFReg(0) != 16 || GuestFReg(7) != 23 {
		t.Fatal("guest FP mapping wrong")
	}
	// TOL and app registers must not overlap.
	if RTLR >= RGuestRegBase {
		t.Fatal("TOL registers leak into app half")
	}
	if RAllocBase <= RFlags || RAllocEnd != 63 {
		t.Fatal("allocator range wrong")
	}
}

func TestExecClassLatencies(t *testing.T) {
	cases := []struct {
		op   Op
		want int
	}{
		{Add, 1}, {Mul, 2}, {Div, 2}, {FAdd, 2}, {FMul, 5}, {FDiv, 5}, {FCvtIF, 2},
	}
	for _, tc := range cases {
		i := Inst{Op: tc.op}
		if got := i.Class().Latency(); got != tc.want {
			t.Errorf("%s latency = %d, want %d", tc.op, got, tc.want)
		}
	}
}

func TestHaltOutcome(t *testing.T) {
	c := NewCPU(mem.NewSparse())
	var out Outcome
	h := Inst{Op: Halt}
	if err := c.Exec(&h, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Halted {
		t.Fatal("halt not reported")
	}
}

func TestCPUStartsWithGuestWindowBase(t *testing.T) {
	c := NewCPU(mem.NewSparse())
	if c.R[RMemBase] != mem.GuestWindowBase {
		t.Fatalf("RMemBase = %#x", c.R[RMemBase])
	}
}
