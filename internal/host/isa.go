// Package host defines the host ISA of the co-designed processor: a
// simple RISC with 64 integer registers and 32 floating-point
// registers, load/store architecture, and compare-and-branch control
// flow. Following the paper, the integer register file is logically
// divided between TOL (r1–r31) and the translated application code
// (r32–r63) to reduce transition overheads.
//
// Each instruction architecturally occupies 4 bytes of the host address
// space (InstBytes); the bit-level binary encoding of the modeled host
// was never published, so code is stored as decoded instructions, and a
// canonical 8-byte serialization (encode.go) exists for storage and
// round-trip testing.
package host

import "fmt"

// InstBytes is the architectural size of one host instruction. Host PCs
// advance by InstBytes; instruction-cache behaviour is modeled on these
// addresses.
const InstBytes = 4

// Reg is a host integer register, 0..63. R0 is hardwired to zero.
type Reg uint8

// NumRegs is the size of the host integer register file.
const NumRegs = 64

// NumFRegs is the size of the host FP register file.
const NumFRegs = 32

// Register-convention assignments. The split mirrors the paper: 32
// registers are only accessible by TOL and 32 only by the translated
// application code.
const (
	RZero Reg = 0 // hardwired zero

	// TOL-owned registers (r1..r31). T-series names are scratch used by
	// TOL cost streams and runtime glue.
	RT0  Reg = 1
	RT1  Reg = 2
	RT2  Reg = 3
	RT3  Reg = 4
	RT4  Reg = 5
	RT5  Reg = 6
	RT6  Reg = 7
	RTSP Reg = 30 // TOL stack pointer
	RTLR Reg = 31 // TOL link register

	// Application-owned registers (r32..r63).
	RGuestRegBase Reg = 32 // r32..r39 hold guest EAX..EDI
	RFlags        Reg = 40 // guest EFLAGS image
	RMemBase      Reg = 41 // guest memory window base (constant)
	RAppS0        Reg = 42 // translated-code scratch
	RAppS1        Reg = 43 // translated-code scratch
	RAllocBase    Reg = 44 // first register available to the SBM allocator
	RAllocEnd     Reg = 63 // last register available to the SBM allocator
)

// FReg is a host floating-point register, 0..31.
type FReg uint8

// FP register convention: f0..f15 are TOL-owned, f16..f23 hold guest
// F0..F7, f24..f31 are translated-code scratch.
const (
	FGuestBase FReg = 16
	FAppS0     FReg = 24
	FAppS1     FReg = 25
)

// GuestReg returns the host register holding guest GPR g.
func GuestReg(g uint8) Reg { return RGuestRegBase + Reg(g) }

// GuestFReg returns the host FP register holding guest FP register g.
func GuestFReg(g uint8) FReg { return FGuestBase + FReg(g) }

// Op is a host opcode.
type Op uint8

// Host opcodes.
const (
	Nop Op = iota
	Halt

	// Constant construction.
	Lui // rd = imm << 16
	Ori // rd = rs1 | uimm16 (also the low half of LI expansions)

	// ALU register-register.
	Add
	Sub
	And
	Or
	Xor
	Sll
	Srl
	Sra
	Mul // complex integer (2-cycle)
	Div // complex integer (2-cycle); division by zero yields all-ones
	Slt
	Sltu

	// ALU register-immediate (imm is sign-extended except logical ops).
	Addi
	Andi
	Xori
	Slli
	Srli
	Srai
	Slti
	Sltiu

	// Memory (32-bit words; FLd/FSt move 64-bit doubles).
	Ld // rd = mem32[rs1+imm]
	St // mem32[rs1+imm] = rs2

	// Control flow. Branch offsets are byte offsets relative to the
	// address of the next instruction.
	Beq
	Bne
	Blt
	Bge
	Bltu
	Bgeu
	Jal  // rd = return address; pc += imm
	Jalr // rd = return address; pc = rs1 + imm

	// Floating point.
	FAdd // simple FP (2-cycle)
	FSub
	FMov
	FMul // complex FP (5-cycle)
	FDiv
	FLd    // fd = mem64[rs1+imm]
	FSt    // mem64[rs1+imm] = fs2
	FEq    // rd = (fs1 == fs2)
	FLt    // rd = (fs1 < fs2)
	FCvtIF // fd = float64(int32(rs1))
	FCvtFI // rd = int32(fs1)

	NumOps
)

var opNames = [NumOps]string{
	"nop", "halt", "lui", "ori",
	"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mul", "div", "slt", "sltu",
	"addi", "andi", "xori", "slli", "srli", "srai", "slti", "sltiu",
	"ld", "st",
	"beq", "bne", "blt", "bge", "bltu", "bgeu", "jal", "jalr",
	"fadd", "fsub", "fmov", "fmul", "fdiv", "fld", "fst", "feq", "flt", "fcvtif", "fcvtfi",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("hop?%d", uint8(o))
}

// Inst is a decoded host instruction. For FP operations the register
// fields index the FP register file (Fd/Fs aliases below make call
// sites readable).
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// IsBranch reports whether the instruction may redirect control flow.
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsCondBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge, Bltu, Bgeu:
		return true
	}
	return false
}

// IsIndirect reports whether the branch target comes from a register.
func (i *Inst) IsIndirect() bool { return i.Op == Jalr }

// IsLoad reports whether the instruction reads data memory.
func (i *Inst) IsLoad() bool { return i.Op == Ld || i.Op == FLd }

// IsStore reports whether the instruction writes data memory.
func (i *Inst) IsStore() bool { return i.Op == St || i.Op == FSt }

// IsMemAccess reports whether the instruction touches data memory.
func (i *Inst) IsMemAccess() bool { return i.IsLoad() || i.IsStore() }

// IsFP reports whether the instruction executes on an FP unit.
func (i *Inst) IsFP() bool {
	switch i.Op {
	case FAdd, FSub, FMov, FMul, FDiv, FEq, FLt, FCvtIF, FCvtFI, FLd, FSt:
		return true
	}
	return false
}

// ExecClass categorizes instructions by execution-unit latency class.
type ExecClass uint8

// Execution classes per Table I: each pipe has one simple (1-cycle) and
// one complex (2-cycle) integer unit, and one simple (2-cycle) and one
// complex (5-cycle) FP unit.
const (
	ClassSimpleInt  ExecClass = iota // 1 cycle
	ClassComplexInt                  // 2 cycles
	ClassSimpleFP                    // 2 cycles
	ClassComplexFP                   // 5 cycles
	ClassMem                         // address calc in EXE + cache access
)

// Class returns the execution class of the instruction.
func (i *Inst) Class() ExecClass {
	switch i.Op {
	case Mul, Div:
		return ClassComplexInt
	case FMul, FDiv:
		return ClassComplexFP
	case FAdd, FSub, FMov, FEq, FLt, FCvtIF, FCvtFI:
		return ClassSimpleFP
	case Ld, St, FLd, FSt:
		return ClassMem
	default:
		return ClassSimpleInt
	}
}

// Latency returns the execution latency in cycles for non-memory
// instructions (memory latency is determined by the cache hierarchy).
func (c ExecClass) Latency() int {
	switch c {
	case ClassSimpleInt:
		return 1
	case ClassComplexInt:
		return 2
	case ClassSimpleFP:
		return 2
	case ClassComplexFP:
		return 5
	}
	return 1
}

func (i *Inst) String() string {
	switch i.Op {
	case Nop, Halt:
		return i.Op.String()
	case Lui:
		return fmt.Sprintf("lui r%d, %#x", i.Rd, uint32(i.Imm))
	case Ori, Addi, Andi, Xori, Slli, Srli, Srai, Slti, Sltiu:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Div, Slt, Sltu:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case Ld:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case St:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case Beq, Bne, Blt, Bge, Bltu, Bgeu:
		return fmt.Sprintf("%s r%d, r%d, %+d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case Jal:
		return fmt.Sprintf("jal r%d, %+d", i.Rd, i.Imm)
	case Jalr:
		return fmt.Sprintf("jalr r%d, r%d, %d", i.Rd, i.Rs1, i.Imm)
	case FAdd, FSub, FMov, FMul, FDiv, FEq, FLt:
		return fmt.Sprintf("%s f%d, f%d, f%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FLd:
		return fmt.Sprintf("fld f%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case FSt:
		return fmt.Sprintf("fst f%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case FCvtIF:
		return fmt.Sprintf("fcvtif f%d, r%d", i.Rd, i.Rs1)
	case FCvtFI:
		return fmt.Sprintf("fcvtfi r%d, f%d", i.Rd, i.Rs1)
	}
	return i.Op.String()
}
