// Package mem provides the sparse simulated memory used by both the
// authoritative guest emulator and the co-design component, plus the
// host address-space layout of the modeled HW/SW co-designed processor.
//
// Memory is little-endian and organized as 4 KiB pages allocated on
// first touch, so multi-gigabyte address spaces cost only what is used.
package mem

import "fmt"

// PageSize is the size of a memory page in bytes. The data TLB in the
// timing simulator uses the same page granularity.
const PageSize = 4096

const (
	pageShift = 12
	pageMask  = PageSize - 1
)

// Memory is the minimal access interface shared by the emulators.
type Memory interface {
	Read8(addr uint32) uint8
	Read32(addr uint32) uint32
	Write8(addr uint32, v uint8)
	Write32(addr uint32, v uint32)
	Read64(addr uint32) uint64
	Write64(addr uint32, v uint64)
}

// Sparse is a sparse paged memory. The zero value is ready to use.
type Sparse struct {
	pages map[uint32]*[PageSize]byte

	// lastPageNum/lastPage cache the most recently touched page, which
	// captures the strong page locality of both interpreter state and
	// translated-code accesses.
	lastPageNum uint32
	lastPage    *[PageSize]byte
}

// NewSparse returns an empty sparse memory.
func NewSparse() *Sparse {
	return &Sparse{pages: make(map[uint32]*[PageSize]byte)}
}

func (s *Sparse) page(addr uint32) *[PageSize]byte {
	num := addr >> pageShift
	if s.lastPage != nil && s.lastPageNum == num {
		return s.lastPage
	}
	if s.pages == nil {
		s.pages = make(map[uint32]*[PageSize]byte)
	}
	p, ok := s.pages[num]
	if !ok {
		p = new([PageSize]byte)
		s.pages[num] = p
	}
	s.lastPageNum = num
	s.lastPage = p
	return p
}

// Read8 reads one byte.
func (s *Sparse) Read8(addr uint32) uint8 {
	return s.page(addr)[addr&pageMask]
}

// Write8 writes one byte.
func (s *Sparse) Write8(addr uint32, v uint8) {
	s.page(addr)[addr&pageMask] = v
}

// Read32 reads a little-endian 32-bit word. Accesses may straddle a
// page boundary; they are assembled bytewise in that case.
func (s *Sparse) Read32(addr uint32) uint32 {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := s.page(addr)
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(s.Read8(addr)) |
		uint32(s.Read8(addr+1))<<8 |
		uint32(s.Read8(addr+2))<<16 |
		uint32(s.Read8(addr+3))<<24
}

// Write32 writes a little-endian 32-bit word.
func (s *Sparse) Write32(addr uint32, v uint32) {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := s.page(addr)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	s.Write8(addr, byte(v))
	s.Write8(addr+1, byte(v>>8))
	s.Write8(addr+2, byte(v>>16))
	s.Write8(addr+3, byte(v>>24))
}

// Read64 reads a little-endian 64-bit word.
func (s *Sparse) Read64(addr uint32) uint64 {
	return uint64(s.Read32(addr)) | uint64(s.Read32(addr+4))<<32
}

// Write64 writes a little-endian 64-bit word.
func (s *Sparse) Write64(addr uint32, v uint64) {
	s.Write32(addr, uint32(v))
	s.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (s *Sparse) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.Read8(addr + uint32(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (s *Sparse) WriteBytes(addr uint32, b []byte) {
	for i, v := range b {
		s.Write8(addr+uint32(i), v)
	}
}

// PageCount reports how many pages have been touched. Useful in tests
// and for footprint statistics.
func (s *Sparse) PageCount() int { return len(s.pages) }

// Pages returns the set of touched page numbers. Used by the state
// checker to hash dirty memory cheaply.
func (s *Sparse) Pages() []uint32 {
	out := make([]uint32, 0, len(s.pages))
	for n := range s.pages {
		out = append(out, n)
	}
	return out
}

// PageData returns the raw contents of page n, or nil if untouched.
func (s *Sparse) PageData(n uint32) *[PageSize]byte {
	if s.pages == nil {
		return nil
	}
	return s.pages[n]
}

// Host address-space layout of the co-designed processor. The concealed
// memory (everything below GuestWindowBase) holds the TOL binary, its
// data structures and the code cache; the guest's physical memory is
// mapped at a fixed window. TOL works with physical addresses, matching
// the paper's note that the instruction path has no TLB.
const (
	// TOLCodeBase is where the TOL routines live. Each TOL activity is
	// assigned a PC range inside this region by the cost model, so the
	// instruction-cache behaviour of TOL emerges from which routines run.
	TOLCodeBase uint32 = 0x0010_0000
	TOLCodeSize uint32 = 0x0004_0000 // 256 KiB of TOL text

	// DispatchTableBase is the interpreter's opcode dispatch table.
	DispatchTableBase uint32 = 0x0200_0000

	// TransTableBase is the open-addressing hash table mapping guest
	// instruction pointers to code-cache entry points. Code cache
	// lookups probe this region; the paper identifies those probes as
	// a dominant, data-intensive overhead for indirect-branch heavy
	// applications.
	TransTableBase uint32 = 0x0210_0000

	// ProfileTableBase holds per-basic-block execution counters and
	// edge profiles updated by BBM instrumentation code.
	ProfileTableBase uint32 = 0x0228_0000

	// IBTCBase is the Indirect Branch Translation Cache, probed inline
	// by translated code.
	IBTCBase uint32 = 0x0240_0000

	// IRBufBase is the scratch region the optimizer uses for its
	// intermediate representation while forming superblocks.
	IRBufBase uint32 = 0x0250_0000

	// GuestStateBase is the in-memory guest architectural state block
	// (8 GPRs, EFLAGS, EIP, 8 FP registers) read/written by the
	// interpreter and by translation entry/exit glue.
	GuestStateBase uint32 = 0x0300_0000

	// CodeCacheBase is where translated host code is placed. Host PCs
	// of translated basic blocks and superblocks fall in this region.
	CodeCacheBase uint32 = 0x0400_0000
	CodeCacheSize uint32 = 0x0080_0000 // 8 MiB

	// TOLStackBase is the top of the small stack TOL routines use.
	TOLStackBase uint32 = 0x0510_0000

	// GuestWindowBase maps guest physical address g at host address
	// GuestWindowBase+g, so translated memory operations address guest
	// data directly.
	GuestWindowBase uint32 = 0x4000_0000
)

// GuestToHost translates a guest physical address to its host window address.
func GuestToHost(g uint32) uint32 { return GuestWindowBase + g }

// GuestView presents the guest portion of a host address space as a
// guest-addressed Memory: the co-design component's view of the
// emulated application's memory.
type GuestView struct {
	Host Memory
}

// Read8 implements Memory.
func (v GuestView) Read8(a uint32) uint8 { return v.Host.Read8(GuestToHost(a)) }

// Read32 implements Memory.
func (v GuestView) Read32(a uint32) uint32 { return v.Host.Read32(GuestToHost(a)) }

// Read64 implements Memory.
func (v GuestView) Read64(a uint32) uint64 { return v.Host.Read64(GuestToHost(a)) }

// Write8 implements Memory.
func (v GuestView) Write8(a uint32, x uint8) { v.Host.Write8(GuestToHost(a), x) }

// Write32 implements Memory.
func (v GuestView) Write32(a uint32, x uint32) { v.Host.Write32(GuestToHost(a), x) }

// Write64 implements Memory.
func (v GuestView) Write64(a uint32, x uint64) { v.Host.Write64(GuestToHost(a), x) }

// HostToGuest translates a host window address back to the guest address.
// It panics if the address is outside the guest window, which would
// indicate a translator bug.
func HostToGuest(h uint32) uint32 {
	if h < GuestWindowBase {
		panic(fmt.Sprintf("mem: host address %#x below guest window", h))
	}
	return h - GuestWindowBase
}

// InGuestWindow reports whether a host address falls inside the guest
// memory window.
func InGuestWindow(h uint32) bool { return h >= GuestWindowBase }

// Guest address-space layout used by the workload generator. These are
// guest physical addresses (the reproduction models user-level code
// only, so virtual = physical on the guest side).
const (
	GuestCodeBase  uint32 = 0x0804_8000
	GuestDataBase  uint32 = 0x0900_0000
	GuestStackTop  uint32 = 0x0BFF_F000
	GuestTableBase uint32 = 0x0A00_0000 // jump tables for indirect branches
)
