package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip8(t *testing.T) {
	s := NewSparse()
	s.Write8(0x1234, 0xab)
	if got := s.Read8(0x1234); got != 0xab {
		t.Fatalf("Read8 = %#x, want 0xab", got)
	}
	if got := s.Read8(0x1235); got != 0 {
		t.Fatalf("untouched byte = %#x, want 0", got)
	}
}

func TestReadWriteRoundTrip32(t *testing.T) {
	s := NewSparse()
	s.Write32(0x8000, 0xdeadbeef)
	if got := s.Read32(0x8000); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, want 0xdeadbeef", got)
	}
	// Little-endian byte order.
	if got := s.Read8(0x8000); got != 0xef {
		t.Fatalf("low byte = %#x, want 0xef", got)
	}
	if got := s.Read8(0x8003); got != 0xde {
		t.Fatalf("high byte = %#x, want 0xde", got)
	}
}

func TestRead32StraddlesPages(t *testing.T) {
	s := NewSparse()
	addr := uint32(PageSize - 2)
	s.Write32(addr, 0x11223344)
	if got := s.Read32(addr); got != 0x11223344 {
		t.Fatalf("straddling Read32 = %#x, want 0x11223344", got)
	}
	if s.PageCount() != 2 {
		t.Fatalf("PageCount = %d, want 2", s.PageCount())
	}
}

func TestRead64RoundTrip(t *testing.T) {
	s := NewSparse()
	s.Write64(0x100, 0x0102030405060708)
	if got := s.Read64(0x100); got != 0x0102030405060708 {
		t.Fatalf("Read64 = %#x", got)
	}
}

func TestQuickRoundTrip32(t *testing.T) {
	s := NewSparse()
	f := func(addr uint32, v uint32) bool {
		s.Write32(addr, v)
		return s.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip64(t *testing.T) {
	s := NewSparse()
	f := func(addr uint32, v uint64) bool {
		// Avoid wrapping past the top of the address space.
		if addr > 0xffff_fff0 {
			addr = 0xffff_fff0
		}
		s.Write64(addr, v)
		return s.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := NewSparse()
	in := []byte{1, 2, 3, 4, 5, 250, 251, 252}
	s.WriteBytes(PageSize-4, in) // straddle a page boundary
	out := s.ReadBytes(PageSize-4, len(in))
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Sparse
	s.Write32(0, 42)
	if got := s.Read32(0); got != 42 {
		t.Fatalf("zero-value Sparse Read32 = %d, want 42", got)
	}
}

func TestGuestHostWindow(t *testing.T) {
	g := uint32(0x0804_8000)
	h := GuestToHost(g)
	if h != GuestWindowBase+g {
		t.Fatalf("GuestToHost = %#x", h)
	}
	if back := HostToGuest(h); back != g {
		t.Fatalf("HostToGuest = %#x, want %#x", back, g)
	}
	if !InGuestWindow(h) {
		t.Fatal("InGuestWindow(h) = false")
	}
	if InGuestWindow(TOLCodeBase) {
		t.Fatal("TOL code should not be in guest window")
	}
}

func TestHostToGuestPanicsBelowWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for address below window")
		}
	}()
	HostToGuest(0x1000)
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	type region struct {
		name string
		lo   uint32
		hi   uint32
	}
	regions := []region{
		{"tolcode", TOLCodeBase, TOLCodeBase + TOLCodeSize},
		{"dispatch", DispatchTableBase, DispatchTableBase + 0x1_0000},
		{"transtable", TransTableBase, TransTableBase + 0x10_0000},
		{"profile", ProfileTableBase, ProfileTableBase + 0x10_0000},
		{"ibtc", IBTCBase, IBTCBase + 0x1_0000},
		{"irbuf", IRBufBase, IRBufBase + 0x10_0000},
		{"gueststate", GuestStateBase, GuestStateBase + 0x1000},
		{"codecache", CodeCacheBase, CodeCacheBase + CodeCacheSize},
		{"tolstack", TOLStackBase - 0x1_0000, TOLStackBase},
		{"guestwin", GuestWindowBase, 0xffff_ffff},
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("regions %s and %s overlap", a.name, b.name)
			}
		}
	}
}

func BenchmarkSparseWrite32(b *testing.B) {
	s := NewSparse()
	for i := 0; i < b.N; i++ {
		s.Write32(uint32(i*4)&0xff_ffff, uint32(i))
	}
}

func BenchmarkSparseRead32(b *testing.B) {
	s := NewSparse()
	for i := 0; i < 1<<16; i += 4 {
		s.Write32(uint32(i), uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read32(uint32(i*4) & 0xffff)
	}
}
