package sample

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/guest"
	"repro/internal/snapshot"
	"repro/internal/timing"
	"repro/internal/tol"
)

// BlobCache persists opaque JSON blobs under string keys — the subset
// of internal/store's raw interface the sampling runner uses to cache
// fast-forward checkpoint bundles, so repeated sampled runs of the same
// workload and plan (e.g. darco-serve re-submissions) warm-start
// without re-running the functional pass. internal/store.Store
// implements it.
type BlobCache interface {
	GetRaw(key string) (json.RawMessage, bool, error)
	PutRaw(key string, raw json.RawMessage) error
}

// Runner executes one sampled run. The zero value is not usable: TOL,
// Timing and Sample must be set (darco fills them from its resolved
// Config).
type Runner struct {
	TOL       tol.Config
	Timing    timing.Config
	Mode      timing.Mode
	MaxCycles uint64 // per-interval detailed-simulation guard (0 = none)
	Sample    Config

	// Parallel bounds concurrent interval simulations (< 1 selects
	// GOMAXPROCS). Results are bit-identical for any value.
	Parallel int

	// Program is the workload content fingerprint, used to label
	// checkpoint envelopes and key the fast-forward cache. Empty
	// disables caching (an unfingerprinted program has no stable
	// identity to file bundles under).
	Program string

	// Cache, when non-nil and Program is set, persists the fast-forward
	// bundle (checkpoints + exact functional totals) across runs.
	Cache BlobCache
}

// Result is the outcome of a sampled run: exact functional state plus
// estimated timing.
type Result struct {
	// Report is the sampling digest: plan, measured intervals, metric
	// estimates with error bars.
	Report *Report

	// Timing is the whole-run estimate, extrapolated from the measured
	// intervals — shaped exactly like a full run's result so downstream
	// consumers (summaries, figures) need no special casing.
	Timing *timing.Result

	// Exact functional outputs from the fast-forward pass.
	TOL            tol.Stats
	Final          guest.State
	CodeCacheInsts int
	Translations   int
}

// ffBundleVersion versions the persisted fast-forward bundle.
const ffBundleVersion = 1

// ffSnap is one interval checkpoint inside a bundle: the interval index
// and the snapshot.Machine envelope, kept as raw JSON so each
// measurement decodes its own private copy.
type ffSnap struct {
	Index   int             `json:"index"`
	Machine json.RawMessage `json:"machine"`
}

// ffBundle is everything the functional fast-forward pass produces:
// interval checkpoints plus the exact whole-run functional totals. It
// is the unit cached through BlobCache.
type ffBundle struct {
	Version        int         `json:"version"`
	Program        string      `json:"program,omitempty"`
	Sample         Config      `json:"sample"`
	GuestInsts     uint64      `json:"guest_insts"`
	HostInsts      uint64      `json:"host_insts"`
	Snapshots      []ffSnap    `json:"snapshots"`
	Stats          tol.Stats   `json:"stats"`
	Final          guest.State `json:"final"`
	CodeCacheInsts int         `json:"code_cache_insts"`
	Translations   int         `json:"translations"`
}

// cacheKey derives the bundle's store key: the program fingerprint plus
// a hash of everything that shapes the functional pass (the TOL
// configuration and the sampling plan). Timing configuration and mode
// deliberately do not participate — they only affect measurement, so
// one bundle serves every microarchitecture swept over the same
// workload.
func (r *Runner) cacheKey() (string, error) {
	tj, err := json.Marshal(&r.TOL)
	if err != nil {
		return "", fmt.Errorf("sample: TOL config not hashable: %w", err)
	}
	sj, err := json.Marshal(&r.Sample)
	if err != nil {
		return "", fmt.Errorf("sample: plan not hashable: %w", err)
	}
	h := fnv.New64a()
	h.Write(tj)
	h.Write([]byte{0})
	h.Write(sj)
	return fmt.Sprintf("ff|%s|%016x", r.Program, h.Sum64()), nil
}

// Run executes the sampled run: fast-forward (or bundle-cache hit),
// parallel interval measurement, extrapolation.
func (r *Runner) Run(ctx context.Context, p *guest.Program) (*Result, error) {
	if err := r.Sample.Validate(); err != nil {
		return nil, err
	}
	bundle, cached, err := r.loadOrFastForward(ctx, p)
	if err != nil {
		return nil, err
	}
	if bundle.GuestInsts == 0 {
		return nil, fmt.Errorf("sample: program retired no guest instructions")
	}

	// Measured intervals: every snapshot whose interval actually starts
	// inside the run (the fast-forward may checkpoint a boundary the
	// program ends before).
	var snaps []ffSnap
	for _, s := range bundle.Snapshots {
		if uint64(s.Index)*r.Sample.Interval < bundle.GuestInsts {
			snaps = append(snaps, s)
		}
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("sample: no measurable intervals (run of %d guest insts, interval %d)", bundle.GuestInsts, r.Sample.Interval)
	}

	intervals := make([]Interval, len(snaps))
	results := make([]timing.Result, len(snaps))
	errs := make([]error, len(snaps))
	workers := r.Parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			iv, res, err := r.measure(ctx, p, &snaps[i])
			intervals[i], results[i], errs[i] = iv, res, err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	est, metrics, estCycles := estimate(intervals, results, bundle.HostInsts)
	nIntervals := int((bundle.GuestInsts + r.Sample.Interval - 1) / r.Sample.Interval)
	rep := &Report{
		Config:     r.Sample,
		GuestInsts: bundle.GuestInsts,
		HostInsts:  bundle.HostInsts,
		Intervals:  nIntervals,
		FFCached:   cached,
		Measured:   intervals,
		Metrics:    metrics,
		EstCycles:  estCycles,
	}
	return &Result{
		Report:         rep,
		Timing:         &est,
		TOL:            bundle.Stats,
		Final:          bundle.Final,
		CodeCacheInsts: bundle.CodeCacheInsts,
		Translations:   bundle.Translations,
	}, nil
}

// loadOrFastForward serves the fast-forward bundle from the cache when
// possible, falling back to (and then persisting) a fresh functional
// pass. Cache failures degrade to simulation — a broken store never
// fails a run.
func (r *Runner) loadOrFastForward(ctx context.Context, p *guest.Program) (*ffBundle, bool, error) {
	var key string
	if r.Cache != nil && r.Program != "" {
		k, err := r.cacheKey()
		if err != nil {
			return nil, false, err
		}
		key = k
		if raw, ok, err := r.Cache.GetRaw(key); err == nil && ok {
			var b ffBundle
			if json.Unmarshal(raw, &b) == nil && b.Version == ffBundleVersion && b.Program == r.Program && b.Sample == r.Sample {
				return &b, true, nil
			}
		}
	}
	b, err := r.fastForward(ctx, p)
	if err != nil {
		return nil, false, err
	}
	if key != "" {
		if raw, err := json.Marshal(b); err == nil {
			_ = r.Cache.PutRaw(key, raw)
		}
	}
	return b, false, nil
}

// fastForward runs the program once in functional mode (the engine
// alone — no timing model), checkpointing the machine at the start of
// each selected interval's warm-up window and counting the exact
// stream length. The engine is bit-exact with the engine of a full
// detailed run, so the functional totals are exact, not estimates.
func (r *Runner) fastForward(ctx context.Context, p *guest.Program) (*ffBundle, error) {
	eng := tol.NewEngine(r.TOL, p)
	eng.SetContext(ctx)
	b := &ffBundle{Version: ffBundleVersion, Program: r.Program, Sample: r.Sample}

	snap := func(index int) error {
		m, err := snapshot.Capture(r.Program, eng, nil)
		if err != nil {
			return fmt.Errorf("sample: checkpoint at interval %d: %w", index, err)
		}
		raw, err := snapshot.Encode(m)
		if err != nil {
			return fmt.Errorf("sample: checkpoint at interval %d: %w", index, err)
		}
		b.Snapshots = append(b.Snapshots, ffSnap{Index: index, Machine: raw})
		return nil
	}

	// Interval 0 measures from reset: checkpoint the pristine machine.
	if err := snap(0); err != nil {
		return nil, err
	}
	var buf [512]timing.DynInst
	next := r.Sample.Every // next interval to checkpoint for
	for {
		// Warm-up for interval `next` begins Warmup guest insts before
		// its boundary.
		eng.SetStopAfter(uint64(next)*r.Sample.Interval - r.Sample.Warmup)
		for {
			n := eng.NextBatch(buf[:])
			if n == 0 {
				break
			}
			b.HostInsts += uint64(n)
		}
		if err := eng.Err(); err != nil {
			return nil, err
		}
		if !eng.Paused() {
			break // ran to completion before the next checkpoint
		}
		if err := snap(next); err != nil {
			return nil, err
		}
		next += r.Sample.Every
	}
	if !eng.Halted() {
		return nil, fmt.Errorf("sample: guest program did not halt")
	}
	b.GuestInsts = eng.Stats.DynTotal()
	b.Stats = eng.Stats
	b.Final = *eng.GuestState()
	b.CodeCacheInsts = eng.CC.UsedInsts()
	b.Translations = len(eng.CC.Translations())
	return b, nil
}

// measure simulates one interval in detail: restore the checkpointed
// engine, run a fresh (cold) simulator through the warm-up window, mark
// the baseline, run to the interval's end, and return the difference.
func (r *Runner) measure(ctx context.Context, p *guest.Program, s *ffSnap) (Interval, timing.Result, error) {
	m, err := snapshot.Decode(s.Machine)
	if err != nil {
		return Interval{}, timing.Result{}, fmt.Errorf("sample: interval %d: %w", s.Index, err)
	}
	eng, _, err := m.Restore(p)
	if err != nil {
		return Interval{}, timing.Result{}, fmt.Errorf("sample: interval %d: %w", s.Index, err)
	}
	eng.SetContext(ctx)
	start := uint64(s.Index) * r.Sample.Interval
	eng.SetStopAfter(start + r.Sample.Interval)

	sim := timing.NewSimulator(r.Timing, r.Mode)
	if r.MaxCycles != 0 {
		sim.MaxCycles = r.MaxCycles
	}
	sim.StopWhen = func() bool { return eng.Stats.DynTotal() >= start }
	var base timing.Result
	res, err := sim.RunContext(ctx, eng)
	if err == timing.ErrPaused {
		// Warm-up done: mark the baseline and measure to the interval
		// end (the engine pauses there; the pipeline then drains).
		base = sim.ResultSoFar()
		sim.StopWhen = nil
		res, err = sim.RunContext(ctx, eng)
	}
	if err != nil {
		return Interval{}, timing.Result{}, fmt.Errorf("sample: interval %d: %w", s.Index, err)
	}
	if err := eng.Err(); err != nil {
		return Interval{}, timing.Result{}, fmt.Errorf("sample: interval %d: %w", s.Index, err)
	}
	measured := res.Sub(&base)
	iv := Interval{
		Index:     s.Index,
		Start:     start,
		HostInsts: measured.TotalInsts(),
		Cycles:    measured.Cycles,
	}
	if iv.HostInsts > 0 {
		iv.CPI = float64(iv.Cycles) / float64(iv.HostInsts)
	}
	return iv, measured, nil
}
