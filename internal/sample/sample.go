// Package sample implements SimPoint-style interval sampling for
// billion-instruction runs: instead of simulating every guest
// instruction in the detailed timing model, the run is divided into
// fixed-size intervals of guest instructions, the machine is
// fast-forwarded through them in cheap functional mode (the co-design
// engine alone, which keeps every piece of TOL software state — profile
// counters, code cache, translation table — exactly as warm as a full
// run would), checkpointed at the boundaries of the selected intervals
// (internal/snapshot envelopes), and only the selected intervals are
// simulated in detail, in parallel across cores, each preceded by a
// configurable detailed warm-up that fills the cold microarchitectural
// structures before measurement begins.
//
// The whole-run statistics are then reconstructed as estimates: exact
// functional quantities (guest instruction counts, TOL statistics,
// final architectural state, total stream length) come from the
// fast-forward pass for free, while timing quantities are extrapolated
// with a ratio estimator — per-interval rates weighted by measured
// stream length — and reported with 95% confidence error bars derived
// from the across-interval variance. The estimator is deterministic:
// intervals are combined in index order, so results are independent of
// the number of workers.
package sample

import (
	"fmt"
	"math"

	"repro/internal/timing"
)

// Config selects the sampling plan. It is plain data: it participates
// in darco's memo-cache key, so sampled and full runs of the same
// workload never alias one cached result.
type Config struct {
	// Interval is the sampling interval in guest instructions.
	Interval uint64 `json:"interval"`

	// Every selects every k-th interval for detailed simulation
	// (1 = all intervals; the speedup over a full detailed run grows
	// roughly linearly with Every).
	Every int `json:"every"`

	// Warmup is the number of guest instructions simulated in detail
	// before each measured interval to warm the cold microarchitectural
	// structures (caches, TLBs, predictor). The warm-up window is
	// excluded from measurement. Must be smaller than Interval.
	Warmup uint64 `json:"warmup,omitempty"`
}

// DefaultConfig returns a sampling plan suited to the synthetic
// workload catalog: 200k-instruction intervals, every 4th simulated,
// 20k instructions of detailed warm-up.
func DefaultConfig() Config {
	return Config{Interval: 200_000, Every: 4, Warmup: 20_000}
}

// Validate rejects degenerate plans before any simulation starts.
func (c *Config) Validate() error {
	if c.Interval == 0 {
		return fmt.Errorf("sample: interval must be positive")
	}
	if c.Every < 1 {
		return fmt.Errorf("sample: every must be >= 1, got %d", c.Every)
	}
	if c.Warmup >= c.Interval {
		return fmt.Errorf("sample: warmup (%d) must be smaller than the interval (%d)", c.Warmup, c.Interval)
	}
	return nil
}

// Interval is one measured interval: its position in the run and the
// detailed-simulation measurement taken over it (warm-up excluded).
type Interval struct {
	Index     int     `json:"index"`      // interval number (start = Index*Interval guest insts)
	Start     uint64  `json:"start"`      // first guest instruction of the interval
	HostInsts uint64  `json:"host_insts"` // measured stream length (the estimator weight)
	Cycles    uint64  `json:"cycles"`     // measured cycles
	CPI       float64 `json:"cpi"`        // Cycles / HostInsts
}

// Metric is one whole-run estimate with its 95% confidence half-width.
// CI95 is zero when fewer than two intervals were measured (a single
// sample has no variance estimate).
type Metric struct {
	Name     string  `json:"name"`
	Estimate float64 `json:"estimate"`
	CI95     float64 `json:"ci95"`
	RelErr   float64 `json:"rel_err,omitempty"` // CI95 / |Estimate|
}

// Report is the sampling digest attached to a sampled run's result:
// the plan, the exact functional totals, the per-interval measurements,
// and the whole-run estimates with error bars.
type Report struct {
	Config Config `json:"config"`

	// Exact quantities from the functional fast-forward.
	GuestInsts uint64 `json:"guest_insts"`
	HostInsts  uint64 `json:"host_insts"`
	Intervals  int    `json:"intervals"` // total intervals in the run

	// FFCached reports that the fast-forward pass (checkpoints and
	// functional totals) was served from the persistent store instead
	// of re-simulated.
	FFCached bool `json:"ff_cached,omitempty"`

	Measured []Interval `json:"measured"`
	Metrics  []Metric   `json:"metrics"`

	// EstCycles is the whole-run cycle estimate (the "cycles" metric,
	// rounded), in clear because every consumer needs it.
	EstCycles uint64 `json:"est_cycles"`
}

// Metric returns the named whole-run estimate, reporting absence with
// ok=false.
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MaxRelErr returns the largest relative error across the report's
// metrics — the figure-of-merit the experiments compare against the
// documented accuracy bound.
func (r *Report) MaxRelErr() float64 {
	worst := 0.0
	for _, m := range r.Metrics {
		if m.RelErr > worst {
			worst = m.RelErr
		}
	}
	return worst
}

// addResult accumulates src's counters into dst element-wise — the
// inverse of timing.Result.Sub, used to pool measured intervals before
// extrapolation.
func addResult(dst, src *timing.Result) {
	dst.Cycles += src.Cycles
	for o := timing.Owner(0); o < timing.NumOwners; o++ {
		dst.Insts[o] += src.Insts[o]
		dst.InstCycles[o] += src.InstCycles[o]
		for k := timing.BubbleKind(0); k < timing.NumBubbleKinds; k++ {
			dst.Bubbles[o][k] += src.Bubbles[o][k]
		}
		dst.Branch.Branches[o] += src.Branch.Branches[o]
		dst.Branch.Mispredicts[o] += src.Branch.Mispredicts[o]
	}
	for c := timing.Component(0); c < timing.NumComponents; c++ {
		dst.InstsByComp[c] += src.InstsByComp[c]
		dst.InstCyclesByComp[c] += src.InstCyclesByComp[c]
		dst.BubblesByComp[c] += src.BubblesByComp[c]
	}
	dst.UnattributedCycles += src.UnattributedCycles
	addCache := func(d, s *timing.CacheStats) {
		for o := timing.Owner(0); o < timing.NumOwners; o++ {
			d.Accesses[o] += s.Accesses[o]
			d.Misses[o] += s.Misses[o]
		}
	}
	addCache(&dst.L1I, &src.L1I)
	addCache(&dst.L1D, &src.L1D)
	addCache(&dst.L2, &src.L2)
	addCache(&dst.L1TLB, &src.L1TLB)
	addCache(&dst.L2TLB, &src.L2TLB)
	dst.PrefetchesIssued += src.PrefetchesIssued
}

// scaleResult multiplies every counter of r by f, rounding the integer
// counters — the extrapolation of the pooled measured intervals to the
// whole run.
func scaleResult(r *timing.Result, f float64) timing.Result {
	scaleU := func(v uint64) uint64 { return uint64(math.Round(float64(v) * f)) }
	var d timing.Result
	d.Cycles = scaleU(r.Cycles)
	for o := timing.Owner(0); o < timing.NumOwners; o++ {
		d.Insts[o] = scaleU(r.Insts[o])
		d.InstCycles[o] = r.InstCycles[o] * f
		for k := timing.BubbleKind(0); k < timing.NumBubbleKinds; k++ {
			d.Bubbles[o][k] = r.Bubbles[o][k] * f
		}
		d.Branch.Branches[o] = scaleU(r.Branch.Branches[o])
		d.Branch.Mispredicts[o] = scaleU(r.Branch.Mispredicts[o])
	}
	for c := timing.Component(0); c < timing.NumComponents; c++ {
		d.InstsByComp[c] = scaleU(r.InstsByComp[c])
		d.InstCyclesByComp[c] = r.InstCyclesByComp[c] * f
		d.BubblesByComp[c] = r.BubblesByComp[c] * f
	}
	d.UnattributedCycles = r.UnattributedCycles * f
	scaleCache := func(dc, sc *timing.CacheStats) {
		for o := timing.Owner(0); o < timing.NumOwners; o++ {
			dc.Accesses[o] = scaleU(sc.Accesses[o])
			dc.Misses[o] = scaleU(sc.Misses[o])
		}
	}
	scaleCache(&d.L1I, &r.L1I)
	scaleCache(&d.L1D, &r.L1D)
	scaleCache(&d.L2, &r.L2)
	scaleCache(&d.L1TLB, &r.L1TLB)
	scaleCache(&d.L2TLB, &r.L2TLB)
	d.PrefetchesIssued = scaleU(r.PrefetchesIssued)
	return d
}

// estimate builds the whole-run metrics from per-interval measurements.
// Pooled counters use the ratio estimator (sum of measured counters /
// sum of measured weights, extrapolated by the exact whole-run stream
// length); error bars are 1.96 standard errors of the per-interval
// values. Everything folds in interval-index order, so the estimates
// are bit-identical regardless of measurement parallelism.
func estimate(intervals []Interval, measured []timing.Result, totalHostInsts uint64) (timing.Result, []Metric, uint64) {
	var pooled timing.Result
	var sumW float64
	type series struct {
		name   string
		values []float64
	}
	names := []string{
		"cycles", "ipc", "tol_share",
		"dmiss_bubble_share", "imiss_bubble_share", "branch_bubble_share", "sched_bubble_share",
		"l1d_miss_rate", "mispredict_rate",
	}
	perInterval := make(map[string][]float64, len(names))
	for i := range intervals {
		if intervals[i].HostInsts == 0 {
			continue // empty tail interval: no information
		}
		addResult(&pooled, &measured[i])
		sumW += float64(intervals[i].HostInsts)
		r := &measured[i]
		perInterval["cycles"] = append(perInterval["cycles"], intervals[i].CPI)
		perInterval["ipc"] = append(perInterval["ipc"], r.IPC())
		perInterval["tol_share"] = append(perInterval["tol_share"], r.TOLShare())
		perInterval["dmiss_bubble_share"] = append(perInterval["dmiss_bubble_share"], r.BubbleShare(timing.BubbleDMiss))
		perInterval["imiss_bubble_share"] = append(perInterval["imiss_bubble_share"], r.BubbleShare(timing.BubbleIMiss))
		perInterval["branch_bubble_share"] = append(perInterval["branch_bubble_share"], r.BubbleShare(timing.BubbleBranch))
		perInterval["sched_bubble_share"] = append(perInterval["sched_bubble_share"], r.BubbleShare(timing.BubbleSched))
		perInterval["l1d_miss_rate"] = append(perInterval["l1d_miss_rate"], r.L1D.MissRate())
		perInterval["mispredict_rate"] = append(perInterval["mispredict_rate"], r.Branch.MispredictRate())
	}
	if sumW == 0 {
		return timing.Result{}, nil, 0
	}
	f := float64(totalHostInsts) / sumW
	est := scaleResult(&pooled, f)
	// The stream length is exact; only rates are estimated.
	estCycles := est.Cycles

	// Ratio point estimates for the derived metrics, from the pooled
	// counters (self-weighted); CIs from per-interval spread.
	point := map[string]float64{
		"cycles":              float64(estCycles),
		"ipc":                 est.IPC(),
		"tol_share":           est.TOLShare(),
		"dmiss_bubble_share":  est.BubbleShare(timing.BubbleDMiss),
		"imiss_bubble_share":  est.BubbleShare(timing.BubbleIMiss),
		"branch_bubble_share": est.BubbleShare(timing.BubbleBranch),
		"sched_bubble_share":  est.BubbleShare(timing.BubbleSched),
		"l1d_miss_rate":       est.L1D.MissRate(),
		"mispredict_rate":     est.Branch.MispredictRate(),
	}
	metrics := make([]Metric, 0, len(names))
	for _, name := range names {
		vals := perInterval[name]
		m := Metric{Name: name, Estimate: point[name]}
		ci := ci95(vals)
		if name == "cycles" {
			ci *= float64(totalHostInsts) // CPI spread scaled to total cycles
		}
		m.CI95 = ci
		if a := math.Abs(m.Estimate); a > 0 {
			m.RelErr = m.CI95 / a
		}
		metrics = append(metrics, m)
	}
	return est, metrics, estCycles
}

// ci95 returns the 95% confidence half-width of the mean of vals
// (1.96 standard errors), or zero when variance cannot be estimated.
func ci95(vals []float64) float64 {
	n := float64(len(vals))
	if n < 2 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / n
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return 1.96 * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}
