package sample

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
)

func fibProgram(n int32) *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.EBX, 1)
	b.MovRI(guest.ECX, n)
	b.Label("loop")
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondE, "done")
	b.MovRR(guest.EDX, guest.EBX)
	b.AddRR(guest.EBX, guest.EAX)
	b.MovRR(guest.EAX, guest.EDX)
	b.Dec(guest.ECX)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func testRunner(parallel int) *Runner {
	tcfg := tol.DefaultConfig()
	tcfg.SBThreshold = 20
	return &Runner{
		TOL:      tcfg,
		Timing:   timing.DefaultConfig(),
		Mode:     timing.ModeShared,
		Sample:   Config{Interval: 600, Every: 2, Warmup: 100},
		Parallel: parallel,
	}
}

// fullRun produces the uninterrupted detailed reference for the same
// configuration.
func fullRun(t *testing.T, p *guest.Program, r *Runner) (*timing.Result, *tol.Engine) {
	t.Helper()
	eng := tol.NewEngine(r.TOL, p)
	sim := timing.NewSimulator(r.Timing, r.Mode)
	res, err := sim.Run(eng)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if !eng.Halted() {
		t.Fatal("full run did not halt")
	}
	return res, eng
}

func TestSampledFunctionalTotalsAreExact(t *testing.T) {
	p := fibProgram(500)
	r := testRunner(2)
	res, err := r.Run(t.Context(), p)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	ref, refEng := fullRun(t, p, r)

	if res.Report.GuestInsts != refEng.Stats.DynTotal() {
		t.Errorf("guest insts: sampled %d, full %d", res.Report.GuestInsts, refEng.Stats.DynTotal())
	}
	if res.Report.HostInsts != ref.TotalInsts() {
		t.Errorf("host insts: sampled %d, full %d", res.Report.HostInsts, ref.TotalInsts())
	}
	gotStats, _ := json.Marshal(&res.TOL)
	wantStats, _ := json.Marshal(&refEng.Stats)
	if !bytes.Equal(gotStats, wantStats) {
		t.Errorf("TOL stats differ:\nsampled: %s\nfull:    %s", gotStats, wantStats)
	}
	if d := res.Final.Diff(refEng.GuestState()); d != "" {
		t.Errorf("final state differs: %s", d)
	}
	if res.CodeCacheInsts != refEng.CC.UsedInsts() {
		t.Errorf("code cache occupancy: sampled %d, full %d", res.CodeCacheInsts, refEng.CC.UsedInsts())
	}

	// The cycle estimate targets the full run's cycles; on this regular
	// workload the ratio estimator should land close.
	est := float64(res.Report.EstCycles)
	full := float64(ref.Cycles)
	if est < 0.5*full || est > 1.5*full {
		t.Errorf("cycle estimate %v too far from full run's %v", est, full)
	}
	if len(res.Report.Metrics) == 0 {
		t.Error("report has no metric estimates")
	}
	if res.Report.Intervals < 2 || len(res.Report.Measured) < 2 {
		t.Errorf("expected multiple intervals, got %d total / %d measured", res.Report.Intervals, len(res.Report.Measured))
	}
}

// TestSampledDeterminismAcrossParallelism pins that the report is
// bit-identical regardless of worker count — the property that lets
// darco memoize sampled results under a parallelism-free cache key.
func TestSampledDeterminismAcrossParallelism(t *testing.T) {
	p := fibProgram(500)
	var blobs [][]byte
	for _, par := range []int{1, 4} {
		res, err := testRunner(par).Run(t.Context(), p)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		blob, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		blobs = append(blobs, blob)
		tblob, _ := json.Marshal(res.Timing)
		blobs = append(blobs, tblob)
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Errorf("reports differ across parallelism:\njobs=1: %s\njobs=4: %s", blobs[0], blobs[2])
	}
	if !bytes.Equal(blobs[1], blobs[3]) {
		t.Errorf("estimated timing differs across parallelism:\njobs=1: %s\njobs=4: %s", blobs[1], blobs[3])
	}
}

// memCache is an in-memory BlobCache double.
type memCache struct {
	mu   sync.Mutex
	m    map[string]json.RawMessage
	gets int
	puts int
}

func (c *memCache) GetRaw(key string) (json.RawMessage, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	raw, ok := c.m[key]
	return raw, ok, nil
}

func (c *memCache) PutRaw(key string, raw json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.m == nil {
		c.m = map[string]json.RawMessage{}
	}
	c.m[key] = append(json.RawMessage(nil), raw...)
	return nil
}

// TestFastForwardBundleCache pins warm-starting: a second sampled run
// with the same program fingerprint and plan serves the fast-forward
// pass from the cache and produces the identical report.
func TestFastForwardBundleCache(t *testing.T) {
	p := fibProgram(500)
	cache := &memCache{}
	r1 := testRunner(2)
	r1.Program, r1.Cache = "fib-500", cache
	res1, err := r1.Run(t.Context(), p)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if res1.Report.FFCached {
		t.Fatal("first run cannot be a cache hit")
	}
	if cache.puts != 1 {
		t.Fatalf("expected 1 bundle put, got %d", cache.puts)
	}

	r2 := testRunner(1)
	r2.Program, r2.Cache = "fib-500", cache
	res2, err := r2.Run(t.Context(), p)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !res2.Report.FFCached {
		t.Fatal("second run should warm-start from the cached bundle")
	}
	res2.Report.FFCached = false // compare everything else
	b1, _ := json.Marshal(res1.Report)
	b2, _ := json.Marshal(res2.Report)
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached-bundle report differs:\nfresh:  %s\ncached: %s", b1, b2)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Interval: 1000, Every: 1}, true},
		{Config{Interval: 1000, Every: 4, Warmup: 999}, true},
		{Config{Interval: 0, Every: 1}, false},
		{Config{Interval: 1000, Every: 0}, false},
		{Config{Interval: 1000, Every: 1, Warmup: 1000}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
	def := DefaultConfig()
	if err := def.Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}
