package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/darco"
	"repro/internal/timing"
)

// Client is the darco-serve API client. It implements
// darco.RemoteExecutor, so installing it on a Session
// (darco.WithRemote) turns every local tool into a thin front-end of a
// remote server:
//
//	cl := serve.NewClient("http://darco-serve:8080")
//	sess := darco.NewSession(darco.WithRemote(cl))
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as the fair-queuing class of every submission
	// that does not name its own ("" = the server default).
	Tenant string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Msg)
}

// IsOverloaded reports whether err is the server's 429 admission
// rejection — the signal to back off and retry.
func IsOverloaded(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// do performs one JSON request; non-2xx responses decode into
// StatusError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("serve: marshal request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeStatusError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}

func decodeStatusError(resp *http.Response) error {
	var ae apiError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ae); err != nil || ae.Error == "" {
		ae.Error = resp.Status
	}
	return &StatusError{Code: resp.StatusCode, Msg: ae.Error}
}

// Submit enqueues one job. The client's Tenant is applied when the
// request names none.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/jobs", &req, &resp)
	return resp, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists job statuses; tenant, when non-empty, filters.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]JobStatus, error) {
	path := "/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Cancel stops a queued or running job and returns its status at the
// moment the cancel was accepted. The server refuses (409) once the
// job is terminal.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Delete removes a completed job from the server's registry and
// returns its final status. The server refuses (409) while the job is
// queued or running.
func (c *Client) Delete(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// Health fetches the server health report.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// StoreList enumerates the server's persistent store.
func (c *Client) StoreList(ctx context.Context) ([]json.RawMessage, error) {
	var out []json.RawMessage
	err := c.do(ctx, http.MethodGet, "/store", nil, &out)
	return out, err
}

// Events streams the job's progress events, replay first, then live,
// calling fn for each; it returns when the job reaches a terminal
// event, the stream ends, or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(WireEvent)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id+"/events"), nil)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators and SSE comments
		}
		var ev WireEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("serve: bad event %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: event stream: %w", err)
	}
	return nil
}

// ResultRaw fetches the job's terminal Record bytes exactly as the
// server serves them (wait blocks until the job finishes).
func (c *Client) ResultRaw(ctx context.Context, id string, wait bool) ([]byte, error) {
	path := "/jobs/" + id + "/result"
	if wait {
		path += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeStatusError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: read result: %w", err)
	}
	return raw, nil
}

// Result fetches and decodes the job's terminal Record.
func (c *Client) Result(ctx context.Context, id string, wait bool) (*darco.Record, error) {
	raw, err := c.ResultRaw(ctx, id, wait)
	if err != nil {
		return nil, err
	}
	var rec darco.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("serve: decode record: %w", err)
	}
	return &rec, nil
}

// RunRemote implements darco.RemoteExecutor: submit the reference with
// the resolved config, relay the remote event stream, and return the
// finished result. Used via darco.WithRemote.
func (c *Client) RunRemote(ctx context.Context, ref string, scale float64, cfg darco.Config, events func(darco.Event)) (*darco.Result, error) {
	resp, err := c.Submit(ctx, SubmitRequest{Workload: ref, Scale: scale, Config: &cfg})
	if err != nil {
		return nil, err
	}
	// A locally abandoned run must not keep burning a remote worker:
	// when ctx dies before the job settles, best-effort cancel it on
	// the server (off ctx, which is already dead).
	stop := context.AfterFunc(ctx, func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = c.Cancel(cctx, resp.ID)
	})
	defer stop()
	if events != nil {
		// The stream ends at the job's terminal event; a broken stream
		// only loses observability, the result fetch below still
		// settles the run.
		_ = c.Events(ctx, resp.ID, func(wev WireEvent) {
			if ev, ok := wireToEvent(wev); ok {
				events(ev)
			}
		})
	}
	rec, err := c.Result(ctx, resp.ID, true)
	if err != nil {
		return nil, err
	}
	if rec.Error != "" {
		return nil, fmt.Errorf("serve: remote run of %s failed: %s", ref, rec.Error)
	}
	if rec.Result == nil {
		return nil, fmt.Errorf("serve: remote run of %s returned no result", ref)
	}
	return rec.Result, nil
}

// wireToEvent decodes a WireEvent back into the darco event form.
func wireToEvent(wev WireEvent) (darco.Event, bool) {
	kind, err := darco.ParseEventKind(wev.Kind)
	if err != nil {
		return darco.Event{}, false
	}
	mode, err := timing.ParseMode(wev.Mode)
	if err != nil {
		return darco.Event{}, false
	}
	ev := darco.Event{Job: wev.Job, Mode: mode, Kind: kind, Cycles: wev.Cycles}
	if wev.Error != "" {
		ev.Err = errors.New(wev.Error)
	}
	return ev, true
}

// compile-time check: Client executes jobs for remote Sessions.
var _ darco.RemoteExecutor = (*Client)(nil)
