package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/darco"
)

// job is the server-side state of one submitted run: the resolved
// session job plus an append-only event log fanned out to any number
// of SSE subscribers.
type job struct {
	id     string
	tenant string
	ref    string
	scale  float64
	mode   string
	key    string
	sjob   darco.Job
	cfg    darco.Config

	// ctx governs this job's simulation only; cancel fires on POST
	// /jobs/{id}/cancel and on server drain (the parent is the server's
	// run context).
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	cancelled bool // cancel requested before the job settled
	fromCache bool
	startSeq  int
	events    []WireEvent
	changed   chan struct{} // closed and replaced on every append/state change
	cycles    uint64
	raw       json.RawMessage // marshaled darco.Record, set when terminal
	err       error
	doneAt    time.Time // when the job reached a terminal state

	done chan struct{} // closed when the job reaches a terminal state
}

func newJob(parent context.Context, id, tenant string, sjob darco.Job, key string, cfg darco.Config) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{
		id:      id,
		tenant:  tenant,
		ref:     sjob.Ref,
		scale:   sjob.Scale,
		mode:    cfg.Mode.String(),
		key:     key,
		sjob:    sjob,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// requestCancel cancels the job's run context and marks the job for
// the cancelled terminal state. It reports false — and does nothing —
// once the job has settled.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	j.mu.Unlock()
	j.cancel()
	return true
}

// isFromCache reports whether the session served the job without
// simulating.
func (j *job) isFromCache() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fromCache
}

func (j *job) broadcastLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// note records one darco session event in the wire log. It is the
// Job.Events hook of the session job, so it runs serially.
func (j *job) note(ev darco.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	wev := WireEvent{
		Seq:    len(j.events) + 1,
		Job:    ev.Job,
		Mode:   ev.Mode.String(),
		Kind:   ev.Kind.String(),
		Cycles: ev.Cycles,
	}
	if ev.Err != nil {
		wev.Error = ev.Err.Error()
	}
	if ev.Cycles != 0 {
		j.cycles = ev.Cycles
	}
	if ev.Kind == darco.EventCached {
		j.fromCache = true
	}
	j.events = append(j.events, wev)
	j.broadcastLocked()
}

// setRunning marks dispatch onto the worker pool with the global start
// order.
func (j *job) setRunning(seq int) {
	j.mu.Lock()
	j.state = StateRunning
	j.startSeq = seq
	j.broadcastLocked()
	j.mu.Unlock()
}

// finish publishes the terminal record (which carries any error in its
// Error field) and wakes waiters and subscribers. An error after a
// cancel request settles the job as cancelled rather than failed; a
// result that won the race against its own cancellation is still done.
func (j *job) finish(raw json.RawMessage, err error) {
	j.cancel() // release the per-job context either way
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
	case j.cancelled:
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.raw = raw
	j.doneAt = time.Now()
	j.broadcastLocked()
	j.mu.Unlock()
	close(j.done)
}

// terminalAt reports whether the job has finished and, if so, when —
// the TTL-eviction probe.
func (j *job) terminalAt() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state), j.doneAt
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Tenant:    j.tenant,
		Workload:  j.ref,
		Scale:     j.scale,
		Mode:      j.mode,
		State:     j.state,
		FromCache: j.fromCache,
		StartSeq:  j.startSeq,
		Key:       j.key,
		Events:    len(j.events),
		Cycles:    j.cycles,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// snapshot returns the events from cursor on, the channel signalling
// the next change, and whether the job is terminal — the SSE pull
// loop.
func (j *job) snapshot(cursor int) (evs []WireEvent, changed chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < len(j.events) {
		evs = append(evs, j.events[cursor:]...)
	}
	return evs, j.changed, terminalState(j.state)
}

// record returns the terminal record bytes (nil while the job is
// pending).
func (j *job) record() (json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.raw, j.state
}
