package serve

import "sync"

// fairQueue is the admission and scheduling structure of the server:
// one FIFO per tenant, drained round-robin. Workers pop the head of
// the front tenant's queue, then the tenant rotates to the back of the
// order, so a tenant that floods the server with a large batch only
// delays other tenants by at most one job per round — with a 1-worker
// pool, a newly arrived single-job tenant runs after at most one job
// of every other active tenant.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*job
	order  []string // tenants with non-empty queues, in rotation order
	n      int
	closed bool
}

func newFairQueue() *fairQueue {
	q := &fairQueue{queues: make(map[string][]*job)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tryPush enqueues the job unless the total queued count has reached
// limit (limit <= 0 means unbounded) or the queue is closed. The
// check and the append are one critical section, so concurrent
// submissions cannot overshoot the admission bound.
func (q *fairQueue) tryPush(j *job, limit int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || (limit > 0 && q.n >= limit) {
		return false
	}
	if len(q.queues[j.tenant]) == 0 {
		q.order = append(q.order, j.tenant)
	}
	q.queues[j.tenant] = append(q.queues[j.tenant], j)
	q.n++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available (returning it) or the queue is
// closed and empty (returning ok=false — the worker-exit signal).
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	tenant := q.order[0]
	fifo := q.queues[tenant]
	j := fifo[0]
	if len(fifo) == 1 {
		delete(q.queues, tenant)
		q.order = q.order[1:]
	} else {
		q.queues[tenant] = fifo[1:]
		q.order = append(q.order[1:], tenant)
	}
	q.n--
	return j, true
}

// len returns the number of queued (not yet dispatched) jobs.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close stops admission and wakes idle workers; the drained jobs —
// queued but never dispatched — are returned so the server can fail
// them promptly during shutdown.
func (q *fairQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	var drained []*job
	for _, tenant := range q.order {
		drained = append(drained, q.queues[tenant]...)
	}
	q.queues = make(map[string][]*job)
	q.order = nil
	q.n = 0
	q.cond.Broadcast()
	return drained
}
