// Package serve is the multi-tenant simulation service of the
// infrastructure: a long-running HTTP server that accepts jobs by
// workload reference + configuration, schedules them with per-tenant
// fair queuing over a bounded darco.Session worker pool, streams
// per-job progress events (Server-Sent Events), and serves results as
// the established darco.Record JSON interchange. Attached to a
// content-addressed store (internal/store) the server's cache hits
// survive restarts and are shared across replicas.
//
// The layering follows the controller's host-service pattern: the
// service hides the simulation machinery entirely — clients speak
// workload references and Records, never guest programs or engines.
//
//	POST /jobs              submit (SubmitRequest -> 202 SubmitResponse,
//	                        429 when the admission queue is full,
//	                        503 while shutting down)
//	GET  /jobs              list job statuses (?tenant= filters)
//	GET  /jobs/{id}         one JobStatus
//	POST /jobs/{id}/cancel  stop a queued or running job
//	                        (409 once the job is terminal)
//	DELETE /jobs/{id}       drop a completed job from the registry
//	                        (409 while queued or running)
//	GET  /jobs/{id}/events  SSE stream of WireEvents (replay + live)
//	GET  /jobs/{id}/result  the darco.Record (?wait=1 blocks until done)
//	GET  /store             persistent-store listing ([]store.Meta)
//	GET  /store/{addr}      one stored Record by content address
//	GET  /workloads         registered sources + enumerable programs
//	GET  /healthz           service health and queue depths
//
// Client (client.go) wraps the API and implements darco.RemoteExecutor,
// so any Session — and therefore cmd/darco, cmd/darco-suite and
// cmd/darco-figs — can target a remote server instead of simulating
// locally.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/darco"
	"repro/internal/store"
	"repro/internal/timing"
	"repro/internal/workload"
)

// DefaultQueueLimit bounds the admission queue when Config.QueueLimit
// is zero.
const DefaultQueueLimit = 256

// ErrShuttingDown is recorded on jobs that were still queued when the
// server began draining.
var ErrShuttingDown = errors.New("serve: server shutting down")

// ErrCancelled is recorded on jobs stopped by POST /jobs/{id}/cancel
// before they ran (a job cancelled mid-simulation carries the
// simulation's context error instead).
var ErrCancelled = errors.New("serve: job cancelled")

// Config configures a Server.
type Config struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueLimit bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429 (0 =
	// DefaultQueueLimit, negative = unbounded).
	QueueLimit int
	// Store, when non-nil, persists every result and serves
	// restart-surviving cache hits.
	Store *store.Store
	// Base is the base run configuration submissions are resolved
	// against (nil = darco.DefaultConfig()).
	Base *darco.Config
	// Log receives one line per job lifecycle transition (nil =
	// silent).
	Log io.Writer
	// JobTTL, when positive, bounds how long completed (done or
	// failed) jobs stay in the in-memory registry: jobs terminal for
	// longer than the TTL are swept out on the next API touch. Results
	// persisted to the Store survive eviction; only the job id and its
	// event log are dropped. Zero keeps completed jobs forever.
	JobTTL time.Duration
	// StoreMaxBytes, when positive, is the persistent store's size
	// quota: after every finished job the least recently used entries
	// are evicted until the store fits (store.EvictToSize). Zero
	// disables the quota.
	StoreMaxBytes int64
}

// Server is the simulation service. Create it with NewServer, mount it
// as an http.Handler, and stop it with Shutdown.
type Server struct {
	workers    int
	queueLimit int
	st         *store.Store
	base       darco.Config
	log        io.Writer
	jobTTL     time.Duration
	storeMax   int64
	sess       *darco.Session
	queue      *fairQueue
	mux        *http.ServeMux

	runCtx     context.Context
	cancelRuns context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	closing  bool
	jobs     map[string]*job
	jobSeq   int
	startSeq int
	running  int
}

// NewServer builds the service and starts its worker pool.
func NewServer(cfg Config) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	limit := cfg.QueueLimit
	if limit == 0 {
		limit = DefaultQueueLimit
	}
	base := darco.DefaultConfig()
	if cfg.Base != nil {
		base = *cfg.Base
		base.Progress = nil
	}
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:    workers,
		queueLimit: limit,
		st:         cfg.Store,
		base:       base,
		log:        cfg.Log,
		jobTTL:     cfg.JobTTL,
		storeMax:   cfg.StoreMaxBytes,
		queue:      newFairQueue(),
		runCtx:     runCtx,
		cancelRuns: cancel,
		jobs:       make(map[string]*job),
	}
	sessOpts := []darco.SessionOption{darco.WithWorkers(workers)}
	if s.st != nil {
		sessOpts = append(sessOpts, darco.WithStore(s.st))
	}
	s.sess = darco.NewSession(sessOpts...)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /store", s.handleStoreList)
	s.mux.HandleFunc("GET /store/{addr}", s.handleStoreGet)
	s.mux.HandleFunc("GET /workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP dispatches the service API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, "darco-serve: "+format+"\n", args...)
	}
}

// Shutdown drains the server: admission stops (new submissions get
// 503), jobs still queued fail immediately with ErrShuttingDown, and
// in-flight simulations are given until ctx's deadline to finish —
// then their contexts are cancelled and the shutdown completes once
// every worker has exited. It is the handler behind cmd/darco-serve's
// SIGINT/SIGTERM drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.mu.Unlock()
	if already {
		return errors.New("serve: Shutdown called twice")
	}
	for _, j := range s.queue.close() {
		j.note(darco.Event{Job: j.sjob.Name, Mode: j.cfg.Mode, Kind: darco.EventFailed, Err: ErrShuttingDown})
		j.finish(s.recordBytes(j, nil, ErrShuttingDown), ErrShuttingDown)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drained cleanly")
		return nil
	case <-ctx.Done():
		s.logf("drain deadline reached, cancelling in-flight jobs")
		s.cancelRuns()
		<-done
		return ctx.Err()
	}
}

// worker pulls jobs off the fair queue until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// recordBytes marshals the job's terminal Record: on success the full
// result, on failure the established error-carrying Record. When the
// session served the job from the persistent store, the stored bytes
// are returned verbatim, so a re-fetched result is byte-identical to
// the run that produced it.
func (s *Server) recordBytes(j *job, res *darco.Result, err error) json.RawMessage {
	if err == nil && j.isFromCache() && s.st != nil {
		if raw, ok, serr := s.st.GetRaw(j.key); serr == nil && ok {
			return raw
		}
	}
	var suite string
	if j.sjob.Program != nil {
		suite = j.sjob.Program.Meta().Suite
	}
	rec := darco.NewRecord(j.sjob.Name, suite, j.scale, j.cfg.Mode, res, err)
	raw, merr := json.Marshal(&rec)
	if merr != nil {
		raw, _ = json.Marshal(&darco.Record{Benchmark: j.sjob.Name, Mode: j.mode, Error: merr.Error()})
	}
	return raw
}

// sweepExpired drops completed jobs older than the registry TTL. It
// runs on every registry-touching request (submit, list, health), so a
// busy server converges without a background timer and an idle one
// holds nothing but what nobody asks about.
func (s *Server) sweepExpired() {
	if s.jobTTL <= 0 {
		return
	}
	cutoff := time.Now().Add(-s.jobTTL)
	var expired []string
	s.mu.Lock()
	for id, j := range s.jobs {
		if terminal, at := j.terminalAt(); terminal && at.Before(cutoff) {
			delete(s.jobs, id)
			expired = append(expired, id)
		}
	}
	s.mu.Unlock()
	for _, id := range expired {
		s.logf("job %s expired from registry (ttl %s)", id, s.jobTTL)
	}
}

// enforceStoreQuota applies the persistent store's size bound after a
// finished job may have grown it.
func (s *Server) enforceStoreQuota() {
	if s.st == nil || s.storeMax <= 0 {
		return
	}
	if removed, freed, err := s.st.EvictToSize(s.storeMax); err != nil {
		s.logf("store quota: %v", err)
	} else if removed > 0 {
		s.logf("store quota: evicted %d entries (%d bytes) to fit %d", removed, freed, s.storeMax)
	}
}

func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil {
		// Cancelled (or drained) while still queued: settle without
		// ever occupying a simulation slot.
		j.note(darco.Event{Job: j.sjob.Name, Mode: j.cfg.Mode, Kind: darco.EventFailed, Err: ErrCancelled})
		j.finish(s.recordBytes(j, nil, ErrCancelled), ErrCancelled)
		s.logf("job %s cancelled while queued", j.id)
		return
	}
	s.mu.Lock()
	s.startSeq++
	seq := s.startSeq
	s.running++
	s.mu.Unlock()
	j.setRunning(seq)
	s.logf("job %s start #%d (tenant %s, %s)", j.id, seq, j.tenant, j.ref)

	res, err := s.sess.Run(j.ctx, j.sjob)
	j.finish(s.recordBytes(j, res, err), err)
	s.enforceStoreQuota()

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	switch {
	case err != nil && j.status().State == StateCancelled:
		s.logf("job %s cancelled: %v", j.id, err)
	case err != nil:
		s.logf("job %s failed: %v", j.id, err)
	case j.isFromCache():
		s.logf("job %s served from cache", j.id)
	default:
		s.logf("job %s done", j.id)
	}
}

// resolveConfig turns a submission into the fully resolved run
// configuration, mirroring the flag semantics of the cmds.
func (s *Server) resolveConfig(req *SubmitRequest) (darco.Config, error) {
	cfg := s.base
	if req.Config != nil {
		cfg = *req.Config
		cfg.Progress = nil
		cfg.ProgressEvery = 0
	}
	if req.Mode != "" {
		m, err := timing.ParseMode(req.Mode)
		if err != nil {
			return cfg, err
		}
		cfg.Mode = m
	}
	if req.Cosim != nil {
		cfg.TOL.Cosim = *req.Cosim
	}
	if req.MaxCycles != 0 {
		cfg.MaxCycles = req.MaxCycles
	}
	darco.ApplyCacheFlags(&cfg.TOL, req.CCSize, req.CCPolicy)
	opt := -1
	if req.OptLevel != nil {
		opt = *req.OptLevel
	}
	if err := darco.ApplyPipelineFlags(&cfg.TOL, opt, req.Passes, req.Promote); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.sweepExpired()
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "workload reference required")
		return
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Darco-Tenant"); h != "" {
		tenant = h
	}
	if tenant == "" {
		tenant = "default"
	}
	cfg, err := s.resolveConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	sjob, err := darco.WithWorkload(req.Workload, scale, darco.WithConfig(cfg))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := sjob.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.jobSeq++
	id := fmt.Sprintf("j-%06d", s.jobSeq)
	j := newJob(s.runCtx, id, tenant, sjob, key, cfg)
	j.sjob.Events = j.note
	s.jobs[id] = j
	s.mu.Unlock()

	if !s.queue.tryPush(j, s.queueLimit) {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d queued jobs); retry later", s.queue.len())
		return
	}
	s.logf("job %s queued (tenant %s, %s, key %s)", id, tenant, req.Workload, key)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:    id,
		State: StateQueued,
		Key:   key,
		Addr:  store.Addr(key),
	})
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.sweepExpired()
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(all))
	for _, j := range all {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleDelete removes a completed job from the registry — the manual
// form of TTL eviction. A queued or running job is refused with 409;
// deleting never cancels work. Store entries are untouched, so a
// deleted job's result remains fetchable by content address.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	st := j.status()
	if !terminalState(st.State) {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is %s; only completed jobs can be deleted", id, st.State)
		return
	}
	delete(s.jobs, id)
	s.mu.Unlock()
	s.logf("job %s deleted", id)
	writeJSON(w, http.StatusOK, st)
}

// handleCancel stops a queued or running job: its per-job context is
// cancelled and the job settles in the cancelled terminal state — a
// running simulation unwinds at its next cancellation check, a queued
// job settles when a worker pops it. Terminal jobs are refused with
// 409, so a cancel never retracts a result a client may have seen.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job %s is %s; only queued or running jobs can be cancelled",
			j.id, j.status().State)
		return
	}
	s.logf("job %s cancel requested", j.id)
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's event log as Server-Sent Events:
// the full history first, then live events until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	cursor := 0
	for {
		evs, changed, terminal := j.snapshot(cursor)
		cursor += len(evs)
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			if fl != nil {
				fl.Flush()
			}
			continue // drain the log before sleeping
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if q := r.URL.Query().Get("wait"); q == "1" || q == "true" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	raw, state := j.record()
	if raw == nil {
		writeError(w, http.StatusConflict, "job %s is %s; poll /jobs/%s or fetch with ?wait=1", j.id, state, j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no persistent store configured")
		return
	}
	metas, err := s.st.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if metas == nil {
		metas = []store.Meta{}
	}
	writeJSON(w, http.StatusOK, metas)
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no persistent store configured")
		return
	}
	addr := r.PathValue("addr")
	raw, _, ok, err := s.st.GetRawByAddr(addr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no store entry at %q", addr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	out := Workloads{Sources: workload.Sources(), Listed: map[string][]string{}}
	for _, scheme := range out.Sources {
		if src, ok := workload.LookupSource(scheme); ok {
			if l, ok := src.(workload.Lister); ok {
				out.Listed[scheme] = l.List()
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.sweepExpired()
	s.mu.Lock()
	running := s.running
	njobs := len(s.jobs)
	closing := s.closing
	s.mu.Unlock()
	status := "ok"
	if closing {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, Health{
		Status:  status,
		Workers: s.workers,
		Queued:  s.queue.len(),
		Running: running,
		Store:   s.st != nil,
		Jobs:    njobs,
	})
}
