package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/darco"
	"repro/internal/guest"
	"repro/internal/store"
	"repro/internal/workload"
)

// blockSource is a test workload source whose programs block in
// Build until their gate is released — the handle the scheduling
// tests use to hold a worker busy and pile up a queue
// deterministically.
type blockSource struct{}

var blockGates sync.Map // program name -> chan struct{}

func (blockSource) Scheme() string { return "blocktest" }

func (blockSource) Open(name string) (workload.Program, error) {
	return blockProgram{name: name}, nil
}

type blockProgram struct{ name string }

func (p blockProgram) Name() string        { return p.name }
func (p blockProgram) Meta() workload.Meta { return workload.Meta{Source: "blocktest", Phases: 1} }

func (p blockProgram) Build() (*guest.Program, error) {
	if ch, ok := blockGates.Load(p.name); ok {
		<-ch.(chan struct{})
	}
	spec, err := workload.ByName("462.libquantum")
	if err != nil {
		return nil, err
	}
	return spec.Scale(0.05).Build()
}

func init() {
	workload.Register(blockSource{})
}

// gatedRef registers a gate for one blocktest program and returns its
// reference plus the release function.
func gatedRef(t *testing.T, name string) (string, func()) {
	t.Helper()
	ch := make(chan struct{})
	if _, loaded := blockGates.LoadOrStore(name, ch); loaded {
		t.Fatalf("blocktest program %q reused across tests", name)
	}
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	return "blocktest:" + name, release
}

// newTestServer starts a Server over an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, NewClient(ts.URL)
}

func submitTiny(t *testing.T, c *Client, workloadRef string) SubmitResponse {
	t.Helper()
	cosim := false
	resp, err := c.Submit(context.Background(), SubmitRequest{
		Workload: workloadRef,
		Scale:    0.1,
		Cosim:    &cosim,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitState polls one job until it reaches the wanted state.
func waitState(t *testing.T, c *Client, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitEventsResult drives the full client path: submit, stream
// the SSE event log, fetch the Record.
func TestSubmitEventsResult(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	resp := submitTiny(t, c, "synthetic:462.libquantum")
	if resp.ID == "" || resp.Key == "" || resp.Addr == "" {
		t.Fatalf("submit response incomplete: %+v", resp)
	}

	var kinds []string
	if err := c.Events(context.Background(), resp.ID, func(ev WireEvent) {
		kinds = append(kinds, ev.Kind)
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 3 || kinds[0] != "queued" || kinds[1] != "started" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("event kinds = %v, want queued, started, ..., done", kinds)
	}
	for i, k := range kinds[2 : len(kinds)-1] {
		if k != "progress" {
			t.Fatalf("event %d = %q, want progress", i+2, k)
		}
	}

	rec, err := c.Result(context.Background(), resp.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Benchmark != "462.libquantum" || rec.Error != "" || rec.Result == nil {
		t.Fatalf("record = %s/%q result=%v", rec.Benchmark, rec.Error, rec.Result != nil)
	}
	if rec.Summary.Cycles == 0 || rec.Summary.Cycles != rec.Result.Timing.Cycles {
		t.Fatalf("summary cycles %d vs result cycles %d", rec.Summary.Cycles, rec.Result.Timing.Cycles)
	}
}

// TestRestartServedFromPersistentStore is the acceptance path of the
// serving subsystem: a full server restart between submit and
// re-submit of the same (workload, config) job serves the second
// request from the persistent store — EventCached, no re-simulation —
// and the fetched Record is byte-identical to the first run.
func TestRestartServedFromPersistentStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(Config{Workers: 1, Store: st1})
	ts1 := httptest.NewServer(srv1)
	c1 := NewClient(ts1.URL)
	resp1 := submitTiny(t, c1, "synthetic:470.lbm")
	raw1, err := c1.ResultRaw(ctx, resp1.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, c1, resp1.ID, StateDone)
	if st.FromCache {
		t.Fatal("first run claims to be served from cache")
	}
	ts1.Close()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Full restart: a new store handle, a new server, a new client.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(Config{Workers: 1, Store: st2})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Shutdown(ctx)
	c2 := NewClient(ts2.URL)
	resp2 := submitTiny(t, c2, "synthetic:470.lbm")
	if resp2.Key != resp1.Key || resp2.Addr != resp1.Addr {
		t.Fatalf("memo key changed across restart: %q vs %q", resp2.Key, resp1.Key)
	}

	var kinds []string
	if err := c2.Events(ctx, resp2.ID, func(ev WireEvent) { kinds = append(kinds, ev.Kind) }); err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		if k == "started" {
			t.Fatalf("restarted server re-simulated: events %v", kinds)
		}
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "cached" {
		t.Fatalf("restart events = %v, want ... cached", kinds)
	}
	st2nd := waitState(t, c2, resp2.ID, StateDone)
	if !st2nd.FromCache {
		t.Fatal("restarted job not marked from_cache")
	}

	raw2, err := c2.ResultRaw(ctx, resp2.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("restart result not byte-identical: %d vs %d bytes", len(raw1), len(raw2))
	}

	// The store endpoint serves the same bytes by content address.
	rawStore, err := c2.ResultRaw(ctx, resp2.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawStore, raw1) {
		t.Fatal("result endpoint not stable across fetches")
	}
}

// TestFairQueuingAcrossTenants pins the acceptance property of the
// scheduler: with one worker, tenant A's four-job batch cannot starve
// tenant B's single job — B runs after at most one more A job.
func TestFairQueuingAcrossTenants(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	refs := map[string]string{}
	var release []func()
	for _, name := range []string{"a1", "a2", "a3", "a4", "b1"} {
		ref, rel := gatedRef(t, "fair-"+name)
		refs[name] = ref
		release = append(release, rel)
	}
	submit := func(name, tenant string) string {
		resp, err := c.Submit(ctx, SubmitRequest{Workload: refs[name], Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		return resp.ID
	}

	a1 := submit("a1", "tenant-a")
	waitState(t, c, a1, StateRunning) // the worker is now held by A's first job
	a2 := submit("a2", "tenant-a")
	a3 := submit("a3", "tenant-a")
	a4 := submit("a4", "tenant-a")
	b1 := submit("b1", "tenant-b")

	for _, rel := range release {
		rel()
	}
	ids := map[string]string{"a1": a1, "a2": a2, "a3": a3, "a4": a4, "b1": b1}
	seq := map[string]int{}
	for name, id := range ids {
		seq[name] = waitState(t, c, id, StateDone).StartSeq
	}

	// Exact round-robin with one worker: a1 first, then one more A job
	// (a2 was at the head of A's FIFO when B arrived), then B's job,
	// then the rest of A's batch.
	want := map[string]int{"a1": 1, "a2": 2, "b1": 3, "a3": 4, "a4": 5}
	for name, w := range want {
		if seq[name] != w {
			t.Fatalf("dispatch order %v, want %v (tenant B starved or misordered)", seq, want)
		}
	}
}

// TestAdmissionControl fills the bounded queue and requires the next
// submission to bounce with 429 while earlier jobs still complete.
func TestAdmissionControl(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueLimit: 2})
	ctx := context.Background()

	blockRef, release := gatedRef(t, "admit-block")
	resp, err := c.Submit(ctx, SubmitRequest{Workload: blockRef})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, resp.ID, StateRunning)

	q1ref, releaseQ1 := gatedRef(t, "admit-q1")
	q2ref, releaseQ2 := gatedRef(t, "admit-q2")
	q1, err := c.Submit(ctx, SubmitRequest{Workload: q1ref})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Submit(ctx, SubmitRequest{Workload: q2ref})
	if err != nil {
		t.Fatal(err)
	}

	q3ref, _ := gatedRef(t, "admit-q3")
	if _, err := c.Submit(ctx, SubmitRequest{Workload: q3ref}); !IsOverloaded(err) {
		t.Fatalf("submit over the queue limit: err = %v, want 429", err)
	}

	release()
	releaseQ1()
	releaseQ2()
	waitState(t, c, resp.ID, StateDone)
	waitState(t, c, q1.ID, StateDone)
	waitState(t, c, q2.ID, StateDone)
}

// TestRemoteSession drives a local darco.Session with WithRemote at a
// test server and requires results identical to local simulation,
// plus client-side memoization of the repeated job.
func TestRemoteSession(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	job, err := darco.WithWorkload("synthetic:429.mcf", 0.1, darco.WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	local, err := darco.NewSession().Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}

	var kinds []darco.EventKind
	sess := darco.NewSession(darco.WithRemote(c), darco.WithEvents(func(ev darco.Event) {
		kinds = append(kinds, ev.Kind)
	}))
	remote, err := sess.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Timing.Cycles != local.Timing.Cycles || remote.GuestDyn() != local.GuestDyn() {
		t.Fatalf("remote run differs from local: %d vs %d cycles", remote.Timing.Cycles, local.Timing.Cycles)
	}

	// Repeat: the local session memoizes, so no second server job.
	if _, err := sess.Run(ctx, job); err != nil {
		t.Fatal(err)
	}
	if got := len(kinds); got == 0 || kinds[got-1] != darco.EventCached {
		t.Fatalf("repeat run events = %v, want trailing cached", kinds)
	}
	srv.mu.Lock()
	serverJobs := len(srv.jobs)
	srv.mu.Unlock()
	if serverJobs != 1 {
		t.Fatalf("server saw %d jobs, want 1 (client-side memoization)", serverJobs)
	}

	// A job with no workload reference cannot run remotely.
	specJob := darco.JobForSpec(mustSpec(t, "470.lbm"), 1, darco.WithCosim(false))
	if _, err := sess.Run(ctx, specJob); err == nil {
		t.Fatal("reference-less job ran remotely, want error")
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Scale(0.1)
}

// TestGracefulShutdown drains: queued jobs fail fast with the shutdown
// error, the in-flight job is allowed to finish, and new submissions
// are rejected with 503.
func TestGracefulShutdown(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	blockRef, release := gatedRef(t, "drain-block")
	running, err := c.Submit(ctx, SubmitRequest{Workload: blockRef})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, StateRunning)
	queuedRef, _ := gatedRef(t, "drain-queued")
	queued, err := c.Submit(ctx, SubmitRequest{Workload: queuedRef})
	if err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()

	// The queued job is failed immediately by the drain.
	st := waitState(t, c, queued.ID, StateFailed)
	if st.Error == "" {
		t.Fatal("drained job has no error")
	}
	rec, err := c.Result(ctx, queued.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Error == "" {
		t.Fatalf("drained job record = %+v, want shutdown error recorded", rec)
	}

	// Admission is closed while draining.
	lateRef, _ := gatedRef(t, "drain-late")
	if _, err := c.Submit(ctx, SubmitRequest{Workload: lateRef}); err == nil {
		t.Fatal("submission accepted during shutdown")
	} else {
		var se *StatusError
		if !asStatus(err, &se) || se.Code != 503 {
			t.Fatalf("submission during shutdown: %v, want 503", err)
		}
	}

	// The in-flight job drains to completion and shutdown succeeds.
	release()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := waitState(t, c, running.ID, StateDone); st.Error != "" {
		t.Fatalf("in-flight job failed during drain: %s", st.Error)
	}
}

func asStatus(err error, se **StatusError) bool {
	for err != nil {
		if s, ok := err.(*StatusError); ok {
			*se = s
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestSubmitValidation exercises the 400 paths: unknown workload,
// unknown mode, contradictory pipeline flags.
func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	bad := []SubmitRequest{
		{},
		{Workload: "nosuchsource:x"},
		{Workload: "synthetic:does-not-exist"},
		{Workload: "synthetic:470.lbm", Mode: "sideways"},
		{Workload: "synthetic:470.lbm", Passes: "nosuchpass"},
		{Workload: "synthetic:470.lbm", OptLevel: intp(0), Passes: "dce"},
		{Workload: "synthetic:470.lbm", CCSize: 2, CCPolicy: "nosuchpolicy"},
	}
	for i, req := range bad {
		_, err := c.Submit(ctx, req)
		var se *StatusError
		if !asStatus(err, &se) || se.Code != 400 {
			t.Errorf("bad submit %d (%+v): err = %v, want 400", i, req, err)
		}
	}
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health after bad submits: %v", err)
	}
}

func intp(v int) *int { return &v }

// TestDeleteJob pins the manual registry-eviction endpoint: a running
// job is refused, a completed one is removed and subsequent lookups
// 404.
func TestDeleteJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	ref, release := gatedRef(t, "delete-running")
	resp, err := c.Submit(ctx, SubmitRequest{Workload: ref})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, resp.ID, StateRunning)

	var se *StatusError
	if _, err := c.Delete(ctx, resp.ID); !asStatus(err, &se) || se.Code != 409 {
		t.Fatalf("delete of running job: err = %v, want 409", err)
	}

	release()
	waitState(t, c, resp.ID, StateDone)
	st, err := c.Delete(ctx, resp.ID)
	if err != nil {
		t.Fatalf("delete of completed job: %v", err)
	}
	if st.ID != resp.ID || st.State != StateDone {
		t.Fatalf("deleted status = %+v, want final done status of %s", st, resp.ID)
	}

	if _, err := c.Status(ctx, resp.ID); !asStatus(err, &se) || se.Code != 404 {
		t.Fatalf("status after delete: err = %v, want 404", err)
	}
	if _, err := c.Delete(ctx, resp.ID); !asStatus(err, &se) || se.Code != 404 {
		t.Fatalf("second delete: err = %v, want 404", err)
	}
	if _, err := c.Delete(ctx, "j-999999"); !asStatus(err, &se) || se.Code != 404 {
		t.Fatalf("delete of unknown job: err = %v, want 404", err)
	}
}

// TestCompletedJobTTLEviction pins the registry TTL: a job terminal for
// longer than Config.JobTTL disappears from the registry on the next
// API touch, while fresh completed jobs survive.
func TestCompletedJobTTLEviction(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, JobTTL: time.Hour})
	ctx := context.Background()

	resp := submitTiny(t, c, "synthetic:429.mcf")
	waitState(t, c, resp.ID, StateDone)

	// A freshly completed job survives a sweep.
	jobs, err := c.Jobs(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != resp.ID {
		t.Fatalf("jobs after completion = %+v, want the completed job", jobs)
	}

	// Age the job past the TTL; the next listing sweeps it out.
	srv.mu.Lock()
	j := srv.jobs[resp.ID]
	srv.mu.Unlock()
	if j == nil {
		t.Fatalf("job %s missing from registry", resp.ID)
	}
	j.mu.Lock()
	j.doneAt = time.Now().Add(-2 * time.Hour)
	j.mu.Unlock()

	jobs, err = c.Jobs(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("jobs after TTL expiry = %+v, want empty", jobs)
	}
	var se *StatusError
	if _, err := c.Status(ctx, resp.ID); !asStatus(err, &se) || se.Code != 404 {
		t.Fatalf("status after TTL eviction: err = %v, want 404", err)
	}
}

// TestStoreQuotaEnforcedAfterJobs pins Config.StoreMaxBytes: after each
// finished job the store is evicted down to the quota, coldest first.
func TestStoreQuotaEnforcedAfterJobs(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A quota far below one record's size: after every run only the
	// newest entries that fit (possibly none) may remain, so the store
	// never grows without bound.
	_, c := newTestServer(t, Config{Workers: 1, Store: st, StoreMaxBytes: 1})

	for _, ref := range []string{"synthetic:470.lbm", "synthetic:429.mcf"} {
		resp := submitTiny(t, c, ref)
		waitState(t, c, resp.ID, StateDone)
	}
	_, bytes, err := st.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if bytes > 1 {
		t.Fatalf("store holds %d bytes, want quota of 1 enforced", bytes)
	}
}

func ExampleClient() {
	// A remote Session: every tool that takes darco.SessionOption can
	// execute on a darco-serve instance instead of simulating locally.
	cl := NewClient("http://127.0.0.1:8080")
	cl.Tenant = "docs"
	sess := darco.NewSession(darco.WithRemote(cl))
	job, err := darco.WithWorkload("synthetic:470.lbm", 1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	_, err = sess.Run(context.Background(), job)
	_ = err // network errors surface here exactly like local failures
	// Output:
}

// TestCancelJobs drives POST /jobs/{id}/cancel through both live
// states: a running job unwinds mid-simulation, a queued job settles
// without ever taking a worker, and terminal/unknown jobs are refused
// with 409/404.
func TestCancelJobs(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})

	// Hold the single worker with a gated job and queue one behind it.
	runRef, release := gatedRef(t, "cancel-running")
	running, err := c.Submit(context.Background(), SubmitRequest{Workload: runRef})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, StateRunning)
	queuedRef, _ := gatedRef(t, "cancel-queued")
	queued, err := c.Submit(context.Background(), SubmitRequest{Workload: queuedRef})
	if err != nil {
		t.Fatal(err)
	}

	// Both cancels are accepted while the jobs are live.
	if _, err := c.Cancel(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(context.Background(), running.ID); err != nil {
		t.Fatal(err)
	}

	// The running job unwinds at the engine's next context poll once
	// the gate opens; the queued one settles when the freed worker pops
	// it — without ever being dispatched (StartSeq stays 0).
	release()
	st := waitState(t, c, running.ID, StateCancelled)
	if st.Error == "" {
		t.Fatal("cancelled running job carries no error")
	}
	qst := waitState(t, c, queued.ID, StateCancelled)
	if qst.StartSeq != 0 {
		t.Fatalf("cancelled-while-queued job was dispatched: %+v", qst)
	}

	// The terminal record carries the cancellation error and the event
	// stream has a terminal event, so waiting clients settle.
	rec, err := c.Result(context.Background(), running.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Error == "" {
		t.Fatal("record of cancelled job has no error")
	}

	// Cancelling a settled job is refused; the result stands.
	var se *StatusError
	if _, err := c.Cancel(context.Background(), running.ID); !asStatus(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("cancel of terminal job: %v", err)
	}
	if _, err := c.Cancel(context.Background(), "j-999999"); !asStatus(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: %v", err)
	}

	// Cancelled jobs are terminal for registry purposes: deletable.
	if _, err := c.Delete(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
}
