package serve

import (
	"repro/internal/darco"
)

// Wire types of the darco-serve HTTP API. Everything is plain JSON;
// results themselves travel as the established darco.Record
// interchange form, so a served result is consumable by every tool
// that reads cmd/darco-suite -json output.

// SubmitRequest is the body of POST /jobs: a workload Source-registry
// reference plus the run configuration, mirroring the
// darco.WithWorkload / ApplyPipelineFlags / ApplyCacheFlags semantics
// of the command-line tools. Config, when present, replaces the
// server's base configuration; the flag-style fields are then applied
// on top exactly like the cmd flags, so a client can send either a
// full resolved Config or just the knobs it cares about.
type SubmitRequest struct {
	// Workload is the Source-registry reference ("<source>:<name>"; a
	// bare name means synthetic). It is resolved on the server.
	Workload string `json:"workload"`
	// Scale is the dynamic-size multiplier (0 means 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Tenant names the fair-queuing class of the job. The
	// X-Darco-Tenant request header overrides it; empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`

	// Config replaces the server's base configuration wholesale
	// (darco.Config JSON; the Progress hook does not travel).
	Config *darco.Config `json:"config,omitempty"`

	// Flag-style overrides, applied on top of the base (or Config):
	// the exact semantics of the -mode/-O/-passes/-promote/-cc-size/
	// -cc-policy/-cosim flags of the cmds.
	Mode      string `json:"mode,omitempty"`
	OptLevel  *int   `json:"opt_level,omitempty"`
	Passes    string `json:"passes,omitempty"`
	Promote   string `json:"promote,omitempty"`
	CCSize    int    `json:"cc_size,omitempty"`
	CCPolicy  string `json:"cc_policy,omitempty"`
	Cosim     *bool  `json:"cosim,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// SubmitResponse is the body of a 202 from POST /jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Key is the memo key (darco.Job.Key) the job's result is — or
	// will be — filed under; Addr is its content address in the
	// persistent store.
	Key  string `json:"key"`
	Addr string `json:"addr"`
}

// Job lifecycle states reported by JobStatus.State. StateCancelled is
// terminal like StateDone/StateFailed, entered when POST
// /jobs/{id}/cancel stops a queued or running job.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminalState reports whether a job in this state has settled: its
// record is final and it can be deleted but no longer cancelled.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is the body of GET /jobs/{id} and the element of GET
// /jobs listings.
type JobStatus struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale,omitempty"`
	Mode     string  `json:"mode"`
	State    string  `json:"state"`
	// FromCache marks a job served without simulating: a session
	// memory-cache hit or a persistent-store hit (EventCached).
	FromCache bool `json:"from_cache,omitempty"`
	// StartSeq is the global dispatch order of the job on the worker
	// pool (1 = first job ever started); 0 while queued. It makes the
	// fair-queuing order observable.
	StartSeq int    `json:"start_seq,omitempty"`
	Key      string `json:"key"`
	Events   int    `json:"events"`
	// Cycles is the most recent progress (or final) cycle count.
	Cycles uint64 `json:"cycles,omitempty"`
	Error  string `json:"error,omitempty"`
}

// WireEvent is one per-job progress event as streamed by GET
// /jobs/{id}/events (SSE data lines). Kind is the
// darco.EventKind.String() name; darco.ParseEventKind inverts it.
type WireEvent struct {
	Seq    int    `json:"seq"`
	Job    string `json:"job"`
	Mode   string `json:"mode"`
	Kind   string `json:"kind"`
	Cycles uint64 `json:"cycles,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Terminal reports whether this event ends the job's stream.
func (ev WireEvent) Terminal() bool {
	return ev.Kind == darco.EventDone.String() ||
		ev.Kind == darco.EventFailed.String() ||
		ev.Kind == darco.EventCached.String()
}

// Health is the body of GET /healthz.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Store   bool   `json:"store"`
	Jobs    int    `json:"jobs"`
}

// Workloads is the body of GET /workloads: the registered source
// schemes and the enumerable programs of each listable source.
type Workloads struct {
	Sources []string            `json:"sources"`
	Listed  map[string][]string `json:"listed,omitempty"`
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}
