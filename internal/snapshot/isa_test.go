package snapshot

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
)

func rv32LoopProgram(t *testing.T) *guest.Program {
	t.Helper()
	b := guest.NewRV32Builder()
	b.Li(5, 300)
	b.Label("loop")
	b.Addi(6, 6, 3)
	b.Xor(7, 6, 5)
	b.Addi(5, 5, -1)
	b.Blt(0, 5, "loop")
	b.Ebreak()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEnvelopeRecordsISAAndRejectsMismatch checks the checkpoint
// envelope carries the frontend it was taken under, survives the JSON
// round trip, refuses restoration onto a program of another ISA, and
// refuses envelopes tagged with an unregistered frontend.
func TestEnvelopeRecordsISAAndRejectsMismatch(t *testing.T) {
	p := rv32LoopProgram(t)
	eng := tol.NewEngine(tol.DefaultConfig(), p)
	var buf [64]timing.DynInst
	for eng.NextBatch(buf[:]) > 0 {
	}
	if err := eng.Err(); err != nil || !eng.Halted() {
		t.Fatalf("rv32 run: err=%v halted=%v", err, eng.Halted())
	}

	m, err := Capture("rv32-loop", eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ISA != "rv32" {
		t.Fatalf("envelope records ISA %q, want rv32", m.ISA)
	}
	blob, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ISA != "rv32" {
		t.Fatalf("JSON round trip dropped the ISA: %q", decoded.ISA)
	}

	// Restoring onto an x86 image must fail before any engine state is
	// interpreted — decoding rv32 checkpoint PCs against x86 encodings
	// would corrupt silently otherwise.
	if _, _, err := decoded.Restore(fibProgram(10)); err == nil ||
		!strings.Contains(err.Error(), `taken under ISA "rv32"`) {
		t.Fatalf("cross-ISA restore: err = %v, want ISA mismatch rejection", err)
	}

	// Restoring onto the right ISA still works after the round trip.
	eng2, _, err := decoded.Restore(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := eng2.GuestState().Diff(eng.GuestState()); d != "" {
		t.Fatalf("restored state differs: %s", d)
	}

	// An envelope tagged with an unregistered frontend is rejected at
	// validation, before Restore can misdecode anything.
	bad := *decoded
	bad.ISA = "z80"
	if err := bad.Validate("rv32-loop"); err == nil ||
		!strings.Contains(err.Error(), "z80") {
		t.Fatalf("unregistered-ISA envelope accepted: %v", err)
	}
}
