// Package snapshot is the checkpoint envelope of the simulation
// infrastructure: a versioned, JSON-serializable capture of the full
// machine state — the co-design engine (guest memory image, warm TOL
// software state, accumulated statistics) and, optionally, the timing
// simulator paused at a cycle boundary.
//
// The component layers own their own serialization (tol.EngineSnapshot
// and timing.SimSnapshot, each with a tested byte-identity guarantee:
// a restored machine resumed on the remainder of a run produces
// results identical to the uninterrupted run). This package composes
// them into one durable artifact with a format version and a program
// fingerprint, so a checkpoint can be persisted through
// internal/store, shipped between processes, and validated before a
// restore instead of failing obscurely mid-run.
//
// Sampled simulation (internal/sample) is the main producer: it
// checkpoints the engine at interval boundaries during a functional
// fast-forward and restores each checkpoint for parallel detailed
// measurement.
package snapshot

import (
	"encoding/json"
	"fmt"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
)

// Version is the current checkpoint format version. Decode rejects
// envelopes with a different version: checkpoint formats evolve with
// the machine state they capture, and a mis-versioned restore would
// corrupt a run silently.
const Version = 1

// Machine is one checkpoint: the engine state (always) plus the timing
// simulator state (when the checkpoint was taken mid-simulation rather
// than at a functional fast-forward boundary).
type Machine struct {
	Version int `json:"version"`

	// Program identifies the guest program the checkpoint belongs to —
	// the workload content fingerprint when known, empty otherwise.
	// Restore validates it when both sides carry one.
	Program string `json:"program,omitempty"`

	// ISA names the guest frontend the checkpoint was taken under,
	// recorded in clear so tools can label checkpoints without decoding
	// the engine state. Empty means x86 (pre-frontend envelopes);
	// Restore rejects a program decoding under a different frontend
	// before any engine state is interpreted.
	ISA string `json:"isa,omitempty"`

	// GuestInsts is the number of guest instructions retired at capture
	// time, recorded in clear so tools can order and label checkpoints
	// without decoding the engine state.
	GuestInsts uint64 `json:"guest_insts"`

	Engine *tol.EngineSnapshot `json:"engine"`
	Sim    *timing.SimSnapshot `json:"sim,omitempty"`
}

// Capture checkpoints an engine (and optionally a paused simulator)
// into a Machine envelope. The engine must be at a generation boundary
// (between Next/NextBatch calls); the simulator, when given, must be
// stopped at a cycle boundary (before RunContext, or after it returned
// ErrPaused).
func Capture(program string, eng *tol.Engine, sim *timing.Simulator) (*Machine, error) {
	esn, err := eng.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	m := &Machine{
		Version:    Version,
		Program:    program,
		ISA:        esn.ISA,
		GuestInsts: esn.GuestInsts(),
		Engine:     esn,
	}
	if sim != nil {
		m.Sim = sim.Snapshot()
	}
	return m, nil
}

// Validate checks the envelope is restorable: current version, engine
// state present, and — when both the envelope and the caller know the
// program fingerprint — a matching program.
func (m *Machine) Validate(program string) error {
	if m.Version != Version {
		return fmt.Errorf("snapshot: format version %d, this build reads version %d", m.Version, Version)
	}
	if m.Engine == nil {
		return fmt.Errorf("snapshot: envelope has no engine state")
	}
	if program != "" && m.Program != "" && program != m.Program {
		return fmt.Errorf("snapshot: checkpoint of program %s cannot restore program %s", m.Program, program)
	}
	if _, err := guest.LookupISA(m.ISA); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Restore rebuilds the machine: an engine resumed from the checkpoint
// and, when the checkpoint carries simulator state, the paused
// simulator ready to continue via RunContext. p must be the same guest
// program the checkpoint was captured from.
func (m *Machine) Restore(p *guest.Program) (*tol.Engine, *timing.Simulator, error) {
	if err := m.Validate(""); err != nil {
		return nil, nil, err
	}
	if isa, err := guest.ISAOf(p); err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	} else if m.ISA != "" && isa.Name != m.ISA {
		return nil, nil, fmt.Errorf("snapshot: checkpoint taken under ISA %q cannot restore a %q program", m.ISA, isa.Name)
	}
	eng, err := tol.RestoreEngine(p, m.Engine)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	var sim *timing.Simulator
	if m.Sim != nil {
		sim, err = timing.RestoreSimulator(m.Sim)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	return eng, sim, nil
}

// Encode marshals the envelope.
func Encode(m *Machine) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return b, nil
}

// Decode unmarshals and validates an envelope. Unknown versions are
// rejected here, before any state is interpreted.
func Decode(b []byte) (*Machine, error) {
	var m Machine
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if err := m.Validate(""); err != nil {
		return nil, err
	}
	return &m, nil
}
