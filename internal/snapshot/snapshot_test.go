package snapshot

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
	"repro/internal/tol"
	"repro/internal/workload"
)

func fibProgram(n int32) *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.EBX, 1)
	b.MovRI(guest.ECX, n)
	b.Label("loop")
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondE, "done")
	b.MovRR(guest.EDX, guest.EBX)
	b.AddRR(guest.EBX, guest.EAX)
	b.MovRR(guest.EAX, guest.EDX)
	b.Dec(guest.ECX)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

// TestMachineRoundTrip is the whole-machine checkpoint test: pause a
// full detailed run (engine + timing simulator) mid-flight, capture it
// through the versioned envelope and a JSON round-trip, restore, and
// resume. The completed run must be byte-identical — same timing
// Result, same TOL Stats serialization, same guest state — to an
// uninterrupted run.
func TestMachineRoundTrip(t *testing.T) {
	p := fibProgram(400)
	tcfg := tol.DefaultConfig()
	tcfg.SBThreshold = 20
	mcfg := timing.DefaultConfig()

	// Uninterrupted reference.
	refEng := tol.NewEngine(tcfg, p)
	refSim := timing.NewSimulator(mcfg, timing.ModeShared)
	refRes, err := refSim.Run(refEng)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !refEng.Halted() {
		t.Fatal("reference run did not halt")
	}
	pause := refEng.Stats.DynTotal() / 2

	// Interrupted run: pause the simulator once the engine crosses the
	// midpoint, checkpoint the whole machine.
	eng := tol.NewEngine(tcfg, p)
	sim := timing.NewSimulator(mcfg, timing.ModeShared)
	sim.StopWhen = func() bool { return eng.Stats.DynTotal() >= pause }
	if _, err := sim.RunContext(t.Context(), eng); err != timing.ErrPaused {
		t.Fatalf("expected ErrPaused, got %v", err)
	}
	m, err := Capture("fib-test", eng, sim)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if m.GuestInsts < pause {
		t.Fatalf("checkpoint records %d guest insts, paused at >= %d", m.GuestInsts, pause)
	}
	blob, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := decoded.Validate("fib-test"); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// Restore and resume to completion.
	eng2, sim2, err := decoded.Restore(p)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if sim2 == nil {
		t.Fatal("restore dropped the simulator state")
	}
	res, err := sim2.RunContext(t.Context(), eng2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !eng2.Halted() {
		t.Fatal("resumed run did not halt")
	}

	gotRes, _ := json.Marshal(res)
	wantRes, _ := json.Marshal(refRes)
	if !bytes.Equal(gotRes, wantRes) {
		t.Fatalf("timing results differ:\nresumed:       %s\nuninterrupted: %s", gotRes, wantRes)
	}
	gotStats, _ := json.Marshal(&eng2.Stats)
	wantStats, _ := json.Marshal(&refEng.Stats)
	if !bytes.Equal(gotStats, wantStats) {
		t.Fatalf("TOL stats differ:\nresumed:       %s\nuninterrupted: %s", gotStats, wantStats)
	}
	if d := eng2.GuestState().Diff(refEng.GuestState()); d != "" {
		t.Fatalf("final guest state differs: %s", d)
	}
}

// TestMachineRoundTripFuzzSpecs extends the byte-identity guarantee to
// fuzz-generated workloads: seeded specs from the fuzz: generator —
// promotion-straddling loops, dense indirect dispatch, working-set
// shifts — must checkpoint mid-run, restore, and resume to exactly the
// uninterrupted run's timing Result, TOL stats, and guest state.
func TestMachineRoundTripFuzzSpecs(t *testing.T) {
	for _, ref := range []struct {
		seed    int64
		profile string
	}{{11, "hot"}, {12, "indirect"}, {13, "shift"}, {14, "tiny"}} {
		spec, err := workload.GenSpec(ref.seed, ref.profile)
		if err != nil {
			t.Fatal(err)
		}
		spec = spec.Clamp(20_000)
		t.Run(spec.Name, func(t *testing.T) {
			p, err := workload.SpecProgram{Spec: spec}.Build()
			if err != nil {
				t.Fatal(err)
			}
			tcfg := tol.DefaultConfig()
			mcfg := timing.DefaultConfig()

			refEng := tol.NewEngine(tcfg, p)
			refSim := timing.NewSimulator(mcfg, timing.ModeShared)
			refRes, err := refSim.Run(refEng)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			pause := refEng.Stats.DynTotal() / 2
			if pause == 0 {
				t.Fatalf("%s executed too few instructions to pause", spec.Name)
			}

			eng := tol.NewEngine(tcfg, p)
			sim := timing.NewSimulator(mcfg, timing.ModeShared)
			sim.StopWhen = func() bool { return eng.Stats.DynTotal() >= pause }
			if _, err := sim.RunContext(t.Context(), eng); err != timing.ErrPaused {
				t.Fatalf("expected ErrPaused, got %v", err)
			}
			m, err := Capture(spec.Name, eng, sim)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			blob, err := Encode(m)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := Decode(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			eng2, sim2, err := decoded.Restore(p)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			res, err := sim2.RunContext(t.Context(), eng2)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			gotRes, _ := json.Marshal(res)
			wantRes, _ := json.Marshal(refRes)
			if !bytes.Equal(gotRes, wantRes) {
				t.Fatalf("timing results differ:\nresumed:       %s\nuninterrupted: %s", gotRes, wantRes)
			}
			gotStats, _ := json.Marshal(&eng2.Stats)
			wantStats, _ := json.Marshal(&refEng.Stats)
			if !bytes.Equal(gotStats, wantStats) {
				t.Fatalf("TOL stats differ:\nresumed:       %s\nuninterrupted: %s", gotStats, wantStats)
			}
			if d := eng2.GuestState().Diff(refEng.GuestState()); d != "" {
				t.Fatalf("final guest state differs: %s", d)
			}
		})
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	m := &Machine{Version: Version + 1, Engine: &tol.EngineSnapshot{}}
	blob, _ := json.Marshal(m)
	if _, err := Decode(blob); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
}

func TestValidateRejectsForeignProgram(t *testing.T) {
	p := fibProgram(10)
	eng := tol.NewEngine(tol.DefaultConfig(), p)
	m, err := Capture("prog-a", eng, nil)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if err := m.Validate("prog-b"); err == nil {
		t.Fatal("expected program-mismatch error")
	}
	if err := m.Validate(""); err != nil {
		t.Fatalf("unknown caller fingerprint must pass: %v", err)
	}
	if err := m.Validate("prog-a"); err != nil {
		t.Fatalf("matching fingerprint must pass: %v", err)
	}
}

// TestCaptureFreshEngine pins the sampling runner's interval-0 path: a
// checkpoint of a never-stepped engine restores to a machine that runs
// the whole program identically to a fresh one.
func TestCaptureFreshEngine(t *testing.T) {
	p := fibProgram(50)
	tcfg := tol.DefaultConfig()
	m, err := Capture("", tol.NewEngine(tcfg, p), nil)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if m.GuestInsts != 0 {
		t.Fatalf("fresh engine checkpoint records %d guest insts", m.GuestInsts)
	}
	eng, sim, err := m.Restore(p)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if sim != nil {
		t.Fatal("engine-only checkpoint restored a simulator")
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	ref := tol.NewEngine(tcfg, p)
	if err := ref.Run(); err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, _ := json.Marshal(&eng.Stats)
	want, _ := json.Marshal(&ref.Stats)
	if !bytes.Equal(got, want) {
		t.Fatalf("stats differ:\nrestored: %s\nfresh:    %s", got, want)
	}
}
