// Package stats renders experiment results as aligned ASCII tables and
// CSV, the output format of the figure-regeneration harnesses.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered
// with %v for strings and ints, and with prec decimals for floats.
func (t *Table) AddRowf(prec int, cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			out = append(out, fmt.Sprintf("%.*f", prec, v))
		case float32:
			out = append(out, fmt.Sprintf("%.*f", prec, float64(v)))
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.AddRow(out...)
}

// WriteTo renders the table to w in aligned ASCII form.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (RFC-4180-lite: cells
// containing commas or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
