package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("missing title")
	}
	// All data lines align to the same width.
	if len(lines[3]) > len(lines[1])+2 {
		t.Fatal("misaligned rows")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRowf(2, "x", 3.14159)
	if tb.Rows[0][1] != "3.14" {
		t.Fatalf("got %q", tb.Rows[0][1])
	}
	tb.AddRowf(1, 42, float32(2.5))
	if tb.Rows[1][0] != "42" || tb.Rows[1][1] != "2.5" {
		t.Fatalf("got %v", tb.Rows[1])
	}
}

func TestAddRowTruncates(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "b", "c")
	if len(tb.Rows[0]) != 1 {
		t.Fatal("row not truncated to header count")
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote not escaped: %s", csv)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Fatalf("got %s", Pct(0.125))
	}
}
