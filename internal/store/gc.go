package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Touch marks an entry as recently used (best effort — a failure is
// invisible, it only ages the entry). Get and GetRaw call it on every
// hit, so the file modification time approximates last-access time and
// EvictToSize removes the coldest entries first.
func (s *Store) touch(key string) {
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
}

// Usage reports the store's committed entries and their total size in
// bytes (temporary files and foreign files are not counted).
func (s *Store) Usage() (entries int, bytes int64, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with eviction
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// EvictToSize enforces the store's size quota: while the committed
// entries exceed maxBytes, the least recently used entry (oldest file
// modification time — Get/GetRaw hits refresh it) is removed. A
// non-positive maxBytes disables the quota and removes nothing.
// Concurrent use is safe: a concurrently re-written entry simply
// survives with its new timestamp, and a concurrently removed one is
// skipped.
func (s *Store) EvictToSize(maxBytes int64) (removed int, freed int64, err error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var all []entry
	var total int64
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		all = append(all, entry{name: name, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mtime.Equal(all[j].mtime) {
			return all[i].mtime.Before(all[j].mtime)
		}
		return all[i].name < all[j].name // deterministic tie-break
	})
	for _, e := range all {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, e.name)); err != nil {
			if os.IsNotExist(err) {
				total -= e.size
			}
			continue // raced or unremovable: count what we can
		}
		total -= e.size
		freed += e.size
		removed++
	}
	return removed, freed, nil
}
