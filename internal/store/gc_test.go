package store

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/darco"
)

func gcTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func putEntry(t *testing.T, s *Store, key string, size int) {
	t.Helper()
	raw, _ := json.Marshal(map[string]string{"pad": string(make([]byte, size))})
	if err := s.PutRaw(key, raw); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

func backdate(t *testing.T, s *Store, key string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.path(key), when, when); err != nil {
		t.Fatalf("chtimes %s: %v", key, err)
	}
}

func TestEvictToSizeRemovesColdestFirst(t *testing.T) {
	s := gcTestStore(t)
	putEntry(t, s, "old", 4000)
	putEntry(t, s, "mid", 4000)
	putEntry(t, s, "new", 4000)
	backdate(t, s, "old", 3*time.Hour)
	backdate(t, s, "mid", 2*time.Hour)
	backdate(t, s, "new", 1*time.Hour)

	_, total, err := s.Usage()
	if err != nil {
		t.Fatalf("usage: %v", err)
	}
	// Quota that forces exactly one eviction.
	removed, freed, err := s.EvictToSize(total - 1)
	if err != nil {
		t.Fatalf("evict: %v", err)
	}
	if removed != 1 || freed == 0 {
		t.Fatalf("removed=%d freed=%d, want one eviction", removed, freed)
	}
	if _, ok, _ := s.GetRaw("old"); ok {
		t.Error("coldest entry survived eviction")
	}
	for _, key := range []string{"mid", "new"} {
		if _, ok, _ := s.GetRaw(key); !ok {
			t.Errorf("entry %s evicted out of order", key)
		}
	}
}

func TestEvictToSizeDisabledQuota(t *testing.T) {
	s := gcTestStore(t)
	putEntry(t, s, "a", 1000)
	removed, _, err := s.EvictToSize(0)
	if err != nil || removed != 0 {
		t.Fatalf("zero quota must be a no-op, got removed=%d err=%v", removed, err)
	}
	if _, ok, _ := s.GetRaw("a"); !ok {
		t.Fatal("entry removed under disabled quota")
	}
}

// TestGetRefreshesAccessTime pins the LRU signal: a hit must protect an
// entry from the next eviction pass.
func TestGetRefreshesAccessTime(t *testing.T) {
	s := gcTestStore(t)
	rec := &darco.Record{Benchmark: "b", Mode: "shared"}
	if err := s.Put("hot", rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	putEntry(t, s, "cold", 100)
	backdate(t, s, "hot", 3*time.Hour)
	backdate(t, s, "cold", 2*time.Hour)

	if _, ok, err := s.Get("hot"); !ok || err != nil {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	// After the hit, "cold" is now the LRU entry. A quota with room for
	// one entry must evict it and keep the freshly read one.
	_, total, err := s.Usage()
	if err != nil {
		t.Fatalf("usage: %v", err)
	}
	coldInfo, err := os.Stat(s.path("cold"))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if _, _, err := s.EvictToSize(total - coldInfo.Size()); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if _, ok, _ := s.Get("cold"); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok, _ := s.Get("hot"); !ok {
		t.Error("recently read entry evicted before a colder one")
	}
}
