// Package store is the content-addressed persistent result store of
// the serving layer: a directory of JSON records filed under the
// darco Session memo key (Job.Key — program fingerprint ×
// resolved-config hash), so simulation results survive process
// restarts and are shared by every replica pointed at the same
// directory.
//
// Layout and guarantees:
//
//   - One entry per file, named by the SHA-256 of the memo key (the
//     content address — keys contain benchmark names with arbitrary
//     characters, so they never appear in filenames). Each file is an
//     Entry envelope: the key in clear plus the darco.Record as raw
//     JSON.
//   - Writes are atomic: an entry is written to a temporary file in
//     the store directory and renamed into place, so readers (and
//     concurrent writers of the same key — last writer wins) never
//     observe a torn record.
//   - Reads are tolerant: a corrupt or foreign file is a cache miss
//     in Get and skipped by List, never a fatal error. A persistent
//     cache must survive partial damage; re-simulation repairs it.
//
// Store implements darco.ResultStore, so attaching persistence to a
// batch executor is darco.NewSession(darco.WithStore(st)).
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/darco"
)

// entrySuffix is the filename suffix of committed store entries.
const entrySuffix = ".json"

// tmpPrefix marks in-flight atomic writes; readers ignore such files.
const tmpPrefix = ".tmp-"

// entryFormat versions the on-disk envelope.
const entryFormat = 1

// Entry is the on-disk envelope of one stored result: the memo key in
// clear (the filename only holds its hash) and the record as raw
// bytes, so a fetch can serve exactly what was stored.
type Entry struct {
	Format int             `json:"format"`
	Key    string          `json:"key"`
	Record json.RawMessage `json:"record"`
}

// Meta summarizes one store entry for listings.
type Meta struct {
	Key       string  `json:"key"`
	Addr      string  `json:"addr"`
	Benchmark string  `json:"benchmark"`
	Suite     string  `json:"suite,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Mode      string  `json:"mode"`
	Bytes     int     `json:"bytes"`
}

// Store is a content-addressed result store over one directory. All
// methods are safe for concurrent use by any number of processes
// sharing the directory.
type Store struct {
	dir string
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Addr returns the content address of a memo key: the hex SHA-256 the
// entry is filed under.
func Addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("%x", sum)
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, Addr(key)+entrySuffix)
}

// Put persists the record under the memo key, atomically replacing any
// previous entry. Concurrent Puts of the same key are safe: each
// writes its own temporary file and the rename commits whole entries,
// so readers see one complete record (last writer wins — callers store
// deterministic results, so the winners are interchangeable).
func (s *Store) Put(key string, rec *darco.Record) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal record for %q: %w", key, err)
	}
	return s.PutRaw(key, raw)
}

// PutRaw persists pre-marshaled record bytes under the memo key — the
// path used to mirror an entry byte-identically between stores.
func (s *Store) PutRaw(key string, record json.RawMessage) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	env, err := json.Marshal(Entry{Format: entryFormat, Key: key, Record: record})
	if err != nil {
		return fmt.Errorf("store: marshal entry for %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %q: %w", key, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: write %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: commit %q: %w", key, err)
	}
	return nil
}

// load reads and validates one entry file. Any corruption — unreadable
// JSON, wrong format, a key whose hash does not match the filename —
// is reported as corrupt, which callers treat as a miss.
func (s *Store) load(key string) (*Entry, bool, error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %q: %w", key, err)
	}
	var env Entry
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false, nil // corrupt entry: miss, not fatal
	}
	if env.Format != entryFormat || env.Key != key || len(env.Record) == 0 {
		return nil, false, nil // foreign or damaged entry: miss
	}
	return &env, true, nil
}

// GetRaw returns the stored record bytes for a memo key exactly as
// they were written — the byte-stable fetch path of the serving
// layer. A corrupt entry is a miss, not an error.
func (s *Store) GetRaw(key string) (json.RawMessage, bool, error) {
	env, ok, err := s.load(key)
	if !ok || err != nil {
		return nil, false, err
	}
	s.touch(key)
	return env.Record, true, nil
}

// Get returns the decoded record for a memo key, reporting a miss with
// ok=false. Together with Put it implements darco.ResultStore, so a
// Session with this store serves restart-surviving cache hits. A
// corrupt entry is a miss, not an error.
func (s *Store) Get(key string) (*darco.Record, bool, error) {
	env, ok, err := s.load(key)
	if !ok || err != nil {
		return nil, false, err
	}
	var rec darco.Record
	if err := json.Unmarshal(env.Record, &rec); err != nil {
		return nil, false, nil // corrupt record: miss, not fatal
	}
	s.touch(key)
	return &rec, true, nil
}

// GetRawByAddr returns the stored record bytes and memo key of the
// entry filed under a content address (the hex SHA-256 List reports) —
// the fetch path of the serving layer's /store endpoints, which never
// see raw memo keys. A corrupt or misfiled entry is a miss.
func (s *Store) GetRawByAddr(addr string) (record json.RawMessage, key string, ok bool, err error) {
	if addr == "" || strings.ContainsAny(addr, "/\\.") {
		return nil, "", false, nil // never escape the store directory
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, addr+entrySuffix))
	if os.IsNotExist(err) {
		return nil, "", false, nil
	}
	if err != nil {
		return nil, "", false, fmt.Errorf("store: read addr %q: %w", addr, err)
	}
	var env Entry
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, "", false, nil
	}
	if env.Format != entryFormat || Addr(env.Key) != addr || len(env.Record) == 0 {
		return nil, "", false, nil
	}
	return env.Record, env.Key, true, nil
}

// Delete removes the entry of a memo key (a missing entry is not an
// error).
func (s *Store) Delete(key string) error {
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}

// List enumerates the store's entries, sorted by benchmark then key.
// Corrupt or foreign files in the directory are skipped, so one
// damaged entry never hides the rest of the store.
func (s *Store) List() ([]Meta, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Meta
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue // raced with eviction or unreadable: skip
		}
		var env Entry
		if err := json.Unmarshal(raw, &env); err != nil {
			continue // corrupt entry: skip
		}
		addr := strings.TrimSuffix(name, entrySuffix)
		if env.Format != entryFormat || Addr(env.Key) != addr {
			continue // foreign or misfiled entry: skip
		}
		var rec darco.Record
		if err := json.Unmarshal(env.Record, &rec); err != nil {
			continue
		}
		out = append(out, Meta{
			Key:       env.Key,
			Addr:      addr,
			Benchmark: rec.Benchmark,
			Suite:     rec.Suite,
			Scale:     rec.Scale,
			Mode:      rec.Mode,
			Bytes:     len(env.Record),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// compile-time check: Store is a darco Session persistence hook.
var _ darco.ResultStore = (*Store)(nil)
