package store

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/darco"
	"repro/internal/timing"
)

// tinyRecord simulates one small benchmark and wraps it in the Record
// interchange form, returning the memo key it files under.
func tinyRecord(t *testing.T) (string, *darco.Record) {
	t.Helper()
	job, err := darco.WithWorkload("synthetic:462.libquantum", 0.1, darco.WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	res, err := darco.NewSession(darco.WithWorkers(1)).Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rec := darco.NewRecord(job.Name, "", job.Scale, timing.ModeShared, res, nil)
	return key, &rec
}

// TestPutGetRoundTrip persists one real simulation result, reopens the
// store (the process-restart equivalent) and requires the fetched
// Record to be byte-identical to what was stored.
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, rec := tinyRecord(t)
	want, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, rec); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh Store over the same directory.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok, err := st2.GetRaw(key)
	if err != nil || !ok {
		t.Fatalf("GetRaw after reopen: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("stored record bytes differ after reopen:\n got %d bytes\nwant %d bytes", len(raw), len(want))
	}
	got, ok, err := st2.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	reraw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reraw, want) {
		t.Fatalf("decoded record re-marshals to different bytes (Result JSON no longer round-trips exactly)")
	}

	// No leftover temporaries from the atomic write path.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Errorf("leftover temporary %s after Put", de.Name())
		}
	}
}

// TestCorruptEntryTolerated damages one of two entries and requires
// the damage to be contained: Get on the bad key misses, Get on the
// good key still hits, and List skips the bad file instead of failing.
func TestCorruptEntryTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := darco.Record{Benchmark: "good", Mode: "shared"}
	bad := darco.Record{Benchmark: "bad", Mode: "shared"}
	if err := st.Put("good-key", &rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("bad-key", &bad); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("bad-key"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrelated junk file in the directory must also be ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := st.Get("bad-key"); err != nil || ok {
		t.Fatalf("corrupt entry: got ok=%v err=%v, want miss without error", ok, err)
	}
	if got, ok, err := st.Get("good-key"); err != nil || !ok || got.Benchmark != "good" {
		t.Fatalf("good entry after corruption elsewhere: ok=%v err=%v rec=%+v", ok, err, got)
	}
	metas, err := st.List()
	if err != nil {
		t.Fatalf("List with corrupt entry present: %v", err)
	}
	if len(metas) != 1 || metas[0].Benchmark != "good" {
		t.Fatalf("List = %+v, want exactly the good entry", metas)
	}
	if metas[0].Addr != Addr("good-key") {
		t.Fatalf("List addr = %s, want %s", metas[0].Addr, Addr("good-key"))
	}
}

// TestConcurrentPutSameKey hammers one key from many goroutines; every
// Put must succeed and the surviving entry must be one complete,
// decodable record (atomic rename: last writer wins, never a torn
// file).
func TestConcurrentPutSameKey(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := darco.Record{Benchmark: "462.libquantum", Mode: "shared", Scale: 0.1}
			errs[i] = st.Put("contended-key", &rec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, ok, err := st.Get("contended-key")
	if err != nil || !ok {
		t.Fatalf("Get after concurrent Puts: ok=%v err=%v", ok, err)
	}
	if got.Benchmark != "462.libquantum" || got.Scale != 0.1 {
		t.Fatalf("surviving record = %+v, want a complete writer record", got)
	}
}

// TestSessionStoreHitSurvivesRestart is the controller-level
// round-trip: a Session with a store runs once, a second Session over
// the same directory (a restarted replica) serves the identical job
// from the store — EventCached, no program build, byte-identical
// record.
func TestSessionStoreHitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	job, err := darco.WithWorkload("synthetic:429.mcf", 0.1, darco.WithCosim(false))
	if err != nil {
		t.Fatal(err)
	}
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}

	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := darco.NewSession(darco.WithStore(st1)).Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	raw1, ok, err := st1.GetRaw(key)
	if err != nil || !ok {
		t.Fatalf("store after first run: ok=%v err=%v", ok, err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []darco.EventKind
	sess2 := darco.NewSession(darco.WithStore(st2), darco.WithEvents(func(ev darco.Event) {
		kinds = append(kinds, ev.Kind)
	}))
	res2, err := sess2.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != darco.EventCached {
		t.Fatalf("restart events = %v, want exactly [cached]", kinds)
	}
	if res1.Timing.Cycles != res2.Timing.Cycles || res1.GuestDyn() != res2.GuestDyn() {
		t.Fatalf("restart result differs: %d/%d cycles, %d/%d guest insts",
			res1.Timing.Cycles, res2.Timing.Cycles, res1.GuestDyn(), res2.GuestDyn())
	}
	rec2 := darco.NewRecord(job.Name, job.Program.Meta().Suite, job.Scale, timing.ModeShared, res2, nil)
	raw2, err := json.Marshal(&rec2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("record rebuilt from the store-served result is not byte-identical to the persisted record")
	}
}
