// Package sweep is the declarative characterization-grid engine of the
// infrastructure: the paper's evaluation is a matrix of workloads
// against software-layer knobs, and this package turns such a matrix —
// a Grid of workload references × named Axis values over the existing
// knob surface (code-cache size and policy, optimization pipeline,
// promotion, stream batching, timing mode and host parameters,
// sampling plan) — into darco.Session jobs, executes them sharded in
// parallel (locally or on a darco-serve instance via darco.WithRemote),
// and aggregates the outcomes into a long-form ResultSet with derived
// metrics (speedup against a declared baseline cell, geomeans across
// workloads, sampling confidence intervals).
//
// Resumability is by construction: every cell's job carries the
// content-addressed memo key (darco.Job.Key), so a session attached to
// a persistent store (darco.WithStore) serves previously completed
// cells from disk (EventCached) and only simulates the missing ones.
// Re-running a half-finished grid — after an interrupt, a crash, or
// from another shard — never repeats work.
//
// Grids are plain data: DecodeGrid loads the JSON form (rejecting
// unknown fields, like workload.DecodeSpecs), cmd/darco-figs surfaces
// it as -grid, and committed specs live in examples/grids/. The
// figure sweeps of internal/experiments (Fig5, FigCC, FigPhase,
// FigSample) are thin grid specs over this engine.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/darco"
	"repro/internal/sample"
	"repro/internal/timing"
	"repro/internal/workload"
)

// Knobs is one cell's (or the grid base's) configuration delta over
// the existing knob surface. Every field mirrors the semantics of the
// corresponding command-line flag (and of serve.SubmitRequest), so a
// grid can sweep any knob the tools expose without per-knob engine
// code: zero values mean "not set" and leave the base configuration
// untouched.
type Knobs struct {
	// Mode selects the timing-simulator stream mode ("shared",
	// "app-only", "tol-only", "split").
	Mode string `json:"mode,omitempty"`
	// ISA pins the cell to one guest frontend ("x86" or "rv32") —
	// darco.WithISA semantics — and redirects synthetic-catalog
	// workload references to that frontend's catalog source, so an ISA
	// axis sweeps the same benchmark name across frontends.
	ISA string `json:"isa,omitempty"`
	// OptLevel selects an optimization preset 0..3 (nil = keep; 0
	// disables SBM), Passes an explicit pipeline, Promote the
	// tier-promotion policy — darco.ApplyPipelineFlags semantics.
	OptLevel *int   `json:"opt_level,omitempty"`
	Passes   string `json:"passes,omitempty"`
	Promote  string `json:"promote,omitempty"`
	// CCSize bounds the code cache in instruction slots; an explicit 0
	// restores the unbounded cache (clearing the policy too). CCPolicy
	// selects the eviction policy.
	CCSize   *int   `json:"cc_size,omitempty"`
	CCPolicy string `json:"cc_policy,omitempty"`
	// Cosim toggles co-simulation; MaxCycles bounds the run.
	Cosim     *bool  `json:"cosim,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// StreamBatch sets the simulator's stream refill size (> 0).
	StreamBatch int `json:"stream_batch,omitempty"`
	// Sample switches the cell to sampled simulation under the given
	// plan; NoSample restores full detail (overriding a sampled base).
	Sample   *SamplePlan `json:"sample,omitempty"`
	NoSample bool        `json:"no_sample,omitempty"`
	// Timing replaces the whole host microarchitecture configuration
	// (paper Table I), the escape hatch for sweeping any timing
	// parameter without a dedicated knob.
	Timing *timing.Config `json:"timing,omitempty"`
}

// SamplePlan is the sampling-plan knob: -sample/-interval/-warmup
// flag semantics (Every required; Interval 0 and Warmup nil fall back
// to the sample.DefaultConfig values; an explicit "warmup": 0 is
// honored).
type SamplePlan struct {
	Every    int     `json:"every"`
	Interval uint64  `json:"interval,omitempty"`
	Warmup   *uint64 `json:"warmup,omitempty"`
}

// apply folds the knobs into cfg, mirroring the flag-application
// helpers of the cmds so a grid cell and the equivalent command line
// resolve to the identical configuration (and therefore the identical
// memo key).
func (k *Knobs) apply(cfg *darco.Config) error {
	if k == nil {
		return nil
	}
	if k.Timing != nil {
		cfg.Timing = *k.Timing
	}
	if k.Mode != "" {
		m, err := timing.ParseMode(k.Mode)
		if err != nil {
			return err
		}
		cfg.Mode = m
	}
	if k.ISA != "" {
		cfg.ISA = k.ISA
	}
	if k.Cosim != nil {
		cfg.TOL.Cosim = *k.Cosim
	}
	if k.MaxCycles != 0 {
		cfg.MaxCycles = k.MaxCycles
	}
	if k.StreamBatch > 0 {
		cfg.Timing.StreamBatch = k.StreamBatch
	}
	if k.CCSize != nil {
		cfg.TOL.Cache.CapacityInsts = *k.CCSize
		if *k.CCSize == 0 {
			cfg.TOL.Cache.Policy = ""
		}
	}
	if k.CCPolicy != "" {
		cfg.TOL.Cache.Policy = k.CCPolicy
	}
	if k.OptLevel != nil || k.Passes != "" || k.Promote != "" {
		// ApplyPipelineFlags validates the whole TOL config, so it only
		// runs for knobs that actually touch the pipeline: a knob from
		// one axis may leave a state another axis completes (a policy
		// without its capacity), which is validated once per cell after
		// every delta is folded in.
		opt := -1
		if k.OptLevel != nil {
			opt = *k.OptLevel
		}
		if err := darco.ApplyPipelineFlags(&cfg.TOL, opt, k.Passes, k.Promote); err != nil {
			return err
		}
	}
	if k.NoSample {
		cfg.Sampling = nil
	}
	if k.Sample != nil {
		sc := sample.DefaultConfig()
		sc.Every = k.Sample.Every
		if k.Sample.Interval > 0 {
			sc.Interval = k.Sample.Interval
		}
		if k.Sample.Warmup != nil {
			sc.Warmup = *k.Sample.Warmup
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		cfg.Sampling = &sc
	}
	return nil
}

// Value is one named point on an axis: a display/reference name plus
// the knob delta the point applies. The zero delta is valid — a value
// that changes nothing is the conventional spelling of a baseline
// point.
type Value struct {
	Name string `json:"name"`
	Knobs
}

// Axis is one swept dimension: a name (the column header and the key
// constraints and baselines refer to it by) and its ordered values.
type Axis struct {
	Name   string  `json:"axis"`
	Values []Value `json:"values"`
}

// Constraint names cells to skip: a map from axis name (or the
// reserved key "workload", matching workload references) to an allowed
// value set. A cell is skipped when every named axis's value is in the
// listed set, so one constraint expresses a rectangular hole in the
// grid — e.g. "the unbounded policy pairs only with the inf size".
type Constraint map[string][]string

// workloadKey is the reserved Constraint key matching the workload
// dimension.
const workloadKey = "workload"

func (c Constraint) matches(ref string, coords []Coord) bool {
	if len(c) == 0 {
		return false
	}
	for axis, vals := range c {
		have := ""
		if axis == workloadKey {
			have = ref
		} else {
			for _, co := range coords {
				if co.Axis == axis {
					have = co.Value
					break
				}
			}
		}
		found := false
		for _, v := range vals {
			if v == have {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Grid is a declarative characterization sweep: the cross product of
// Workloads and the values of every Axis, minus the Skip constraints.
// It is plain JSON-loadable data (DecodeGrid); Cells enumerates it and
// Run / RunOn execute it.
type Grid struct {
	// Name labels reports (and the -grid CSV title).
	Name string `json:"name,omitempty"`
	// Workloads are Source-registry references ("<source>:<name>"; a
	// bare name means the synthetic catalog).
	Workloads []string `json:"workloads"`
	// Scale multiplies every workload's dynamic size (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Base is a knob delta applied to every cell before its axis
	// values — the place a grid pins the mode or disables cosim.
	Base *Knobs `json:"base,omitempty"`
	// Axes are the swept dimensions, first axis outermost in cell
	// order. A grid with no axes runs each workload once at Base.
	Axes []Axis `json:"axes,omitempty"`
	// Skip removes cells (see Constraint).
	Skip []Constraint `json:"skip,omitempty"`
	// Baseline names one value per axis; the cell at those coordinates
	// is each workload's reference point for the derived speedup
	// column. Empty means no baseline metrics.
	Baseline map[string]string `json:"baseline,omitempty"`
	// NoPreload opts every cell out of the session preload shortcut
	// regardless of whether its configuration deviates from the base.
	NoPreload bool `json:"no_preload,omitempty"`
}

// Coord is one cell coordinate: the axis and the value name.
type Coord struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Cell is one enumerated grid point.
type Cell struct {
	// Index is the cell's position in full-grid enumeration order; it
	// is stable across runs and shards (sharding selects by it).
	Index    int
	Workload string
	Coords   []Coord
}

// Validate rejects structurally broken grids — no workloads, duplicate
// axis or value names, constraints or baselines referring to axes or
// values that do not exist — before any cell is enumerated.
func (g *Grid) Validate() error {
	if len(g.Workloads) == 0 {
		return fmt.Errorf("sweep: grid %q has no workloads", g.Name)
	}
	if g.Scale < 0 {
		return fmt.Errorf("sweep: grid %q has negative scale %g", g.Name, g.Scale)
	}
	seenW := map[string]bool{}
	for _, ref := range g.Workloads {
		if ref == "" {
			return fmt.Errorf("sweep: grid %q has an empty workload reference", g.Name)
		}
		if seenW[ref] {
			return fmt.Errorf("sweep: grid %q lists workload %q twice", g.Name, ref)
		}
		seenW[ref] = true
	}
	axes := map[string]map[string]bool{}
	for _, ax := range g.Axes {
		if ax.Name == "" {
			return fmt.Errorf("sweep: grid %q has an unnamed axis", g.Name)
		}
		if ax.Name == workloadKey {
			return fmt.Errorf("sweep: axis name %q is reserved for the workload dimension", workloadKey)
		}
		if axes[ax.Name] != nil {
			return fmt.Errorf("sweep: grid %q has two axes named %q", g.Name, ax.Name)
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		vals := map[string]bool{}
		for _, v := range ax.Values {
			if v.Name == "" {
				return fmt.Errorf("sweep: axis %q has an unnamed value", ax.Name)
			}
			if vals[v.Name] {
				return fmt.Errorf("sweep: axis %q has two values named %q", ax.Name, v.Name)
			}
			vals[v.Name] = true
		}
		axes[ax.Name] = vals
	}
	for axis, val := range g.Baseline {
		vals := axes[axis]
		if vals == nil {
			return fmt.Errorf("sweep: baseline names unknown axis %q", axis)
		}
		if !vals[val] {
			return fmt.Errorf("sweep: baseline value %q is not on axis %q", val, axis)
		}
	}
	if len(g.Baseline) > 0 && len(g.Baseline) != len(g.Axes) {
		return fmt.Errorf("sweep: baseline must name a value for every axis (%d of %d named)",
			len(g.Baseline), len(g.Axes))
	}
	for i, c := range g.Skip {
		if len(c) == 0 {
			return fmt.Errorf("sweep: skip constraint %d is empty", i)
		}
		for axis, listed := range c {
			if axis == workloadKey {
				for _, ref := range listed {
					if !seenW[ref] {
						return fmt.Errorf("sweep: skip constraint %d names unknown workload %q", i, ref)
					}
				}
				continue
			}
			vals := axes[axis]
			if vals == nil {
				return fmt.Errorf("sweep: skip constraint %d names unknown axis %q", i, axis)
			}
			for _, v := range listed {
				if !vals[v] {
					return fmt.Errorf("sweep: skip constraint %d names value %q not on axis %q", i, v, axis)
				}
			}
		}
	}
	return nil
}

// Cells validates the grid and enumerates its cells in deterministic
// order: workloads outermost, then the axes in declared order (the
// first axis varying slowest). Skipped cells are absent but their
// indices are not reused, so a cell's Index identifies the same
// coordinates in every run of the same grid.
func (g *Grid) Cells() ([]Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	var out []Cell
	idx := 0
	coords := make([]Coord, len(g.Axes))
	var walk func(ref string, axis int)
	walk = func(ref string, axis int) {
		if axis == len(g.Axes) {
			cell := Cell{Index: idx, Workload: ref, Coords: append([]Coord(nil), coords...)}
			idx++
			for _, c := range g.Skip {
				if c.matches(ref, cell.Coords) {
					return
				}
			}
			out = append(out, cell)
			return
		}
		ax := g.Axes[axis]
		for _, v := range ax.Values {
			coords[axis] = Coord{Axis: ax.Name, Value: v.Name}
			walk(ref, axis+1)
		}
	}
	for _, ref := range g.Workloads {
		walk(ref, 0)
	}
	return out, nil
}

// value returns the named value of the named axis (Validate
// guarantees existence for coordinates produced by Cells).
func (g *Grid) value(axis, name string) *Value {
	for i := range g.Axes {
		if g.Axes[i].Name != axis {
			continue
		}
		for j := range g.Axes[i].Values {
			if g.Axes[i].Values[j].Name == name {
				return &g.Axes[i].Values[j]
			}
		}
	}
	return nil
}

// knobsFor collects the knob deltas of one cell: the grid base first,
// then each coordinate's value in axis order.
func (g *Grid) knobsFor(cell Cell) []*Knobs {
	ks := make([]*Knobs, 0, 1+len(cell.Coords))
	if g.Base != nil {
		ks = append(ks, g.Base)
	}
	for _, co := range cell.Coords {
		if v := g.value(co.Axis, co.Value); v != nil {
			ks = append(ks, &v.Knobs)
		}
	}
	return ks
}

// isaFor resolves the effective ISA of one cell by folding the knob
// deltas in apply order (base configuration, grid base, then the
// coordinates' values), mirroring what JobFor's Config.ISA ends up as.
func (g *Grid) isaFor(base darco.Config, cell Cell) string {
	isa := base.ISA
	if g.Base != nil && g.Base.ISA != "" {
		isa = g.Base.ISA
	}
	for _, co := range cell.Coords {
		if v := g.value(co.Axis, co.Value); v != nil && v.ISA != "" {
			isa = v.ISA
		}
	}
	return isa
}

// baselineCoords returns the declared baseline cell's coordinates in
// axis order (nil when the grid declares none).
func (g *Grid) baselineCoords() []Coord {
	if len(g.Baseline) == 0 {
		return nil
	}
	coords := make([]Coord, 0, len(g.Axes))
	for _, ax := range g.Axes {
		v, ok := g.Baseline[ax.Name]
		if !ok {
			return nil
		}
		coords = append(coords, Coord{Axis: ax.Name, Value: v})
	}
	return coords
}

// DecodeGrid reads one Grid in JSON form, rejecting unknown fields (a
// typo in a knob name must not silently sweep nothing) and validating
// the result — the same strictness as workload.DecodeSpecs.
func DecodeGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: decode grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// JobFor is the one cell→Job mapper of the grid engine (and of every
// figure sweep built on it): it folds the knob deltas into the base
// configuration in order and builds the session job for the
// already-scaled program. The job keeps the workload reference, so it
// stays runnable on a remote session, and opts out of the preload
// shortcut whenever its resolved configuration deviates from the base
// at the same mode — preloaded Records are matched by (name, mode)
// only and describe base-configuration runs.
func JobFor(p workload.Program, ref string, scale float64, base darco.Config, knobs ...*Knobs) (darco.Job, error) {
	cfg := base
	for _, k := range knobs {
		if err := k.apply(&cfg); err != nil {
			return darco.Job{}, fmt.Errorf("sweep: %s: %w", p.Name(), err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return darco.Job{}, fmt.Errorf("sweep: %s: %w", p.Name(), err)
	}
	j := darco.JobForProgram(p, scale, darco.WithConfig(cfg))
	j.Ref = ref
	deviates, err := configDeviates(base, cfg)
	if err != nil {
		return darco.Job{}, fmt.Errorf("sweep: %s: %w", p.Name(), err)
	}
	j.NoPreload = j.NoPreload || deviates
	return j, nil
}

// configDeviates reports whether cfg differs from base anywhere but
// the mode (preload records are keyed by mode, so a mode-only change
// is still preload-servable). The comparison uses the JSON form — the
// same rendering the memo key hashes.
func configDeviates(base, cfg darco.Config) (bool, error) {
	base.Mode = cfg.Mode
	base.Progress, cfg.Progress = nil, nil
	a, err := json.Marshal(&base)
	if err != nil {
		return false, err
	}
	b, err := json.Marshal(&cfg)
	if err != nil {
		return false, err
	}
	return !bytes.Equal(a, b), nil
}
