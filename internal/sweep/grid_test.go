package sweep

import (
	"strings"
	"testing"

	"repro/internal/darco"
	"repro/internal/workload"
)

func intp(v int) *int { return &v }

func testGrid() *Grid {
	return &Grid{
		Name:      "t",
		Workloads: []string{"462.libquantum", "429.mcf"},
		Scale:     0.1,
		Base:      &Knobs{Mode: "shared"},
		Axes: []Axis{
			{Name: "promotion", Values: []Value{
				{Name: "default"},
				{Name: "eager", Knobs: Knobs{Promote: "adaptive"}},
			}},
			{Name: "batch", Values: []Value{
				{Name: "256", Knobs: Knobs{StreamBatch: 256}},
				{Name: "1024", Knobs: Knobs{StreamBatch: 1024}},
			}},
		},
	}
}

func TestDecodeGridRejectsUnknownFields(t *testing.T) {
	_, err := DecodeGrid(strings.NewReader(`{
		"workloads": ["462.libquantum"],
		"axes": [{"axis": "a", "values": [{"name": "x", "cc_sise": 512}]}]
	}`))
	if err == nil || !strings.Contains(err.Error(), "cc_sise") {
		t.Fatalf("typoed knob accepted: %v", err)
	}
}

func TestDecodeGridValid(t *testing.T) {
	g, err := DecodeGrid(strings.NewReader(`{
		"name": "promo",
		"workloads": ["462.libquantum", "429.mcf"],
		"scale": 0.25,
		"base": {"mode": "shared"},
		"axes": [
			{"axis": "promotion", "values": [
				{"name": "default"},
				{"name": "eager", "promote": "adaptive"}
			]},
			{"axis": "cc", "values": [
				{"name": "inf", "cc_size": 0},
				{"name": "512", "cc_size": 512, "cc_policy": "flush-all"}
			]}
		],
		"skip": [{"promotion": ["eager"], "cc": ["inf"]}],
		"baseline": {"promotion": "default", "cc": "inf"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 promotions x 2 cc minus the skipped (eager, inf).
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	for _, c := range cells {
		if c.Coords[0].Value == "eager" && c.Coords[1].Value == "inf" {
			t.Fatalf("skipped cell enumerated: %+v", c)
		}
	}
	// cc_size: 0 must be decoded as an explicit unbounded override.
	if v := g.Axes[1].Values[0]; v.CCSize == nil || *v.CCSize != 0 {
		t.Fatalf("explicit cc_size 0 lost: %+v", v)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Grid)
		want string
	}{
		{"no workloads", func(g *Grid) { g.Workloads = nil }, "no workloads"},
		{"dup workload", func(g *Grid) { g.Workloads = []string{"a", "a"} }, "twice"},
		{"dup axis", func(g *Grid) { g.Axes = append(g.Axes, g.Axes[0]) }, "two axes"},
		{"reserved axis", func(g *Grid) { g.Axes[0].Name = "workload" }, "reserved"},
		{"dup value", func(g *Grid) {
			g.Axes[0].Values = append(g.Axes[0].Values, g.Axes[0].Values[0])
		}, "two values"},
		{"empty axis", func(g *Grid) { g.Axes[0].Values = nil }, "no values"},
		{"bad baseline axis", func(g *Grid) { g.Baseline = map[string]string{"nope": "x"} }, "unknown axis"},
		{"bad baseline value", func(g *Grid) {
			g.Baseline = map[string]string{"promotion": "nope", "batch": "256"}
		}, "not on axis"},
		{"partial baseline", func(g *Grid) {
			g.Baseline = map[string]string{"promotion": "default"}
		}, "every axis"},
		{"bad skip axis", func(g *Grid) { g.Skip = []Constraint{{"nope": {"x"}}} }, "unknown axis"},
		{"bad skip value", func(g *Grid) { g.Skip = []Constraint{{"promotion": {"nope"}}} }, "not on axis"},
		{"bad skip workload", func(g *Grid) { g.Skip = []Constraint{{"workload": {"nope"}}} }, "unknown workload"},
		{"empty skip", func(g *Grid) { g.Skip = []Constraint{{}} }, "empty"},
	}
	for _, tc := range cases {
		g := testGrid()
		tc.mut(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

func TestCellsOrderAndShard(t *testing.T) {
	g := testGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Workload outermost, first axis next, second axis innermost; the
	// Index is the enumeration position.
	want := []struct {
		w, promo, batch string
	}{
		{"462.libquantum", "default", "256"},
		{"462.libquantum", "default", "1024"},
		{"462.libquantum", "eager", "256"},
		{"462.libquantum", "eager", "1024"},
		{"429.mcf", "default", "256"},
		{"429.mcf", "default", "1024"},
		{"429.mcf", "eager", "256"},
		{"429.mcf", "eager", "1024"},
	}
	for i, c := range cells {
		if c.Index != i || c.Workload != want[i].w ||
			c.Coords[0].Value != want[i].promo || c.Coords[1].Value != want[i].batch {
			t.Fatalf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}
	// Skipped cells keep their indices reserved, so shards partition
	// identically whether or not a constraint removed cells between
	// their picks.
	g.Skip = []Constraint{{"promotion": {"eager"}, "batch": {"256"}}}
	cells, err = g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("after skip: cells = %d, want 6", len(cells))
	}
	indices := []int{}
	for _, c := range cells {
		indices = append(indices, c.Index)
	}
	wantIdx := []int{0, 1, 3, 4, 5, 7}
	for i := range wantIdx {
		if indices[i] != wantIdx[i] {
			t.Fatalf("indices = %v, want %v", indices, wantIdx)
		}
	}
}

func TestJobForKnobsAndPreload(t *testing.T) {
	p, err := workload.Open("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	base := darco.DefaultConfig()

	// A mode-only change keeps the preload shortcut (records are keyed
	// by mode); any other deviation opts out.
	j, err := JobFor(p, "462.libquantum", 1, base, &Knobs{Mode: "tol-only"})
	if err != nil {
		t.Fatal(err)
	}
	if j.NoPreload {
		t.Fatal("mode-only change disabled preload")
	}
	j, err = JobFor(p, "462.libquantum", 1, base, &Knobs{Mode: "shared"}, &Knobs{StreamBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !j.NoPreload {
		t.Fatal("config deviation kept preload")
	}
	cfg := jobConfig(t, j)
	if cfg.Timing.StreamBatch != 256 {
		t.Fatalf("StreamBatch = %d", cfg.Timing.StreamBatch)
	}

	// An explicit cc_size 0 restores the unbounded cache and clears a
	// policy a base or earlier knob set.
	j, err = JobFor(p, "462.libquantum", 1, base,
		&Knobs{CCSize: intp(512), CCPolicy: "flush-all"}, &Knobs{CCSize: intp(0)})
	if err != nil {
		t.Fatal(err)
	}
	cfg = jobConfig(t, j)
	if cfg.TOL.Cache.CapacityInsts != 0 || cfg.TOL.Cache.Policy != "" {
		t.Fatalf("cache = %+v, want unbounded", cfg.TOL.Cache)
	}

	// Invalid knob combinations fail at job construction.
	if _, err := JobFor(p, "462.libquantum", 1, base, &Knobs{Mode: "warp-speed"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := JobFor(p, "462.libquantum", 1, base, &Knobs{CCPolicy: "flush-all"}); err == nil {
		t.Fatal("policy without capacity accepted")
	}
	bad := -1
	if _, err := JobFor(p, "462.libquantum", 1, base, &Knobs{Sample: &SamplePlan{Every: bad}}); err == nil {
		t.Fatal("bad sample plan accepted")
	}
}

// jobConfig resolves the job's options into the configuration the
// session would run.
func jobConfig(t *testing.T, j darco.Job) darco.Config {
	t.Helper()
	cfg := darco.DefaultConfig()
	for _, o := range j.Opts {
		o(&cfg)
	}
	return cfg
}
