package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestISAAxis runs one benchmark name across a two-cell ISA axis: each
// cell must resolve the name through its own frontend's catalog, simulate
// genuinely different programs, and file the results under distinct
// store keys.
func TestISAAxis(t *testing.T) {
	g := &Grid{
		Name:      "isa-axis",
		Workloads: []string{"429.mcf"},
		Scale:     0.05,
		Axes: []Axis{
			{Name: "isa", Values: []Value{
				{Name: "x86", Knobs: Knobs{ISA: "x86"}},
				{Name: "rv32", Knobs: Knobs{ISA: "rv32"}},
			}},
		},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(context.Background(), g, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
	byVal := map[string]Row{}
	for _, r := range rs.Rows {
		if r.Error != "" {
			t.Fatalf("cell %v failed: %s", r.Coords, r.Error)
		}
		if r.Name != "429.mcf" {
			t.Fatalf("cell renamed the benchmark: %q", r.Name)
		}
		if r.Workload != "429.mcf" {
			t.Fatalf("report workload reference changed: %q (baseline matching would break)", r.Workload)
		}
		byVal[r.Coords[0].Value] = r
	}
	x86, rv := byVal["x86"], byVal["rv32"]
	if x86.Key == "" || x86.Key == rv.Key {
		t.Fatalf("ISA cells share store key %q", x86.Key)
	}
	if x86.Summary.GuestDyn == rv.Summary.GuestDyn && x86.Summary.Cycles == rv.Summary.Cycles {
		t.Fatal("x86 and rv32 cells produced identical results: the axis simulated one program twice")
	}
	// The aggregated table keeps one row per ISA value.
	tab := rs.Table().String()
	if !strings.Contains(tab, "rv32") || !strings.Contains(tab, "x86") {
		t.Fatalf("table lost an ISA coordinate:\n%s", tab)
	}
}
