package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
)

// Lookup returns the row for a workload (by program name or reference)
// at the given coordinate values, one per axis in declared order —
// the accessor figure harnesses assemble their bespoke tables from.
// Fewer values than axes match any cell agreeing on the given prefix;
// nil when no row matches.
func (rs *ResultSet) Lookup(name string, values ...string) *Row {
	for i := range rs.Rows {
		r := &rs.Rows[i]
		if r.Name != name && r.Workload != name {
			continue
		}
		if len(values) > len(r.Coords) {
			continue
		}
		ok := true
		for j, v := range values {
			if r.Coords[j].Value != v {
				ok = false
				break
			}
		}
		if ok {
			return r
		}
	}
	return nil
}

// baseline returns the workload's row at the grid's declared baseline
// coordinates (nil when the grid declares none or the cell is absent).
func (rs *ResultSet) baseline(workload string) *Row {
	coords := rs.Grid.baselineCoords()
	if coords == nil {
		return nil
	}
	vals := make([]string, len(coords))
	for i, c := range coords {
		vals[i] = c.Value
	}
	return rs.Lookup(workload, vals...)
}

// Table aggregates the result set into the generic long-form grid
// table: one row per cell with its full coordinates and headline
// metrics, a derived speedup column against the grid's declared
// baseline cell, sampling confidence intervals when a cell ran
// sampled, and per-coordinate GEOMEAN rows across workloads. The
// table deliberately excludes volatile columns (wall-clock, cache
// provenance), so its rendering — and the CSV — is byte-identical
// between a fresh run and a fully store-served re-run.
func (rs *ResultSet) Table() *stats.Table {
	g := rs.Grid
	name := g.Name
	if name == "" {
		name = "sweep"
	}
	headers := []string{"workload", "suite"}
	for _, ax := range g.Axes {
		headers = append(headers, ax.Name)
	}
	headers = append(headers, "cycles", "ipc", "tol%", "ci95%", "speedup")
	t := stats.NewTable(fmt.Sprintf("Grid %s: %d workloads x %d cells", name, len(g.Workloads), len(rs.Rows)), headers...)

	cellsFor := func(r *Row) []string {
		cells := []string{r.Workload, r.Suite}
		for _, c := range r.Coords {
			cells = append(cells, c.Value)
		}
		if r.Summary == nil {
			return append(cells, "error: "+r.Error, "", "", "", "")
		}
		ci := ""
		if r.Result != nil && r.Result.Sampled != nil {
			if m, ok := r.Result.Sampled.Metric("cycles"); ok {
				ci = fmt.Sprintf("%.2f", 100*m.RelErr)
			}
		}
		speed := ""
		if base := rs.baseline(r.Workload); base != nil && base.Summary != nil && r.Summary.Cycles > 0 {
			speed = fmt.Sprintf("%.3f", float64(base.Summary.Cycles)/float64(r.Summary.Cycles))
		}
		return append(cells,
			fmt.Sprintf("%d", r.Summary.Cycles),
			fmt.Sprintf("%.3f", r.Summary.IPC),
			fmt.Sprintf("%.1f", 100*r.Summary.TOLShare),
			ci, speed)
	}
	for i := range rs.Rows {
		t.AddRow(cellsFor(&rs.Rows[i])...)
	}

	if len(g.Workloads) > 1 {
		rs.addGeomeans(t)
	}
	return t
}

// addGeomeans appends one GEOMEAN row per coordinate tuple, computed
// across the workloads that completed at that tuple — the standard
// cross-workload aggregate of the paper's figures.
func (rs *ResultSet) addGeomeans(t *stats.Table) {
	type agg struct {
		coords               []Coord
		n                    int
		cycles, ipc, speedup float64
		speedups             int
	}
	var order []string
	groups := map[string]*agg{}
	for i := range rs.Rows {
		r := &rs.Rows[i]
		if r.Summary == nil || r.Summary.Cycles == 0 {
			continue
		}
		key := ""
		for _, c := range r.Coords {
			key += c.Value + "\x00"
		}
		a := groups[key]
		if a == nil {
			a = &agg{coords: r.Coords}
			groups[key] = a
			order = append(order, key)
		}
		a.n++
		a.cycles += math.Log(float64(r.Summary.Cycles))
		if r.Summary.IPC > 0 {
			a.ipc += math.Log(r.Summary.IPC)
		}
		if base := rs.baseline(r.Workload); base != nil && base.Summary != nil {
			a.speedup += math.Log(float64(base.Summary.Cycles) / float64(r.Summary.Cycles))
			a.speedups++
		}
	}
	for _, key := range order {
		a := groups[key]
		cells := []string{"GEOMEAN", ""}
		for _, c := range a.coords {
			cells = append(cells, c.Value)
		}
		speed := ""
		if a.speedups == a.n && a.n > 0 {
			speed = fmt.Sprintf("%.3f", math.Exp(a.speedup/float64(a.n)))
		}
		cells = append(cells,
			fmt.Sprintf("%.0f", math.Exp(a.cycles/float64(a.n))),
			fmt.Sprintf("%.3f", math.Exp(a.ipc/float64(a.n))),
			"", "", speed)
		t.AddRow(cells...)
	}
}

// CSV renders the aggregated table as comma-separated values.
func (rs *ResultSet) CSV() string { return rs.Table().CSV() }

// WriteJSON writes the full long-form result set as indented JSON —
// one object per cell with coordinates, memo key and summary.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}
