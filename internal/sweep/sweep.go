package sweep

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/darco"
	"repro/internal/workload"
)

// Options configures one grid execution.
type Options struct {
	// Config is the base configuration every cell's knob deltas fold
	// into (nil = darco.DefaultConfig). It is also the reference point
	// of the preload shortcut: cells that deviate from it anywhere but
	// the mode run with Job.NoPreload set.
	Config *darco.Config
	// Jobs bounds local parallelism for Run (0 = GOMAXPROCS).
	Jobs int
	// Session appends session options for Run — darco.WithStore for
	// resumability, darco.WithRemote for remote execution, extra event
	// hooks.
	Session []darco.SessionOption
	// Log, when non-nil, receives one line per started ("run ...") and
	// store- or cache-served ("cached ...") cell.
	Log io.Writer
	// Sequential runs the cells one at a time and records per-cell
	// wall-clock in Row.Elapsed — for sweeps that time the simulator
	// itself (FigSample), where parallel cells would contend.
	Sequential bool
	// Shard/Shards select every Shards-th cell starting at Shard, by
	// the cell's stable full-grid Index, so independent processes (or
	// hosts) given 0/3, 1/3, 2/3 partition the grid exactly. Shards 0
	// means unsharded.
	Shard, Shards int
}

// Row is one executed grid cell in long form: the full coordinates
// (workload + one value per axis), the memo key the result is filed
// under, and the outcome.
type Row struct {
	// Name is the program's display name, Workload the Source-registry
	// reference it was opened from, Suite its suite label.
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	Suite    string  `json:"suite,omitempty"`
	Coords   []Coord `json:"coords,omitempty"`
	// Key is the cell's content address (darco.Job.Key) — the key a
	// persistent store serves it back under.
	Key string `json:"key"`
	// Cached reports that this run was served without simulating
	// (memo cache, preload, or persistent store).
	Cached bool `json:"cached,omitempty"`
	// Elapsed is the cell's wall-clock time (Sequential runs only).
	Elapsed time.Duration  `json:"elapsed,omitempty"`
	Summary *darco.Summary `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
	// Result is the full in-memory result (not serialized; the
	// Summary plus the store carry the durable forms).
	Result *darco.Result `json:"-"`
}

// ResultSet is the long-form outcome of a grid execution: one Row per
// executed cell, in cell enumeration order, together with the grid
// that produced it. It marshals to JSON and aggregates to a
// stats.Table / CSV via Table and CSV.
type ResultSet struct {
	Grid *Grid `json:"grid"`
	Rows []Row `json:"rows"`
}

// Run executes the grid on a fresh session with opts.Jobs workers plus
// any opts.Session options. It returns the complete ResultSet (rows
// for failed cells carry Error) and the first cell error, if any.
func Run(ctx context.Context, g *Grid, opts Options) (*ResultSet, error) {
	sess := darco.NewSession(append([]darco.SessionOption{darco.WithWorkers(opts.Jobs)}, opts.Session...)...)
	return RunOn(ctx, sess, g, opts)
}

// RunOn executes the grid on an existing session — the entry point for
// callers that share one session (and therefore one memo cache) across
// several grids, like the figure harness. Cells are enumerated,
// shard-filtered, mapped to jobs through JobFor and executed in
// parallel (or sequentially under opts.Sequential); a session with a
// persistent store serves previously completed cells from it, which is
// the whole resume story.
func RunOn(ctx context.Context, sess *darco.Session, g *Grid, opts Options) (*ResultSet, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	if opts.Shards > 0 {
		if opts.Shard < 0 || opts.Shard >= opts.Shards {
			return nil, fmt.Errorf("sweep: shard %d out of range 0..%d", opts.Shard, opts.Shards-1)
		}
		kept := cells[:0]
		for _, c := range cells {
			if c.Index%opts.Shards == opts.Shard {
				kept = append(kept, c)
			}
		}
		cells = kept
	}

	base := darco.DefaultConfig()
	if opts.Config != nil {
		base = *opts.Config
	}

	// Resolve and scale each distinct effective workload reference once
	// (an ISA knob redirects synthetic references to that frontend's
	// catalog, so one grid reference can resolve differently per cell);
	// a broken reference fails the sweep before any cell simulates.
	progs := map[string]workload.Program{}
	open := func(ref string) (workload.Program, error) {
		if p, ok := progs[ref]; ok {
			return p, nil
		}
		p, err := workload.Open(ref)
		if err != nil {
			return nil, err
		}
		if p, err = workload.ScaleProgram(p, g.Scale); err != nil {
			return nil, err
		}
		progs[ref] = p
		return p, nil
	}

	rows := make([]Row, len(cells))
	jobs := make([]darco.Job, len(cells))
	for i, cell := range cells {
		ref := workload.RefForISA(cell.Workload, g.isaFor(base, cell))
		p, err := open(ref)
		if err != nil {
			return nil, err
		}
		j, err := JobFor(p, ref, g.Scale, base, g.knobsFor(cell)...)
		if err != nil {
			return nil, err
		}
		j.NoPreload = j.NoPreload || g.NoPreload
		key, err := j.Key()
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %w", cell.Index, cell.Workload, err)
		}
		rows[i] = Row{
			Name:     p.Name(),
			Workload: cell.Workload,
			Suite:    p.Meta().Suite,
			Coords:   cell.Coords,
			Key:      key,
		}
		row := &rows[i]
		j.Events = func(ev darco.Event) {
			// Delivered serially by the session (under its event mutex)
			// and strictly before the corresponding Run returns, so the
			// row write is safe and visible when results are read.
			switch ev.Kind {
			case darco.EventCached:
				row.Cached = true
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "cached %-19s %s\n", ev.Job, ev.Mode)
				}
			case darco.EventStarted:
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "run %-22s %s\n", ev.Job, ev.Mode)
				}
			}
		}
		jobs[i] = j
	}

	var firstErr error
	record := func(i int, res *darco.Result, err error) {
		if err != nil {
			rows[i].Error = err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("sweep: cell %d (%s): %w", cells[i].Index, cells[i].Workload, err)
			}
			return
		}
		s := res.Summary()
		rows[i].Summary = &s
		rows[i].Result = res
	}
	if opts.Sequential {
		for i := range jobs {
			start := time.Now()
			res, err := sess.Run(ctx, jobs[i])
			rows[i].Elapsed = time.Since(start)
			record(i, res, err)
		}
	} else {
		for i, br := range sess.RunBatch(ctx, jobs) {
			record(i, br.Result, br.Err)
		}
	}
	return &ResultSet{Grid: g, Rows: rows}, firstErr
}
