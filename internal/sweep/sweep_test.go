package sweep

import (
	"context"
	"testing"

	"repro/internal/darco"
	"repro/internal/store"
)

// runGrid is the cheap two-workload × two-value grid the execution
// tests sweep: StreamBatch is a pure transport knob, so every cell is
// a real, distinct cache key while the simulations stay small.
func runTestGrid() *Grid {
	return &Grid{
		Name:      "exec",
		Workloads: []string{"462.libquantum", "429.mcf"},
		Scale:     0.1,
		Base:      &Knobs{Mode: "shared"},
		Axes: []Axis{{Name: "batch", Values: []Value{
			{Name: "default"},
			{Name: "256", Knobs: Knobs{StreamBatch: 256}},
		}}},
		Baseline: map[string]string{"batch": "default"},
	}
}

// TestRunDeterministicAcrossWorkers pins grid determinism under
// parallelism: the aggregated table (and CSV) of a jobs=4 run is
// byte-identical to a sequential jobs=1 run.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := runTestGrid()
	seq, err := Run(context.Background(), g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), g, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Table().String() != par.Table().String() {
		t.Fatalf("parallel table diverged:\njobs=1:\n%s\njobs=4:\n%s", seq.Table(), par.Table())
	}
	if seq.CSV() != par.CSV() {
		t.Fatal("parallel CSV diverged")
	}
	// The derived columns: the baseline cell's speedup is exactly 1,
	// and >1 workload produces one GEOMEAN row per coordinate tuple.
	tab := seq.Table()
	speedCol := len(tab.Headers) - 1
	if got := tab.Rows[0][speedCol]; got != "1.000" {
		t.Fatalf("baseline speedup = %q, want 1.000", got)
	}
	geo := 0
	for _, row := range tab.Rows {
		if row[0] == "GEOMEAN" {
			geo++
		}
	}
	if geo != 2 {
		t.Fatalf("GEOMEAN rows = %d, want one per coordinate tuple (2)", geo)
	}
}

// TestRunResumesFromStore pins resumability: a sweep interrupted after
// its first completed cell, re-run against the same store, serves that
// cell from the store (EventCached, no simulation) and only simulates
// the missing cells; a third run simulates nothing and reproduces the
// CSV byte-identically.
func TestRunResumesFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := runTestGrid()

	// Leg 1: sequential, cancelled from the first cell's Done event —
	// delivered before Run returns, so exactly one cell completes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs1, err := Run(ctx, g, Options{
		Jobs:       1,
		Sequential: true,
		Session: []darco.SessionOption{
			darco.WithStore(st),
			darco.WithEvents(func(ev darco.Event) {
				if ev.Kind == darco.EventDone {
					cancel()
				}
			}),
		},
	})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if rs1 == nil {
		t.Fatal("cancelled sweep returned no result set")
	}
	var done1 int
	for _, row := range rs1.Rows {
		if row.Summary != nil {
			done1++
		}
	}
	if done1 != 1 {
		t.Fatalf("completed cells before cancel = %d, want 1", done1)
	}

	// Leg 2: fresh session, same store. The completed cell must be
	// served from the store; only the missing cells simulate.
	var started, cached int
	countEvents := darco.WithEvents(func(ev darco.Event) {
		switch ev.Kind {
		case darco.EventStarted:
			started++
		case darco.EventCached:
			cached++
		}
	})
	rs2, err := Run(context.Background(), g, Options{
		Jobs:    1,
		Session: []darco.SessionOption{darco.WithStore(st), countEvents},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(rs2.Rows)
	if cached != done1 || started != total-done1 {
		t.Fatalf("resume ran %d and cached %d of %d cells, want %d simulated / %d cached",
			started, cached, total, total-done1, done1)
	}
	if !rs2.Rows[0].Cached {
		t.Fatalf("first row not marked cached: %+v", rs2.Rows[0])
	}
	for _, row := range rs2.Rows {
		if row.Summary == nil {
			t.Fatalf("row %s/%v missing result after resume: %s", row.Workload, row.Coords, row.Error)
		}
	}

	// Leg 3: everything is stored now — zero simulation, identical CSV.
	started, cached = 0, 0
	rs3, err := Run(context.Background(), g, Options{
		Jobs:    1,
		Session: []darco.SessionOption{darco.WithStore(st), countEvents},
	})
	if err != nil {
		t.Fatal(err)
	}
	if started != 0 || cached != total {
		t.Fatalf("fully-stored sweep simulated %d cells (cached %d/%d)", started, cached, total)
	}
	if rs2.CSV() != rs3.CSV() {
		t.Fatalf("CSV not stable across a fully-cached re-run:\n%s\nvs:\n%s", rs2.CSV(), rs3.CSV())
	}
	for _, row := range rs3.Rows {
		if !row.Cached {
			t.Fatalf("row %s/%v simulated on third run", row.Workload, row.Coords)
		}
	}
}

// TestRunOnShards pins the shard partition: 0/2 and 1/2 are disjoint
// and their union is the full cell set.
func TestRunOnShards(t *testing.T) {
	g := runTestGrid()
	sess := darco.NewSession(darco.WithWorkers(2))
	full, err := RunOn(context.Background(), sess, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for s := 0; s < 2; s++ {
		rs, err := RunOn(context.Background(), sess, g, Options{Shard: s, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rs.Rows {
			seen[row.Key]++
			if !row.Cached {
				t.Fatalf("shard %d re-simulated %s/%v", s, row.Workload, row.Coords)
			}
		}
	}
	if len(seen) != len(full.Rows) {
		t.Fatalf("shards covered %d distinct cells, want %d", len(seen), len(full.Rows))
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s ran in %d shards", key, n)
		}
	}
	if _, err := RunOn(context.Background(), sess, g, Options{Shard: 2, Shards: 2}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
