package timing

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// batchStream synthesizes a mixed stream with branches, loads and both
// owners, long enough to force many refills.
func batchStream(n int) []DynInst {
	insts := make([]DynInst, 0, n)
	pc := uint32(0x100000)
	for i := 0; i < n; i++ {
		d := DynInst{
			PC: pc + uint32(i%512)*4, Owner: Owner(uint32(i/7) % uint32(NumOwners)),
			Dst: uint8(1 + i%8), Src1: RegNone, Src2: RegNone,
		}
		if i%5 == 0 {
			d.IsLoad = true
			d.MemAddr = 0x40000000 + uint32(i%4096)*64
		}
		if i%11 == 0 {
			d.IsBranch, d.IsCond = true, true
			d.Taken = i%22 == 0
			d.Target = pc + uint32((i+17)%512)*4
		}
		insts = append(insts, d)
	}
	return insts
}

// nextOnlySource hides SliceSource's NextBatch so the simulator takes
// the item-wise refill path.
type nextOnlySource struct{ s SliceSource }

func (n *nextOnlySource) Next(d *DynInst) bool { return n.s.Next(d) }

// TestBatchedSourceResultsIdentical pins that the batched transport
// changes nothing observable: the same stream consumed through
// BatchSource, through a plain StreamSource, and under different
// StreamBatch sizes produces deeply identical Results.
func TestBatchedSourceResultsIdentical(t *testing.T) {
	insts := batchStream(50_000)
	run := func(cfg Config, batched bool) *Result {
		sim := NewSimulator(cfg, ModeShared)
		var src StreamSource
		if batched {
			src = &SliceSource{Insts: insts}
		} else {
			src = &nextOnlySource{s: SliceSource{Insts: insts}}
		}
		res, err := sim.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(DefaultConfig(), true)
	if got := run(DefaultConfig(), false); !reflect.DeepEqual(base, got) {
		t.Error("plain StreamSource result differs from BatchSource result")
	}
	for _, batch := range []int{1, 7, 256, 100_000} {
		cfg := DefaultConfig()
		cfg.StreamBatch = batch
		if got := run(cfg, true); !reflect.DeepEqual(base, got) {
			t.Errorf("StreamBatch=%d result differs from default", batch)
		}
	}
}

// cancellingSource delivers one batch and cancels the context from
// inside the delivery, so the simulator's next refill observes the
// cancellation at the exact moment the stream ends.
type cancellingSource struct {
	insts  []DynInst
	cancel func()
	done   bool
}

func (c *cancellingSource) Next(d *DynInst) bool { panic("batched path expected") }

func (c *cancellingSource) NextBatch(buf []DynInst) int {
	if c.done {
		return 0
	}
	c.done = true
	c.cancel()
	return copy(buf, c.insts)
}

// TestRefillCancellationNotSwallowed pins the regression where a
// context cancelled right as the stream drained was reported as a
// successful (truncated) run: the stream-done exit must re-check the
// refill-time cancellation and surface ctx.Err(), never a nil-error
// partial Result. The first batch holds a single TOL-owned
// instruction under ModeAppOnly, so fetch skips it, immediately
// refills with the context now cancelled, and reaches the
// all-drained break in that same cycle — the exact window.
func TestRefillCancellationNotSwallowed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{
		insts:  []DynInst{{PC: 0x100000, Owner: OwnerTOL, Dst: RegNone, Src1: RegNone, Src2: RegNone}},
		cancel: cancel,
	}
	sim := NewSimulator(DefaultConfig(), ModeAppOnly)
	res, err := sim.RunContext(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res=%v), want context.Canceled", err, res)
	}
}

// TestPipelineSteadyStateAllocs asserts the cycle loop allocates
// nothing per instruction: all buffers (IQ ring, batch buffer, caches)
// are preallocated at construction.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	insts := batchStream(20_000)
	const runs = 8
	sims := make([]*Simulator, runs+1)
	srcs := make([]*SliceSource, runs+1)
	for i := range sims {
		sims[i] = NewSimulator(DefaultConfig(), ModeShared)
		srcs[i] = &SliceSource{Insts: insts}
	}
	i := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := sims[i].Run(srcs[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("cycle loop: %.1f allocs per 20k-inst run, want 0", allocs)
	}
}
