package timing

import "fmt"

// plruTree implements tree-based pseudo-LRU replacement for power-of-two
// associativities up to 16 ways. The tree is stored as a bit field: bit
// i is the direction bit of internal node i (0 = left subtree is older).
type plruTree uint16

// victim returns the way the PLRU tree currently designates for
// eviction (following the direction bits), for a tree over `ways` ways.
func (t plruTree) victim(ways int) int {
	node := 0
	idx := 0
	for levelWays := ways; levelWays > 1; levelWays /= 2 {
		bit := (t >> node) & 1
		if bit == 0 {
			// Left subtree is the older one; descend left.
			node = 2*node + 1
		} else {
			idx += levelWays / 2
			node = 2*node + 2
		}
	}
	return idx
}

// touch updates the tree so `way` becomes most-recently used.
func (t *plruTree) touch(way, ways int) {
	node := 0
	lo, hi := 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			// Accessed left: point victim bit at right subtree.
			*t |= 1 << node
			node = 2*node + 1
			hi = mid
		} else {
			*t &^= 1 << node
			node = 2*node + 2
			lo = mid
		}
	}
}

type cacheLine struct {
	tag   uint32
	valid bool
}

// CacheStats counts accesses and misses, split by owner.
type CacheStats struct {
	Accesses [NumOwners]uint64 `json:"accesses"`
	Misses   [NumOwners]uint64 `json:"misses"`
}

// MissRate returns the total miss rate across owners.
func (s *CacheStats) MissRate() float64 {
	a := s.Accesses[OwnerApp] + s.Accesses[OwnerTOL]
	if a == 0 {
		return 0
	}
	return float64(s.Misses[OwnerApp]+s.Misses[OwnerTOL]) / float64(a)
}

// OwnerMissRate returns the miss rate of one owner's accesses.
func (s *CacheStats) OwnerMissRate(o Owner) float64 {
	if s.Accesses[o] == 0 {
		return 0
	}
	return float64(s.Misses[o]) / float64(s.Accesses[o])
}

// Cache is a set-associative cache with tree-PLRU replacement. It
// tracks line presence only (no data), which is all the timing model
// needs.
type Cache struct {
	cfg       CacheConfig
	sets      int
	blockBits uint
	setMask   uint32
	lines     []cacheLine // sets*assoc, way-major within set
	plru      []plruTree
	Stats     CacheStats
}

// NewCache builds a cache from its configuration. Size, block size and
// associativity must be powers of two with at least one set.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Size / (cfg.BlockSize * cfg.Assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("timing: invalid cache geometry %+v (sets=%d)", cfg, sets))
	}
	if cfg.Assoc&(cfg.Assoc-1) != 0 || cfg.Assoc > 16 {
		panic(fmt.Sprintf("timing: unsupported associativity %d", cfg.Assoc))
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockSize {
		blockBits++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		blockBits: blockBits,
		setMask:   uint32(sets - 1),
		lines:     make([]cacheLine, sets*cfg.Assoc),
		plru:      make([]plruTree, sets),
	}
}

// Lookup probes the cache without modifying state and reports a hit.
func (c *Cache) Lookup(addr uint32) bool {
	tag := addr >> c.blockBits
	set := int(tag & c.setMask)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if l := &c.lines[base+w]; l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs an access for the given owner: on a hit the PLRU
// state is refreshed; on a miss the PLRU victim is replaced. It returns
// whether the access hit.
func (c *Cache) Access(addr uint32, owner Owner) bool {
	tag := addr >> c.blockBits
	set := int(tag & c.setMask)
	base := set * c.cfg.Assoc
	c.Stats.Accesses[owner]++
	for w := 0; w < c.cfg.Assoc; w++ {
		if l := &c.lines[base+w]; l.valid && l.tag == tag {
			c.plru[set].touch(w, c.cfg.Assoc)
			return true
		}
	}
	c.Stats.Misses[owner]++
	c.fill(tag, set, base)
	return false
}

// Insert fills a line without counting an access (used by prefetches).
func (c *Cache) Insert(addr uint32) {
	tag := addr >> c.blockBits
	set := int(tag & c.setMask)
	c.fill(tag, set, set*c.cfg.Assoc)
}

func (c *Cache) fill(tag uint32, set, base int) {
	// Prefer an invalid way before evicting.
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.lines[base+w].valid {
			c.lines[base+w] = cacheLine{tag: tag, valid: true}
			c.plru[set].touch(w, c.cfg.Assoc)
			return
		}
	}
	w := c.plru[set].victim(c.cfg.Assoc)
	c.lines[base+w] = cacheLine{tag: tag, valid: true}
	c.plru[set].touch(w, c.cfg.Assoc)
}

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.BlockSize) - 1)
}

// BlockSize returns the configured block size in bytes.
func (c *Cache) BlockSize() int { return c.cfg.BlockSize }

// HitLatency returns the configured hit latency in cycles.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	for i := range c.plru {
		c.plru[i] = 0
	}
	c.Stats = CacheStats{}
}
