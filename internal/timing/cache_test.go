package timing

import (
	"math/rand"
	"testing"
)

func TestPLRUCanonicalSequences(t *testing.T) {
	// Tree-PLRU is an approximation of LRU; these are the canonical
	// textbook sequences for a 4-way tree.
	var tr plruTree
	for w := 0; w < 4; w++ {
		tr.touch(w, 4)
	}
	// In-order fill 0,1,2,3: the victim is the true LRU way 0.
	if v := tr.victim(4); v != 0 {
		t.Fatalf("victim after 0,1,2,3 = %d, want 0", v)
	}
	// Re-touch 0: root points right, right node points away from 3.
	tr.touch(0, 4)
	if v := tr.victim(4); v != 2 {
		t.Fatalf("victim after ...,0 = %d, want 2", v)
	}
	// In-order fill generalizes: for all supported ways the victim
	// after filling 0..ways-1 in order is way 0.
	for _, ways := range []int{2, 4, 8, 16} {
		var tw plruTree
		for w := 0; w < ways; w++ {
			tw.touch(w, ways)
		}
		if v := tw.victim(ways); v != 0 {
			t.Errorf("ways=%d: victim after in-order fill = %d, want 0", ways, v)
		}
	}
}

func TestPLRUVictimNeverMRU(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, ways := range []int{4, 8} {
		var tr plruTree
		for trial := 0; trial < 1000; trial++ {
			w := r.Intn(ways)
			tr.touch(w, ways)
			if v := tr.victim(ways); v == w {
				t.Fatalf("ways=%d: victim is the MRU way %d", ways, w)
			}
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	if c.Access(0x1000, OwnerApp) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000, OwnerApp) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x103c, OwnerApp) {
		t.Fatal("same block should hit")
	}
	if c.Access(0x1040, OwnerApp) {
		t.Fatal("next block should miss")
	}
	if c.Stats.Misses[OwnerApp] != 2 || c.Stats.Accesses[OwnerApp] != 4 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	// 1KB, 64B blocks, 4-way: 4 sets. 5 blocks mapping to set 0 must evict.
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	setStride := uint32(64 * 4) // sets * blocksize
	for i := uint32(0); i < 5; i++ {
		c.Access(i*setStride, OwnerApp)
	}
	// First block must have been evicted (PLRU with in-order fills).
	if c.Access(0, OwnerApp) {
		t.Fatal("block 0 should have been evicted")
	}
}

func TestCacheOwnersCountedSeparately(t *testing.T) {
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	c.Access(0, OwnerApp)
	c.Access(0x40, OwnerTOL)
	if c.Stats.Accesses[OwnerApp] != 1 || c.Stats.Accesses[OwnerTOL] != 1 {
		t.Fatalf("per-owner accesses: %+v", c.Stats)
	}
	if c.Stats.OwnerMissRate(OwnerApp) != 1 || c.Stats.OwnerMissRate(OwnerTOL) != 1 {
		t.Fatal("owner miss rates")
	}
	if c.Stats.MissRate() != 1 {
		t.Fatal("miss rate")
	}
}

func TestCacheInterOwnerPollution(t *testing.T) {
	// The interaction mechanism: TOL filling a set evicts App lines.
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	setStride := uint32(64 * 4)
	c.Access(0, OwnerApp)
	for i := uint32(1); i <= 4; i++ {
		c.Access(i*setStride, OwnerTOL)
	}
	if c.Access(0, OwnerApp) {
		t.Fatal("TOL fills should have evicted the app line")
	}
}

func TestCacheInsertPrefetch(t *testing.T) {
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	c.Insert(0x2000)
	if !c.Access(0x2000, OwnerApp) {
		t.Fatal("inserted block should hit")
	}
	if c.Stats.Accesses[OwnerApp] != 1 || c.Stats.Misses[OwnerApp] != 0 {
		t.Fatalf("insert must not count as access: %+v", c.Stats)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{Size: 1 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1})
	c.Access(0, OwnerApp)
	c.Reset()
	if c.Stats.Accesses[OwnerApp] != 0 {
		t.Fatal("stats not reset")
	}
	if c.Lookup(0) {
		t.Fatal("lines not reset")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic")
		}
	}()
	NewCache(CacheConfig{Size: 1000, BlockSize: 64, Assoc: 3, HitLatency: 1})
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 64, Assoc: 8, HitLatency: 1})
	if tlb.Access(0x1000, OwnerApp) {
		t.Fatal("cold TLB access should miss")
	}
	if !tlb.Access(0x1234, OwnerApp) {
		t.Fatal("same page should hit")
	}
	if tlb.Access(0x2000, OwnerApp) {
		t.Fatal("different page should miss")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, Assoc: 8, HitLatency: 1}) // 1 set
	for p := uint32(0); p < 9; p++ {
		tlb.Access(p*4096, OwnerApp)
	}
	if tlb.Access(0, OwnerApp) {
		t.Fatal("page 0 should have been evicted")
	}
}

func TestPredictorLearnsLoop(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPredictor(&cfg)
	// A loop branch taken 50x then not taken: after warm-up the
	// predictor should predict taken.
	// Gshare folds the 12-bit global history into the index, so the
	// first ~12 iterations train fresh counters while the history
	// register fills with 1s; after that the prediction is stable.
	d := DynInst{PC: 0x4000, IsBranch: true, IsCond: true, Taken: true, Target: 0x3000, Owner: OwnerApp}
	wrongEarly, wrongLate := 0, 0
	for i := 0; i < 50; i++ {
		if !p.PredictAndTrain(&d) {
			if i < 30 {
				wrongEarly++
			} else {
				wrongLate++
			}
		}
	}
	if wrongLate != 0 {
		t.Fatalf("loop branch mispredicted %d times after warm-up", wrongLate)
	}
	if wrongEarly > 20 {
		t.Fatalf("warm-up took %d mispredictions", wrongEarly)
	}
	if p.Stats.Branches[OwnerApp] != 50 {
		t.Fatalf("branches = %d", p.Stats.Branches[OwnerApp])
	}
}

func TestPredictorIndirectTargetChange(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPredictor(&cfg)
	d := DynInst{PC: 0x5000, IsBranch: true, IsIndirect: true, Taken: true, Target: 0x100, Owner: OwnerTOL}
	p.PredictAndTrain(&d) // cold: mispredict
	if p.PredictAndTrain(&d) != true {
		t.Fatal("stable indirect target should predict correctly")
	}
	d.Target = 0x200
	if p.PredictAndTrain(&d) {
		t.Fatal("changed indirect target must mispredict")
	}
}

func TestPredictorUnconditionalDirectLearns(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPredictor(&cfg)
	d := DynInst{PC: 0x6000, IsBranch: true, Taken: true, Target: 0x7000}
	p.PredictAndTrain(&d)
	if !p.PredictAndTrain(&d) {
		t.Fatal("direct jump should hit BTB on second sight")
	}
}

func TestPrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(256)
	pc := uint32(0x1000)
	var got []uint32
	for i := uint32(0); i < 6; i++ {
		if pf := p.Observe(pc, 0x8000+i*64); pf != 0 {
			got = append(got, pf)
		}
	}
	if len(got) == 0 {
		t.Fatal("stride never detected")
	}
	// Prefetches must be one stride ahead.
	for _, a := range got {
		if (a-0x8000)%64 != 0 {
			t.Fatalf("bad prefetch address %#x", a)
		}
	}
	if p.Issued != uint64(len(got)) {
		t.Fatalf("Issued = %d, want %d", p.Issued, len(got))
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewStridePrefetcher(256)
	r := rand.New(rand.NewSource(9))
	pc := uint32(0x2000)
	for i := 0; i < 100; i++ {
		if pf := p.Observe(pc, r.Uint32()); pf != 0 {
			// Random strides can occasionally repeat; just ensure it is rare.
			if p.Issued > 10 {
				t.Fatal("prefetcher fires too often on random addresses")
			}
		}
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	p := NewStridePrefetcher(0)
	for i := uint32(0); i < 10; i++ {
		if pf := p.Observe(0x1000, 0x8000+i*64); pf != 0 {
			t.Fatal("disabled prefetcher issued a prefetch")
		}
	}
}

func TestDefaultConfigMatchesPaperTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IssueWidth != 2 {
		t.Error("issue width must be 2")
	}
	if cfg.IQSize != 16 {
		t.Error("IQ size must be 16")
	}
	if cfg.BPHistoryBits != 12 {
		t.Error("history register must be 12 bits")
	}
	if cfg.L1I.Size != 32<<10 || cfg.L1I.BlockSize != 64 || cfg.L1I.Assoc != 4 || cfg.L1I.HitLatency != 1 {
		t.Error("L1I mismatch with Table I")
	}
	if cfg.L1D.Size != 32<<10 || cfg.L1D.BlockSize != 64 || cfg.L1D.Assoc != 4 || cfg.L1D.HitLatency != 1 {
		t.Error("L1D mismatch with Table I")
	}
	if cfg.L2.Size != 512<<10 || cfg.L2.BlockSize != 128 || cfg.L2.Assoc != 8 || cfg.L2.HitLatency != 16 {
		t.Error("L2 mismatch with Table I")
	}
	if cfg.MemLatency != 128 {
		t.Error("memory latency must be 128")
	}
	if cfg.L1TLB.Entries != 64 || cfg.L1TLB.Assoc != 8 || cfg.L1TLB.HitLatency != 1 {
		t.Error("L1 TLB mismatch with Table I")
	}
	if cfg.L2TLB.Entries != 256 || cfg.L2TLB.Assoc != 8 || cfg.L2TLB.HitLatency != 16 {
		t.Error("L2 TLB mismatch with Table I")
	}
	if cfg.PrefetcherEntries != 256 {
		t.Error("prefetcher entries must be 256")
	}
	if cfg.MispredictPenalty != 6 {
		t.Error("misprediction penalty must be 6")
	}
}
