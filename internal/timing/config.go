// Package timing implements the timing simulator of the co-designed
// processor: a configurable in-order RISC host modeled after the
// paper's Table I — a 2-wide decoupled pipeline (Front-End, Instruction
// Queue, Back-End), Gshare branch predictor with BTB, two cache levels
// with PLRU replacement, a two-level data TLB, and a stride prefetcher.
//
// The simulator consumes a dynamic host-instruction stream in which
// every instruction is tagged with its owner (TOL or the emulated
// application) and, for TOL, the TOL component that produced it. Cycles
// and bubbles are attributed per owner and component, which is the
// mechanism behind all of the paper's figures.
package timing

// CacheConfig describes one cache level.
type CacheConfig struct {
	Size       int // bytes
	BlockSize  int // bytes
	Assoc      int
	HitLatency int // cycles
}

// TLBConfig describes one TLB level.
type TLBConfig struct {
	Entries    int
	Assoc      int
	HitLatency int // cycles
}

// Config holds the microarchitectural parameters (paper Table I).
type Config struct {
	IssueWidth int
	IQSize     int

	// Branch prediction.
	BPHistoryBits     int // Gshare history register length
	BTBEntries        int
	BTBAssoc          int
	MispredictPenalty int // cycles, detected in EXE

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	MemLatency int // main memory hit latency, cycles

	L1TLB TLBConfig
	L2TLB TLBConfig
	// TLBMissLatency is the page-walk cost on an L2 TLB miss. The walk
	// is served from main memory in this model.
	TLBMissLatency int

	PrefetcherEntries int // stride prefetcher table entries (0 disables)

	// StreamBatch is the number of stream instructions the simulator
	// pulls from its source per refill (0 = DefaultStreamBatch). It is
	// a host-side transport knob: results are identical for every value
	// (the stream-equality tests pin this), only simulation throughput
	// changes. It participates in config hashing like every other
	// field, so memoized results never alias across batch sizes.
	StreamBatch int
}

// DefaultStreamBatch is the stream refill size when Config.StreamBatch
// is zero: large enough to amortize the source call, small enough that
// cancellation polls (one per refill) stay prompt.
const DefaultStreamBatch = 1024

// DefaultConfig returns the configuration of Table I of the paper.
func DefaultConfig() Config {
	return Config{
		IssueWidth:        2,
		IQSize:            16,
		BPHistoryBits:     12,
		BTBEntries:        512,
		BTBAssoc:          4,
		MispredictPenalty: 6,
		L1I:               CacheConfig{Size: 32 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1},
		L1D:               CacheConfig{Size: 32 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1},
		L2:                CacheConfig{Size: 512 << 10, BlockSize: 128, Assoc: 8, HitLatency: 16},
		MemLatency:        128,
		L1TLB:             TLBConfig{Entries: 64, Assoc: 8, HitLatency: 1},
		L2TLB:             TLBConfig{Entries: 256, Assoc: 8, HitLatency: 16},
		TLBMissLatency:    128,
		PrefetcherEntries: 256,
	}
}
