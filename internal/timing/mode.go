package timing

import "fmt"

// Mode selects which part of the dynamic stream the simulator models
// and whether TOL and the application share microarchitectural state.
//
// ModeAppOnly/ModeTOLOnly drop the other entity's instructions
// entirely — the paper's Figure 8 methodology ("we study the execution
// of TOL in isolation through ignoring in the timing simulator all the
// instructions that correspond to the emulation of the application").
//
// ModeSplit models both streams with identical pipeline dynamics but
// gives each entity private caches, TLBs, branch predictor and
// prefetcher: the "interaction is not modeled" configuration of the
// Figure 10/11 experiments. Comparing per-entity attributed cycles
// between ModeShared and ModeSplit isolates exactly the resource-
// sharing (pollution) effect.
type Mode uint8

// Simulation modes.
const (
	ModeShared Mode = iota // both streams, shared structures
	ModeAppOnly
	ModeTOLOnly
	ModeSplit // both streams, per-owner private structures
	NumModes
)

var modeNames = [NumModes]string{"shared", "app-only", "tol-only", "split"}

// String returns the canonical spelling of the mode; it round-trips
// through ParseMode for every valid mode.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode?"
}

// ParseMode converts the canonical spelling (as produced by
// Mode.String) back to a Mode. It is the single parser used by all
// command-line tools.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if s == name {
			return Mode(m), nil
		}
	}
	return 0, fmt.Errorf("timing: unknown mode %q (want shared, app-only, tol-only or split)", s)
}
