package timing

import "testing"

func TestParseModeRoundTrip(t *testing.T) {
	for m := Mode(0); m < NumModes; m++ {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Errorf("ParseMode(%q): %v", m.String(), err)
			continue
		}
		if got != m {
			t.Errorf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
}

func TestParseModeRejectsUnknown(t *testing.T) {
	for _, s := range []string{"", "Shared", "mode?", "tolonly", "both"} {
		if m, err := ParseMode(s); err == nil {
			t.Errorf("ParseMode(%q) = %v, want error", s, m)
		}
	}
}
