package timing

import (
	"context"
	"fmt"
)

// iqEntry is one instruction waiting in the instruction queue.
type iqEntry struct {
	inst       DynInst
	mispredict bool
}

type fetchBlock uint8

const (
	fetchFree fetchBlock = iota
	fetchIMiss
	fetchBranchWait // waiting for a mispredicted branch to reach EXE
	fetchRedirect   // mispredict penalty running
)

// Simulator is the timing model. Create one per run with NewSimulator;
// the structures are stateful (caches, predictor, TLB), so a Simulator
// models one continuous execution.
//
// The structure arrays hold one set of caches/predictors in the shared
// and drop modes (both owners index slot 0) and per-owner private sets
// in ModeSplit.
type Simulator struct {
	cfg  Config
	mode Mode

	l1i  [NumOwners]*Cache
	l1d  [NumOwners]*Cache
	l2   [NumOwners]*Cache
	l1t  [NumOwners]*TLB
	l2t  [NumOwners]*TLB
	bp   [NumOwners]*Predictor
	pref [NumOwners]*StridePrefetcher

	// Scoreboard: cycle each register becomes ready, and whether its
	// producer was a load that missed in the L1 data cache.
	regReady [NumSBRegs]uint64
	regDMiss [NumSBRegs]bool

	// Instruction queue as a ring buffer of capacity cfg.IQSize.
	iq      []iqEntry
	iqHead  int
	iqCount int

	cycle uint64

	fetchState      fetchBlock
	fetchReadyAt    uint64 // when fetchIMiss/fetchRedirect clears
	fetchBlockOwner Owner
	fetchBlockComp  Component
	lastFetchLine   [NumOwners]uint32
	haveFetchLine   [NumOwners]bool
	// pending points at the next instruction (already pulled, awaiting
	// I$) inside the batch buffer; nil when none. The batch is only
	// refilled after the pointee is consumed into the IQ, so the
	// reference stays valid without copying the instruction out.
	// pendingBuf is the restore-time home of a snapshotted pending
	// instruction, which no longer has a live batch slot to point into.
	pending    *DynInst
	pendingBuf DynInst
	streamDone bool

	// Stream batching: instructions are pulled from the source in
	// slices of cfg.StreamBatch (see BatchSource) into batch, and fetch
	// consumes them one by one without further interface calls. runCtx
	// is polled once per refill; a cancellation observed there is
	// published through ctxErr and surfaced by the cycle loop.
	batch    []DynInst
	batchPos int
	batchLen int
	src      StreamSource
	bsrc     BatchSource
	runCtx   context.Context
	ctxErr   error

	// nextProgress is the cycle of the next Progress report (avoids a
	// modulo in the cycle loop).
	nextProgress uint64

	// stalledBranch counts IQ entries (from the head) up to and
	// including the mispredicted branch fetch is waiting on; -1 if none.
	stalledBranch int

	res Result

	// MaxCycles aborts a runaway simulation (0 means no limit).
	MaxCycles uint64

	// Progress, when non-nil, is invoked from inside the cycle loop
	// every ProgressEvery cycles with the cycle count and the number of
	// retired host instructions so far. It must not mutate the
	// simulator; it exists purely for observability (and is the hook
	// darco uses to stream per-job progress events).
	Progress func(cycles, insts uint64)

	// ProgressEvery is the Progress callback period in cycles
	// (0 = defaultProgressEvery).
	ProgressEvery uint64

	// StopWhen, when non-nil, is evaluated at the top of every cycle;
	// returning true pauses the simulation at that cycle boundary and
	// RunContext returns ErrPaused with all in-flight state intact. The
	// caller may then Snapshot the simulator and/or resume it by calling
	// RunContext again (replacing or clearing StopWhen first, or the
	// pause re-fires immediately). The predicate typically inspects the
	// stream source (e.g. the engine's retired-instruction count), which
	// advances only at batch refills, so pauses land deterministically
	// for a given stream and configuration.
	StopWhen func() bool
}

// defaultProgressEvery is the Progress period when unset: frequent
// enough for interactive feedback, rare enough to be free.
const defaultProgressEvery = 1 << 22

// ctxCheckMask throttles context-cancellation polls inside the cycle
// loop: the context is consulted every ctxCheckMask+1 cycles, so a
// cancelled RunContext returns within a few thousand simulated cycles
// (microseconds of host time) instead of waiting for MaxCycles. The
// primary poll site is the per-batch refill (see nextInst); this
// cycle-count poll bounds the abort latency of long stream-free
// stretches (pipeline drain, bubble runs) as well.
const ctxCheckMask = 1<<13 - 1

// NewSimulator builds a simulator for the given configuration and mode.
func NewSimulator(cfg Config, mode Mode) *Simulator {
	batch := cfg.StreamBatch
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	s := &Simulator{
		cfg:           cfg,
		mode:          mode,
		iq:            make([]iqEntry, cfg.IQSize),
		stalledBranch: -1,
		batch:         make([]DynInst, batch),
	}
	sets := 1
	if mode == ModeSplit {
		sets = int(NumOwners)
	}
	for i := 0; i < sets; i++ {
		s.l1i[i] = NewCache(cfg.L1I)
		s.l1d[i] = NewCache(cfg.L1D)
		s.l2[i] = NewCache(cfg.L2)
		s.l1t[i] = NewTLB(cfg.L1TLB)
		s.l2t[i] = NewTLB(cfg.L2TLB)
		s.bp[i] = NewPredictor(&cfg)
		s.pref[i] = NewStridePrefetcher(cfg.PrefetcherEntries)
	}
	return s
}

// setIdx returns the structure-set index for an owner.
func (s *Simulator) setIdx(o Owner) int {
	if s.mode == ModeSplit {
		return int(o)
	}
	return 0
}

// skip reports whether the mode drops instructions of this owner.
func (s *Simulator) skip(o Owner) bool {
	switch s.mode {
	case ModeAppOnly:
		return o == OwnerTOL
	case ModeTOLOnly:
		return o == OwnerApp
	}
	return false
}

func (s *Simulator) iqAt(i int) *iqEntry {
	idx := s.iqHead + i
	if idx >= len(s.iq) {
		idx -= len(s.iq)
	}
	return &s.iq[idx]
}

// iqPush appends *d to the queue tail and returns the stored entry so
// fetch can predict/flag it in place — one copy from the batch buffer
// into the ring, no intermediates.
func (s *Simulator) iqPush(d *DynInst) *iqEntry {
	idx := s.iqHead + s.iqCount
	if idx >= len(s.iq) {
		idx -= len(s.iq)
	}
	e := &s.iq[idx]
	e.inst = *d
	e.mispredict = false
	s.iqCount++
	return e
}

func (s *Simulator) iqPop() {
	s.iqHead++
	if s.iqHead == len(s.iq) {
		s.iqHead = 0
	}
	s.iqCount--
	if s.stalledBranch > 0 {
		s.stalledBranch--
	}
}

// instAccess models the instruction fetch path for a PC, returning the
// stall in cycles beyond the pipelined hit latency (0 on L1I hit).
// Accesses are counted per cache line, not per instruction.
func (s *Simulator) instAccess(pc uint32, owner Owner) int {
	i := s.setIdx(owner)
	line := s.l1i[i].BlockAddr(pc)
	if s.haveFetchLine[i] && line == s.lastFetchLine[i] {
		return 0
	}
	s.lastFetchLine[i], s.haveFetchLine[i] = line, true
	if s.l1i[i].Access(line, owner) {
		return 0
	}
	if s.l2[i].Access(line, owner) {
		return s.cfg.L2.HitLatency
	}
	return s.cfg.L2.HitLatency + s.cfg.MemLatency
}

// dataAccess models the data path: TLB then cache hierarchy, plus the
// stride prefetcher. It returns the access latency (excluding the
// 1-cycle EXE address calculation) and whether the access missed in
// the L1 data cache.
func (s *Simulator) dataAccess(pc, addr uint32, owner Owner) (lat int, l1Miss bool) {
	i := s.setIdx(owner)
	// An L1 TLB hit is overlapped with the L1D access (VIPT-style); the
	// extra cost appears only on L1 TLB misses.
	if !s.l1t[i].Access(addr, owner) {
		if s.l2t[i].Access(addr, owner) {
			lat += s.cfg.L2TLB.HitLatency
		} else {
			lat += s.cfg.L2TLB.HitLatency + s.cfg.TLBMissLatency
		}
	}
	if s.l1d[i].Access(addr, owner) {
		lat += s.cfg.L1D.HitLatency
	} else {
		l1Miss = true
		if s.l2[i].Access(addr, owner) {
			lat += s.cfg.L2.HitLatency
		} else {
			lat += s.cfg.L2.HitLatency + s.cfg.MemLatency
		}
	}
	if pf := s.pref[i].Observe(pc, addr); pf != 0 {
		if !s.l1d[i].Lookup(pf) {
			s.l1d[i].Insert(pf)
			s.l2[i].Insert(pf)
		}
	}
	return lat, l1Miss
}

// Run consumes the stream to completion and returns the results.
func (s *Simulator) Run(src StreamSource) (*Result, error) {
	return s.RunContext(context.Background(), src)
}

// RunContext consumes the stream to completion and returns the
// results. Cancellation is polled at every stream-batch refill and,
// as a fallback, every few thousand cycles inside the cycle loop, so
// cancelling ctx aborts a simulation promptly with ctx.Err()
// regardless of MaxCycles.
func (s *Simulator) RunContext(ctx context.Context, src StreamSource) (*Result, error) {
	progressEvery := s.ProgressEvery
	if progressEvery == 0 {
		progressEvery = defaultProgressEvery
	}
	// Next period boundary strictly above the current cycle, so resumed
	// simulators (restored snapshots, ErrPaused continuations) keep
	// reporting instead of waiting for a boundary already behind them.
	s.nextProgress = (s.cycle/progressEvery + 1) * progressEvery
	s.runCtx = ctx
	s.src = src
	s.bsrc, _ = src.(BatchSource)
	defer func() { s.runCtx, s.src, s.bsrc = nil, nil, nil }()
	for {
		if s.ctxErr != nil {
			return nil, s.ctxErr
		}
		if s.cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if s.Progress != nil && s.cycle == s.nextProgress {
			s.Progress(s.cycle, s.res.TotalInsts())
			s.nextProgress += progressEvery
		}
		if s.MaxCycles != 0 && s.cycle > s.MaxCycles {
			return nil, fmt.Errorf("timing: exceeded MaxCycles=%d at %d retired insts",
				s.MaxCycles, s.res.TotalInsts())
		}
		if s.StopWhen != nil && s.StopWhen() {
			return nil, ErrPaused
		}
		s.fetch()
		issued := s.issue()
		if issued == 0 {
			if s.streamDone && s.pending == nil && s.iqCount == 0 {
				// A refill-time cancellation also ends the stream; it
				// must surface as the error, not as a truncated Result.
				if s.ctxErr != nil {
					return nil, s.ctxErr
				}
				break
			}
			s.accountBubble()
		}
		s.cycle++
	}
	s.finishResult()
	return &s.res, nil
}

// refill pulls the next batch from the source. Sources implementing
// BatchSource fill the buffer in one call; plain StreamSources are
// drained item-wise into the same buffer so the cycle loop sees a
// single shape either way.
func (s *Simulator) refill() bool {
	if err := s.runCtx.Err(); err != nil {
		s.ctxErr = err
		return false
	}
	var n int
	if s.bsrc != nil {
		n = s.bsrc.NextBatch(s.batch)
	} else {
		for n < len(s.batch) && s.src.Next(&s.batch[n]) {
			n++
		}
	}
	s.batchPos, s.batchLen = 0, n
	return n > 0
}

// fetch advances the front end for one cycle.
func (s *Simulator) fetch() {
	switch s.fetchState {
	case fetchIMiss, fetchRedirect:
		if s.cycle < s.fetchReadyAt {
			return
		}
		s.fetchState = fetchFree
	case fetchBranchWait:
		return // released by issue() when the branch reaches EXE
	}

	for fetched := 0; fetched < s.cfg.IssueWidth && s.iqCount < s.cfg.IQSize; fetched++ {
		if s.pending == nil {
			// Pull the next non-skipped instruction straight from the
			// batch buffer; refill (one source call per cfg.StreamBatch
			// instructions, with a context poll) only when it drains.
			for {
				if s.batchPos >= s.batchLen {
					if !s.refill() {
						s.streamDone = true
						return
					}
				}
				p := &s.batch[s.batchPos]
				s.batchPos++
				if !s.skip(p.Owner) {
					s.pending = p
					break
				}
			}
		}
		// Instruction cache.
		if stall := s.instAccess(s.pending.PC, s.pending.Owner); stall > 0 {
			s.fetchState = fetchIMiss
			s.fetchReadyAt = s.cycle + uint64(stall)
			s.fetchBlockOwner = s.pending.Owner
			s.fetchBlockComp = s.pending.Comp
			return
		}
		entry := s.iqPush(s.pending)
		s.pending = nil
		if entry.inst.IsBranch && !s.bp[s.setIdx(entry.inst.Owner)].PredictAndTrain(&entry.inst) {
			entry.mispredict = true
			// Fetch stops until this branch resolves in EXE.
			s.fetchState = fetchBranchWait
			s.stalledBranch = s.iqCount - 1
			s.fetchBlockOwner = entry.inst.Owner
			s.fetchBlockComp = entry.inst.Comp
			return
		}
	}
}

// issue tries to issue up to IssueWidth instructions in order from the
// IQ head, returning how many issued.
func (s *Simulator) issue() int {
	issued := 0
	var issuedOwners [8]Owner
	var issuedComps [8]Component
	for issued < s.cfg.IssueWidth && s.iqCount > 0 {
		e := s.iqAt(0)
		d := &e.inst
		if !s.ready(d) {
			break
		}
		switch {
		case d.IsLoad:
			lat, l1miss := s.dataAccess(d.PC, d.MemAddr, d.Owner)
			done := s.cycle + 1 + uint64(lat)
			if d.Dst != RegNone {
				s.regReady[d.Dst] = done
				s.regDMiss[d.Dst] = l1miss
			}
		case d.IsStore:
			// Stores retire through the store buffer; the cache state
			// updates now, but nothing waits on them.
			s.dataAccess(d.PC, d.MemAddr, d.Owner)
		default:
			if d.Dst != RegNone {
				s.regReady[d.Dst] = s.cycle + uint64(d.Class.Latency())
				s.regDMiss[d.Dst] = false
			}
		}
		if e.mispredict && s.fetchState == fetchBranchWait && s.stalledBranch == 0 {
			// Misprediction detected in EXE: redirect after the penalty.
			s.fetchState = fetchRedirect
			s.fetchReadyAt = s.cycle + 1 + uint64(s.cfg.MispredictPenalty)
			s.stalledBranch = -1
		}
		issuedOwners[issued] = d.Owner
		issuedComps[issued] = d.Comp
		s.res.Insts[d.Owner]++
		s.res.InstsByComp[d.Comp]++
		s.iqPop()
		issued++
	}
	if issued > 0 {
		share := 1.0 / float64(issued)
		for i := 0; i < issued; i++ {
			s.res.InstCycles[issuedOwners[i]] += share
			s.res.InstCyclesByComp[issuedComps[i]] += share
		}
	}
	return issued
}

// ready reports whether the instruction's sources are available.
func (s *Simulator) ready(d *DynInst) bool {
	if d.Src1 != RegNone && s.regReady[d.Src1] > s.cycle {
		return false
	}
	if d.Src2 != RegNone && s.regReady[d.Src2] > s.cycle {
		return false
	}
	return true
}

// blockingDMiss reports whether the head instruction is blocked on a
// register produced by a load that missed in the L1 data cache.
func (s *Simulator) blockingDMiss(d *DynInst) bool {
	if d.Src1 != RegNone && s.regReady[d.Src1] > s.cycle && s.regDMiss[d.Src1] {
		return true
	}
	if d.Src2 != RegNone && s.regReady[d.Src2] > s.cycle && s.regDMiss[d.Src2] {
		return true
	}
	return false
}

// accountBubble classifies a zero-issue cycle into the paper's bubble
// sources: data-cache miss, instruction-cache miss, branch, scheduling.
func (s *Simulator) accountBubble() {
	if s.iqCount > 0 {
		d := &s.iqAt(0).inst
		if s.blockingDMiss(d) {
			s.res.Bubbles[d.Owner][BubbleDMiss]++
		} else {
			s.res.Bubbles[d.Owner][BubbleSched]++
		}
		s.res.BubblesByComp[d.Comp]++
		return
	}
	switch s.fetchState {
	case fetchIMiss:
		s.res.Bubbles[s.fetchBlockOwner][BubbleIMiss]++
		s.res.BubblesByComp[s.fetchBlockComp]++
	case fetchBranchWait, fetchRedirect:
		s.res.Bubbles[s.fetchBlockOwner][BubbleBranch]++
		s.res.BubblesByComp[s.fetchBlockComp]++
	default:
		// Pipeline warm-up or drain with no identified blocker.
		s.res.UnattributedCycles++
	}
}

// ResultSoFar returns a copy of the accumulated Result as of the
// current cycle boundary with the live structure statistics folded in,
// without disturbing the in-progress accumulation. It is the
// measurement primitive of sampled simulation: the warm-up mark is a
// ResultSoFar, and the measured interval is the element-wise
// difference (Result.Sub) between the final result and that mark.
func (s *Simulator) ResultSoFar() Result {
	res := s.res
	res.Cycles = s.cycle
	for i := 0; i < int(NumOwners); i++ {
		if s.l1i[i] == nil {
			continue
		}
		addCache(&res.L1I, &s.l1i[i].Stats)
		addCache(&res.L1D, &s.l1d[i].Stats)
		addCache(&res.L2, &s.l2[i].Stats)
		addCache(&res.L1TLB, &s.l1t[i].Stats)
		addCache(&res.L2TLB, &s.l2t[i].Stats)
		for o := Owner(0); o < NumOwners; o++ {
			res.Branch.Branches[o] += s.bp[i].Stats.Branches[o]
			res.Branch.Mispredicts[o] += s.bp[i].Stats.Mispredicts[o]
		}
		res.PrefetchesIssued += s.pref[i].Issued
	}
	return res
}

func (s *Simulator) finishResult() {
	s.res = s.ResultSoFar()
}

func addCache(dst, src *CacheStats) {
	for o := Owner(0); o < NumOwners; o++ {
		dst.Accesses[o] += src.Accesses[o]
		dst.Misses[o] += src.Misses[o]
	}
}
