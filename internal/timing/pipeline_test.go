package timing

import (
	"testing"

	"repro/internal/host"
)

// mkALU builds a simple-int ALU DynInst.
func mkALU(pc uint32, dst, src1, src2 uint8, owner Owner) DynInst {
	return DynInst{
		PC: pc, Class: host.ClassSimpleInt, Owner: owner,
		Dst: dst, Src1: src1, Src2: src2,
	}
}

func mkLoad(pc, addr uint32, dst uint8, owner Owner) DynInst {
	return DynInst{
		PC: pc, Class: host.ClassMem, Owner: owner,
		Dst: dst, Src1: RegNone, Src2: RegNone,
		IsLoad: true, MemAddr: addr,
	}
}

func runTrace(t *testing.T, insts []DynInst, mode Mode) *Result {
	t.Helper()
	sim := NewSimulator(DefaultConfig(), mode)
	sim.MaxCycles = 10_000_000
	res, err := sim.Run(&SliceSource{Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func seqPCs(n int, start uint32, mk func(i int, pc uint32) DynInst) []DynInst {
	out := make([]DynInst, n)
	pc := start
	for i := range out {
		out[i] = mk(i, pc)
		pc += host.InstBytes
	}
	return out
}

// loopTrace repeats a small straight-line body (loops over the same
// PCs) so the instruction cache warms up, like steady-state code does.
func loopTrace(bodyLen, iters int, mk func(i int, pc uint32) DynInst) []DynInst {
	var out []DynInst
	for it := 0; it < iters; it++ {
		pc := uint32(0x100000)
		for i := 0; i < bodyLen; i++ {
			out = append(out, mk(i, pc))
			pc += host.InstBytes
		}
	}
	return out
}

func TestIndependentALUDualIssues(t *testing.T) {
	// Independent ALU ops in a warm loop: IPC should approach 2.
	insts := loopTrace(64, 500, func(i int, pc uint32) DynInst {
		return mkALU(pc, uint8(1+i%8), RegNone, RegNone, OwnerApp)
	})
	res := runTrace(t, insts, ModeShared)
	if ipc := res.IPC(); ipc < 1.8 {
		t.Fatalf("independent ALU IPC = %.2f, want ~2", ipc)
	}
	if res.TotalInsts() != 64*500 {
		t.Fatalf("retired = %d", res.TotalInsts())
	}
}

func TestDependentChainSingleIssues(t *testing.T) {
	// Each instruction depends on the previous: IPC should be ~1
	// (1-cycle simple-int latency allows back-to-back but not dual).
	insts := loopTrace(64, 50, func(i int, pc uint32) DynInst {
		return mkALU(pc, 1, 1, RegNone, OwnerApp)
	})
	res := runTrace(t, insts, ModeShared)
	if ipc := res.IPC(); ipc > 1.2 || ipc < 0.8 {
		t.Fatalf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func TestComplexLatencyCreatesSchedulingBubbles(t *testing.T) {
	// Dependent FP-complex chain (5-cycle latency): expect scheduling
	// bubbles to dominate.
	insts := seqPCs(500, 0x100000, func(i int, pc uint32) DynInst {
		d := mkALU(pc, fpRegBase+1, fpRegBase+1, RegNone, OwnerApp)
		d.Class = host.ClassComplexFP
		return d
	})
	res := runTrace(t, insts, ModeShared)
	if res.Bubbles[OwnerApp][BubbleSched] < float64(res.Cycles)/2 {
		t.Fatalf("sched bubbles = %.0f of %d cycles", res.Bubbles[OwnerApp][BubbleSched], res.Cycles)
	}
}

func TestCacheMissCreatesDataBubbles(t *testing.T) {
	// Loads striding far apart with dependent consumers: D$ miss
	// bubbles must appear. Random-ish large strides defeat the
	// prefetcher (stride varies by construction below).
	var insts []DynInst
	pc := uint32(0x100000)
	addr := uint32(0x40000000)
	for i := 0; i < 300; i++ {
		insts = append(insts, mkLoad(pc, addr, 1, OwnerApp))
		pc += host.InstBytes
		insts = append(insts, mkALU(pc, 2, 1, RegNone, OwnerApp))
		pc += host.InstBytes
		addr += 64*uint32(1+i%7) + 4096*uint32(i%3)
	}
	res := runTrace(t, insts, ModeShared)
	if res.Bubbles[OwnerApp][BubbleDMiss] == 0 {
		t.Fatal("expected D$ miss bubbles")
	}
	if res.L1D.Misses[OwnerApp] == 0 {
		t.Fatal("expected L1D misses")
	}
}

func TestPrefetcherHidesConstantStride(t *testing.T) {
	// Same PC looping over a constant 64B stride: after warm-up the
	// prefetcher should hide most misses. Compare against a
	// prefetcher-less config.
	mk := func() []DynInst {
		var insts []DynInst
		addr := uint32(0x40000000)
		for i := 0; i < 2000; i++ {
			insts = append(insts, mkLoad(0x100000, addr, 1, OwnerApp))
			insts = append(insts, mkALU(0x100004, 2, 1, RegNone, OwnerApp))
			addr += 64
		}
		return insts
	}
	cfgNoPf := DefaultConfig()
	cfgNoPf.PrefetcherEntries = 0
	simNo := NewSimulator(cfgNoPf, ModeShared)
	resNo, err := simNo.Run(&SliceSource{Insts: mk()})
	if err != nil {
		t.Fatal(err)
	}
	simPf := NewSimulator(DefaultConfig(), ModeShared)
	resPf, err := simPf.Run(&SliceSource{Insts: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if resPf.PrefetchesIssued == 0 {
		t.Fatal("prefetcher never fired")
	}
	if resPf.Cycles >= resNo.Cycles {
		t.Fatalf("prefetcher did not help: %d vs %d cycles", resPf.Cycles, resNo.Cycles)
	}
}

func TestMispredictBranchBubbles(t *testing.T) {
	// One indirect branch at a fixed PC alternating between two
	// targets: the BTB always holds the previous target, so every
	// execution mispredicts — the worst case of an unhandled guest
	// indirect branch.
	var insts []DynInst
	branchPC := uint32(0x100000)
	targets := [2]uint32{0x200000, 0x200100}
	for i := 0; i < 200; i++ {
		target := targets[i%2]
		insts = append(insts, DynInst{
			PC: branchPC, Class: host.ClassSimpleInt, Owner: OwnerApp,
			Dst: RegNone, Src1: RegNone, Src2: RegNone,
			IsBranch: true, IsIndirect: true, Taken: true, Target: target,
		})
		insts = append(insts, mkALU(target, 1, RegNone, RegNone, OwnerApp))
		insts = append(insts, DynInst{
			PC: target + 4, Class: host.ClassSimpleInt, Owner: OwnerApp,
			Dst: RegNone, Src1: RegNone, Src2: RegNone,
			IsBranch: true, Taken: true, Target: branchPC,
		})
	}
	res := runTrace(t, insts, ModeShared)
	if res.Branch.Mispredicts[OwnerApp] < 190 {
		t.Fatalf("mispredicts = %d, want nearly all 200", res.Branch.Mispredicts[OwnerApp])
	}
	if res.Bubbles[OwnerApp][BubbleBranch] == 0 {
		t.Fatal("expected branch bubbles")
	}
	// Each mispredict costs >= penalty cycles of bubbles.
	if res.Bubbles[OwnerApp][BubbleBranch] < float64(res.Branch.Mispredicts[OwnerApp]*4) {
		t.Fatalf("branch bubbles %.0f too low for %d mispredicts",
			res.Bubbles[OwnerApp][BubbleBranch], res.Branch.Mispredicts[OwnerApp])
	}
}

func TestIMissBubblesOnCodeSweep(t *testing.T) {
	// Walk 4MB of code linearly — far exceeds L1I+L2, so I$ bubbles
	// must appear.
	insts := seqPCs(60000, 0x400000, func(i int, pc uint32) DynInst {
		return mkALU(pc+uint32(i/15)*4096, 1, RegNone, RegNone, OwnerApp)
	})
	res := runTrace(t, insts, ModeShared)
	if res.Bubbles[OwnerApp][BubbleIMiss] == 0 {
		t.Fatal("expected I$ bubbles")
	}
	if res.L1I.Misses[OwnerApp] == 0 {
		t.Fatal("expected L1I misses")
	}
}

func TestModeFiltersOwners(t *testing.T) {
	mixed := seqPCs(1000, 0x100000, func(i int, pc uint32) DynInst {
		o := OwnerApp
		if i%2 == 1 {
			o = OwnerTOL
		}
		d := mkALU(pc, uint8(1+i%8), RegNone, RegNone, o)
		if o == OwnerTOL {
			d.Comp = CompIM
		}
		return d
	})
	appOnly := runTrace(t, append([]DynInst(nil), mixed...), ModeAppOnly)
	if appOnly.Insts[OwnerTOL] != 0 || appOnly.Insts[OwnerApp] != 500 {
		t.Fatalf("app-only: %+v", appOnly.Insts)
	}
	tolOnly := runTrace(t, append([]DynInst(nil), mixed...), ModeTOLOnly)
	if tolOnly.Insts[OwnerApp] != 0 || tolOnly.Insts[OwnerTOL] != 500 {
		t.Fatalf("tol-only: %+v", tolOnly.Insts)
	}
	shared := runTrace(t, mixed, ModeShared)
	if shared.TotalInsts() != 1000 {
		t.Fatalf("shared: %d", shared.TotalInsts())
	}
}

func TestInteractionPenaltyExists(t *testing.T) {
	// Two owners ping-ponging over disjoint data that conflicts in the
	// cache: the shared run must take more cycles for the app than the
	// isolated run.
	mk := func() []DynInst {
		var insts []DynInst
		pcA, pcT := uint32(0x100000), uint32(0x110000)
		// Both walk 64KB working sets (fits L1 alone, thrashes together
		// in the same sets by using the same set-index bits).
		for i := 0; i < 4000; i++ {
			off := uint32(i%512) * 64
			insts = append(insts, mkLoad(pcA, 0x40000000+off, 1, OwnerApp))
			insts = append(insts, mkALU(pcA+4, 2, 1, RegNone, OwnerApp))
			d1 := mkLoad(pcT, 0x02100000+off, 3, OwnerTOL)
			d1.Comp = CompCodeCacheLookup
			d2 := mkALU(pcT+4, 4, 3, RegNone, OwnerTOL)
			d2.Comp = CompCodeCacheLookup
			insts = append(insts, d1, d2)
		}
		return insts
	}
	shared := runTrace(t, mk(), ModeShared)
	isolated := runTrace(t, mk(), ModeAppOnly)
	sharedApp := shared.OwnerCycles(OwnerApp)
	isoApp := float64(isolated.Cycles)
	if isoApp >= sharedApp*1.001 {
		t.Fatalf("isolation should not be slower: iso=%.0f shared-app=%.0f", isoApp, sharedApp)
	}
}

func TestCycleAttributionCoversAll(t *testing.T) {
	insts := seqPCs(2000, 0x100000, func(i int, pc uint32) DynInst {
		d := mkALU(pc, uint8(1+i%4), uint8(1+(i+1)%4), RegNone, OwnerApp)
		if i%3 == 0 {
			d = mkLoad(pc, 0x40000000+uint32(i)*68, uint8(1+i%4), OwnerApp)
		}
		return d
	})
	res := runTrace(t, insts, ModeShared)
	sum := res.UnattributedCycles
	for o := Owner(0); o < NumOwners; o++ {
		sum += res.OwnerCycles(o)
	}
	if diff := sum - float64(res.Cycles); diff > 1 || diff < -1 {
		t.Fatalf("attribution sums to %.1f, cycles = %d", sum, res.Cycles)
	}
}

func TestComponentAttribution(t *testing.T) {
	var insts []DynInst
	pc := uint32(0x100000)
	for i := 0; i < 100; i++ {
		d := mkALU(pc, 1, RegNone, RegNone, OwnerTOL)
		d.Comp = CompSBM
		insts = append(insts, d)
		pc += 4
	}
	res := runTrace(t, insts, ModeShared)
	if res.InstsByComp[CompSBM] != 100 {
		t.Fatalf("SBM insts = %d", res.InstsByComp[CompSBM])
	}
	if res.ComponentCycles(CompSBM) == 0 {
		t.Fatal("no cycles attributed to SBM")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	sim := NewSimulator(DefaultConfig(), ModeShared)
	sim.MaxCycles = 10
	// A trace long enough to exceed 10 cycles.
	insts := seqPCs(1000, 0x100000, func(i int, pc uint32) DynInst {
		return mkALU(pc, 1, 1, RegNone, OwnerApp)
	})
	if _, err := sim.Run(&SliceSource{Insts: insts}); err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

func TestEmptyStream(t *testing.T) {
	res := runTrace(t, nil, ModeShared)
	if res.Cycles != 0 || res.TotalInsts() != 0 {
		t.Fatalf("empty stream: %d cycles %d insts", res.Cycles, res.TotalInsts())
	}
}

func TestTLBMissesCosted(t *testing.T) {
	// Touch 1000 distinct pages: far beyond the 256-entry L2 TLB.
	var insts []DynInst
	pc := uint32(0x100000)
	for i := 0; i < 1000; i++ {
		insts = append(insts, mkLoad(pc, 0x40000000+uint32(i)*4096, 1, OwnerApp))
		insts = append(insts, mkALU(pc+4, 2, 1, RegNone, OwnerApp))
	}
	res := runTrace(t, insts, ModeShared)
	if res.L1TLB.Misses[OwnerApp] == 0 || res.L2TLB.Misses[OwnerApp] == 0 {
		t.Fatalf("TLB misses: l1=%d l2=%d", res.L1TLB.Misses[OwnerApp], res.L2TLB.Misses[OwnerApp])
	}
}
