package timing

// Gshare branch predictor plus branch target buffer, per Table I
// (history register of 12 bits). Branch history is shared between TOL
// and the application, which is exactly the cross-pollution mechanism
// the paper's interaction study measures.

// BranchStats counts branch predictions and mispredictions per owner.
type BranchStats struct {
	Branches    [NumOwners]uint64 `json:"branches"`
	Mispredicts [NumOwners]uint64 `json:"mispredicts"`
}

// MispredictRate returns the overall misprediction rate.
func (s *BranchStats) MispredictRate() float64 {
	b := s.Branches[OwnerApp] + s.Branches[OwnerTOL]
	if b == 0 {
		return 0
	}
	return float64(s.Mispredicts[OwnerApp]+s.Mispredicts[OwnerTOL]) / float64(b)
}

// OwnerMispredictRate returns the misprediction rate of one owner.
func (s *BranchStats) OwnerMispredictRate(o Owner) float64 {
	if s.Branches[o] == 0 {
		return 0
	}
	return float64(s.Mispredicts[o]) / float64(s.Branches[o])
}

// Predictor combines a Gshare direction predictor with a set-associative
// BTB for targets.
type Predictor struct {
	historyBits uint
	historyMask uint32
	history     uint32
	counters    []uint8 // 2-bit saturating counters

	btbSets    int
	btbAssoc   int
	btbSetMask uint32
	btbTags    []cacheLine
	btbTargets []uint32
	btbPLRU    []plruTree

	Stats BranchStats
}

// NewPredictor builds the predictor from the configuration.
func NewPredictor(cfg *Config) *Predictor {
	bits := uint(cfg.BPHistoryBits)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("timing: invalid BTB geometry")
	}
	return &Predictor{
		historyBits: bits,
		historyMask: 1<<bits - 1,
		counters:    make([]uint8, 1<<bits),
		btbSets:     sets,
		btbAssoc:    cfg.BTBAssoc,
		btbSetMask:  uint32(sets - 1),
		btbTags:     make([]cacheLine, cfg.BTBEntries),
		btbTargets:  make([]uint32, cfg.BTBEntries),
		btbPLRU:     make([]plruTree, sets),
	}
}

func (p *Predictor) gshareIndex(pc uint32) uint32 {
	return ((pc >> 2) ^ p.history) & p.historyMask
}

// PredictDirection returns the predicted taken/not-taken for a
// conditional branch at pc.
func (p *Predictor) PredictDirection(pc uint32) bool {
	return p.counters[p.gshareIndex(pc)] >= 2
}

// PredictTarget returns the BTB target for pc and whether the BTB hit.
func (p *Predictor) PredictTarget(pc uint32) (uint32, bool) {
	key := pc >> 2
	set := int(key & p.btbSetMask)
	base := set * p.btbAssoc
	for w := 0; w < p.btbAssoc; w++ {
		if l := &p.btbTags[base+w]; l.valid && l.tag == key {
			p.btbPLRU[set].touch(w, p.btbAssoc)
			return p.btbTargets[base+w], true
		}
	}
	return 0, false
}

// Update trains the predictor with the actual outcome of a branch.
// isCond selects whether the Gshare direction state is involved;
// unconditional and indirect branches train only the BTB.
func (p *Predictor) Update(pc uint32, isCond, taken bool, target uint32) {
	if isCond {
		idx := p.gshareIndex(pc)
		c := p.counters[idx]
		if taken {
			if c < 3 {
				p.counters[idx] = c + 1
			}
		} else if c > 0 {
			p.counters[idx] = c - 1
		}
		p.history = ((p.history << 1) | b2u32(taken)) & p.historyMask
	}
	if taken {
		p.btbInsert(pc, target)
	}
}

func (p *Predictor) btbInsert(pc, target uint32) {
	key := pc >> 2
	set := int(key & p.btbSetMask)
	base := set * p.btbAssoc
	for w := 0; w < p.btbAssoc; w++ {
		if l := &p.btbTags[base+w]; l.valid && l.tag == key {
			p.btbTargets[base+w] = target
			p.btbPLRU[set].touch(w, p.btbAssoc)
			return
		}
	}
	for w := 0; w < p.btbAssoc; w++ {
		if !p.btbTags[base+w].valid {
			p.btbTags[base+w] = cacheLine{tag: key, valid: true}
			p.btbTargets[base+w] = target
			p.btbPLRU[set].touch(w, p.btbAssoc)
			return
		}
	}
	w := p.btbPLRU[set].victim(p.btbAssoc)
	p.btbTags[base+w] = cacheLine{tag: key, valid: true}
	p.btbTargets[base+w] = target
	p.btbPLRU[set].touch(w, p.btbAssoc)
}

// PredictAndTrain performs the full fetch-time prediction for a branch
// instruction and trains the structures with the actual outcome. It
// returns whether the prediction was correct (direction and, for taken
// branches, target).
func (p *Predictor) PredictAndTrain(d *DynInst) bool {
	owner := d.Owner
	p.Stats.Branches[owner]++

	correct := true
	if d.IsCond {
		predTaken := p.PredictDirection(d.PC)
		if predTaken != d.Taken {
			correct = false
		} else if d.Taken {
			t, hit := p.PredictTarget(d.PC)
			if !hit || t != d.Target {
				correct = false
			}
		}
	} else {
		// Unconditional: direction is known taken; target comes from
		// the BTB (indirect targets can genuinely vary).
		t, hit := p.PredictTarget(d.PC)
		if !hit || t != d.Target {
			correct = false
		}
	}
	p.Update(d.PC, d.IsCond, d.Taken, d.Target)
	if !correct {
		p.Stats.Mispredicts[owner]++
	}
	return correct
}

// Reset clears predictor state and statistics.
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.counters {
		p.counters[i] = 0
	}
	for i := range p.btbTags {
		p.btbTags[i] = cacheLine{}
		p.btbTargets[i] = 0
	}
	for i := range p.btbPLRU {
		p.btbPLRU[i] = 0
	}
	p.Stats = BranchStats{}
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
