package timing

// StridePrefetcher is a PC-indexed stride prefetcher attached to the
// L1 data cache (Table I: 256 entries). When a load/store at a given PC
// exhibits a stable address stride, the next block is prefetched.
type StridePrefetcher struct {
	mask    uint32
	tags    []uint32
	last    []uint32
	stride  []int32
	conf    []uint8
	Issued  uint64 // prefetches issued
	Useful  uint64 // prefetched blocks that were later hit (approximate)
	enabled bool
}

// NewStridePrefetcher creates a prefetcher with the given entry count
// (a power of two). Zero entries disables prefetching.
func NewStridePrefetcher(entries int) *StridePrefetcher {
	if entries == 0 {
		return &StridePrefetcher{}
	}
	if entries&(entries-1) != 0 {
		panic("timing: prefetcher entries must be a power of two")
	}
	return &StridePrefetcher{
		mask:    uint32(entries - 1),
		tags:    make([]uint32, entries),
		last:    make([]uint32, entries),
		stride:  make([]int32, entries),
		conf:    make([]uint8, entries),
		enabled: true,
	}
}

// Observe records a data access by the instruction at pc and returns
// the address to prefetch, if any (0 means no prefetch; address 0 is
// never a valid prefetch candidate in the modeled layout).
func (p *StridePrefetcher) Observe(pc, addr uint32) uint32 {
	if !p.enabled {
		return 0
	}
	idx := (pc >> 2) & p.mask
	key := pc
	if p.tags[idx] != key {
		p.tags[idx] = key
		p.last[idx] = addr
		p.stride[idx] = 0
		p.conf[idx] = 0
		return 0
	}
	d := int32(addr - p.last[idx])
	p.last[idx] = addr
	if d == 0 {
		return 0
	}
	if d == p.stride[idx] {
		if p.conf[idx] < 3 {
			p.conf[idx]++
		}
	} else {
		p.stride[idx] = d
		p.conf[idx] = 0
		return 0
	}
	if p.conf[idx] >= 2 {
		p.Issued++
		return addr + uint32(d)
	}
	return 0
}

// Reset clears the table and statistics.
func (p *StridePrefetcher) Reset() {
	for i := range p.tags {
		p.tags[i] = 0
		p.last[i] = 0
		p.stride[i] = 0
		p.conf[i] = 0
	}
	p.Issued, p.Useful = 0, 0
}
