package timing

import (
	"errors"
	"fmt"
)

// ErrPaused is returned by RunContext when the StopWhen predicate
// fired: the simulator stopped at a cycle boundary with all in-flight
// state intact. The caller may Snapshot it, resume it by calling
// RunContext again (after clearing or replacing StopWhen), or both.
var ErrPaused = errors.New("timing: paused by StopWhen")

// IQEntry is one instruction-queue slot in a snapshot, head-first.
type IQEntry struct {
	Inst       DynInst `json:"inst"`
	Mispredict bool    `json:"mispredict,omitempty"`
}

// CacheSnap captures the replacement state and statistics of one
// set-associative structure (cache or TLB — the shapes are identical).
// Tags and Valid are way-major within set, exactly as stored.
type CacheSnap struct {
	Tags  []uint32   `json:"tags"`
	Valid []byte     `json:"valid"` // 1 = line valid
	PLRU  []uint16   `json:"plru"`
	Stats CacheStats `json:"stats"`
}

// PredictorSnap captures the Gshare + BTB state and statistics.
type PredictorSnap struct {
	History    uint32      `json:"history"`
	Counters   []byte      `json:"counters"`
	BTBTags    []uint32    `json:"btb_tags"`
	BTBValid   []byte      `json:"btb_valid"`
	BTBTargets []uint32    `json:"btb_targets"`
	BTBPLRU    []uint16    `json:"btb_plru"`
	Stats      BranchStats `json:"stats"`
}

// PrefetcherSnap captures the stride-prefetcher table and counters.
type PrefetcherSnap struct {
	Tags   []uint32 `json:"tags"`
	Last   []uint32 `json:"last"`
	Stride []int32  `json:"stride"`
	Conf   []byte   `json:"conf"`
	Issued uint64   `json:"issued"`
	Useful uint64   `json:"useful"`
}

// SimSnapshot is a complete, JSON-serializable capture of a Simulator
// paused at a cycle boundary (RunContext returned ErrPaused, or never
// ran). RestoreSimulator rebuilds a simulator that, resumed on the
// same stream suffix, produces byte-identical results to the original
// continuing uninterrupted — the foundation of checkpoint/restore.
//
// The per-owner structure slots follow the Simulator's layout: index 0
// only in the shared/app-only/tol-only modes, one slot per owner in
// ModeSplit; unused slots are nil.
type SimSnapshot struct {
	Cfg  Config `json:"config"`
	Mode Mode   `json:"mode"`

	Cycle uint64 `json:"cycle"`
	// Res holds the pre-finish accumulators; structure statistics live
	// in the structure snapshots and are folded in by finishResult when
	// the restored run completes, exactly once, like an unbroken run.
	Res Result `json:"result"`

	RegReady [NumSBRegs]uint64 `json:"reg_ready"`
	RegDMiss [NumSBRegs]bool   `json:"reg_dmiss"`

	IQ []IQEntry `json:"iq,omitempty"`

	FetchState      uint8             `json:"fetch_state"`
	FetchReadyAt    uint64            `json:"fetch_ready_at"`
	FetchBlockOwner Owner             `json:"fetch_block_owner"`
	FetchBlockComp  Component         `json:"fetch_block_comp"`
	LastFetchLine   [NumOwners]uint32 `json:"last_fetch_line"`
	HaveFetchLine   [NumOwners]bool   `json:"have_fetch_line"`
	StalledBranch   int               `json:"stalled_branch"`
	Pending         *DynInst          `json:"pending,omitempty"`
	StreamDone      bool              `json:"stream_done,omitempty"`
	Batch           []DynInst         `json:"batch,omitempty"` // undelivered refill tail

	L1I   [NumOwners]*CacheSnap      `json:"l1i"`
	L1D   [NumOwners]*CacheSnap      `json:"l1d"`
	L2    [NumOwners]*CacheSnap      `json:"l2"`
	L1TLB [NumOwners]*CacheSnap      `json:"l1_tlb"`
	L2TLB [NumOwners]*CacheSnap      `json:"l2_tlb"`
	BP    [NumOwners]*PredictorSnap  `json:"bp"`
	Pref  [NumOwners]*PrefetcherSnap `json:"pref"`
}

// Snapshot captures the simulator's complete state. It must only be
// called while the simulator is stopped at a cycle boundary — before
// RunContext, or after it returned (ErrPaused or completion).
func (s *Simulator) Snapshot() *SimSnapshot {
	sn := &SimSnapshot{
		Cfg:             s.cfg,
		Mode:            s.mode,
		Cycle:           s.cycle,
		Res:             s.res,
		RegReady:        s.regReady,
		RegDMiss:        s.regDMiss,
		FetchState:      uint8(s.fetchState),
		FetchReadyAt:    s.fetchReadyAt,
		FetchBlockOwner: s.fetchBlockOwner,
		FetchBlockComp:  s.fetchBlockComp,
		LastFetchLine:   s.lastFetchLine,
		HaveFetchLine:   s.haveFetchLine,
		StalledBranch:   s.stalledBranch,
		StreamDone:      s.streamDone,
	}
	for i := 0; i < s.iqCount; i++ {
		e := s.iqAt(i)
		sn.IQ = append(sn.IQ, IQEntry{Inst: e.inst, Mispredict: e.mispredict})
	}
	if s.pending != nil {
		p := *s.pending
		sn.Pending = &p
	}
	if s.batchPos < s.batchLen {
		sn.Batch = append([]DynInst(nil), s.batch[s.batchPos:s.batchLen]...)
	}
	for i := 0; i < int(NumOwners); i++ {
		if s.l1i[i] == nil {
			continue
		}
		sn.L1I[i] = s.l1i[i].snap()
		sn.L1D[i] = s.l1d[i].snap()
		sn.L2[i] = s.l2[i].snap()
		sn.L1TLB[i] = s.l1t[i].snapTLB()
		sn.L2TLB[i] = s.l2t[i].snapTLB()
		sn.BP[i] = s.bp[i].snap()
		sn.Pref[i] = s.pref[i].snap()
	}
	return sn
}

// RestoreSimulator rebuilds a Simulator from a snapshot. The returned
// simulator is ready to resume via RunContext with a source delivering
// the remainder of the original stream. Structure geometries are
// validated against the snapshot's own Config; a mismatch (a corrupt
// or hand-edited snapshot) is an error, never a panic.
func RestoreSimulator(sn *SimSnapshot) (*Simulator, error) {
	if sn.Cfg.IQSize <= 0 || len(sn.IQ) > sn.Cfg.IQSize {
		return nil, fmt.Errorf("timing: snapshot IQ holds %d entries, config IQSize=%d", len(sn.IQ), sn.Cfg.IQSize)
	}
	s := NewSimulator(sn.Cfg, sn.Mode)
	if len(sn.Batch) > len(s.batch) {
		return nil, fmt.Errorf("timing: snapshot batch holds %d instructions, config StreamBatch=%d", len(sn.Batch), len(s.batch))
	}
	s.cycle = sn.Cycle
	s.res = sn.Res
	s.regReady = sn.RegReady
	s.regDMiss = sn.RegDMiss
	s.fetchState = fetchBlock(sn.FetchState)
	s.fetchReadyAt = sn.FetchReadyAt
	s.fetchBlockOwner = sn.FetchBlockOwner
	s.fetchBlockComp = sn.FetchBlockComp
	s.lastFetchLine = sn.LastFetchLine
	s.haveFetchLine = sn.HaveFetchLine
	s.stalledBranch = sn.StalledBranch
	s.streamDone = sn.StreamDone
	s.iqHead, s.iqCount = 0, len(sn.IQ)
	for i, e := range sn.IQ {
		s.iq[i] = iqEntry{inst: e.Inst, mispredict: e.Mispredict}
	}
	if sn.Pending != nil {
		s.pendingBuf = *sn.Pending
		s.pending = &s.pendingBuf
	}
	s.batchPos, s.batchLen = 0, copy(s.batch, sn.Batch)
	for i := 0; i < int(NumOwners); i++ {
		if s.l1i[i] == nil {
			if sn.L1I[i] != nil {
				return nil, fmt.Errorf("timing: snapshot has structure set %d, mode %v does not", i, sn.Mode)
			}
			continue
		}
		if sn.L1I[i] == nil {
			return nil, fmt.Errorf("timing: snapshot missing structure set %d for mode %v", i, sn.Mode)
		}
		if err := errors.Join(
			s.l1i[i].restore(sn.L1I[i]),
			s.l1d[i].restore(sn.L1D[i]),
			s.l2[i].restore(sn.L2[i]),
			s.l1t[i].restoreTLB(sn.L1TLB[i]),
			s.l2t[i].restoreTLB(sn.L2TLB[i]),
			s.bp[i].restore(sn.BP[i]),
			s.pref[i].restore(sn.Pref[i]),
		); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func snapLines(lines []cacheLine, plru []plruTree, stats CacheStats) *CacheSnap {
	sn := &CacheSnap{
		Tags:  make([]uint32, len(lines)),
		Valid: make([]byte, len(lines)),
		PLRU:  make([]uint16, len(plru)),
		Stats: stats,
	}
	for i, l := range lines {
		sn.Tags[i] = l.tag
		if l.valid {
			sn.Valid[i] = 1
		}
	}
	for i, t := range plru {
		sn.PLRU[i] = uint16(t)
	}
	return sn
}

func restoreLines(lines []cacheLine, plru []plruTree, sn *CacheSnap, what string) error {
	if sn == nil || len(sn.Tags) != len(lines) || len(sn.Valid) != len(lines) || len(sn.PLRU) != len(plru) {
		return fmt.Errorf("timing: %s snapshot does not match configured geometry", what)
	}
	for i := range lines {
		lines[i] = cacheLine{tag: sn.Tags[i], valid: sn.Valid[i] != 0}
	}
	for i := range plru {
		plru[i] = plruTree(sn.PLRU[i])
	}
	return nil
}

func (c *Cache) snap() *CacheSnap { return snapLines(c.lines, c.plru, c.Stats) }

func (c *Cache) restore(sn *CacheSnap) error {
	if err := restoreLines(c.lines, c.plru, sn, "cache"); err != nil {
		return err
	}
	c.Stats = sn.Stats
	return nil
}

func (t *TLB) snapTLB() *CacheSnap { return snapLines(t.lines, t.plru, t.Stats) }

func (t *TLB) restoreTLB(sn *CacheSnap) error {
	if err := restoreLines(t.lines, t.plru, sn, "TLB"); err != nil {
		return err
	}
	t.Stats = sn.Stats
	return nil
}

func (p *Predictor) snap() *PredictorSnap {
	sn := &PredictorSnap{
		History:    p.history,
		Counters:   append([]byte(nil), p.counters...),
		BTBTags:    make([]uint32, len(p.btbTags)),
		BTBValid:   make([]byte, len(p.btbTags)),
		BTBTargets: append([]uint32(nil), p.btbTargets...),
		BTBPLRU:    make([]uint16, len(p.btbPLRU)),
		Stats:      p.Stats,
	}
	for i, l := range p.btbTags {
		sn.BTBTags[i] = l.tag
		if l.valid {
			sn.BTBValid[i] = 1
		}
	}
	for i, t := range p.btbPLRU {
		sn.BTBPLRU[i] = uint16(t)
	}
	return sn
}

func (p *Predictor) restore(sn *PredictorSnap) error {
	if sn == nil || len(sn.Counters) != len(p.counters) ||
		len(sn.BTBTags) != len(p.btbTags) || len(sn.BTBValid) != len(p.btbTags) ||
		len(sn.BTBTargets) != len(p.btbTargets) || len(sn.BTBPLRU) != len(p.btbPLRU) {
		return errors.New("timing: predictor snapshot does not match configured geometry")
	}
	p.history = sn.History
	copy(p.counters, sn.Counters)
	for i := range p.btbTags {
		p.btbTags[i] = cacheLine{tag: sn.BTBTags[i], valid: sn.BTBValid[i] != 0}
	}
	copy(p.btbTargets, sn.BTBTargets)
	for i := range p.btbPLRU {
		p.btbPLRU[i] = plruTree(sn.BTBPLRU[i])
	}
	p.Stats = sn.Stats
	return nil
}

func (p *StridePrefetcher) snap() *PrefetcherSnap {
	return &PrefetcherSnap{
		Tags:   append([]uint32(nil), p.tags...),
		Last:   append([]uint32(nil), p.last...),
		Stride: append([]int32(nil), p.stride...),
		Conf:   append([]byte(nil), p.conf...),
		Issued: p.Issued,
		Useful: p.Useful,
	}
}

func (p *StridePrefetcher) restore(sn *PrefetcherSnap) error {
	if sn == nil || len(sn.Tags) != len(p.tags) || len(sn.Last) != len(p.last) ||
		len(sn.Stride) != len(p.stride) || len(sn.Conf) != len(p.conf) {
		return errors.New("timing: prefetcher snapshot does not match configured geometry")
	}
	copy(p.tags, sn.Tags)
	copy(p.last, sn.Last)
	copy(p.stride, sn.Stride)
	copy(p.conf, sn.Conf)
	p.Issued, p.Useful = sn.Issued, sn.Useful
	return nil
}
