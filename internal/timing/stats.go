package timing

// BubbleKind classifies stall cycles into the paper's bubble sources
// (Figure 9): data-cache miss bubbles, instruction-cache miss bubbles,
// branch bubbles, and instruction-scheduling bubbles (IQ unable to
// issue due to data dependencies or execution-unit availability).
type BubbleKind uint8

// Bubble kinds.
const (
	BubbleDMiss BubbleKind = iota
	BubbleIMiss
	BubbleBranch
	BubbleSched
	NumBubbleKinds
)

var bubbleNames = [NumBubbleKinds]string{"d$-miss", "i$-miss", "branch", "sched"}

func (k BubbleKind) String() string {
	if int(k) < len(bubbleNames) {
		return bubbleNames[k]
	}
	return "bubble?"
}

// Result aggregates everything a timing run measures.
type Result struct {
	Cycles uint64

	// Retired instruction counts.
	Insts       [NumOwners]uint64
	InstsByComp [NumComponents]uint64

	// Cycle attribution. A cycle in which instructions issue is an
	// instruction cycle, split evenly among the issuing instructions'
	// owners/components; a cycle with no issue is a bubble charged to
	// its cause.
	InstCycles       [NumOwners]float64
	InstCyclesByComp [NumComponents]float64
	Bubbles          [NumOwners][NumBubbleKinds]float64
	BubblesByComp    [NumComponents]float64

	// UnattributedCycles counts drain/warm-up cycles that have no
	// natural owner (empty pipeline with nothing blocked).
	UnattributedCycles float64

	// Structure statistics.
	L1I    CacheStats
	L1D    CacheStats
	L2     CacheStats
	L1TLB  CacheStats
	L2TLB  CacheStats
	Branch BranchStats

	PrefetchesIssued uint64
}

// TotalInsts returns total retired instructions.
func (r *Result) TotalInsts() uint64 { return r.Insts[OwnerApp] + r.Insts[OwnerTOL] }

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInsts()) / float64(r.Cycles)
}

// OwnerCycles returns all cycles attributed to an owner (instruction
// cycles plus bubbles).
func (r *Result) OwnerCycles(o Owner) float64 {
	c := r.InstCycles[o]
	for k := BubbleKind(0); k < NumBubbleKinds; k++ {
		c += r.Bubbles[o][k]
	}
	return c
}

// ComponentCycles returns all cycles attributed to a TOL component (or
// the application via CompApp).
func (r *Result) ComponentCycles(c Component) float64 {
	return r.InstCyclesByComp[c] + r.BubblesByComp[c]
}

// TOLShare returns the fraction of execution time spent in TOL — the
// "overhead" series of the paper's Figure 6.
func (r *Result) TOLShare() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.OwnerCycles(OwnerTOL) / float64(r.Cycles)
}

// TotalBubbles returns all bubble cycles.
func (r *Result) TotalBubbles() float64 {
	t := 0.0
	for o := Owner(0); o < NumOwners; o++ {
		for k := BubbleKind(0); k < NumBubbleKinds; k++ {
			t += r.Bubbles[o][k]
		}
	}
	return t
}

// BubbleShare returns the fraction of cycles lost to a bubble kind,
// summed over owners.
func (r *Result) BubbleShare(k BubbleKind) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return (r.Bubbles[OwnerApp][k] + r.Bubbles[OwnerTOL][k]) / float64(r.Cycles)
}
