package timing

// BubbleKind classifies stall cycles into the paper's bubble sources
// (Figure 9): data-cache miss bubbles, instruction-cache miss bubbles,
// branch bubbles, and instruction-scheduling bubbles (IQ unable to
// issue due to data dependencies or execution-unit availability).
type BubbleKind uint8

// Bubble kinds.
const (
	BubbleDMiss BubbleKind = iota
	BubbleIMiss
	BubbleBranch
	BubbleSched
	NumBubbleKinds
)

var bubbleNames = [NumBubbleKinds]string{"d$-miss", "i$-miss", "branch", "sched"}

func (k BubbleKind) String() string {
	if int(k) < len(bubbleNames) {
		return bubbleNames[k]
	}
	return "bubble?"
}

// Result aggregates everything a timing run measures. Owner-indexed
// arrays serialize as two-element JSON arrays ([app, tol]); component-
// indexed arrays follow the Component order of stream.go.
type Result struct {
	Cycles uint64 `json:"cycles"`

	// Retired instruction counts.
	Insts       [NumOwners]uint64     `json:"insts"`
	InstsByComp [NumComponents]uint64 `json:"insts_by_comp"`

	// Cycle attribution. A cycle in which instructions issue is an
	// instruction cycle, split evenly among the issuing instructions'
	// owners/components; a cycle with no issue is a bubble charged to
	// its cause.
	InstCycles       [NumOwners]float64                 `json:"inst_cycles"`
	InstCyclesByComp [NumComponents]float64             `json:"inst_cycles_by_comp"`
	Bubbles          [NumOwners][NumBubbleKinds]float64 `json:"bubbles"`
	BubblesByComp    [NumComponents]float64             `json:"bubbles_by_comp"`

	// UnattributedCycles counts drain/warm-up cycles that have no
	// natural owner (empty pipeline with nothing blocked).
	UnattributedCycles float64 `json:"unattributed_cycles"`

	// Structure statistics.
	L1I    CacheStats  `json:"l1i"`
	L1D    CacheStats  `json:"l1d"`
	L2     CacheStats  `json:"l2"`
	L1TLB  CacheStats  `json:"l1_tlb"`
	L2TLB  CacheStats  `json:"l2_tlb"`
	Branch BranchStats `json:"branch"`

	PrefetchesIssued uint64 `json:"prefetches_issued"`
}

// TotalInsts returns total retired instructions.
func (r *Result) TotalInsts() uint64 { return r.Insts[OwnerApp] + r.Insts[OwnerTOL] }

// Sub returns the element-wise difference r − base of every counter,
// the measurement taken between two Simulator.ResultSoFar marks of the
// same run (base first). Sampled simulation uses it to discard the
// warm-up prefix of a measured interval.
func (r Result) Sub(base *Result) Result {
	d := r
	d.Cycles -= base.Cycles
	for o := Owner(0); o < NumOwners; o++ {
		d.Insts[o] -= base.Insts[o]
		d.InstCycles[o] -= base.InstCycles[o]
		for k := BubbleKind(0); k < NumBubbleKinds; k++ {
			d.Bubbles[o][k] -= base.Bubbles[o][k]
		}
	}
	for c := Component(0); c < NumComponents; c++ {
		d.InstsByComp[c] -= base.InstsByComp[c]
		d.InstCyclesByComp[c] -= base.InstCyclesByComp[c]
		d.BubblesByComp[c] -= base.BubblesByComp[c]
	}
	d.UnattributedCycles -= base.UnattributedCycles
	subCache := func(dst *CacheStats, b *CacheStats) {
		for o := Owner(0); o < NumOwners; o++ {
			dst.Accesses[o] -= b.Accesses[o]
			dst.Misses[o] -= b.Misses[o]
		}
	}
	subCache(&d.L1I, &base.L1I)
	subCache(&d.L1D, &base.L1D)
	subCache(&d.L2, &base.L2)
	subCache(&d.L1TLB, &base.L1TLB)
	subCache(&d.L2TLB, &base.L2TLB)
	for o := Owner(0); o < NumOwners; o++ {
		d.Branch.Branches[o] -= base.Branch.Branches[o]
		d.Branch.Mispredicts[o] -= base.Branch.Mispredicts[o]
	}
	d.PrefetchesIssued -= base.PrefetchesIssued
	return d
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInsts()) / float64(r.Cycles)
}

// OwnerCycles returns all cycles attributed to an owner (instruction
// cycles plus bubbles).
func (r *Result) OwnerCycles(o Owner) float64 {
	c := r.InstCycles[o]
	for k := BubbleKind(0); k < NumBubbleKinds; k++ {
		c += r.Bubbles[o][k]
	}
	return c
}

// ComponentCycles returns all cycles attributed to a TOL component (or
// the application via CompApp).
func (r *Result) ComponentCycles(c Component) float64 {
	return r.InstCyclesByComp[c] + r.BubblesByComp[c]
}

// TOLShare returns the fraction of execution time spent in TOL — the
// "overhead" series of the paper's Figure 6.
func (r *Result) TOLShare() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.OwnerCycles(OwnerTOL) / float64(r.Cycles)
}

// TotalBubbles returns all bubble cycles.
func (r *Result) TotalBubbles() float64 {
	t := 0.0
	for o := Owner(0); o < NumOwners; o++ {
		for k := BubbleKind(0); k < NumBubbleKinds; k++ {
			t += r.Bubbles[o][k]
		}
	}
	return t
}

// BubbleShare returns the fraction of cycles lost to a bubble kind,
// summed over owners.
func (r *Result) BubbleShare(k BubbleKind) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return (r.Bubbles[OwnerApp][k] + r.Bubbles[OwnerTOL][k]) / float64(r.Cycles)
}

// Summary is the flattened, machine-readable digest of a timing run:
// every derived quantity the figure harnesses read off a Result, with
// self-describing names instead of enum-indexed arrays.
type Summary struct {
	Cycles    uint64  `json:"cycles"`
	IPC       float64 `json:"ipc"`
	AppInsts  uint64  `json:"app_insts"`
	TOLInsts  uint64  `json:"tol_insts"`
	AppCycles float64 `json:"app_cycles"`
	TOLCycles float64 `json:"tol_cycles"`
	TOLShare  float64 `json:"tol_share"`

	// Bubble cycles per source, summed over owners (Figure 9 axes).
	DMissBubbles  float64 `json:"dmiss_bubbles"`
	IMissBubbles  float64 `json:"imiss_bubbles"`
	BranchBubbles float64 `json:"branch_bubbles"`
	SchedBubbles  float64 `json:"sched_bubbles"`

	// Cycles attributed per TOL component, keyed by Component.String()
	// (Figure 7 axes).
	ComponentCycles map[string]float64 `json:"component_cycles"`

	// Structure behaviour.
	L1IMissRate      float64 `json:"l1i_miss_rate"`
	L1DMissRate      float64 `json:"l1d_miss_rate"`
	L2MissRate       float64 `json:"l2_miss_rate"`
	L1TLBMissRate    float64 `json:"l1_tlb_miss_rate"`
	L2TLBMissRate    float64 `json:"l2_tlb_miss_rate"`
	MispredictRate   float64 `json:"mispredict_rate"`
	PrefetchesIssued uint64  `json:"prefetches_issued"`
}

// Summary flattens the result into its machine-readable digest.
func (r *Result) Summary() Summary {
	comps := make(map[string]float64, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		comps[c.String()] = r.ComponentCycles(c)
	}
	return Summary{
		Cycles:           r.Cycles,
		IPC:              r.IPC(),
		AppInsts:         r.Insts[OwnerApp],
		TOLInsts:         r.Insts[OwnerTOL],
		AppCycles:        r.OwnerCycles(OwnerApp),
		TOLCycles:        r.OwnerCycles(OwnerTOL),
		TOLShare:         r.TOLShare(),
		DMissBubbles:     r.Bubbles[OwnerApp][BubbleDMiss] + r.Bubbles[OwnerTOL][BubbleDMiss],
		IMissBubbles:     r.Bubbles[OwnerApp][BubbleIMiss] + r.Bubbles[OwnerTOL][BubbleIMiss],
		BranchBubbles:    r.Bubbles[OwnerApp][BubbleBranch] + r.Bubbles[OwnerTOL][BubbleBranch],
		SchedBubbles:     r.Bubbles[OwnerApp][BubbleSched] + r.Bubbles[OwnerTOL][BubbleSched],
		ComponentCycles:  comps,
		L1IMissRate:      r.L1I.MissRate(),
		L1DMissRate:      r.L1D.MissRate(),
		L2MissRate:       r.L2.MissRate(),
		L1TLBMissRate:    r.L1TLB.MissRate(),
		L2TLBMissRate:    r.L2TLB.MissRate(),
		MispredictRate:   r.Branch.MispredictRate(),
		PrefetchesIssued: r.PrefetchesIssued,
	}
}
