package timing

import "repro/internal/host"

// Owner identifies which entity a dynamic instruction belongs to. The
// timing simulator is able to distinguish the instructions corresponding
// to the emulation of the guest application from those corresponding to
// TOL — the DARCO feature enabling the paper's interaction study.
type Owner uint8

// Owners.
const (
	OwnerApp Owner = iota
	OwnerTOL
	NumOwners
)

func (o Owner) String() string {
	if o == OwnerApp {
		return "app"
	}
	return "tol"
}

// Component attributes TOL instructions to the TOL module that executed
// them, matching the execution-time breakdown of the paper's Figure 7.
type Component uint8

// Components. CompApp tags application (translated guest) instructions.
const (
	CompApp             Component = iota
	CompIM                        // interpreting
	CompBBM                       // forming and translating basic blocks
	CompSBM                       // forming and optimizing superblocks
	CompChaining                  // connecting BBs/SBs together
	CompCodeCacheLookup           // searching for a translation in the code cache
	CompTOLOther                  // initialization, entry/exit glue, dispatch loop
	NumComponents
)

var componentNames = [NumComponents]string{
	"app", "im", "bbm", "sbm", "chaining", "codecache-lookup", "tol-other",
}

func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "comp?"
}

// RegNone marks an absent register operand in a DynInst.
const RegNone = 0xff

// fpRegBase offsets FP register ids into the unified scoreboard
// namespace (0..63 integer, 64..95 FP).
const fpRegBase = 64

// DynInst is one dynamic host instruction as seen by the timing
// simulator: program counter, execution class, register operands for
// scoreboard dependencies, memory and control-flow side effects, and
// the owner/component attribution.
type DynInst struct {
	PC    uint32
	Class host.ExecClass
	Owner Owner
	Comp  Component

	// Scoreboard operands in the unified register namespace; RegNone
	// when absent.
	Dst  uint8
	Src1 uint8
	Src2 uint8

	IsLoad     bool
	IsStore    bool
	MemAddr    uint32
	IsBranch   bool
	IsCond     bool
	IsIndirect bool
	Taken      bool
	Target     uint32
}

// StreamSource produces the dynamic instruction stream consumed by the
// simulator. Next fills *d and returns false when the stream ends.
type StreamSource interface {
	Next(d *DynInst) bool
}

// BatchSource is the bulk-transfer fast path of StreamSource: NextBatch
// fills a prefix of buf and returns how many instructions it wrote (0 =
// stream end). The simulator consumes sources through slices of
// Config.StreamBatch instructions at a time, so a source implementing
// BatchSource pays one call and one memory copy per batch instead of an
// interface call per instruction. The delivered instruction sequence
// must be identical to the Next sequence — batching is transport, not
// semantics — which the stream-equality tests pin.
type BatchSource interface {
	NextBatch(buf []DynInst) int
}

// SliceSource adapts a materialized trace to StreamSource, mainly for
// tests and microbenchmarks.
type SliceSource struct {
	Insts []DynInst
	pos   int
}

// Next implements StreamSource.
func (s *SliceSource) Next(d *DynInst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*d = s.Insts[s.pos]
	s.pos++
	return true
}

// NextBatch implements BatchSource.
func (s *SliceSource) NextBatch(buf []DynInst) int {
	n := copy(buf, s.Insts[s.pos:])
	s.pos += n
	return n
}

// FillFromHost populates the ISA-derived fields of d from a decoded
// host instruction and its execution outcome. Owner/Comp are left for
// the caller.
func FillFromHost(d *DynInst, pc uint32, hi *host.Inst, out *host.Outcome) {
	TemplateFromHost(d, pc, hi)
	d.MemAddr = out.MemAddr
	d.Taken = out.Taken
	d.Target = out.Target
}

// TemplateFromHost fills the execution-invariant fields of d for a
// decoded host instruction: everything FillFromHost produces except
// the per-execution MemAddr/Taken/Target (zeroed here) and the
// caller's Owner/Comp attribution. IsLoad/IsStore are static
// per-opcode properties, so a template plus the three dynamic fields
// reproduces FillFromHost exactly — the basis of the code cache's
// precomputed dispatch metadata.
func TemplateFromHost(d *DynInst, pc uint32, hi *host.Inst) {
	d.PC = pc
	d.Class = hi.Class()
	d.Dst, d.Src1, d.Src2 = operandRegs(hi)
	d.IsLoad = hi.IsLoad()
	d.IsStore = hi.IsStore()
	d.MemAddr = 0
	d.IsBranch = hi.IsBranch()
	d.IsCond = hi.IsCondBranch()
	d.IsIndirect = hi.IsIndirect()
	d.Taken = false
	d.Target = 0
}

// intReg and fpReg map host registers into the unified scoreboard
// namespace. The integer register r0 is hardwired zero and is reported
// as RegNone so it never creates dependencies.
func intReg(r host.Reg) uint8 {
	if r == host.RZero {
		return RegNone
	}
	return uint8(r)
}

func fpReg(r host.Reg) uint8 { return fpRegBase + uint8(r) }

// operandRegs maps a host instruction to its scoreboard operands in the
// unified namespace.
func operandRegs(hi *host.Inst) (dst, src1, src2 uint8) {
	dst, src1, src2 = RegNone, RegNone, RegNone

	switch hi.Op {
	case host.Nop, host.Halt:
	case host.Lui:
		dst = intReg(hi.Rd)
	case host.Ori, host.Addi, host.Andi, host.Xori, host.Slli, host.Srli,
		host.Srai, host.Slti, host.Sltiu:
		dst, src1 = intReg(hi.Rd), intReg(hi.Rs1)
	case host.Add, host.Sub, host.And, host.Or, host.Xor, host.Sll,
		host.Srl, host.Sra, host.Mul, host.Div, host.Slt, host.Sltu:
		dst, src1, src2 = intReg(hi.Rd), intReg(hi.Rs1), intReg(hi.Rs2)
	case host.Ld:
		dst, src1 = intReg(hi.Rd), intReg(hi.Rs1)
	case host.St:
		src1, src2 = intReg(hi.Rs1), intReg(hi.Rs2)
	case host.Beq, host.Bne, host.Blt, host.Bge, host.Bltu, host.Bgeu:
		src1, src2 = intReg(hi.Rs1), intReg(hi.Rs2)
	case host.Jal:
		dst = intReg(hi.Rd)
	case host.Jalr:
		dst, src1 = intReg(hi.Rd), intReg(hi.Rs1)
	case host.FAdd, host.FSub, host.FMul, host.FDiv, host.FEq, host.FLt:
		// FEq/FLt write an integer register from two FP sources.
		if hi.Op == host.FEq || hi.Op == host.FLt {
			dst = intReg(hi.Rd)
		} else {
			dst = fpReg(hi.Rd)
		}
		src1, src2 = fpReg(hi.Rs1), fpReg(hi.Rs2)
	case host.FMov:
		dst, src1 = fpReg(hi.Rd), fpReg(hi.Rs1)
	case host.FLd:
		dst, src1 = fpReg(hi.Rd), intReg(hi.Rs1)
	case host.FSt:
		src1, src2 = intReg(hi.Rs1), fpReg(hi.Rs2)
	case host.FCvtIF:
		dst, src1 = fpReg(hi.Rd), intReg(hi.Rs1)
	case host.FCvtFI:
		dst, src1 = intReg(hi.Rd), fpReg(hi.Rs1)
	}
	return dst, src1, src2
}

// NumSBRegs is the size of the unified scoreboard register namespace.
const NumSBRegs = 96
