package timing

import (
	"fmt"

	"repro/internal/mem"
)

// TLB is one level of the data translation lookaside buffer. The
// instruction path has no TLB because TOL works with physical
// addresses, matching the paper.
type TLB struct {
	cfg     TLBConfig
	sets    int
	setMask uint32
	lines   []cacheLine
	plru    []plruTree
	Stats   CacheStats
}

// NewTLB builds a TLB level.
func NewTLB(cfg TLBConfig) *TLB {
	sets := cfg.Entries / cfg.Assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("timing: invalid TLB geometry %+v", cfg))
	}
	if cfg.Assoc&(cfg.Assoc-1) != 0 || cfg.Assoc > 16 {
		panic(fmt.Sprintf("timing: unsupported TLB associativity %d", cfg.Assoc))
	}
	return &TLB{
		cfg:     cfg,
		sets:    sets,
		setMask: uint32(sets - 1),
		lines:   make([]cacheLine, sets*cfg.Assoc),
		plru:    make([]plruTree, sets),
	}
}

// Access looks up the page of addr, filling on miss. Returns hit.
func (t *TLB) Access(addr uint32, owner Owner) bool {
	page := addr / mem.PageSize
	set := int(page & t.setMask)
	base := set * t.cfg.Assoc
	t.Stats.Accesses[owner]++
	for w := 0; w < t.cfg.Assoc; w++ {
		if l := &t.lines[base+w]; l.valid && l.tag == page {
			t.plru[set].touch(w, t.cfg.Assoc)
			return true
		}
	}
	t.Stats.Misses[owner]++
	for w := 0; w < t.cfg.Assoc; w++ {
		if !t.lines[base+w].valid {
			t.lines[base+w] = cacheLine{tag: page, valid: true}
			t.plru[set].touch(w, t.cfg.Assoc)
			return false
		}
	}
	w := t.plru[set].victim(t.cfg.Assoc)
	t.lines[base+w] = cacheLine{tag: page, valid: true}
	t.plru[set].touch(w, t.cfg.Assoc)
	return false
}

// HitLatency returns the configured hit latency.
func (t *TLB) HitLatency() int { return t.cfg.HitLatency }

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	for i := range t.lines {
		t.lines[i] = cacheLine{}
	}
	for i := range t.plru {
		t.plru[i] = 0
	}
	t.Stats = CacheStats{}
}
