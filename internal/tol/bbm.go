package tol

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
)

// maxBBInsts caps the length of a decoded basic block.
const maxBBInsts = 128

// decodedBB is a guest basic block: straight-line instructions ending
// with an optional control-flow terminator.
type decodedBB struct {
	entry uint32
	insts []guest.Inst // includes the terminator when present
	pcs   []uint32     // guest PC of each instruction
	// term is the index of the terminating control-flow instruction in
	// insts, or -1 when the block was cut by the length cap.
	term int
	next uint32 // guest address following the block (fallthrough)
}

// terminator returns the block's control-flow instruction, or nil.
func (b *decodedBB) terminator() *guest.Inst {
	if b.term < 0 {
		return nil
	}
	return &b.insts[b.term]
}

// Translator builds BBM translations and (via superblock.go) SBM
// superblocks. It reads guest code through the co-design component's
// guest memory view. The SBM optimizer is the translator's resolved
// pass pipeline; the promotion policy supplies the threshold compiled
// into each BBM block's profiling instrumentation.
type Translator struct {
	cfg      *Config
	isa      *guest.ISA
	plan     *regPlan
	pipeline []Pass
	policy   PromotionPolicy
	cc       *CodeCache
	tt       *TransTable
	prof     *ProfileTable
	guest    mem.Memory // guest address space view (window-adapted)

	// Work accounting for the cost model (reset per operation).
	LastWork Work
}

// Work quantifies the effort of the last translation/optimization, in
// units the cost model converts into host-instruction streams.
type Work struct {
	GuestInsts   int          // guest instructions processed
	HostEmitted  int          // host instructions produced
	OptPassInsts int          // total IR visits (sum of Passes[i].Visits)
	Passes       []PassReport // per-pass reports, pipeline order
	TableProbes  []uint32     // translation-table slots touched
}

// NewTranslator wires a translator to the TOL services for one guest
// frontend, resolving the configured optimization pipeline and the
// frontend's translation ABI. The promotion policy instance is shared
// with the engine so stateful policies see every promotion.
func NewTranslator(cfg *Config, isa *guest.ISA, policy PromotionPolicy, cc *CodeCache, tt *TransTable, prof *ProfileTable, g mem.Memory) (*Translator, error) {
	pipeline, err := cfg.Pipeline()
	if err != nil {
		return nil, err
	}
	plan, err := planFor(isa)
	if err != nil {
		return nil, err
	}
	return &Translator{cfg: cfg, isa: isa, plan: plan, pipeline: pipeline,
		policy: policy, cc: cc, tt: tt, prof: prof, guest: g}, nil
}

// decodeBB decodes the basic block starting at guest address entry,
// through the frontend's decoder.
func (t *Translator) decodeBB(entry uint32) (*decodedBB, error) {
	bb := &decodedBB{entry: entry, term: -1}
	pc := entry
	var buf [8]byte
	n := t.isa.MaxInstSize
	for len(bb.insts) < maxBBInsts {
		for i := 0; i < n; i++ {
			buf[i] = t.guest.Read8(pc + uint32(i))
		}
		in, err := t.isa.DecodeAt(buf[:n], pc)
		if err != nil {
			return nil, fmt.Errorf("tol: decode at %#x: %w", pc, err)
		}
		bb.insts = append(bb.insts, in)
		bb.pcs = append(bb.pcs, pc)
		pc += uint32(in.Size)
		if in.EndsBlock() {
			bb.term = len(bb.insts) - 1
			break
		}
	}
	bb.next = pc
	return bb, nil
}

// branchTargets returns the taken target (for direct branches) of a
// block terminator. ok is false for indirect terminators.
func branchTarget(in *guest.Inst, instEnd uint32) (uint32, bool) {
	switch in.Op {
	case guest.OpJmp, guest.OpJcc, guest.OpCallRel, guest.OpBcc, guest.OpJal:
		return instEnd + uint32(in.Imm), true
	}
	return 0, false
}

// TranslateBB translates the basic block at guest address entry,
// places it in the code cache and registers it in the translation
// table. Returns the placed translation.
func (t *Translator) TranslateBB(entry uint32) (*Translation, error) {
	t.LastWork = Work{}
	bb, err := t.decodeBB(entry)
	if err != nil {
		return nil, err
	}

	e := newEmitter(t.plan)
	tr := &Translation{
		Kind:       KindBB,
		GuestEntry: entry,
		GuestLen:   len(bb.insts),
		GuestPCs:   bb.pcs,
	}

	// Prologue: profiling instrumentation (counter increment plus, when
	// SBM is enabled, the promotion-threshold check).
	tr.ProfSlot = t.prof.SlotAddr(entry)
	e.loadImm(sc0, tr.ProfSlot)
	e.emit(host.Inst{Op: host.Ld, Rd: sc1, Rs1: sc0})
	e.emit(host.Inst{Op: host.Addi, Rd: sc1, Rs1: sc1, Imm: 1})
	e.emit(host.Inst{Op: host.St, Rs1: sc0, Rs2: sc1})
	if t.cfg.EnableSBM {
		e.loadImm(sc2, t.policy.SBThreshold(entry))
		e.emit(host.Inst{Op: host.Blt, Rs1: sc1, Rs2: sc2, Imm: host.InstBytes}) // skip the exit
		e.exitStub(&ExitInfo{Reason: ExitPromote, Retired: 0, GuestTarget: entry})
	}
	bodyStart := len(e.code)

	// Body.
	mat := flagsLiveness(bb.insts)
	bodyEnd := len(bb.insts)
	if bb.term >= 0 {
		bodyEnd = bb.term
	}
	for i := 0; i < bodyEnd; i++ {
		if t.cfg.Fault == FaultDropInc && bb.insts[i].Op == guest.OpIncR {
			continue // injected bug (mutation testing): lose the inc
		}
		e.emitGuestInst(&bb.insts[i], mat[i])
	}

	// Terminator.
	n := len(bb.insts)
	stubStart := t.emitTerminator(e, bb, n)
	if stubStart < 0 {
		stubStart = len(e.code)
	}

	// Allocate first (a bounded cache may evict here), then seal the
	// exit stubs against the actual placement address.
	base, err := t.cc.Alloc(len(e.code))
	if err != nil {
		return nil, err
	}
	if err := e.seal(base); err != nil {
		return nil, err
	}
	t.cc.PlaceAt(base, tr, e.code, bodyStart, stubStart, e.exits)
	t.LastWork.TableProbes = append(t.LastWork.TableProbes, t.tt.Insert(entry, tr.HostEntry)...)
	t.LastWork.GuestInsts = len(bb.insts)
	t.LastWork.HostEmitted = len(e.code)
	return tr, nil
}

// emitTerminator emits the control-flow tail of a block: condition
// tests, pushes for calls, the IBTC probe for indirect branches, and
// the exit stubs. retired is the number of guest instructions retired
// when leaving the block. It returns the code index where the stub
// region starts, or -1 to use the current end of code.
func (t *Translator) emitTerminator(e *emitter, bb *decodedBB, retired int) int {
	term := bb.terminator()
	if term == nil {
		// Length-capped block: fall through to the next guest address.
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitFallthrough, Retired: retired, GuestTarget: bb.next})
		return s
	}
	instEnd := bb.next // address after the terminator

	switch term.Op {
	case guest.OpHalt:
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitHalt, Retired: retired - 1, GuestTarget: bb.pcs[bb.term]})
		return s

	case guest.OpJmp:
		target, _ := branchTarget(term, instEnd)
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: target})
		return s

	case guest.OpJcc:
		target, _ := branchTarget(term, instEnd)
		takenL := e.newLabel()
		e.condBranch(term.Cond, true, takenL)
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitFallthrough, Retired: retired, GuestTarget: instEnd})
		e.define(takenL)
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: target})
		return s

	case guest.OpBcc:
		// Flagless compare-and-branch: one host branch over the pinned
		// registers replaces the condTest sequence.
		target, _ := branchTarget(term, instEnd)
		takenL := e.newLabel()
		e.cmpBranch(term.Cond, term.R1, term.R2, true, takenL)
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitFallthrough, Retired: retired, GuestTarget: instEnd})
		e.define(takenL)
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: target})
		return s

	case guest.OpJal:
		target, _ := branchTarget(term, instEnd)
		if e.r(term.R1) != host.RZero {
			e.loadImm(e.r(term.R1), instEnd) // link register
		}
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: target})
		return s

	case guest.OpJalr:
		// Target into sc0 per the indirect-exit ABI, computed before
		// the link write so jalr rd==rs1 reads the pre-link value.
		e.emit(host.Inst{Op: host.Addi, Rd: sc0, Rs1: e.r(term.R2), Imm: term.Imm})
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: sc0, Imm: -2})
		if e.r(term.R1) != host.RZero {
			e.loadImm(e.r(term.R1), instEnd)
		}
		e.emitIBTC(retired, t.cfg.EnableIBTC)
		return -1

	case guest.OpCallRel:
		target, _ := branchTarget(term, instEnd)
		t.emitPush(e, instEnd)
		s := len(e.code)
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: target})
		return s

	case guest.OpCallInd:
		// Read the target before pushing (the target register may be ESP).
		e.mov(sc3, e.r(term.R1))
		t.emitPush(e, instEnd)
		e.mov(sc0, sc3)
		e.emitIBTC(retired, t.cfg.EnableIBTC)
		return -1

	case guest.OpJmpInd:
		e.mov(sc0, e.r(term.R1))
		e.emitIBTC(retired, t.cfg.EnableIBTC)
		return -1

	case guest.OpRet:
		e.emit(host.Inst{Op: host.Add, Rd: sc1, Rs1: host.RMemBase, Rs2: e.r(guest.ESP)})
		e.emit(host.Inst{Op: host.Ld, Rd: sc0, Rs1: sc1})
		e.emit(host.Inst{Op: host.Addi, Rd: e.r(guest.ESP), Rs1: e.r(guest.ESP), Imm: 4})
		e.emitIBTC(retired, t.cfg.EnableIBTC)
		return -1
	}
	panic(fmt.Sprintf("tol: unexpected terminator %s", term.Op))
}

// emitPush emits a push of a constant (the return address of a call).
func (t *Translator) emitPush(e *emitter, value uint32) {
	e.loadImm(sc1, value)
	e.emit(host.Inst{Op: host.Addi, Rd: e.r(guest.ESP), Rs1: e.r(guest.ESP), Imm: -4})
	e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: host.RMemBase, Rs2: e.r(guest.ESP)})
	e.emit(host.Inst{Op: host.St, Rs1: sc0, Rs2: sc1})
}
