package tol

import (
	"errors"
	"fmt"

	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/timing"
)

// TransKind distinguishes basic-block translations from superblocks.
type TransKind uint8

// Translation kinds.
const (
	KindBB TransKind = iota
	KindSB
)

func (k TransKind) String() string {
	if k == KindBB {
		return "bb"
	}
	return "sb"
}

// ExitReason explains why control leaves a translation.
type ExitReason uint8

// Exit reasons.
const (
	ExitFallthrough ExitReason = iota // block end, static target
	ExitTaken                         // direct branch taken, static target
	ExitIndirect                      // IBTC miss — guest target in RAppS0
	ExitIBTCHit                       // IBTC hit jalr — leaves without TOL
	ExitPromote                       // BBM instrumentation crossed SBth
	ExitHalt                          // guest halt reached
	ExitSelfLoop                      // superblock loop back to own entry
)

var exitNames = [...]string{"fall", "taken", "indirect", "ibtc-hit", "promote", "halt", "selfloop"}

func (r ExitReason) String() string {
	if int(r) < len(exitNames) {
		return exitNames[r]
	}
	return "exit?"
}

// ExitInfo describes one exit site of a translation, keyed by the host
// PC of the exiting control transfer. Retired is how many guest
// instructions have architecturally completed when control leaves
// through this exit; the engine uses it for co-simulation and for the
// per-mode dynamic instruction accounting of Figure 5b.
type ExitInfo struct {
	Reason      ExitReason
	Retired     int
	GuestTarget uint32 // static guest target; 0 when dynamic
	Dynamic     bool   // target known only at run time
	Chained     bool   // patched to jump directly to another translation
}

// chainRef records one incoming patch into a translation: the source
// translation whose code was patched to jump here, the patched slot,
// and the original instruction to restore when this translation is
// evicted. exit is the chained exit descriptor of the source (nil for
// entry-redirect patches, whose synthetic exit the engine registers
// after patching and which is deleted again on unlink).
type chainRef struct {
	from *Translation
	pc   uint32
	orig host.Inst
	exit *ExitInfo
}

// Translation is one code-cache entry: a translated basic block or an
// optimized superblock.
type Translation struct {
	Kind       TransKind
	GuestEntry uint32
	GuestLen   int      // guest instructions covered (static)
	GuestPCs   []uint32 // guest PC of each covered instruction
	HostEntry  uint32
	HostEnd    uint32 // exclusive

	// Region boundaries for owner attribution: [HostEntry, BodyStart)
	// is TOL-owned instrumentation; [BodyStart, StubStart) is
	// application code; [StubStart, HostEnd) is TOL-owned exit glue.
	BodyStart uint32
	StubStart uint32

	Exits map[uint32]*ExitInfo // keyed by host PC of the exit branch

	// ProfSlot is the profile counter address for BBM instrumentation
	// (0 for superblocks).
	ProfSlot uint32

	// incoming lists the chain patches other translations hold into
	// this one; eviction restores them so no surviving code can jump
	// into freed cache space.
	incoming []chainRef

	// lastUse is the eviction-clock stamp of the most recent entry into
	// this translation (see CodeCache.Touch); the lru-translation
	// policy orders victims by it.
	lastUse uint64
}

// LastUse returns the eviction-clock stamp of the most recent entry
// into the translation. Placement itself counts as the first touch,
// so the stamp is always nonzero and unique per translation. Exposed
// for externally registered eviction policies.
func (tr *Translation) LastUse() uint64 { return tr.lastUse }

// OwnerComp returns the owner and component attribution for a host PC
// inside this translation.
func (tr *Translation) OwnerComp(pc uint32) (timing.Owner, timing.Component) {
	switch {
	case pc < tr.BodyStart:
		return timing.OwnerTOL, timing.CompBBM // profiling instrumentation
	case pc < tr.StubStart:
		return timing.OwnerApp, timing.CompApp
	default:
		return timing.OwnerTOL, timing.CompTOLOther // exit/transition glue
	}
}

// CacheConfig bounds the translation code cache. The zero value is the
// classic unbounded arena: translations accumulate until the
// architectural code-cache region fills, and nothing is ever evicted —
// the pre-characterization behaviour, kept cycle-identical.
type CacheConfig struct {
	// CapacityInsts bounds the cache to this many host instruction
	// slots (0 = unbounded). Bounded caches evict under pressure via
	// the configured Policy and the engine transparently retranslates
	// evicted code on re-entry.
	CapacityInsts int `json:",omitempty"`

	// Policy names the eviction policy consulted when a bounded cache
	// cannot fit a new translation: "flush-all" (the classic
	// co-designed-VM full flush, the default when empty), "fifo-region"
	// (circular region reclamation), or "lru-translation" (single
	// least-recently-entered victim). See RegisteredEvictionPolicies.
	Policy string `json:",omitempty"`
}

// MinCacheCapacityInsts is the smallest accepted bounded capacity.
// It does not guarantee that every translation fits — a flags-heavy
// full-length block can expand well past it — but a translation
// larger than the whole cache is not fatal: Alloc reports
// ErrTranslationTooLarge and the engine leaves that block
// interpreted (see Engine.translateBB), as a real TOL would.
const MinCacheCapacityInsts = 256

// Validate rejects degenerate cache bounds and unknown policy names.
func (cc *CacheConfig) Validate() error {
	if cc.CapacityInsts < 0 {
		return fmt.Errorf("tol: CacheConfig.CapacityInsts must be >= 0 (got %d)", cc.CapacityInsts)
	}
	if cc.CapacityInsts == 0 {
		if cc.Policy != "" {
			return fmt.Errorf("tol: cache policy %q requires CapacityInsts > 0 (the unbounded cache never evicts)", cc.Policy)
		}
		return nil
	}
	if cc.CapacityInsts < MinCacheCapacityInsts {
		return fmt.Errorf("tol: CacheConfig.CapacityInsts %d below minimum %d (one worst-case translation)",
			cc.CapacityInsts, MinCacheCapacityInsts)
	}
	if cc.CapacityInsts > int(archCapacityInsts) {
		return fmt.Errorf("tol: CacheConfig.CapacityInsts %d exceeds the architectural code-cache region (%d insts)",
			cc.CapacityInsts, archCapacityInsts)
	}
	if _, err := cc.NewEvictionPolicy(); err != nil {
		return err
	}
	return nil
}

// EvictEvent describes one eviction batch to the OnEvict observer.
type EvictEvent struct {
	// Victims are the unlinked translations, in policy order.
	Victims []*Translation
	// RestoredPCs are the host PCs of chain patches in surviving
	// translations that were repaired back to their exit stubs.
	RestoredPCs []uint32
	// Flush reports that no translation survived the batch (the cache
	// was reset to empty — always true for the flush-all policy).
	Flush bool
}

// CodeCache stores translated host code at simulated addresses in the
// code-cache region. It implements host.CodeStore for the functional
// CPU and supports patching for chaining.
//
// Unbounded (NewCodeCache), it is the append-only arena of the
// original infrastructure. Bounded (NewBoundedCodeCache), it becomes a
// managed resource: placements that do not fit consult the eviction
// policy, evicted translations are unlinked from every structure that
// can reach them (translation table, IBTC, chain patches in surviving
// code), and the freed extents are reused first-fit.
type CodeCache struct {
	insts []host.Inst
	// meta is the threaded-dispatch arena: for every placed instruction
	// slot, the precomputed timing.DynInst template (class, scoreboard
	// operands, branch/memory kind, owner and component attribution).
	// The engine's translated-execution loop copies meta[slot] and
	// patches only the per-execution MemAddr/Taken/Target fields, so
	// re-entering BBM/SBM code performs no per-instruction decoding or
	// attribution work. Maintained in lockstep with insts by PlaceAt,
	// Patch and Evict (chain restore).
	meta    []timing.DynInst
	top     uint32 // bump-allocation frontier (== len(insts))
	byEntry map[uint32]*Translation
	all     []*Translation // sorted by HostEntry

	// Bounded-cache management. policy == nil means unbounded.
	capacity uint32
	policy   EvictionPolicy
	free     []extent
	used     int
	peak     int

	// Lookup structures unlinked on eviction (set by Link).
	tt *TransTable
	ib *IBTC

	// useClock drives the lru-translation recency stamps.
	useClock uint64

	// OnEvict, when non-nil, observes every eviction batch after the
	// unlinking completed. The engine uses it to bill eviction work
	// through the cost model and to maintain its statistics.
	OnEvict func(EvictEvent)

	// Stats.
	BBCount int
	SBCount int
}

// extent is a free range of instruction slots, [start, end).
type extent struct {
	start, end uint32
}

// NewCodeCache returns an empty unbounded code cache.
func NewCodeCache() *CodeCache {
	// The arenas start small and double on demand: short runs stay
	// cheap to construct, long runs amortize the growth copies.
	return &CodeCache{
		insts:    make([]host.Inst, 0, 1<<12),
		meta:     make([]timing.DynInst, 0, 1<<12),
		byEntry:  make(map[uint32]*Translation),
		capacity: archCapacityInsts,
	}
}

// NewBoundedCodeCache returns an empty cache bounded per cfg that
// evicts through the given policy instance. The policy instance must
// not be shared between caches (policies may be stateful).
func NewBoundedCodeCache(cfg CacheConfig, policy EvictionPolicy) *CodeCache {
	c := NewCodeCache()
	if cfg.CapacityInsts > 0 {
		c.capacity = uint32(cfg.CapacityInsts)
		c.policy = policy
	}
	return c
}

// Link connects the cache to the lookup structures that hold
// references into it, so eviction can unlink them. A nil argument
// skips that structure (useful in unit tests).
func (c *CodeCache) Link(tt *TransTable, ib *IBTC) {
	c.tt, c.ib = tt, ib
}

// archCapacityInsts is the architectural code-cache region capacity in
// instructions — the hard bound of the unbounded cache and the ceiling
// of CacheConfig.CapacityInsts.
const archCapacityInsts = mem.CodeCacheSize / host.InstBytes

// Capacity returns the effective capacity in instruction slots.
func (c *CodeCache) Capacity() int { return int(c.capacity) }

// Bounded reports whether the cache evicts under pressure.
func (c *CodeCache) Bounded() bool { return c.policy != nil }

// PCOf converts an instruction slot index to its host PC.
func (c *CodeCache) PCOf(slot uint32) uint32 {
	return mem.CodeCacheBase + slot*host.InstBytes
}

// slotOf converts a host PC to a slot index.
func (c *CodeCache) slotOf(pc uint32) uint32 {
	return (pc - mem.CodeCacheBase) / host.InstBytes
}

// Contains reports whether pc falls inside the code-cache region.
func (c *CodeCache) Contains(pc uint32) bool {
	return pc >= mem.CodeCacheBase && pc < mem.CodeCacheBase+mem.CodeCacheSize
}

// rebuildMeta recomputes the dispatch template for one placed slot
// with the given owner/component attribution. Called whenever the
// instruction at the slot changes (placement, chain patch, chain
// restore on eviction).
func (c *CodeCache) rebuildMeta(slot uint32, owner timing.Owner, comp timing.Component) {
	d := &c.meta[slot]
	timing.TemplateFromHost(d, c.PCOf(slot), &c.insts[slot])
	d.Owner, d.Comp = owner, comp
}

// InstAt implements host.CodeStore.
func (c *CodeCache) InstAt(pc uint32) *host.Inst {
	if !c.Contains(pc) {
		return nil
	}
	slot := c.slotOf(pc)
	if slot >= uint32(len(c.insts)) {
		return nil
	}
	return &c.insts[slot]
}

// Alloc reserves n instruction slots and returns the host PC of the
// reservation, evicting through the configured policy when a bounded
// cache is full. Emitters seal their exit-stub offsets against the
// returned PC before handing the code to PlaceAt.
func (c *CodeCache) Alloc(n int) (uint32, error) {
	if n <= 0 {
		return 0, fmt.Errorf("tol: alloc of %d insts", n)
	}
	if uint32(n) > c.capacity {
		return 0, fmt.Errorf("%w: %d insts into %d", ErrTranslationTooLarge, n, c.capacity)
	}
	for {
		if slot, ok := c.takeFree(uint32(n)); ok {
			return c.PCOf(slot), nil
		}
		if c.top+uint32(n) <= c.capacity {
			slot := c.top
			c.top += uint32(n)
			c.insts = append(c.insts, make([]host.Inst, n)...)
			c.meta = append(c.meta, make([]timing.DynInst, n)...)
			return c.PCOf(slot), nil
		}
		if c.policy == nil {
			return 0, fmt.Errorf("tol: code cache full (%d insts)", len(c.insts))
		}
		victims := c.policy.Victims(c, n)
		if len(victims) == 0 {
			return 0, fmt.Errorf("tol: eviction policy %q freed nothing for %d insts (occupancy %d/%d)",
				c.policy.Name(), n, c.used, c.capacity)
		}
		if c.Evict(victims) == 0 {
			return 0, fmt.Errorf("tol: eviction policy %q returned only dead victims", c.policy.Name())
		}
	}
}

// takeFree carves n slots from the lowest-addressed free extent that
// fits (first-fit).
func (c *CodeCache) takeFree(n uint32) (uint32, bool) {
	for i := range c.free {
		e := &c.free[i]
		if e.end-e.start >= n {
			slot := e.start
			e.start += n
			if e.start == e.end {
				c.free = append(c.free[:i], c.free[i+1:]...)
			}
			return slot, true
		}
	}
	return 0, false
}

// addFree returns [start, end) to the free list, keeping it sorted and
// coalesced.
func (c *CodeCache) addFree(start, end uint32) {
	i := 0
	for i < len(c.free) && c.free[i].start < start {
		i++
	}
	c.free = append(c.free, extent{})
	copy(c.free[i+1:], c.free[i:])
	c.free[i] = extent{start, end}
	// Coalesce with the right neighbour, then the left.
	if i+1 < len(c.free) && c.free[i].end == c.free[i+1].start {
		c.free[i].end = c.free[i+1].end
		c.free = append(c.free[:i+1], c.free[i+2:]...)
	}
	if i > 0 && c.free[i-1].end == c.free[i].start {
		c.free[i-1].end = c.free[i].end
		c.free = append(c.free[:i], c.free[i+1:]...)
	}
}

// PlaceAt installs a translation's code at a PC previously returned by
// Alloc for exactly len(code) slots, fixing up its host addresses. The
// translation's HostEntry/BodyStart/StubStart/Exits must be expressed
// as offsets (in instructions) before placement; PlaceAt rewrites them
// to absolute PCs.
func (c *CodeCache) PlaceAt(base uint32, tr *Translation, code []host.Inst,
	bodyStartIdx, stubStartIdx int, exitsAtIdx map[int]*ExitInfo) {
	slot := c.slotOf(base)
	if int(slot)+len(code) > len(c.insts) {
		panic(fmt.Sprintf("tol: PlaceAt(%#x, %d insts) outside the allocated arena (%d slots)",
			base, len(code), len(c.insts)))
	}
	copy(c.insts[slot:], code)

	tr.HostEntry = base
	tr.HostEnd = base + uint32(len(code))*host.InstBytes
	tr.BodyStart = c.PCOf(slot + uint32(bodyStartIdx))
	tr.StubStart = c.PCOf(slot + uint32(stubStartIdx))
	for i := range code {
		s := slot + uint32(i)
		o, comp := tr.OwnerComp(c.PCOf(s))
		c.rebuildMeta(s, o, comp)
	}
	tr.Exits = make(map[uint32]*ExitInfo, len(exitsAtIdx))
	for idx, e := range exitsAtIdx {
		tr.Exits[c.PCOf(slot+uint32(idx))] = e
	}
	c.byEntry[tr.HostEntry] = tr
	c.insertSorted(tr)
	c.used += len(code)
	if c.used > c.peak {
		c.peak = c.used
	}
	c.Touch(tr)
	if tr.Kind == KindBB {
		c.BBCount++
	} else {
		c.SBCount++
	}
}

// insertSorted adds tr to the placement list, keeping it sorted by
// HostEntry so FindByPC can binary-search.
func (c *CodeCache) insertSorted(tr *Translation) {
	lo, hi := 0, len(c.all)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.all[mid].HostEntry < tr.HostEntry {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.all = append(c.all, nil)
	copy(c.all[lo+1:], c.all[lo:])
	c.all[lo] = tr
}

// Touch stamps a translation with the current eviction clock; the
// engine calls it on every entry so the lru-translation policy sees
// real recency. O(1), no effect on the modeled streams.
func (c *CodeCache) Touch(tr *Translation) {
	c.useClock++
	tr.lastUse = c.useClock
}

// Evict unlinks the given translations from the cache and from every
// structure that can reach them: their TransTable entries are deleted,
// IBTC lines caching their entry points are invalidated, and chain
// patches from surviving translations are restored to their original
// exit stubs. Freed slots are poisoned so any dangling jump faults in
// the functional CPU instead of executing stale code. Returns the
// number of translations actually evicted (victims no longer live are
// skipped).
func (c *CodeCache) Evict(victims []*Translation) int {
	var evicted []*Translation
	var ibtcRanges [][2]uint32
	for _, tr := range victims {
		if c.byEntry[tr.HostEntry] != tr {
			continue // already gone (duplicate or stale victim)
		}
		delete(c.byEntry, tr.HostEntry)
		c.removeSorted(tr)
		if c.tt != nil {
			c.tt.Delete(tr.GuestEntry, tr.HostEntry)
		}
		if c.ib != nil {
			ibtcRanges = append(ibtcRanges, [2]uint32{tr.HostEntry, tr.HostEnd})
		}
		lo, hi := c.slotOf(tr.HostEntry), c.slotOf(tr.HostEnd)
		for s := lo; s < hi; s++ {
			c.insts[s] = host.Inst{Op: host.NumOps} // poison: faults on execution
			c.meta[s] = timing.DynInst{}
		}
		c.addFree(lo, hi)
		c.used -= int(hi - lo)
		if tr.Kind == KindBB {
			c.BBCount--
		} else {
			c.SBCount--
		}
		evicted = append(evicted, tr)
	}
	if len(evicted) == 0 {
		return 0
	}
	if c.ib != nil {
		c.ib.InvalidateHostRanges(ibtcRanges) // one table pass per batch
	}
	// Repair chain patches from survivors into the victims. Victims are
	// already unindexed, so refs whose source died (in this batch or
	// earlier) are recognized and skipped.
	var restored []uint32
	for _, tr := range evicted {
		for _, ref := range tr.incoming {
			if c.byEntry[ref.from.HostEntry] != ref.from {
				continue
			}
			rslot := c.slotOf(ref.pc)
			c.insts[rslot] = ref.orig
			o, comp := ref.from.OwnerComp(ref.pc)
			c.rebuildMeta(rslot, o, comp)
			if ref.exit != nil {
				ref.exit.Chained = false
			} else {
				// Entry-redirect patch (BBM→SBM promotion): drop the
				// synthetic exit the engine registered on it.
				delete(ref.from.Exits, ref.pc)
			}
			restored = append(restored, ref.pc)
		}
		tr.incoming = nil
	}
	flush := len(c.all) == 0
	if flush {
		// Nothing survived: reset the arena so the bump frontier
		// restarts at the base (the classic full-flush shape).
		c.insts = c.insts[:0]
		c.meta = c.meta[:0]
		c.top = 0
		c.free = nil
	}
	if c.OnEvict != nil {
		c.OnEvict(EvictEvent{Victims: evicted, RestoredPCs: restored, Flush: flush})
	}
	return len(evicted)
}

// removeSorted deletes tr from the sorted placement list.
func (c *CodeCache) removeSorted(tr *Translation) {
	lo, hi := 0, len(c.all)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.all[mid].HostEntry < tr.HostEntry {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.all) && c.all[lo] == tr {
		c.all = append(c.all[:lo], c.all[lo+1:]...)
	}
}

// EntryAt returns the translation whose entry point is pc, or nil.
func (c *CodeCache) EntryAt(pc uint32) *Translation {
	return c.byEntry[pc]
}

// FindByPC returns the translation containing pc, or nil, by
// binary-searching the address-sorted placement list.
func (c *CodeCache) FindByPC(pc uint32) *Translation {
	if !c.Contains(pc) {
		return nil
	}
	lo, hi := 0, len(c.all)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.all[mid].HostEnd <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.all) && pc >= c.all[lo].HostEntry && pc < c.all[lo].HostEnd {
		return c.all[lo]
	}
	return nil
}

// ErrUnplacedPatch reports a Patch against a slot that no placed
// translation owns — patching there would scribble on freed or
// never-allocated cache space.
var ErrUnplacedPatch = errors.New("tol: patch target not inside a placed translation")

// ErrTranslationTooLarge reports an Alloc request larger than the
// whole cache capacity, which no amount of eviction can satisfy. The
// engine treats it as non-fatal: the block stays interpreted.
var ErrTranslationTooLarge = errors.New("tol: translation exceeds code cache capacity")

// Patch replaces the instruction at host PC with a direct jump to
// target (chaining). pc must lie inside a live translation
// (ErrUnplacedPatch otherwise). When target is the entry of another
// live translation, the patch is recorded on it so eviction can
// restore the original instruction.
func (c *CodeCache) Patch(pc uint32, target uint32) error {
	src := c.FindByPC(pc)
	if src == nil {
		return fmt.Errorf("%w: %#x", ErrUnplacedPatch, pc)
	}
	slot := c.slotOf(pc)
	orig := c.insts[slot]
	// jal r0, offset — offset relative to the next instruction.
	off := int32(target) - int32(pc+host.InstBytes)
	c.insts[slot] = host.Inst{Op: host.Jal, Rd: host.RZero, Imm: off}
	o, comp := src.OwnerComp(pc)
	c.rebuildMeta(slot, o, comp)
	if dst := c.byEntry[target]; dst != nil && dst != src {
		dst.incoming = append(dst.incoming, chainRef{
			from: src, pc: pc, orig: orig, exit: src.Exits[pc],
		})
	}
	return nil
}

// UsedInsts returns the number of occupied instruction slots.
func (c *CodeCache) UsedInsts() int { return c.used }

// OccupancyPeak returns the high-water mark of occupied slots.
func (c *CodeCache) OccupancyPeak() int { return c.peak }

// Translations returns all placed translations in address order. The
// returned slice is the cache's own index — callers must not mutate
// it.
func (c *CodeCache) Translations() []*Translation { return c.all }
