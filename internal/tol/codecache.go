package tol

import (
	"fmt"

	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/timing"
)

// TransKind distinguishes basic-block translations from superblocks.
type TransKind uint8

// Translation kinds.
const (
	KindBB TransKind = iota
	KindSB
)

func (k TransKind) String() string {
	if k == KindBB {
		return "bb"
	}
	return "sb"
}

// ExitReason explains why control leaves a translation.
type ExitReason uint8

// Exit reasons.
const (
	ExitFallthrough ExitReason = iota // block end, static target
	ExitTaken                         // direct branch taken, static target
	ExitIndirect                      // IBTC miss — guest target in RAppS0
	ExitIBTCHit                       // IBTC hit jalr — leaves without TOL
	ExitPromote                       // BBM instrumentation crossed SBth
	ExitHalt                          // guest halt reached
	ExitSelfLoop                      // superblock loop back to own entry
)

var exitNames = [...]string{"fall", "taken", "indirect", "ibtc-hit", "promote", "halt", "selfloop"}

func (r ExitReason) String() string {
	if int(r) < len(exitNames) {
		return exitNames[r]
	}
	return "exit?"
}

// ExitInfo describes one exit site of a translation, keyed by the host
// PC of the exiting control transfer. Retired is how many guest
// instructions have architecturally completed when control leaves
// through this exit; the engine uses it for co-simulation and for the
// per-mode dynamic instruction accounting of Figure 5b.
type ExitInfo struct {
	Reason      ExitReason
	Retired     int
	GuestTarget uint32 // static guest target; 0 when dynamic
	Dynamic     bool   // target known only at run time
	Chained     bool   // patched to jump directly to another translation
}

// Translation is one code-cache entry: a translated basic block or an
// optimized superblock.
type Translation struct {
	Kind       TransKind
	GuestEntry uint32
	GuestLen   int      // guest instructions covered (static)
	GuestPCs   []uint32 // guest PC of each covered instruction
	HostEntry  uint32
	HostEnd    uint32 // exclusive

	// Region boundaries for owner attribution: [HostEntry, BodyStart)
	// is TOL-owned instrumentation; [BodyStart, StubStart) is
	// application code; [StubStart, HostEnd) is TOL-owned exit glue.
	BodyStart uint32
	StubStart uint32

	Exits map[uint32]*ExitInfo // keyed by host PC of the exit branch

	// ProfSlot is the profile counter address for BBM instrumentation
	// (0 for superblocks).
	ProfSlot uint32
}

// OwnerComp returns the owner and component attribution for a host PC
// inside this translation.
func (tr *Translation) OwnerComp(pc uint32) (timing.Owner, timing.Component) {
	switch {
	case pc < tr.BodyStart:
		return timing.OwnerTOL, timing.CompBBM // profiling instrumentation
	case pc < tr.StubStart:
		return timing.OwnerApp, timing.CompApp
	default:
		return timing.OwnerTOL, timing.CompTOLOther // exit/transition glue
	}
}

// CodeCache stores translated host code at simulated addresses in the
// code-cache region. It implements host.CodeStore for the functional
// CPU and supports patching for chaining.
type CodeCache struct {
	insts   []host.Inst
	top     uint32 // next free slot index
	byEntry map[uint32]*Translation
	all     []*Translation

	// Stats.
	BBCount int
	SBCount int
}

// NewCodeCache returns an empty code cache.
func NewCodeCache() *CodeCache {
	return &CodeCache{
		insts:   make([]host.Inst, 0, 1<<16),
		byEntry: make(map[uint32]*Translation),
	}
}

// capacityInsts is the code-cache capacity in instructions.
const capacityInsts = mem.CodeCacheSize / host.InstBytes

// PCOf converts an instruction slot index to its host PC.
func (c *CodeCache) PCOf(slot uint32) uint32 {
	return mem.CodeCacheBase + slot*host.InstBytes
}

// NextPC returns the host PC at which the next placed translation will
// begin; emitters seal their exit-stub offsets against it.
func (c *CodeCache) NextPC() uint32 { return c.PCOf(c.top) }

// slotOf converts a host PC to a slot index.
func (c *CodeCache) slotOf(pc uint32) uint32 {
	return (pc - mem.CodeCacheBase) / host.InstBytes
}

// Contains reports whether pc falls inside the code-cache region.
func (c *CodeCache) Contains(pc uint32) bool {
	return pc >= mem.CodeCacheBase && pc < mem.CodeCacheBase+mem.CodeCacheSize
}

// InstAt implements host.CodeStore.
func (c *CodeCache) InstAt(pc uint32) *host.Inst {
	if !c.Contains(pc) {
		return nil
	}
	slot := c.slotOf(pc)
	if slot >= uint32(len(c.insts)) {
		return nil
	}
	return &c.insts[slot]
}

// Place appends a translation's code to the cache, fixing up its host
// addresses. The translation's HostEntry/BodyStart/StubStart/Exits must
// be expressed as offsets (in instructions) before placement; Place
// rewrites them to absolute PCs.
func (c *CodeCache) Place(tr *Translation, code []host.Inst,
	bodyStartIdx, stubStartIdx int, exitsAtIdx map[int]*ExitInfo) error {
	if uint32(len(c.insts))+uint32(len(code)) > capacityInsts {
		return fmt.Errorf("tol: code cache full (%d insts)", len(c.insts))
	}
	base := c.top
	c.insts = append(c.insts, code...)
	c.top += uint32(len(code))

	tr.HostEntry = c.PCOf(base)
	tr.HostEnd = c.PCOf(c.top)
	tr.BodyStart = c.PCOf(base + uint32(bodyStartIdx))
	tr.StubStart = c.PCOf(base + uint32(stubStartIdx))
	tr.Exits = make(map[uint32]*ExitInfo, len(exitsAtIdx))
	for idx, e := range exitsAtIdx {
		tr.Exits[c.PCOf(base+uint32(idx))] = e
	}
	c.byEntry[tr.HostEntry] = tr
	c.all = append(c.all, tr)
	if tr.Kind == KindBB {
		c.BBCount++
	} else {
		c.SBCount++
	}
	return nil
}

// EntryAt returns the translation whose entry point is pc, or nil.
func (c *CodeCache) EntryAt(pc uint32) *Translation {
	return c.byEntry[pc]
}

// FindByPC returns the translation containing pc, or nil. Linear scan
// over placements is avoided by exploiting contiguous allocation: we
// binary-search the sorted placement list.
func (c *CodeCache) FindByPC(pc uint32) *Translation {
	if !c.Contains(pc) {
		return nil
	}
	lo, hi := 0, len(c.all)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.all[mid].HostEnd <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.all) && pc >= c.all[lo].HostEntry && pc < c.all[lo].HostEnd {
		return c.all[lo]
	}
	return nil
}

// Patch replaces the instruction at host PC with a direct jump to
// target (chaining). It returns an error if pc is not a valid slot.
func (c *CodeCache) Patch(pc uint32, target uint32) error {
	slot := c.slotOf(pc)
	if !c.Contains(pc) || slot >= uint32(len(c.insts)) {
		return fmt.Errorf("tol: patch outside code cache: %#x", pc)
	}
	// jal r0, offset — offset relative to the next instruction.
	off := int32(target) - int32(pc+host.InstBytes)
	c.insts[slot] = host.Inst{Op: host.Jal, Rd: host.RZero, Imm: off}
	return nil
}

// UsedInsts returns the number of occupied instruction slots.
func (c *CodeCache) UsedInsts() int { return len(c.insts) }

// Translations returns all placed translations in placement order.
func (c *CodeCache) Translations() []*Translation { return c.all }
