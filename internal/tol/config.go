// Package tol implements the Translation Optimization Layer (TOL) of
// the co-designed processor — the paper's object of study. TOL has
// three execution modes:
//
//   - IM: interpretation mode. Guest instructions are decoded and
//     executed one at a time against the co-design component's guest
//     state.
//   - BBM: basic-block translation mode. When a branch target executes
//     more than IM/BBth times, its basic block is translated to host
//     code, stored in the code cache, and instrumented with profiling
//     counters.
//   - SBM: superblock and optimization mode. When a basic block
//     executes more than BB/SBth times, the profile guides formation of
//     a superblock, which is optimized by the configurable pass
//     pipeline and placed in the code cache.
//
// The SBM optimizer is a pipeline of registered passes (see Pass,
// ParsePipeline and RegisteredPasses). The registered passes are:
//
//   - constprop: copy and constant propagation with constant folding
//     (including folded flag results and constant side exits),
//   - dce: dead code elimination (unused register writes and dead flag
//     definitions between side exits),
//   - rle: redundant-load elimination with register allocation
//     (repeated loads of one location are cached in the allocatable
//     host registers r46..r63),
//   - sched: list instruction scheduling on the emitted host code
//     (sched.go).
//
// The default (O2) pipeline runs all four in that order; Config.Passes
// and the O0–O3 presets select alternatives. A doc test
// (TestPackageDocListsRegisteredPasses) keeps this list in sync with
// the registry.
//
// Tier promotion is likewise pluggable: a PromotionPolicy (the paper's
// fixed thresholds by default, or the adaptive back-off policy)
// decides when interpreted code is translated and when translated
// blocks are promoted.
//
// Translations are connected by chaining (direct-branch patching) and
// indirect branches probe an inline Indirect Branch Translation Cache
// (IBTC); both mechanisms avoid falling back to TOL.
//
// The code cache holding the translations is a managed resource: left
// unbounded (the default) it only ever grows, but Config.Cache can
// bound it, in which case an eviction policy (flush-all, fifo-region
// or lru-translation — see EvictionPolicy and
// RegisteredEvictionPolicies) selects victims under pressure. Eviction
// unlinks a translation everywhere it is reachable — translation
// table, IBTC lines, and chain patches in surviving code — and the
// engine transparently retranslates on re-entry, counting the
// lifecycle churn in Stats (Evictions, Retranslations, FlushCount,
// CacheOccupancyPeak).
//
// TOL's own work — interpreting, translating, optimizing, looking up
// the code cache, chaining — is rendered into host instruction streams
// by the cost model (cost.go) with real simulated addresses, so the
// timing simulator observes TOL exactly as the paper's infrastructure
// does: as a software layer competing with the application for
// microarchitectural resources.
package tol

import (
	"fmt"
	"strings"
)

// Config controls the TOL policies.
type Config struct {
	// BBThreshold is IM/BBth: interpretations of a branch target before
	// its basic block is translated. The paper uses 5. It parameterizes
	// the configured promotion policy (see Promotion).
	BBThreshold int

	// SBThreshold is BB/SBth: executions of a translated basic block
	// before it is promoted to a superblock. The paper uses 10K at a 4B
	// instruction budget; the scaled default here preserves the ratio
	// between repetition and threshold at the smaller default budgets.
	// It parameterizes the configured promotion policy.
	SBThreshold int

	// Promotion selects the tier-promotion policy consulted by the
	// engine and compiled into the BBM instrumentation stubs: "fixed"
	// (the paper's two-threshold policy, the default when empty) or
	// "adaptive" (threshold back-off as superblocks accumulate). See
	// RegisteredPromotionPolicies.
	Promotion string `json:",omitempty"`

	// Passes selects the SBM optimization pipeline as a comma-separated
	// list of registered pass names (e.g. "constprop,dce,rle,sched").
	// Empty selects the OptLevel preset; the sentinel "none" is the
	// explicitly empty pipeline and is valid only with EnableSBM=false.
	Passes string `json:",omitempty"`

	// OptLevel selects a preset pipeline ("O0".."O3") when Passes is
	// empty. Empty means "O2", the paper's full optimizer — so Config
	// literals predating the pipeline API keep their behaviour.
	OptLevel string `json:",omitempty"`

	// MaxSBBlocks and MaxSBGuestInsts bound superblock formation.
	MaxSBBlocks     int
	MaxSBGuestInsts int

	// Cache bounds the translation code cache and selects the eviction
	// policy consulted under pressure (see CacheConfig and
	// RegisteredEvictionPolicies). The zero value is the unbounded
	// cache: no eviction ever happens and behaviour is cycle-identical
	// to the pre-bounded infrastructure.
	Cache CacheConfig

	// Cosim enables continuous co-simulation: an authoritative guest
	// emulator runs in lockstep and architectural state is compared at
	// every TOL transition and translation boundary.
	Cosim bool

	// Feature switches for ablation studies.
	EnableSBM      bool // disable to stop at BBM
	EnableChaining bool // disable to transition to TOL at every block end
	EnableIBTC     bool // disable to make every indirect branch a TOL call

	// Fault injects a named, deliberate translator bug (see Faults) for
	// mutation-testing the differential fuzzing oracle: the injected
	// miscompilation must be caught by co-simulation. It participates in
	// the JSON form (and therefore in memo-cache keys), so faulted and
	// clean runs never alias. Never set outside verification runs.
	Fault string `json:",omitempty"`

	// MaxGuestInsts aborts runaway guest executions (0 = no limit).
	MaxGuestInsts uint64
}

// DefaultConfig returns the paper's thresholds scaled per DESIGN.md
// (IM/BBth = 5 as in the paper; BB/SBth scaled to the default workload
// sizes), with all features enabled and the default (O2) pipeline and
// fixed promotion policy.
func DefaultConfig() Config {
	return Config{
		BBThreshold:     5,
		SBThreshold:     300,
		MaxSBBlocks:     16,
		MaxSBGuestInsts: 200,
		Cosim:           true,
		EnableSBM:       true,
		EnableChaining:  true,
		EnableIBTC:      true,
		MaxGuestInsts:   0,
	}
}

// PaperConfig returns the paper's exact thresholds (IM/BBth = 5,
// BB/SBth = 10K), appropriate for multi-billion-instruction runs.
func PaperConfig() Config {
	c := DefaultConfig()
	c.SBThreshold = 10_000
	return c
}

// Validate rejects configurations that would fail deep inside a run
// (or silently simulate garbage): negative thresholds, degenerate
// superblock bounds, unknown pass or policy names, and an empty
// optimization pipeline with SBM enabled. The darco controller calls
// it before every run so bad configs fail fast with a clear error.
func (c *Config) Validate() error {
	if c.BBThreshold < 0 {
		return fmt.Errorf("tol: BBThreshold must be >= 0 (got %d)", c.BBThreshold)
	}
	if c.SBThreshold < 0 {
		return fmt.Errorf("tol: SBThreshold must be >= 0 (got %d)", c.SBThreshold)
	}
	if c.EnableSBM {
		if c.MaxSBBlocks < 1 {
			return fmt.Errorf("tol: MaxSBBlocks must be >= 1 when SBM is enabled (got %d)", c.MaxSBBlocks)
		}
		if c.MaxSBGuestInsts < 1 {
			return fmt.Errorf("tol: MaxSBGuestInsts must be >= 1 when SBM is enabled (got %d)", c.MaxSBGuestInsts)
		}
	}
	pipeline, err := c.Pipeline()
	if err != nil {
		return err
	}
	if c.EnableSBM && len(pipeline) == 0 {
		return fmt.Errorf("tol: empty optimization pipeline with SBM enabled; disable SBM (ApplyOptLevel(cfg, 0) does both)")
	}
	if _, err := c.NewPromotionPolicy(); err != nil {
		return err
	}
	if !validFault(c.Fault) {
		return fmt.Errorf("tol: unknown fault %q (registered: %s)", c.Fault, strings.Join(Faults(), ", "))
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	return nil
}
