// Package tol implements the Translation Optimization Layer (TOL) of
// the co-designed processor — the paper's object of study. TOL has
// three execution modes:
//
//   - IM: interpretation mode. Guest instructions are decoded and
//     executed one at a time against the co-design component's guest
//     state.
//   - BBM: basic-block translation mode. When a branch target executes
//     more than IM/BBth times, its basic block is translated to host
//     code, stored in the code cache, and instrumented with profiling
//     counters.
//   - SBM: superblock and optimization mode. When a basic block
//     executes more than BB/SBth times, the profile guides formation of
//     a superblock, which is aggressively optimized (copy/constant
//     propagation, constant folding, redundant-load elimination with
//     register allocation, dead code elimination, and instruction
//     scheduling) and placed in the code cache.
//
// Translations are connected by chaining (direct-branch patching) and
// indirect branches probe an inline Indirect Branch Translation Cache
// (IBTC); both mechanisms avoid falling back to TOL.
//
// TOL's own work — interpreting, translating, optimizing, looking up
// the code cache, chaining — is rendered into host instruction streams
// by the cost model (cost.go) with real simulated addresses, so the
// timing simulator observes TOL exactly as the paper's infrastructure
// does: as a software layer competing with the application for
// microarchitectural resources.
package tol

// Config controls the TOL policies.
type Config struct {
	// BBThreshold is IM/BBth: interpretations of a branch target before
	// its basic block is translated. The paper uses 5.
	BBThreshold int

	// SBThreshold is BB/SBth: executions of a translated basic block
	// before it is promoted to a superblock. The paper uses 10K at a 4B
	// instruction budget; the scaled default here preserves the ratio
	// between repetition and threshold at the smaller default budgets.
	SBThreshold int

	// MaxSBBlocks and MaxSBGuestInsts bound superblock formation.
	MaxSBBlocks     int
	MaxSBGuestInsts int

	// Cosim enables continuous co-simulation: an authoritative guest
	// emulator runs in lockstep and architectural state is compared at
	// every TOL transition and translation boundary.
	Cosim bool

	// Feature switches for ablation studies.
	EnableSBM      bool // disable to stop at BBM
	EnableChaining bool // disable to transition to TOL at every block end
	EnableIBTC     bool // disable to make every indirect branch a TOL call

	// MaxGuestInsts aborts runaway guest executions (0 = no limit).
	MaxGuestInsts uint64
}

// DefaultConfig returns the paper's thresholds scaled per DESIGN.md
// (IM/BBth = 5 as in the paper; BB/SBth scaled to the default workload
// sizes), with all features enabled.
func DefaultConfig() Config {
	return Config{
		BBThreshold:     5,
		SBThreshold:     300,
		MaxSBBlocks:     16,
		MaxSBGuestInsts: 200,
		Cosim:           true,
		EnableSBM:       true,
		EnableChaining:  true,
		EnableIBTC:      true,
		MaxGuestInsts:   0,
	}
}

// PaperConfig returns the paper's exact thresholds (IM/BBth = 5,
// BB/SBth = 10K), appropriate for multi-billion-instruction runs.
func PaperConfig() Config {
	c := DefaultConfig()
	c.SBThreshold = 10_000
	return c
}
