package tol

import (
	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/timing"
)

// The cost model renders TOL's own execution — interpreting,
// translating, optimizing, code cache lookups, chaining, transitions —
// into dynamic host-instruction streams for the timing simulator.
// Streams carry real simulated addresses: interpreter fetches load the
// actual guest code bytes through the memory window, code cache
// lookups load the actual translation-table slots probed, the
// translator stores to the actual code-cache locations it fills, and
// the optimizer walks the IR buffer region. TOL therefore competes for
// the data cache, instruction cache and branch predictor exactly the
// way the paper's software layer does.
//
// Per-activity instruction budgets (tuned to land in the ranges the
// paper reports — e.g. interpretation costing tens of host
// instructions per guest instruction, indirect-branch servicing "in
// the order of tens of RISC instructions", SBM an order of magnitude
// above BBM per instruction):
const (
	costDispatchLen   = 5 // dispatch loop per interpreted instruction
	costHandlerBase   = 5 // minimum handler body
	costHandlerFlags  = 5 // extra when the op writes EFLAGS
	costHandlerMem    = 3 // extra address computation for memory ops
	costHandlerFP     = 3 // extra for FP ops
	costHandlerBranch = 5 // extra next-EIP handling for branches
	costIMTargetCheck = 3 // quick translated-target check per IM branch

	costLookupHash  = 5 // hash computation before probing
	costLookupProbe = 3 // per probe: load + compare + branch
	costLookupTail  = 3

	costTransitionLen = 14 // translated code -> TOL glue (TOL others)
	costChainALU      = 9  // patch computation around the code store
	costIBTCFillALU   = 6

	costEvictFixed    = 28 // eviction entry/exit bookkeeping
	costEvictPerTrans = 10 // per-victim descriptor walk + table clear ALU

	costBBMPerGuestInst = 26 // decode + IR + emit ALU work per guest inst
	costBBMPerHostInst  = 4  // per emitted host instruction (incl. store)
	costBBMFixed        = 90

	costSBMPerGuestInst = 70 // trace build + IR work per guest inst
	costSBMPerPassVisit = 11 // per optimization-pass instruction visit
	costSBMPerHostInst  = 9  // per emitted host instruction
	costSBMFixed        = 320
)

// costEmitter builds TOL-owned DynInst bursts. It keeps a rotating
// register window so the generated streams have realistic dependency
// distance (ILP ≈ 2 between cache events).
type costEmitter struct {
	out     *dynQueue
	regRot  uint8
	prevDst uint8
}

func newCostEmitter(q *dynQueue) *costEmitter {
	return &costEmitter{out: q, prevDst: timing.RegNone}
}

// rot returns the next destination register (TOL half, r1..r12).
func (c *costEmitter) rot() uint8 {
	c.regRot++
	if c.regRot > 12 {
		c.regRot = 1
	}
	return c.regRot
}

// alu appends one simple-int ALU instruction at pc. Every other
// instruction depends on its predecessor, which yields a realistic
// ILP between memory events.
func (c *costEmitter) alu(comp timing.Component, pc uint32) uint32 {
	d := timing.DynInst{
		PC: pc, Class: host.ClassSimpleInt, Owner: timing.OwnerTOL, Comp: comp,
		Dst: c.rot(), Src1: timing.RegNone, Src2: timing.RegNone,
	}
	if c.regRot%2 == 0 {
		d.Src1 = c.prevDst
	}
	c.prevDst = d.Dst
	c.out.push(d)
	return pc + host.InstBytes
}

// aluN appends n ALU instructions starting at pc.
func (c *costEmitter) aluN(comp timing.Component, pc uint32, n int) uint32 {
	for i := 0; i < n; i++ {
		pc = c.alu(comp, pc)
	}
	return pc
}

// load appends a load at pc from addr; the loaded value feeds the next
// ALU instruction through the rotation.
func (c *costEmitter) load(comp timing.Component, pc, addr uint32) uint32 {
	d := timing.DynInst{
		PC: pc, Class: host.ClassMem, Owner: timing.OwnerTOL, Comp: comp,
		Dst: c.rot(), Src1: timing.RegNone, Src2: timing.RegNone,
		IsLoad: true, MemAddr: addr,
	}
	c.prevDst = d.Dst
	c.out.push(d)
	return pc + host.InstBytes
}

// store appends a store at pc to addr.
func (c *costEmitter) store(comp timing.Component, pc, addr uint32) uint32 {
	d := timing.DynInst{
		PC: pc, Class: host.ClassMem, Owner: timing.OwnerTOL, Comp: comp,
		Dst: timing.RegNone, Src1: c.prevDst, Src2: timing.RegNone,
		IsStore: true, MemAddr: addr,
	}
	c.out.push(d)
	return pc + host.InstBytes
}

// branch appends a direct conditional branch at pc.
func (c *costEmitter) branch(comp timing.Component, pc uint32, taken bool, target uint32) uint32 {
	c.out.push(timing.DynInst{
		PC: pc, Class: host.ClassSimpleInt, Owner: timing.OwnerTOL, Comp: comp,
		Dst: timing.RegNone, Src1: c.prevDst, Src2: timing.RegNone,
		IsBranch: true, IsCond: true, Taken: taken, Target: target,
	})
	if taken {
		return target
	}
	return pc + host.InstBytes
}

// indirect appends an indirect jump at pc to target.
func (c *costEmitter) indirect(comp timing.Component, pc, target uint32) uint32 {
	c.out.push(timing.DynInst{
		PC: pc, Class: host.ClassSimpleInt, Owner: timing.OwnerTOL, Comp: comp,
		Dst: timing.RegNone, Src1: c.prevDst, Src2: timing.RegNone,
		IsBranch: true, IsIndirect: true, Taken: true, Target: target,
	})
	return target
}

// InterpStep emits the interpretation of one guest instruction: the
// dispatch loop (guest code fetch as data loads, dispatch-table load,
// indirect jump to the handler), the opcode handler body, the guest
// instruction's own data access if any, and the jump back to dispatch.
func (c *costEmitter) InterpStep(res *guest.StepResult, eip uint32) {
	in := &res.Inst
	pc := dispatchText
	// Fetch the guest instruction bytes (data loads through the window).
	pc = c.load(timing.CompIM, pc, mem.GuestToHost(eip))
	if in.Size > 4 {
		pc = c.load(timing.CompIM, pc, mem.GuestToHost(eip+4))
	}
	// Dispatch-table load and indirect jump to the handler.
	pc = c.load(timing.CompIM, pc, mem.DispatchTableBase+uint32(in.Op)*4)
	pc = c.aluN(timing.CompIM, pc, costDispatchLen-3)
	handler := interpHandlerText(uint8(in.Op))
	pc = c.indirect(timing.CompIM, pc, handler)

	// Handler body.
	n := costHandlerBase
	if in.WritesFlags() {
		n += costHandlerFlags
	}
	if in.IsMemAccess() {
		n += costHandlerMem
	}
	if in.IsFP() {
		n += costHandlerFP
	}
	if in.IsBranch() {
		n += costHandlerBranch
	}
	pc = c.aluN(timing.CompIM, pc, n)
	// The emulated instruction's own memory access.
	if res.IsLoad {
		pc = c.load(timing.CompIM, pc, mem.GuestToHost(res.MemAddr))
	} else if res.IsStore {
		pc = c.store(timing.CompIM, pc, mem.GuestToHost(res.MemAddr))
	}
	// Back to the dispatch loop.
	c.indirect(timing.CompIM, pc, dispatchText)
}

// IMProfile emits the interpreter-side branch-target bookkeeping:
// counter load/increment/store at the target's profile slot plus the
// quick translated-target check.
func (c *costEmitter) IMProfile(profAddr uint32, probe uint32) {
	pc := dispatchText + 0x40
	pc = c.load(timing.CompIM, pc, profAddr)
	pc = c.alu(timing.CompIM, pc)
	pc = c.store(timing.CompIM, pc, profAddr)
	pc = c.aluN(timing.CompIM, pc, costIMTargetCheck)
	c.load(timing.CompCodeCacheLookup, lookupText, transSlotAddr(probe))
}

// Lookup emits a full code cache lookup over the given probed slots.
// When the lookup succeeds, the translation descriptor of the found
// entry is read as well (three fields across its metadata record) —
// the data-intensive traversal the paper identifies.
func (c *costEmitter) Lookup(probes []uint32, found bool) {
	pc := lookupText
	pc = c.aluN(timing.CompCodeCacheLookup, pc, costLookupHash)
	var hit uint32
	for i, slot := range probes {
		pc = c.load(timing.CompCodeCacheLookup, pc, transSlotAddr(slot))
		pc = c.alu(timing.CompCodeCacheLookup, pc)
		last := i == len(probes)-1
		pc = c.branch(timing.CompCodeCacheLookup, pc, last, pc+3*host.InstBytes)
		hit = slot
	}
	if found {
		desc := descAddr(transSlotAddr(hit))
		pc = c.load(timing.CompCodeCacheLookup, pc, desc)
		pc = c.load(timing.CompCodeCacheLookup, pc, desc+12)
		pc = c.load(timing.CompCodeCacheLookup, pc, desc+24)
	}
	c.aluN(timing.CompCodeCacheLookup, pc, costLookupTail)
}

// Transition emits the translated-code-to-TOL transition glue
// (context handling, exit-descriptor decoding) attributed to "TOL
// others". exitPC selects which exit descriptor is read, so distinct
// exits touch distinct metadata lines — the data-intensive transition
// behaviour behind the paper's perlbench analysis.
func (c *costEmitter) Transition(exitPC uint32) {
	pc := dispatchText + 0x80
	pc = c.load(timing.CompTOLOther, pc, mem.TOLStackBase-16)
	pc = c.load(timing.CompTOLOther, pc, mem.TOLStackBase-48)
	// Exit descriptor block: three fields across the descriptor region.
	desc := descAddr(exitPC)
	pc = c.load(timing.CompTOLOther, pc, desc)
	pc = c.load(timing.CompTOLOther, pc, desc+8)
	pc = c.load(timing.CompTOLOther, pc, desc+16)
	pc = c.aluN(timing.CompTOLOther, pc, costTransitionLen-6)
	pc = c.store(timing.CompTOLOther, pc, mem.TOLStackBase-16)
	pc = c.store(timing.CompTOLOther, pc, desc+24)
	c.indirect(timing.CompTOLOther, pc, dispatchText)
}

// descAddr maps an exit host PC to its 32-byte exit-descriptor record
// in the IR-buffer/metadata region.
func descAddr(exitPC uint32) uint32 {
	return mem.IRBufBase + 0x8_0000 + (exitPC>>2)%0xFFF0*32
}

// ResumeJump emits the dispatch loop's indirect jump into the code
// cache when TOL hands control back to a translation — a varying-target
// branch that stresses the BTB exactly like the translated code's own
// indirect jumps do.
func (c *costEmitter) ResumeJump(hostEntry uint32) {
	pc := dispatchText + 0xa0
	pc = c.alu(timing.CompTOLOther, pc)
	c.indirect(timing.CompTOLOther, pc, hostEntry)
}

// Chain emits a chaining operation: reading and patching the exit
// branch at patchPC in the code cache.
func (c *costEmitter) Chain(patchPC uint32) {
	pc := chainText
	pc = c.aluN(timing.CompChaining, pc, costChainALU/2)
	pc = c.load(timing.CompChaining, pc, patchPC)
	pc = c.aluN(timing.CompChaining, pc, costChainALU-costChainALU/2)
	c.store(timing.CompChaining, pc, patchPC)
}

// Evict emits the cost of one code-cache eviction batch, attributed to
// "TOL others" like the rest of the cache-management glue: per victim,
// the translation descriptor is read and its translation-table slot is
// cleared (a store at the slot's real simulated address); per repaired
// chain patch, the patched code-cache slot is read and rewritten — the
// chaining-repair traffic that makes eviction expensive for
// well-connected code. Retranslation itself is billed by the normal
// BBM/SBM streams when the evicted code is rebuilt on re-entry.
func (c *costEmitter) Evict(victims []*Translation, restoredPCs []uint32) {
	pc := evictText
	pc = c.aluN(timing.CompTOLOther, pc, costEvictFixed/2)
	for _, tr := range victims {
		pc = c.load(timing.CompTOLOther, pc, descAddr(tr.HostEntry))
		pc = c.aluN(timing.CompTOLOther, pc, costEvictPerTrans-2)
		pc = c.store(timing.CompTOLOther, pc, transSlotAddr(hashGuest(tr.GuestEntry)&transTableMask))
	}
	for _, patch := range restoredPCs {
		pc = c.load(timing.CompTOLOther, pc, patch)
		pc = c.store(timing.CompTOLOther, pc, patch)
	}
	c.aluN(timing.CompTOLOther, pc, costEvictFixed-costEvictFixed/2)
}

// IBTCFill emits the IBTC update after a lookup served an indirect
// branch miss.
func (c *costEmitter) IBTCFill(target uint32) {
	pc := ibtcFillText
	pc = c.aluN(timing.CompTOLOther, pc, costIBTCFillALU)
	addr := ibtcSlotAddr(ibtcSlotFor(target))
	pc = c.store(timing.CompTOLOther, pc, addr)
	c.store(timing.CompTOLOther, pc, addr+4)
}

// BBMTranslate emits the cost of translating one basic block: decode
// loads of the guest code, translator ALU work, stores of the emitted
// host instructions into the code cache, and the translation-table
// insert probes.
func (c *costEmitter) BBMTranslate(tr *Translation, work *Work) {
	pc := translateText
	pc = c.aluN(timing.CompBBM, pc, costBBMFixed/2)
	for i, gpc := range tr.GuestPCs {
		pc = c.load(timing.CompBBM, pc, mem.GuestToHost(gpc))
		pc = c.aluN(timing.CompBBM, pc, costBBMPerGuestInst-1)
		// Loop back through the translator text for the next guest
		// instruction (predictable backward branch).
		if i != len(tr.GuestPCs)-1 {
			pc = c.branch(timing.CompBBM, pc, true, translateText+8*host.InstBytes)
		}
	}
	// Emission: store the produced host code into the code cache.
	hostPC := tr.HostEntry
	for i := 0; i < work.HostEmitted; i++ {
		pc = c.aluN(timing.CompBBM, pc, costBBMPerHostInst-1)
		pc = c.store(timing.CompBBM, pc, hostPC)
		hostPC += host.InstBytes
	}
	for _, slot := range work.TableProbes {
		pc = c.load(timing.CompBBM, pc, transSlotAddr(slot))
	}
	pc = c.store(timing.CompBBM, pc, tr.ProfSlot)
	c.aluN(timing.CompBBM, pc, costBBMFixed-costBBMFixed/2)
}

// SBMCost splits the modeled host instructions of one SBM invocation
// by activity: each optimization pass's IR walk separately, and
// everything else (trace construction, IR build, emission, table
// probes and the fixed prologue/epilogue) as Other. The engine folds
// it into Stats so per-pass SBM time can be reported (the Figure-7
// refinement); the parts always sum to the invocation's total SBM
// stream.
type SBMCost struct {
	PerPass []int // modeled host instructions per pass, aligned with Work.Passes
	Other   int   // trace build + emission + bookkeeping instructions
}

// SBMOptimize emits the cost of forming and optimizing a superblock:
// trace construction reads guest code, the IR is built and then
// visited by each optimization pass in the IR buffer region, and the
// final code is stored into the code cache. The returned SBMCost
// reports how many stream instructions each pass accounted for.
func (c *costEmitter) SBMOptimize(tr *Translation, work *Work) SBMCost {
	cost := SBMCost{PerPass: make([]int, len(work.Passes))}
	mark := func() int { return len(c.out.buf) }
	start := mark()

	pc := optimizeText
	pc = c.aluN(timing.CompSBM, pc, costSBMFixed/2)
	// Trace construction + IR build.
	for i, gpc := range tr.GuestPCs {
		pc = c.load(timing.CompSBM, pc, mem.GuestToHost(gpc))
		irAddr := mem.IRBufBase + uint32(i%4096)*16
		pc = c.store(timing.CompSBM, pc, irAddr)
		pc = c.aluN(timing.CompSBM, pc, costSBMPerGuestInst-2)
	}
	preOpt := mark()

	// Optimization passes: each visit loads and updates an IR slot. The
	// visit counter v advances globally across passes, so the emitted
	// stream is identical to billing the pipeline as one block.
	v := 0
	for pi, pr := range work.Passes {
		passStart := mark()
		for k := 0; k < pr.Visits; k++ {
			irAddr := mem.IRBufBase + uint32(v%4096)*16
			pc = c.load(timing.CompSBM, pc, irAddr)
			pc = c.aluN(timing.CompSBM, pc, costSBMPerPassVisit-2)
			pc = c.store(timing.CompSBM, pc, irAddr)
			if v%16 == 15 {
				pc = c.branch(timing.CompSBM, pc, true, optimizeText+16*host.InstBytes)
			}
			v++
		}
		cost.PerPass[pi] = mark() - passStart
	}
	postOpt := mark()

	// Emission into the code cache.
	hostPC := tr.HostEntry
	for i := 0; i < work.HostEmitted; i++ {
		pc = c.aluN(timing.CompSBM, pc, costSBMPerHostInst-1)
		pc = c.store(timing.CompSBM, pc, hostPC)
		hostPC += host.InstBytes
	}
	for _, slot := range work.TableProbes {
		pc = c.load(timing.CompSBM, pc, transSlotAddr(slot))
	}
	c.aluN(timing.CompSBM, pc, costSBMFixed-costSBMFixed/2)

	cost.Other = (preOpt - start) + (mark() - postOpt)
	return cost
}

// Init emits TOL start-up work (one-time, attributed to TOL others).
func (c *costEmitter) Init() {
	pc := dispatchText + 0xc0
	for i := 0; i < 40; i++ {
		pc = c.aluN(timing.CompTOLOther, pc, 4)
		pc = c.store(timing.CompTOLOther, pc, mem.TOLStackBase-64-uint32(i)*4)
		if i%8 == 7 {
			pc = c.branch(timing.CompTOLOther, pc, true, dispatchText+0xc0)
		}
	}
}

// dynQueue is the engine's pending dynamic-instruction buffer. The
// backing array is an arena: it grows to the drain threshold once and
// is then reused for the rest of the run, so steady-state execution
// pushes and pops without allocating.
type dynQueue struct {
	buf  []timing.DynInst
	head int
}

func (q *dynQueue) push(d timing.DynInst) { q.buf = append(q.buf, d) }

// alloc extends the queue by one slot and returns it for in-place
// filling, saving the construct-then-copy of push on the hottest
// paths. The slot holds stale data; callers must overwrite every field
// (translated execution copies a full template over it).
func (q *dynQueue) alloc() *timing.DynInst {
	if len(q.buf) < cap(q.buf) {
		q.buf = q.buf[:len(q.buf)+1]
	} else {
		q.buf = append(q.buf, timing.DynInst{})
	}
	return &q.buf[len(q.buf)-1]
}

func (q *dynQueue) pop(d *timing.DynInst) bool {
	if q.head >= len(q.buf) {
		return false
	}
	*d = q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return true
}

// popBatch moves up to len(buf) queued instructions into buf in one
// copy, returning how many moved — the engine side of
// timing.BatchSource.
func (q *dynQueue) popBatch(buf []timing.DynInst) int {
	n := copy(buf, q.buf[q.head:])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return n
}

func (q *dynQueue) empty() bool { return q.head >= len(q.buf) }
