package tol

import (
	"fmt"
	"strings"

	"repro/internal/guest"
)

// Co-simulation divergence reporting and the fault-injection surface
// used to mutation-test it.
//
// When the engine runs with Cosim enabled, the authoritative guest
// emulator executes in lockstep and architectural state is compared at
// every interpreted instruction and at every translation exit. A
// mismatch used to surface as a bare formatted error; it is now a
// structured DivergenceError carrying everything a differential-fuzzing
// report needs to be actionable: where in guest execution the check
// fired, which translation (and pipeline configuration) produced the
// state, and the full architectural delta — not just the first
// differing field.

// DivergenceError reports a co-simulation mismatch between the
// co-design component and the authoritative guest emulator. It is the
// error value of a failed cosim check (errors.As-compatible through the
// controller's wrapping), and the payload the fuzzing minimizer files
// regression reports from.
type DivergenceError struct {
	// PC is the guest program counter at which the states were
	// compared: the instruction just executed in IM, or the guest
	// target being resumed at a translation exit.
	PC uint32 `json:"pc"`
	// InstIndex is the number of dynamic guest instructions the
	// co-design component had retired when the check fired — the
	// position of the divergence in the run.
	InstIndex uint64 `json:"inst_index"`
	// In tells which execution context produced the diverging state:
	// "IM" for an interpreted step, "BB" or "SB" for a translation
	// exit.
	In string `json:"in"`
	// ExitReason, GuestEntry and HostPC locate a translated-code
	// divergence: the exit kind, the guest entry of the active
	// translation, and the host PC of the exit stub. All zero for IM
	// divergences.
	ExitReason string `json:"exit_reason,omitempty"`
	GuestEntry uint32 `json:"guest_entry,omitempty"`
	HostPC     uint32 `json:"host_pc,omitempty"`
	// Pipeline is the resolved SBM pass pipeline of the run and Fault
	// the active injected fault (mutation testing), so a minimized
	// report pins the configuration that diverged.
	Pipeline string `json:"pipeline,omitempty"`
	Fault    string `json:"fault,omitempty"`
	// Got is the co-design component's architectural state, Want the
	// reference emulator's.
	Got  guest.State `json:"got"`
	Want guest.State `json:"want"`
}

// Delta lists every differing architectural field as "name: got vs
// want" strings, in register-file order — the full delta, where
// guest.State.Diff stops at the first difference.
func (e *DivergenceError) Delta() []string {
	var out []string
	if e.Got.EIP != e.Want.EIP {
		out = append(out, fmt.Sprintf("eip: %#x vs %#x", e.Got.EIP, e.Want.EIP))
	}
	for i := range e.Got.Regs {
		if e.Got.Regs[i] != e.Want.Regs[i] {
			out = append(out, fmt.Sprintf("%s: %#x vs %#x", guest.Reg(i), e.Got.Regs[i], e.Want.Regs[i]))
		}
	}
	if e.Got.Flags&guest.FlagsMask != e.Want.Flags&guest.FlagsMask {
		out = append(out, fmt.Sprintf("flags: %#x vs %#x",
			e.Got.Flags&guest.FlagsMask, e.Want.Flags&guest.FlagsMask))
	}
	for i := range e.Got.FRegs {
		a, b := e.Got.FRegs[i], e.Want.FRegs[i]
		if a != b && !(a != a && b != b) { // NaN-safe, as State.Equal
			out = append(out, fmt.Sprintf("f%d: %v vs %v", i, a, b))
		}
	}
	return out
}

// Error renders the one-line report: location, context and the full
// architectural delta.
func (e *DivergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tol: cosim divergence in %s at guest pc %#x (inst %d", e.In, e.PC, e.InstIndex)
	if e.In != "IM" {
		fmt.Fprintf(&b, ", %s exit of %s %#x, host pc %#x", e.ExitReason, e.In, e.GuestEntry, e.HostPC)
	}
	b.WriteString(")")
	if e.Pipeline != "" {
		fmt.Fprintf(&b, " [pipeline %s]", e.Pipeline)
	}
	if e.Fault != "" {
		fmt.Fprintf(&b, " [fault %s]", e.Fault)
	}
	delta := e.Delta()
	if len(delta) == 0 {
		delta = []string{"states compare equal (stale report)"}
	}
	fmt.Fprintf(&b, ": %s", strings.Join(delta, "; "))
	return b.String()
}

// Report renders the multi-line human form used by minimized fuzzing
// reports: the summary line followed by one line per differing field.
func (e *DivergenceError) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cosim divergence in %s at guest pc %#x, instruction %d\n", e.In, e.PC, e.InstIndex)
	if e.In != "IM" {
		fmt.Fprintf(&b, "  translation: %s entry %#x, %s exit at host pc %#x\n",
			e.In, e.GuestEntry, e.ExitReason, e.HostPC)
	}
	if e.Pipeline != "" {
		fmt.Fprintf(&b, "  pipeline:    %s\n", e.Pipeline)
	}
	if e.Fault != "" {
		fmt.Fprintf(&b, "  fault:       %s\n", e.Fault)
	}
	for _, d := range e.Delta() {
		fmt.Fprintf(&b, "  %s (engine vs reference)\n", d)
	}
	return b.String()
}

// newDivergence assembles the structured error for one failed check.
func (e *Engine) newDivergence(in string, pc uint32, got *guest.State) *DivergenceError {
	pipeline, _ := e.Cfg.pipelineSpec()
	return &DivergenceError{
		PC:        pc,
		InstIndex: e.Stats.DynTotal(),
		In:        in,
		Pipeline:  pipeline,
		Fault:     e.Cfg.Fault,
		Got:       *got,
		Want:      e.shadow.State,
	}
}

// ---- Fault injection (mutation testing) ----

// The differential fuzzing oracle is only trustworthy if it actually
// catches translator bugs. The Fault configuration field deliberately
// miscompiles in one of a few registered, named ways, so tests can
// assert end to end that an injected bug is (a) caught by co-simulation
// and (b) minimized to a small reproducer. Faults are a verification
// surface: never set one outside a test or a fuzzing mutation run.
const (
	// FaultDropInc makes the BBM translator silently skip emitting
	// host code for guest inc instructions — a blunt lost-instruction
	// bug that any cosim check downstream of a translated inc catches.
	FaultDropInc = "bbm-drop-inc"

	// FaultRLEStaleBase makes the rle pass skip its base-register
	// invalidation: a load that overwrites a register used as the base
	// of a cached slot no longer kills the entry, so a later load
	// through the recomputed base is served the stale cached value — a
	// subtle alias-discipline bug only certain access patterns expose.
	FaultRLEStaleBase = "rle-stale-base"
)

// Faults lists the registered fault-injection names accepted by
// Config.Fault.
func Faults() []string { return []string{FaultDropInc, FaultRLEStaleBase} }

// validFault reports whether name is empty or a registered fault.
func validFault(name string) bool {
	if name == "" {
		return true
	}
	for _, f := range Faults() {
		if f == name {
			return true
		}
	}
	return false
}
