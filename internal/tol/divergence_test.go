package tol

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/guest"
)

func divergenceFixture() *DivergenceError {
	var got, want guest.State
	got.EIP, want.EIP = 0x1000, 0x1000
	got.Regs[guest.ESI], want.Regs[guest.ESI] = 4, 5
	got.Regs[guest.EAX], want.Regs[guest.EAX] = 0xff, 0x100
	got.Flags, want.Flags = 0, guest.FlagZF
	got.FRegs[2], want.FRegs[2] = 1.5, 2.5
	return &DivergenceError{
		PC:         0x1000,
		InstIndex:  1234,
		In:         "BB",
		ExitReason: "taken",
		GuestEntry: 0x0fe0,
		HostPC:     0x9000_0040,
		Pipeline:   "constprop,dce,rle,sched",
		Fault:      FaultDropInc,
		Got:        got,
		Want:       want,
	}
}

func TestDivergenceErrorFormatting(t *testing.T) {
	e := divergenceFixture()

	// Delta lists every differing field, not just the first one
	// guest.State.Diff stops at.
	delta := e.Delta()
	if len(delta) != 4 {
		t.Fatalf("Delta() = %q, want 4 entries (eax, esi, flags, f2)", delta)
	}
	joined := strings.Join(delta, "; ")
	for _, want := range []string{"eax", "esi", "flags", "f2", "0x4 vs 0x5"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Delta() = %q, missing %q", joined, want)
		}
	}

	// The one-line form keeps the historic "cosim divergence" substring
	// and carries location, translation context, pipeline and fault.
	msg := e.Error()
	for _, want := range []string{
		"cosim divergence", "BB", "0x1000", "inst 1234", "taken",
		"0xfe0", "constprop,dce,rle,sched", FaultDropInc, "esi: 0x4 vs 0x5",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if strings.ContainsRune(msg, '\n') {
		t.Errorf("Error() is not one line: %q", msg)
	}

	// The multi-line report names every differing field on its own line.
	rep := e.Report()
	if lines := strings.Count(rep, "\n"); lines < 6 {
		t.Errorf("Report() has %d lines, want >= 6:\n%s", lines, rep)
	}
	for _, want := range []string{"pipeline:", "fault:", "engine vs reference"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report() missing %q:\n%s", want, rep)
		}
	}
}

func TestDivergenceErrorIMForm(t *testing.T) {
	e := divergenceFixture()
	e.In = "IM"
	msg := e.Error()
	if strings.Contains(msg, "exit") || strings.Contains(msg, "host pc") {
		t.Errorf("IM divergence mentions translation context: %q", msg)
	}
}

func TestDivergenceErrorJSONRoundTrip(t *testing.T) {
	e := divergenceFixture()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back DivergenceError
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error() != e.Error() {
		t.Fatalf("round trip changed the report:\n%s\n%s", back.Error(), e.Error())
	}
}

func TestConfigRejectsUnknownFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = "no-such-fault"
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown fault") {
		t.Fatalf("unknown fault accepted: %v", err)
	}
	for _, f := range Faults() {
		cfg.Fault = f
		if err := cfg.Validate(); err != nil {
			t.Fatalf("registered fault %q rejected: %v", f, err)
		}
	}
}
