package tol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/emu"
	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/timing"
)

// Engine is the co-design component: the host CPU, the TOL services,
// and the cost model, driven as a pull-based dynamic instruction
// stream (timing.StreamSource). Interleaved with the functional
// execution it emits every host instruction — translated application
// code executed by the CPU, and TOL activity rendered by the cost
// model — tagged with owner and component.
//
// When cosim is enabled an authoritative guest emulator (the reference
// emulator for the program's frontend) runs in lockstep; architectural
// state is compared at every interpreted instruction and at every
// translation exit, implementing the infrastructure's state-checking
// methodology.
type Engine struct {
	Cfg Config

	// isa is the guest frontend the program declares; plan the
	// frontend's translation ABI. Both are resolved at construction and
	// immutable for the engine's lifetime.
	isa  *guest.ISA
	plan *regPlan

	HostMem *mem.Sparse
	CPU     *host.CPU
	GuestV  mem.GuestView

	// guestMem is GuestV pre-converted to the mem.Memory interface.
	// GuestV is a two-word struct, so converting it at every
	// interpreter step would heap-allocate; the conversion is hoisted
	// here once instead (the interpreter loop must stay allocation-free
	// per step).
	guestMem mem.Memory

	CC    *CodeCache
	TT    *TransTable
	IB    *IBTC
	Prof  *ProfileTable
	Trans *Translator

	cost  *costEmitter
	queue dynQueue

	// dec memoizes guest fetch+decode per EIP so IM revisits of a
	// basic block skip re-decoding (guest code is immutable).
	dec *guest.DecodeCache

	gs           guest.State // canonical guest state while in IM
	inTranslated bool
	curTrans     *Translation
	halted       bool
	err          error

	// ctx, when non-nil, is polled every ctxPollSteps units of forward
	// progress (interpreted steps / translated bursts), so even an
	// interpreter-dominated run with no timing simulator attached
	// honors cancellation. A cancellation surfaces as the run error
	// (errors.Is-compatible with the context's error) and ends the
	// stream.
	ctx       context.Context
	ctxPollIn int

	shadow   *emu.Emulator
	promoted map[uint32]*Translation
	policy   PromotionPolicy

	// evicted remembers guest entries whose translation was evicted at
	// least once, so rebuilding one counts as a retranslation.
	evicted map[uint32]bool

	// stopAfter, when nonzero, pauses the stream once the co-design
	// component has retired at least stopAfter guest instructions: the
	// already-generated stream drains and then Next/NextBatch report
	// stream end with paused set, leaving the engine at a consistent
	// generation boundary. SetStopAfter with a higher bound (or zero)
	// un-pauses. Checkpoint fast-forward and interval-bounded sampled
	// runs are built on this.
	stopAfter uint64
	paused    bool

	Stats Stats
}

// queueDrainThreshold bounds how much stream the engine buffers before
// letting the timing simulator drain it.
const queueDrainThreshold = 4096

// ctxPollSteps is how many units of engine forward progress (IM steps
// or translated-execution bursts) pass between context polls. One unit
// emits tens to thousands of stream instructions, so cancellation is
// observed within microseconds of host time without a poll in the
// per-instruction loops.
const ctxPollSteps = 1024

// NewEngine builds the co-design component for a guest program. An
// invalid configuration (unknown pass or promotion-policy names, bad
// bounds — see Config.Validate) surfaces as an immediate run error:
// the engine produces no stream and Err reports the problem.
func NewEngine(cfg Config, p *guest.Program) *Engine {
	hm := mem.NewSparse()
	p.LoadIntoWindow(hm)
	e := &Engine{
		Cfg:     cfg,
		HostMem: hm,
		CPU:     host.NewCPU(hm),
		GuestV:  mem.GuestView{Host: hm},
		CC:      NewCodeCache(),
		TT:      NewTransTable(),
		IB:      NewIBTC(hm),
		Prof:    NewProfileTable(hm),

		promoted: make(map[uint32]*Translation),
	}
	e.guestMem = e.GuestV
	if err := e.Cfg.Validate(); err != nil {
		e.fail("%v", err)
		return e
	}
	isa, err := guest.ISAOf(p)
	if err != nil {
		e.fail("tol: %v", err)
		return e
	}
	plan, err := planFor(isa)
	if err != nil {
		e.fail("%v", err)
		return e
	}
	e.isa, e.plan = isa, plan
	e.dec = guest.NewDecodeCache(isa)
	if e.Cfg.Cache.CapacityInsts > 0 {
		evp, _ := e.Cfg.Cache.NewEvictionPolicy() // validated above
		e.CC = NewBoundedCodeCache(e.Cfg.Cache, evp)
	}
	e.CC.Link(e.TT, e.IB)
	e.CC.OnEvict = e.onEvict
	e.policy, _ = e.Cfg.NewPromotionPolicy() // validated above
	e.Trans, _ = NewTranslator(&e.Cfg, e.isa, e.policy, e.CC, e.TT, e.Prof, e.GuestV)
	e.cost = newCostEmitter(&e.queue)
	e.isa.InitState(&e.gs, p.Entry)
	if cfg.Cosim {
		e.shadow = emu.New(p)
	}
	e.cost.Init()
	return e
}

// Err returns the first execution error, if any.
func (e *Engine) Err() error { return e.err }

// Halted reports whether the guest program reached its halt.
func (e *Engine) Halted() bool { return e.halted }

// GuestState returns the current guest architectural state (only
// meaningful once halted or while in IM).
func (e *Engine) GuestState() *guest.State { return &e.gs }

// SetStopAfter arms (or, with 0, disarms) the guest-instruction pause
// bound. The engine pauses at the first generation boundary at or
// beyond n retired guest instructions — not exactly at n, since
// translated execution retires in bursts — which keeps the boundary
// deterministic for a given program and configuration.
func (e *Engine) SetStopAfter(n uint64) {
	e.stopAfter = n
	e.paused = false
}

// Paused reports whether the stream ended because the SetStopAfter
// bound was reached (rather than guest halt or an error).
func (e *Engine) Paused() bool { return e.paused }

// stopDue reports whether the pause bound is armed and reached.
func (e *Engine) stopDue() bool {
	return e.stopAfter != 0 && e.Stats.DynTotal() >= e.stopAfter
}

// Next implements timing.StreamSource.
func (e *Engine) Next(d *timing.DynInst) bool {
	for {
		if e.queue.pop(d) {
			return true
		}
		if e.halted || e.err != nil {
			return false
		}
		if e.stopDue() {
			e.paused = true
			return false
		}
		e.generate()
	}
}

// NextBatch implements timing.BatchSource: it moves queued stream
// instructions into buf wholesale, generating more only when the
// queue runs dry. One call replaces up to len(buf) per-instruction
// interface calls, which is the transport half of the batched
// simulate path.
func (e *Engine) NextBatch(buf []timing.DynInst) int {
	for {
		if n := e.queue.popBatch(buf); n > 0 {
			return n
		}
		if e.halted || e.err != nil {
			return 0
		}
		if e.stopDue() {
			e.paused = true
			return 0
		}
		e.generate()
	}
}

// generate advances the co-design component by one unit of forward
// progress (an interpreted step or a translated-execution burst),
// polling the attached context every ctxPollSteps units.
func (e *Engine) generate() {
	if e.ctx != nil {
		if e.ctxPollIn--; e.ctxPollIn <= 0 {
			e.ctxPollIn = ctxPollSteps
			if err := e.ctx.Err(); err != nil {
				e.cancelErr(err)
				return
			}
		}
	}
	if e.inTranslated {
		e.runTranslated()
	} else {
		e.stepIM()
	}
}

// SetContext attaches a context the engine polls while generating the
// stream; cancelling it aborts the run with the context's error. The
// controller installs the Run context here so interpreter-dominated
// runs (e.g. -O0 with everything below the translation threshold) are
// as promptly cancellable as timing-bound ones.
func (e *Engine) SetContext(ctx context.Context) {
	e.ctx = ctx
	e.ctxPollIn = 1 // poll on the first generate after attach
}

// Run drives the engine to completion without a timing simulator,
// discarding the stream. Useful for functional tests.
func (e *Engine) Run() error {
	return e.RunContext(context.Background())
}

// RunContext is Run honoring cancellation: the context is polled
// between generation units even though no timing simulator is
// attached, so a guest stuck in an interpreter loop cannot outlive
// its caller.
func (e *Engine) RunContext(ctx context.Context) error {
	e.SetContext(ctx)
	var buf [256]timing.DynInst
	for e.NextBatch(buf[:]) > 0 {
	}
	return e.err
}

func (e *Engine) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// cancelErr records a context cancellation as the run error, keeping
// the original error value so errors.Is(err, context.Canceled) holds
// for callers.
func (e *Engine) cancelErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

// stateFromCPU reconstructs the guest architectural state from the
// application half of the host register file, per the frontend's
// translation ABI.
func (e *Engine) stateFromCPU(eip uint32) guest.State {
	var s guest.State
	for i := 0; i < e.isa.NumRegs; i++ {
		s.Regs[i] = e.CPU.R[e.plan.reg[i]]
	}
	s.Flags = e.CPU.R[host.RFlags]
	for i := 0; i < guest.NumFRegs; i++ {
		s.FRegs[i] = e.CPU.F[host.GuestFReg(uint8(i))]
	}
	s.EIP = eip
	return s
}

// syncCPUFromState loads the guest state into the host registers per
// the translation ABI.
func (e *Engine) syncCPUFromState() {
	for i := 0; i < e.isa.NumRegs; i++ {
		if e.plan.reg[i] == host.RZero {
			continue // the hardwired zero is not written (rv32 x0)
		}
		e.CPU.R[e.plan.reg[i]] = e.gs.Regs[i]
	}
	e.CPU.R[host.RFlags] = e.gs.Flags & guest.FlagsMask
	for i := 0; i < guest.NumFRegs; i++ {
		e.CPU.F[host.GuestFReg(uint8(i))] = e.gs.FRegs[i]
	}
}

// stepIM interprets one guest instruction.
func (e *Engine) stepIM() {
	if e.Cfg.MaxGuestInsts != 0 && e.Stats.DynTotal() >= e.Cfg.MaxGuestInsts {
		e.fail("tol: guest instruction budget (%d) exhausted at eip=%#x", e.Cfg.MaxGuestInsts, e.gs.EIP)
		return
	}
	eip := e.gs.EIP
	var res guest.StepResult
	if err := e.dec.Step(&e.gs, e.guestMem, &res); err != nil {
		e.fail("tol: interpreter: %v", err)
		return
	}
	if res.Halted {
		e.halted = true
		return
	}
	e.Stats.DynIM++
	e.Stats.markStatic(eip, ModeIM)
	e.cost.InterpStep(&res, eip)
	if res.Inst.IsIndirectBranch() {
		e.Stats.IndirectDyn++
	}

	if e.shadow != nil {
		if _, err := e.shadow.Step(); err != nil {
			e.fail("tol: shadow emulator: %v", err)
			return
		}
		e.Stats.CosimChecks++
		if d := e.gs.Diff(&e.shadow.State); d != "" {
			if e.err == nil {
				e.err = e.newDivergence("IM", eip, &e.gs)
			}
			return
		}
	}

	if !res.Taken {
		return
	}
	e.Stats.InterpBranches++
	target := res.Target

	// Profile the branch target and check for an existing translation.
	cnt := e.Prof.Bump(target)
	entry, ok, probes := e.TT.Lookup(target)
	e.Stats.Lookups++
	e.Stats.LookupProbes += uint64(len(probes))
	e.cost.IMProfile(e.Prof.SlotAddr(target), probes[0])
	e.cost.Lookup(probes, ok)
	if ok {
		e.enterTranslated(entry)
		return
	}
	if e.policy.ShouldTranslate(target, cnt) {
		tr := e.translateBB(target)
		if tr != nil {
			e.enterTranslated(tr.HostEntry)
		}
	}
}

// onEvict observes one code-cache eviction batch: it maintains the
// pressure statistics, forgets evicted superblocks so promotion can
// rebuild them, and bills the unlink work through the cost model.
func (e *Engine) onEvict(ev EvictEvent) {
	e.Stats.Evictions += uint64(len(ev.Victims))
	if ev.Flush {
		e.Stats.FlushCount++
	}
	if e.evicted == nil {
		e.evicted = make(map[uint32]bool)
	}
	for _, tr := range ev.Victims {
		e.evicted[tr.GuestEntry] = true
		if tr.Kind == KindSB {
			delete(e.promoted, tr.GuestEntry)
		}
	}
	e.cost.Evict(ev.Victims, ev.RestoredPCs)
}

// translateBB runs the BBM translator for the block at guest address
// g. A block whose translation exceeds the whole bounded cache is not
// fatal: it stays interpreted and its profile counter is reset so TOL
// backs off before trying again.
func (e *Engine) translateBB(g uint32) *Translation {
	wasEvicted := e.evicted[g]
	tr, err := e.Trans.TranslateBB(g)
	if err != nil {
		if errors.Is(err, ErrTranslationTooLarge) {
			e.Prof.Reset(g)
			return nil
		}
		e.fail("tol: bbm: %v", err)
		return nil
	}
	e.Stats.BBTranslated++
	if wasEvicted {
		e.Stats.Retranslations++
	}
	if e.CC.Bounded() {
		e.Stats.CacheOccupancyPeak = e.CC.OccupancyPeak()
	}
	for _, pc := range tr.GuestPCs {
		e.Stats.markStatic(pc, ModeBBM)
	}
	e.cost.BBMTranslate(tr, &e.Trans.LastWork)
	return tr
}

// buildSB runs the SBM optimizer seeded at guest address g. A
// superblock larger than the whole bounded cache is not fatal: it
// returns nil without setting the run error, and handlePromote keeps
// executing the BBM block (like the SBM-disabled path).
func (e *Engine) buildSB(g uint32) *Translation {
	wasEvicted := e.evicted[g]
	tr, err := e.Trans.BuildSuperblock(g)
	if err != nil {
		if !errors.Is(err, ErrTranslationTooLarge) {
			e.fail("tol: sbm: %v", err)
		}
		return nil
	}
	e.Stats.SBCreated++
	if wasEvicted {
		e.Stats.Retranslations++
	}
	if e.CC.Bounded() {
		e.Stats.CacheOccupancyPeak = e.CC.OccupancyPeak()
	}
	for _, pc := range tr.GuestPCs {
		e.Stats.markStatic(pc, ModeSBM)
	}
	cost := e.cost.SBMOptimize(tr, &e.Trans.LastWork)
	e.Stats.addSBMPasses(e.Trans.LastWork.Passes, cost)
	e.policy.OnSuperblock(g)
	return tr
}

// enterTranslated switches from IM into the code cache at hostEntry.
func (e *Engine) enterTranslated(hostEntry uint32) {
	tr := e.CC.EntryAt(hostEntry)
	if tr == nil {
		e.fail("tol: enter at %#x: no translation", hostEntry)
		return
	}
	e.syncCPUFromState()
	e.CC.Touch(tr)
	e.cost.ResumeJump(hostEntry)
	e.CPU.PC = hostEntry
	e.curTrans = tr
	e.inTranslated = true
}

// runTranslated executes host instructions from the code cache until
// control returns to TOL, the stream buffer fills, or the guest halts.
//
// This is the hottest loop of the simulator, structured as threaded
// dispatch over the code cache's precomputed metadata: each iteration
// indexes the instruction and its timing.DynInst template by slot,
// executes, copies the template into the stream arena in place, and
// patches only the per-execution fields. No per-instruction decoding,
// classification, attribution or map lookups happen here; translation
// crossings take the map path only when the target leaves the current
// translation's address range.
func (e *Engine) runTranslated() {
	cpu := e.CPU
	cc := e.CC
	insts, meta := cc.insts, cc.meta
	curLo, curHi := e.curTrans.HostEntry, e.curTrans.HostEnd
	var out host.Outcome
	for {
		pc := cpu.PC
		slot := (pc - mem.CodeCacheBase) / host.InstBytes
		if pc < mem.CodeCacheBase || slot >= uint32(len(insts)) {
			e.fail("tol: execution outside code cache at %#x (translation %#x)", pc, e.curTrans.HostEntry)
			return
		}
		if err := cpu.Exec(&insts[slot], &out); err != nil {
			e.fail("tol: host exec: %v", err)
			return
		}
		d := e.queue.alloc()
		*d = meta[slot]
		d.MemAddr = out.MemAddr
		d.Taken = out.Taken
		d.Target = out.Target

		if out.Taken {
			target := out.Target
			if target == TOLEntry {
				e.handleExit(pc)
				return
			}
			// A taken branch landing strictly inside the current
			// translation (not on its entry) cannot be entering another
			// one — live translations occupy disjoint ranges — so the
			// entry lookup is needed only for external targets and for
			// the current entry itself (self-loop back edge).
			if target-curLo >= curHi-curLo || target == curLo {
				tr := e.curTrans
				if target != curLo {
					tr = cc.byEntry[target]
				}
				if tr != nil && (target != pc || tr != e.curTrans) {
					// Crossing into another translation (chaining, IBTC hit,
					// self-loop back edge): account the exit and continue.
					if !e.accountExit(pc) {
						return
					}
					e.curTrans = tr
					curLo, curHi = tr.HostEntry, tr.HostEnd
					cc.Touch(tr)
					if e.budgetExceeded() {
						return
					}
				}
			}
		}
		if e.queue.head == 0 && len(e.queue.buf) >= queueDrainThreshold {
			return
		}
	}
}

func (e *Engine) budgetExceeded() bool {
	if e.Cfg.MaxGuestInsts != 0 && e.Stats.DynTotal() >= e.Cfg.MaxGuestInsts {
		e.fail("tol: guest instruction budget (%d) exhausted in translated code", e.Cfg.MaxGuestInsts)
		return true
	}
	return false
}

// accountExit processes the bookkeeping of leaving the current
// translation through the exit at host PC pc: per-mode retired-
// instruction counts and the co-simulation state check. Returns false
// on failure.
func (e *Engine) accountExit(pc uint32) bool {
	info := e.curTrans.Exits[pc]
	if info == nil {
		e.fail("tol: unknown exit at %#x from translation %#x", pc, e.curTrans.HostEntry)
		return false
	}
	return e.accountExitInfo(pc, info)
}

// accountExitInfo is accountExit with the exit descriptor already
// resolved, so paths that needed the descriptor anyway (handleExit)
// do not look it up twice.
func (e *Engine) accountExitInfo(pc uint32, info *ExitInfo) bool {
	if info.Retired > 0 {
		switch e.curTrans.Kind {
		case KindBB:
			e.Stats.DynBBM += uint64(info.Retired)
		default:
			e.Stats.DynSBM += uint64(info.Retired)
		}
	}
	if info.Dynamic {
		e.Stats.IndirectDyn++
	}

	if e.shadow != nil {
		for i := 0; i < info.Retired; i++ {
			if _, err := e.shadow.Step(); err != nil {
				e.fail("tol: shadow emulator: %v", err)
				return false
			}
		}
		target := info.GuestTarget
		if info.Dynamic {
			target = e.CPU.R[sc0]
		}
		got := e.stateFromCPU(target)
		e.Stats.CosimChecks++
		if d := got.Diff(&e.shadow.State); d != "" {
			if e.err == nil {
				div := e.newDivergence(e.curTrans.Kind.String(), target, &got)
				div.ExitReason = info.Reason.String()
				div.GuestEntry = e.curTrans.GuestEntry
				div.HostPC = pc
				e.err = div
			}
			return false
		}
	}
	return true
}

// handleExit services a transition into TOL from the exit at pc.
func (e *Engine) handleExit(pc uint32) {
	info := e.curTrans.Exits[pc]
	if info == nil {
		e.fail("tol: unknown TOL transition at %#x", pc)
		return
	}
	if !e.accountExitInfo(pc, info) {
		return
	}
	e.Stats.Transitions++
	e.cost.Transition(pc)
	e.inTranslated = false

	switch info.Reason {
	case ExitHalt:
		e.gs = e.stateFromCPU(info.GuestTarget)
		e.halted = true

	case ExitPromote:
		e.handlePromote(info)

	case ExitIndirect:
		e.handleIndirect()

	default: // static targets: taken/fallthrough/self-loop
		e.handleStaticExit(pc, info)
	}
}

// handlePromote services a BBM block whose counter crossed BB/SBth.
func (e *Engine) handlePromote(info *ExitInfo) {
	seed := info.GuestTarget
	bbTrans := e.curTrans
	sb := e.promoted[seed]
	if sb == nil {
		if !e.Cfg.EnableSBM {
			// SBM disabled: reset the counter and continue in BBM.
			e.Prof.Reset(seed)
			e.resumeAt(bbTrans.HostEntry)
			return
		}
		sb = e.buildSB(seed)
		if sb == nil {
			if e.err == nil {
				// Superblock larger than the whole cache: give up on
				// promotion for now (reset the counter so the threshold
				// must be earned again) and continue in BBM.
				e.Prof.Reset(seed)
				e.resumeAt(bbTrans.HostEntry)
			}
			return
		}
		e.promoted[seed] = sb
		// Redirect the BBM block to the superblock: patch its first
		// instruction and register a zero-retire exit on it. Placing the
		// superblock may have evicted the BBM block itself; then there
		// is nothing left to redirect (a future miss on seed finds the
		// superblock through the translation table).
		if e.CC.EntryAt(bbTrans.HostEntry) == bbTrans {
			if err := e.CC.Patch(bbTrans.HostEntry, sb.HostEntry); err != nil {
				e.fail("tol: promote patch: %v", err)
				return
			}
			bbTrans.Exits[bbTrans.HostEntry] = &ExitInfo{
				Reason: ExitTaken, Retired: 0, GuestTarget: seed, Chained: true,
			}
			e.Stats.Chains++
			e.cost.Chain(bbTrans.HostEntry)
		}
	}
	e.resumeAt(sb.HostEntry)
}

// handleIndirect services an IBTC miss: the guest target is in the
// scratch register per the translation ABI.
func (e *Engine) handleIndirect() {
	target := e.CPU.R[sc0]
	entry, ok, probes := e.TT.Lookup(target)
	e.Stats.Lookups++
	e.Stats.LookupProbes += uint64(len(probes))
	e.cost.Lookup(probes, ok)
	if !ok {
		cnt := e.Prof.Bump(target)
		e.cost.IMProfile(e.Prof.SlotAddr(target), probes[0])
		if e.policy.ShouldTranslate(target, cnt) {
			if tr := e.translateBB(target); tr != nil {
				entry, ok = tr.HostEntry, true
			}
		}
	}
	if !ok {
		// Fall back to interpretation at the target.
		e.gs = e.stateFromCPU(target)
		return
	}
	if e.Cfg.EnableIBTC {
		e.IB.Fill(target, entry)
		e.Stats.IBTCFills++
		e.cost.IBTCFill(target)
	}
	e.resumeAt(entry)
}

// handleStaticExit services a block ending at a statically known guest
// target: find or create the target translation, chain the exit, and
// resume; or fall back to IM below the threshold.
func (e *Engine) handleStaticExit(pc uint32, info *ExitInfo) {
	target := info.GuestTarget
	entry, ok, probes := e.TT.Lookup(target)
	e.Stats.Lookups++
	e.Stats.LookupProbes += uint64(len(probes))
	e.cost.Lookup(probes, ok)
	if !ok {
		cnt := e.Prof.Bump(target)
		e.cost.IMProfile(e.Prof.SlotAddr(target), probes[0])
		if e.policy.ShouldTranslate(target, cnt) {
			if tr := e.translateBB(target); tr != nil {
				entry, ok = tr.HostEntry, true
			}
		}
	}
	if !ok {
		e.gs = e.stateFromCPU(target)
		return
	}
	// Chain the exit — unless the source translation was evicted while
	// translating the target, in which case its exit slot is gone (and
	// may already hold other code).
	if e.Cfg.EnableChaining && !info.Chained && e.CC.EntryAt(e.curTrans.HostEntry) == e.curTrans {
		if err := e.CC.Patch(pc, entry); err != nil {
			e.fail("tol: chain: %v", err)
			return
		}
		info.Chained = true
		e.Stats.Chains++
		e.cost.Chain(pc)
	}
	e.resumeAt(entry)
}

// resumeAt re-enters translated execution at a translation entry. The
// guest state is already in the CPU registers (it never left them
// while TOL ran).
func (e *Engine) resumeAt(hostEntry uint32) {
	tr := e.CC.EntryAt(hostEntry)
	if tr == nil {
		e.fail("tol: resume at %#x: no translation", hostEntry)
		return
	}
	e.CC.Touch(tr)
	e.cost.ResumeJump(hostEntry)
	e.curTrans = tr
	e.CPU.PC = hostEntry
	e.inTranslated = true
}
