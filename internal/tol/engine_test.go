package tol

import (
	"math/rand"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/timing"
	"repro/internal/x86emu"
)

// runBoth executes a program on the authoritative emulator and through
// the full engine (cosim enabled: every boundary is state-checked) and
// compares the final architectural state.
func runBoth(t *testing.T, p *guest.Program, cfg Config) (*Engine, *x86emu.Emulator) {
	t.Helper()
	ref := x86emu.New(p)
	if err := ref.Run(50_000_000); err != nil {
		t.Fatalf("reference: %v", err)
	}
	eng := NewEngine(cfg, p)
	if err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !eng.Halted() {
		t.Fatal("engine did not halt")
	}
	if d := eng.GuestState().Diff(&ref.State); d != "" {
		t.Fatalf("final state mismatch: %s", d)
	}
	if got, want := eng.Stats.DynTotal(), ref.DynInsts; got != want {
		t.Fatalf("dynamic instruction count: engine %d, reference %d", got, want)
	}
	return eng, ref
}

func fibProgram(n int32) *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.EBX, 1)
	b.MovRI(guest.ECX, n)
	b.Label("loop")
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondE, "done")
	b.MovRR(guest.EDX, guest.EBX)
	b.AddRR(guest.EBX, guest.EAX)
	b.MovRR(guest.EAX, guest.EDX)
	b.Dec(guest.ECX)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func TestEngineFibonacciAllTiers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20 // force SBM quickly
	eng, _ := runBoth(t, fibProgram(500), cfg)
	if eng.GuestState().Regs[guest.EAX] == 0 {
		t.Fatal("fib result missing")
	}
	if eng.Stats.DynIM == 0 || eng.Stats.DynBBM == 0 || eng.Stats.DynSBM == 0 {
		t.Fatalf("expected all tiers exercised: %+v", eng.Stats)
	}
	// A hot loop must execute overwhelmingly from SBM.
	if eng.Stats.DynSBM < eng.Stats.DynTotal()*8/10 {
		t.Fatalf("SBM share too low: %d of %d", eng.Stats.DynSBM, eng.Stats.DynTotal())
	}
	if eng.Stats.SBCreated == 0 || eng.Stats.BBTranslated == 0 {
		t.Fatalf("no translations: %+v", eng.Stats)
	}
	if eng.Stats.Chains == 0 {
		t.Fatal("chaining never happened")
	}
}

func TestEngineBBMOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableSBM = false
	eng, _ := runBoth(t, fibProgram(200), cfg)
	if eng.Stats.SBCreated != 0 || eng.Stats.DynSBM != 0 {
		t.Fatal("SBM ran despite being disabled")
	}
	if eng.Stats.DynBBM == 0 {
		t.Fatal("BBM never executed")
	}
}

func TestEngineInterpOnlyThreshold(t *testing.T) {
	// With a huge BB threshold everything stays interpreted.
	cfg := DefaultConfig()
	cfg.BBThreshold = 1 << 30
	eng, _ := runBoth(t, fibProgram(50), cfg)
	if eng.Stats.DynBBM != 0 || eng.Stats.DynSBM != 0 {
		t.Fatal("translation happened below threshold")
	}
	if eng.Stats.DynIM == 0 {
		t.Fatal("nothing interpreted")
	}
}

func TestEngineCallsAndReturns(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.ECX, 100)
	b.Label("loop")
	b.Call("addone")
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	b.Label("addone")
	b.Inc(guest.EAX)
	b.Ret()
	cfg := DefaultConfig()
	cfg.SBThreshold = 10
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	if eng.GuestState().Regs[guest.EAX] != 100 {
		t.Fatalf("eax = %d", eng.GuestState().Regs[guest.EAX])
	}
	if eng.Stats.IBTCFills == 0 {
		t.Fatal("returns never filled the IBTC")
	}
	if eng.Stats.IndirectDyn == 0 {
		t.Fatal("indirect branches not counted")
	}
}

func TestEngineIndirectJumpTable(t *testing.T) {
	// A dispatcher cycling over a jump table of 4 cases — the
	// perlbench-style pattern.
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.ESI, 0)   // case index
	b.MovRI(guest.ECX, 200) // iterations
	b.MovRI(guest.EDI, 0)   // accumulator
	b.Label("loop")
	b.MovRI(guest.EBP, int32(mem.GuestTableBase))
	b.LoadIdx(guest.EAX, guest.EBP, guest.ESI, 4, 0)
	b.JmpInd(guest.EAX)
	for i := 0; i < 4; i++ {
		b.Label(caseLabel(i))
		b.AddRI(guest.EDI, int32(i+1))
		b.Jmp("join")
	}
	b.Label("join")
	b.Inc(guest.ESI)
	b.AndRI(guest.ESI, 3)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Fill the jump table with case addresses.
	var words []uint32
	for i := 0; i < 4; i++ {
		a, ok := b.AddrOf(caseLabel(i))
		if !ok {
			t.Fatal("case label missing")
		}
		words = append(words, a)
	}
	raw := make([]byte, 16)
	for i, w := range words {
		raw[4*i] = byte(w)
		raw[4*i+1] = byte(w >> 8)
		raw[4*i+2] = byte(w >> 16)
		raw[4*i+3] = byte(w >> 24)
	}
	p.Data = append(p.Data, guest.DataSeg{Addr: mem.GuestTableBase, Bytes: raw})

	cfg := DefaultConfig()
	cfg.SBThreshold = 25
	eng, _ := runBoth(t, p, cfg)
	// 200 iterations over cases 1..4: 50 * (1+2+3+4) = 500.
	if eng.GuestState().Regs[guest.EDI] != 500 {
		t.Fatalf("edi = %d, want 500", eng.GuestState().Regs[guest.EDI])
	}
	if eng.Stats.IndirectDyn < 200 {
		t.Fatalf("indirect branches = %d, want >= 200", eng.Stats.IndirectDyn)
	}
}

func caseLabel(i int) string {
	return string(rune('a'+i)) + "case"
}

func TestEngineIBTCDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableIBTC = false
	cfg.SBThreshold = 10
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.ECX, 50)
	b.Label("loop")
	b.Call("f")
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	b.Label("f")
	b.Inc(guest.EAX)
	b.Ret()
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	if eng.Stats.IBTCFills != 0 {
		t.Fatal("IBTC filled while disabled")
	}
	// Every return transitions to TOL.
	if eng.Stats.Transitions < 40 {
		t.Fatalf("transitions = %d, expected one per return", eng.Stats.Transitions)
	}
}

func TestEngineChainingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableChaining = false
	cfg.EnableSBM = false
	eng, _ := runBoth(t, fibProgram(100), cfg)
	if eng.Stats.Chains != 0 {
		t.Fatal("chained while disabled")
	}
	// Without chaining every block boundary transitions to TOL.
	if eng.Stats.Transitions < eng.Stats.DynBBM/10 {
		t.Fatalf("transitions = %d for %d BBM insts", eng.Stats.Transitions, eng.Stats.DynBBM)
	}
}

// randProgram generates a structured random program: nested bounded
// loops, straight-line ALU/memory/FP bodies, calls and an indirect
// jump table, with every flag-and-register pattern the translator must
// preserve.
func randProgram(r *rand.Rand, bodyLen int) *guest.Program {
	b := guest.NewBuilder()
	// EDX is the loop counter and EBP the data base; the random body
	// must not clobber either or the program may never halt.
	regs := []guest.Reg{guest.EAX, guest.EBX, guest.ECX, guest.ESI, guest.EDI}
	randReg := func() guest.Reg { return regs[r.Intn(len(regs))] }

	b.Label("start")
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	for i, reg := range regs {
		b.MovRI(reg, int32(r.Uint32()>>uint(i)))
	}
	b.MovRI(guest.EDX, int32(r.Intn(40)+10)) // outer counter

	b.Label("outer")
	emitRandBody(b, r, randReg, bodyLen)
	b.Call("fn1")
	emitRandBody(b, r, randReg, bodyLen/2)
	b.Dec(guest.EDX)
	b.CmpRI(guest.EDX, 0)
	b.Jcc(guest.CondNE, "outer")
	b.Halt()

	b.Label("fn1")
	emitRandBody(b, r, randReg, bodyLen/2)
	b.Ret()

	return b.MustBuild()
}

// emitRandBody emits straight-line randomized instructions that cannot
// change control flow and keep EBP (data base) intact.
func emitRandBody(b *guest.Builder, r *rand.Rand, randReg func() guest.Reg, n int) {
	for i := 0; i < n; i++ {
		switch r.Intn(16) {
		case 0:
			b.MovRR(randReg(), randReg())
		case 1:
			b.MovRI(randReg(), int32(r.Uint32()))
		case 2:
			b.AddRR(randReg(), randReg())
		case 3:
			b.SubRI(randReg(), int32(r.Intn(1000)-500))
		case 4:
			b.AndRR(randReg(), randReg())
		case 5:
			b.OrRI(randReg(), int32(r.Uint32()))
		case 6:
			b.XorRR(randReg(), randReg())
		case 7:
			b.Store(guest.EBP, int32(r.Intn(64)*4), randReg())
		case 8:
			b.Load(randReg(), guest.EBP, int32(r.Intn(64)*4))
		case 9:
			b.ImulRR(randReg(), randReg())
		case 10:
			b.Shl(randReg(), int32(r.Intn(31)))
		case 11:
			b.Inc(randReg())
		case 12:
			b.CmpRR(randReg(), randReg())
		case 13:
			b.Neg(randReg())
		case 14:
			b.FLoad(guest.FReg(r.Intn(4)), guest.EBP, int32(r.Intn(16)*8))
			b.FAdd(guest.FReg(r.Intn(4)), guest.FReg(r.Intn(4)))
			b.FStore(guest.EBP, int32(r.Intn(16)*8), guest.FReg(r.Intn(4)))
		case 15:
			b.Sar(randReg(), int32(r.Intn(31)))
		}
	}
}

func TestEngineRandomProgramsDifferential(t *testing.T) {
	// The core property test: randomized programs must execute
	// identically under interpretation + BBM + SBM (with continuous
	// co-simulation) and the authoritative emulator.
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := randProgram(r, 12+r.Intn(30))
		cfg := DefaultConfig()
		cfg.SBThreshold = 5 + r.Intn(30)
		cfg.BBThreshold = 1 + r.Intn(4)
		runBoth(t, p, cfg)
	}
}

func TestEngineRandomNoSBM(t *testing.T) {
	for seed := int64(100); seed <= 106; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := randProgram(r, 20)
		cfg := DefaultConfig()
		cfg.EnableSBM = false
		cfg.BBThreshold = 2
		runBoth(t, p, cfg)
	}
}

func TestEngineStreamOwnersAndComponents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	eng := NewEngine(cfg, fibProgram(300))
	var d timing.DynInst
	var appInsts, tolInsts uint64
	comps := map[timing.Component]uint64{}
	for eng.Next(&d) {
		if d.Owner == timing.OwnerApp {
			appInsts++
		} else {
			tolInsts++
		}
		comps[d.Comp]++
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if appInsts == 0 || tolInsts == 0 {
		t.Fatalf("stream owners: app=%d tol=%d", appInsts, tolInsts)
	}
	for _, c := range []timing.Component{timing.CompIM, timing.CompBBM,
		timing.CompSBM, timing.CompChaining, timing.CompCodeCacheLookup, timing.CompTOLOther} {
		if comps[c] == 0 {
			t.Errorf("component %s never appeared in the stream", c)
		}
	}
}

func TestEngineModeStaticCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	eng, _ := runBoth(t, fibProgram(300), cfg)
	im, bbm, sbm := eng.Stats.StaticCounts()
	if im+bbm+sbm != eng.Stats.StaticTotal() {
		t.Fatal("static mode counts do not sum")
	}
	if sbm == 0 {
		t.Fatal("no static code promoted to SBM")
	}
}

func TestEngineGuestBudget(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("start")
	b.Label("loop")
	b.Inc(guest.EAX)
	b.Jmp("loop") // never halts
	cfg := DefaultConfig()
	cfg.Cosim = false
	cfg.MaxGuestInsts = 10_000
	eng := NewEngine(cfg, b.MustBuild())
	if err := eng.Run(); err == nil {
		t.Fatal("expected budget error")
	}
}
