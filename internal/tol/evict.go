package tol

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/host"
	"repro/internal/mem"
)

// Eviction policies decide which translations leave a bounded code
// cache when a new placement does not fit. They are a pluggable axis
// of the characterization, registered exactly like optimization passes
// and promotion policies:
//
//   - flush-all: the classic co-designed-VM strategy — drop every
//     translation and restart the cache empty. Cheap bookkeeping, but
//     all chain and IBTC state is lost and the hot set retranslates
//     from scratch.
//   - fifo-region: circular region reclamation — the cache is divided
//     into fixed regions and the oldest region is freed wholesale, as
//     in trace caches that reclaim in allocation order. Translations
//     spanning a region boundary are evicted with the region.
//   - lru-translation: evict the single least-recently-entered
//     translation, repeating until the placement fits. Finest
//     granularity and best hot-set retention, at the cost of
//     fragmentation (holes are reused first-fit).
//
// Policies see the cache through its exported surface (Translations,
// Capacity, Translation.LastUse), so externally registered policies
// are possible; the in-tree ones also serve as reference
// implementations.

// EvictionPolicy selects translations to remove from a full bounded
// code cache. Victims is called repeatedly until the pending placement
// of need instruction slots fits; returning an empty slice aborts the
// placement with an error. Implementations may be stateful (one
// instance serves one cache for one run) but must be deterministic.
type EvictionPolicy interface {
	Name() string
	Victims(c *CodeCache, need int) []*Translation
}

// EvictionFactory builds a fresh policy instance for one cache.
type EvictionFactory func() EvictionPolicy

var evictionRegistry = map[string]EvictionFactory{}

// RegisterEvictionPolicy adds a policy factory to the registry. Names
// must be unique, non-empty, and free of separator characters. Like
// RegisterPass, it is normally called from an init function.
func RegisterEvictionPolicy(name string, f EvictionFactory) {
	if name == "" || strings.ContainsAny(name, ", \t") {
		panic(fmt.Sprintf("tol: invalid eviction policy name %q", name))
	}
	if _, dup := evictionRegistry[name]; dup {
		panic(fmt.Sprintf("tol: duplicate eviction policy %q", name))
	}
	evictionRegistry[name] = f
}

func init() {
	RegisterEvictionPolicy("flush-all", func() EvictionPolicy { return flushAllPolicy{} })
	RegisterEvictionPolicy("fifo-region", func() EvictionPolicy { return &fifoRegionPolicy{} })
	RegisterEvictionPolicy("lru-translation", func() EvictionPolicy { return lruTranslationPolicy{} })
}

// DefaultEvictionPolicy is used when a bounded cache leaves
// CacheConfig.Policy empty.
const DefaultEvictionPolicy = "flush-all"

// RegisteredEvictionPolicies returns the registered policy names,
// sorted.
func RegisteredEvictionPolicies() []string {
	names := make([]string, 0, len(evictionRegistry))
	for n := range evictionRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewEvictionPolicy resolves the configured eviction policy into a
// fresh instance ("" selects flush-all). It returns (nil, nil) for the
// unbounded cache, which never evicts.
func (cc *CacheConfig) NewEvictionPolicy() (EvictionPolicy, error) {
	if cc.CapacityInsts == 0 {
		return nil, nil
	}
	spec := cc.Policy
	if spec == "" {
		spec = DefaultEvictionPolicy
	}
	f, ok := evictionRegistry[spec]
	if !ok {
		return nil, fmt.Errorf("tol: unknown eviction policy %q (registered: %s)",
			spec, strings.Join(RegisteredEvictionPolicies(), ", "))
	}
	return f(), nil
}

// flushAllPolicy drops every translation — the full flush of classic
// co-designed VMs and early DBTs.
type flushAllPolicy struct{}

func (flushAllPolicy) Name() string { return "flush-all" }

func (flushAllPolicy) Victims(c *CodeCache, need int) []*Translation {
	return append([]*Translation(nil), c.Translations()...)
}

// fifoRegions is the number of reclamation regions of the fifo-region
// policy.
const fifoRegions = 4

// fifoRegionPolicy reclaims the cache as a circular sequence of
// fixed-size regions, freeing the next region in rotation wholesale.
type fifoRegionPolicy struct {
	next int // region index to reclaim next
}

func (*fifoRegionPolicy) Name() string { return "fifo-region" }

func (p *fifoRegionPolicy) Victims(c *CodeCache, need int) []*Translation {
	all := c.Translations()
	if len(all) == 0 {
		return nil
	}
	regionSlots := uint32(c.Capacity() / fifoRegions)
	if regionSlots == 0 {
		return append([]*Translation(nil), all...)
	}
	for i := 0; i < fifoRegions; i++ {
		r := uint32(p.next % fifoRegions)
		p.next++
		lo := mem.CodeCacheBase + r*regionSlots*host.InstBytes
		hi := lo + regionSlots*host.InstBytes
		if r == fifoRegions-1 {
			hi = mem.CodeCacheBase + uint32(c.Capacity())*host.InstBytes
		}
		var victims []*Translation
		for _, tr := range all {
			if tr.HostEntry < hi && tr.HostEnd > lo {
				victims = append(victims, tr)
			}
		}
		if len(victims) > 0 {
			return victims
		}
	}
	return nil
}

// lruTranslationPolicy evicts the least-recently-entered translation.
// Recency stamps are unique (placement counts as the first touch and
// the clock only advances), so victim selection is deterministic.
type lruTranslationPolicy struct{}

func (lruTranslationPolicy) Name() string { return "lru-translation" }

func (lruTranslationPolicy) Victims(c *CodeCache, need int) []*Translation {
	var victim *Translation
	for _, tr := range c.Translations() {
		if victim == nil || tr.lastUse < victim.lastUse {
			victim = tr
		}
	}
	if victim == nil {
		return nil
	}
	return []*Translation{victim}
}
