package tol

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/timing"
)

// pressureProgram builds a guest program whose translated footprint
// exceeds a small bounded code cache: `loops` distinct hot inner loops
// (each its own basic block and, once promoted, superblock), each
// calling a shared subroutine (so returns exercise the IBTC), all
// repeated `outer` times so evicted code is re-entered and must
// retranslate.
func pressureProgram(loops, iters, outer int32) *guest.Program {
	b := guest.NewBuilder()
	b.MovRI(guest.ESI, outer)
	b.MovRI(guest.EDI, 0) // checksum
	b.Label("outer")
	for k := int32(0); k < loops; k++ {
		lbl := fmt.Sprintf("loop%d", k)
		b.MovRI(guest.ECX, iters)
		b.MovRI(guest.EAX, k+1)
		b.Label(lbl)
		b.AddRI(guest.EAX, 3)
		b.XorRI(guest.EAX, int32(0x55+k))
		b.Shl(guest.EAX, 1)
		b.AddRR(guest.EDI, guest.EAX)
		b.Call("sub")
		b.Dec(guest.ECX)
		b.Jcc(guest.CondNE, lbl)
	}
	b.Dec(guest.ESI)
	b.Jcc(guest.CondNE, "outer")
	b.Halt()
	b.Label("sub")
	b.AddRI(guest.EDI, 7)
	b.Ret()
	return b.MustBuild()
}

// verifyNoDangling walks every structure that can reference the code
// cache and asserts nothing points into freed space:
//   - every direct jump in surviving translations targets TOL or a
//     live translation,
//   - every translation-table entry maps to a live entry point,
//   - every IBTC line caches a live entry point,
//   - every remembered promotion maps to a live superblock.
func verifyNoDangling(t *testing.T, e *Engine) {
	t.Helper()
	cc := e.CC
	for _, tr := range cc.Translations() {
		for pc := tr.HostEntry; pc < tr.HostEnd; pc += host.InstBytes {
			in := cc.InstAt(pc)
			if in == nil {
				t.Fatalf("translation %#x: no instruction at %#x", tr.HostEntry, pc)
			}
			if in.Op != host.Jal {
				continue
			}
			target := pc + host.InstBytes + uint32(in.Imm)
			if target == TOLEntry {
				continue
			}
			if !cc.Contains(target) {
				t.Fatalf("translation %#x: jal at %#x leaves the cache for %#x", tr.HostEntry, pc, target)
			}
			if cc.EntryAt(target) == nil {
				t.Fatalf("translation %#x: dangling chain at %#x -> %#x", tr.HostEntry, pc, target)
			}
		}
	}
	tt := e.TT
	for i := 0; i < transTableEntries; i++ {
		k := tt.keys[i]
		if k == 0 || k == ttTombstone {
			continue
		}
		entry := tt.vals[i]
		tr := cc.EntryAt(entry)
		if tr == nil {
			t.Fatalf("translation table: guest %#x -> dead entry %#x", k-1, entry)
		}
		if tr.GuestEntry != k-1 {
			t.Fatalf("translation table: guest %#x mapped to translation of %#x", k-1, tr.GuestEntry)
		}
	}
	for i := uint32(0); i < IBTCEntries; i++ {
		addr := ibtcSlotAddr(i)
		entry := e.HostMem.Read32(addr + 4)
		if entry == 0 {
			continue
		}
		if cc.EntryAt(entry) == nil {
			t.Fatalf("IBTC slot %d: dangling host entry %#x", i, entry)
		}
	}
	for seed, sb := range e.promoted {
		if cc.EntryAt(sb.HostEntry) != sb {
			t.Fatalf("promoted map: seed %#x -> dead superblock %#x", seed, sb.HostEntry)
		}
	}
}

// TestEvictionCorrectUnderPressure runs a program whose footprint
// overflows a tiny bounded cache under every registered policy, with
// continuous co-simulation — any dangling chain, stale IBTC line or
// wrong retranslation diverges from the authoritative emulator — and
// then structurally verifies the unlink completeness.
func TestEvictionCorrectUnderPressure(t *testing.T) {
	prog := pressureProgram(14, 40, 3)
	for _, policy := range RegisteredEvictionPolicies() {
		t.Run(policy, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.SBThreshold = 30 // promote quickly so superblocks churn too
			cfg.Cache = CacheConfig{CapacityInsts: 640, Policy: policy}
			eng, _ := runBoth(t, prog, cfg)
			if eng.Stats.Evictions == 0 {
				t.Fatal("expected evictions under a 640-inst cache")
			}
			if eng.Stats.Retranslations == 0 {
				t.Fatal("expected retranslations after eviction")
			}
			if got := eng.Stats.CacheOccupancyPeak; got == 0 || got > 640 {
				t.Fatalf("occupancy peak %d out of range (0, 640]", got)
			}
			if policy == "flush-all" && eng.Stats.FlushCount == 0 {
				t.Fatal("flush-all evicted without counting a flush")
			}
			if eng.CC.UsedInsts() > 640 {
				t.Fatalf("occupancy %d exceeds capacity", eng.CC.UsedInsts())
			}
			verifyNoDangling(t, eng)
		})
	}
}

// TestBoundedNeverEvictingIsStreamIdentical checks the acceptance
// criterion that bounding the cache is behaviour-preserving when no
// eviction fires: a bound far above the program's footprint must
// produce the exact same dynamic instruction stream as the unbounded
// cache.
func TestBoundedNeverEvictingIsStreamIdentical(t *testing.T) {
	prog := pressureProgram(6, 40, 2)
	collect := func(cfg Config) []timing.DynInst {
		eng := NewEngine(cfg, prog)
		var out []timing.DynInst
		var d timing.DynInst
		for eng.Next(&d) {
			out = append(out, d)
		}
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cfg := DefaultConfig()
	cfg.SBThreshold = 30
	unbounded := collect(cfg)
	cfg.Cache = CacheConfig{CapacityInsts: 1 << 20, Policy: "lru-translation"}
	bounded := collect(cfg)
	if len(unbounded) != len(bounded) {
		t.Fatalf("stream lengths differ: unbounded %d, bounded %d", len(unbounded), len(bounded))
	}
	for i := range unbounded {
		if unbounded[i] != bounded[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, unbounded[i], bounded[i])
		}
	}
}

// TestOversizedTranslationStaysInterpreted: a basic block whose
// translation exceeds the whole bounded cache must not kill the run —
// the block stays interpreted (with profile back-off) and everything
// else still translates.
func TestOversizedTranslationStaysInterpreted(t *testing.T) {
	b := guest.NewBuilder()
	b.MovRI(guest.ESI, 0x9000) // scratch arena base
	b.MovRI(guest.EDX, 0)      // index
	b.MovRI(guest.ECX, 40)
	b.Label("loop")
	// One huge straight-line block: 90 indexed stores+loads expand to
	// several hundred host instructions — more than the whole cache.
	for i := int32(0); i < 45; i++ {
		b.StoreIdx(guest.ESI, guest.EDX, 4, i*4, guest.ECX)
		b.LoadIdx(guest.EAX, guest.ESI, guest.EDX, 4, i*4)
	}
	b.Dec(guest.ECX)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.Cache = CacheConfig{CapacityInsts: MinCacheCapacityInsts, Policy: "flush-all"}
	eng, _ := runBoth(t, prog, cfg)
	if eng.Stats.DynIM < 1000 {
		t.Fatalf("oversized block should stay interpreted, DynIM = %d", eng.Stats.DynIM)
	}
	for _, tr := range eng.CC.Translations() {
		if tr.HostEnd-tr.HostEntry > MinCacheCapacityInsts*host.InstBytes {
			t.Fatalf("oversized translation was placed: %d insts", (tr.HostEnd-tr.HostEntry)/host.InstBytes)
		}
	}
}

// TestOversizedSuperblockKeepsBBM: when the formed superblock trace
// exceeds the whole bounded cache, promotion is abandoned gracefully —
// the run continues in BBM (counter reset, no run error).
func TestOversizedSuperblockKeepsBBM(t *testing.T) {
	b := guest.NewBuilder()
	b.MovRI(guest.ESI, 0x9000)
	b.MovRI(guest.EDX, 0)
	b.MovRI(guest.ECX, 80)
	b.Label("loop")
	// Six mid-size blocks connected by direct jumps: each basic block
	// fits the cache, but the superblock trace that follows the jumps
	// does not.
	for blk := 0; blk < 6; blk++ {
		for i := int32(0); i < 12; i++ {
			b.StoreIdx(guest.ESI, guest.EDX, 4, int32(blk)*64+i*4, guest.ECX)
		}
		b.Jmp(fmt.Sprintf("blk%d", blk))
		b.Label(fmt.Sprintf("blk%d", blk))
	}
	b.Dec(guest.ECX)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	cfg.Cache = CacheConfig{CapacityInsts: MinCacheCapacityInsts, Policy: "lru-translation"}
	eng, _ := runBoth(t, prog, cfg)
	if eng.Stats.SBCreated != 0 {
		t.Fatalf("oversized superblock was created (%d)", eng.Stats.SBCreated)
	}
	if eng.Stats.DynBBM == 0 {
		t.Fatal("expected execution to continue in BBM after abandoned promotion")
	}
}

// place puts n nop instructions into the cache as a fake translation.
func place(t *testing.T, cc *CodeCache, guestEntry uint32, n int) *Translation {
	t.Helper()
	tr := &Translation{Kind: KindBB, GuestEntry: guestEntry, GuestLen: n}
	code := make([]host.Inst, n)
	base, err := cc.Alloc(n)
	if err != nil {
		t.Fatal(err)
	}
	cc.PlaceAt(base, tr, code, 0, n, nil)
	return tr
}

func newBounded(t *testing.T, capacity int, policy string) *CodeCache {
	t.Helper()
	cfg := CacheConfig{CapacityInsts: capacity, Policy: policy}
	p, err := cfg.NewEvictionPolicy()
	if err != nil {
		t.Fatal(err)
	}
	return NewBoundedCodeCache(cfg, p)
}

func TestFlushAllResetsCache(t *testing.T) {
	cc := newBounded(t, 256, "flush-all")
	var flushes int
	cc.OnEvict = func(ev EvictEvent) {
		if !ev.Flush {
			t.Error("flush-all eviction must report Flush")
		}
		flushes++
	}
	for i := 0; i < 3; i++ {
		place(t, cc, 0x8000_0000+uint32(i)*64, 80)
	}
	// 240/256 used; the next 80 do not fit -> full flush.
	tr := place(t, cc, 0x8000_1000, 80)
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
	if got := len(cc.Translations()); got != 1 {
		t.Fatalf("translations after flush = %d, want 1", got)
	}
	if tr.HostEntry != cc.PCOf(0) {
		t.Fatalf("post-flush placement at %#x, want cache base", tr.HostEntry)
	}
	if cc.UsedInsts() != 80 || cc.OccupancyPeak() != 240 {
		t.Fatalf("used %d peak %d, want 80/240", cc.UsedInsts(), cc.OccupancyPeak())
	}
}

func TestLRUEvictsLeastRecentlyTouched(t *testing.T) {
	cc := newBounded(t, 256, "lru-translation")
	a := place(t, cc, 0x8000_0000, 100)
	bTr := place(t, cc, 0x8000_0100, 100)
	cc.Touch(a) // a is now more recent than b
	var victims []*Translation
	cc.OnEvict = func(ev EvictEvent) { victims = append(victims, ev.Victims...) }
	c := place(t, cc, 0x8000_0200, 100) // forces eviction of b
	if len(victims) != 1 || victims[0] != bTr {
		t.Fatalf("victims = %v, want exactly the untouched translation", victims)
	}
	if cc.EntryAt(a.HostEntry) != a || cc.EntryAt(c.HostEntry) != c {
		t.Fatal("survivors lost")
	}
	// The freed hole (b's slots) must be reused first-fit.
	if c.HostEntry != bTr.HostEntry {
		t.Fatalf("new placement at %#x, want reuse of freed %#x", c.HostEntry, bTr.HostEntry)
	}
}

func TestFifoRegionReclaimsInAddressRotation(t *testing.T) {
	cc := newBounded(t, 400, "fifo-region") // regions of 100 slots
	var trs []*Translation
	for i := 0; i < 4; i++ {
		trs = append(trs, place(t, cc, 0x8000_0000+uint32(i)*0x100, 100))
	}
	var batches [][]*Translation
	cc.OnEvict = func(ev EvictEvent) { batches = append(batches, ev.Victims) }
	place(t, cc, 0x8000_1000, 100) // overflow: region 0 reclaimed first
	if len(batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(batches))
	}
	if len(batches[0]) != 1 || batches[0][0] != trs[0] {
		t.Fatalf("first reclaimed batch = %v, want the region-0 translation", batches[0])
	}
	place(t, cc, 0x8000_2000, 100) // next overflow: region 1
	if len(batches) != 2 || batches[1][0] != trs[1] {
		t.Fatalf("second batch should reclaim region 1, got %v", batches)
	}
}

func TestEvictRestoresChainPatches(t *testing.T) {
	cc := newBounded(t, 512, "lru-translation")
	cc.Link(NewTransTable(), nil)
	src := place(t, cc, 0x8000_0000, 100)
	dst := place(t, cc, 0x8000_0100, 100)
	// Register an exit on src and chain it to dst.
	exitPC := src.HostEntry + 50*host.InstBytes
	info := &ExitInfo{Reason: ExitTaken, GuestTarget: dst.GuestEntry}
	src.Exits = map[uint32]*ExitInfo{exitPC: info}
	orig := *cc.InstAt(exitPC)
	if err := cc.Patch(exitPC, dst.HostEntry); err != nil {
		t.Fatal(err)
	}
	info.Chained = true
	if cc.InstAt(exitPC).Op != host.Jal {
		t.Fatal("patch did not install a jal")
	}
	if n := cc.Evict([]*Translation{dst}); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if got := *cc.InstAt(exitPC); got != orig {
		t.Fatalf("chain patch not restored: %+v, want %+v", got, orig)
	}
	if info.Chained {
		t.Fatal("exit still marked chained after unlink")
	}
	// src itself must survive untouched.
	if cc.EntryAt(src.HostEntry) != src {
		t.Fatal("source translation evicted")
	}
}

func TestPatchUnplacedTyped(t *testing.T) {
	cc := NewCodeCache()
	tr := place(t, cc, 0x8000_0000, 8)
	// Inside the cache region but never placed: typed error.
	err := cc.Patch(tr.HostEnd+64, tr.HostEntry)
	if !errors.Is(err, ErrUnplacedPatch) {
		t.Fatalf("err = %v, want ErrUnplacedPatch", err)
	}
	// Outside the region entirely.
	if err := cc.Patch(0x1000, tr.HostEntry); !errors.Is(err, ErrUnplacedPatch) {
		t.Fatalf("err = %v, want ErrUnplacedPatch", err)
	}
	// Freed slots are unplaced again.
	pc := tr.HostEntry
	if n := cc.Evict([]*Translation{tr}); n != 1 {
		t.Fatal("evict failed")
	}
	if err := cc.Patch(pc, pc); !errors.Is(err, ErrUnplacedPatch) {
		t.Fatalf("patch into freed slot: err = %v, want ErrUnplacedPatch", err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cc   CacheConfig
		ok   bool
	}{
		{"unbounded", CacheConfig{}, true},
		{"bounded-default-policy", CacheConfig{CapacityInsts: 4096}, true},
		{"bounded-named", CacheConfig{CapacityInsts: 4096, Policy: "fifo-region"}, true},
		{"negative", CacheConfig{CapacityInsts: -1}, false},
		{"too-small", CacheConfig{CapacityInsts: 64}, false},
		{"too-big", CacheConfig{CapacityInsts: int(archCapacityInsts) + 1}, false},
		{"policy-without-bound", CacheConfig{Policy: "flush-all"}, false},
		{"unknown-policy", CacheConfig{CapacityInsts: 4096, Policy: "random"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cache = tc.cc
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}

func TestTransTableDeleteTombstones(t *testing.T) {
	tt := NewTransTable()
	// Two keys colliding into one probe chain.
	g1, g2 := uint32(0x8048000), uint32(0x8048000+uint32(transTableEntries)*8)
	tt.Insert(g1, 0x4000000)
	tt.Insert(g2, 0x4000100)
	if !tt.Delete(g1, 0x4000000) {
		t.Fatal("delete failed")
	}
	if tt.Delete(g1, 0x4000000) {
		t.Fatal("double delete succeeded")
	}
	// g2 must remain reachable through the tombstone.
	if v, ok, _ := tt.Lookup(g2); !ok || v != 0x4000100 {
		t.Fatalf("lookup after delete: %v %v", v, ok)
	}
	if _, ok, _ := tt.Lookup(g1); ok {
		t.Fatal("deleted key still found")
	}
	// Stale deletes (value superseded) must be refused.
	tt.Insert(g1, 0x4000200)
	if tt.Delete(g1, 0x4000000) {
		t.Fatal("stale delete removed a superseded mapping")
	}
	if v, ok, _ := tt.Lookup(g1); !ok || v != 0x4000200 {
		t.Fatalf("superseded mapping lost: %v %v", v, ok)
	}
	if tt.Len() != 2 {
		t.Fatalf("len = %d, want 2", tt.Len())
	}
}
