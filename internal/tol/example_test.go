package tol

import "fmt"

// noteEverySB is a minimal guest-stage pass: it visits every live
// trace instruction without transforming anything, showing the
// Pass contract (Name/Stage/Run → PassReport) that the cost model
// bills and Fig7b reports per pass.
type noteEverySB struct{}

func (noteEverySB) Name() string     { return "note" }
func (noteEverySB) Stage() PassStage { return StageGuest }

func (noteEverySB) Run(p *tracePlan) PassReport {
	visits := 0
	for i := range p.insts {
		if !p.insts[i].drop {
			visits++
		}
	}
	return PassReport{Pass: "note", Visits: visits}
}

// ExampleRegisterPass registers a custom optimization pass and selects
// it in a pipeline spec. Passes operate on the package's trace plan,
// so new passes live in this package; registration makes them
// available to Config.Passes specs, the -passes flag, and the per-pass
// SBM cost attribution. (The example is compile-checked only: the
// registry is global and a test run must not mutate it.)
func ExampleRegisterPass() {
	RegisterPass(noteEverySB{})

	cfg := DefaultConfig()
	cfg.Passes = "constprop,dce,note,rle,sched"
	if err := cfg.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	names, _ := cfg.PipelineNames()
	fmt.Println(names)
}

// largestFirstPolicy evicts the largest translation first: coarse,
// but it frees the most contiguous space per unlink. It only needs
// the cache's exported surface, so policies like it could live in any
// package.
type largestFirstPolicy struct{}

func (largestFirstPolicy) Name() string { return "largest-first" }

func (largestFirstPolicy) Victims(c *CodeCache, need int) []*Translation {
	var big *Translation
	for _, tr := range c.Translations() {
		if big == nil || tr.HostEnd-tr.HostEntry > big.HostEnd-big.HostEntry {
			big = tr
		}
	}
	if big == nil {
		return nil
	}
	return []*Translation{big}
}

// ExampleRegisterEvictionPolicy registers a custom code-cache eviction
// policy and selects it in a bounded CacheConfig. (Compile-checked
// only, for the same registry-mutation reason as ExampleRegisterPass.)
func ExampleRegisterEvictionPolicy() {
	RegisterEvictionPolicy("largest-first", func() EvictionPolicy { return largestFirstPolicy{} })

	cfg := DefaultConfig()
	cfg.Cache = CacheConfig{CapacityInsts: 4096, Policy: "largest-first"}
	fmt.Println(cfg.Validate())
}
