package tol

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/guest"
	"repro/internal/timing"
)

func hotLoopProgram(t *testing.T, iters int32) *guest.Program {
	t.Helper()
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EAX, 0)
	b.MovRI(guest.ECX, iters)
	b.Label("loop")
	b.AddRR(guest.EAX, guest.ECX)
	b.XorRI(guest.EAX, 0x55)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchedStreamEqualsUnbatched pins the batching invariant: the
// instruction sequence delivered through NextBatch is exactly the
// sequence delivered through Next, element for element — batching is
// transport, not semantics.
func TestBatchedStreamEqualsUnbatched(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cosim = false
	cfg.SBThreshold = 50

	p := hotLoopProgram(t, 500)
	var viaNext []timing.DynInst
	e1 := NewEngine(cfg, p)
	var d timing.DynInst
	for e1.Next(&d) {
		viaNext = append(viaNext, d)
	}
	if err := e1.Err(); err != nil {
		t.Fatal(err)
	}

	var viaBatch []timing.DynInst
	e2 := NewEngine(cfg, p)
	buf := make([]timing.DynInst, 97) // odd size: batches straddle bursts
	for {
		n := e2.NextBatch(buf)
		if n == 0 {
			break
		}
		viaBatch = append(viaBatch, buf[:n]...)
	}
	if err := e2.Err(); err != nil {
		t.Fatal(err)
	}

	if len(viaNext) != len(viaBatch) {
		t.Fatalf("stream lengths differ: Next=%d NextBatch=%d", len(viaNext), len(viaBatch))
	}
	for i := range viaNext {
		if viaNext[i] != viaBatch[i] {
			t.Fatalf("stream diverges at %d:\n next:  %+v\n batch: %+v", i, viaNext[i], viaBatch[i])
		}
	}
	if !reflect.DeepEqual(e1.Stats.Summary(), e2.Stats.Summary()) {
		t.Error("Stats differ between Next and NextBatch consumption")
	}
}

// drainSteady pulls n instructions from a warmed engine, failing the
// test on a run error.
func drainSteady(t *testing.T, e *Engine, buf []timing.DynInst, n int) {
	t.Helper()
	for got := 0; got < n; {
		k := e.NextBatch(buf)
		if k == 0 {
			t.Fatalf("stream ended early (err=%v)", e.Err())
		}
		got += k
	}
}

// TestSteadyStateZeroAllocsTranslated asserts the translated-execution
// hot path allocates nothing per instruction once warmed up: the
// stream arena, dispatch metadata and decode cache are all
// preallocated or amortized.
func TestSteadyStateZeroAllocsTranslated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cosim = false
	e := NewEngine(cfg, hotLoopProgram(t, 2_000_000))
	buf := make([]timing.DynInst, 512)
	drainSteady(t, e, buf, 200_000) // warm: translate, chain, fill arenas

	allocs := testing.AllocsPerRun(20, func() {
		drainSteady(t, e, buf, 10_000)
	})
	if allocs != 0 {
		t.Errorf("translated steady state: %.1f allocs per 10k-inst batch, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocsInterp asserts the interpreter loop
// (translation disabled via an unreachable threshold) allocates
// nothing per step in steady state.
func TestSteadyStateZeroAllocsInterp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cosim = false
	cfg.BBThreshold = 1 << 30 // never translate: pure IM
	e := NewEngine(cfg, hotLoopProgram(t, 2_000_000))
	buf := make([]timing.DynInst, 512)
	drainSteady(t, e, buf, 100_000) // warm: profile slots, static marks

	allocs := testing.AllocsPerRun(20, func() {
		drainSteady(t, e, buf, 10_000)
	})
	if allocs != 0 {
		t.Errorf("interpreter steady state: %.1f allocs per 10k-inst batch, want 0", allocs)
	}
}

// TestEngineRunContextCancelled pins the interpreter-only cancellation
// contract: an engine driven without a timing simulator (the -O0 /
// IM-dominated shape) honors context cancellation from inside its
// generation loop instead of interpreting to completion.
func TestEngineRunContextCancelled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cosim = false
	cfg.BBThreshold = 1 << 30 // stay in guest.Step forever
	e := NewEngine(cfg, hotLoopProgram(t, 2_000_000_000))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() { done <- e.RunContext(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine ignored cancellation for 10s")
	}
}
