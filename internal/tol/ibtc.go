package tol

import "repro/internal/mem"

// IBTC is the Indirect Branch Translation Cache: a direct-mapped table
// of (guest target, host entry) pairs probed inline by translated code.
// Because the probe sequence is real host code, the table contents must
// live in simulated host memory; this type wraps the raw memory with
// typed accessors for the TOL side (fills and invalidations).
//
// The inline probe costs ~10 host instructions on a hit; a miss
// transitions to TOL for a code cache lookup and an IBTC update —
// "still, the overhead is in the order of tens of RISC instructions"
// as the paper puts it.
type IBTC struct {
	m     mem.Memory
	Fills uint64
	Hits  uint64 // counted by the engine at probe sites
	Miss  uint64
}

// NewIBTC wraps host memory with IBTC accessors. Entries start zeroed
// (tag 0 never matches a real guest target because guest code is
// loaded well above address 0).
func NewIBTC(m mem.Memory) *IBTC {
	return &IBTC{m: m}
}

// slotFor returns the IBTC slot index of a guest target.
func ibtcSlotFor(target uint32) uint32 {
	return (target >> 2) & ibtcMask
}

// Fill installs the (guest target → host entry) pair.
func (c *IBTC) Fill(target, hostEntry uint32) {
	slot := ibtcSlotFor(target)
	addr := ibtcSlotAddr(slot)
	c.m.Write32(addr, target)
	c.m.Write32(addr+4, hostEntry)
	c.Fills++
}

// Peek reads the entry that a probe of target would see.
func (c *IBTC) Peek(target uint32) (tag, hostEntry uint32) {
	addr := ibtcSlotAddr(ibtcSlotFor(target))
	return c.m.Read32(addr), c.m.Read32(addr + 4)
}

// Invalidate clears the slot holding target, if it matches.
func (c *IBTC) Invalidate(target uint32) {
	addr := ibtcSlotAddr(ibtcSlotFor(target))
	if c.m.Read32(addr) == target {
		c.m.Write32(addr, 0)
		c.m.Write32(addr+4, 0)
	}
}

// InvalidateHostRanges clears every line whose cached host entry falls
// in any of the given [lo, hi) ranges — the unlink step of code-cache
// eviction, which must leave no line pointing into freed cache space.
// One pass over the table serves a whole eviction batch. Returns the
// number of lines cleared. (Empty lines cache host entry 0, far below
// the code-cache region, so they are never matched.)
func (c *IBTC) InvalidateHostRanges(ranges [][2]uint32) int {
	if len(ranges) == 0 {
		return 0
	}
	n := 0
	for i := uint32(0); i < IBTCEntries; i++ {
		addr := ibtcSlotAddr(i)
		he := c.m.Read32(addr + 4)
		if he == 0 {
			continue
		}
		for _, r := range ranges {
			if he >= r[0] && he < r[1] {
				c.m.Write32(addr, 0)
				c.m.Write32(addr+4, 0)
				n++
				break
			}
		}
	}
	return n
}

// InvalidateHostRange clears every line whose cached host entry falls
// in [lo, hi).
func (c *IBTC) InvalidateHostRange(lo, hi uint32) int {
	return c.InvalidateHostRanges([][2]uint32{{lo, hi}})
}
