package tol

import "repro/internal/mem"

// TOL routine text layout. Each TOL activity owns a PC range inside the
// TOL code region; the cost model walks these ranges when the activity
// runs, so the instruction-cache behaviour of TOL (small, hot footprint
// that lives in L1I) emerges from which routines execute.
const (
	// TOLEntry is the service entry point translated code jumps to when
	// it needs TOL (exit stubs, IBTC misses, promotion triggers). The
	// functional engine intercepts this PC.
	TOLEntry = mem.TOLCodeBase

	// Routine text bases (sizes are implicit in the cost model's walks).
	dispatchText  = mem.TOLCodeBase + 0x0100   // main execution loop
	interpText    = mem.TOLCodeBase + 0x1000   // interpreter handlers, 128B/opcode
	translateText = mem.TOLCodeBase + 0x8000   // BBM translator
	optimizeText  = mem.TOLCodeBase + 0x1_0000 // SBM optimizer passes
	lookupText    = mem.TOLCodeBase + 0x2_0000 // code cache lookup
	chainText     = mem.TOLCodeBase + 0x2_1000 // chaining/patching
	ibtcFillText  = mem.TOLCodeBase + 0x2_2000 // IBTC miss service
	evictText     = mem.TOLCodeBase + 0x2_3000 // code cache eviction/unlink
)

// interpHandlerText returns the text base of the interpreter handler
// for opcode op. Distinct handlers give the interpreter a realistic
// instruction footprint and indirect-dispatch target spread.
func interpHandlerText(op uint8) uint32 {
	return interpText + uint32(op)*128
}

// Translation-table geometry: an open-addressing hash table of
// (guest-IP, code-cache entry) pairs. Probes during code cache lookup
// touch these addresses — the data-intensive traversal the paper
// identifies as a dominant overhead for indirect-branch-heavy
// applications.
const (
	transTableEntries = 1 << 16
	transTableMask    = transTableEntries - 1
	transEntryBytes   = 8
)

// transSlotAddr returns the simulated address of translation-table slot i.
func transSlotAddr(i uint32) uint32 {
	return mem.TransTableBase + i*transEntryBytes
}

// IBTC geometry: direct-mapped, tag + target per entry. Probed inline
// by translated code (real host instructions). The size follows the
// small translation caches of the indirect-branch literature the paper
// builds on; applications with many distinct indirect targets (deep
// call trees, wide dispatch tables) suffer conflict misses and fall
// back to TOL code cache lookups — the perlbench behaviour.
const (
	// IBTCEntries is the number of IBTC slots.
	IBTCEntries = 256
	ibtcMask    = IBTCEntries - 1
	// ibtcEntryBytes is the size of one IBTC entry (tag word + target word).
	ibtcEntryBytes = 8
)

// ibtcSlotAddr returns the simulated address of IBTC slot i.
func ibtcSlotAddr(i uint32) uint32 {
	return mem.IBTCBase + i*ibtcEntryBytes
}

// Profile-table geometry: one 8-byte slot per profiled basic block
// (execution counter + padding), updated by real instrumentation code
// in BBM translations.
const profSlotBytes = 8

func profSlotAddr(i uint32) uint32 {
	return mem.ProfileTableBase + i*profSlotBytes
}

// hashGuest is the Fibonacci hash TOL uses for both the translation
// table and the IBTC index.
func hashGuest(g uint32) uint32 { return g * 2654435761 }
