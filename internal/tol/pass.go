package tol

import (
	"fmt"
	"strings"
)

// The SBM optimizer is a pipeline of named passes. Each pass is a
// guest-level (trace IR) or host-level (emitted code) transformation
// with a uniform Run contract, so the cost model can bill SBM time per
// pass and experiments can ablate individual passes or whole presets
// without touching the engine.
//
// Passes register themselves in a package-level registry; pipelines
// are parsed from comma-separated spec strings ("constprop,dce,rle,
// sched") or selected through the O0–O3 presets. Pass implementations
// operate on the unexported trace plan, so the set of passes is closed
// to this package by design: the registry exists for *selection and
// ordering*, not for out-of-tree extension — exactly the configuration
// surface the per-activity characterization needs.

// PassStage tells the pipeline driver where a pass runs relative to
// host-code emission.
type PassStage uint8

// Pass stages.
const (
	// StageGuest passes transform the guest-level trace plan before
	// host code is emitted (constprop, dce, rle).
	StageGuest PassStage = iota
	// StageHost passes transform the emitted host code after sealing
	// (sched). Within a pipeline spec, guest-stage passes always run
	// before host-stage ones; the spec order is preserved within each
	// stage.
	StageHost
)

func (s PassStage) String() string {
	if s == StageGuest {
		return "guest"
	}
	return "host"
}

// PassReport quantifies one pass invocation over one superblock.
type PassReport struct {
	// Pass is the registered pass name.
	Pass string `json:"pass"`
	// Visits is the number of IR instruction visits the cost model
	// bills for the pass (each visit is rendered as a load-modify-store
	// walk over the IR buffer).
	Visits int `json:"visits"`
	// Eliminated counts guest instructions the pass removed or reduced:
	// dropped or folded to constants (constprop, dce), or memory
	// accesses absorbed into registers (rle).
	Eliminated int `json:"eliminated"`
}

// Pass is one named SBM optimization pass. Run transforms the trace
// plan in place (guest stage) or the plan's sealed host code (host
// stage) and reports the work done for the cost model.
type Pass interface {
	Name() string
	Stage() PassStage
	Run(p *tracePlan) PassReport
}

var (
	passRegistry = map[string]Pass{}
	passOrder    []string
)

// RegisterPass adds a pass to the registry, making its name available
// to pipeline specs and the O-level presets. Names must be unique and
// free of pipeline-spec metacharacters. Because Pass.Run operates on
// the package's unexported trace plan, new passes are implemented
// inside this package (the registry exists for selection and
// ordering); RegisterPass is exported for API symmetry with
// RegisterEvictionPolicy and RegisteredPromotionPolicies and is
// normally called from an init function.
func RegisterPass(p Pass) {
	name := p.Name()
	if name == "" || name == PassesNone || strings.ContainsAny(name, ", \t") {
		panic(fmt.Sprintf("tol: invalid pass name %q", name))
	}
	if _, dup := passRegistry[name]; dup {
		panic(fmt.Sprintf("tol: duplicate pass %q", name))
	}
	passRegistry[name] = p
	passOrder = append(passOrder, name)
}

func init() {
	RegisterPass(constPropPass{})
	RegisterPass(dcePass{})
	RegisterPass(rlePass{})
	RegisterPass(schedPass{})
}

// RegisteredPasses returns the names of all registered passes in
// registration order.
func RegisteredPasses() []string {
	return append([]string(nil), passOrder...)
}

// LookupPass returns the registered pass with the given name.
func LookupPass(name string) (Pass, bool) {
	p, ok := passRegistry[name]
	return p, ok
}

// Pipeline spec constants.
const (
	// DefaultPasses is the O2 pipeline: the paper's full SBM optimizer
	// (copy/constant propagation and folding, dead code elimination,
	// redundant-load elimination with register allocation, and list
	// instruction scheduling).
	DefaultPasses = "constprop,dce,rle,sched"

	// PassesNone is the explicitly empty pipeline. It is only valid
	// with EnableSBM=false (Config.Validate rejects the combination):
	// to run without any SBM optimization, stop at BBM.
	PassesNone = "none"
)

// optLevels maps the O0–O3 presets to pipeline specs. O0 is the empty
// pipeline and therefore requires SBM to be disabled (ApplyOptLevel
// does both); O2 is today's default; O3 additionally re-runs
// propagation and DCE so second-order folding opportunities exposed by
// the first round are harvested.
var optLevels = map[string]string{
	"O0": PassesNone,
	"O1": "constprop,dce",
	"O2": DefaultPasses,
	"O3": "constprop,dce,constprop,dce,rle,sched",
}

// OptLevelPasses returns the pipeline spec of a preset ("O0".."O3").
func OptLevelPasses(level string) (string, bool) {
	s, ok := optLevels[level]
	return s, ok
}

// ApplyOptLevel configures c for preset optimization level 0..3.
// Level 0 disables SBM entirely (interpretation + BBM only); levels
// 1..3 enable SBM with increasingly aggressive pass pipelines.
func ApplyOptLevel(c *Config, level int) error {
	if level < 0 || level > 3 {
		return fmt.Errorf("tol: optimization level O%d out of range (0..3)", level)
	}
	c.OptLevel = fmt.Sprintf("O%d", level)
	c.Passes = ""
	c.EnableSBM = level > 0
	return nil
}

// ParsePipeline resolves a pipeline spec into the ordered pass list.
// The empty spec selects DefaultPasses; PassesNone selects the empty
// pipeline; otherwise the spec is a comma-separated list of registered
// pass names (repeats allowed — O3 runs propagation twice).
func ParsePipeline(spec string) ([]Pass, error) {
	if spec == "" {
		spec = DefaultPasses
	}
	if spec == PassesNone {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]Pass, 0, len(parts))
	for _, raw := range parts {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("tol: empty pass name in pipeline %q", spec)
		}
		p, ok := LookupPass(name)
		if !ok {
			return nil, fmt.Errorf("tol: unknown pass %q (registered: %s)",
				name, strings.Join(RegisteredPasses(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// pipelineSpec resolves the effective spec string: an explicit Passes
// wins, otherwise the OptLevel preset ("" = O2).
func (c *Config) pipelineSpec() (string, error) {
	if c.Passes != "" {
		return c.Passes, nil
	}
	level := c.OptLevel
	if level == "" {
		level = "O2"
	}
	s, ok := optLevels[level]
	if !ok {
		return "", fmt.Errorf("tol: unknown optimization level %q (have O0..O3)", level)
	}
	return s, nil
}

// Pipeline resolves the configured SBM optimization pipeline.
func (c *Config) Pipeline() ([]Pass, error) {
	spec, err := c.pipelineSpec()
	if err != nil {
		return nil, err
	}
	return ParsePipeline(spec)
}

// PipelineNames returns the distinct pass names of the resolved
// pipeline in first-occurrence order — the column set of per-pass
// reporting (repeated passes aggregate under one name).
func (c *Config) PipelineNames() ([]string, error) {
	pipeline, err := c.Pipeline()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, p := range pipeline {
		if !seen[p.Name()] {
			seen[p.Name()] = true
			names = append(names, p.Name())
		}
	}
	return names, nil
}

// ---- Pass adapters over the optimizer implementations ----

// constPropPass is copy/constant propagation with constant folding
// (including folded flag results and constant side exits).
type constPropPass struct{}

func (constPropPass) Name() string     { return "constprop" }
func (constPropPass) Stage() PassStage { return StageGuest }

func (constPropPass) Run(p *tracePlan) PassReport {
	visits, folded := constPropagate(p)
	return PassReport{Pass: "constprop", Visits: visits, Eliminated: folded}
}

// dcePass removes provably dead register writes and dead flag
// definitions.
type dcePass struct{}

func (dcePass) Name() string     { return "dce" }
func (dcePass) Stage() PassStage { return StageGuest }

func (dcePass) Run(p *tracePlan) PassReport {
	visits, dropped := deadCodeEliminate(p)
	return PassReport{Pass: "dce", Visits: visits, Eliminated: dropped}
}

// rlePass is redundant-load elimination with register allocation:
// repeated loads of one location are cached in the allocatable host
// registers (r46..r63). Its analysis rides the emitter's walk over the
// trace, so — matching the original fused implementation the cost
// model was tuned against — it bills no separate IR visits; Eliminated
// counts the loads served from registers instead of memory.
type rlePass struct{}

func (rlePass) Name() string     { return "rle" }
func (rlePass) Stage() PassStage { return StageGuest }

func (rlePass) Run(p *tracePlan) PassReport {
	eliminated := redundantLoadEliminate(p)
	return PassReport{Pass: "rle", Visits: 0, Eliminated: eliminated}
}

// schedPass list-schedules the straight-line regions of the sealed
// host code (sched.go); it runs at the host stage.
type schedPass struct{}

func (schedPass) Name() string     { return "sched" }
func (schedPass) Stage() PassStage { return StageHost }

func (schedPass) Run(p *tracePlan) PassReport {
	visits := scheduleCode(p.code)
	return PassReport{Pass: "sched", Visits: visits}
}
