package tol

import (
	"encoding/json"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/timing"
)

func TestParsePipeline(t *testing.T) {
	def, err := ParsePipeline("")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range def {
		names = append(names, p.Name())
	}
	if got := strings.Join(names, ","); got != DefaultPasses {
		t.Fatalf("default pipeline = %q, want %q", got, DefaultPasses)
	}

	if none, err := ParsePipeline(PassesNone); err != nil || len(none) != 0 {
		t.Fatalf("'none' pipeline: %v %v", none, err)
	}
	if ws, err := ParsePipeline(" constprop , dce "); err != nil || len(ws) != 2 {
		t.Fatalf("whitespace spec: %v %v", ws, err)
	}
	if _, err := ParsePipeline("constprop,bogus"); err == nil {
		t.Fatal("unknown pass accepted")
	}
	if _, err := ParsePipeline("constprop,,dce"); err == nil {
		t.Fatal("empty pass name accepted")
	}
	// Repeats are allowed (O3 runs propagation twice).
	if rep, err := ParsePipeline("constprop,constprop"); err != nil || len(rep) != 2 {
		t.Fatalf("repeated pass: %v %v", rep, err)
	}
}

func TestOptLevelPresets(t *testing.T) {
	for _, level := range []string{"O0", "O1", "O2", "O3"} {
		spec, ok := OptLevelPasses(level)
		if !ok {
			t.Fatalf("preset %s missing", level)
		}
		if _, err := ParsePipeline(spec); err != nil {
			t.Fatalf("preset %s does not parse: %v", level, err)
		}
	}
	if spec, _ := OptLevelPasses("O2"); spec != DefaultPasses {
		t.Fatalf("O2 preset %q != DefaultPasses", spec)
	}

	cfg := DefaultConfig()
	if err := ApplyOptLevel(&cfg, 0); err != nil {
		t.Fatal(err)
	}
	if cfg.EnableSBM {
		t.Fatal("O0 must disable SBM")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("O0 config invalid: %v", err)
	}
	if err := ApplyOptLevel(&cfg, 3); err != nil {
		t.Fatal(err)
	}
	if !cfg.EnableSBM || cfg.OptLevel != "O3" {
		t.Fatalf("O3 config: %+v", cfg)
	}
	if err := ApplyOptLevel(&cfg, 7); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.BBThreshold = -1 },
		func(c *Config) { c.SBThreshold = -5 },
		func(c *Config) { c.MaxSBBlocks = 0 },
		func(c *Config) { c.MaxSBGuestInsts = 0 },
		func(c *Config) { c.Passes = "bogus" },
		func(c *Config) { c.Passes = PassesNone }, // empty pipeline + SBM
		func(c *Config) { c.OptLevel = "O9" },
		func(c *Config) { c.Promotion = "bogus" },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	// The SBM bounds only matter when SBM is enabled.
	c := DefaultConfig()
	c.EnableSBM = false
	c.MaxSBBlocks = 0
	c.Passes = PassesNone
	if err := c.Validate(); err != nil {
		t.Errorf("SBM-disabled config rejected: %v", err)
	}

	// An invalid config must surface as an engine error, not garbage.
	c = DefaultConfig()
	c.Passes = "bogus"
	eng := NewEngine(c, fibProgram(10))
	if err := eng.Run(); err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Fatalf("engine with bad pipeline: err=%v", err)
	}
}

func TestPromotionPolicies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 5
	cfg.SBThreshold = 100

	fixed, err := cfg.NewPromotionPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Name() != "fixed" {
		t.Fatalf("default policy = %s", fixed.Name())
	}
	if fixed.ShouldTranslate(0x1000, 5) || !fixed.ShouldTranslate(0x1000, 6) {
		t.Fatal("fixed ShouldTranslate does not match BBThreshold")
	}
	if got := fixed.SBThreshold(0x1000); got != 100 {
		t.Fatalf("fixed SBThreshold = %d", got)
	}

	cfg.Promotion = "adaptive"
	ad, err := cfg.NewPromotionPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if got := ad.SBThreshold(0x1000); got != 100 {
		t.Fatalf("adaptive base threshold = %d", got)
	}
	for i := 0; i < adaptiveStep; i++ {
		ad.OnSuperblock(uint32(i))
	}
	if got := ad.SBThreshold(0x1000); got != 200 {
		t.Fatalf("adaptive threshold after %d superblocks = %d, want 200", adaptiveStep, got)
	}
	for i := 0; i < 10*adaptiveStep; i++ {
		ad.OnSuperblock(uint32(i))
	}
	if got := ad.SBThreshold(0x1000); got != 100<<adaptiveMaxShift {
		t.Fatalf("adaptive threshold not capped: %d", got)
	}

	cfg.Promotion = "bogus"
	if _, err := cfg.NewPromotionPolicy(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestAdaptivePromotionEndToEnd runs a multi-loop program under both
// policies: the engine must stay correct (cosim-checked in runBoth)
// and the adaptive policy must never promote more than fixed.
func TestAdaptivePromotionEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	fixedEng, _ := runBoth(t, fibProgram(500), cfg)
	cfg.Promotion = "adaptive"
	adEng, _ := runBoth(t, fibProgram(500), cfg)
	if adEng.Stats.SBCreated > fixedEng.Stats.SBCreated {
		t.Fatalf("adaptive created more superblocks (%d) than fixed (%d)",
			adEng.Stats.SBCreated, fixedEng.Stats.SBCreated)
	}
}

// TestPassReportAccounting checks the per-pass bookkeeping: every
// pipeline pass appears in Stats.SBPasses with one run per SBM
// invocation, the aggregated visit counts match the cost-model
// billing, and the per-pass cost split exactly covers the SBM stream
// the engine emitted.
func TestPassReportAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	cfg.Cosim = false
	eng := NewEngine(cfg, fibProgram(500))
	var d timing.DynInst
	var sbmStream uint64
	for eng.Next(&d) {
		if d.Comp == timing.CompSBM {
			sbmStream++
		}
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats.SBCreated == 0 {
		t.Fatal("no superblocks")
	}

	names, err := cfg.PipelineNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Stats.SBPasses) != len(names) {
		t.Fatalf("SBPasses has %d entries, pipeline has %d distinct passes",
			len(eng.Stats.SBPasses), len(names))
	}
	var visits uint64
	for i, ps := range eng.Stats.SBPasses {
		if ps.Pass != names[i] {
			t.Errorf("SBPasses[%d] = %s, want %s (pipeline order)", i, ps.Pass, names[i])
		}
		if ps.Runs != uint64(eng.Stats.SBCreated) {
			t.Errorf("pass %s ran %d times for %d superblocks", ps.Pass, ps.Runs, eng.Stats.SBCreated)
		}
		visits += ps.Visits
	}
	// The SBM cost stream must be exactly covered by the per-pass split
	// plus the non-pass remainder.
	if got := eng.Stats.SBMInstTotal(); got != sbmStream {
		t.Fatalf("per-pass cost split (%d insts) != SBM stream (%d insts)", got, sbmStream)
	}
	if visits == 0 {
		t.Fatal("no pass visits recorded")
	}
}

// TestPipelineDeterminism: the same pipeline spec must produce
// byte-identical stats across runs, and distinct pipelines are
// honoured (ablating rle changes the emitted superblock code).
func TestPipelineDeterminism(t *testing.T) {
	run := func(passes string) *Engine {
		cfg := DefaultConfig()
		cfg.SBThreshold = 20
		cfg.Cosim = false
		cfg.Passes = passes
		eng := NewEngine(cfg, fibProgram(500))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	marshal := func(e *Engine) string {
		b, err := json.Marshal(&e.Stats)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := run("dce,constprop,sched"), run("dce,constprop,sched")
	if marshal(a) != marshal(b) {
		t.Fatal("same pipeline spec produced different stats")
	}
	if a.CC.UsedInsts() != b.CC.UsedInsts() {
		t.Fatal("same pipeline spec produced different code")
	}
}

// TestRLEAblation: with the rle pass the optimizer absorbs repeated
// loads into registers (Eliminated > 0); ablating it removes the pass
// entirely while the program still computes correctly under
// co-simulation.
func TestRLEAblation(t *testing.T) {
	build := func(passes string) *Engine {
		cfg := DefaultConfig()
		cfg.SBThreshold = 20
		cfg.Passes = passes
		eng, _ := runBoth(t, redundantLoadProgram(), cfg)
		return eng
	}
	with := build("constprop,dce,rle,sched")
	without := build("constprop,dce,sched")
	if with.Stats.SBCreated == 0 || without.Stats.SBCreated == 0 {
		t.Fatal("no superblocks formed")
	}
	var rle *PassStat
	for i := range with.Stats.SBPasses {
		if with.Stats.SBPasses[i].Pass == "rle" {
			rle = &with.Stats.SBPasses[i]
		}
	}
	if rle == nil || rle.Eliminated == 0 {
		t.Fatalf("rle eliminated nothing: %+v", with.Stats.SBPasses)
	}
	for _, ps := range without.Stats.SBPasses {
		if ps.Pass == "rle" {
			t.Fatal("rle ran despite being ablated")
		}
	}
}

// TestRLEBeforeDCE: when a pass ordered after rle drops the load that
// would have filled a cache register, emission must materialize the
// fill at the first surviving use instead of copying from a
// never-written register. The first load's destination is dead (EAX is
// overwritten before any read), so "rle,dce,sched" drops it while the
// second load still carries a use annotation; correctness is checked
// by continuous co-simulation in runBoth.
func TestRLEBeforeDCE(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	b.MovRI(guest.EAX, 7)
	b.Store(guest.EBP, 0, guest.EAX)
	b.MovRI(guest.ECX, 300)
	b.MovRI(guest.EDI, 0)
	b.Label("loop")
	b.Load(guest.EAX, guest.EBP, 0) // dead: EAX overwritten below
	b.MovRI(guest.EAX, 1)
	b.Load(guest.EBX, guest.EBP, 0) // rle use of the dropped load's register
	b.AddRR(guest.EDI, guest.EBX)
	b.AddRR(guest.EDI, guest.EAX)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	cfg.Passes = "rle,dce,sched"
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	if eng.Stats.SBCreated == 0 {
		t.Fatal("no superblock formed")
	}
	if got := eng.GuestState().Regs[guest.EDI]; got != 300*8 {
		t.Fatalf("edi = %d, want %d", got, 300*8)
	}
}

// redundantLoadProgram is a hot loop with three loads of one slot.
func redundantLoadProgram() *guest.Program {
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	b.MovRI(guest.EAX, 7)
	b.Store(guest.EBP, 0, guest.EAX)
	b.MovRI(guest.ECX, 300)
	b.MovRI(guest.EDI, 0)
	b.Label("loop")
	b.Load(guest.EAX, guest.EBP, 0)
	b.Load(guest.EBX, guest.EBP, 0) // redundant
	b.AddRR(guest.EDI, guest.EAX)
	b.AddRR(guest.EDI, guest.EBX)
	b.Load(guest.EDX, guest.EBP, 0) // redundant
	b.AddRR(guest.EDI, guest.EDX)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestPackageDocListsRegisteredPasses keeps the package documentation
// honest: every registered pass name must be enumerated in the package
// comment (config.go), so the doc can never again promise passes that
// do not exist (or hide ones that do).
func TestPackageDocListsRegisteredPasses(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "config.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc == nil {
		t.Fatal("config.go carries no package documentation")
	}
	doc := f.Doc.Text()
	for _, name := range RegisteredPasses() {
		if !strings.Contains(doc, name+":") {
			t.Errorf("package doc does not enumerate registered pass %q", name)
		}
	}
}
