package tol

import "repro/internal/mem"

// ProfileTable manages the per-basic-block execution counters that BBM
// instrumentation code updates. The counters live in simulated host
// memory (the instrumentation load/add/store sequence is real host
// code); TOL reads them through this wrapper when deciding promotions
// and when ranking successors during superblock formation.
//
// Interpreter-side branch-target counters (pre-translation) are also
// allocated here so that the IM bookkeeping cost stream touches real
// profile-table addresses.
type ProfileTable struct {
	m      mem.Memory
	slots  map[uint32]uint32 // guest address -> slot index
	next   uint32
	maxLen uint32
}

// NewProfileTable wraps host memory with profile accessors.
func NewProfileTable(m mem.Memory) *ProfileTable {
	return &ProfileTable{
		m:      m,
		slots:  make(map[uint32]uint32),
		maxLen: (mem.IBTCBase - mem.ProfileTableBase) / profSlotBytes,
	}
}

// SlotAddr returns (allocating if needed) the host address of the
// counter slot for guest address g.
func (p *ProfileTable) SlotAddr(g uint32) uint32 {
	if idx, ok := p.slots[g]; ok {
		return profSlotAddr(idx)
	}
	if p.next >= p.maxLen {
		panic("tol: profile table exhausted")
	}
	idx := p.next
	p.next++
	p.slots[g] = idx
	return profSlotAddr(idx)
}

// Count reads the execution counter for guest address g (0 if never
// allocated).
func (p *ProfileTable) Count(g uint32) uint32 {
	idx, ok := p.slots[g]
	if !ok {
		return 0
	}
	return p.m.Read32(profSlotAddr(idx))
}

// Bump increments the counter for guest address g by one and returns
// the new value, allocating the slot if needed. Used for IM-side
// branch-target counting (the translated-code side increments via real
// instrumentation instructions instead).
func (p *ProfileTable) Bump(g uint32) uint32 {
	addr := p.SlotAddr(g)
	v := p.m.Read32(addr) + 1
	p.m.Write32(addr, v)
	return v
}

// Reset zeroes the counter for guest address g.
func (p *ProfileTable) Reset(g uint32) {
	if idx, ok := p.slots[g]; ok {
		p.m.Write32(profSlotAddr(idx), 0)
	}
}

// Allocated returns how many profile slots exist.
func (p *ProfileTable) Allocated() int { return len(p.slots) }
