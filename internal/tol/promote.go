package tol

import (
	"fmt"
	"sort"
	"strings"
)

// PromotionPolicy decides when guest code climbs the translation
// tiers. It replaces the raw IM/BBth and BB/SBth threshold comparisons
// that used to be hardcoded in the engine and the BBM instrumentation
// stub, so promotion behaviour is a pluggable axis of the
// characterization (like the pass pipeline).
//
// The engine consults ShouldTranslate on every profiled branch target;
// the translator consults SBThreshold once per BBM translation and
// compiles the returned count into the block's profiling
// instrumentation (a real load/compare/branch sequence in the code
// cache — once emitted, that block's bar is fixed, exactly as in a
// real TOL). Policies may be stateful; the engine owns one instance
// per run, so results stay deterministic and Session-cacheable.
type PromotionPolicy interface {
	Name() string

	// ShouldTranslate reports whether a branch target that has now been
	// interpreted count times should be translated to a BBM block.
	ShouldTranslate(target uint32, count uint32) bool

	// SBThreshold returns the execution count at which the BBM block at
	// entry promotes to a superblock.
	SBThreshold(entry uint32) uint32

	// OnSuperblock informs the policy that a superblock was created for
	// seed, letting adaptive policies adjust subsequent thresholds.
	OnSuperblock(seed uint32)
}

// PromotionFactory builds a policy instance parameterized by the
// config's BBThreshold/SBThreshold fields.
type PromotionFactory func(cfg *Config) PromotionPolicy

var promotionRegistry = map[string]PromotionFactory{}

func registerPromotionPolicy(name string, f PromotionFactory) {
	if _, dup := promotionRegistry[name]; dup {
		panic(fmt.Sprintf("tol: duplicate promotion policy %q", name))
	}
	promotionRegistry[name] = f
}

func init() {
	registerPromotionPolicy("fixed", func(cfg *Config) PromotionPolicy {
		return &FixedPromotion{BB: cfg.BBThreshold, SB: cfg.SBThreshold}
	})
	registerPromotionPolicy("adaptive", func(cfg *Config) PromotionPolicy {
		return &AdaptivePromotion{BB: cfg.BBThreshold, SB: cfg.SBThreshold}
	})
}

// RegisteredPromotionPolicies returns the registered policy names,
// sorted.
func RegisteredPromotionPolicies() []string {
	names := make([]string, 0, len(promotionRegistry))
	for n := range promotionRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPromotionPolicy resolves the configured policy ("" selects the
// paper's fixed-threshold policy).
func (c *Config) NewPromotionPolicy() (PromotionPolicy, error) {
	spec := c.Promotion
	if spec == "" {
		spec = "fixed"
	}
	f, ok := promotionRegistry[spec]
	if !ok {
		return nil, fmt.Errorf("tol: unknown promotion policy %q (registered: %s)",
			spec, strings.Join(RegisteredPromotionPolicies(), ", "))
	}
	return f(c), nil
}

// FixedPromotion is the paper's policy: two fixed thresholds, IM/BBth
// for interpretation-to-BBM and BB/SBth for BBM-to-SBM.
type FixedPromotion struct {
	BB int // IM/BBth
	SB int // BB/SBth
}

func (p *FixedPromotion) Name() string { return "fixed" }

func (p *FixedPromotion) ShouldTranslate(_ uint32, count uint32) bool {
	return int(count) > p.BB
}

func (p *FixedPromotion) SBThreshold(uint32) uint32 { return uint32(p.SB) }

func (p *FixedPromotion) OnSuperblock(uint32) {}

// Adaptive back-off parameters: every adaptiveStep superblocks the
// promotion bar doubles, up to adaptiveMaxShift doublings.
const (
	adaptiveStep     = 8
	adaptiveMaxShift = 4
)

// AdaptivePromotion backs off as superblocks accumulate: each batch of
// adaptiveStep superblocks doubles the BB/SBth bar for subsequent
// blocks (up to 2^adaptiveMaxShift×). It models the diminishing
// returns of aggressively optimizing ever-colder code — the hottest
// loops promote at the base threshold, while the long tail must prove
// substantially more reuse before SBM is spent on it.
type AdaptivePromotion struct {
	BB    int // IM/BBth
	SB    int // base BB/SBth
	built int // superblocks created so far
}

func (p *AdaptivePromotion) Name() string { return "adaptive" }

func (p *AdaptivePromotion) ShouldTranslate(_ uint32, count uint32) bool {
	return int(count) > p.BB
}

func (p *AdaptivePromotion) SBThreshold(uint32) uint32 {
	shift := p.built / adaptiveStep
	if shift > adaptiveMaxShift {
		shift = adaptiveMaxShift
	}
	return uint32(p.SB) << shift
}

func (p *AdaptivePromotion) OnSuperblock(uint32) { p.built++ }
