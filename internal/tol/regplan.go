package tol

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/host"
)

// regPlan is the per-frontend translation ABI: where each guest
// integer register is pinned in the host register file, and which host
// registers remain for the superblock optimizer's allocatable range.
// The x86 plan is exactly the pre-refactor hard-coded ABI (r32..r39
// for EAX..EDI, r40 for EFLAGS, r46..r63 allocatable), so x86
// translations are byte-identical to the single-frontend translator.
// The rv32 plan pins sixteen registers by spilling the upper half into
// what x86 uses as allocatable space; x0 pins to the host's hardwired
// zero, which makes discarded writes free in translated code.
type regPlan struct {
	isa *guest.ISA

	// reg maps guest integer register -> pinned host register.
	// Entries at or above isa.NumRegs are unused.
	reg [guest.MaxGuestRegs]host.Reg

	// allocFirst..allocLast are available to the superblock register
	// allocator for caching memory values across guest instructions.
	allocFirst, allocLast host.Reg
}

// r returns the pinned host register for guest register g.
func (p *regPlan) r(g guest.Reg) host.Reg { return p.reg[g] }

var x86Plan = func() *regPlan {
	p := &regPlan{isa: guest.X86, allocFirst: allocFirst, allocLast: allocLast}
	for i := 0; i < guest.NumRegs; i++ {
		p.reg[i] = host.GuestReg(uint8(i))
	}
	return p
}()

var rv32Plan = func() *regPlan {
	p := &regPlan{isa: guest.RV32}
	p.reg[0] = host.RZero
	for i := 1; i <= 8; i++ { // x1..x8 -> r32..r39
		p.reg[i] = host.GuestReg(uint8(i - 1))
	}
	for i := 9; i < 16; i++ { // x9..x15 -> r46..r52
		p.reg[i] = allocFirst + host.Reg(i-9)
	}
	p.allocFirst = allocFirst + 7 // r53
	p.allocLast = allocLast       // r63
	return p
}()

// planFor resolves the translation ABI for a frontend. Only frontends
// with a plan can be translated; the engine checks at construction.
func planFor(isa *guest.ISA) (*regPlan, error) {
	switch isa {
	case guest.X86:
		return x86Plan, nil
	case guest.RV32:
		return rv32Plan, nil
	}
	return nil, fmt.Errorf("tol: no translation ABI for ISA %q", isa.Name)
}
