package tol

import (
	"repro/internal/guest"
	"repro/internal/host"
)

// Redundant-load elimination (the "rle" pass). Repeated loads of the
// same (base register, displacement) slot inside a trace are cached in
// the frontend plan's allocatable host registers (r46..r63 for x86) —
// the CSE of the memory pipeline. The pass runs after propagation and DCE (in the default
// pipeline) over the surviving instructions, annotating each affected
// load/store; emission consumes the annotations.
//
// The cache must be invalidated conservatively: any store to a slot
// that is not an exact key match, any stack or indexed memory write,
// and any write to a register used as a cache key base kills the
// affected entries — the same alias discipline the original fused
// emitter implemented.

// rlAction annotates how emission handles a memory instruction after
// redundant-load elimination.
type rlAction uint8

const (
	rlNone         rlAction = iota
	rlAllocLoad             // first load of a repeated slot: load through the allocated register
	rlUseLoad               // later load: copy from the allocated register
	rlStoreThrough          // exact-slot store: update the register, then store
)

// redundantLoadEliminate annotates the plan's loads and stores with
// register-cache actions and returns the number of loads eliminated
// (served from a register instead of the memory window).
func redundantLoadEliminate(p *tracePlan) int {
	// Only slots loaded at least twice are worth a register.
	loadCounts := map[slotKey]int{}
	for i := range p.insts {
		ti := &p.insts[i]
		if !ti.drop && !ti.constDst && ti.in.Op == guest.OpLoad {
			loadCounts[slotKey{ti.in.RB, ti.in.Imm}]++
		}
	}

	cache := map[slotKey]host.Reg{}
	nextAlloc := p.rp.allocFirst
	eliminated := 0
	invalidateAll := func() {
		for k := range cache {
			delete(cache, k)
		}
	}
	invalidateBase := func(b guest.Reg) {
		for k := range cache {
			if k.base == b {
				delete(cache, k)
			}
		}
	}

	for i := range p.insts {
		ti := &p.insts[i]
		ti.rlKind, ti.rlReg = rlNone, 0 // reset: the pass may be re-run
		if ti.drop {
			continue
		}
		in := &ti.in
		switch {
		case ti.sideExit:
			// Side exits read registers but write nothing.

		case ti.constDst:
			invalidateBase(in.R1)

		case in.Op == guest.OpLoad:
			key := slotKey{in.RB, in.Imm}
			if r, ok := cache[key]; ok {
				ti.rlKind, ti.rlReg = rlUseLoad, r
				eliminated++
			} else if loadCounts[key] >= 2 && nextAlloc <= p.rp.allocLast {
				r := nextAlloc
				nextAlloc++
				ti.rlKind, ti.rlReg = rlAllocLoad, r
				cache[key] = r
			}
			// The load overwrites its destination; entries keyed on that
			// base register no longer describe a valid address.
			if p.fault != FaultRLEStaleBase { // injected bug: skip the kill
				invalidateBase(in.R1)
			}

		case in.Op == guest.OpStore:
			key := slotKey{in.RB, in.Imm}
			if r, ok := cache[key]; ok {
				// Exact-slot store: keep the cached value coherent.
				ti.rlKind, ti.rlReg = rlStoreThrough, r
			} else {
				invalidateAll()
			}

		default:
			if in.EndsBlock() {
				continue // final terminator: emission handles it separately
			}
			switch in.Op {
			case guest.OpStoreIdx, guest.OpPushR, guest.OpFStore, guest.OpPopR:
				invalidateAll()
			}
			if d, pure := pureDest(in, ti); pure {
				invalidateBase(guest.Reg(d))
			}
		}
	}
	return eliminated
}
