package tol

import "repro/internal/host"

// Instruction scheduling: a list scheduler run over the straight-line
// regions of a superblock's emitted host code (pass 4 of SBM). It
// reorders independent instructions to hide load and multi-cycle
// execution latencies on the 2-wide in-order host, honoring all
// register (RAW/WAR/WAW) and memory dependencies. Branch instructions
// are region boundaries and never move, so branch offsets, exit
// metadata indices and label targets — all of which sit on or after
// branches — remain valid.

// schedLoadLatency is the assumed load-to-use latency (L1 hit).
const schedLoadLatency = 2

// scheduleCode schedules every straight-line region of e.code in
// place, returning the number of instruction visits (for the cost
// model).
func scheduleCode(e *emitter) int {
	visits := 0
	n := len(e.code)
	start := 0
	for i := 0; i < n; i++ {
		if e.code[i].IsBranch() {
			visits += scheduleRegion(e.code[start:i])
			start = i + 1
		}
	}
	visits += scheduleRegion(e.code[start:n])
	return visits
}

// hostOperands extracts the scoreboard operands of a host instruction
// in a unified namespace (int 0..63, FP 64..95, -1 absent).
func hostOperands(in *host.Inst) (dst, s1, s2 int) {
	dst, s1, s2 = -1, -1, -1
	ir := func(r host.Reg) int {
		if r == host.RZero {
			return -1
		}
		return int(r)
	}
	fr := func(r host.Reg) int { return 64 + int(r) }
	switch in.Op {
	case host.Nop, host.Halt:
	case host.Lui:
		dst = ir(in.Rd)
	case host.Ori, host.Addi, host.Andi, host.Xori, host.Slli, host.Srli,
		host.Srai, host.Slti, host.Sltiu:
		dst, s1 = ir(in.Rd), ir(in.Rs1)
	case host.Add, host.Sub, host.And, host.Or, host.Xor, host.Sll,
		host.Srl, host.Sra, host.Mul, host.Div, host.Slt, host.Sltu:
		dst, s1, s2 = ir(in.Rd), ir(in.Rs1), ir(in.Rs2)
	case host.Ld:
		dst, s1 = ir(in.Rd), ir(in.Rs1)
	case host.St:
		s1, s2 = ir(in.Rs1), ir(in.Rs2)
	case host.Jal:
		dst = ir(in.Rd)
	case host.Jalr:
		dst, s1 = ir(in.Rd), ir(in.Rs1)
	case host.Beq, host.Bne, host.Blt, host.Bge, host.Bltu, host.Bgeu:
		s1, s2 = ir(in.Rs1), ir(in.Rs2)
	case host.FAdd, host.FSub, host.FMul, host.FDiv:
		dst, s1, s2 = fr(in.Rd), fr(in.Rs1), fr(in.Rs2)
	case host.FEq, host.FLt:
		dst, s1, s2 = ir(in.Rd), fr(in.Rs1), fr(in.Rs2)
	case host.FMov:
		dst, s1 = fr(in.Rd), fr(in.Rs1)
	case host.FLd:
		dst, s1 = fr(in.Rd), ir(in.Rs1)
	case host.FSt:
		s1, s2 = ir(in.Rs1), fr(in.Rs2)
	case host.FCvtIF:
		dst, s1 = fr(in.Rd), ir(in.Rs1)
	case host.FCvtFI:
		dst, s1 = ir(in.Rd), fr(in.Rs1)
	}
	return dst, s1, s2
}

func instLatency(in *host.Inst) int {
	if in.IsLoad() {
		return schedLoadLatency
	}
	return in.Class().Latency()
}

// scheduleRegion list-schedules one straight-line region in place.
func scheduleRegion(code []host.Inst) int {
	n := len(code)
	if n < 3 {
		return n
	}

	// Build the dependency DAG.
	succs := make([][]int, n)
	npreds := make([]int, n)
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range succs[from] {
			if s == to {
				return
			}
		}
		succs[from] = append(succs[from], to)
		npreds[to]++
	}

	lastWriter := map[int]int{} // reg -> inst index
	readers := map[int][]int{}  // reg -> inst indices since last write
	lastStore := -1
	var loadsSinceStore []int

	for i := 0; i < n; i++ {
		in := &code[i]
		dst, s1, s2 := hostOperands(in)
		for _, s := range []int{s1, s2} {
			if s < 0 {
				continue
			}
			if w, ok := lastWriter[s]; ok {
				addEdge(w, i) // RAW
			}
			readers[s] = append(readers[s], i)
		}
		if dst >= 0 {
			if w, ok := lastWriter[dst]; ok {
				addEdge(w, i) // WAW
			}
			for _, r := range readers[dst] {
				addEdge(r, i) // WAR
			}
			lastWriter[dst] = i
			readers[dst] = nil
		}
		if in.IsLoad() {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
		if in.IsStore() {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i)
			}
			lastStore = i
			loadsSinceStore = loadsSinceStore[:0]
		}
	}

	// Priority: critical-path length to region end.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		p := instLatency(&code[i])
		for _, s := range succs[i] {
			if prio[s]+instLatency(&code[i]) > p {
				p = prio[s] + instLatency(&code[i])
			}
		}
		prio[i] = p
	}

	// Greedy list scheduling, 2-wide, latency-aware.
	ready := make([]int, 0, n)
	readyAt := make([]int, n)
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]host.Inst, 0, n)
	cycle := 0
	scheduled := 0
	for scheduled < n {
		issued := 0
		for issued < 2 {
			best := -1
			for k, i := range ready {
				if readyAt[i] > cycle {
					continue
				}
				if best < 0 || prio[i] > prio[ready[best]] ||
					(prio[i] == prio[ready[best]] && i < ready[best]) {
					best = k
				}
			}
			if best < 0 {
				break
			}
			i := ready[best]
			ready = append(ready[:best], ready[best+1:]...)
			out = append(out, code[i])
			scheduled++
			issued++
			done := cycle + instLatency(&code[i])
			for _, s := range succs[i] {
				npreds[s]--
				if readyAt[s] < done {
					readyAt[s] = done
				}
				if npreds[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
		cycle++
	}
	copy(code, out)
	return n
}
