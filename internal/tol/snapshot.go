package tol

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/timing"
)

// This file is the single place where every Engine field has an
// explicit snapshot decision. A structural test (TestEngineFieldsHave
// SnapshotDecision) fails compilation of intent: adding a stateful
// field to Engine without extending the decision table below breaks
// the build's test run, so no state can silently escape checkpoints.
//
// Engine field → decision:
//
//	Cfg          captured  EngineSnapshot.Cfg (restore rebuilds from it)
//	isa          captured  EngineSnapshot.ISA (restore rejects a mismatch)
//	plan         rebuilt   derived from isa at construction
//	HostMem      captured  EngineSnapshot.Mem (every touched page)
//	CPU          captured  EngineSnapshot.CPU (R, F as IEEE-754 bits, PC)
//	GuestV       rebuilt   view over the restored HostMem
//	guestMem     rebuilt   interface conversion of GuestV
//	CC           captured  EngineSnapshot.Code (insts, translations, free map)
//	TT           captured  EngineSnapshot.TT (sparse slots incl. tombstones)
//	IB           captured  EngineSnapshot.IBTC counters; contents live in Mem
//	Prof         captured  EngineSnapshot.Prof slot directory; counters in Mem
//	Trans        rebuilt   stateless (LastWork is per-call scratch)
//	cost         captured  EngineSnapshot.Cost (register rotation state)
//	queue        captured  EngineSnapshot.Queue (undelivered stream suffix)
//	dec          rebuilt   pure decode cache over immutable guest code
//	gs           captured  EngineSnapshot.GS
//	inTranslated captured  EngineSnapshot.InTranslated
//	curTrans     captured  EngineSnapshot.CurTrans (entry PC; only meaningful
//	                       while InTranslated — stale pointers are never read)
//	halted       captured  EngineSnapshot.Halted
//	err          excluded  failed engines refuse to snapshot
//	ctx          transient run-scoped cancellation, re-attached by the caller
//	ctxPollIn    transient poll countdown for ctx
//	shadow       captured  EngineSnapshot.Shadow (wholesale: the shadow lags
//	                       the CPU mid-translation, so it cannot be rebuilt)
//	promoted     captured  EngineSnapshot.Promoted (seed → superblock entry)
//	policy       captured  EngineSnapshot.PolicyState via StateSnapshotter
//	evicted      captured  EngineSnapshot.Evicted
//	stopAfter    transient run control, re-armed by the caller after restore
//	paused       transient run control
//	Stats        captured  EngineSnapshot.Stats (deep copy)

// StateSnapshotter is implemented by promotion and eviction policies
// that carry mutable per-run state. Policies without it are treated as
// stateless; a stateful policy that omits it would silently reset at
// restore, so the in-tree stateful policies (AdaptivePromotion,
// fifoRegionPolicy) implement it and the snapshot tests pin the
// round-trip.
type StateSnapshotter interface {
	SnapshotState() (json.RawMessage, error)
	RestoreState(json.RawMessage) error
}

// adaptiveState is the wire form of AdaptivePromotion's mutable state.
type adaptiveState struct {
	Built int `json:"built"`
}

// SnapshotState implements StateSnapshotter.
func (p *AdaptivePromotion) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(adaptiveState{Built: p.built})
}

// RestoreState implements StateSnapshotter.
func (p *AdaptivePromotion) RestoreState(raw json.RawMessage) error {
	var st adaptiveState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tol: adaptive promotion state: %w", err)
	}
	p.built = st.Built
	return nil
}

// fifoRegionState is the wire form of fifoRegionPolicy's rotation.
type fifoRegionState struct {
	Next int `json:"next"`
}

// SnapshotState implements StateSnapshotter.
func (p *fifoRegionPolicy) SnapshotState() (json.RawMessage, error) {
	return json.Marshal(fifoRegionState{Next: p.next})
}

// RestoreState implements StateSnapshotter.
func (p *fifoRegionPolicy) RestoreState(raw json.RawMessage) error {
	var st fifoRegionState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tol: fifo-region state: %w", err)
	}
	p.next = st.Next
	return nil
}

// PageSnap is one touched 4 KiB page of a sparse memory.
type PageSnap struct {
	Num  uint32 `json:"num"`
	Data []byte `json:"data"` // PageSize bytes, JSON base64
}

// CPUSnap captures the host register file. FP registers are encoded as
// IEEE-754 bit patterns so NaN payloads round-trip through JSON.
type CPUSnap struct {
	R     [host.NumRegs]uint32  `json:"r"`
	FBits [host.NumFRegs]uint64 `json:"f_bits"`
	PC    uint32                `json:"pc"`
}

// CostSnap captures the cost emitter's register-rotation state, which
// shapes the dependency distances of subsequent TOL cost streams.
type CostSnap struct {
	RegRot  uint8 `json:"reg_rot"`
	PrevDst uint8 `json:"prev_dst"`
}

// ExitSnap is one translation exit descriptor, keyed by host PC.
type ExitSnap struct {
	PC          uint32 `json:"pc"`
	Reason      uint8  `json:"reason"`
	Retired     int    `json:"retired,omitempty"`
	GuestTarget uint32 `json:"guest_target,omitempty"`
	Dynamic     bool   `json:"dynamic,omitempty"`
	Chained     bool   `json:"chained,omitempty"`
}

// ChainRefSnap is one incoming chain patch recorded on a translation:
// the source translation (by entry PC), the patched slot, and the
// original instruction to restore on eviction. EntryRedirect marks
// BBM→SBM entry patches, whose synthetic exit is dropped (not
// restored) on unlink. DanglingExit marks refs whose exit object is no
// longer the one in the source's Exits map; unlink repair only clears
// Chained on it, so restore substitutes a detached placeholder.
type ChainRefSnap struct {
	From          uint32 `json:"from"`
	PC            uint32 `json:"pc"`
	Orig          []byte `json:"orig"` // host.EncodedBytes canonical encoding
	EntryRedirect bool   `json:"entry_redirect,omitempty"`
	DanglingExit  bool   `json:"dangling_exit,omitempty"`
}

// TranslationSnap is one code-cache entry descriptor.
type TranslationSnap struct {
	Kind       uint8          `json:"kind"`
	GuestEntry uint32         `json:"guest_entry"`
	GuestLen   int            `json:"guest_len"`
	GuestPCs   []uint32       `json:"guest_pcs"`
	HostEntry  uint32         `json:"host_entry"`
	HostEnd    uint32         `json:"host_end"`
	BodyStart  uint32         `json:"body_start"`
	StubStart  uint32         `json:"stub_start"`
	Exits      []ExitSnap     `json:"exits"`
	ProfSlot   uint32         `json:"prof_slot,omitempty"`
	LastUse    uint64         `json:"last_use"`
	Incoming   []ChainRefSnap `json:"incoming,omitempty"`
}

// ExtentSnap is one free range of code-cache instruction slots.
type ExtentSnap struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// CodeCacheSnap captures the code cache: the raw instruction arena
// (including poison slots), every translation descriptor, and the
// allocator bookkeeping. The dispatch metadata arena is not serialized
// — it is a pure function of the instructions and the translations'
// region boundaries, rebuilt on restore.
type CodeCacheSnap struct {
	Insts        []byte            `json:"insts"` // len/EncodedBytes slots
	Translations []TranslationSnap `json:"translations"`
	Free         []ExtentSnap      `json:"free,omitempty"`
	Used         int               `json:"used"`
	Peak         int               `json:"peak"`
	UseClock     uint64            `json:"use_clock"`
}

// TTSlotSnap is one occupied translation-table slot. Tombstones are
// captured too (Key == ^0): they sit on probe chains, so dropping them
// would shorten future lookup streams and break stats byte-identity.
type TTSlotSnap struct {
	Idx uint32 `json:"idx"`
	Key uint32 `json:"key"`
	Val uint32 `json:"val,omitempty"`
}

// TransTableSnap captures the guest-IP → code-cache hash table.
type TransTableSnap struct {
	Slots []TTSlotSnap `json:"slots"`
	Live  int          `json:"live"`
	Occ   int          `json:"occ"`
}

// ProfSlotSnap is one profile-table directory entry (guest address →
// slot index); the counter values themselves live in host memory.
type ProfSlotSnap struct {
	Guest uint32 `json:"guest"`
	Slot  uint32 `json:"slot"`
}

// ProfileSnap captures the profile-table slot directory.
type ProfileSnap struct {
	Slots []ProfSlotSnap `json:"slots"`
	Next  uint32         `json:"next"`
}

// IBTCSnap captures the IBTC counters; the table contents live in host
// memory and travel with the page image.
type IBTCSnap struct {
	Fills uint64 `json:"fills"`
	Hits  uint64 `json:"hits"`
	Miss  uint64 `json:"miss"`
}

// ShadowSnap captures the co-simulation reference emulator wholesale.
// Mid-translation the shadow lags the CPU by the in-flight block's
// retired instructions, so its state cannot be reconstructed from the
// engine's — it is serialized like a second machine.
type ShadowSnap struct {
	State        guest.State       `json:"state"`
	Mem          []PageSnap        `json:"mem"`
	DynInsts     uint64            `json:"dyn_insts"`
	DynBranches  uint64            `json:"dyn_branches"`
	DynIndirect  uint64            `json:"dyn_indirect"`
	DynMemOps    uint64            `json:"dyn_mem_ops"`
	DynFP        uint64            `json:"dyn_fp"`
	Halted       bool              `json:"halted,omitempty"`
	TakenTargets map[uint32]uint64 `json:"taken_targets,omitempty"`
}

// PromotedSnap is one seed → superblock mapping.
type PromotedSnap struct {
	Seed      uint32 `json:"seed"`
	HostEntry uint32 `json:"host_entry"`
}

// EngineSnapshot is a complete, JSON-serializable capture of an Engine
// at a generation boundary (between Next/NextBatch calls). RestoreEngine
// rebuilds an engine that, driven onward, produces a stream and final
// statistics byte-identical to the original continuing uninterrupted.
// The decision table at the top of this file maps every Engine field to
// its slot here.
type EngineSnapshot struct {
	Cfg Config `json:"config"`

	// ISA is the guest frontend the snapshot was taken under. Restore
	// rejects a program declaring a different frontend: the captured
	// register file, code cache and shadow state are all ABI-specific.
	// Empty in pre-frontend snapshots (implicitly x86).
	ISA string `json:"isa,omitempty"`

	Mem []PageSnap  `json:"mem"`
	CPU CPUSnap     `json:"cpu"`
	GS  guest.State `json:"guest_state"`

	InTranslated bool   `json:"in_translated,omitempty"`
	CurTrans     uint32 `json:"cur_trans,omitempty"` // entry PC; set iff InTranslated
	Halted       bool   `json:"halted,omitempty"`

	Queue []timing.DynInst `json:"queue,omitempty"`
	Cost  CostSnap         `json:"cost"`

	Code CodeCacheSnap  `json:"code_cache"`
	TT   TransTableSnap `json:"trans_table"`
	Prof ProfileSnap    `json:"profile"`
	IBTC IBTCSnap       `json:"ibtc"`

	Promoted []PromotedSnap `json:"promoted,omitempty"`
	Evicted  []uint32       `json:"evicted,omitempty"`

	PolicyState      json.RawMessage `json:"policy_state,omitempty"`
	EvictPolicyState json.RawMessage `json:"evict_policy_state,omitempty"`

	Shadow *ShadowSnap `json:"shadow,omitempty"`

	Stats Stats `json:"stats"`
}

// GuestInsts returns the snapshot's position in retired guest
// instructions.
func (sn *EngineSnapshot) GuestInsts() uint64 { return sn.Stats.DynTotal() }

// snapPages serializes every touched page of a sparse memory in page
// order (deterministic for content addressing).
func snapPages(s *mem.Sparse) []PageSnap {
	nums := s.Pages()
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	out := make([]PageSnap, 0, len(nums))
	for _, n := range nums {
		p := s.PageData(n)
		out = append(out, PageSnap{Num: n, Data: append([]byte(nil), p[:]...)})
	}
	return out
}

// restorePages writes the captured pages into s. Writing every captured
// page — all-zero ones included — recreates the exact touched-page set,
// so a later snapshot of the restored machine matches one of the
// original.
func restorePages(s *mem.Sparse, pages []PageSnap) error {
	for _, p := range pages {
		if len(p.Data) != mem.PageSize {
			return fmt.Errorf("tol: page %#x snapshot holds %d bytes, want %d", p.Num, len(p.Data), mem.PageSize)
		}
		s.WriteBytes(p.Num<<12, p.Data)
	}
	return nil
}

// ccPoisonByte marks a poisoned (evicted) instruction slot in the
// serialized arena; host.Encode cannot represent Op == NumOps.
const ccPoisonByte = 0xFF

// cloneStats deep-copies Stats (map and slice fields included).
func cloneStats(s *Stats) Stats {
	c := *s
	if s.StaticMode != nil {
		c.StaticMode = make(map[uint32]Mode, len(s.StaticMode))
		for k, v := range s.StaticMode {
			c.StaticMode[k] = v
		}
	}
	c.SBPasses = append([]PassStat(nil), s.SBPasses...)
	return c
}

// Snapshot captures the engine's complete state. It must be called at a
// generation boundary — before the first Next/NextBatch, between calls,
// or after the stream ended — and refuses to capture a failed engine.
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	if e.err != nil {
		return nil, fmt.Errorf("tol: cannot snapshot failed engine: %w", e.err)
	}
	sn := &EngineSnapshot{
		Cfg: e.Cfg,
		ISA: e.isa.Name,
		Mem: snapPages(e.HostMem),
		CPU: CPUSnap{R: e.CPU.R, PC: e.CPU.PC},
		GS:  e.gs,

		InTranslated: e.inTranslated,
		Halted:       e.halted,

		Cost: CostSnap{RegRot: e.cost.regRot, PrevDst: e.cost.prevDst},

		IBTC:  IBTCSnap{Fills: e.IB.Fills, Hits: e.IB.Hits, Miss: e.IB.Miss},
		Stats: cloneStats(&e.Stats),
	}
	for i, f := range e.CPU.F {
		sn.CPU.FBits[i] = math.Float64bits(f)
	}
	if e.inTranslated {
		if e.curTrans == nil || e.CC.EntryAt(e.curTrans.HostEntry) != e.curTrans {
			return nil, fmt.Errorf("tol: snapshot mid-translation without a live current translation")
		}
		sn.CurTrans = e.curTrans.HostEntry
	}
	if !e.queue.empty() {
		sn.Queue = append([]timing.DynInst(nil), e.queue.buf[e.queue.head:]...)
	}

	sn.Code = e.CC.snapshot()
	sn.TT = e.TT.snapshot()
	sn.Prof = e.Prof.snapshot()

	for seed, tr := range e.promoted {
		sn.Promoted = append(sn.Promoted, PromotedSnap{Seed: seed, HostEntry: tr.HostEntry})
	}
	sort.Slice(sn.Promoted, func(i, j int) bool { return sn.Promoted[i].Seed < sn.Promoted[j].Seed })
	for g := range e.evicted {
		sn.Evicted = append(sn.Evicted, g)
	}
	sort.Slice(sn.Evicted, func(i, j int) bool { return sn.Evicted[i] < sn.Evicted[j] })

	if ss, ok := e.policy.(StateSnapshotter); ok {
		raw, err := ss.SnapshotState()
		if err != nil {
			return nil, err
		}
		sn.PolicyState = raw
	}
	if ss, ok := e.CC.policy.(StateSnapshotter); ok {
		raw, err := ss.SnapshotState()
		if err != nil {
			return nil, err
		}
		sn.EvictPolicyState = raw
	}

	if e.shadow != nil {
		sh := &ShadowSnap{
			State:       e.shadow.State,
			Mem:         snapPages(e.shadow.Mem),
			DynInsts:    e.shadow.DynInsts,
			DynBranches: e.shadow.DynBranches,
			DynIndirect: e.shadow.DynIndirect,
			DynMemOps:   e.shadow.DynMemOps,
			DynFP:       e.shadow.DynFP,
			Halted:      e.shadow.Halted,
		}
		if e.shadow.TakenTargets != nil {
			sh.TakenTargets = make(map[uint32]uint64, len(e.shadow.TakenTargets))
			for k, v := range e.shadow.TakenTargets {
				sh.TakenTargets[k] = v
			}
		}
		sn.Shadow = sh
	}
	return sn, nil
}

// snapshot captures the code cache.
func (c *CodeCache) snapshot() CodeCacheSnap {
	sn := CodeCacheSnap{
		Used:     c.used,
		Peak:     c.peak,
		UseClock: c.useClock,
	}
	sn.Insts = make([]byte, 0, len(c.insts)*host.EncodedBytes)
	for i := range c.insts {
		if c.insts[i].Op >= host.NumOps {
			sn.Insts = append(sn.Insts, ccPoisonByte, 0, 0, 0, 0, 0, 0, 0)
			continue
		}
		sn.Insts = host.Encode(sn.Insts, c.insts[i])
	}
	for _, tr := range c.all {
		ts := TranslationSnap{
			Kind:       uint8(tr.Kind),
			GuestEntry: tr.GuestEntry,
			GuestLen:   tr.GuestLen,
			GuestPCs:   append([]uint32(nil), tr.GuestPCs...),
			HostEntry:  tr.HostEntry,
			HostEnd:    tr.HostEnd,
			BodyStart:  tr.BodyStart,
			StubStart:  tr.StubStart,
			ProfSlot:   tr.ProfSlot,
			LastUse:    tr.lastUse,
		}
		for pc, info := range tr.Exits {
			ts.Exits = append(ts.Exits, ExitSnap{
				PC:          pc,
				Reason:      uint8(info.Reason),
				Retired:     info.Retired,
				GuestTarget: info.GuestTarget,
				Dynamic:     info.Dynamic,
				Chained:     info.Chained,
			})
		}
		sort.Slice(ts.Exits, func(i, j int) bool { return ts.Exits[i].PC < ts.Exits[j].PC })
		for _, ref := range tr.incoming {
			// Refs whose source died stay recorded live but are inert:
			// eviction repair skips them by the same identity check, so
			// they are dropped from the snapshot rather than serialized.
			if c.byEntry[ref.from.HostEntry] != ref.from {
				continue
			}
			rs := ChainRefSnap{
				From:          ref.from.HostEntry,
				PC:            ref.pc,
				EntryRedirect: ref.exit == nil,
			}
			// An exit object can be detached from the source's Exits map
			// while the ref still holds it (a promotion's synthetic exit
			// overwrites or a repair deletes the map entry). Repair only
			// writes Chained=false through such a pointer, so restore can
			// substitute a detached placeholder.
			if ref.exit != nil && ref.from.Exits[ref.pc] != ref.exit {
				rs.DanglingExit = true
			}
			rs.Orig = host.Encode(rs.Orig, ref.orig)
			ts.Incoming = append(ts.Incoming, rs)
		}
		sn.Translations = append(sn.Translations, ts)
	}
	for _, ext := range c.free {
		sn.Free = append(sn.Free, ExtentSnap{Start: ext.start, End: ext.end})
	}
	return sn
}

// snapshot captures the translation table sparsely: every occupied slot
// including tombstones, in index order.
func (t *TransTable) snapshot() TransTableSnap {
	sn := TransTableSnap{Live: t.live, Occ: t.occ}
	for i := uint32(0); i < transTableEntries; i++ {
		if t.keys[i] != 0 {
			sn.Slots = append(sn.Slots, TTSlotSnap{Idx: i, Key: t.keys[i], Val: t.vals[i]})
		}
	}
	return sn
}

// snapshot captures the profile-table slot directory in allocation
// order.
func (p *ProfileTable) snapshot() ProfileSnap {
	sn := ProfileSnap{Next: p.next}
	for g, idx := range p.slots {
		sn.Slots = append(sn.Slots, ProfSlotSnap{Guest: g, Slot: idx})
	}
	sort.Slice(sn.Slots, func(i, j int) bool { return sn.Slots[i].Slot < sn.Slots[j].Slot })
	return sn
}

// RestoreEngine rebuilds an engine from a snapshot for the given guest
// program (the same program the snapshot was taken from — the snapshot
// carries no program image beyond the memory pages, and the restore
// path reuses NewEngine's wiring). The returned engine resumes exactly
// where the original paused.
func RestoreEngine(p *guest.Program, sn *EngineSnapshot) (*Engine, error) {
	e := NewEngine(sn.Cfg, p)
	if e.err != nil {
		return nil, e.err
	}
	if sn.ISA != "" && sn.ISA != e.isa.Name {
		return nil, fmt.Errorf("tol: snapshot taken under ISA %q cannot restore a %q program", sn.ISA, e.isa.Name)
	}
	if err := restorePages(e.HostMem, sn.Mem); err != nil {
		return nil, err
	}
	e.CPU.R = sn.CPU.R
	for i, bits := range sn.CPU.FBits {
		e.CPU.F[i] = math.Float64frombits(bits)
	}
	e.CPU.PC = sn.CPU.PC
	e.gs = sn.GS
	e.halted = sn.Halted

	if err := e.CC.restore(&sn.Code); err != nil {
		return nil, err
	}
	if err := e.TT.restore(&sn.TT); err != nil {
		return nil, err
	}
	e.Prof.restore(&sn.Prof)
	e.IB.Fills, e.IB.Hits, e.IB.Miss = sn.IBTC.Fills, sn.IBTC.Hits, sn.IBTC.Miss

	e.inTranslated = sn.InTranslated
	if sn.InTranslated {
		tr := e.CC.EntryAt(sn.CurTrans)
		if tr == nil {
			return nil, fmt.Errorf("tol: snapshot current translation %#x not in restored cache", sn.CurTrans)
		}
		e.curTrans = tr
	}

	e.queue.buf = append(e.queue.buf[:0], sn.Queue...)
	e.queue.head = 0
	e.cost.regRot, e.cost.prevDst = sn.Cost.RegRot, sn.Cost.PrevDst

	for _, pr := range sn.Promoted {
		tr := e.CC.EntryAt(pr.HostEntry)
		if tr == nil {
			return nil, fmt.Errorf("tol: promoted superblock %#x not in restored cache", pr.HostEntry)
		}
		e.promoted[pr.Seed] = tr
	}
	if len(sn.Evicted) > 0 {
		e.evicted = make(map[uint32]bool, len(sn.Evicted))
		for _, g := range sn.Evicted {
			e.evicted[g] = true
		}
	}

	if sn.PolicyState != nil {
		ss, ok := e.policy.(StateSnapshotter)
		if !ok {
			return nil, fmt.Errorf("tol: snapshot carries promotion-policy state but policy %q has none", e.policy.Name())
		}
		if err := ss.RestoreState(sn.PolicyState); err != nil {
			return nil, err
		}
	}
	if sn.EvictPolicyState != nil {
		ss, ok := e.CC.policy.(StateSnapshotter)
		if !ok {
			return nil, fmt.Errorf("tol: snapshot carries eviction-policy state but the configured policy has none")
		}
		if err := ss.RestoreState(sn.EvictPolicyState); err != nil {
			return nil, err
		}
	}

	switch {
	case sn.Shadow != nil && e.shadow == nil:
		return nil, fmt.Errorf("tol: snapshot carries cosim shadow state but Cosim is disabled")
	case sn.Shadow == nil && e.shadow != nil:
		return nil, fmt.Errorf("tol: snapshot lacks cosim shadow state but Cosim is enabled")
	case sn.Shadow != nil:
		sh := e.shadow
		sh.State = sn.Shadow.State
		sh.Mem = mem.NewSparse()
		if err := restorePages(sh.Mem, sn.Shadow.Mem); err != nil {
			return nil, err
		}
		sh.DynInsts = sn.Shadow.DynInsts
		sh.DynBranches = sn.Shadow.DynBranches
		sh.DynIndirect = sn.Shadow.DynIndirect
		sh.DynMemOps = sn.Shadow.DynMemOps
		sh.DynFP = sn.Shadow.DynFP
		sh.Halted = sn.Shadow.Halted
		if sn.Shadow.TakenTargets != nil {
			sh.TakenTargets = make(map[uint32]uint64, len(sn.Shadow.TakenTargets))
			for k, v := range sn.Shadow.TakenTargets {
				sh.TakenTargets[k] = v
			}
		} else {
			sh.TakenTargets = nil
		}
	}

	e.Stats = cloneStats(&sn.Stats)
	return e, nil
}

// restore rebuilds the code cache from its snapshot: the raw arena is
// decoded, translation descriptors are re-linked (exits, incoming chain
// patches), and the dispatch metadata is recomputed per slot from the
// instructions and region attributions — byte-identical to the live
// arena, since placement, patching and chain restore all maintain it
// through the same rebuildMeta path.
func (c *CodeCache) restore(sn *CodeCacheSnap) error {
	if len(sn.Insts)%host.EncodedBytes != 0 {
		return fmt.Errorf("tol: code-cache snapshot arena is %d bytes (not a multiple of %d)", len(sn.Insts), host.EncodedBytes)
	}
	n := len(sn.Insts) / host.EncodedBytes
	if uint32(n) > c.capacity {
		return fmt.Errorf("tol: code-cache snapshot holds %d slots, capacity %d", n, c.capacity)
	}
	c.insts = make([]host.Inst, n)
	c.meta = make([]timing.DynInst, n)
	c.top = uint32(n)
	for i := 0; i < n; i++ {
		rec := sn.Insts[i*host.EncodedBytes:]
		if rec[0] == ccPoisonByte {
			c.insts[i] = host.Inst{Op: host.NumOps}
			continue
		}
		inst, err := host.Decode(rec)
		if err != nil {
			return fmt.Errorf("tol: code-cache snapshot slot %d: %w", i, err)
		}
		c.insts[i] = inst
	}

	c.byEntry = make(map[uint32]*Translation, len(sn.Translations))
	c.all = c.all[:0]
	c.BBCount, c.SBCount = 0, 0
	for i := range sn.Translations {
		ts := &sn.Translations[i]
		lo, hi := c.slotOf(ts.HostEntry), c.slotOf(ts.HostEnd)
		if ts.HostEntry < mem.CodeCacheBase || hi > uint32(n) || lo >= hi {
			return fmt.Errorf("tol: translation %#x-%#x outside snapshot arena", ts.HostEntry, ts.HostEnd)
		}
		tr := &Translation{
			Kind:       TransKind(ts.Kind),
			GuestEntry: ts.GuestEntry,
			GuestLen:   ts.GuestLen,
			GuestPCs:   append([]uint32(nil), ts.GuestPCs...),
			HostEntry:  ts.HostEntry,
			HostEnd:    ts.HostEnd,
			BodyStart:  ts.BodyStart,
			StubStart:  ts.StubStart,
			ProfSlot:   ts.ProfSlot,
			lastUse:    ts.LastUse,
			Exits:      make(map[uint32]*ExitInfo, len(ts.Exits)),
		}
		for _, ex := range ts.Exits {
			tr.Exits[ex.PC] = &ExitInfo{
				Reason:      ExitReason(ex.Reason),
				Retired:     ex.Retired,
				GuestTarget: ex.GuestTarget,
				Dynamic:     ex.Dynamic,
				Chained:     ex.Chained,
			}
		}
		if c.byEntry[tr.HostEntry] != nil {
			return fmt.Errorf("tol: duplicate translation entry %#x in snapshot", tr.HostEntry)
		}
		c.byEntry[tr.HostEntry] = tr
		c.all = append(c.all, tr) // snapshot order is address order
		if tr.Kind == KindBB {
			c.BBCount++
		} else {
			c.SBCount++
		}
		for s := lo; s < hi; s++ {
			o, comp := tr.OwnerComp(c.PCOf(s))
			c.rebuildMeta(s, o, comp)
		}
	}
	// Second pass: resolve incoming chain references now that every
	// translation exists.
	for i := range sn.Translations {
		ts := &sn.Translations[i]
		tr := c.byEntry[ts.HostEntry]
		for _, rs := range ts.Incoming {
			from := c.byEntry[rs.From]
			if from == nil {
				return fmt.Errorf("tol: chain ref from %#x into %#x: source not in snapshot", rs.From, ts.HostEntry)
			}
			orig, err := host.Decode(rs.Orig)
			if err != nil {
				return fmt.Errorf("tol: chain ref at %#x: %w", rs.PC, err)
			}
			ref := chainRef{from: from, pc: rs.PC, orig: orig}
			switch {
			case rs.EntryRedirect:
				// exit stays nil: unlink deletes the synthetic map entry.
			case rs.DanglingExit:
				ref.exit = &ExitInfo{}
			default:
				ref.exit = from.Exits[rs.PC]
				if ref.exit == nil {
					return fmt.Errorf("tol: chain ref at %#x references missing exit of %#x", rs.PC, rs.From)
				}
			}
			tr.incoming = append(tr.incoming, ref)
		}
	}

	c.free = c.free[:0]
	for _, ext := range sn.Free {
		if ext.Start >= ext.End || ext.End > uint32(n) {
			return fmt.Errorf("tol: free extent [%d,%d) outside snapshot arena", ext.Start, ext.End)
		}
		c.free = append(c.free, extent{start: ext.Start, end: ext.End})
	}
	c.used = sn.Used
	c.peak = sn.Peak
	c.useClock = sn.UseClock
	return nil
}

// restore rebuilds the translation table from its sparse snapshot.
func (t *TransTable) restore(sn *TransTableSnap) error {
	t.keys = [transTableEntries]uint32{}
	t.vals = [transTableEntries]uint32{}
	for _, s := range sn.Slots {
		if s.Idx >= transTableEntries {
			return fmt.Errorf("tol: translation-table snapshot slot %d out of range", s.Idx)
		}
		t.keys[s.Idx] = s.Key
		t.vals[s.Idx] = s.Val
	}
	t.live, t.occ = sn.Live, sn.Occ
	return nil
}

// restore rebuilds the profile-table slot directory; the counter values
// are already back in host memory.
func (p *ProfileTable) restore(sn *ProfileSnap) {
	p.slots = make(map[uint32]uint32, len(sn.Slots))
	for _, s := range sn.Slots {
		p.slots[s.Guest] = s.Slot
	}
	p.next = sn.Next
}
