package tol

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/guest"
	"repro/internal/timing"
)

// TestEngineFieldsHaveSnapshotDecision is the structural guard of the
// checkpoint layer: every Engine field must appear in this table (which
// mirrors the decision table documented in snapshot.go). Adding a
// stateful field to Engine without deciding how snapshots handle it
// fails this test, so no state can silently escape checkpoints.
func TestEngineFieldsHaveSnapshotDecision(t *testing.T) {
	decisions := map[string]string{
		"Cfg":          "captured",
		"isa":          "captured",
		"plan":         "rebuilt",
		"HostMem":      "captured",
		"CPU":          "captured",
		"GuestV":       "rebuilt",
		"guestMem":     "rebuilt",
		"CC":           "captured",
		"TT":           "captured",
		"IB":           "captured",
		"Prof":         "captured",
		"Trans":        "rebuilt",
		"cost":         "captured",
		"queue":        "captured",
		"dec":          "rebuilt",
		"gs":           "captured",
		"inTranslated": "captured",
		"curTrans":     "captured",
		"halted":       "captured",
		"err":          "excluded",
		"ctx":          "transient",
		"ctxPollIn":    "transient",
		"shadow":       "captured",
		"promoted":     "captured",
		"policy":       "captured",
		"evicted":      "captured",
		"stopAfter":    "transient",
		"paused":       "transient",
		"Stats":        "captured",
	}
	typ := reflect.TypeOf(Engine{})
	seen := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		if _, ok := decisions[name]; !ok {
			t.Errorf("Engine field %q has no snapshot decision; extend the table in snapshot.go and this test", name)
		}
	}
	for name := range decisions {
		if !seen[name] {
			t.Errorf("snapshot decision table lists %q, which is no longer an Engine field", name)
		}
	}
}

// drainStream drives the engine until the stream ends (pause, halt or
// error), appending everything to *out.
func drainStream(e *Engine, out *[]timing.DynInst) {
	var buf [256]timing.DynInst
	for {
		n := e.NextBatch(buf[:])
		if n == 0 {
			return
		}
		*out = append(*out, buf[:n]...)
	}
}

func mustStatsJSON(t *testing.T, s *Stats) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("stats marshal: %v", err)
	}
	return b
}

// testSnapshotRoundTrip pauses a run mid-flight, snapshots the engine
// through a full JSON round-trip, restores it, and asserts that the
// resumed run is byte-identical to an uninterrupted one: same stream,
// same final Stats serialization, same guest state.
func testSnapshotRoundTrip(t *testing.T, p *guest.Program, cfg Config) {
	t.Helper()

	// Uninterrupted reference run.
	ref := NewEngine(cfg, p)
	var full []timing.DynInst
	drainStream(ref, &full)
	if err := ref.Err(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !ref.Halted() {
		t.Fatal("reference run did not halt")
	}
	pause := ref.Stats.DynTotal() / 2
	if pause == 0 {
		t.Fatal("reference run too short to pause")
	}

	// Interrupted run: pause at the midpoint and snapshot.
	a := NewEngine(cfg, p)
	a.SetStopAfter(pause)
	var prefix []timing.DynInst
	drainStream(a, &prefix)
	if err := a.Err(); err != nil {
		t.Fatalf("paused run: %v", err)
	}
	if !a.Paused() {
		t.Fatalf("engine finished before the pause bound %d", pause)
	}
	sn, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	blob, err := json.Marshal(sn)
	if err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
	var decoded EngineSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}

	// Restore and resume to completion.
	b, err := RestoreEngine(p, &decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var suffix []timing.DynInst
	drainStream(b, &suffix)
	if err := b.Err(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !b.Halted() {
		t.Fatal("resumed run did not halt")
	}

	if got, want := len(prefix)+len(suffix), len(full); got != want {
		t.Fatalf("stream length: paused %d + resumed %d = %d, uninterrupted %d",
			len(prefix), len(suffix), got, want)
	}
	for i := range full {
		var d timing.DynInst
		if i < len(prefix) {
			d = prefix[i]
		} else {
			d = suffix[i-len(prefix)]
		}
		if d != full[i] {
			t.Fatalf("stream diverges at instruction %d: resumed %+v, uninterrupted %+v", i, d, full[i])
		}
	}
	if got, want := mustStatsJSON(t, &b.Stats), mustStatsJSON(t, &ref.Stats); !bytes.Equal(got, want) {
		t.Fatalf("final stats differ:\nresumed:       %s\nuninterrupted: %s", got, want)
	}
	if d := b.GuestState().Diff(ref.GuestState()); d != "" {
		t.Fatalf("final guest state differs: %s", d)
	}
}

func TestSnapshotRoundTripAllTiers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	testSnapshotRoundTrip(t, fibProgram(500), cfg)
}

func TestSnapshotRoundTripO0(t *testing.T) {
	cfg := DefaultConfig()
	if err := ApplyOptLevel(&cfg, 0); err != nil {
		t.Fatalf("O0: %v", err)
	}
	testSnapshotRoundTrip(t, fibProgram(300), cfg)
}

func TestSnapshotRoundTripO3(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	cfg.OptLevel = "O3"
	testSnapshotRoundTrip(t, pressureProgram(4, 30, 4), cfg)
}

func TestSnapshotRoundTripInterpOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 1 << 30 // nothing ever translates
	testSnapshotRoundTrip(t, fibProgram(200), cfg)
}

func TestSnapshotRoundTripBoundedLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 25
	cfg.Cache = CacheConfig{CapacityInsts: 640, Policy: "lru-translation"}
	testSnapshotRoundTrip(t, pressureProgram(6, 40, 8), cfg)
}

func TestSnapshotRoundTripFifoRegionAdaptive(t *testing.T) {
	// Exercises both StateSnapshotter implementations: the fifo-region
	// eviction rotation and the adaptive promotion back-off.
	cfg := DefaultConfig()
	cfg.SBThreshold = 25
	cfg.Promotion = "adaptive"
	cfg.Cache = CacheConfig{CapacityInsts: 640, Policy: "fifo-region"}
	testSnapshotRoundTrip(t, pressureProgram(6, 40, 8), cfg)
}

// TestSnapshotMidQueue snapshots between single-instruction pops, while
// the engine's stream queue still holds undelivered instructions, and
// checks the restored engine delivers the identical remainder.
func TestSnapshotMidQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	p := fibProgram(100)

	a := NewEngine(cfg, p)
	var head timing.DynInst
	for i := 0; i < 777; i++ {
		if !a.Next(&head) {
			t.Fatalf("stream ended after %d instructions", i)
		}
	}
	sn, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(sn.Queue) == 0 {
		t.Fatal("test intended to snapshot a non-empty queue; adjust the pop count")
	}
	b, err := RestoreEngine(p, sn)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var restA, restB []timing.DynInst
	drainStream(a, &restA)
	drainStream(b, &restB)
	if len(restA) != len(restB) {
		t.Fatalf("remainder length: original %d, restored %d", len(restA), len(restB))
	}
	for i := range restA {
		if restA[i] != restB[i] {
			t.Fatalf("remainder diverges at %d: original %+v, restored %+v", i, restA[i], restB[i])
		}
	}
	if got, want := mustStatsJSON(t, &b.Stats), mustStatsJSON(t, &a.Stats); !bytes.Equal(got, want) {
		t.Fatalf("final stats differ:\nrestored: %s\noriginal: %s", got, want)
	}
}

// TestStopAfterBeyondHaltRunsToCompletion pins that an over-generous
// pause bound never fires: the run halts normally, unpaused.
func TestStopAfterBeyondHaltRunsToCompletion(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg, fibProgram(50))
	e.SetStopAfter(1 << 40)
	var all []timing.DynInst
	drainStream(e, &all)
	if err := e.Err(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Paused() {
		t.Fatal("engine reports paused after a normal halt")
	}
	if !e.Halted() {
		t.Fatal("engine did not halt")
	}
}

// TestSnapshotPageSetsRoundTrip pins that restoring recreates the exact
// touched-page footprint, so snapshots of the restored machine match
// snapshots of the original byte for byte.
func TestSnapshotPageSetsRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	p := fibProgram(300)
	a := NewEngine(cfg, p)
	a.SetStopAfter(500)
	var discard []timing.DynInst
	drainStream(a, &discard)
	if !a.Paused() {
		t.Fatal("engine did not pause")
	}
	sn1, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	b, err := RestoreEngine(p, sn1)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	sn2, err := b.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	blob1, _ := json.Marshal(sn1)
	blob2, _ := json.Marshal(sn2)
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("snapshot of restored engine differs from original snapshot (%d vs %d bytes)", len(blob1), len(blob2))
	}
}
