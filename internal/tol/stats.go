package tol

// Mode identifies the TOL execution mode that executed (or owns) a
// guest instruction, for the code-distribution accounting of Figure 5.
type Mode uint8

// Modes, ordered so that a higher value means a more optimized tier.
const (
	ModeNone Mode = iota
	ModeIM
	ModeBBM
	ModeSBM
)

func (m Mode) String() string {
	switch m {
	case ModeIM:
		return "IM"
	case ModeBBM:
		return "BBM"
	case ModeSBM:
		return "SBM"
	}
	return "none"
}

// Stats aggregates TOL-level statistics over a run. The struct is
// JSON-serializable and round-trips exactly: StaticMode (keyed by
// guest PC, encoded as string object keys) carries the full static
// code-distribution information behind Figure 5a.
type Stats struct {
	// Dynamic guest instructions executed, per mode (Figure 5b).
	DynIM  uint64 `json:"dyn_im"`
	DynBBM uint64 `json:"dyn_bbm"`
	DynSBM uint64 `json:"dyn_sbm"`

	// StaticMode maps each executed static guest instruction to the
	// highest mode that ever owned it (Figure 5a).
	StaticMode map[uint32]Mode `json:"static_mode,omitempty"`

	// Activity counters.
	BBTranslated   int    `json:"bb_translated"`
	SBCreated      int    `json:"sb_created"` // "SBM invocations" in Figure 6
	Chains         uint64 `json:"chains"`
	IBTCFills      uint64 `json:"ibtc_fills"`
	IndirectDyn    uint64 `json:"indirect_dyn"`  // dynamic guest indirect branches
	Lookups        uint64 `json:"lookups"`       // code cache lookups performed by TOL
	LookupProbes   uint64 `json:"lookup_probes"` // translation-table slots probed
	Transitions    uint64 `json:"transitions"`   // translated-code-to-TOL transitions
	CosimChecks    uint64 `json:"cosim_checks"`
	InterpBranches uint64 `json:"interp_branches"`

	// Code-cache pressure counters (all zero with the unbounded cache).
	// Evictions counts translations removed by the eviction policy;
	// Retranslations counts translations rebuilt for a guest entry that
	// was evicted earlier (BBM and SBM alike); FlushCount counts
	// eviction batches that left the cache empty (every flush-all
	// eviction, and complete reclamation under the other policies);
	// CacheOccupancyPeak is the high-water mark of occupied
	// instruction slots.
	Evictions          uint64 `json:"evictions,omitempty"`
	Retranslations     uint64 `json:"retranslations,omitempty"`
	FlushCount         uint64 `json:"flush_count,omitempty"`
	CacheOccupancyPeak int    `json:"cache_occupancy_peak,omitempty"`

	// SBPasses aggregates the optimizer's work per pass across all SBM
	// invocations, keyed by pass name in first-run order — the data
	// behind the "SBM time by pass" breakdown (Figure-7 refinement).
	SBPasses []PassStat `json:"sb_passes,omitempty"`
	// SBOtherInsts counts the modeled SBM host instructions outside the
	// passes: trace construction, IR build, emission and fixed
	// bookkeeping. SBPasses[i].CostInsts plus SBOtherInsts is the whole
	// SBM cost stream.
	SBOtherInsts uint64 `json:"sb_other_insts,omitempty"`
}

// PassStat aggregates one optimization pass's work across all SBM
// invocations of a run.
type PassStat struct {
	Pass       string `json:"pass"`
	Runs       uint64 `json:"runs"`       // pipeline-position invocations
	Visits     uint64 `json:"visits"`     // IR instruction visits billed
	Eliminated uint64 `json:"eliminated"` // guest instructions removed/absorbed
	// CostInsts is the number of modeled host instructions the cost
	// model attributed to the pass — its share of the SBM stream.
	CostInsts uint64 `json:"cost_insts"`
}

// addSBMPasses folds one superblock build's pass reports and cost
// split into the aggregate per-pass statistics. Repeated pipeline
// entries (O3 runs propagation twice) aggregate under one name.
func (s *Stats) addSBMPasses(reports []PassReport, cost SBMCost) {
	s.SBOtherInsts += uint64(cost.Other)
	for i, r := range reports {
		var ps *PassStat
		for j := range s.SBPasses {
			if s.SBPasses[j].Pass == r.Pass {
				ps = &s.SBPasses[j]
				break
			}
		}
		if ps == nil {
			s.SBPasses = append(s.SBPasses, PassStat{Pass: r.Pass})
			ps = &s.SBPasses[len(s.SBPasses)-1]
		}
		ps.Runs++
		ps.Visits += uint64(r.Visits)
		ps.Eliminated += uint64(r.Eliminated)
		if i < len(cost.PerPass) {
			ps.CostInsts += uint64(cost.PerPass[i])
		}
	}
}

// SBMInstTotal returns the total modeled SBM host instructions (all
// passes plus the non-pass remainder) — the denominator of the
// per-pass SBM time split.
func (s *Stats) SBMInstTotal() uint64 {
	total := s.SBOtherInsts
	for _, ps := range s.SBPasses {
		total += ps.CostInsts
	}
	return total
}

// DynTotal returns all guest instructions retired by the co-design
// component.
func (s *Stats) DynTotal() uint64 { return s.DynIM + s.DynBBM + s.DynSBM }

func (s *Stats) markStatic(pc uint32, m Mode) {
	if s.StaticMode == nil {
		s.StaticMode = make(map[uint32]Mode)
	}
	if s.StaticMode[pc] < m {
		s.StaticMode[pc] = m
	}
}

// StaticCounts returns the number of executed static guest
// instructions whose highest mode is IM, BBM and SBM respectively.
func (s *Stats) StaticCounts() (im, bbm, sbm int) {
	for _, m := range s.StaticMode {
		switch m {
		case ModeIM:
			im++
		case ModeBBM:
			bbm++
		case ModeSBM:
			sbm++
		}
	}
	return
}

// StaticTotal returns the number of distinct executed static guest
// instructions.
func (s *Stats) StaticTotal() int { return len(s.StaticMode) }

// Summary is the flattened, machine-readable digest of the TOL view of
// a run: the dynamic and static mode distributions plus every activity
// counter, without the per-PC StaticMode map.
type Summary struct {
	DynIM    uint64 `json:"dyn_im"`
	DynBBM   uint64 `json:"dyn_bbm"`
	DynSBM   uint64 `json:"dyn_sbm"`
	DynTotal uint64 `json:"dyn_total"`

	StaticIM    int `json:"static_im"`
	StaticBBM   int `json:"static_bbm"`
	StaticSBM   int `json:"static_sbm"`
	StaticTotal int `json:"static_total"`

	BBTranslated int    `json:"bb_translated"`
	SBCreated    int    `json:"sb_created"`
	Chains       uint64 `json:"chains"`
	IBTCFills    uint64 `json:"ibtc_fills"`
	IndirectDyn  uint64 `json:"indirect_dyn"`
	Lookups      uint64 `json:"lookups"`
	Transitions  uint64 `json:"transitions"`
	CosimChecks  uint64 `json:"cosim_checks"`

	Evictions          uint64 `json:"evictions,omitempty"`
	Retranslations     uint64 `json:"retranslations,omitempty"`
	FlushCount         uint64 `json:"flush_count,omitempty"`
	CacheOccupancyPeak int    `json:"cache_occupancy_peak,omitempty"`

	// SBPasses is the per-pass SBM work breakdown (pipeline order);
	// SBOtherInsts is the non-pass remainder of the SBM cost stream, so
	// per-pass shares can be normalized from the digest alone.
	SBPasses     []PassStat `json:"sb_passes,omitempty"`
	SBOtherInsts uint64     `json:"sb_other_insts,omitempty"`
}

// Summary flattens the stats into their machine-readable digest.
func (s *Stats) Summary() Summary {
	im, bbm, sbm := s.StaticCounts()
	return Summary{
		DynIM:        s.DynIM,
		DynBBM:       s.DynBBM,
		DynSBM:       s.DynSBM,
		DynTotal:     s.DynTotal(),
		StaticIM:     im,
		StaticBBM:    bbm,
		StaticSBM:    sbm,
		StaticTotal:  s.StaticTotal(),
		BBTranslated: s.BBTranslated,
		SBCreated:    s.SBCreated,
		Chains:       s.Chains,
		IBTCFills:    s.IBTCFills,
		IndirectDyn:  s.IndirectDyn,
		Lookups:      s.Lookups,
		Transitions:  s.Transitions,
		CosimChecks:  s.CosimChecks,

		Evictions:          s.Evictions,
		Retranslations:     s.Retranslations,
		FlushCount:         s.FlushCount,
		CacheOccupancyPeak: s.CacheOccupancyPeak,

		SBPasses:     append([]PassStat(nil), s.SBPasses...),
		SBOtherInsts: s.SBOtherInsts,
	}
}
