package tol

// Mode identifies the TOL execution mode that executed (or owns) a
// guest instruction, for the code-distribution accounting of Figure 5.
type Mode uint8

// Modes, ordered so that a higher value means a more optimized tier.
const (
	ModeNone Mode = iota
	ModeIM
	ModeBBM
	ModeSBM
)

func (m Mode) String() string {
	switch m {
	case ModeIM:
		return "IM"
	case ModeBBM:
		return "BBM"
	case ModeSBM:
		return "SBM"
	}
	return "none"
}

// Stats aggregates TOL-level statistics over a run. The struct is
// JSON-serializable and round-trips exactly: StaticMode (keyed by
// guest PC, encoded as string object keys) carries the full static
// code-distribution information behind Figure 5a.
type Stats struct {
	// Dynamic guest instructions executed, per mode (Figure 5b).
	DynIM  uint64 `json:"dyn_im"`
	DynBBM uint64 `json:"dyn_bbm"`
	DynSBM uint64 `json:"dyn_sbm"`

	// StaticMode maps each executed static guest instruction to the
	// highest mode that ever owned it (Figure 5a).
	StaticMode map[uint32]Mode `json:"static_mode,omitempty"`

	// Activity counters.
	BBTranslated   int    `json:"bb_translated"`
	SBCreated      int    `json:"sb_created"` // "SBM invocations" in Figure 6
	Chains         uint64 `json:"chains"`
	IBTCFills      uint64 `json:"ibtc_fills"`
	IndirectDyn    uint64 `json:"indirect_dyn"`  // dynamic guest indirect branches
	Lookups        uint64 `json:"lookups"`       // code cache lookups performed by TOL
	LookupProbes   uint64 `json:"lookup_probes"` // translation-table slots probed
	Transitions    uint64 `json:"transitions"`   // translated-code-to-TOL transitions
	CosimChecks    uint64 `json:"cosim_checks"`
	InterpBranches uint64 `json:"interp_branches"`
}

// DynTotal returns all guest instructions retired by the co-design
// component.
func (s *Stats) DynTotal() uint64 { return s.DynIM + s.DynBBM + s.DynSBM }

func (s *Stats) markStatic(pc uint32, m Mode) {
	if s.StaticMode == nil {
		s.StaticMode = make(map[uint32]Mode)
	}
	if s.StaticMode[pc] < m {
		s.StaticMode[pc] = m
	}
}

// StaticCounts returns the number of executed static guest
// instructions whose highest mode is IM, BBM and SBM respectively.
func (s *Stats) StaticCounts() (im, bbm, sbm int) {
	for _, m := range s.StaticMode {
		switch m {
		case ModeIM:
			im++
		case ModeBBM:
			bbm++
		case ModeSBM:
			sbm++
		}
	}
	return
}

// StaticTotal returns the number of distinct executed static guest
// instructions.
func (s *Stats) StaticTotal() int { return len(s.StaticMode) }

// Summary is the flattened, machine-readable digest of the TOL view of
// a run: the dynamic and static mode distributions plus every activity
// counter, without the per-PC StaticMode map.
type Summary struct {
	DynIM    uint64 `json:"dyn_im"`
	DynBBM   uint64 `json:"dyn_bbm"`
	DynSBM   uint64 `json:"dyn_sbm"`
	DynTotal uint64 `json:"dyn_total"`

	StaticIM    int `json:"static_im"`
	StaticBBM   int `json:"static_bbm"`
	StaticSBM   int `json:"static_sbm"`
	StaticTotal int `json:"static_total"`

	BBTranslated int    `json:"bb_translated"`
	SBCreated    int    `json:"sb_created"`
	Chains       uint64 `json:"chains"`
	IBTCFills    uint64 `json:"ibtc_fills"`
	IndirectDyn  uint64 `json:"indirect_dyn"`
	Lookups      uint64 `json:"lookups"`
	Transitions  uint64 `json:"transitions"`
	CosimChecks  uint64 `json:"cosim_checks"`
}

// Summary flattens the stats into their machine-readable digest.
func (s *Stats) Summary() Summary {
	im, bbm, sbm := s.StaticCounts()
	return Summary{
		DynIM:        s.DynIM,
		DynBBM:       s.DynBBM,
		DynSBM:       s.DynSBM,
		DynTotal:     s.DynTotal(),
		StaticIM:     im,
		StaticBBM:    bbm,
		StaticSBM:    sbm,
		StaticTotal:  s.StaticTotal(),
		BBTranslated: s.BBTranslated,
		SBCreated:    s.SBCreated,
		Chains:       s.Chains,
		IBTCFills:    s.IBTCFills,
		IndirectDyn:  s.IndirectDyn,
		Lookups:      s.Lookups,
		Transitions:  s.Transitions,
		CosimChecks:  s.CosimChecks,
	}
}
