package tol

// Mode identifies the TOL execution mode that executed (or owns) a
// guest instruction, for the code-distribution accounting of Figure 5.
type Mode uint8

// Modes, ordered so that a higher value means a more optimized tier.
const (
	ModeNone Mode = iota
	ModeIM
	ModeBBM
	ModeSBM
)

func (m Mode) String() string {
	switch m {
	case ModeIM:
		return "IM"
	case ModeBBM:
		return "BBM"
	case ModeSBM:
		return "SBM"
	}
	return "none"
}

// Stats aggregates TOL-level statistics over a run.
type Stats struct {
	// Dynamic guest instructions executed, per mode (Figure 5b).
	DynIM  uint64
	DynBBM uint64
	DynSBM uint64

	// staticMode maps each executed static guest instruction to the
	// highest mode that ever owned it (Figure 5a).
	staticMode map[uint32]Mode

	// Activity counters.
	BBTranslated   int
	SBCreated      int // "SBM invocations" in Figure 6
	Chains         uint64
	IBTCFills      uint64
	IndirectDyn    uint64 // dynamic guest indirect branches
	Lookups        uint64 // code cache lookups performed by TOL
	LookupProbes   uint64 // translation-table slots probed
	Transitions    uint64 // translated-code-to-TOL transitions
	CosimChecks    uint64
	InterpBranches uint64
}

// DynTotal returns all guest instructions retired by the co-design
// component.
func (s *Stats) DynTotal() uint64 { return s.DynIM + s.DynBBM + s.DynSBM }

func (s *Stats) markStatic(pc uint32, m Mode) {
	if s.staticMode == nil {
		s.staticMode = make(map[uint32]Mode)
	}
	if s.staticMode[pc] < m {
		s.staticMode[pc] = m
	}
}

// StaticCounts returns the number of executed static guest
// instructions whose highest mode is IM, BBM and SBM respectively.
func (s *Stats) StaticCounts() (im, bbm, sbm int) {
	for _, m := range s.staticMode {
		switch m {
		case ModeIM:
			im++
		case ModeBBM:
			bbm++
		case ModeSBM:
			sbm++
		}
	}
	return
}

// StaticTotal returns the number of distinct executed static guest
// instructions.
func (s *Stats) StaticTotal() int { return len(s.staticMode) }
