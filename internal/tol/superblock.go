package tol

import (
	"repro/internal/guest"
	"repro/internal/host"
)

// Superblock formation and optimization (SBM). A superblock is a
// single-entry, multiple-exit trace of hot basic blocks selected by the
// profile: starting from the block that crossed the promotion
// threshold, formation follows the hotter successor of each
// conditional branch until it meets an indirect branch, a call/return,
// a halt, a block already in the trace, or the size limits. A trace
// that returns to its own seed closes into a self-loop — the common
// shape of hot inner loops.
//
// The trace then passes through the optimizer:
//
//  1. copy and constant propagation with constant folding (including
//     folding flag results, so a known compare turns into a constant
//     flags load, and a known conditional side exit disappears),
//  2. dead code elimination (unused register writes and dead flag
//     definitions between side exits),
//  3. redundant load elimination with register allocation (repeated
//     loads of the same location are cached in the allocatable host
//     registers r46..r63 — the CSE of the memory pipeline),
//  4. list instruction scheduling on the emitted host code (sched.go).
type traceInst struct {
	in guest.Inst
	pc uint32

	sideExit   bool // mid-trace conditional branch
	traceTaken bool // direction the trace follows for side exits
	offTarget  uint32

	drop     bool // eliminated (folded, DCE'd, or a followed direct jump)
	constDst bool // emit as "dst = constVal" instead of the operation
	constVal uint32
	setFlags bool // emit a constant-flags load (flags result known)
	flagsVal uint32

	// Redundant-load-elimination annotations (set by the rle pass,
	// consumed by emission; see rle.go).
	rlKind rlAction
	rlReg  host.Reg
}

// traceEnd describes how a formed trace terminates.
type traceEnd uint8

const (
	endJump     traceEnd = iota // continue at endTarget via a direct jump
	endSelfLoop                 // jump back to the trace's own seed
	endTerminal                 // last instruction is a call/ret/indirect/halt
)

// tracePlan is a formed superblock before emission. Guest-stage passes
// transform insts; after emission and sealing, code carries the host
// instructions for host-stage passes (sched).
type tracePlan struct {
	seed      uint32
	insts     []traceInst
	end       traceEnd
	endTarget uint32 // for endJump
	blocks    int
	rp        *regPlan // the frontend's translation ABI (rle's alloc range)
	code      *emitter // set once host code is sealed
	fault     string   // active Config.Fault, consulted by faultable passes
}

// buildTrace forms the superblock trace starting at seed.
func (t *Translator) buildTrace(seed uint32) (*tracePlan, error) {
	plan := &tracePlan{seed: seed, rp: t.plan, fault: t.cfg.Fault}
	visited := map[uint32]bool{}
	cur := seed
	for {
		if plan.blocks >= t.cfg.MaxSBBlocks || len(plan.insts) >= t.cfg.MaxSBGuestInsts || visited[cur] {
			// Size limits reached, or the trace reached a block it
			// already contains (an inner loop that is not a self-loop):
			// end with a jump to the next block.
			plan.end = endJump
			plan.endTarget = cur
			return plan, nil
		}
		visited[cur] = true
		bb, err := t.decodeBB(cur)
		if err != nil {
			return nil, err
		}
		plan.blocks++
		term := bb.terminator()
		bodyEnd := len(bb.insts)
		if term != nil {
			bodyEnd--
		}
		for i := 0; i < bodyEnd; i++ {
			plan.insts = append(plan.insts, traceInst{in: bb.insts[i], pc: bb.pcs[i]})
		}
		if term == nil {
			// Length-capped basic block: fall through.
			plan.end = endJump
			plan.endTarget = bb.next
			return plan, nil
		}
		ti := traceInst{in: *term, pc: bb.pcs[len(bb.pcs)-1]}
		instEnd := bb.next
		switch term.Op {
		case guest.OpJmp:
			target, _ := branchTarget(term, instEnd)
			ti.drop = true // direct jump followed at translation time
			plan.insts = append(plan.insts, ti)
			if target == seed {
				plan.end = endSelfLoop
				return plan, nil
			}
			cur = target
		case guest.OpJcc, guest.OpBcc:
			target, _ := branchTarget(term, instEnd)
			// Follow the hotter successor per the profile.
			takenHotter := t.prof.Count(target) >= t.prof.Count(instEnd)
			ti.sideExit = true
			ti.traceTaken = takenHotter
			next := instEnd
			if takenHotter {
				next = target
				ti.offTarget = instEnd
			} else {
				ti.offTarget = target
			}
			plan.insts = append(plan.insts, ti)
			if next == seed {
				plan.end = endSelfLoop
				return plan, nil
			}
			cur = next
		default:
			// Call, return, indirect, halt: trace ends here with the
			// terminator emitted like a basic-block end.
			plan.insts = append(plan.insts, ti)
			plan.end = endTerminal
			return plan, nil
		}
	}
}

// constPropagate runs copy/constant propagation and folding,
// returning the instruction visits billed to the cost model and the
// number of instructions newly folded or dropped.
func constPropagate(p *tracePlan) (visits, eliminated int) {
	var isConst [guest.MaxGuestRegs]bool
	var constVal [guest.MaxGuestRegs]uint32
	// alias[r] = the register whose value r currently mirrors (copy
	// propagation); alias[r] == r when none.
	var alias [guest.MaxGuestRegs]guest.Reg
	for r := range alias {
		alias[r] = guest.Reg(r)
	}
	flagsKnown := false
	flagsVal := uint32(0)

	clobberReg := func(r guest.Reg) {
		isConst[r] = false
		alias[r] = r
		for i := range alias {
			if alias[i] == r && guest.Reg(i) != r {
				alias[i] = guest.Reg(i)
			}
		}
	}

	for i := range p.insts {
		ti := &p.insts[i]
		if ti.drop {
			continue
		}
		visits++
		wasConst, wasDrop := ti.constDst, ti.drop
		in := &ti.in

		// Copy propagation: rewrite pure-source register operands
		// through the alias map.
		switch in.Op {
		case guest.OpMovRR, guest.OpAddRR, guest.OpSubRR, guest.OpAndRR,
			guest.OpOrRR, guest.OpXorRR, guest.OpCmpRR, guest.OpTestRR,
			guest.OpImulRR, guest.OpDivRR, guest.OpCvtIF:
			in.R2 = alias[in.R2]
		}
		switch in.Op {
		case guest.OpLoad, guest.OpStore, guest.OpLea, guest.OpFLoad, guest.OpFStore:
			in.RB = alias[in.RB]
		case guest.OpLoadIdx, guest.OpStoreIdx:
			in.RB = alias[in.RB]
			in.RI = alias[in.RI]
		case guest.OpPushR, guest.OpJmpInd, guest.OpCallInd:
			in.R1 = alias[in.R1]
		}

		switch in.Op {
		case guest.OpMovRI:
			clobberReg(in.R1)
			isConst[in.R1] = true
			constVal[in.R1] = uint32(in.Imm)

		case guest.OpMovRR:
			src := in.R2
			if isConst[src] {
				v := constVal[src]
				clobberReg(in.R1)
				isConst[in.R1] = true
				constVal[in.R1] = v
				ti.constDst = true
				ti.constVal = v
			} else {
				clobberReg(in.R1)
				alias[in.R1] = src
			}

		case guest.OpAddRR, guest.OpSubRR, guest.OpAndRR, guest.OpOrRR,
			guest.OpXorRR, guest.OpCmpRR, guest.OpTestRR, guest.OpImulRR,
			guest.OpDivRR, guest.OpAddRI, guest.OpSubRI, guest.OpAndRI,
			guest.OpOrRI, guest.OpXorRI, guest.OpCmpRI, guest.OpIncR,
			guest.OpDecR, guest.OpNegR, guest.OpNotR, guest.OpShlRI,
			guest.OpShrRI, guest.OpSarRI:
			visits += foldALU(ti, &isConst, &constVal, &flagsKnown, &flagsVal, clobberReg)

		case guest.OpLea:
			if isConst[in.RB] {
				v := constVal[in.RB] + uint32(in.Imm)
				clobberReg(in.R1)
				isConst[in.R1] = true
				constVal[in.R1] = v
				ti.constDst = true
				ti.constVal = v
			} else {
				clobberReg(in.R1)
			}

		case guest.OpLoad, guest.OpLoadIdx, guest.OpPopR, guest.OpCvtFI:
			clobberReg(in.R1)
			if in.Op == guest.OpPopR {
				clobberReg(guest.ESP)
			}
		case guest.OpPushR:
			clobberReg(guest.ESP)
		case guest.OpAdd3, guest.OpSub3, guest.OpAnd3, guest.OpOr3,
			guest.OpXor3, guest.OpSll3, guest.OpSrl3, guest.OpSra3,
			guest.OpSlt3, guest.OpSltu3,
			guest.OpAddI3, guest.OpAndI3, guest.OpOrI3, guest.OpXorI3,
			guest.OpSllI3, guest.OpSrlI3, guest.OpSraI3,
			guest.OpSltI3, guest.OpSltuI3,
			guest.OpJal, guest.OpJalr:
			// RISC-family ops are not folded (flagless, three-operand);
			// their destination writes still invalidate tracked values.
			clobberReg(in.R1)
		case guest.OpFCmp:
			flagsKnown = false
		case guest.OpJcc:
			if ti.sideExit && flagsKnown {
				dir := in.Cond.Eval(flagsVal)
				if dir == ti.traceTaken {
					ti.drop = true
					ti.sideExit = false
				}
				// A constant branch against the trace direction would
				// always exit; keep it (the side exit fires on the
				// first execution and the trace tail is simply cold).
			}
		}

		if (ti.constDst && !wasConst) || (ti.drop && !wasDrop) {
			eliminated++
		}
	}
	return visits, eliminated
}

// foldALU folds one ALU instruction when its operands are constant.
func foldALU(ti *traceInst, isConst *[guest.MaxGuestRegs]bool, constVal *[guest.MaxGuestRegs]uint32,
	flagsKnown *bool, flagsVal *uint32, clobber func(guest.Reg)) int {
	in := &ti.in
	a := constVal[in.R1]
	aOK := isConst[in.R1]
	var b uint32
	bOK := false
	switch in.Op {
	case guest.OpAddRR, guest.OpSubRR, guest.OpAndRR, guest.OpOrRR,
		guest.OpXorRR, guest.OpCmpRR, guest.OpTestRR, guest.OpImulRR, guest.OpDivRR:
		b, bOK = constVal[in.R2], isConst[in.R2]
	case guest.OpIncR, guest.OpDecR, guest.OpNegR, guest.OpNotR:
		b, bOK = 0, true
	default: // immediate forms and shifts
		b, bOK = uint32(in.Imm), true
	}

	writesDst := in.Op != guest.OpCmpRR && in.Op != guest.OpCmpRI && in.Op != guest.OpTestRR
	needsOldFlags := in.Op == guest.OpIncR || in.Op == guest.OpDecR
	if !aOK || !bOK || (needsOldFlags && in.WritesFlags() && !*flagsKnown) {
		if writesDst {
			clobber(in.R1)
		}
		if in.WritesFlags() {
			*flagsKnown = false
		}
		return 0
	}

	res, fl, ok := guest.EvalALU(in.Op, a, b, *flagsVal)
	if !ok {
		if writesDst {
			clobber(in.R1)
		}
		if in.WritesFlags() {
			*flagsKnown = false
		}
		return 0
	}
	if in.WritesFlags() {
		*flagsKnown = true
		*flagsVal = fl & guest.FlagsMask
		ti.setFlags = true
		ti.flagsVal = fl & guest.FlagsMask
	}
	if writesDst {
		clobber(in.R1)
		isConst[in.R1] = true
		constVal[in.R1] = res
		ti.constDst = true
		ti.constVal = res
	} else if !in.WritesFlags() {
		ti.drop = true
	}
	return 1
}

// deadCodeEliminate removes register writes that are provably dead:
// overwritten before any read, with no memory side effect, no live flag
// definition, and no intervening exit (all guest registers are
// architecturally live at every exit). It returns the instruction
// visits billed to the cost model and the number of instructions
// dropped.
func deadCodeEliminate(p *tracePlan) (visits, eliminated int) {
	live := ^uint32(0) // bitmask over guest regs; all live at trace end
	mat := planFlagsLiveness(p)
	for i := len(p.insts) - 1; i >= 0; i-- {
		ti := &p.insts[i]
		if ti.drop {
			continue
		}
		visits++
		in := &ti.in
		if ti.sideExit || in.IsBranch() || in.Op == guest.OpHalt {
			live = ^uint32(0)
			continue
		}
		dst, pure := pureDest(in, ti)
		if pure && live&(1<<dst) == 0 && !mat[i] {
			ti.drop = true
			eliminated++
			continue
		}
		// Update liveness: kill the destination, then add sources.
		if pure {
			live &^= 1 << dst
		}
		for _, r := range readRegs(in, ti) {
			live |= 1 << r
		}
	}
	return visits, eliminated
}

// pureDest reports the destination register of an instruction with no
// other architectural effect than writing it (flags handled separately
// by the caller via the materialization mask).
func pureDest(in *guest.Inst, ti *traceInst) (uint8, bool) {
	if ti.constDst {
		return uint8(in.R1), true
	}
	switch in.Op {
	case guest.OpMovRR, guest.OpMovRI, guest.OpLea, guest.OpCvtFI,
		guest.OpAddRR, guest.OpSubRR, guest.OpAndRR, guest.OpOrRR,
		guest.OpXorRR, guest.OpImulRR, guest.OpDivRR,
		guest.OpAddRI, guest.OpSubRI, guest.OpAndRI, guest.OpOrRI,
		guest.OpXorRI, guest.OpIncR, guest.OpDecR, guest.OpNegR,
		guest.OpNotR, guest.OpShlRI, guest.OpShrRI, guest.OpSarRI:
		return uint8(in.R1), true
	case guest.OpLoad, guest.OpLoadIdx:
		// A load's memory read has no architectural side effect in this
		// machine (no faults are modeled), so it is pure.
		return uint8(in.R1), true
	case guest.OpAdd3, guest.OpSub3, guest.OpAnd3, guest.OpOr3,
		guest.OpXor3, guest.OpSll3, guest.OpSrl3, guest.OpSra3,
		guest.OpSlt3, guest.OpSltu3,
		guest.OpAddI3, guest.OpAndI3, guest.OpOrI3, guest.OpXorI3,
		guest.OpSllI3, guest.OpSrlI3, guest.OpSraI3,
		guest.OpSltI3, guest.OpSltuI3:
		return uint8(in.R1), true
	}
	return 0, false
}

// readRegs lists the integer registers an instruction reads.
func readRegs(in *guest.Inst, ti *traceInst) []guest.Reg {
	if ti.constDst {
		return nil // operands were folded away
	}
	switch in.Op {
	case guest.OpMovRR, guest.OpCvtIF:
		return []guest.Reg{in.R2}
	case guest.OpAddRR, guest.OpSubRR, guest.OpAndRR, guest.OpOrRR,
		guest.OpXorRR, guest.OpCmpRR, guest.OpTestRR, guest.OpImulRR, guest.OpDivRR:
		return []guest.Reg{in.R1, in.R2}
	case guest.OpAddRI, guest.OpSubRI, guest.OpAndRI, guest.OpOrRI,
		guest.OpXorRI, guest.OpCmpRI, guest.OpIncR, guest.OpDecR,
		guest.OpNegR, guest.OpNotR, guest.OpShlRI, guest.OpShrRI, guest.OpSarRI:
		return []guest.Reg{in.R1}
	case guest.OpLoad, guest.OpFLoad:
		return []guest.Reg{in.RB}
	case guest.OpStore, guest.OpFStore:
		return []guest.Reg{in.R1, in.RB}
	case guest.OpLoadIdx:
		return []guest.Reg{in.RB, in.RI}
	case guest.OpStoreIdx:
		return []guest.Reg{in.R1, in.RB, in.RI}
	case guest.OpPushR, guest.OpJmpInd, guest.OpCallInd:
		return []guest.Reg{in.R1, guest.ESP}
	case guest.OpPopR, guest.OpRet:
		return []guest.Reg{guest.ESP}
	case guest.OpCallRel:
		return []guest.Reg{guest.ESP}
	case guest.OpAdd3, guest.OpSub3, guest.OpAnd3, guest.OpOr3,
		guest.OpXor3, guest.OpSll3, guest.OpSrl3, guest.OpSra3,
		guest.OpSlt3, guest.OpSltu3:
		return []guest.Reg{in.R2, in.RB}
	case guest.OpAddI3, guest.OpAndI3, guest.OpOrI3, guest.OpXorI3,
		guest.OpSllI3, guest.OpSrlI3, guest.OpSraI3,
		guest.OpSltI3, guest.OpSltuI3:
		return []guest.Reg{in.R2}
	case guest.OpBcc:
		return []guest.Reg{in.R1, in.R2}
	case guest.OpJalr:
		return []guest.Reg{in.R2}
	}
	return nil
}

// planFlagsLiveness computes per-instruction flag materialization needs
// over the (possibly partially dropped) trace.
func planFlagsLiveness(p *tracePlan) []bool {
	mat := make([]bool, len(p.insts))
	for i := range p.insts {
		ti := &p.insts[i]
		if ti.drop || (!ti.in.WritesFlags() && !ti.setFlags) {
			continue
		}
		mat[i] = true
		for j := i + 1; j < len(p.insts); j++ {
			tj := &p.insts[j]
			if tj.drop {
				continue
			}
			if tj.in.ReadsFlags() || tj.sideExit {
				break
			}
			if tj.in.WritesFlags() || tj.setFlags {
				mat[i] = false
				break
			}
		}
	}
	return mat
}

// slotKey identifies a memory location for redundant-load elimination.
type slotKey struct {
	base guest.Reg
	disp int32
}

// BuildSuperblock forms, optimizes, and places a superblock seeded at
// guest address seed. Optimization runs the translator's configured
// pass pipeline: guest-stage passes transform the trace plan before
// emission, host-stage passes transform the sealed host code, and
// every pass contributes a PassReport to LastWork for the per-pass
// cost attribution.
func (t *Translator) BuildSuperblock(seed uint32) (*Translation, error) {
	t.LastWork = Work{}
	plan, err := t.buildTrace(seed)
	if err != nil {
		return nil, err
	}

	reports := make([]PassReport, 0, len(t.pipeline))
	for _, p := range t.pipeline {
		if p.Stage() == StageGuest {
			reports = append(reports, p.Run(plan))
		}
	}

	e := newEmitter(t.plan)
	tr := &Translation{Kind: KindSB, GuestEntry: seed}

	mat := planFlagsLiveness(plan)

	type sideStub struct {
		l    label
		info *ExitInfo
	}
	var stubs []sideStub
	retired := 0

	// rlFilled tracks which rle cache registers actually hold their
	// slot value at the current emission point. Under the default
	// pipeline every rlUseLoad follows its rlAllocLoad, but a pass
	// ordered after rle (e.g. "rle,dce") may drop the filling load —
	// in that case the fill is materialized at the first surviving use.
	var rlFilled [host.NumRegs]bool

	for i := range plan.insts {
		ti := &plan.insts[i]
		in := &ti.in
		retired++
		tr.GuestPCs = append(tr.GuestPCs, ti.pc)
		if ti.drop {
			if ti.setFlags {
				if mat[i] {
					e.loadImm(host.RFlags, ti.flagsVal)
				}
			}
			continue
		}

		switch {
		case ti.sideExit:
			l := e.newLabel()
			if in.Op == guest.OpBcc {
				e.cmpBranch(in.Cond, in.R1, in.R2, !ti.traceTaken, l)
			} else {
				e.condBranch(in.Cond, !ti.traceTaken, l)
			}
			stubs = append(stubs, sideStub{l, &ExitInfo{
				Reason:      exitReasonForDir(!ti.traceTaken),
				Retired:     retired,
				GuestTarget: ti.offTarget,
			}})

		case ti.constDst:
			e.loadImm(e.r(in.R1), ti.constVal)
			if ti.setFlags && mat[i] {
				e.loadImm(host.RFlags, ti.flagsVal)
			}

		case ti.setFlags && mat[i] && !writesDest(in):
			// Compare/test with known flags: just set the flags.
			e.loadImm(host.RFlags, ti.flagsVal)

		case in.Op == guest.OpLoad:
			switch ti.rlKind {
			case rlUseLoad:
				if !rlFilled[ti.rlReg] {
					// The filling load was dropped by a later pass:
					// rle's own invalidation guarantees neither the base
					// register nor the slot changed since, so loading
					// here is equivalent.
					e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: host.RMemBase, Rs2: e.r(in.RB)})
					e.emit(host.Inst{Op: host.Ld, Rd: ti.rlReg, Rs1: sc0, Imm: in.Imm})
					rlFilled[ti.rlReg] = true
				}
				e.mov(e.r(in.R1), ti.rlReg)
			case rlAllocLoad:
				e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: host.RMemBase, Rs2: e.r(in.RB)})
				e.emit(host.Inst{Op: host.Ld, Rd: ti.rlReg, Rs1: sc0, Imm: in.Imm})
				e.mov(e.r(in.R1), ti.rlReg)
				rlFilled[ti.rlReg] = true
			default:
				e.emitGuestInst(in, false)
			}

		case in.Op == guest.OpStore:
			if ti.rlKind == rlStoreThrough {
				// Exact-slot store: keep the register cache coherent
				// (and filled — the stored value is the slot value).
				e.mov(ti.rlReg, e.r(in.R1))
				rlFilled[ti.rlReg] = true
			}
			e.emitGuestInst(in, false)

		default:
			if ti.in.EndsBlock() {
				// Final terminator: handled below.
				break
			}
			e.emitGuestInst(in, mat[i] && !ti.setFlags)
			if ti.setFlags && mat[i] {
				e.loadImm(host.RFlags, ti.flagsVal)
			}
		}
	}

	// Final terminator / trace end.
	stubStart := len(e.code)
	switch plan.end {
	case endTerminal:
		last := &plan.insts[len(plan.insts)-1]
		fakeBB := &decodedBB{
			entry: plan.seed,
			insts: []guest.Inst{last.in},
			pcs:   []uint32{last.pc},
			term:  0,
			next:  last.pc + uint32(last.in.Size),
		}
		// emitTerminator stamps the passed retired count on the exits
		// it creates (ExitHalt subtracts the halt itself).
		if s := t.emitTerminator(e, fakeBB, retired); s >= 0 {
			stubStart = s
		} else {
			stubStart = len(e.code)
		}
	case endSelfLoop:
		e.exitStub(&ExitInfo{Reason: ExitSelfLoop, Retired: retired, GuestTarget: plan.seed})
	default: // endJump
		e.exitStub(&ExitInfo{Reason: ExitTaken, Retired: retired, GuestTarget: plan.endTarget})
	}

	tr.GuestLen = len(plan.insts)
	for _, s := range stubs {
		e.define(s.l)
		e.exitStub(s.info)
	}

	// Allocate first (a bounded cache may evict here), then seal the
	// exit stubs against the actual placement address.
	base, err := t.cc.Alloc(len(e.code))
	if err != nil {
		return nil, err
	}
	if err := e.seal(base); err != nil {
		return nil, err
	}

	// Host-stage passes (instruction scheduling) on the sealed code.
	// Scheduling preserves branch positions and code length, so exit
	// indices and the allocation both remain valid.
	plan.code = e
	for _, p := range t.pipeline {
		if p.Stage() == StageHost {
			reports = append(reports, p.Run(plan))
		}
	}

	t.cc.PlaceAt(base, tr, e.code, 0, stubStart, e.exits)
	t.LastWork.TableProbes = append(t.LastWork.TableProbes, t.tt.Insert(seed, tr.HostEntry)...)
	t.LastWork.GuestInsts = len(plan.insts)
	t.LastWork.HostEmitted = len(e.code)
	t.LastWork.Passes = reports
	for _, r := range reports {
		t.LastWork.OptPassInsts += r.Visits
	}
	return tr, nil
}

func exitReasonForDir(taken bool) ExitReason {
	if taken {
		return ExitTaken
	}
	return ExitFallthrough
}

func writesDest(in *guest.Inst) bool {
	switch in.Op {
	case guest.OpCmpRR, guest.OpCmpRI, guest.OpTestRR, guest.OpFCmp:
		return false
	}
	return true
}
