package tol

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
)

// The translator turns guest basic blocks (and, for SBM, superblocks)
// into host code. Guest architectural state is pinned in the
// application half of the host register file per the ABI in package
// host: r32..r39 hold EAX..EDI, r40 holds the EFLAGS image, f16..f23
// hold F0..F7, and r41 holds the guest memory window base. Condition
// flags are materialized into r40 only when a consumer may observe
// them (dead flag definitions are elided — the translator's flavor of
// dead code elimination), which reproduces the cost asymmetry between
// flag-writing and plain instructions the paper highlights.

// Scratch registers available to translated code. The superblock
// optimizer's allocatable range starts above these.
const (
	sc0 = host.RAppS0 // r42 — also carries the guest target at indirect exits
	sc1 = host.RAppS1 // r43
	sc2 = host.Reg(44)
	sc3 = host.Reg(45)
	// allocFirst..allocLast are available to the superblock register
	// allocator for caching memory values across guest instructions.
	allocFirst = host.Reg(46)
	allocLast  = host.RAllocEnd
)

func rF(f guest.FReg) host.FReg { return host.GuestFReg(uint8(f)) }

// label identifies a forward-branch fixup target inside an emitter.
type label int

// emitter accumulates host code for one translation. Guest registers
// reach host registers through the frontend's regPlan, so the same
// emitter body serves both ABIs.
type emitter struct {
	plan    *regPlan
	code    []host.Inst
	fixups  map[int]label // code index -> label of branch target
	labels  map[label]int // label -> code index
	nextLbl label
	exits   map[int]*ExitInfo // code index -> exit (on the branch there)
}

func newEmitter(plan *regPlan) *emitter {
	return &emitter{
		plan:   plan,
		fixups: make(map[int]label),
		labels: make(map[label]int),
		exits:  make(map[int]*ExitInfo),
	}
}

// r returns the pinned host register for guest integer register g.
func (e *emitter) r(g guest.Reg) host.Reg { return e.plan.r(g) }

func (e *emitter) emit(i host.Inst) int {
	e.code = append(e.code, i)
	return len(e.code) - 1
}

func (e *emitter) loadImm(rd host.Reg, v uint32) {
	e.code = host.LoadImm32(e.code, rd, v)
}

// mov emits a register copy.
func (e *emitter) mov(rd, rs host.Reg) {
	e.emit(host.Inst{Op: host.Or, Rd: rd, Rs1: rs, Rs2: host.RZero})
}

func (e *emitter) newLabel() label {
	e.nextLbl++
	return e.nextLbl
}

func (e *emitter) define(l label) {
	e.labels[l] = len(e.code)
}

// branch emits a conditional branch to a label (fixed up at seal time).
func (e *emitter) branch(op host.Op, rs1, rs2 host.Reg, l label) {
	idx := e.emit(host.Inst{Op: op, Rs1: rs1, Rs2: rs2})
	e.fixups[idx] = l
}

// exitStub emits a one-instruction stub jumping to the TOL entry point
// and registers the exit metadata on it. Chaining later patches the
// same slot to a direct jump.
func (e *emitter) exitStub(info *ExitInfo) int {
	idx := e.emit(host.Inst{Op: host.Jal, Rd: host.RZero})
	e.exits[idx] = info
	return idx
}

// seal resolves label fixups and the TOL-entry targets of exit stubs,
// given the translation's future placement base (slot-relative; the
// code cache rewrites to absolute PCs via Place).
func (e *emitter) seal(basePC uint32) error {
	for idx, l := range e.fixups {
		t, ok := e.labels[l]
		if !ok {
			return fmt.Errorf("tol: unresolved label %d", l)
		}
		e.code[idx].Imm = int32(t-(idx+1)) * host.InstBytes
	}
	for idx, info := range e.exits {
		if info.Reason == ExitIBTCHit {
			continue // jalr, no fixup
		}
		pc := basePC + uint32(idx)*host.InstBytes
		e.code[idx].Imm = int32(TOLEntry) - int32(pc+host.InstBytes)
	}
	return nil
}

// flagsLiveness computes, for each instruction of a block, whether its
// flag definition must be materialized: true when a later instruction
// in the block reads flags before the next flag write, or when it is
// the last flag writer (flags are architecturally live-out at block
// boundaries so that the state checker and the interpreter always see
// correct EFLAGS).
func flagsLiveness(insts []guest.Inst) []bool {
	mat := make([]bool, len(insts))
	for i := range insts {
		if !insts[i].WritesFlags() {
			continue
		}
		mat[i] = true // conservative: live-out
		for j := i + 1; j < len(insts); j++ {
			if insts[j].ReadsFlags() {
				break // consumer found: stays true
			}
			if insts[j].WritesFlags() {
				mat[i] = false // overwritten before any read: dead
				break
			}
		}
	}
	return mat
}

// Flag packing helpers. Bit positions follow the guest EFLAGS layout.

// packSZ packs ZF and SF of the value in res into r40 (CF=OF=0).
func (e *emitter) packSZ(res host.Reg) {
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc1, Rs1: res, Imm: 1}) // ZF
	e.emit(host.Inst{Op: host.Slli, Rd: sc1, Rs1: sc1, Imm: 6})
	e.emit(host.Inst{Op: host.Srli, Rd: host.RFlags, Rs1: res, Imm: 31}) // SF
	e.emit(host.Inst{Op: host.Slli, Rd: host.RFlags, Rs1: host.RFlags, Imm: 7})
	e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: host.RFlags, Rs2: sc1})
}

// flagsArith materializes CF/ZF/SF/OF after an add or sub.
//
//	old: pre-op destination value; b: pre-op source value; res: result.
//
// CF needs no source operand: for add, carry ⇔ res < old; for sub,
// borrow ⇔ old < res.
func (e *emitter) flagsArith(old, b, res host.Reg, isSub bool) {
	// CF into sc1.
	if isSub {
		e.emit(host.Inst{Op: host.Sltu, Rd: sc1, Rs1: old, Rs2: res})
	} else {
		e.emit(host.Inst{Op: host.Sltu, Rd: sc1, Rs1: res, Rs2: old})
	}
	// OF into sc3: sign of ((old^b [^~ for add]) & (old^res)).
	e.emit(host.Inst{Op: host.Xor, Rd: sc3, Rs1: old, Rs2: b})
	if !isSub {
		e.emit(host.Inst{Op: host.Xori, Rd: sc3, Rs1: sc3, Imm: -1})
	}
	e.emit(host.Inst{Op: host.Xor, Rd: host.RFlags, Rs1: old, Rs2: res})
	e.emit(host.Inst{Op: host.And, Rd: sc3, Rs1: sc3, Rs2: host.RFlags})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: sc3, Imm: 31})
	// Pack: r40 = CF | ZF<<6 | SF<<7 | OF<<11.
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 11})
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: res, Imm: 1}) // ZF
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 6})
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: res, Imm: 31}) // SF
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 7})
	e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: sc1, Rs2: sc3})
}

// flagsIncDec materializes flags after inc/dec, preserving CF which was
// saved in cfSaved (bit 0) before r40 was clobbered.
func (e *emitter) flagsIncDec(res host.Reg, cfSaved host.Reg, isDec bool) {
	// OF: inc overflows at 0x80000000, dec at 0x7fffffff.
	magic := uint32(0x8000_0000)
	if isDec {
		magic = 0x7fff_ffff
	}
	e.loadImm(sc3, magic)
	e.emit(host.Inst{Op: host.Xor, Rd: sc3, Rs1: sc3, Rs2: res})
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: sc3, Imm: 1})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 11})
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: cfSaved, Rs2: sc3})
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: res, Imm: 1})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 6})
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: res, Imm: 31})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 7})
	e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: sc1, Rs2: sc3})
}

// flagsShift materializes flags after a shift: CF was computed into
// cfReg (bit 0); ZF/SF from res; OF=0.
func (e *emitter) flagsShift(res, cfReg host.Reg) {
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: res, Imm: 1})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 6})
	e.emit(host.Inst{Op: host.Or, Rd: cfReg, Rs1: cfReg, Rs2: sc3})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: res, Imm: 31})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 7})
	e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: cfReg, Rs2: sc3})
}

// condTest emits code computing "condition holds" into sc0 (0/1) from
// the flags in r40.
func (e *emitter) condTest(c guest.Cond) {
	switch c {
	case guest.CondE, guest.CondNE:
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: host.RFlags, Imm: int32(guest.FlagZF)})
	case guest.CondB, guest.CondAE:
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: host.RFlags, Imm: int32(guest.FlagCF)})
	case guest.CondS, guest.CondNS:
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: host.RFlags, Imm: int32(guest.FlagSF)})
	case guest.CondL, guest.CondGE:
		// SF != OF.
		e.emit(host.Inst{Op: host.Srli, Rd: sc0, Rs1: host.RFlags, Imm: 7})
		e.emit(host.Inst{Op: host.Srli, Rd: sc1, Rs1: host.RFlags, Imm: 11})
		e.emit(host.Inst{Op: host.Xor, Rd: sc0, Rs1: sc0, Rs2: sc1})
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: sc0, Imm: 1})
	case guest.CondLE, guest.CondG:
		// ZF || SF != OF.
		e.emit(host.Inst{Op: host.Srli, Rd: sc0, Rs1: host.RFlags, Imm: 7})
		e.emit(host.Inst{Op: host.Srli, Rd: sc1, Rs1: host.RFlags, Imm: 11})
		e.emit(host.Inst{Op: host.Xor, Rd: sc0, Rs1: sc0, Rs2: sc1})
		e.emit(host.Inst{Op: host.Srli, Rd: sc1, Rs1: host.RFlags, Imm: 6})
		e.emit(host.Inst{Op: host.Or, Rd: sc0, Rs1: sc0, Rs2: sc1})
		e.emit(host.Inst{Op: host.Andi, Rd: sc0, Rs1: sc0, Imm: 1})
	default:
		panic(fmt.Sprintf("tol: condTest on invalid condition %d", c))
	}
}

// condBranch emits a branch to label l taken when condition c holds
// (taken==true) or does not hold.
func (e *emitter) condBranch(c guest.Cond, taken bool, l label) {
	e.condTest(c)
	// For the "positive" conditions of each pair the test is nonzero
	// when the condition holds; negated pairs invert the branch sense.
	positive := c == guest.CondE || c == guest.CondB || c == guest.CondS ||
		c == guest.CondL || c == guest.CondLE
	op := host.Bne
	if positive != taken {
		op = host.Beq
	}
	e.branch(op, sc0, host.RZero, l)
}

// guestAddr emits computation of the host window address for a guest
// base register + displacement into rd.
func (e *emitter) guestAddr(rd host.Reg, base guest.Reg, disp int32) (host.Reg, int32) {
	e.emit(host.Inst{Op: host.Add, Rd: rd, Rs1: host.RMemBase, Rs2: e.r(base)})
	return rd, disp
}

// emitGuestInst translates one non-control-flow guest instruction.
// matFlags selects whether a flag-writing instruction materializes its
// flags into r40.
func (e *emitter) emitGuestInst(in *guest.Inst, matFlags bool) {
	switch in.Op {
	case guest.OpNop:
		// No code.
	case guest.OpMovRR:
		e.mov(e.r(in.R1), e.r(in.R2))
	case guest.OpMovRI:
		e.loadImm(e.r(in.R1), uint32(in.Imm))
	case guest.OpLea:
		e.emit(host.Inst{Op: host.Addi, Rd: e.r(in.R1), Rs1: e.r(in.RB), Imm: in.Imm})

	case guest.OpLoad:
		r, d := e.guestAddr(sc0, in.RB, in.Imm)
		e.emit(host.Inst{Op: host.Ld, Rd: e.r(in.R1), Rs1: r, Imm: d})
	case guest.OpStore:
		r, d := e.guestAddr(sc0, in.RB, in.Imm)
		e.emit(host.Inst{Op: host.St, Rs1: r, Rs2: e.r(in.R1), Imm: d})
	case guest.OpLoadIdx, guest.OpStoreIdx:
		if in.Scale > 1 {
			e.emit(host.Inst{Op: host.Slli, Rd: sc0, Rs1: e.r(in.RI), Imm: int32(log2u(in.Scale))})
			e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: sc0, Rs2: e.r(in.RB)})
		} else {
			e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: e.r(in.RI), Rs2: e.r(in.RB)})
		}
		e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: sc0, Rs2: host.RMemBase})
		if in.Op == guest.OpLoadIdx {
			e.emit(host.Inst{Op: host.Ld, Rd: e.r(in.R1), Rs1: sc0, Imm: in.Imm})
		} else {
			e.emit(host.Inst{Op: host.St, Rs1: sc0, Rs2: e.r(in.R1), Imm: in.Imm})
		}

	case guest.OpAddRR, guest.OpSubRR, guest.OpCmpRR,
		guest.OpAddRI, guest.OpSubRI, guest.OpCmpRI:
		e.emitArith(in, matFlags)

	case guest.OpAndRR, guest.OpOrRR, guest.OpXorRR, guest.OpTestRR,
		guest.OpAndRI, guest.OpOrRI, guest.OpXorRI:
		e.emitLogic(in, matFlags)

	case guest.OpImulRR:
		e.emit(host.Inst{Op: host.Mul, Rd: e.r(in.R1), Rs1: e.r(in.R1), Rs2: e.r(in.R2)})
		if matFlags {
			e.packSZ(e.r(in.R1))
		}
	case guest.OpDivRR:
		e.emit(host.Inst{Op: host.Div, Rd: e.r(in.R1), Rs1: e.r(in.R1), Rs2: e.r(in.R2)})

	case guest.OpIncR, guest.OpDecR:
		isDec := in.Op == guest.OpDecR
		imm := int32(1)
		if isDec {
			imm = -1
		}
		if matFlags {
			e.emit(host.Inst{Op: host.Andi, Rd: sc2, Rs1: host.RFlags, Imm: int32(guest.FlagCF)})
		}
		e.emit(host.Inst{Op: host.Addi, Rd: e.r(in.R1), Rs1: e.r(in.R1), Imm: imm})
		if matFlags {
			e.flagsIncDec(e.r(in.R1), sc2, isDec)
		}
	case guest.OpNegR:
		if matFlags {
			e.mov(sc2, e.r(in.R1)) // old value
		}
		e.emit(host.Inst{Op: host.Sub, Rd: e.r(in.R1), Rs1: host.RZero, Rs2: e.r(in.R1)})
		if matFlags {
			// CF = old != 0; OF = old == 0x80000000. Reuse the arith
			// packer with b=0: old^0 = old gives exactly the NEG
			// overflow predicate sign((old) & (old^res)) — old^res has
			// the sign bit set unless res==old==0x80000000... compute
			// directly instead.
			e.emit(host.Inst{Op: host.Sltu, Rd: sc1, Rs1: host.RZero, Rs2: sc2}) // CF
			e.loadImm(sc3, 0x8000_0000)
			e.emit(host.Inst{Op: host.Xor, Rd: sc3, Rs1: sc3, Rs2: sc2})
			e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: sc3, Imm: 1}) // OF
			e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 11})
			e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
			e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: e.r(in.R1), Imm: 1}) // ZF
			e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 6})
			e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
			e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: e.r(in.R1), Imm: 31}) // SF
			e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 7})
			e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: sc1, Rs2: sc3})
		}
	case guest.OpNotR:
		e.emit(host.Inst{Op: host.Xori, Rd: e.r(in.R1), Rs1: e.r(in.R1), Imm: -1})

	case guest.OpShlRI, guest.OpShrRI, guest.OpSarRI:
		count := uint32(in.Imm) & 31
		if count == 0 {
			return // guest semantics: no state change at all
		}
		var op host.Op
		var cfShift int32
		switch in.Op {
		case guest.OpShlRI:
			op, cfShift = host.Slli, int32(32-count)
		case guest.OpShrRI:
			op, cfShift = host.Srli, int32(count-1)
		default:
			op, cfShift = host.Srai, int32(count-1)
		}
		if matFlags {
			e.emit(host.Inst{Op: host.Srli, Rd: sc2, Rs1: e.r(in.R1), Imm: cfShift})
			e.emit(host.Inst{Op: host.Andi, Rd: sc2, Rs1: sc2, Imm: 1})
		}
		e.emit(host.Inst{Op: op, Rd: e.r(in.R1), Rs1: e.r(in.R1), Imm: int32(count)})
		if matFlags {
			e.flagsShift(e.r(in.R1), sc2)
		}

	case guest.OpPushR:
		e.emit(host.Inst{Op: host.Addi, Rd: e.r(guest.ESP), Rs1: e.r(guest.ESP), Imm: -4})
		e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: host.RMemBase, Rs2: e.r(guest.ESP)})
		e.emit(host.Inst{Op: host.St, Rs1: sc0, Rs2: e.r(in.R1)})
	case guest.OpPopR:
		e.emit(host.Inst{Op: host.Add, Rd: sc0, Rs1: host.RMemBase, Rs2: e.r(guest.ESP)})
		e.emit(host.Inst{Op: host.Ld, Rd: e.r(in.R1), Rs1: sc0})
		e.emit(host.Inst{Op: host.Addi, Rd: e.r(guest.ESP), Rs1: e.r(guest.ESP), Imm: 4})

	case guest.OpFLoad:
		r, d := e.guestAddr(sc0, in.RB, in.Imm)
		e.emit(host.Inst{Op: host.FLd, Rd: host.Reg(rF(in.F1)), Rs1: r, Imm: d})
	case guest.OpFStore:
		r, d := e.guestAddr(sc0, in.RB, in.Imm)
		e.emit(host.Inst{Op: host.FSt, Rs1: r, Rs2: host.Reg(rF(in.F1)), Imm: d})
	case guest.OpFMovRR:
		e.emit(host.Inst{Op: host.FMov, Rd: host.Reg(rF(in.F1)), Rs1: host.Reg(rF(in.F2))})
	case guest.OpFAdd:
		e.emitFPArith(host.FAdd, in)
	case guest.OpFSub:
		e.emitFPArith(host.FSub, in)
	case guest.OpFMul:
		e.emitFPArith(host.FMul, in)
	case guest.OpFDiv:
		e.emitFPArith(host.FDiv, in)
	case guest.OpFCmp:
		if matFlags {
			f1, f2 := host.Reg(rF(in.F1)), host.Reg(rF(in.F2))
			e.emit(host.Inst{Op: host.FEq, Rd: sc1, Rs1: f1, Rs2: f2}) // ZF candidate
			e.emit(host.Inst{Op: host.FLt, Rd: sc2, Rs1: f1, Rs2: f2}) // CF candidate
			// Unordered (NaN): x86 FCOMI sets ZF=CF=1. ordered = (f1==f1)&(f2==f2).
			e.emit(host.Inst{Op: host.FEq, Rd: sc3, Rs1: f1, Rs2: f1})
			e.emit(host.Inst{Op: host.FEq, Rd: sc0, Rs1: f2, Rs2: f2})
			e.emit(host.Inst{Op: host.And, Rd: sc3, Rs1: sc3, Rs2: sc0})
			e.emit(host.Inst{Op: host.Xori, Rd: sc3, Rs1: sc3, Imm: 1}) // 1 if unordered
			e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
			e.emit(host.Inst{Op: host.Or, Rd: sc2, Rs1: sc2, Rs2: sc3})
			e.emit(host.Inst{Op: host.Slli, Rd: sc1, Rs1: sc1, Imm: 6})
			e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: sc1, Rs2: sc2})
		}
	case guest.OpCvtIF:
		e.emit(host.Inst{Op: host.FCvtIF, Rd: host.Reg(rF(in.F1)), Rs1: e.r(in.R2)})
	case guest.OpCvtFI:
		e.emit(host.Inst{Op: host.FCvtFI, Rd: e.r(in.R1), Rs1: host.Reg(rF(in.F2))})

	case guest.OpAdd3, guest.OpSub3, guest.OpAnd3, guest.OpOr3,
		guest.OpXor3, guest.OpSll3, guest.OpSrl3, guest.OpSra3,
		guest.OpSlt3, guest.OpSltu3:
		// Flagless three-operand ALU: 1:1 with the host ISA. A
		// hardwired-zero destination pins to host r0, whose writes the
		// CPU discards, so no special casing is needed.
		e.emit(host.Inst{Op: riscRROp(in.Op), Rd: e.r(in.R1), Rs1: e.r(in.R2), Rs2: e.r(in.RB)})

	case guest.OpAddI3, guest.OpAndI3, guest.OpXorI3, guest.OpSllI3,
		guest.OpSrlI3, guest.OpSraI3, guest.OpSltI3, guest.OpSltuI3:
		e.emit(host.Inst{Op: riscRIOp(in.Op), Rd: e.r(in.R1), Rs1: e.r(in.R2), Imm: in.Imm})
	case guest.OpOrI3:
		// The host Ori zero-extends a 16-bit immediate, which matches
		// the guest's sign-extended imm12 only when non-negative.
		if in.Imm >= 0 {
			e.emit(host.Inst{Op: host.Ori, Rd: e.r(in.R1), Rs1: e.r(in.R2), Imm: in.Imm})
		} else {
			e.loadImm(sc1, uint32(in.Imm))
			e.emit(host.Inst{Op: host.Or, Rd: e.r(in.R1), Rs1: e.r(in.R2), Rs2: sc1})
		}

	default:
		panic(fmt.Sprintf("tol: emitGuestInst on control-flow op %s", in.Op))
	}
}

// riscRROp maps a flagless register-register guest opcode to its host
// counterpart.
func riscRROp(op guest.Op) host.Op {
	switch op {
	case guest.OpAdd3:
		return host.Add
	case guest.OpSub3:
		return host.Sub
	case guest.OpAnd3:
		return host.And
	case guest.OpOr3:
		return host.Or
	case guest.OpXor3:
		return host.Xor
	case guest.OpSll3:
		return host.Sll
	case guest.OpSrl3:
		return host.Srl
	case guest.OpSra3:
		return host.Sra
	case guest.OpSlt3:
		return host.Slt
	case guest.OpSltu3:
		return host.Sltu
	}
	panic(fmt.Sprintf("tol: riscRROp on %s", op))
}

// riscRIOp maps a flagless register-immediate guest opcode to its host
// counterpart (OpOrI3 excepted — see emitGuestInst).
func riscRIOp(op guest.Op) host.Op {
	switch op {
	case guest.OpAddI3:
		return host.Addi
	case guest.OpAndI3:
		return host.Andi
	case guest.OpXorI3:
		return host.Xori
	case guest.OpSllI3:
		return host.Slli
	case guest.OpSrlI3:
		return host.Srli
	case guest.OpSraI3:
		return host.Srai
	case guest.OpSltI3:
		return host.Slti
	case guest.OpSltuI3:
		return host.Sltiu
	}
	panic(fmt.Sprintf("tol: riscRIOp on %s", op))
}

// bccHostOps maps a compare-and-branch condition to the host branch
// opcode testing it and the opcode testing its complement.
func bccHostOps(c guest.Cond) (taken, notTaken host.Op) {
	switch c {
	case guest.CondE:
		return host.Beq, host.Bne
	case guest.CondNE:
		return host.Bne, host.Beq
	case guest.CondL:
		return host.Blt, host.Bge
	case guest.CondGE:
		return host.Bge, host.Blt
	case guest.CondB:
		return host.Bltu, host.Bgeu
	case guest.CondAE:
		return host.Bgeu, host.Bltu
	}
	panic(fmt.Sprintf("tol: bccHostOps on condition %d", c))
}

// cmpBranch emits a compare-and-branch over two pinned guest registers
// to label l, branching when condition c holds (taken) or does not.
// The flagless counterpart of condBranch.
func (e *emitter) cmpBranch(c guest.Cond, r1, r2 guest.Reg, taken bool, l label) {
	tk, nt := bccHostOps(c)
	op := tk
	if !taken {
		op = nt
	}
	e.branch(op, e.r(r1), e.r(r2), l)
}

func (e *emitter) emitFPArith(op host.Op, in *guest.Inst) {
	f1, f2 := host.Reg(rF(in.F1)), host.Reg(rF(in.F2))
	e.emit(host.Inst{Op: op, Rd: f1, Rs1: f1, Rs2: f2})
}

// emitArith handles add/sub/cmp (register and immediate forms).
func (e *emitter) emitArith(in *guest.Inst, matFlags bool) {
	isSub := in.Op == guest.OpSubRR || in.Op == guest.OpSubRI ||
		in.Op == guest.OpCmpRR || in.Op == guest.OpCmpRI
	isCmp := in.Op == guest.OpCmpRR || in.Op == guest.OpCmpRI
	immForm := in.Op == guest.OpAddRI || in.Op == guest.OpSubRI || in.Op == guest.OpCmpRI

	// Source operand register (materialize immediates when flags need
	// the operand value; otherwise use addi directly).
	var bReg host.Reg
	if immForm {
		if !matFlags {
			// Cheap path: no flags, use immediate ALU.
			dst := e.r(in.R1)
			if isCmp {
				return // compare with dead flags is a complete no-op
			}
			imm := in.Imm
			if isSub {
				imm = -imm
			}
			e.emit(host.Inst{Op: host.Addi, Rd: dst, Rs1: dst, Imm: imm})
			return
		}
		e.loadImm(sc1, uint32(in.Imm))
		bReg = sc1
	} else {
		if isCmp && !matFlags {
			return
		}
		bReg = e.r(in.R2)
	}

	dst := e.r(in.R1)
	hop := host.Add
	if isSub {
		hop = host.Sub
	}
	if !matFlags {
		e.emit(host.Inst{Op: hop, Rd: dst, Rs1: dst, Rs2: bReg})
		return
	}

	// Save the old destination value; if the source aliases the
	// destination (add eax,eax), the saved copy doubles as the operand.
	e.mov(sc2, dst)
	if bReg == dst {
		bReg = sc2
	}
	res := dst
	if isCmp {
		res = sc0
	}
	e.emit(host.Inst{Op: hop, Rd: res, Rs1: dst, Rs2: bReg})
	// flagsArith clobbers sc1; when b was materialized into sc1 the OF
	// computation needs it, so move it aside first.
	if bReg == sc1 {
		// OF term uses old^b before sc1 is reused: compute via the
		// standard sequence with b in sc1 is unsafe, so copy to sc3 is
		// not possible either (sc3 is clobbered too). Use the flags
		// variant below which consumes b first.
		e.flagsArithImmB(sc2, sc1, res, isSub)
		return
	}
	e.flagsArith(sc2, bReg, res, isSub)
}

// flagsArithImmB is flagsArith for the case where b lives in sc1: it
// evaluates the OF term (which consumes b) before reusing sc1 for CF.
func (e *emitter) flagsArithImmB(old, b, res host.Reg, isSub bool) {
	// OF into sc3 first (consumes b).
	e.emit(host.Inst{Op: host.Xor, Rd: sc3, Rs1: old, Rs2: b})
	if !isSub {
		e.emit(host.Inst{Op: host.Xori, Rd: sc3, Rs1: sc3, Imm: -1})
	}
	e.emit(host.Inst{Op: host.Xor, Rd: host.RFlags, Rs1: old, Rs2: res})
	e.emit(host.Inst{Op: host.And, Rd: sc3, Rs1: sc3, Rs2: host.RFlags})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: sc3, Imm: 31})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 11})
	// CF into sc1 (b no longer needed).
	if isSub {
		e.emit(host.Inst{Op: host.Sltu, Rd: sc1, Rs1: old, Rs2: res})
	} else {
		e.emit(host.Inst{Op: host.Sltu, Rd: sc1, Rs1: res, Rs2: old})
	}
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
	e.emit(host.Inst{Op: host.Sltiu, Rd: sc3, Rs1: res, Imm: 1})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 6})
	e.emit(host.Inst{Op: host.Or, Rd: sc1, Rs1: sc1, Rs2: sc3})
	e.emit(host.Inst{Op: host.Srli, Rd: sc3, Rs1: res, Imm: 31})
	e.emit(host.Inst{Op: host.Slli, Rd: sc3, Rs1: sc3, Imm: 7})
	e.emit(host.Inst{Op: host.Or, Rd: host.RFlags, Rs1: sc1, Rs2: sc3})
}

// emitLogic handles and/or/xor/test.
func (e *emitter) emitLogic(in *guest.Inst, matFlags bool) {
	var hop host.Op
	var hopi host.Op
	switch in.Op {
	case guest.OpAndRR, guest.OpAndRI, guest.OpTestRR:
		hop, hopi = host.And, host.Andi
	case guest.OpOrRR, guest.OpOrRI:
		hop, hopi = host.Or, host.Ori
	default:
		hop, hopi = host.Xor, host.Xori
	}
	isTest := in.Op == guest.OpTestRR
	immForm := in.Op == guest.OpAndRI || in.Op == guest.OpOrRI || in.Op == guest.OpXorRI
	dst := e.r(in.R1)
	res := dst
	if isTest {
		if !matFlags {
			return
		}
		res = sc0
	}
	if immForm {
		// Ori takes an unsigned 16-bit immediate in the host ISA; use
		// a materialized operand for large or negative immediates.
		imm := uint32(in.Imm)
		if hopi == host.Ori && imm > 0xffff {
			e.loadImm(sc1, imm)
			e.emit(host.Inst{Op: hop, Rd: res, Rs1: dst, Rs2: sc1})
		} else {
			e.emit(host.Inst{Op: hopi, Rd: res, Rs1: dst, Imm: in.Imm})
		}
	} else {
		e.emit(host.Inst{Op: hop, Rd: res, Rs1: dst, Rs2: e.r(in.R2)})
	}
	if matFlags {
		e.packSZ(res)
	}
}

// emitIBTC emits the inline IBTC probe for a guest target already in
// sc0 (r42). On a hit the probe jumps straight to the cached host
// entry; on a miss it exits to TOL. Both are exits of the translation.
func (e *emitter) emitIBTC(retired int, enabled bool) {
	if !enabled {
		// Ablation: every indirect branch transitions to TOL.
		e.exitStub(&ExitInfo{Reason: ExitIndirect, Retired: retired, Dynamic: true})
		return
	}
	miss := e.newLabel()
	e.emit(host.Inst{Op: host.Srli, Rd: sc1, Rs1: sc0, Imm: 2})
	e.emit(host.Inst{Op: host.Andi, Rd: sc1, Rs1: sc1, Imm: ibtcMask})
	e.emit(host.Inst{Op: host.Slli, Rd: sc1, Rs1: sc1, Imm: 3})
	e.loadImm(sc2, mem.IBTCBase)
	e.emit(host.Inst{Op: host.Add, Rd: sc1, Rs1: sc1, Rs2: sc2})
	e.emit(host.Inst{Op: host.Ld, Rd: sc2, Rs1: sc1}) // tag
	e.branch(host.Bne, sc2, sc0, miss)
	e.emit(host.Inst{Op: host.Ld, Rd: sc2, Rs1: sc1, Imm: 4}) // host entry
	idx := e.emit(host.Inst{Op: host.Jalr, Rd: host.RZero, Rs1: sc2})
	e.exits[idx] = &ExitInfo{Reason: ExitIBTCHit, Retired: retired, Dynamic: true}
	e.define(miss)
	e.exitStub(&ExitInfo{Reason: ExitIndirect, Retired: retired, Dynamic: true})
}

func log2u(v uint8) uint32 {
	n := uint32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
