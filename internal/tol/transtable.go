package tol

import "fmt"

// TransTable maps guest instruction pointers to code-cache entry
// points. It is an open-addressing hash table with linear probing whose
// slot addresses are modeled in the host address space: every probe
// performed here is also emitted by the cost model as loads at the
// corresponding simulated addresses, so the table's cache behaviour is
// real. The table mirrors the paper's description of the code cache
// lookup as "a table that maps x86 instruction pointers to the position
// in the code cache where the translation is stored".
type TransTable struct {
	keys [transTableEntries]uint32 // guest IP + 1 (0 = empty)
	vals [transTableEntries]uint32 // host entry PC
	used int

	// probeBuf records the slot indices touched by the last operation,
	// consumed by the cost model.
	probeBuf []uint32
}

// NewTransTable returns an empty translation table.
func NewTransTable() *TransTable {
	return &TransTable{probeBuf: make([]uint32, 0, 16)}
}

// Lookup finds the translation entry for guest address g. The returned
// probe slice lists the table slots touched (valid until the next
// operation).
func (t *TransTable) Lookup(g uint32) (hostEntry uint32, ok bool, probes []uint32) {
	t.probeBuf = t.probeBuf[:0]
	idx := hashGuest(g) & transTableMask
	for {
		t.probeBuf = append(t.probeBuf, idx)
		k := t.keys[idx]
		if k == 0 {
			return 0, false, t.probeBuf
		}
		if k == g+1 {
			return t.vals[idx], true, t.probeBuf
		}
		idx = (idx + 1) & transTableMask
		if len(t.probeBuf) > transTableEntries {
			panic("tol: translation table full loop")
		}
	}
}

// Insert adds or replaces the mapping for guest address g. The probe
// slice lists slots touched.
func (t *TransTable) Insert(g, hostEntry uint32) (probes []uint32) {
	t.probeBuf = t.probeBuf[:0]
	if t.used >= transTableEntries*3/4 {
		panic(fmt.Sprintf("tol: translation table over capacity (%d entries)", t.used))
	}
	idx := hashGuest(g) & transTableMask
	for {
		t.probeBuf = append(t.probeBuf, idx)
		k := t.keys[idx]
		if k == 0 || k == g+1 {
			if k == 0 {
				t.used++
			}
			t.keys[idx] = g + 1
			t.vals[idx] = hostEntry
			return t.probeBuf
		}
		idx = (idx + 1) & transTableMask
	}
}

// Len returns the number of live entries.
func (t *TransTable) Len() int { return t.used }
