package tol

import "fmt"

// TransTable maps guest instruction pointers to code-cache entry
// points. It is an open-addressing hash table with linear probing whose
// slot addresses are modeled in the host address space: every probe
// performed here is also emitted by the cost model as loads at the
// corresponding simulated addresses, so the table's cache behaviour is
// real. The table mirrors the paper's description of the code cache
// lookup as "a table that maps x86 instruction pointers to the position
// in the code cache where the translation is stored".
//
// Deletion (code-cache eviction) uses tombstones, as linear probing
// requires: a deleted slot keeps its place in probe chains but can be
// reclaimed by a later insert. Tombstones lengthen probe chains until
// reuse — a real cost the lookup stream carries.
type TransTable struct {
	keys [transTableEntries]uint32 // guest IP + 1 (0 = empty, ^0 = tombstone)
	vals [transTableEntries]uint32 // host entry PC
	live int                       // live entries
	occ  int                       // live + tombstones (probe-chain load)

	// probeBuf records the slot indices touched by the last operation,
	// consumed by the cost model.
	probeBuf []uint32
}

// ttTombstone marks a deleted slot. It can never collide with a live
// key: keys store the guest IP + 1, and guest code lives far below
// 0xFFFFFFFE.
const ttTombstone = ^uint32(0)

// NewTransTable returns an empty translation table.
func NewTransTable() *TransTable {
	return &TransTable{probeBuf: make([]uint32, 0, 16)}
}

// Lookup finds the translation entry for guest address g. The returned
// probe slice lists the table slots touched (valid until the next
// operation).
func (t *TransTable) Lookup(g uint32) (hostEntry uint32, ok bool, probes []uint32) {
	t.probeBuf = t.probeBuf[:0]
	idx := hashGuest(g) & transTableMask
	for {
		t.probeBuf = append(t.probeBuf, idx)
		k := t.keys[idx]
		if k == 0 {
			return 0, false, t.probeBuf
		}
		if k == g+1 {
			return t.vals[idx], true, t.probeBuf
		}
		// Mismatch or tombstone: keep probing.
		idx = (idx + 1) & transTableMask
		if len(t.probeBuf) > transTableEntries {
			panic("tol: translation table full loop")
		}
	}
}

// Insert adds or replaces the mapping for guest address g, reusing the
// first tombstone on the probe path when the key is new. The probe
// slice lists slots touched.
func (t *TransTable) Insert(g, hostEntry uint32) (probes []uint32) {
	t.probeBuf = t.probeBuf[:0]
	if t.occ >= transTableEntries*3/4 {
		panic(fmt.Sprintf("tol: translation table over capacity (%d entries)", t.occ))
	}
	idx := hashGuest(g) & transTableMask
	reuse := int64(-1)
	for {
		t.probeBuf = append(t.probeBuf, idx)
		k := t.keys[idx]
		if k == g+1 {
			t.vals[idx] = hostEntry
			return t.probeBuf
		}
		if k == ttTombstone && reuse < 0 {
			reuse = int64(idx)
		}
		if k == 0 {
			if reuse >= 0 {
				idx = uint32(reuse)
			} else {
				t.occ++
			}
			t.live++
			t.keys[idx] = g + 1
			t.vals[idx] = hostEntry
			return t.probeBuf
		}
		idx = (idx + 1) & transTableMask
	}
}

// Delete removes the mapping for guest address g, but only if it still
// points at hostEntry — a guest address whose basic block was
// superseded (e.g. a superblock replaced the BB entry) keeps its newer
// mapping when the old translation is evicted. Reports whether a
// mapping was removed.
func (t *TransTable) Delete(g, hostEntry uint32) bool {
	idx := hashGuest(g) & transTableMask
	for n := 0; n <= transTableEntries; n++ {
		k := t.keys[idx]
		if k == 0 {
			return false
		}
		if k == g+1 {
			if t.vals[idx] != hostEntry {
				return false
			}
			t.keys[idx] = ttTombstone
			t.vals[idx] = 0
			t.live--
			return true
		}
		idx = (idx + 1) & transTableMask
	}
	return false
}

// Len returns the number of live entries.
func (t *TransTable) Len() int { return t.live }
