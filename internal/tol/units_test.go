package tol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mem"
)

func TestTransTableLookupInsert(t *testing.T) {
	tt := NewTransTable()
	if _, ok, probes := tt.Lookup(0x8048000); ok || len(probes) == 0 {
		t.Fatal("empty table lookup")
	}
	tt.Insert(0x8048000, 0x4000000)
	v, ok, _ := tt.Lookup(0x8048000)
	if !ok || v != 0x4000000 {
		t.Fatalf("lookup after insert: %#x %v", v, ok)
	}
	// Replace.
	tt.Insert(0x8048000, 0x4000100)
	v, _, _ = tt.Lookup(0x8048000)
	if v != 0x4000100 {
		t.Fatalf("replace failed: %#x", v)
	}
	if tt.Len() != 1 {
		t.Fatalf("Len = %d", tt.Len())
	}
}

func TestTransTableManyEntries(t *testing.T) {
	tt := NewTransTable()
	r := rand.New(rand.NewSource(5))
	ref := map[uint32]uint32{}
	for i := 0; i < 5000; i++ {
		g := 0x8000000 + r.Uint32()%0x100000
		v := 0x4000000 + uint32(i)*4
		tt.Insert(g, v)
		ref[g] = v
	}
	for g, v := range ref {
		got, ok, probes := tt.Lookup(g)
		if !ok || got != v {
			t.Fatalf("lookup %#x: got %#x ok=%v", g, got, ok)
		}
		if len(probes) == 0 {
			t.Fatal("no probes recorded")
		}
	}
}

func TestIBTCFillPeekInvalidate(t *testing.T) {
	m := mem.NewSparse()
	c := NewIBTC(m)
	c.Fill(0x8048010, 0x4000040)
	tag, v := c.Peek(0x8048010)
	if tag != 0x8048010 || v != 0x4000040 {
		t.Fatalf("peek: %#x %#x", tag, v)
	}
	// A colliding target (same slot) evicts.
	collide := 0x8048010 + uint32(IBTCEntries*4)
	c.Fill(collide, 0x4000080)
	tag, _ = c.Peek(0x8048010)
	if tag == 0x8048010 {
		t.Fatal("collision should have replaced the entry")
	}
	c.Fill(0x8048010, 0x4000040)
	c.Invalidate(0x8048010)
	tag, v = c.Peek(0x8048010)
	if tag != 0 || v != 0 {
		t.Fatal("invalidate failed")
	}
}

func TestProfileTableBumpAndReset(t *testing.T) {
	m := mem.NewSparse()
	p := NewProfileTable(m)
	if p.Count(0x1000) != 0 {
		t.Fatal("fresh count nonzero")
	}
	for i := 0; i < 7; i++ {
		p.Bump(0x1000)
	}
	if p.Count(0x1000) != 7 {
		t.Fatalf("count = %d", p.Count(0x1000))
	}
	p.Reset(0x1000)
	if p.Count(0x1000) != 0 {
		t.Fatal("reset failed")
	}
	a1 := p.SlotAddr(0x1000)
	a2 := p.SlotAddr(0x2000)
	if a1 == a2 {
		t.Fatal("slots collide")
	}
	if p.Allocated() != 2 {
		t.Fatalf("allocated = %d", p.Allocated())
	}
}

func TestFlagsLiveness(t *testing.T) {
	insts := []guest.Inst{
		{Op: guest.OpAddRR}, // flags overwritten by cmp: dead
		{Op: guest.OpMovRR}, // no flags
		{Op: guest.OpCmpRR}, // read by jcc: live
		{Op: guest.OpJcc},   // reader
	}
	mat := flagsLiveness(insts)
	if mat[0] {
		t.Error("add flags should be dead")
	}
	if !mat[2] {
		t.Error("cmp flags should be live")
	}
	// Last flag writer without reader is conservatively live-out.
	insts2 := []guest.Inst{{Op: guest.OpAddRR}, {Op: guest.OpMovRR}}
	mat2 := flagsLiveness(insts2)
	if !mat2[0] {
		t.Error("trailing flag writer must materialize (live-out)")
	}
}

func TestCodeCachePlaceAndFind(t *testing.T) {
	cc := NewCodeCache()
	tr := &Translation{Kind: KindBB, GuestEntry: 0x8048000, GuestLen: 3}
	code := []host.Inst{{Op: host.Nop}, {Op: host.Addi, Rd: 1, Rs1: 1, Imm: 1}, {Op: host.Jal}}
	base, err := cc.Alloc(len(code))
	if err != nil {
		t.Fatal(err)
	}
	cc.PlaceAt(base, tr, code, 0, 2, map[int]*ExitInfo{2: {Reason: ExitTaken}})
	if tr.HostEntry != mem.CodeCacheBase {
		t.Fatalf("entry = %#x", tr.HostEntry)
	}
	if got := cc.EntryAt(tr.HostEntry); got != tr {
		t.Fatal("EntryAt failed")
	}
	if got := cc.FindByPC(tr.HostEntry + 4); got != tr {
		t.Fatal("FindByPC failed")
	}
	if cc.FindByPC(tr.HostEnd) != nil {
		t.Fatal("FindByPC past end should be nil")
	}
	if cc.InstAt(tr.HostEntry+4).Op != host.Addi {
		t.Fatal("InstAt wrong instruction")
	}
	if cc.InstAt(0x1000) != nil {
		t.Fatal("InstAt outside cache should be nil")
	}
	// Patch turns the slot into a jump with a correct relative offset.
	target := tr.HostEntry
	if err := cc.Patch(tr.HostEntry+8, target); err != nil {
		t.Fatal(err)
	}
	patched := cc.InstAt(tr.HostEntry + 8)
	if patched.Op != host.Jal {
		t.Fatal("patch did not produce a jal")
	}
	if got := tr.HostEntry + 8 + host.InstBytes + uint32(patched.Imm); got != target {
		t.Fatalf("patched target = %#x, want %#x", got, target)
	}
}

func TestOwnerCompRegions(t *testing.T) {
	tr := &Translation{HostEntry: 0x4000000, BodyStart: 0x4000010, StubStart: 0x4000020, HostEnd: 0x4000030}
	if o, c := tr.OwnerComp(0x4000000); o.String() != "tol" || c.String() != "bbm" {
		t.Fatalf("prologue attribution: %v %v", o, c)
	}
	if o, c := tr.OwnerComp(0x4000014); o.String() != "app" || c.String() != "app" {
		t.Fatalf("body attribution: %v %v", o, c)
	}
	if o, c := tr.OwnerComp(0x4000024); o.String() != "tol" || c.String() != "tol-other" {
		t.Fatalf("stub attribution: %v %v", o, c)
	}
}

// randomRegion builds a random straight-line host code region over TOL
// registers with loads/stores to a small arena.
func randomRegion(r *rand.Rand, n int) []host.Inst {
	var code []host.Inst
	reg := func() host.Reg { return host.Reg(1 + r.Intn(10)) }
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			code = append(code, host.Inst{Op: host.Addi, Rd: reg(), Rs1: reg(), Imm: int32(r.Intn(100))})
		case 1:
			code = append(code, host.Inst{Op: host.Add, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 2:
			code = append(code, host.Inst{Op: host.Mul, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 3:
			code = append(code, host.Inst{Op: host.Ld, Rd: reg(), Rs1: 11, Imm: int32(r.Intn(16) * 4)})
		case 4:
			code = append(code, host.Inst{Op: host.St, Rs1: 11, Rs2: reg(), Imm: int32(r.Intn(16) * 4)})
		default:
			code = append(code, host.Inst{Op: host.Xor, Rd: reg(), Rs1: reg(), Rs2: reg()})
		}
	}
	return code
}

// execRegion runs a code region on a fresh CPU with a fixed initial
// state and returns the final register file + arena contents.
func execRegion(t *testing.T, code []host.Inst) ([host.NumRegs]uint32, []uint32) {
	t.Helper()
	m := mem.NewSparse()
	c := host.NewCPU(m)
	for i := host.Reg(1); i <= 10; i++ {
		c.R[i] = uint32(i) * 0x1111
	}
	c.R[11] = 0x9000 // arena base
	for i := uint32(0); i < 16; i++ {
		m.Write32(0x9000+i*4, i*7+3)
	}
	var out host.Outcome
	for i := range code {
		if err := c.Exec(&code[i], &out); err != nil {
			t.Fatal(err)
		}
	}
	arena := make([]uint32, 16)
	for i := uint32(0); i < 16; i++ {
		arena[i] = m.Read32(0x9000 + i*4)
	}
	return c.R, arena
}

func TestSchedulerPreservesSemantics(t *testing.T) {
	// Property: list scheduling must not change the architectural
	// effect of any straight-line region.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		code := randomRegion(r, 4+r.Intn(40))
		orig := append([]host.Inst(nil), code...)
		scheduled := append([]host.Inst(nil), code...)
		scheduleRegion(scheduled)

		r1, a1 := execRegion(t, orig)
		r2, a2 := execRegion(t, scheduled)
		if r1 != r2 {
			t.Fatalf("trial %d: register state diverged after scheduling", trial)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("trial %d: memory diverged at %d", trial, i)
			}
		}
	}
}

func TestSchedulerKeepsBranchPositions(t *testing.T) {
	e := newEmitter(x86Plan)
	e.emit(host.Inst{Op: host.Addi, Rd: 1, Rs1: 1, Imm: 1})
	e.emit(host.Inst{Op: host.Ld, Rd: 2, Rs1: 1})
	e.emit(host.Inst{Op: host.Addi, Rd: 3, Rs1: 2, Imm: 1})
	bIdx := e.emit(host.Inst{Op: host.Beq, Rs1: 3, Rs2: 0, Imm: 8})
	e.emit(host.Inst{Op: host.Addi, Rd: 4, Rs1: 4, Imm: 1})
	jIdx := e.emit(host.Inst{Op: host.Jal, Imm: -16})
	scheduleCode(e)
	if e.code[bIdx].Op != host.Beq {
		t.Fatal("branch moved")
	}
	if e.code[jIdx].Op != host.Jal {
		t.Fatal("jump moved")
	}
}

func TestEvalALUMatchesStep(t *testing.T) {
	// Property: the constant-folding oracle must agree with the
	// canonical Step semantics for every foldable op.
	ops := []guest.Op{
		guest.OpAddRI, guest.OpSubRI, guest.OpCmpRI, guest.OpAndRI,
		guest.OpOrRI, guest.OpXorRI, guest.OpIncR, guest.OpDecR,
		guest.OpNegR, guest.OpNotR, guest.OpShlRI, guest.OpShrRI, guest.OpSarRI,
	}
	f := func(aV, bV uint32, opIdx uint8, oldFlags uint32) bool {
		op := ops[int(opIdx)%len(ops)]
		oldFlags &= guest.FlagsMask
		b := int32(bV)
		if op == guest.OpShlRI || op == guest.OpShrRI || op == guest.OpSarRI {
			b = int32(bV % 32)
		}
		res, flags, ok := guest.EvalALU(op, aV, uint32(b), oldFlags)
		if !ok {
			return false
		}
		// Run the same op through the interpreter.
		bld := guest.NewBuilder()
		bld.MovRI(guest.EAX, int32(aV))
		switch op {
		case guest.OpAddRI:
			bld.AddRI(guest.EAX, b)
		case guest.OpSubRI:
			bld.SubRI(guest.EAX, b)
		case guest.OpCmpRI:
			bld.CmpRI(guest.EAX, b)
		case guest.OpAndRI:
			bld.AndRI(guest.EAX, b)
		case guest.OpOrRI:
			bld.OrRI(guest.EAX, b)
		case guest.OpXorRI:
			bld.XorRI(guest.EAX, b)
		case guest.OpIncR:
			bld.Inc(guest.EAX)
		case guest.OpDecR:
			bld.Dec(guest.EAX)
		case guest.OpNegR:
			bld.Neg(guest.EAX)
		case guest.OpNotR:
			bld.Not(guest.EAX)
		case guest.OpShlRI:
			bld.Shl(guest.EAX, b)
		case guest.OpShrRI:
			bld.Shr(guest.EAX, b)
		case guest.OpSarRI:
			bld.Sar(guest.EAX, b)
		}
		bld.Halt()
		p := bld.MustBuild()
		m := mem.NewSparse()
		st := p.LoadInto(m)
		st.Flags = oldFlags
		var sr guest.StepResult
		for {
			if err := guest.Step(&st, m, &sr); err != nil {
				return false
			}
			if sr.Halted {
				break
			}
		}
		wantRes := st.Regs[guest.EAX]
		if op == guest.OpCmpRI {
			wantRes = aV
		}
		// MovRI set flags? MovRI does not write flags; the op's flags
		// are the final ones unless the op preserves flags.
		return res == wantRes && flags&guest.FlagsMask == st.Flags&guest.FlagsMask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperblockConstFolding(t *testing.T) {
	// A loop whose body contains foldable constants: the SB must fold
	// them (fewer emitted host instructions than BBM) and still compute
	// correctly — verified by cosim inside runBoth.
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.ECX, 400)
	b.MovRI(guest.EAX, 0)
	b.Label("loop")
	b.MovRI(guest.EBX, 21)        // constant
	b.AddRI(guest.EBX, 21)        // foldable: ebx = 42
	b.MovRR(guest.EDX, guest.EBX) // copy-propagated constant
	b.AddRR(guest.EAX, guest.EDX)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	if eng.GuestState().Regs[guest.EAX] != 400*42 {
		t.Fatalf("eax = %d", eng.GuestState().Regs[guest.EAX])
	}
	if eng.Stats.SBCreated == 0 {
		t.Fatal("no superblock")
	}
}

func TestSuperblockRedundantLoadElim(t *testing.T) {
	// Repeated loads of the same slot inside a hot loop: the SB caches
	// them in allocatable registers; correctness via cosim.
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	b.MovRI(guest.EAX, 7)
	b.Store(guest.EBP, 0, guest.EAX)
	b.MovRI(guest.ECX, 300)
	b.MovRI(guest.EDI, 0)
	b.Label("loop")
	b.Load(guest.EAX, guest.EBP, 0)
	b.Load(guest.EBX, guest.EBP, 0) // redundant
	b.AddRR(guest.EDI, guest.EAX)
	b.AddRR(guest.EDI, guest.EBX)
	b.Load(guest.EDX, guest.EBP, 0) // redundant
	b.AddRR(guest.EDI, guest.EDX)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	cfg := DefaultConfig()
	cfg.SBThreshold = 20
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	if eng.GuestState().Regs[guest.EDI] != 300*21 {
		t.Fatalf("edi = %d", eng.GuestState().Regs[guest.EDI])
	}
}

func TestSuperblockStoreLoadCoherence(t *testing.T) {
	// Store then load of the same slot inside the trace: the cached
	// value must track the store; aliased stores invalidate.
	b := guest.NewBuilder()
	b.Label("start")
	b.MovRI(guest.EBP, int32(mem.GuestDataBase))
	b.MovRI(guest.ECX, 200)
	b.MovRI(guest.EDI, 0)
	b.Label("loop")
	b.Load(guest.EAX, guest.EBP, 4)
	b.AddRI(guest.EAX, 1)
	b.Store(guest.EBP, 4, guest.EAX) // exact-slot store
	b.Load(guest.EBX, guest.EBP, 4)  // must observe the store
	b.AddRR(guest.EDI, guest.EBX)
	b.Dec(guest.ECX)
	b.CmpRI(guest.ECX, 0)
	b.Jcc(guest.CondNE, "loop")
	b.Halt()
	cfg := DefaultConfig()
	cfg.SBThreshold = 15
	eng, _ := runBoth(t, b.MustBuild(), cfg)
	// Sum of 1..200.
	if eng.GuestState().Regs[guest.EDI] != 200*201/2 {
		t.Fatalf("edi = %d, want %d", eng.GuestState().Regs[guest.EDI], 200*201/2)
	}
}

func TestEmitterSealUnresolvedLabel(t *testing.T) {
	e := newEmitter(x86Plan)
	l := e.newLabel()
	e.branch(host.Beq, 1, 2, l)
	if err := e.seal(0x4000000); err == nil {
		t.Fatal("unresolved label should fail seal")
	}
}
