package workload

import (
	"fmt"
	"sync"
)

// The catalog mirrors the paper's benchmark list: SPEC CPU2006 INT
// (12), SPEC CPU2006 FP (16), Physicsbench (8) and Mediabench (12).
// Parameters are chosen to reproduce each benchmark's characterization
// drivers as reported in the paper — e.g. 462.libquantum's extreme
// dynamic/static ratio, 400.perlbench's indirect-branch dominance,
// 000/001 (c/djpeg)'s low repetition over a sizeable static footprint,
// 006.jpg2000dec's concentration into few superblocks versus
// 007.jpg2000enc's many barely-amortized ones, and Physicsbench's high
// interpreter activity. Dynamic sizes are scaled to the simulation
// budgets in DESIGN.md; use Spec.Scale to grow them.

// The catalog is generated once and memoized: Spec is a pure value
// type, so handing out slice copies keeps callers free to mutate their
// view (Scale, ad-hoc tweaks) without aliasing, while per-name lookups
// — which experiments.Runner issues in a loop — become a map hit
// instead of regenerating all 48 specs.
var (
	catalogOnce  sync.Once
	catalogSpecs []Spec
	catalogIndex map[string]int
)

func buildCatalog() {
	catalogSpecs = append(catalogSpecs, specINT()...)
	catalogSpecs = append(catalogSpecs, specFP()...)
	catalogSpecs = append(catalogSpecs, physics()...)
	catalogSpecs = append(catalogSpecs, media()...)
	catalogIndex = make(map[string]int, len(catalogSpecs))
	for i := range catalogSpecs {
		catalogSpecs[i].Seed = int64(1000 + i)
		catalogIndex[catalogSpecs[i].Name] = i
	}
}

// Catalog returns the full 48-benchmark list in the paper's order. The
// returned slice is the caller's to mutate.
func Catalog() []Spec {
	catalogOnce.Do(buildCatalog)
	return append([]Spec(nil), catalogSpecs...)
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Spec, error) {
	catalogOnce.Do(buildCatalog)
	i, ok := catalogIndex[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return catalogSpecs[i], nil
}

// Names returns all benchmark names in catalog order.
func Names() []string {
	catalogOnce.Do(buildCatalog)
	out := make([]string, len(catalogSpecs))
	for i := range catalogSpecs {
		out[i] = catalogSpecs[i].Name
	}
	return out
}

// BySuite returns the catalog entries of one suite.
func BySuite(s Suite) []Spec {
	catalogOnce.Do(buildCatalog)
	var out []Spec
	for _, b := range catalogSpecs {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// Outliers returns the four special cases the paper analyzes in
// Figures 9–11: high ratio (470.lbm), ratio close to the promotion
// threshold with high SBM activity (007.jpg2000enc), low ratio with
// high interpreter activity (107.novis_ragdoll), and indirect-branch
// dominated (400.perlbench).
func Outliers() []string {
	return []string{"470.lbm", "007.jpg2000enc", "107.novis_ragdoll", "400.perlbench"}
}

func specINT() []Spec {
	base := Spec{
		Suite: SPECInt, UseCalls: true,
		HotKernels: 4, KernelLen: 28, KernelIter: 120, OuterIters: 16,
		ColdBlocks: 10, ColdLen: 40, WarmBlocks: 8, WarmLen: 30, WarmIters: 8,
		FPFrac: 0.02, MemFrac: 0.25, BranchFrac: 0.10,
		Footprint: 1 << 15, Stride: 8,
	}
	w := func(name string, f func(*Spec)) Spec {
		s := base
		s.Name = name
		f(&s)
		return s
	}
	return []Spec{
		w("400.perlbench", func(s *Spec) {
			// Indirect-branch dominated: frequent dispatcher activity
			// and many distinct blocks (22.7M indirect per 4B in the
			// paper ≈ 5.7 per 1K instructions).
			s.Fanout = 48
			s.CaseCalls = true
			s.DispatchIters = 80
			s.HotKernels = 8
			s.KernelLen = 22
			s.KernelIter = 55
			s.OuterIters = 28
			s.ColdBlocks = 24
			s.WarmBlocks = 18
			s.Footprint = 1 << 17
			s.Irregular = true
		}),
		w("401.bzip2", func(s *Spec) {
			// Small static code, high repetition, ~no indirect branches.
			s.UseCalls = false
			s.HotKernels = 2
			s.KernelLen = 34
			s.KernelIter = 700
			s.OuterIters = 12
			s.ColdBlocks = 4
			s.WarmBlocks = 3
			s.Footprint = 1 << 16
			s.Stride = 4
		}),
		w("403.gcc", func(s *Spec) {
			// Large static footprint, low repetition, indirect-branchy.
			s.HotKernels = 14
			s.KernelLen = 36
			s.KernelIter = 26
			s.OuterIters = 22
			s.ColdBlocks = 44
			s.ColdLen = 48
			s.WarmBlocks = 34
			s.WarmLen = 42
			s.WarmIters = 7
			s.Fanout = 12
			s.DispatchIters = 70
			s.BranchFrac = 0.14
		}),
		w("429.mcf", func(s *Spec) {
			// Memory bound: pointer-chasing-like large-stride traffic.
			s.HotKernels = 2
			s.KernelLen = 26
			s.KernelIter = 420
			s.MemFrac = 0.5
			s.Footprint = 1 << 20
			s.Stride = 64
			s.Irregular = true
		}),
		w("445.gobmk", func(s *Spec) {
			// Branchy with a wide static footprint: hard on the BP.
			s.HotKernels = 10
			s.KernelLen = 30
			s.KernelIter = 40
			s.BranchFrac = 0.22
			s.ColdBlocks = 26
			s.WarmBlocks = 22
			s.WarmIters = 9
		}),
		w("458.sjeng", func(s *Spec) {
			s.HotKernels = 7
			s.KernelIter = 70
			s.BranchFrac = 0.18
			s.Fanout = 8
			s.DispatchIters = 30
		}),
		w("462.libquantum", func(s *Spec) {
			// Tiny hot loop with an extreme dynamic/static ratio.
			s.UseCalls = false
			s.HotKernels = 1
			s.KernelLen = 18
			s.KernelIter = 5200
			s.OuterIters = 14
			s.ColdBlocks = 2
			s.WarmBlocks = 1
			s.MemFrac = 0.3
			s.Stride = 16
			s.Footprint = 1 << 18
		}),
		w("464.h264ref", func(s *Spec) {
			s.HotKernels = 6
			s.KernelLen = 34
			s.KernelIter = 90
			s.MemFrac = 0.35
			s.Stride = 4
		}),
		w("471.omnetpp", func(s *Spec) {
			// Virtual-call style indirect branches.
			s.Fanout = 28
			s.CaseCalls = true
			s.DispatchIters = 60
			s.HotKernels = 5
			s.KernelIter = 90
			s.Footprint = 1 << 18
			s.Stride = 32
			s.Irregular = true
		}),
		w("473.astar", func(s *Spec) {
			s.HotKernels = 3
			s.KernelIter = 200
			s.MemFrac = 0.4
			s.BranchFrac = 0.15
			s.Footprint = 1 << 19
			s.Stride = 16
			s.Irregular = true
		}),
		w("483.xalancbmk", func(s *Spec) {
			s.Fanout = 32
			s.CaseCalls = true
			s.DispatchIters = 60
			s.HotKernels = 7
			s.KernelIter = 65
			s.ColdBlocks = 30
			s.WarmBlocks = 20
			s.Irregular = true
		}),
		w("998.specrand", func(s *Spec) {
			// Tiny program that barely leaves start-up.
			s.UseCalls = false
			s.HotKernels = 1
			s.KernelLen = 16
			s.KernelIter = 40
			s.OuterIters = 6
			s.ColdBlocks = 2
			s.WarmBlocks = 1
			s.MemFrac = 0.1
		}),
	}
}

func specFP() []Spec {
	base := Spec{
		Suite: SPECFP, UseCalls: true,
		HotKernels: 3, KernelLen: 34, KernelIter: 480, OuterIters: 14,
		ColdBlocks: 8, ColdLen: 40, WarmBlocks: 6, WarmLen: 30, WarmIters: 7,
		FPFrac: 0.45, MemFrac: 0.25, BranchFrac: 0.04,
		Footprint: 1 << 17, Stride: 8,
	}
	w := func(name string, f func(*Spec)) Spec {
		s := base
		s.Name = name
		f(&s)
		return s
	}
	return []Spec{
		w("410.bwaves", func(s *Spec) { s.KernelIter = 500; s.Stride = 8 }),
		w("433.milc", func(s *Spec) {
			// ~15K static instructions but far more dynamic than the
			// jpegs: the amortization contrast of Section III-B.
			s.HotKernels = 5
			s.KernelIter = 380
			s.ColdBlocks = 16
			s.WarmBlocks = 12
		}),
		w("434.zeusmp", func(s *Spec) { s.KernelIter = 420; s.MemFrac = 0.3 }),
		w("435.gromacs", func(s *Spec) { s.HotKernels = 4; s.KernelIter = 260 }),
		w("436.cactusADM", func(s *Spec) {
			s.HotKernels = 2
			s.KernelLen = 48
			s.KernelIter = 600
			s.FPFrac = 0.6
		}),
		w("437.leslie3d", func(s *Spec) { s.KernelIter = 400; s.Stride = 16 }),
		w("444.namd", func(s *Spec) { s.HotKernels = 4; s.KernelIter = 300; s.FPFrac = 0.55 }),
		w("447.dealII", func(s *Spec) {
			s.Fanout = 10
			s.DispatchIters = 40
			s.HotKernels = 5
			s.KernelIter = 150
		}),
		w("450.soplex", func(s *Spec) {
			s.MemFrac = 0.4
			s.Footprint = 1 << 19
			s.Stride = 32
			s.KernelIter = 220
			s.Irregular = true
		}),
		w("459.GemsFDTD", func(s *Spec) {
			// High indirect/returns for an FP code (per Section III-B).
			s.Fanout = 24
			s.CaseCalls = true
			s.DispatchIters = 70
			s.HotKernels = 4
			s.KernelIter = 260
		}),
		w("453.povray", func(s *Spec) {
			s.HotKernels = 6
			s.KernelIter = 110
			s.BranchFrac = 0.12
			s.Fanout = 8
			s.DispatchIters = 40
		}),
		w("454.calculix", func(s *Spec) { s.HotKernels = 4; s.KernelIter = 240 }),
		w("470.lbm", func(s *Spec) {
			// The high-ratio outlier: nearly all time in two fused
			// streaming kernels; TOL overhead fully amortized.
			s.UseCalls = false
			s.HotKernels = 2
			s.KernelLen = 44
			s.KernelIter = 2600
			s.OuterIters = 10
			s.ColdBlocks = 3
			s.WarmBlocks = 2
			s.MemFrac = 0.35
			s.Stride = 8
			s.Footprint = 1 << 20
		}),
		w("481.wrf", func(s *Spec) { s.HotKernels = 5; s.KernelIter = 200; s.ColdBlocks = 20 }),
		w("482.sphinx3", func(s *Spec) { s.KernelIter = 260; s.MemFrac = 0.35 }),
		w("999.specrand", func(s *Spec) {
			s.UseCalls = false
			s.HotKernels = 1
			s.KernelLen = 16
			s.KernelIter = 40
			s.OuterIters = 6
			s.ColdBlocks = 2
			s.WarmBlocks = 1
			s.FPFrac = 0.2
		}),
	}
}

func physics() []Spec {
	// Physicsbench: low dynamic/static ratio with high interpreter
	// activity — warm code executes only a few times (around IM/BBth),
	// so a large share of the static code never leaves IM.
	base := Spec{
		Suite: Physics, UseCalls: true,
		HotKernels: 3, KernelLen: 30, KernelIter: 340, OuterIters: 12,
		ColdBlocks: 30, ColdLen: 44, WarmBlocks: 26, WarmLen: 36, WarmIters: 4,
		FPFrac: 0.35, MemFrac: 0.3, BranchFrac: 0.12,
		Footprint: 1 << 16, Stride: 16,
	}
	w := func(name string, f func(*Spec)) Spec {
		s := base
		s.Name = name
		f(&s)
		return s
	}
	return []Spec{
		w("100.novis_breakable", func(s *Spec) { s.KernelIter = 380 }),
		w("101.novis_continuous", func(s *Spec) { s.HotKernels = 4; s.KernelIter = 300 }),
		w("102.novis_deformable", func(s *Spec) { s.KernelIter = 420; s.FPFrac = 0.45 }),
		w("103.novis_everything", func(s *Spec) {
			s.HotKernels = 5
			s.ColdBlocks = 40
			s.WarmBlocks = 34
		}),
		w("104.novis_explosions", func(s *Spec) { s.KernelIter = 460; s.MemFrac = 0.35 }),
		w("105.novis_highspeed", func(s *Spec) { s.KernelIter = 260 }),
		w("106.novis_periodic", func(s *Spec) { s.HotKernels = 2; s.KernelIter = 520 }),
		w("107.novis_ragdoll", func(s *Spec) {
			// The low-ratio / high-IM outlier: the warm region and the
			// many cold blocks dominate; hot kernels barely repeat.
			s.HotKernels = 2
			s.KernelLen = 24
			s.KernelIter = 150
			s.OuterIters = 10
			s.ColdBlocks = 48
			s.ColdLen = 50
			s.WarmBlocks = 42
			s.WarmLen = 44
			s.WarmIters = 3
		}),
	}
}

func media() []Spec {
	// Mediabench: modest repetition; several entries sit near the
	// promotion threshold.
	base := Spec{
		Suite: Media, UseCalls: true,
		HotKernels: 5, KernelLen: 30, KernelIter: 190, OuterIters: 8,
		ColdBlocks: 20, ColdLen: 44, WarmBlocks: 14, WarmLen: 34, WarmIters: 6,
		FPFrac: 0.08, MemFrac: 0.35, BranchFrac: 0.08,
		Footprint: 1 << 17, Stride: 4,
	}
	w := func(name string, f func(*Spec)) Spec {
		s := base
		s.Name = name
		f(&s)
		return s
	}
	return []Spec{
		w("000.cjpeg", func(s *Spec) {
			// ~15K static instructions with little repetition: heavy
			// interpreter and translator share.
			s.HotKernels = 4
			s.KernelIter = 62
			s.OuterIters = 8
			s.ColdBlocks = 40
			s.ColdLen = 52
			s.WarmBlocks = 30
			s.WarmLen = 44
			s.WarmIters = 5
		}),
		w("001.djpeg", func(s *Spec) {
			s.HotKernels = 4
			s.KernelIter = 70
			s.OuterIters = 8
			s.ColdBlocks = 36
			s.ColdLen = 50
			s.WarmBlocks = 28
			s.WarmLen = 42
			s.WarmIters = 5
		}),
		w("002.h263dec", func(s *Spec) {
			// Many superblocks whose repetition sits near BB/SBth.
			s.HotKernels = 9
			s.KernelIter = 45
			s.OuterIters = 9
		}),
		w("003.h263enc", func(s *Spec) { s.HotKernels = 7; s.KernelIter = 130 }),
		w("004.h264dec", func(s *Spec) { s.HotKernels = 6; s.KernelIter = 240 }),
		w("005.h264enc", func(s *Spec) {
			s.HotKernels = 8
			s.KernelIter = 170
			s.MemFrac = 0.4
		}),
		w("006.jpg2000dec", func(s *Spec) {
			// Execution concentrated in few superblocks: few kernels,
			// high repetition — low SBM overhead despite a near-
			// threshold global ratio.
			s.HotKernels = 2
			s.KernelLen = 40
			s.KernelIter = 420
			s.OuterIters = 7
		}),
		w("007.jpg2000enc", func(s *Spec) {
			// The near-threshold outlier: many kernels cross BB/SBth
			// late, so many superblocks are created and barely
			// amortized.
			s.HotKernels = 14
			s.KernelLen = 26
			s.KernelIter = 34
			s.OuterIters = 12
			s.WarmBlocks = 18
		}),
		w("008.mpeg2dec", func(s *Spec) { s.HotKernels = 5; s.KernelIter = 280 }),
		w("009.mpeg2enc", func(s *Spec) { s.HotKernels = 6; s.KernelIter = 210 }),
		w("010.mpeg4dec", func(s *Spec) { s.HotKernels = 6; s.KernelIter = 320; s.MemFrac = 0.4 }),
		w("011.mpeg4enc", func(s *Spec) { s.HotKernels = 8; s.KernelIter = 200; s.MemFrac = 0.4 }),
	}
}
