package workload_test

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/workload"
)

// countSource is a tiny out-of-tree workload source: "count:<n>" is a
// program that decrements a register n times and halts. Unlike the tol
// pass registry, workload sources build on the public guest.Program
// image, so new sources need no changes inside the repository.
type countSource struct{}

func (countSource) Scheme() string { return "count" }

func (countSource) Open(name string) (workload.Program, error) {
	var n int32
	if _, err := fmt.Sscanf(name, "%d", &n); err != nil || n <= 0 {
		return nil, fmt.Errorf("count: bad iteration count %q", name)
	}
	return workload.Func("count-"+name, func() (*guest.Program, error) {
		b := guest.NewBuilder()
		b.MovRI(guest.EAX, n)
		b.Label("loop")
		b.Dec(guest.EAX)
		b.Jcc(guest.CondNE, "loop")
		b.Halt()
		return b.Build()
	}), nil
}

// ExampleRegister registers a custom workload source and resolves a
// program through the same reference grammar the -workload flags use.
func ExampleRegister() {
	workload.Register(countSource{})

	p, err := workload.Open("count:25")
	if err != nil {
		fmt.Println(err)
		return
	}
	img, err := p.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s from source %q: %d static instructions\n",
		p.Name(), p.Meta().Source, img.StaticInst)

	// The built-in sources resolve the same way.
	syn, _ := workload.Open("synthetic:470.lbm")
	fmt.Printf("%s belongs to %s\n", syn.Name(), syn.Meta().Suite)
	// Output:
	// count-25 from source "func": 4 static instructions
	// 470.lbm belongs to SPEC-FP
}

// ExampleOpen shows the reference grammar of the pluggable workload
// layer: explicit "<source>:<name>" references and bare catalog names.
func ExampleOpen() {
	for _, ref := range []string{
		"401.bzip2",                       // bare name = synthetic catalog
		"synthetic:401.bzip2",             // the same, spelled out
		"phased:401.bzip2+462.libquantum", // two-phase composite
	} {
		p, err := workload.Open(ref)
		if err != nil {
			fmt.Println(err)
			return
		}
		m := p.Meta()
		fmt.Printf("%-33s -> %s (%s, %d phase(s))\n", ref, p.Name(), m.Source, m.Phases)
	}
	// Output:
	// 401.bzip2                         -> 401.bzip2 (synthetic, 1 phase(s))
	// synthetic:401.bzip2               -> 401.bzip2 (synthetic, 1 phase(s))
	// phased:401.bzip2+462.libquantum   -> 401.bzip2+462.libquantum (phased, 2 phase(s))
}
